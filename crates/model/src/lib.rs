#![warn(missing_docs)]

//! # condep-model
//!
//! The relational data-model substrate underlying the `condep` workspace,
//! a reproduction of *Bravo, Fan & Ma: Extending Dependencies with
//! Conditions* (VLDB 2007).
//!
//! Section 2 of the paper fixes the following preliminaries, all of which
//! are implemented here from scratch:
//!
//! * a database schema `R` is a collection of relation schemas
//!   `(R1, ..., Rn)` ([`Schema`]);
//! * each relation schema is defined over a fixed set of attributes
//!   ([`RelationSchema`], [`Attribute`]);
//! * each attribute has an associated domain which is *finite or infinite*
//!   ([`Domain`]) — the finite/infinite distinction drives most of the
//!   complexity results in the paper;
//! * an instance is a **set** of tuples ([`Relation`], [`Tuple`]), and a
//!   database instance is a collection of relations ([`Database`]);
//! * pattern tuples rank data values against the unnamed variable `_`
//!   via the match order `≍` ([`pattern::PValue`], [`pattern::PatternRow`]).
//!
//! The [`fixtures`] module reconstructs the running example of the paper
//! (Figure 1: the bank's `account`/`saving`/`checking`/`interest`
//! instances) so that every worked claim in the paper can be asserted in
//! tests.

pub mod database;
pub mod domain;
pub mod error;
pub mod fixtures;
pub mod fxhash;
pub mod implication;
pub mod intern;
pub mod pattern;
pub mod relation;
pub mod schema;
pub mod tuple;
pub mod value;

pub use database::Database;
pub use domain::{BaseType, Domain};
pub use error::ModelError;
pub use fxhash::{FxBuildHasher, FxHasher};
pub use implication::{Implication, ImplicationConfig};
pub use intern::{Interner, Sym, SymTables, SymValue};
pub use pattern::{PValue, PatternRow};
pub use relation::{PosList, Relation, Removed, TupleId, TupleIdMap};
pub use schema::{AttrId, Attribute, RelId, RelationSchema, Schema, SchemaBuilder};
pub use tuple::Tuple;
pub use value::Value;

/// Convenient `Result` alias for fallible model operations.
pub type Result<T, E = ModelError> = std::result::Result<T, E>;
