//! Error type shared by the model layer.

use std::fmt;

/// Errors raised while constructing schemas, tuples, or databases.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ModelError {
    /// A finite domain was declared with no values.
    EmptyDomain,
    /// A finite domain mixed values of different base types.
    MixedDomain,
    /// Two relations (or two attributes of one relation) share a name.
    DuplicateName(String),
    /// Lookup of an unknown relation name.
    UnknownRelation(String),
    /// Lookup of an unknown attribute name within a relation.
    UnknownAttribute {
        /// The relation that was searched.
        relation: String,
        /// The attribute that was not found.
        attribute: String,
    },
    /// A tuple's width does not match its relation schema's arity.
    ArityMismatch {
        /// The relation being inserted into.
        relation: String,
        /// The declared arity.
        expected: usize,
        /// The tuple's width.
        actual: usize,
    },
    /// A tuple field lies outside its attribute's domain.
    DomainViolation {
        /// The relation being inserted into.
        relation: String,
        /// The offending attribute.
        attribute: String,
        /// Rendered offending value.
        value: String,
    },
    /// An attribute id is out of range for the relation it is used with.
    AttrOutOfRange {
        /// The relation the id was resolved against.
        relation: String,
        /// The offending index.
        index: usize,
    },
    /// A relation id is out of range for the schema.
    RelOutOfRange(usize),
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::EmptyDomain => write!(f, "finite domain must be non-empty"),
            ModelError::MixedDomain => {
                write!(f, "finite domain must not mix base types")
            }
            ModelError::DuplicateName(n) => write!(f, "duplicate name `{n}`"),
            ModelError::UnknownRelation(n) => write!(f, "unknown relation `{n}`"),
            ModelError::UnknownAttribute {
                relation,
                attribute,
            } => write!(f, "unknown attribute `{attribute}` in relation `{relation}`"),
            ModelError::ArityMismatch {
                relation,
                expected,
                actual,
            } => write!(
                f,
                "arity mismatch inserting into `{relation}`: expected {expected} fields, got {actual}"
            ),
            ModelError::DomainViolation {
                relation,
                attribute,
                value,
            } => write!(
                f,
                "value `{value}` outside the domain of `{relation}.{attribute}`"
            ),
            ModelError::AttrOutOfRange { relation, index } => {
                write!(f, "attribute index {index} out of range for `{relation}`")
            }
            ModelError::RelOutOfRange(i) => {
                write!(f, "relation index {i} out of range for schema")
            }
        }
    }
}

impl std::error::Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = ModelError::ArityMismatch {
            relation: "saving".into(),
            expected: 5,
            actual: 4,
        };
        let msg = e.to_string();
        assert!(msg.contains("saving"));
        assert!(msg.contains('5'));
        assert!(msg.contains('4'));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(ModelError::EmptyDomain, ModelError::EmptyDomain);
        assert_ne!(
            ModelError::EmptyDomain,
            ModelError::UnknownRelation("r".into())
        );
    }
}
