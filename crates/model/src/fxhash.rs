//! A fast, deterministic, non-cryptographic hasher.
//!
//! The validation hot path hashes millions of small keys (interned
//! symbols, tuple projections); SipHash's per-key setup cost dominates
//! there. This is the well-known `fx` word-at-a-time multiply-rotate
//! scheme (as used by rustc): deterministic across runs and platforms,
//! which also keeps [`crate::Relation`]'s hashed position map and every
//! index iteration reproducible.

use std::hash::{BuildHasherDefault, Hasher};

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The fx hasher state.
#[derive(Clone, Copy, Default, Debug)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` plugging [`FxHasher`] into `HashMap`/`HashSet`.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// Hashes one value with a fresh [`FxHasher`].
pub fn fx_hash_one<T: std::hash::Hash>(value: &T) -> u64 {
    let mut h = FxHasher::default();
    value.hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_content_sensitive() {
        assert_eq!(fx_hash_one(&"abc"), fx_hash_one(&"abc"));
        assert_ne!(fx_hash_one(&"abc"), fx_hash_one(&"abd"));
        assert_eq!(fx_hash_one(&(1u64, 2u64)), fx_hash_one(&(1u64, 2u64)));
        assert_ne!(fx_hash_one(&(1u64, 2u64)), fx_hash_one(&(2u64, 1u64)));
    }

    #[test]
    fn byte_tail_is_hashed() {
        // Inputs differing only in a non-multiple-of-8 tail must differ.
        assert_ne!(fx_hash_one(b"123456789"), fx_hash_one(b"123456780"));
    }

    #[test]
    fn works_in_a_hashmap() {
        let mut m: std::collections::HashMap<String, u32, FxBuildHasher> =
            std::collections::HashMap::default();
        m.insert("k".into(), 1);
        assert_eq!(m.get("k"), Some(&1));
    }
}
