//! Attribute domains.
//!
//! The paper distinguishes attributes with a **finite** domain
//! (`finattr(R)`) from those with an infinite one; the distinction is
//! load-bearing: CIND implication is PSPACE-complete without
//! finite-domain attributes (Theorem 3.5) and EXPTIME-complete with them
//! (Theorem 3.4), and the inference rules CIND7/CIND8 exist solely to
//! reason over finite domains.

use crate::value::Value;
use std::fmt;

/// The underlying carrier type of a domain.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum BaseType {
    /// Booleans — inherently finite (`{false, true}`).
    Bool,
    /// 64-bit integers — treated as an infinite carrier.
    Int,
    /// Strings — treated as an infinite carrier.
    Str,
}

impl fmt::Display for BaseType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BaseType::Bool => write!(f, "bool"),
            BaseType::Int => write!(f, "int"),
            BaseType::Str => write!(f, "string"),
        }
    }
}

/// The domain `dom(A)` of an attribute.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Domain {
    /// An infinite domain over the given carrier. `Infinite(Bool)` is not
    /// representable — construct domains through the smart constructors,
    /// which normalize booleans to the finite two-element domain.
    Infinite(BaseType),
    /// A finite domain: a sorted, deduplicated, non-empty list of values
    /// sharing one base type.
    Finite(Vec<Value>),
}

impl Domain {
    /// The infinite string domain.
    pub fn string() -> Self {
        Domain::Infinite(BaseType::Str)
    }

    /// The infinite integer domain.
    pub fn integer() -> Self {
        Domain::Infinite(BaseType::Int)
    }

    /// The two-element boolean domain (always finite).
    pub fn boolean() -> Self {
        Domain::Finite(vec![Value::Bool(false), Value::Bool(true)])
    }

    /// A finite domain from an explicit value list.
    ///
    /// Values are sorted and deduplicated. Returns an error if the list is
    /// empty or mixes base types (a domain must be homogeneous for the
    /// match order `≍` and the chase to be meaningful).
    pub fn finite<I>(values: I) -> crate::Result<Self>
    where
        I: IntoIterator,
        I::Item: Into<Value>,
    {
        let mut vs: Vec<Value> = values.into_iter().map(Into::into).collect();
        if vs.is_empty() {
            return Err(crate::ModelError::EmptyDomain);
        }
        vs.sort();
        vs.dedup();
        let bt = vs[0].base_type();
        if vs.iter().any(|v| v.base_type() != bt) {
            return Err(crate::ModelError::MixedDomain);
        }
        Ok(Domain::Finite(vs))
    }

    /// A finite domain of string values. Panics on empty input; intended
    /// for literal schema definitions (use [`Domain::finite`] for dynamic
    /// input).
    pub fn finite_strs(values: &[&str]) -> Self {
        Domain::finite(values.iter().copied()).expect("finite_strs: non-empty homogeneous input")
    }

    /// A finite integer domain `{0, 1, ..., n-1}` — handy for generators.
    pub fn finite_ints(n: usize) -> Self {
        Domain::finite((0..n as i64).map(Value::Int)).expect("finite_ints: n > 0")
    }

    /// Is this a finite domain? (`A ∈ finattr(R)` in the paper.)
    pub fn is_finite(&self) -> bool {
        matches!(self, Domain::Finite(_))
    }

    /// The number of elements, or `None` for infinite domains.
    pub fn size(&self) -> Option<usize> {
        match self {
            Domain::Infinite(_) => None,
            Domain::Finite(vs) => Some(vs.len()),
        }
    }

    /// The values of a finite domain (`None` when infinite).
    pub fn values(&self) -> Option<&[Value]> {
        match self {
            Domain::Infinite(_) => None,
            Domain::Finite(vs) => Some(vs),
        }
    }

    /// The base type of elements of this domain.
    pub fn base_type(&self) -> BaseType {
        match self {
            Domain::Infinite(bt) => *bt,
            Domain::Finite(vs) => vs[0].base_type(),
        }
    }

    /// Membership test `v ∈ dom(A)`.
    pub fn contains(&self, v: &Value) -> bool {
        match self {
            Domain::Infinite(bt) => v.base_type() == *bt,
            Domain::Finite(vs) => vs.binary_search(v).is_ok(),
        }
    }

    /// Produces a value of this domain distinct from everything in
    /// `avoid`, if one exists.
    ///
    /// For infinite domains this always succeeds (the proof of Theorem 3.2
    /// relies on picking "at most one distinct value in `dom(A)`" beyond
    /// the constants of Σ). For finite domains it returns the smallest
    /// unused member, or `None` when `avoid` covers the domain — exactly
    /// the situation that makes consistency of CFDs hard (Example 3.2).
    pub fn fresh_value<'a, I>(&self, avoid: I) -> Option<Value>
    where
        I: IntoIterator<Item = &'a Value>,
    {
        let avoid: std::collections::HashSet<&Value> = avoid.into_iter().collect();
        match self {
            Domain::Finite(vs) => vs.iter().find(|v| !avoid.contains(v)).cloned(),
            Domain::Infinite(BaseType::Int) => {
                let max = avoid.iter().filter_map(|v| v.as_int()).max().unwrap_or(-1);
                Some(Value::Int(max.checked_add(1)?))
            }
            Domain::Infinite(BaseType::Str) => {
                for k in 0.. {
                    let cand = Value::str(format!("_fresh{k}"));
                    if !avoid.contains(&cand) {
                        return Some(cand);
                    }
                }
                unreachable!("infinite string domain exhausted")
            }
            Domain::Infinite(BaseType::Bool) => {
                // Unreachable through smart constructors, but handle it:
                // booleans form a two-element domain.
                [Value::Bool(false), Value::Bool(true)]
                    .into_iter()
                    .find(|v| !avoid.contains(v))
            }
        }
    }
}

impl fmt::Display for Domain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Domain::Infinite(bt) => write!(f, "{bt}"),
            Domain::Finite(vs) => {
                write!(f, "{{")?;
                for (i, v) in vs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boolean_domain_is_finite_with_two_values() {
        let d = Domain::boolean();
        assert!(d.is_finite());
        assert_eq!(d.size(), Some(2));
        assert!(d.contains(&Value::Bool(true)));
        assert!(!d.contains(&Value::Int(0)));
    }

    #[test]
    fn finite_domain_sorts_and_dedups() {
        let d = Domain::finite(["b", "a", "b"]).unwrap();
        assert_eq!(d.values().unwrap(), &[Value::str("a"), Value::str("b")]);
    }

    #[test]
    fn finite_domain_rejects_empty_and_mixed() {
        assert!(Domain::finite(Vec::<Value>::new()).is_err());
        assert!(Domain::finite([Value::str("a"), Value::int(1)]).is_err());
    }

    #[test]
    fn infinite_membership_is_by_base_type() {
        assert!(Domain::string().contains(&Value::str("anything")));
        assert!(!Domain::string().contains(&Value::int(3)));
        assert!(Domain::integer().contains(&Value::int(3)));
    }

    #[test]
    fn fresh_value_infinite_always_succeeds() {
        let d = Domain::string();
        let used = vec![Value::str("_fresh0"), Value::str("_fresh1")];
        let v = d.fresh_value(&used).unwrap();
        assert!(!used.contains(&v));

        let d = Domain::integer();
        let used = vec![Value::int(5)];
        assert_eq!(d.fresh_value(&used), Some(Value::int(6)));
        assert_eq!(d.fresh_value(&[]), Some(Value::int(0)));
    }

    #[test]
    fn fresh_value_finite_can_fail() {
        // Example 3.2's trap: a finite domain can be exhausted.
        let d = Domain::boolean();
        let used = vec![Value::Bool(false), Value::Bool(true)];
        assert_eq!(d.fresh_value(&used), None);
        assert_eq!(d.fresh_value(&used[..1]), Some(Value::Bool(true)));
    }

    #[test]
    fn finite_ints_enumerates_prefix() {
        let d = Domain::finite_ints(3);
        assert_eq!(d.size(), Some(3));
        assert!(d.contains(&Value::int(2)));
        assert!(!d.contains(&Value::int(3)));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Domain::string().to_string(), "string");
        assert_eq!(Domain::finite_strs(&["a", "b"]).to_string(), "{a, b}");
    }
}
