//! The paper's running example as reusable fixtures.
//!
//! Figure 1 of the paper shows a bank's source relation `account` at two
//! branches (NYC, EDI) and a target database (`saving`, `checking`,
//! `interest`). The instance is deliberately *dirty*: tuple `t12` records
//! a 10.5% interest rate for UK checking accounts where the correct rate
//! is 1.5%, an error that traditional FDs/INDs cannot catch but ψ6/ϕ3 can.
//!
//! Dependency fixtures built over these schemas live in the `condep-cfd`
//! and `condep-core` crates (Figures 2 and 4).

use crate::database::Database;
use crate::domain::Domain;
use crate::schema::Schema;
use crate::tuple;
use std::sync::Arc;

/// Names of the attributes shared by `account`, `saving` and `checking`.
pub const ACCOUNT_ATTRS: [&str; 4] = ["an", "cn", "ca", "cp"];

/// The account-type domain `dom(at) = {checking, saving}` (finite, as
/// assumed in Example 3.3).
pub fn at_domain() -> Domain {
    Domain::finite_strs(&["checking", "saving"])
}

/// The bank schema of Figure 1: two source `account` relations plus the
/// target `saving` / `checking` / `interest` relations.
pub fn bank_schema() -> Arc<Schema> {
    let account_attrs = [
        ("an", Domain::string()),
        ("cn", Domain::string()),
        ("ca", Domain::string()),
        ("cp", Domain::string()),
        ("at", at_domain()),
    ];
    let target_attrs = [
        ("an", Domain::string()),
        ("cn", Domain::string()),
        ("ca", Domain::string()),
        ("cp", Domain::string()),
        ("ab", Domain::string()),
    ];
    Arc::new(
        Schema::builder()
            .relation("account_nyc", &account_attrs)
            .relation("account_edi", &account_attrs)
            .relation("saving", &target_attrs)
            .relation("checking", &target_attrs)
            .relation(
                "interest",
                &[
                    ("ab", Domain::string()),
                    ("ct", Domain::string()),
                    ("at", at_domain()),
                    ("rt", Domain::string()),
                ],
            )
            .finish(),
    )
}

/// The (dirty) instance of Figure 1, tuples `t1`–`t14`.
///
/// `t12 = (EDI, UK, checking, 10.5%)` carries the wrong rate; see
/// [`clean_bank_database`] for the corrected instance.
pub fn bank_database() -> Database {
    let mut db = Database::empty(bank_schema());
    let ins = |db: &mut Database, rel: &str, t| {
        db.insert_into(rel, t).expect("fixture tuple well-typed");
    };
    // Figure 1(a): account in NYC branch.
    ins(
        &mut db,
        "account_nyc",
        tuple!["01", "J. Smith", "NYC, 19087", "212-5820844", "saving"],
    );
    ins(
        &mut db,
        "account_nyc",
        tuple!["02", "G. King", "NYC, 19022", "212-3963455", "checking"],
    );
    ins(
        &mut db,
        "account_nyc",
        tuple!["03", "J. Lee", "NYC, 02284", "212-5679844", "checking"],
    );
    // Figure 1(b): account in EDI branch.
    ins(
        &mut db,
        "account_edi",
        tuple!["01", "S. Bundy", "EDI, EH8 9LE", "131-6516501", "saving"],
    );
    ins(
        &mut db,
        "account_edi",
        tuple!["02", "I. Stark", "EDI, EH1 4FE", "131-6693423", "checking"],
    );
    // Figure 1(c): saving.
    ins(
        &mut db,
        "saving",
        tuple!["01", "J. Smith", "NYC, 19087", "212-5820844", "NYC"],
    );
    ins(
        &mut db,
        "saving",
        tuple!["01", "S. Bundy", "EDI, EH8 9LE", "131-6516501", "EDI"],
    );
    // Figure 1(d): checking.
    ins(
        &mut db,
        "checking",
        tuple!["02", "G. King", "NYC, 19022", "212-3963455", "NYC"],
    );
    ins(
        &mut db,
        "checking",
        tuple!["03", "J. Lee", "NYC, 02284", "212-5679844", "NYC"],
    );
    ins(
        &mut db,
        "checking",
        tuple!["02", "I. Stark", "EDI, EH1 4FE", "131-6693423", "EDI"],
    );
    // Figure 1(e): interest — t12 is the seeded error (10.5% vs 1.5%).
    ins(&mut db, "interest", tuple!["EDI", "UK", "saving", "4.5%"]);
    ins(
        &mut db,
        "interest",
        tuple!["EDI", "UK", "checking", "10.5%"],
    );
    ins(&mut db, "interest", tuple!["NYC", "US", "saving", "4%"]);
    ins(&mut db, "interest", tuple!["NYC", "US", "checking", "1%"]);
    db
}

/// The corrected instance: identical to [`bank_database`] except `t12`
/// records the correct 1.5% UK checking rate.
pub fn clean_bank_database() -> Database {
    let mut db = Database::empty(bank_schema());
    let dirty = bank_database();
    for (rel, inst) in dirty.iter() {
        for t in inst {
            let t = if t.values().contains(&crate::Value::str("10.5%")) {
                tuple!["EDI", "UK", "checking", "1.5%"]
            } else {
                t.clone()
            };
            db.insert(rel, t).expect("fixture tuple well-typed");
        }
    }
    db
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Value;

    #[test]
    fn bank_schema_shape() {
        let s = bank_schema();
        assert_eq!(s.len(), 5);
        assert_eq!(
            s.relation(s.rel_id("interest").unwrap()).unwrap().arity(),
            4
        );
        assert!(s.has_finite_attrs()); // `at` is finite
    }

    #[test]
    fn bank_database_has_fourteen_tuples() {
        let db = bank_database();
        assert_eq!(db.total_tuples(), 14);
        let interest = db.schema().rel_id("interest").unwrap();
        assert_eq!(db.relation(interest).len(), 4);
    }

    #[test]
    fn dirty_tuple_t12_present() {
        let db = bank_database();
        let interest = db.schema().rel_id("interest").unwrap();
        assert!(db
            .relation(interest)
            .contains(&tuple!["EDI", "UK", "checking", "10.5%"]));
    }

    #[test]
    fn clean_database_fixes_t12_only() {
        let clean = clean_bank_database();
        let interest = clean.schema().rel_id("interest").unwrap();
        assert!(clean
            .relation(interest)
            .contains(&tuple!["EDI", "UK", "checking", "1.5%"]));
        assert!(!clean
            .relation(interest)
            .iter()
            .any(|t| t.values().contains(&Value::str("10.5%"))));
        assert_eq!(clean.total_tuples(), 14);
    }
}
