//! Pattern values, pattern rows, and the match order `≍`.
//!
//! Section 2 of the paper: a pattern tableau entry `tp[A]` is either a
//! constant from `dom(A)` or the unnamed variable `_`, and the order `≍`
//! on values/patterns is defined by `η1 ≍ η2` iff `η1 = η2`, or `η1` is a
//! data value and `η2` is `_`. We say `t1` *matches* `t2` when `t1 ≍ t2`.

use crate::schema::AttrId;
use crate::tuple::Tuple;
use crate::value::Value;
use std::fmt;

/// One cell of a pattern tuple: a constant or the unnamed variable `_`.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub enum PValue {
    /// The unnamed variable `_`; matches every data value.
    Any,
    /// A constant; matches only itself.
    Const(Value),
}

impl PValue {
    /// Builds a constant pattern cell.
    pub fn constant(v: impl Into<Value>) -> Self {
        PValue::Const(v.into())
    }

    /// `v ≍ self` — does the data value match this pattern cell?
    pub fn matches(&self, v: &Value) -> bool {
        match self {
            PValue::Any => true,
            PValue::Const(c) => c == v,
        }
    }

    /// `self ≍ other` on pattern cells: used when comparing pattern rows
    /// (e.g. `(EDI, UK, 1.5%) ≍ (EDI, UK, _)` in the paper).
    pub fn subsumed_by(&self, other: &PValue) -> bool {
        match (self, other) {
            (_, PValue::Any) => true,
            (PValue::Const(a), PValue::Const(b)) => a == b,
            (PValue::Any, PValue::Const(_)) => false,
        }
    }

    /// Is this a constant cell?
    pub fn is_const(&self) -> bool {
        matches!(self, PValue::Const(_))
    }

    /// The constant payload, if any.
    pub fn as_const(&self) -> Option<&Value> {
        match self {
            PValue::Const(v) => Some(v),
            PValue::Any => None,
        }
    }
}

impl From<Value> for PValue {
    fn from(v: Value) -> Self {
        PValue::Const(v)
    }
}

impl From<&str> for PValue {
    fn from(s: &str) -> Self {
        PValue::Const(Value::str(s))
    }
}

impl fmt::Display for PValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PValue::Any => write!(f, "_"),
            PValue::Const(v) => write!(f, "{v}"),
        }
    }
}

/// A pattern row: a vector of pattern cells aligned with some attribute
/// list (`tp[A1, ..., Ak]`).
///
/// Dependencies store their pattern rows aligned with their attribute
/// lists, not with the full relation schema, mirroring the paper's
/// tableaux (Figures 2 and 4).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct PatternRow(Box<[PValue]>);

impl PatternRow {
    /// Creates a pattern row.
    pub fn new<I>(cells: I) -> Self
    where
        I: IntoIterator,
        I::Item: Into<PValue>,
    {
        PatternRow(cells.into_iter().map(Into::into).collect())
    }

    /// A row of `k` unnamed variables (the shape embedding a traditional
    /// dependency into its conditional class).
    pub fn all_any(k: usize) -> Self {
        PatternRow(vec![PValue::Any; k].into_boxed_slice())
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the row has no cells.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The cells in order.
    pub fn cells(&self) -> &[PValue] {
        &self.0
    }

    /// The cell at position `i`.
    pub fn cell(&self, i: usize) -> &PValue {
        &self.0[i]
    }

    /// `t[attrs] ≍ self` — does the projection of `t` onto `attrs` match
    /// this row, cell for cell?
    pub fn matches_tuple(&self, t: &Tuple, attrs: &[AttrId]) -> bool {
        debug_assert_eq!(self.0.len(), attrs.len());
        attrs
            .iter()
            .zip(self.0.iter())
            .all(|(a, p)| p.matches(&t[*a]))
    }

    /// `values ≍ self` for an already-projected slice of values.
    pub fn matches_values(&self, values: &[Value]) -> bool {
        debug_assert_eq!(self.0.len(), values.len());
        values.iter().zip(self.0.iter()).all(|(v, p)| p.matches(v))
    }

    /// `self ≍ other` lifted to rows (pointwise subsumption).
    pub fn subsumed_by(&self, other: &PatternRow) -> bool {
        self.0.len() == other.0.len()
            && self
                .0
                .iter()
                .zip(other.0.iter())
                .all(|(a, b)| a.subsumed_by(b))
    }

    /// Concatenation: `[self || other]`, mirroring the paper's `‖`
    /// separator between LHS and RHS pattern parts.
    pub fn concat(&self, other: &PatternRow) -> PatternRow {
        PatternRow(self.0.iter().chain(other.0.iter()).cloned().collect())
    }

    /// Sub-row at the given positions (positions index into this row, not
    /// into a schema).
    pub fn select(&self, positions: &[usize]) -> PatternRow {
        PatternRow(positions.iter().map(|&i| self.0[i].clone()).collect())
    }

    /// All constants mentioned in the row.
    pub fn constants(&self) -> impl Iterator<Item = &Value> {
        self.0.iter().filter_map(PValue::as_const)
    }

    /// Is every cell a constant?
    pub fn all_const(&self) -> bool {
        self.0.iter().all(PValue::is_const)
    }

    /// Is every cell the unnamed variable?
    pub fn is_all_any(&self) -> bool {
        self.0.iter().all(|p| matches!(p, PValue::Any))
    }
}

impl<P: Into<PValue>> FromIterator<P> for PatternRow {
    fn from_iter<I: IntoIterator<Item = P>>(iter: I) -> Self {
        PatternRow::new(iter)
    }
}

impl fmt::Display for PatternRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, p) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{p}")?;
        }
        write!(f, ")")
    }
}

/// Builds a [`PatternRow`]; use `_` for the unnamed variable:
/// `prow![_, "EDI", _]`.
#[macro_export]
macro_rules! prow {
    (@cell _) => { $crate::PValue::Any };
    (@cell $v:expr) => { $crate::PValue::from($v) };
    () => {
        $crate::PatternRow::new(::std::vec::Vec::<$crate::PValue>::new())
    };
    ($($cell:tt),+ $(,)?) => {
        $crate::PatternRow::new(vec![$($crate::prow!(@cell $cell)),+])
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;

    #[test]
    fn pvalue_match_order() {
        // η1 ≍ η2 iff η1 = η2 or η2 = `_`.
        assert!(PValue::Any.matches(&Value::str("EDI")));
        assert!(PValue::constant("EDI").matches(&Value::str("EDI")));
        assert!(!PValue::constant("EDI").matches(&Value::str("NYC")));
    }

    #[test]
    fn paper_example_row_matching() {
        // (EDI, UK, 1.5%) ≍ (EDI, UK, _), but (EDI, UK, 4.5%) ≭ (EDI, UK, 10.5%).
        let data = tuple!["EDI", "UK", "1.5%"];
        let attrs = [AttrId(0), AttrId(1), AttrId(2)];
        let pat = prow!["EDI", "UK", _];
        assert!(pat.matches_tuple(&data, &attrs));

        let pat2 = prow!["EDI", "UK", "10.5%"];
        let data2 = tuple!["EDI", "UK", "4.5%"];
        assert!(!pat2.matches_tuple(&data2, &attrs));
    }

    #[test]
    fn row_subsumption() {
        let concrete = prow!["EDI", "UK", "1.5%"];
        let wild = prow!["EDI", "UK", _];
        assert!(concrete.subsumed_by(&wild));
        assert!(!wild.subsumed_by(&concrete));
        assert!(wild.subsumed_by(&wild));
        // Length mismatch is never subsumed.
        assert!(!concrete.subsumed_by(&prow!["EDI", "UK"]));
    }

    #[test]
    fn concat_and_select() {
        let lhs = prow![_, "saving"];
        let rhs = prow![_, "B"];
        let both = lhs.concat(&rhs);
        assert_eq!(both.len(), 4);
        assert_eq!(both.cell(1), &PValue::constant("saving"));
        assert_eq!(both.cell(3), &PValue::constant("B"));
        let sel = both.select(&[3, 0]);
        assert_eq!(sel, prow!["B", _]);
    }

    #[test]
    fn constants_iterator_and_predicates() {
        let row = prow![_, "a", _, "b"];
        let cs: Vec<_> = row.constants().cloned().collect();
        assert_eq!(cs, vec![Value::str("a"), Value::str("b")]);
        assert!(!row.all_const());
        assert!(!row.is_all_any());
        assert!(PatternRow::all_any(3).is_all_any());
        assert!(prow!["x"].all_const());
    }

    #[test]
    fn matches_values_on_projected_slices() {
        let row = prow!["EDI", _];
        assert!(row.matches_values(&[Value::str("EDI"), Value::str("z")]));
        assert!(!row.matches_values(&[Value::str("NYC"), Value::str("z")]));
    }

    #[test]
    fn empty_rows_match_trivially() {
        // CINDs like ψ5 have X = nil; the X-part row is empty and matches.
        let row = PatternRow::new(Vec::<PValue>::new());
        assert!(row.is_empty());
        assert!(row.matches_values(&[]));
        assert!(row.subsumed_by(&PatternRow::all_any(0)));
    }

    #[test]
    fn display() {
        assert_eq!(prow![_, "EDI"].to_string(), "(_, EDI)");
    }
}
