//! Database instances.

use crate::error::ModelError;
use crate::relation::Relation;
use crate::schema::{RelId, Schema};
use crate::tuple::Tuple;
use std::fmt;
use std::sync::Arc;

/// A database instance `D = (I1, ..., In)` of a [`Schema`].
///
/// Insertion validates arity and domain membership, so a `Database` is
/// well-typed by construction — dependency checkers can index fields
/// without re-validating.
#[derive(Clone, Debug)]
pub struct Database {
    schema: Arc<Schema>,
    relations: Vec<Relation>,
}

impl Database {
    /// An empty instance of `schema`.
    pub fn empty(schema: Arc<Schema>) -> Self {
        let relations = (0..schema.len()).map(|_| Relation::new()).collect();
        Database { schema, relations }
    }

    /// The schema this instance conforms to.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// The instance of relation `rel`.
    pub fn relation(&self, rel: RelId) -> &Relation {
        &self.relations[rel.index()]
    }

    /// Validates and inserts a tuple into relation `rel`. Returns
    /// whether the tuple was new.
    pub fn insert(&mut self, rel: RelId, t: Tuple) -> crate::Result<bool> {
        self.check_tuple(rel, &t)?;
        Ok(self.relations[rel.index()].insert(t))
    }

    /// Would `t` be a well-typed tuple of relation `rel`? The validation
    /// [`Database::insert`] performs, without inserting — used to reject
    /// a bad replacement *before* deleting the tuple it updates.
    pub fn check_tuple(&self, rel: RelId, t: &Tuple) -> crate::Result<()> {
        let rs = self.schema.relation(rel)?;
        if t.arity() != rs.arity() {
            return Err(ModelError::ArityMismatch {
                relation: rs.name().to_string(),
                expected: rs.arity(),
                actual: t.arity(),
            });
        }
        for (attr_id, attr) in rs.iter() {
            let v = &t[attr_id];
            if !attr.domain().contains(v) {
                return Err(ModelError::DomainViolation {
                    relation: rs.name().to_string(),
                    attribute: attr.name().to_string(),
                    value: v.to_string(),
                });
            }
        }
        Ok(())
    }

    /// Removes a tuple by value from relation `rel` (set semantics:
    /// `None` when it was not present). Deletion is swap-based — see
    /// [`crate::relation::Removed`] for the single position that may
    /// have been renumbered.
    pub fn remove(&mut self, rel: RelId, t: &Tuple) -> Option<crate::relation::Removed> {
        self.relations[rel.index()].remove(t)
    }

    /// Removes the tuple at dense position `pos` of relation `rel` —
    /// [`Database::remove`] minus the by-value lookup, for callers that
    /// already resolved the position (e.g. a delta engine).
    pub fn remove_at(&mut self, rel: RelId, pos: usize) -> Option<crate::relation::Removed> {
        self.relations[rel.index()].remove_at(pos)
    }

    /// Edits one cell of a resident tuple of relation `rel`, validating
    /// the replacement value against the attribute's domain first (an
    /// ill-typed edit leaves the database untouched). See
    /// [`Relation::edit_cell`] for the `(edited, merged)` result.
    pub fn edit_cell(
        &mut self,
        rel: RelId,
        t: &Tuple,
        attr: crate::schema::AttrId,
        v: crate::value::Value,
    ) -> crate::Result<Option<(Tuple, bool)>> {
        self.check_tuple(rel, &t.with(attr, v.clone()))?;
        Ok(self.relations[rel.index()].edit_cell(t, attr, v))
    }

    /// Inserts resolving the relation by name — convenient for fixtures.
    pub fn insert_into(&mut self, rel_name: &str, t: Tuple) -> crate::Result<bool> {
        let rel = self.schema.rel_id(rel_name)?;
        self.insert(rel, t)
    }

    /// Inserts many tuples into one relation.
    pub fn insert_all<I>(&mut self, rel: RelId, tuples: I) -> crate::Result<usize>
    where
        I: IntoIterator<Item = Tuple>,
    {
        let mut added = 0;
        for t in tuples {
            if self.insert(rel, t)? {
                added += 1;
            }
        }
        Ok(added)
    }

    /// Total number of tuples across all relations.
    pub fn total_tuples(&self) -> usize {
        self.relations.iter().map(Relation::len).sum()
    }

    /// Is every relation empty?
    ///
    /// The consistency problem asks for a **nonempty** instance (Section
    /// 3.1): the empty database vacuously satisfies every CIND and CFD,
    /// so algorithms must rule it out explicitly.
    pub fn is_empty(&self) -> bool {
        self.relations.iter().all(Relation::is_empty)
    }

    /// Iterator over `(RelId, &Relation)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (RelId, &Relation)> {
        self.relations
            .iter()
            .enumerate()
            .map(|(i, r)| (RelId(i as u32), r))
    }
}

impl fmt::Display for Database {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (rel, inst) in self.iter() {
            let rs = self.schema.relation(rel).expect("relation in range");
            writeln!(f, "{} ({} tuples):", rs.name(), inst.len())?;
            write!(f, "{inst}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::Domain;
    use crate::tuple;

    fn schema() -> Arc<Schema> {
        Arc::new(
            Schema::builder()
                .relation(
                    "interest",
                    &[
                        ("ab", Domain::string()),
                        ("ct", Domain::finite_strs(&["UK", "US"])),
                    ],
                )
                .finish(),
        )
    }

    #[test]
    fn insert_validates_arity() {
        let mut db = Database::empty(schema());
        let err = db.insert_into("interest", tuple!["EDI"]).unwrap_err();
        assert!(matches!(err, ModelError::ArityMismatch { .. }));
    }

    #[test]
    fn insert_validates_domains() {
        let mut db = Database::empty(schema());
        let err = db.insert_into("interest", tuple!["EDI", "FR"]).unwrap_err();
        assert!(matches!(err, ModelError::DomainViolation { .. }));
        // Type errors are domain violations too.
        let err = db.insert_into("interest", tuple![1i64, "UK"]).unwrap_err();
        assert!(matches!(err, ModelError::DomainViolation { .. }));
    }

    #[test]
    fn insert_ok_and_dedup() {
        let mut db = Database::empty(schema());
        assert!(db.insert_into("interest", tuple!["EDI", "UK"]).unwrap());
        assert!(!db.insert_into("interest", tuple!["EDI", "UK"]).unwrap());
        assert_eq!(db.total_tuples(), 1);
        assert!(!db.is_empty());
    }

    #[test]
    fn remove_deletes_and_reports_the_swap() {
        let mut db = Database::empty(schema());
        let rel = db.schema().rel_id("interest").unwrap();
        db.insert(rel, tuple!["EDI", "UK"]).unwrap();
        db.insert(rel, tuple!["NYC", "US"]).unwrap();
        db.insert(rel, tuple!["GLA", "UK"]).unwrap();
        let removed = db.remove(rel, &tuple!["EDI", "UK"]).unwrap();
        assert_eq!(removed.pos, 0);
        assert_eq!(removed.moved_from, Some(2));
        assert_eq!(db.relation(rel).position(&tuple!["GLA", "UK"]), Some(0));
        assert_eq!(db.total_tuples(), 2);
        assert!(db.remove(rel, &tuple!["EDI", "UK"]).is_none());
    }

    #[test]
    fn check_tuple_validates_without_inserting() {
        let db = Database::empty(schema());
        let rel = db.schema().rel_id("interest").unwrap();
        assert!(db.check_tuple(rel, &tuple!["EDI", "UK"]).is_ok());
        assert!(matches!(
            db.check_tuple(rel, &tuple!["EDI"]),
            Err(ModelError::ArityMismatch { .. })
        ));
        assert!(matches!(
            db.check_tuple(rel, &tuple!["EDI", "FR"]),
            Err(ModelError::DomainViolation { .. })
        ));
        assert!(db.is_empty(), "check_tuple must not insert");
    }

    #[test]
    fn empty_database_is_empty() {
        let db = Database::empty(schema());
        assert!(db.is_empty());
        assert_eq!(db.total_tuples(), 0);
    }

    #[test]
    fn unknown_relation_name() {
        let mut db = Database::empty(schema());
        assert!(matches!(
            db.insert_into("nope", tuple!["x", "UK"]),
            Err(ModelError::UnknownRelation(_))
        ));
    }

    #[test]
    fn insert_all_counts_new_tuples() {
        let mut db = Database::empty(schema());
        let rel = db.schema().rel_id("interest").unwrap();
        let n = db
            .insert_all(
                rel,
                vec![
                    tuple!["EDI", "UK"],
                    tuple!["NYC", "US"],
                    tuple!["EDI", "UK"],
                ],
            )
            .unwrap();
        assert_eq!(n, 2);
    }
}
