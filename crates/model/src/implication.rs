//! Shared vocabulary for the workspace's implication engines.
//!
//! Both implication procedures — the CFD checker in `condep-cfd` and the
//! CIND chase game in `condep-core` — are budgeted searches that can end
//! without a verdict. They historically each carried their own verdict
//! enum and budget struct; the types live here (the one crate both
//! depend on) so that callers mixing the two engines (cover computation,
//! discovery ranking) speak a single configuration language.

/// Verdict of an implication check.
///
/// Budget-limited procedures return [`Implication::Unknown`] when the
/// search space is exhausted before a verdict; soundness-critical
/// consumers (cover minimization, discovery dedup) must treat `Unknown`
/// as "keep the dependency".
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Implication {
    /// `Σ |= φ`.
    Implied,
    /// A counterexample (construction) exists.
    NotImplied,
    /// Budget exhausted before a verdict.
    Unknown,
}

/// Unified budgets for the implication procedures.
///
/// One struct covers both engines; each reads only the fields relevant
/// to its search:
///
/// * `max_instances` — CFD exhaustive counterexample enumeration
///   (`condep_cfd::implication::implies_exhaustive`): cap on candidate
///   instances tried. `None` means unbounded.
/// * `max_states` / `max_initial_assignments` — CIND chase game
///   (`condep_core::implication::implies`): caps on abstract tuples
///   explored per game and on initial finite-domain assignments.
#[derive(Clone, Copy, Debug)]
pub struct ImplicationConfig {
    /// Cap on candidate instances tried by the CFD exhaustive search;
    /// `None` = unbounded.
    pub max_instances: Option<u64>,
    /// Cap on distinct abstract tuples explored per CIND chase game.
    pub max_states: usize,
    /// Cap on initial assignments of the CIND game's finite fields.
    pub max_initial_assignments: u64,
}

impl Default for ImplicationConfig {
    fn default() -> Self {
        ImplicationConfig {
            max_instances: Some(4_096),
            max_states: 200_000,
            max_initial_assignments: 4_096,
        }
    }
}

impl ImplicationConfig {
    /// No budget at all: every check runs to a definite verdict (or
    /// forever — callers must know their inputs terminate).
    pub fn unbounded() -> Self {
        ImplicationConfig {
            max_instances: None,
            max_states: usize::MAX,
            max_initial_assignments: u64::MAX,
        }
    }

    /// The default budgets with the CFD instance cap overridden.
    pub fn with_max_instances(n: u64) -> Self {
        ImplicationConfig {
            max_instances: Some(n),
            ..ImplicationConfig::default()
        }
    }
}
