//! Tuples.

use crate::schema::AttrId;
use crate::value::Value;
use std::fmt;
use std::ops::Index;

/// An immutable tuple of data values.
///
/// Width always equals the arity of the relation it lives in (enforced by
/// [`crate::Database::insert`]). Fields are addressed positionally by
/// [`AttrId`].
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Tuple(Box<[Value]>);

impl Tuple {
    /// Creates a tuple from values.
    pub fn new<I>(values: I) -> Self
    where
        I: IntoIterator,
        I::Item: Into<Value>,
    {
        Tuple(values.into_iter().map(Into::into).collect())
    }

    /// Number of fields.
    pub fn arity(&self) -> usize {
        self.0.len()
    }

    /// The field at `attr`, or `None` when out of range.
    pub fn get(&self, attr: AttrId) -> Option<&Value> {
        self.0.get(attr.index())
    }

    /// All fields in order.
    pub fn values(&self) -> &[Value] {
        &self.0
    }

    /// Projection `t[A1, ..., Ak]`: the listed fields, in list order.
    ///
    /// The paper writes `t[X]` for a list `X` of attributes; projections
    /// preserve the order of `X`, not of the schema, which matters for
    /// the permutation rule CIND2.
    pub fn project(&self, attrs: &[AttrId]) -> Vec<Value> {
        attrs.iter().map(|a| self.0[a.index()].clone()).collect()
    }

    /// Like [`Tuple::project`] but borrowing — avoids clones on hot
    /// violation-detection paths.
    pub fn project_ref<'a>(&'a self, attrs: &[AttrId]) -> Vec<&'a Value> {
        attrs.iter().map(|a| &self.0[a.index()]).collect()
    }

    /// Returns a copy with field `attr` replaced by `v`.
    pub fn with(&self, attr: AttrId, v: Value) -> Tuple {
        let mut vs = self.0.to_vec();
        vs[attr.index()] = v;
        Tuple(vs.into_boxed_slice())
    }
}

impl Index<AttrId> for Tuple {
    type Output = Value;
    fn index(&self, attr: AttrId) -> &Value {
        &self.0[attr.index()]
    }
}

impl<V: Into<Value>> FromIterator<V> for Tuple {
    fn from_iter<I: IntoIterator<Item = V>>(iter: I) -> Self {
        Tuple::new(iter)
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

/// Builds a [`Tuple`] from a heterogeneous list of values, e.g.
/// `tuple!["01", "J. Smith", 212]`.
#[macro_export]
macro_rules! tuple {
    ($($v:expr),* $(,)?) => {
        $crate::Tuple::new(vec![$($crate::Value::from($v)),*])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let t = tuple!["01", "J. Smith", 19087i64, true];
        assert_eq!(t.arity(), 4);
        assert_eq!(t[AttrId(0)], Value::str("01"));
        assert_eq!(t.get(AttrId(3)), Some(&Value::bool(true)));
        assert_eq!(t.get(AttrId(4)), None);
    }

    #[test]
    fn projection_preserves_list_order() {
        let t = tuple!["a", "b", "c"];
        assert_eq!(
            t.project(&[AttrId(2), AttrId(0)]),
            vec![Value::str("c"), Value::str("a")]
        );
        let refs = t.project_ref(&[AttrId(1)]);
        assert_eq!(refs, vec![&Value::str("b")]);
    }

    #[test]
    fn with_replaces_one_field() {
        let t = tuple!["a", "b"];
        let t2 = t.with(AttrId(1), Value::str("z"));
        assert_eq!(t2, tuple!["a", "z"]);
        assert_eq!(t, tuple!["a", "b"]); // original untouched
    }

    #[test]
    fn equality_and_hash_by_content() {
        use std::collections::HashSet;
        let mut s = HashSet::new();
        s.insert(tuple!["x", 1i64]);
        assert!(s.contains(&tuple!["x", 1i64]));
        assert!(!s.contains(&tuple!["x", 2i64]));
    }

    #[test]
    fn display() {
        assert_eq!(tuple!["EDI", "UK"].to_string(), "(EDI, UK)");
    }

    #[test]
    fn from_iterator() {
        let t: Tuple = ["a", "b"].into_iter().collect();
        assert_eq!(t, tuple!["a", "b"]);
    }
}
