//! Relation schemas and database schemas.
//!
//! A database schema `R = (R1, ..., Rn)` (paper, Section 2). Relations
//! and attributes are addressed by dense integer ids ([`RelId`],
//! [`AttrId`]) so that dependency definitions, the chase, and the query
//! engine can use vector indexing everywhere; names resolve to ids once,
//! at construction time.

use crate::domain::Domain;
use crate::error::ModelError;
use std::collections::HashMap;
use std::fmt;

/// Index of a relation within a [`Schema`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct RelId(pub u32);

impl RelId {
    /// The id as a usize index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for RelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "R{}", self.0)
    }
}

/// Index of an attribute within its relation schema (a column position).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct AttrId(pub u32);

impl AttrId {
    /// The id as a usize index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for AttrId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// A named, typed attribute.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Attribute {
    name: String,
    domain: Domain,
}

impl Attribute {
    /// Creates an attribute.
    pub fn new(name: impl Into<String>, domain: Domain) -> Self {
        Attribute {
            name: name.into(),
            domain,
        }
    }

    /// The attribute's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The attribute's domain.
    pub fn domain(&self) -> &Domain {
        &self.domain
    }

    /// Is the domain finite (`A ∈ finattr(R)`)?
    pub fn is_finite(&self) -> bool {
        self.domain.is_finite()
    }
}

/// A relation schema `R(A1, ..., Ak)`.
#[derive(Clone, Debug)]
pub struct RelationSchema {
    name: String,
    attributes: Vec<Attribute>,
    by_name: HashMap<String, AttrId>,
}

impl RelationSchema {
    /// Creates a relation schema, rejecting duplicate attribute names.
    pub fn new(name: impl Into<String>, attributes: Vec<Attribute>) -> crate::Result<Self> {
        let name = name.into();
        let mut by_name = HashMap::with_capacity(attributes.len());
        for (i, a) in attributes.iter().enumerate() {
            if by_name
                .insert(a.name().to_string(), AttrId(i as u32))
                .is_some()
            {
                return Err(ModelError::DuplicateName(format!("{name}.{}", a.name())));
            }
        }
        Ok(RelationSchema {
            name,
            attributes,
            by_name,
        })
    }

    /// The relation's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of attributes (the relation's arity).
    pub fn arity(&self) -> usize {
        self.attributes.len()
    }

    /// All attributes, in declaration order.
    pub fn attributes(&self) -> &[Attribute] {
        &self.attributes
    }

    /// The attribute at `id`, or an error when out of range.
    pub fn attribute(&self, id: AttrId) -> crate::Result<&Attribute> {
        self.attributes
            .get(id.index())
            .ok_or_else(|| ModelError::AttrOutOfRange {
                relation: self.name.clone(),
                index: id.index(),
            })
    }

    /// Resolves an attribute name to its id.
    pub fn attr_id(&self, name: &str) -> crate::Result<AttrId> {
        self.by_name
            .get(name)
            .copied()
            .ok_or_else(|| ModelError::UnknownAttribute {
                relation: self.name.clone(),
                attribute: name.to_string(),
            })
    }

    /// Resolves several attribute names at once (order preserved).
    pub fn attr_ids(&self, names: &[&str]) -> crate::Result<Vec<AttrId>> {
        names.iter().map(|n| self.attr_id(n)).collect()
    }

    /// Iterator over `(AttrId, &Attribute)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (AttrId, &Attribute)> {
        self.attributes
            .iter()
            .enumerate()
            .map(|(i, a)| (AttrId(i as u32), a))
    }

    /// Ids of the finite-domain attributes (`finattr` restricted to this
    /// relation).
    pub fn finite_attrs(&self) -> Vec<AttrId> {
        self.iter()
            .filter(|(_, a)| a.is_finite())
            .map(|(id, _)| id)
            .collect()
    }
}

impl fmt::Display for RelationSchema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.name)?;
        for (i, a) in self.attributes.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}: {}", a.name(), a.domain())?;
        }
        write!(f, ")")
    }
}

/// A database schema: an ordered collection of relation schemas with
/// name-based lookup.
#[derive(Clone, Debug)]
pub struct Schema {
    relations: Vec<RelationSchema>,
    by_name: HashMap<String, RelId>,
}

impl Schema {
    /// Creates a schema, rejecting duplicate relation names.
    pub fn new(relations: Vec<RelationSchema>) -> crate::Result<Self> {
        let mut by_name = HashMap::with_capacity(relations.len());
        for (i, r) in relations.iter().enumerate() {
            if by_name
                .insert(r.name().to_string(), RelId(i as u32))
                .is_some()
            {
                return Err(ModelError::DuplicateName(r.name().to_string()));
            }
        }
        Ok(Schema { relations, by_name })
    }

    /// Starts a fluent [`SchemaBuilder`].
    pub fn builder() -> SchemaBuilder {
        SchemaBuilder::default()
    }

    /// Number of relations.
    pub fn len(&self) -> usize {
        self.relations.len()
    }

    /// Whether the schema has no relations.
    pub fn is_empty(&self) -> bool {
        self.relations.is_empty()
    }

    /// All relation schemas, in declaration order.
    pub fn relations(&self) -> &[RelationSchema] {
        &self.relations
    }

    /// The relation schema at `id`, or an error when out of range.
    pub fn relation(&self, id: RelId) -> crate::Result<&RelationSchema> {
        self.relations
            .get(id.index())
            .ok_or(ModelError::RelOutOfRange(id.index()))
    }

    /// Resolves a relation name to its id.
    pub fn rel_id(&self, name: &str) -> crate::Result<RelId> {
        self.by_name
            .get(name)
            .copied()
            .ok_or_else(|| ModelError::UnknownRelation(name.to_string()))
    }

    /// Iterator over `(RelId, &RelationSchema)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (RelId, &RelationSchema)> {
        self.relations
            .iter()
            .enumerate()
            .map(|(i, r)| (RelId(i as u32), r))
    }

    /// Does any relation have a finite-domain attribute? Decides which
    /// complexity regime (Table 1 vs Table 2) a constraint set falls in.
    pub fn has_finite_attrs(&self) -> bool {
        self.relations
            .iter()
            .any(|r| r.attributes().iter().any(Attribute::is_finite))
    }

    /// The maximum arity over all relations (the `a` of the complexity
    /// bounds in Section 5).
    pub fn max_arity(&self) -> usize {
        self.relations
            .iter()
            .map(RelationSchema::arity)
            .max()
            .unwrap_or(0)
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in &self.relations {
            writeln!(f, "{r}")?;
        }
        Ok(())
    }
}

/// Fluent builder for [`Schema`]; panics on invalid definitions, which is
/// the right trade-off for statically known schemas in examples and
/// tests. Use [`Schema::new`] for dynamically constructed schemas.
#[derive(Default)]
pub struct SchemaBuilder {
    relations: Vec<RelationSchema>,
}

impl SchemaBuilder {
    /// Adds a relation with the given `(name, domain)` attribute list.
    pub fn relation(mut self, name: &str, attrs: &[(&str, Domain)]) -> Self {
        let attributes = attrs
            .iter()
            .map(|(n, d)| Attribute::new(*n, d.clone()))
            .collect();
        let rel = RelationSchema::new(name, attributes)
            .unwrap_or_else(|e| panic!("invalid relation `{name}`: {e}"));
        self.relations.push(rel);
        self
    }

    /// Adds a relation whose attributes are all infinite strings.
    pub fn relation_str(self, name: &str, attrs: &[&str]) -> Self {
        let list: Vec<(&str, Domain)> = attrs.iter().map(|a| (*a, Domain::string())).collect();
        self.relation(name, &list)
    }

    /// Finishes the schema.
    pub fn finish(self) -> Schema {
        Schema::new(self.relations).unwrap_or_else(|e| panic!("invalid schema: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_rel_schema() -> Schema {
        Schema::builder()
            .relation(
                "saving",
                &[
                    ("an", Domain::string()),
                    ("ab", Domain::finite_strs(&["EDI", "NYC"])),
                ],
            )
            .relation_str("interest", &["ab", "rt"])
            .finish()
    }

    #[test]
    fn name_resolution_round_trips() {
        let s = two_rel_schema();
        let saving = s.rel_id("saving").unwrap();
        assert_eq!(s.relation(saving).unwrap().name(), "saving");
        let ab = s.relation(saving).unwrap().attr_id("ab").unwrap();
        assert_eq!(
            s.relation(saving).unwrap().attribute(ab).unwrap().name(),
            "ab"
        );
    }

    #[test]
    fn unknown_lookups_fail() {
        let s = two_rel_schema();
        assert!(matches!(
            s.rel_id("nope"),
            Err(ModelError::UnknownRelation(_))
        ));
        let saving = s.rel_id("saving").unwrap();
        assert!(matches!(
            s.relation(saving).unwrap().attr_id("nope"),
            Err(ModelError::UnknownAttribute { .. })
        ));
    }

    #[test]
    fn duplicate_names_rejected() {
        let r = RelationSchema::new(
            "r",
            vec![
                Attribute::new("a", Domain::string()),
                Attribute::new("a", Domain::string()),
            ],
        );
        assert!(matches!(r, Err(ModelError::DuplicateName(_))));

        let r1 = RelationSchema::new("r", vec![Attribute::new("a", Domain::string())]).unwrap();
        let r2 = r1.clone();
        assert!(matches!(
            Schema::new(vec![r1, r2]),
            Err(ModelError::DuplicateName(_))
        ));
    }

    #[test]
    fn finite_attr_detection() {
        let s = two_rel_schema();
        assert!(s.has_finite_attrs());
        let saving = s.rel_id("saving").unwrap();
        assert_eq!(s.relation(saving).unwrap().finite_attrs(), vec![AttrId(1)]);

        let all_inf = Schema::builder().relation_str("r", &["a", "b"]).finish();
        assert!(!all_inf.has_finite_attrs());
    }

    #[test]
    fn attr_ids_resolves_in_order() {
        let s = two_rel_schema();
        let saving = s.rel_id("saving").unwrap();
        let ids = s.relation(saving).unwrap().attr_ids(&["ab", "an"]).unwrap();
        assert_eq!(ids, vec![AttrId(1), AttrId(0)]);
    }

    #[test]
    fn max_arity_and_len() {
        let s = two_rel_schema();
        assert_eq!(s.len(), 2);
        assert_eq!(s.max_arity(), 2);
        assert!(!s.is_empty());
    }

    #[test]
    fn display_contains_names() {
        let s = two_rel_schema();
        let out = s.to_string();
        assert!(out.contains("saving"));
        assert!(out.contains("interest"));
        assert!(out.contains("{EDI, NYC}"));
    }
}
