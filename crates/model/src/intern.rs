//! String interning and compact value symbols.
//!
//! The batched Σ-validation engine probes hash tables with tuple
//! projections. Hashing `Value::Str(Arc<str>)` keys means chasing a
//! pointer and hashing every byte on each probe; an [`Interner`] maps
//! each distinct string of a [`Database`] to a dense `u32` [`Sym`] once,
//! after which keys become word-sized [`SymValue`]s — `Copy`, cheap to
//! hash, and comparable without dereferencing.

use crate::database::Database;
use crate::fxhash::FxBuildHasher;
use crate::value::Value;
use std::collections::HashMap;
use std::sync::Arc;

/// A dense interned-string handle, valid for the [`Interner`] that
/// produced it.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Sym(pub u32);

/// A compact, `Copy` rendering of a [`Value`] under some [`Interner`]:
/// strings become symbols, numbers and booleans stay inline. Two
/// `SymValue`s from the same interner are equal iff the underlying
/// values are equal.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub enum SymValue {
    /// An inline boolean.
    Bool(bool),
    /// An inline integer.
    Int(i64),
    /// An interned string.
    Str(Sym),
}

/// A per-database string interner.
///
/// Build one with [`Interner::from_database`] (interning every string the
/// instance contains), then translate values with [`Interner::sym_value`]
/// for read-only probing or [`Interner::intern_value`] when new strings
/// may still arrive (streaming inserts).
#[derive(Clone, Default, Debug)]
pub struct Interner {
    map: HashMap<Arc<str>, u32, FxBuildHasher>,
    strs: Vec<Arc<str>>,
}

impl Interner {
    /// An empty interner.
    pub fn new() -> Self {
        Interner::default()
    }

    /// Interns every string value appearing in `db`.
    pub fn from_database(db: &Database) -> Self {
        let mut interner = Interner::new();
        for (_, rel) in db.iter() {
            for t in rel.iter() {
                for v in t.values() {
                    if let Value::Str(s) = v {
                        interner.intern(s);
                    }
                }
            }
        }
        interner
    }

    /// Interns `s`, returning its (possibly new) symbol.
    pub fn intern(&mut self, s: &Arc<str>) -> Sym {
        if let Some(&id) = self.map.get(s) {
            return Sym(id);
        }
        let id = u32::try_from(self.strs.len()).expect("interner capacity exceeded");
        self.map.insert(s.clone(), id);
        self.strs.push(s.clone());
        Sym(id)
    }

    /// The symbol of an already-interned string, if any.
    pub fn lookup(&self, s: &str) -> Option<Sym> {
        self.map.get(s).map(|&id| Sym(id))
    }

    /// The string behind a symbol.
    pub fn resolve(&self, sym: Sym) -> &str {
        &self.strs[sym.0 as usize]
    }

    /// The shared `Arc` behind a symbol — what a compaction pass uses to
    /// re-intern live strings into a fresh interner without copying.
    pub fn resolve_arc(&self, sym: Sym) -> &Arc<str> {
        &self.strs[sym.0 as usize]
    }

    /// Total bytes held by the interned strings (the payload a
    /// compaction pass can reclaim when strings go dead).
    pub fn str_bytes(&self) -> usize {
        self.strs.iter().map(|s| s.len()).sum()
    }

    /// Number of distinct interned strings.
    pub fn len(&self) -> usize {
        self.strs.len()
    }

    /// Whether nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.strs.is_empty()
    }

    /// Translates a value, interning new strings as needed.
    pub fn intern_value(&mut self, v: &Value) -> SymValue {
        match v {
            Value::Bool(b) => SymValue::Bool(*b),
            Value::Int(i) => SymValue::Int(*i),
            Value::Str(s) => SymValue::Str(self.intern(s)),
        }
    }

    /// Read-only translation: `None` when `v` is a string this interner
    /// has never seen — which, for an interner built from a database,
    /// means **no tuple of that database can equal `v`**. Callers use
    /// that to skip entire constraint groups.
    pub fn sym_value(&self, v: &Value) -> Option<SymValue> {
        match v {
            Value::Bool(b) => Some(SymValue::Bool(*b)),
            Value::Int(i) => Some(SymValue::Int(*i)),
            Value::Str(s) => self.lookup(s).map(SymValue::Str),
        }
    }
}

/// A column-major symbolized copy of a database: for each relation, one
/// `Vec<SymValue>` per attribute, indexed by dense tuple position.
///
/// Built once per validation sweep via [`SymTables::build`]; afterwards
/// every group-by index over any attribute list reads plain `Copy`
/// columns — no string hashing anywhere in the per-group work, no matter
/// how many constraint groups share the relation.
#[derive(Clone, Debug)]
pub struct SymTables {
    /// `tables[rel][attr][pos]`.
    tables: Vec<Vec<Vec<SymValue>>>,
}

impl SymTables {
    /// Symbolizes every value of `db`, returning the tables plus the
    /// interner that resolves them.
    pub fn build(db: &Database) -> (Interner, SymTables) {
        SymTables::build_for(db, |_| true)
    }

    /// Like [`SymTables::build`], but only symbolizes the relations for
    /// which `needed` returns `true` — a validation sweep passes the
    /// relations its constraint groups actually touch, so an
    /// unconstrained large relation costs nothing. Columns of skipped
    /// relations are empty and must not be read.
    pub fn build_for(
        db: &Database,
        needed: impl Fn(crate::schema::RelId) -> bool,
    ) -> (Interner, SymTables) {
        let mut interner = Interner::new();
        let mut tables = Vec::new();
        for (rel_id, rel) in db.iter() {
            if !needed(rel_id) {
                tables.push(Vec::new());
                continue;
            }
            // Arity from the schema, so empty relations still expose
            // their (empty) columns.
            let arity = db
                .schema()
                .relation(rel_id)
                .map(|rs| rs.arity())
                .unwrap_or_else(|_| rel.iter().next().map_or(0, |t| t.arity()));
            let mut cols: Vec<Vec<SymValue>> =
                (0..arity).map(|_| Vec::with_capacity(rel.len())).collect();
            for t in rel.iter() {
                for (col, v) in cols.iter_mut().zip(t.values()) {
                    col.push(interner.intern_value(v));
                }
            }
            tables.push(cols);
        }
        (interner, SymTables { tables })
    }

    /// The symbolized column of `attr` in `rel` (dense position order).
    pub fn column(&self, rel: crate::schema::RelId, attr: crate::schema::AttrId) -> &[SymValue] {
        &self.tables[rel.index()][attr.index()]
    }

    /// The columns of `rel` for an attribute list, in list order.
    pub fn columns(
        &self,
        rel: crate::schema::RelId,
        attrs: &[crate::schema::AttrId],
    ) -> Vec<&[SymValue]> {
        attrs.iter().map(|a| self.column(rel, *a)).collect()
    }

    /// Number of rows symbolized for `rel`.
    pub fn rows(&self, rel: crate::schema::RelId) -> usize {
        self.tables[rel.index()].first().map_or(0, Vec::len)
    }

    /// Every symbolized column of `rel`, in attribute order — what a
    /// profiling pass sweeping all attributes of a relation wants
    /// (empty for relations skipped by [`SymTables::build_for`]).
    pub fn rel_columns(&self, rel: crate::schema::RelId) -> &[Vec<SymValue>] {
        &self.tables[rel.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::bank_database;
    use crate::tuple;

    #[test]
    fn intern_is_idempotent_and_resolves() {
        let mut i = Interner::new();
        let a = i.intern(&Arc::from("EDI"));
        let b = i.intern(&Arc::from("EDI"));
        let c = i.intern(&Arc::from("NYC"));
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(i.resolve(a), "EDI");
        assert_eq!(i.resolve(c), "NYC");
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn from_database_covers_every_string() {
        let db = bank_database();
        let interner = Interner::from_database(&db);
        for (_, rel) in db.iter() {
            for t in rel.iter() {
                for v in t.values() {
                    if let Value::Str(s) = v {
                        assert!(interner.lookup(s).is_some(), "missing {s}");
                    }
                }
            }
        }
    }

    #[test]
    fn sym_value_distinguishes_known_from_unknown() {
        let mut i = Interner::new();
        i.intern(&Arc::from("known"));
        assert!(i.sym_value(&Value::str("known")).is_some());
        assert_eq!(i.sym_value(&Value::str("unknown")), None);
        assert_eq!(i.sym_value(&Value::int(3)), Some(SymValue::Int(3)));
        assert_eq!(i.sym_value(&Value::bool(true)), Some(SymValue::Bool(true)));
    }

    #[test]
    fn sym_tables_mirror_the_database() {
        let db = bank_database();
        let (interner, tables) = SymTables::build(&db);
        for (rel, inst) in db.iter() {
            assert_eq!(tables.rows(rel), inst.len());
            for (pos, t) in inst.iter().enumerate() {
                for (i, v) in t.values().iter().enumerate() {
                    let attr = crate::schema::AttrId(i as u32);
                    assert_eq!(
                        tables.column(rel, attr)[pos],
                        interner.sym_value(v).expect("interned"),
                    );
                }
            }
        }
    }

    #[test]
    fn sym_values_preserve_equality() {
        let mut i = Interner::new();
        let t1 = tuple!["a", 1i64, true];
        let t2 = tuple!["a", 1i64, true];
        let s1: Vec<SymValue> = t1.values().iter().map(|v| i.intern_value(v)).collect();
        let s2: Vec<SymValue> = t2.values().iter().map(|v| i.intern_value(v)).collect();
        assert_eq!(s1, s2);
        let t3 = tuple!["b", 1i64, true];
        let s3: Vec<SymValue> = t3.values().iter().map(|v| i.intern_value(v)).collect();
        assert_ne!(s1, s3);
    }
}
