//! Relation instances.

use crate::fxhash::{fx_hash_one, FxBuildHasher};
use crate::tuple::Tuple;
use std::collections::HashMap;
use std::fmt;

/// Positions (or slots) sharing one hash value. Collisions under a
/// 64-bit hash are vanishingly rare, so the common case stays inline
/// and allocation-free — used by [`Relation`]'s dedup map and by the
/// query-side hash indexes for their hash → slot tables.
#[derive(Clone, Debug)]
pub enum PosList {
    /// The common case: exactly one value for this hash.
    One(u32),
    /// Hash collision: multiple values (spills to the heap).
    Many(Vec<u32>),
}

impl PosList {
    /// The stored values in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        match self {
            PosList::One(p) => std::slice::from_ref(p),
            PosList::Many(ps) => ps.as_slice(),
        }
        .iter()
        .copied()
    }

    /// Appends a value, spilling to `Many` on first collision.
    pub fn push(&mut self, p: u32) {
        match self {
            PosList::One(first) => *self = PosList::Many(vec![*first, p]),
            PosList::Many(ps) => ps.push(p),
        }
    }

    /// Removes one occurrence of `p`. Returns whether the list is now
    /// empty (the caller should drop the map entry).
    pub fn remove(&mut self, p: u32) -> bool {
        match self {
            PosList::One(q) => {
                debug_assert_eq!(*q, p, "removing a value the list never held");
                true
            }
            PosList::Many(ps) => {
                if let Some(i) = ps.iter().position(|&q| q == p) {
                    ps.swap_remove(i);
                }
                ps.is_empty()
            }
        }
    }

    /// Rewrites one occurrence of `from` to `to`.
    pub fn replace(&mut self, from: u32, to: u32) {
        match self {
            PosList::One(q) => {
                debug_assert_eq!(*q, from, "replacing a value the list never held");
                *q = to;
            }
            PosList::Many(ps) => {
                if let Some(i) = ps.iter().position(|&q| q == from) {
                    ps[i] = to;
                }
            }
        }
    }
}

/// A **position-stable** handle on one tuple of an evolving relation.
///
/// Dense positions are cheap but unstable: a swap-based
/// [`Relation::remove`] renumbers the previously-last tuple, so every
/// position-keyed view must replay the move. A `TupleId` is allocated
/// once (by a [`TupleIdMap`] owner such as a validator stream) and keeps
/// addressing the same logical tuple through arbitrary
/// insert/delete/update/compaction sequences; it dies with its tuple and
/// is never reused.
///
/// Ids are only meaningful for the map that allocated them. The
/// **dense-seeding convention**: an owner materialized over an existing
/// relation assigns `TupleId(p)` to the tuple at dense position `p`, so
/// ground-truth producers (e.g. `condep-gen`'s dirt injector) can report
/// ids that any later stream over the same database resolves.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct TupleId(pub u32);

/// The id ⇄ dense-position maps of one relation, maintained in lock-step
/// with the relation's swap-based mutations by its owner.
///
/// * [`TupleIdMap::alloc`] on every append (insert);
/// * [`TupleIdMap::remove_swap`] on every swap-based removal — it retires
///   the vacated position's id and renumbers the moved tuple's id;
/// * ids are handed out by a **monotone counter and never reused**, and
///   only live ids are stored (the reverse map is keyed by id), so a
///   retired handle resolves to `None` forever, can never silently alias
///   a different tuple, and costs no memory once dead — the map's
///   footprint is `O(live tuples)` regardless of lifetime churn.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TupleIdMap {
    /// Per dense position: the resident tuple's id.
    pos_to_id: Vec<u32>,
    /// Live ids only → dense position.
    id_to_pos: HashMap<u32, u32, FxBuildHasher>,
    /// The next id to hand out; never decreases.
    next: u32,
}

impl TupleIdMap {
    /// An empty map.
    pub fn new() -> Self {
        TupleIdMap::default()
    }

    /// The dense-seeding map over an existing relation of `len` tuples:
    /// the tuple at position `p` gets `TupleId(p)`.
    pub fn identity(len: usize) -> Self {
        let n = u32::try_from(len).expect("relation capacity exceeded");
        TupleIdMap {
            pos_to_id: (0..n).collect(),
            id_to_pos: (0..n).map(|i| (i, i)).collect(),
            next: n,
        }
    }

    /// Number of live tuples tracked.
    pub fn len(&self) -> usize {
        self.pos_to_id.len()
    }

    /// Whether no live tuple is tracked.
    pub fn is_empty(&self) -> bool {
        self.pos_to_id.is_empty()
    }

    /// Number of ids ever handed out (live + retired).
    pub fn ids_allocated(&self) -> usize {
        self.next as usize
    }

    /// Registers the tuple just appended at dense position `pos`
    /// (which must equal [`TupleIdMap::len`]), returning its fresh id.
    pub fn alloc(&mut self, pos: usize) -> TupleId {
        debug_assert_eq!(pos, self.pos_to_id.len(), "ids are allocated on append");
        let id = self.next;
        self.next = id.checked_add(1).expect("tuple-id capacity exceeded");
        self.id_to_pos.insert(id, pos as u32);
        self.pos_to_id.push(id);
        TupleId(id)
    }

    /// Mirrors a swap-based removal at `pos`: retires that position's id
    /// and renumbers the last position's id into the hole. Returns the
    /// retired id and, when a swap happened, the moved tuple's (still
    /// live) id.
    pub fn remove_swap(&mut self, pos: usize) -> (TupleId, Option<TupleId>) {
        let last = self.pos_to_id.len() - 1;
        let retired = self.pos_to_id[pos];
        self.id_to_pos.remove(&retired);
        let moved = (pos != last).then(|| {
            let moved = self.pos_to_id[last];
            self.pos_to_id[pos] = moved;
            self.id_to_pos.insert(moved, pos as u32);
            TupleId(moved)
        });
        self.pos_to_id.pop();
        (TupleId(retired), moved)
    }

    /// The id of the tuple at dense position `pos`.
    pub fn id_at(&self, pos: usize) -> Option<TupleId> {
        self.pos_to_id.get(pos).map(|&id| TupleId(id))
    }

    /// The current dense position of `id` — `None` once the tuple is
    /// gone (deleted, or rewritten by an update).
    pub fn pos_of(&self, id: TupleId) -> Option<usize> {
        self.id_to_pos.get(&id.0).map(|&p| p as usize)
    }

    /// Releases the excess capacity churn left behind (the live entries
    /// themselves are already the only storage). Live ids are never
    /// renumbered — handles held by consumers stay valid.
    pub fn shrink(&mut self) {
        self.pos_to_id.shrink_to_fit();
        self.id_to_pos.shrink_to_fit();
    }
}

/// What [`Relation::remove`] did: the position vacated, and whether the
/// previously-last tuple was swapped into it.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Removed {
    /// Dense position the removed tuple occupied.
    pub pos: usize,
    /// When the removed tuple was not the last one, the old position of
    /// the tuple that moved into `pos` (always the previous `len() - 1`).
    pub moved_from: Option<usize>,
}

/// An instance of a relation schema: a **set** of tuples (paper,
/// Section 2) with deterministic (insertion-order) iteration.
///
/// Internally an insertion-ordered set: a dense tuple vector plus a map
/// from tuple *hash* to dense positions. Tuples are stored exactly once —
/// duplicate elimination and membership tests go hash → candidate
/// positions → compare against the dense vector, so memory per tuple is
/// the tuple itself plus a few words, not two full copies. Iteration
/// order is stable, which keeps the chase, the generators and every test
/// reproducible.
#[derive(Clone, Default, Debug)]
pub struct Relation {
    tuples: Vec<Tuple>,
    positions: HashMap<u64, PosList, FxBuildHasher>,
}

impl Relation {
    /// An empty instance.
    pub fn new() -> Self {
        Relation::default()
    }

    /// An empty instance with reserved capacity.
    pub fn with_capacity(n: usize) -> Self {
        Relation {
            tuples: Vec::with_capacity(n),
            positions: HashMap::with_capacity_and_hasher(n, FxBuildHasher::default()),
        }
    }

    /// Inserts a tuple; returns `true` if it was not already present
    /// (set semantics).
    pub fn insert(&mut self, t: Tuple) -> bool {
        let pos = u32::try_from(self.tuples.len()).expect("relation capacity exceeded");
        match self.positions.entry(fx_hash_one(&t)) {
            std::collections::hash_map::Entry::Occupied(mut e) => {
                if e.get().iter().any(|p| self.tuples[p as usize] == t) {
                    return false;
                }
                e.get_mut().push(pos);
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(PosList::One(pos));
            }
        }
        self.tuples.push(t);
        true
    }

    /// Removes a tuple by value. The vacated position is filled by
    /// swapping the **last** tuple into it (`O(1)`, no shift), so dense
    /// positions of all other tuples stay stable; the returned
    /// [`Removed`] says which single position (if any) changed so
    /// position-keyed consumers (indexes, violation reports) can
    /// renumber.
    pub fn remove(&mut self, t: &Tuple) -> Option<Removed> {
        let pos = self.position(t)?;
        self.remove_at(pos)
    }

    /// Removes the tuple at dense position `pos` — [`Relation::remove`]
    /// minus the by-value lookup, for callers that already resolved the
    /// position. Same swap semantics; `None` when `pos` is out of range.
    pub fn remove_at(&mut self, pos: usize) -> Option<Removed> {
        if pos >= self.tuples.len() {
            return None;
        }
        let last = self.tuples.len() - 1;
        // Unlink the removed tuple from the hash map.
        let hash = fx_hash_one(&self.tuples[pos]);
        if let std::collections::hash_map::Entry::Occupied(mut e) = self.positions.entry(hash) {
            if e.get_mut().remove(pos as u32) {
                e.remove();
            }
        }
        self.tuples.swap_remove(pos);
        if pos == last {
            return Some(Removed {
                pos,
                moved_from: None,
            });
        }
        // The old last tuple now sits at `pos`: rewrite its map entry.
        let moved_hash = fx_hash_one(&self.tuples[pos]);
        if let Some(list) = self.positions.get_mut(&moved_hash) {
            list.replace(last as u32, pos as u32);
        }
        Some(Removed {
            pos,
            moved_from: Some(last),
        })
    }

    /// Membership test.
    pub fn contains(&self, t: &Tuple) -> bool {
        self.position(t).is_some()
    }

    /// The dense position of `t`, if present.
    pub fn position(&self, t: &Tuple) -> Option<usize> {
        self.positions
            .get(&fx_hash_one(t))?
            .iter()
            .map(|p| p as usize)
            .find(|&p| &self.tuples[p] == t)
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether the instance is empty.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// The tuples in insertion order.
    pub fn tuples(&self) -> &[Tuple] {
        &self.tuples
    }

    /// Iterator over the tuples.
    pub fn iter(&self) -> std::slice::Iter<'_, Tuple> {
        self.tuples.iter()
    }

    /// The tuple at a dense index (insertion order).
    pub fn get(&self, i: usize) -> Option<&Tuple> {
        self.tuples.get(i)
    }

    /// Edits one cell of a resident tuple: removes `t` and re-inserts
    /// `t.with(attr, v)`. Returns `None` when `t` is absent; otherwise
    /// `Some((edited, merged))` where `merged` is `true` when the edited
    /// tuple collapsed into an already-resident equal tuple (set
    /// semantics — the relation shrinks by one). Positions shift exactly
    /// as the underlying [`Relation::remove`] + [`Relation::insert`]
    /// dictate; position-keyed consumers should route edits through a
    /// delta engine instead.
    pub fn edit_cell(
        &mut self,
        t: &Tuple,
        attr: crate::schema::AttrId,
        v: crate::value::Value,
    ) -> Option<(Tuple, bool)> {
        if !self.contains(t) {
            return None;
        }
        let edited = t.with(attr, v);
        if &edited == t {
            return Some((edited, false));
        }
        self.remove(t).expect("presence just checked");
        let fresh = self.insert(edited.clone());
        Some((edited, !fresh))
    }

    /// Removes all tuples.
    pub fn clear(&mut self) {
        self.tuples.clear();
        self.positions.clear();
    }
}

impl FromIterator<Tuple> for Relation {
    fn from_iter<I: IntoIterator<Item = Tuple>>(iter: I) -> Self {
        let mut r = Relation::new();
        for t in iter {
            r.insert(t);
        }
        r
    }
}

impl<'a> IntoIterator for &'a Relation {
    type Item = &'a Tuple;
    type IntoIter = std::slice::Iter<'a, Tuple>;
    fn into_iter(self) -> Self::IntoIter {
        self.tuples.iter()
    }
}

impl PartialEq for Relation {
    /// Set equality: same tuples regardless of insertion order.
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len() && self.iter().all(|t| other.contains(t))
    }
}

impl Eq for Relation {}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for t in &self.tuples {
            writeln!(f, "  {t}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;

    #[test]
    fn insert_deduplicates() {
        let mut r = Relation::new();
        assert!(r.insert(tuple!["a", "b"]));
        assert!(!r.insert(tuple!["a", "b"]));
        assert!(r.insert(tuple!["a", "c"]));
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn iteration_is_insertion_ordered() {
        let mut r = Relation::new();
        r.insert(tuple!["z"]);
        r.insert(tuple!["a"]);
        r.insert(tuple!["m"]);
        let seen: Vec<String> = r.iter().map(|t| t.to_string()).collect();
        assert_eq!(seen, vec!["(z)", "(a)", "(m)"]);
        assert_eq!(r.get(1), Some(&tuple!["a"]));
    }

    #[test]
    fn set_equality_ignores_order() {
        let r1: Relation = [tuple!["a"], tuple!["b"]].into_iter().collect();
        let r2: Relation = [tuple!["b"], tuple!["a"]].into_iter().collect();
        assert_eq!(r1, r2);
        let r3: Relation = [tuple!["a"]].into_iter().collect();
        assert_ne!(r1, r3);
    }

    #[test]
    fn remove_last_tuple_moves_nothing() {
        let mut r: Relation = [tuple!["a"], tuple!["b"]].into_iter().collect();
        let removed = r.remove(&tuple!["b"]).unwrap();
        assert_eq!(
            removed,
            Removed {
                pos: 1,
                moved_from: None
            }
        );
        assert_eq!(r.len(), 1);
        assert!(!r.contains(&tuple!["b"]));
        assert_eq!(r.position(&tuple!["a"]), Some(0));
    }

    #[test]
    fn remove_swaps_last_into_the_hole() {
        let mut r: Relation = [tuple!["a"], tuple!["b"], tuple!["c"]]
            .into_iter()
            .collect();
        let removed = r.remove(&tuple!["a"]).unwrap();
        assert_eq!(
            removed,
            Removed {
                pos: 0,
                moved_from: Some(2)
            }
        );
        assert_eq!(r.len(), 2);
        // `c` moved into position 0 and is still findable by hash.
        assert_eq!(r.position(&tuple!["c"]), Some(0));
        assert_eq!(r.position(&tuple!["b"]), Some(1));
        assert!(r.remove(&tuple!["a"]).is_none(), "already gone");
        // Re-inserting after removal works (map entries were unlinked).
        assert!(r.insert(tuple!["a"]));
        assert_eq!(r.position(&tuple!["a"]), Some(2));
    }

    #[test]
    fn remove_then_reinsert_round_trips_many_times() {
        let mut r = Relation::new();
        for i in 0..32i64 {
            r.insert(tuple![i]);
        }
        for i in (0..32i64).step_by(3) {
            assert!(r.remove(&tuple![i]).is_some());
        }
        for i in (0..32i64).step_by(3) {
            assert!(!r.contains(&tuple![i]));
            assert!(r.insert(tuple![i]));
        }
        assert_eq!(r.len(), 32);
        for i in 0..32i64 {
            let t = tuple![i];
            let pos = r.position(&t).unwrap();
            assert_eq!(r.get(pos), Some(&t));
        }
    }

    #[test]
    fn tuple_id_map_tracks_swaps_and_never_reuses_ids() {
        let mut m = TupleIdMap::identity(3);
        assert_eq!(m.len(), 3);
        assert_eq!(m.id_at(2), Some(TupleId(2)));
        assert_eq!(m.pos_of(TupleId(0)), Some(0));
        // Remove position 0: id 0 dies, id 2 moves into the hole.
        let (retired, moved) = m.remove_swap(0);
        assert_eq!(retired, TupleId(0));
        assert_eq!(moved, Some(TupleId(2)));
        assert_eq!(m.pos_of(TupleId(0)), None);
        assert_eq!(m.pos_of(TupleId(2)), Some(0));
        assert_eq!(m.id_at(0), Some(TupleId(2)));
        // Append: a fresh id, never a recycled one.
        let id = m.alloc(2);
        assert_eq!(id, TupleId(3));
        assert_eq!(m.pos_of(id), Some(2));
        // Removing the last position moves nothing.
        let (retired, moved) = m.remove_swap(2);
        assert_eq!(retired, TupleId(3));
        assert_eq!(moved, None);
        assert_eq!(m.len(), 2);
        assert_eq!(m.ids_allocated(), 4);
        assert_eq!(m.pos_of(TupleId(3)), None);
        assert_eq!(m.pos_of(TupleId(2)), Some(0));
        assert_eq!(m.pos_of(TupleId(1)), Some(1));
        // Allocation stays monotone across removals and shrinks: a
        // retired id number is never handed out again.
        m.shrink();
        let id = m.alloc(2);
        assert_eq!(id, TupleId(4));
        assert_eq!(m.pos_of(TupleId(3)), None, "dead ids stay dead");
        assert_eq!(m.pos_of(id), Some(2));
    }

    #[test]
    fn contains_and_clear() {
        let mut r: Relation = [tuple!["a"]].into_iter().collect();
        assert!(r.contains(&tuple!["a"]));
        r.clear();
        assert!(r.is_empty());
        assert!(!r.contains(&tuple!["a"]));
    }
}
