//! Relation instances.

use crate::tuple::Tuple;
use std::collections::HashMap;
use std::fmt;

/// An instance of a relation schema: a **set** of tuples (paper,
/// Section 2) with deterministic (insertion-order) iteration.
///
/// Internally an insertion-ordered set: a dense tuple vector plus a map
/// for O(1) duplicate elimination and membership tests. Iteration order
/// is stable, which keeps the chase, the generators and every test
/// reproducible.
#[derive(Clone, Default, Debug)]
pub struct Relation {
    tuples: Vec<Tuple>,
    positions: HashMap<Tuple, usize>,
}

impl Relation {
    /// An empty instance.
    pub fn new() -> Self {
        Relation::default()
    }

    /// An empty instance with reserved capacity.
    pub fn with_capacity(n: usize) -> Self {
        Relation {
            tuples: Vec::with_capacity(n),
            positions: HashMap::with_capacity(n),
        }
    }

    /// Inserts a tuple; returns `true` if it was not already present
    /// (set semantics).
    pub fn insert(&mut self, t: Tuple) -> bool {
        if self.positions.contains_key(&t) {
            return false;
        }
        self.positions.insert(t.clone(), self.tuples.len());
        self.tuples.push(t);
        true
    }

    /// Membership test.
    pub fn contains(&self, t: &Tuple) -> bool {
        self.positions.contains_key(t)
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether the instance is empty.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// The tuples in insertion order.
    pub fn tuples(&self) -> &[Tuple] {
        &self.tuples
    }

    /// Iterator over the tuples.
    pub fn iter(&self) -> std::slice::Iter<'_, Tuple> {
        self.tuples.iter()
    }

    /// The tuple at a dense index (insertion order).
    pub fn get(&self, i: usize) -> Option<&Tuple> {
        self.tuples.get(i)
    }

    /// Removes all tuples.
    pub fn clear(&mut self) {
        self.tuples.clear();
        self.positions.clear();
    }
}

impl FromIterator<Tuple> for Relation {
    fn from_iter<I: IntoIterator<Item = Tuple>>(iter: I) -> Self {
        let mut r = Relation::new();
        for t in iter {
            r.insert(t);
        }
        r
    }
}

impl<'a> IntoIterator for &'a Relation {
    type Item = &'a Tuple;
    type IntoIter = std::slice::Iter<'a, Tuple>;
    fn into_iter(self) -> Self::IntoIter {
        self.tuples.iter()
    }
}

impl PartialEq for Relation {
    /// Set equality: same tuples regardless of insertion order.
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len() && self.iter().all(|t| other.contains(t))
    }
}

impl Eq for Relation {}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for t in &self.tuples {
            writeln!(f, "  {t}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;

    #[test]
    fn insert_deduplicates() {
        let mut r = Relation::new();
        assert!(r.insert(tuple!["a", "b"]));
        assert!(!r.insert(tuple!["a", "b"]));
        assert!(r.insert(tuple!["a", "c"]));
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn iteration_is_insertion_ordered() {
        let mut r = Relation::new();
        r.insert(tuple!["z"]);
        r.insert(tuple!["a"]);
        r.insert(tuple!["m"]);
        let seen: Vec<String> = r.iter().map(|t| t.to_string()).collect();
        assert_eq!(seen, vec!["(z)", "(a)", "(m)"]);
        assert_eq!(r.get(1), Some(&tuple!["a"]));
    }

    #[test]
    fn set_equality_ignores_order() {
        let r1: Relation = [tuple!["a"], tuple!["b"]].into_iter().collect();
        let r2: Relation = [tuple!["b"], tuple!["a"]].into_iter().collect();
        assert_eq!(r1, r2);
        let r3: Relation = [tuple!["a"]].into_iter().collect();
        assert_ne!(r1, r3);
    }

    #[test]
    fn contains_and_clear() {
        let mut r: Relation = [tuple!["a"]].into_iter().collect();
        assert!(r.contains(&tuple!["a"]));
        r.clear();
        assert!(r.is_empty());
        assert!(!r.contains(&tuple!["a"]));
    }
}
