//! Relation instances.

use crate::fxhash::{fx_hash_one, FxBuildHasher};
use crate::tuple::Tuple;
use std::collections::HashMap;
use std::fmt;

/// Positions (or slots) sharing one hash value. Collisions under a
/// 64-bit hash are vanishingly rare, so the common case stays inline
/// and allocation-free — used by [`Relation`]'s dedup map and by the
/// query-side hash indexes for their hash → slot tables.
#[derive(Clone, Debug)]
pub enum PosList {
    /// The common case: exactly one value for this hash.
    One(u32),
    /// Hash collision: multiple values (spills to the heap).
    Many(Vec<u32>),
}

impl PosList {
    /// The stored values in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        match self {
            PosList::One(p) => std::slice::from_ref(p),
            PosList::Many(ps) => ps.as_slice(),
        }
        .iter()
        .copied()
    }

    /// Appends a value, spilling to `Many` on first collision.
    pub fn push(&mut self, p: u32) {
        match self {
            PosList::One(first) => *self = PosList::Many(vec![*first, p]),
            PosList::Many(ps) => ps.push(p),
        }
    }

    /// Removes one occurrence of `p`. Returns whether the list is now
    /// empty (the caller should drop the map entry).
    pub fn remove(&mut self, p: u32) -> bool {
        match self {
            PosList::One(q) => {
                debug_assert_eq!(*q, p, "removing a value the list never held");
                true
            }
            PosList::Many(ps) => {
                if let Some(i) = ps.iter().position(|&q| q == p) {
                    ps.swap_remove(i);
                }
                ps.is_empty()
            }
        }
    }

    /// Rewrites one occurrence of `from` to `to`.
    pub fn replace(&mut self, from: u32, to: u32) {
        match self {
            PosList::One(q) => {
                debug_assert_eq!(*q, from, "replacing a value the list never held");
                *q = to;
            }
            PosList::Many(ps) => {
                if let Some(i) = ps.iter().position(|&q| q == from) {
                    ps[i] = to;
                }
            }
        }
    }
}

/// What [`Relation::remove`] did: the position vacated, and whether the
/// previously-last tuple was swapped into it.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Removed {
    /// Dense position the removed tuple occupied.
    pub pos: usize,
    /// When the removed tuple was not the last one, the old position of
    /// the tuple that moved into `pos` (always the previous `len() - 1`).
    pub moved_from: Option<usize>,
}

/// An instance of a relation schema: a **set** of tuples (paper,
/// Section 2) with deterministic (insertion-order) iteration.
///
/// Internally an insertion-ordered set: a dense tuple vector plus a map
/// from tuple *hash* to dense positions. Tuples are stored exactly once —
/// duplicate elimination and membership tests go hash → candidate
/// positions → compare against the dense vector, so memory per tuple is
/// the tuple itself plus a few words, not two full copies. Iteration
/// order is stable, which keeps the chase, the generators and every test
/// reproducible.
#[derive(Clone, Default, Debug)]
pub struct Relation {
    tuples: Vec<Tuple>,
    positions: HashMap<u64, PosList, FxBuildHasher>,
}

impl Relation {
    /// An empty instance.
    pub fn new() -> Self {
        Relation::default()
    }

    /// An empty instance with reserved capacity.
    pub fn with_capacity(n: usize) -> Self {
        Relation {
            tuples: Vec::with_capacity(n),
            positions: HashMap::with_capacity_and_hasher(n, FxBuildHasher::default()),
        }
    }

    /// Inserts a tuple; returns `true` if it was not already present
    /// (set semantics).
    pub fn insert(&mut self, t: Tuple) -> bool {
        let pos = u32::try_from(self.tuples.len()).expect("relation capacity exceeded");
        match self.positions.entry(fx_hash_one(&t)) {
            std::collections::hash_map::Entry::Occupied(mut e) => {
                if e.get().iter().any(|p| self.tuples[p as usize] == t) {
                    return false;
                }
                e.get_mut().push(pos);
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(PosList::One(pos));
            }
        }
        self.tuples.push(t);
        true
    }

    /// Removes a tuple by value. The vacated position is filled by
    /// swapping the **last** tuple into it (`O(1)`, no shift), so dense
    /// positions of all other tuples stay stable; the returned
    /// [`Removed`] says which single position (if any) changed so
    /// position-keyed consumers (indexes, violation reports) can
    /// renumber.
    pub fn remove(&mut self, t: &Tuple) -> Option<Removed> {
        let pos = self.position(t)?;
        let last = self.tuples.len() - 1;
        // Unlink the removed tuple from the hash map.
        let hash = fx_hash_one(t);
        if let std::collections::hash_map::Entry::Occupied(mut e) = self.positions.entry(hash) {
            if e.get_mut().remove(pos as u32) {
                e.remove();
            }
        }
        self.tuples.swap_remove(pos);
        if pos == last {
            return Some(Removed {
                pos,
                moved_from: None,
            });
        }
        // The old last tuple now sits at `pos`: rewrite its map entry.
        let moved_hash = fx_hash_one(&self.tuples[pos]);
        if let Some(list) = self.positions.get_mut(&moved_hash) {
            list.replace(last as u32, pos as u32);
        }
        Some(Removed {
            pos,
            moved_from: Some(last),
        })
    }

    /// Membership test.
    pub fn contains(&self, t: &Tuple) -> bool {
        self.position(t).is_some()
    }

    /// The dense position of `t`, if present.
    pub fn position(&self, t: &Tuple) -> Option<usize> {
        self.positions
            .get(&fx_hash_one(t))?
            .iter()
            .map(|p| p as usize)
            .find(|&p| &self.tuples[p] == t)
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether the instance is empty.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// The tuples in insertion order.
    pub fn tuples(&self) -> &[Tuple] {
        &self.tuples
    }

    /// Iterator over the tuples.
    pub fn iter(&self) -> std::slice::Iter<'_, Tuple> {
        self.tuples.iter()
    }

    /// The tuple at a dense index (insertion order).
    pub fn get(&self, i: usize) -> Option<&Tuple> {
        self.tuples.get(i)
    }

    /// Edits one cell of a resident tuple: removes `t` and re-inserts
    /// `t.with(attr, v)`. Returns `None` when `t` is absent; otherwise
    /// `Some((edited, merged))` where `merged` is `true` when the edited
    /// tuple collapsed into an already-resident equal tuple (set
    /// semantics — the relation shrinks by one). Positions shift exactly
    /// as the underlying [`Relation::remove`] + [`Relation::insert`]
    /// dictate; position-keyed consumers should route edits through a
    /// delta engine instead.
    pub fn edit_cell(
        &mut self,
        t: &Tuple,
        attr: crate::schema::AttrId,
        v: crate::value::Value,
    ) -> Option<(Tuple, bool)> {
        if !self.contains(t) {
            return None;
        }
        let edited = t.with(attr, v);
        if &edited == t {
            return Some((edited, false));
        }
        self.remove(t).expect("presence just checked");
        let fresh = self.insert(edited.clone());
        Some((edited, !fresh))
    }

    /// Removes all tuples.
    pub fn clear(&mut self) {
        self.tuples.clear();
        self.positions.clear();
    }
}

impl FromIterator<Tuple> for Relation {
    fn from_iter<I: IntoIterator<Item = Tuple>>(iter: I) -> Self {
        let mut r = Relation::new();
        for t in iter {
            r.insert(t);
        }
        r
    }
}

impl<'a> IntoIterator for &'a Relation {
    type Item = &'a Tuple;
    type IntoIter = std::slice::Iter<'a, Tuple>;
    fn into_iter(self) -> Self::IntoIter {
        self.tuples.iter()
    }
}

impl PartialEq for Relation {
    /// Set equality: same tuples regardless of insertion order.
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len() && self.iter().all(|t| other.contains(t))
    }
}

impl Eq for Relation {}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for t in &self.tuples {
            writeln!(f, "  {t}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;

    #[test]
    fn insert_deduplicates() {
        let mut r = Relation::new();
        assert!(r.insert(tuple!["a", "b"]));
        assert!(!r.insert(tuple!["a", "b"]));
        assert!(r.insert(tuple!["a", "c"]));
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn iteration_is_insertion_ordered() {
        let mut r = Relation::new();
        r.insert(tuple!["z"]);
        r.insert(tuple!["a"]);
        r.insert(tuple!["m"]);
        let seen: Vec<String> = r.iter().map(|t| t.to_string()).collect();
        assert_eq!(seen, vec!["(z)", "(a)", "(m)"]);
        assert_eq!(r.get(1), Some(&tuple!["a"]));
    }

    #[test]
    fn set_equality_ignores_order() {
        let r1: Relation = [tuple!["a"], tuple!["b"]].into_iter().collect();
        let r2: Relation = [tuple!["b"], tuple!["a"]].into_iter().collect();
        assert_eq!(r1, r2);
        let r3: Relation = [tuple!["a"]].into_iter().collect();
        assert_ne!(r1, r3);
    }

    #[test]
    fn remove_last_tuple_moves_nothing() {
        let mut r: Relation = [tuple!["a"], tuple!["b"]].into_iter().collect();
        let removed = r.remove(&tuple!["b"]).unwrap();
        assert_eq!(
            removed,
            Removed {
                pos: 1,
                moved_from: None
            }
        );
        assert_eq!(r.len(), 1);
        assert!(!r.contains(&tuple!["b"]));
        assert_eq!(r.position(&tuple!["a"]), Some(0));
    }

    #[test]
    fn remove_swaps_last_into_the_hole() {
        let mut r: Relation = [tuple!["a"], tuple!["b"], tuple!["c"]]
            .into_iter()
            .collect();
        let removed = r.remove(&tuple!["a"]).unwrap();
        assert_eq!(
            removed,
            Removed {
                pos: 0,
                moved_from: Some(2)
            }
        );
        assert_eq!(r.len(), 2);
        // `c` moved into position 0 and is still findable by hash.
        assert_eq!(r.position(&tuple!["c"]), Some(0));
        assert_eq!(r.position(&tuple!["b"]), Some(1));
        assert!(r.remove(&tuple!["a"]).is_none(), "already gone");
        // Re-inserting after removal works (map entries were unlinked).
        assert!(r.insert(tuple!["a"]));
        assert_eq!(r.position(&tuple!["a"]), Some(2));
    }

    #[test]
    fn remove_then_reinsert_round_trips_many_times() {
        let mut r = Relation::new();
        for i in 0..32i64 {
            r.insert(tuple![i]);
        }
        for i in (0..32i64).step_by(3) {
            assert!(r.remove(&tuple![i]).is_some());
        }
        for i in (0..32i64).step_by(3) {
            assert!(!r.contains(&tuple![i]));
            assert!(r.insert(tuple![i]));
        }
        assert_eq!(r.len(), 32);
        for i in 0..32i64 {
            let t = tuple![i];
            let pos = r.position(&t).unwrap();
            assert_eq!(r.get(pos), Some(&t));
        }
    }

    #[test]
    fn contains_and_clear() {
        let mut r: Relation = [tuple!["a"]].into_iter().collect();
        assert!(r.contains(&tuple!["a"]));
        r.clear();
        assert!(r.is_empty());
        assert!(!r.contains(&tuple!["a"]));
    }
}
