//! Concrete data values.
//!
//! A [`Value`] is an element of some attribute domain (`dom(A)` in the
//! paper). Values are cheap to clone (strings are reference counted),
//! hashable, and totally ordered so that relations, chase variable
//! orderings and test output are all deterministic.

use std::fmt;
use std::sync::Arc;

/// A concrete data value stored in a tuple or appearing as a constant in
/// a pattern tableau.
///
/// The paper is agnostic about base types; three cover every construction
/// it uses: booleans (Example 3.2 uses `dom(A) = bool`), integers, and
/// strings (branch names, interest rates, ...).
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Value {
    /// A boolean constant. `bool` is the canonical *finite* domain of the
    /// paper's counterexamples.
    Bool(bool),
    /// A 64-bit integer constant.
    Int(i64),
    /// An interned string constant.
    Str(Arc<str>),
}

impl Value {
    /// Builds a string value.
    pub fn str(s: impl AsRef<str>) -> Self {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// Builds an integer value.
    pub fn int(i: i64) -> Self {
        Value::Int(i)
    }

    /// Builds a boolean value.
    pub fn bool(b: bool) -> Self {
        Value::Bool(b)
    }

    /// Returns the string payload if this is a [`Value::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the integer payload if this is a [`Value::Int`].
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Returns the boolean payload if this is a [`Value::Bool`].
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The [`crate::domain::BaseType`] this value belongs to.
    pub fn base_type(&self) -> crate::domain::BaseType {
        match self {
            Value::Bool(_) => crate::domain::BaseType::Bool,
            Value::Int(_) => crate::domain::BaseType::Int,
            Value::Str(_) => crate::domain::BaseType::Str,
        }
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::str(s)
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(Arc::from(s.as_str()))
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Str(s) => write!(f, "{s:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn constructors_and_accessors_round_trip() {
        assert_eq!(Value::str("EDI").as_str(), Some("EDI"));
        assert_eq!(Value::int(42).as_int(), Some(42));
        assert_eq!(Value::bool(true).as_bool(), Some(true));
        assert_eq!(Value::str("x").as_int(), None);
        assert_eq!(Value::int(1).as_bool(), None);
        assert_eq!(Value::bool(false).as_str(), None);
    }

    #[test]
    fn from_impls_agree_with_constructors() {
        assert_eq!(Value::from("a"), Value::str("a"));
        assert_eq!(Value::from("a".to_string()), Value::str("a"));
        assert_eq!(Value::from(7i64), Value::int(7));
        assert_eq!(Value::from(true), Value::bool(true));
    }

    #[test]
    fn equality_is_by_content_not_allocation() {
        let a = Value::str("saving");
        let b = Value::str(String::from("sav") + "ing");
        assert_eq!(a, b);
        let mut set = HashSet::new();
        set.insert(a);
        assert!(set.contains(&b));
    }

    #[test]
    fn ordering_is_total_and_deterministic() {
        let mut vs = vec![
            Value::str("b"),
            Value::int(10),
            Value::bool(true),
            Value::str("a"),
            Value::int(2),
            Value::bool(false),
        ];
        vs.sort();
        assert_eq!(
            vs,
            vec![
                Value::bool(false),
                Value::bool(true),
                Value::int(2),
                Value::int(10),
                Value::str("a"),
                Value::str("b"),
            ]
        );
    }

    #[test]
    fn display_is_plain() {
        assert_eq!(Value::str("NYC").to_string(), "NYC");
        assert_eq!(Value::int(-3).to_string(), "-3");
        assert_eq!(Value::bool(true).to_string(), "true");
    }

    #[test]
    fn base_types() {
        use crate::domain::BaseType;
        assert_eq!(Value::str("x").base_type(), BaseType::Str);
        assert_eq!(Value::int(0).base_type(), BaseType::Int);
        assert_eq!(Value::bool(false).base_type(), BaseType::Bool);
    }
}
