//! Scoreboard round-trip: run scenarios → emit → validate → parse →
//! self-diff clean, and counters deterministic across runs.

use condep_bench::scenario::{by_name, run_scenario};
use condep_bench::scoreboard::{diff, emit, validate, Thresholds};
use condep_telemetry::json;

#[test]
fn emit_validate_parse_self_diff_round_trip() {
    let scenarios = [
        by_name("singleton_churn").expect("in matrix"),
        by_name("adversarial_dirt").expect("in matrix"),
    ];
    let results: Vec<_> = scenarios.iter().map(run_scenario).collect();
    let doc = emit(&results);

    assert!(json::is_valid(&doc), "emitted scoreboard is well-formed");
    let tree = validate(&doc).expect("emitted scoreboard satisfies its schema");

    // Self-diff: zero regressions by construction.
    let report = diff(&tree, &tree, &Thresholds::default());
    assert!(report.ok(), "self-diff found: {report:?}");
    assert_eq!(report.regressions.len(), 0);
    assert_eq!(report.incomparable.len(), 0);
    assert!(report.compared > 0, "gated paths were actually compared");
    assert_eq!(report.improvements, 0, "identical documents cannot improve");
}

#[test]
fn scenario_counters_are_deterministic_across_runs() {
    let s = by_name("singleton_churn").expect("in matrix");
    let a = run_scenario(&s);
    let b = run_scenario(&s);
    // Everything but wall time must replay byte-identically.
    assert_eq!(a.rows, b.rows);
    assert_eq!(a.churn_ops, b.churn_ops);
    assert_eq!(a.violations.initial, b.violations.initial);
    assert_eq!(a.violations.after_churn, b.violations.after_churn);
    assert_eq!(a.stream.inserts, b.stream.inserts);
    assert_eq!(a.stream.deletes, b.stream.deletes);
    assert_eq!(a.stream.noops, b.stream.noops);
    assert_eq!(a.stream.journal_total, b.stream.journal_total);
    assert_eq!(a.latency.count, b.latency.count);
    // The diff gate agrees: exact counters, loose timing.
    let base = validate(&emit(&[a])).unwrap();
    let new = validate(&emit(&[b])).unwrap();
    let report = diff(
        &base,
        &new,
        &Thresholds {
            latency_frac: 100.0,
            latency_floor_us: 1e9,
            throughput_frac: 0.999,
            counter_frac: 0.0,
        },
    );
    assert!(report.ok(), "counter drift across reruns: {report:?}");
}

#[test]
fn adversarial_scenario_reports_its_majority_flips() {
    let s = by_name("adversarial_dirt").expect("in matrix");
    let r = run_scenario(&s);
    let rep = r.repair.expect("repair pass runs");
    assert_eq!(rep.poisoned_classes, 4);
    assert!(
        rep.majority_flips > 0,
        "coordinated poison outvotes the clean rows, fooling the majority heuristic"
    );
    assert!(r.violations.residual < r.violations.initial);
    assert!(rep.accepted > 0);
    assert!(rep.rejected > 0, "verification rolled back candidate fixes");
}
