//! Figure 11(a): accuracy of `RandomChecking` vs `Checking` on
//! **consistent** sets of CFDs + CINDs, as the number of constraints
//! grows.
//!
//! Paper setting: 20 relations (≤15 attributes), `F` up to 20%, Σ = 75%
//! CFDs + 25% CINDs, `K = 20`, `T = 2K–4K`; x-axis up to 20 000
//! constraints. Ground truth is "consistent" by construction, so
//! accuracy = fraction of generated sets accepted. Expected shape:
//! `Checking` stays at (almost) 100% throughout; `RandomChecking` is
//! close but can dip, since it lacks the graph reduction.

use condep_bench::{pct, FigureTable, Scale};
use condep_consistency::{
    checking, random_checking, CheckingConfig, ConstraintSet, RandomCheckingConfig,
};
use condep_gen::{generate_sigma, random_schema, SchemaGenConfig, SigmaGenConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let scale = Scale::from_env();
    let sizes: Vec<usize> = match scale {
        Scale::Quick => vec![250, 500, 1_000, 2_000],
        Scale::Full => vec![1_000, 5_000, 10_000, 15_000, 20_000],
    };
    let runs = scale.pick(3, 6);

    let schema_cfg = SchemaGenConfig {
        relations: 20,
        attrs_min: 5,
        attrs_max: 15,
        finite_ratio: 0.2,
        finite_dom_min: 2,
        finite_dom_max: 100,
    };

    let mut table = FigureTable::new(
        "fig11a",
        &["constraints", "random_checking_%", "checking_%"],
    );
    for &n in &sizes {
        let mut rc_hits = 0usize;
        let mut ck_hits = 0usize;
        for run in 0..runs {
            let seed = 30_000 + run as u64 * 13;
            let schema = random_schema(&schema_cfg, &mut StdRng::seed_from_u64(seed));
            let (cfds, cinds, _) = generate_sigma(
                &schema,
                &SigmaGenConfig {
                    cardinality: n,
                    cfd_fraction: 0.75,
                    consistent: true,
                    ..SigmaGenConfig::default()
                },
                &mut StdRng::seed_from_u64(seed + 1),
            );
            let sigma = ConstraintSet::new(schema.clone(), cfds, cinds);
            let rc_cfg = RandomCheckingConfig {
                k: 20, // the paper's K
                seed: seed + 2,
                ..RandomCheckingConfig::default()
            };
            if random_checking(&sigma, &rc_cfg, None).is_some() {
                rc_hits += 1;
            }
            let ck_cfg = CheckingConfig {
                random: rc_cfg,
                ..CheckingConfig::default()
            };
            if checking(&sigma, &ck_cfg).is_some() {
                ck_hits += 1;
            }
        }
        table.row(&[
            &n,
            &format!("{:.1}", pct(rc_hits, runs)),
            &format!("{:.1}", pct(ck_hits, runs)),
        ]);
    }
    table.finish("Figure 11(a): accuracy on consistent sets of CFDs + CINDs");
    println!(
        "\nExpected shape (paper): Checking is almost constantly 100%;\n\
         preProcessing both raises accuracy and carries most instances."
    );
}
