//! Figure 11(c): scalability (runtime) of `RandomChecking` vs `Checking`
//! on **random** (not necessarily consistent) sets of CFDs + CINDs.
//!
//! Same sweep as Figure 11(b) but with unconstrained generation.
//! Expected shape: same near-linear scaling; random sets are often
//! settled even faster (inconsistent CFD cores are detected early by the
//! graph reduction).

use condep_bench::{ms, time_once, FigureTable, Scale};
use condep_consistency::{
    checking, random_checking, CheckingConfig, ConstraintSet, RandomCheckingConfig,
};
use condep_gen::{generate_sigma, random_schema, SchemaGenConfig, SigmaGenConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let scale = Scale::from_env();
    let sizes: Vec<usize> = match scale {
        Scale::Quick => vec![250, 500, 1_000, 2_000],
        Scale::Full => vec![1_000, 5_000, 10_000, 15_000, 20_000],
    };
    let runs = scale.pick(3, 6);

    let schema_cfg = SchemaGenConfig {
        relations: 20,
        attrs_min: 5,
        attrs_max: 15,
        finite_ratio: 0.2,
        finite_dom_min: 2,
        finite_dom_max: 100,
    };

    let mut table = FigureTable::new(
        "fig11c",
        &[
            "constraints",
            "random_checking_ms",
            "checking_ms",
            "accepted_by_checking_%",
        ],
    );
    for &n in &sizes {
        let mut rc_total = 0.0;
        let mut ck_total = 0.0;
        let mut accepted = 0usize;
        for run in 0..runs {
            let seed = 50_000 + run as u64 * 11;
            let schema = random_schema(&schema_cfg, &mut StdRng::seed_from_u64(seed));
            let (cfds, cinds, _) = generate_sigma(
                &schema,
                &SigmaGenConfig {
                    cardinality: n,
                    cfd_fraction: 0.75,
                    consistent: false, // random sets
                    ..SigmaGenConfig::default()
                },
                &mut StdRng::seed_from_u64(seed + 1),
            );
            let sigma = ConstraintSet::new(schema.clone(), cfds, cinds);
            let rc_cfg = RandomCheckingConfig {
                k: 20,
                seed: seed + 2,
                ..RandomCheckingConfig::default()
            };
            let (rc_time, _) = time_once(|| random_checking(&sigma, &rc_cfg, None).is_some());
            let ck_cfg = CheckingConfig {
                random: rc_cfg,
                ..CheckingConfig::default()
            };
            let (ck_time, ok) = time_once(|| checking(&sigma, &ck_cfg).is_some());
            if ok {
                accepted += 1;
            }
            rc_total += ms(rc_time);
            ck_total += ms(ck_time);
        }
        let runs_f = runs as f64;
        table.row(&[
            &n,
            &format!("{:.1}", rc_total / runs_f),
            &format!("{:.1}", ck_total / runs_f),
            &format!("{:.1}", condep_bench::pct(accepted, runs)),
        ]);
    }
    table.finish("Figure 11(c): runtime on random sets of CFDs + CINDs");
    println!(
        "\nExpected shape (paper): scaling mirrors Figure 11(b); both algorithms\n\
         remain fast on random sets."
    );
}
