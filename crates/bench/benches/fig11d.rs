//! Figure 11(d): scalability in the number of relations, with the
//! constraint load fixed at `|Σ| / |R| = 1000`.
//!
//! Paper setting: 20–100 relations (so 20K–100K constraints at full
//! scale). Expected shape: runtime grows with the number of relations;
//! `Checking` tracks `RandomChecking` closely, with the preProcessing
//! pass keeping it competitive.

use condep_bench::{ms, time_once, FigureTable, Scale};
use condep_consistency::{
    checking, random_checking, CheckingConfig, ConstraintSet, RandomCheckingConfig,
};
use condep_gen::{generate_sigma, random_schema, SchemaGenConfig, SigmaGenConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let scale = Scale::from_env();
    let (relation_counts, per_relation): (Vec<usize>, usize) = match scale {
        Scale::Quick => (vec![5, 10, 20, 40], 100),
        Scale::Full => (vec![20, 40, 60, 80, 100], 1_000),
    };
    let runs = scale.pick(3, 6);

    let mut table = FigureTable::new(
        "fig11d",
        &[
            "relations",
            "constraints",
            "random_checking_ms",
            "checking_ms",
        ],
    );
    for &r in &relation_counts {
        let n = r * per_relation;
        let schema_cfg = SchemaGenConfig {
            relations: r,
            attrs_min: 5,
            attrs_max: 15,
            finite_ratio: 0.2,
            finite_dom_min: 2,
            finite_dom_max: 100,
        };
        let mut rc_total = 0.0;
        let mut ck_total = 0.0;
        for run in 0..runs {
            let seed = 60_000 + run as u64 * 3;
            let schema = random_schema(&schema_cfg, &mut StdRng::seed_from_u64(seed));
            let (cfds, cinds, _) = generate_sigma(
                &schema,
                &SigmaGenConfig {
                    cardinality: n,
                    cfd_fraction: 0.75,
                    consistent: true,
                    ..SigmaGenConfig::default()
                },
                &mut StdRng::seed_from_u64(seed + 1),
            );
            let sigma = ConstraintSet::new(schema.clone(), cfds, cinds);
            let rc_cfg = RandomCheckingConfig {
                k: 20,
                seed: seed + 2,
                ..RandomCheckingConfig::default()
            };
            let (rc_time, _) = time_once(|| random_checking(&sigma, &rc_cfg, None).is_some());
            let ck_cfg = CheckingConfig {
                random: rc_cfg,
                ..CheckingConfig::default()
            };
            let (ck_time, _) = time_once(|| checking(&sigma, &ck_cfg).is_some());
            rc_total += ms(rc_time);
            ck_total += ms(ck_time);
        }
        let runs_f = runs as f64;
        table.row(&[
            &r,
            &n,
            &format!("{:.1}", rc_total / runs_f),
            &format!("{:.1}", ck_total / runs_f),
        ]);
    }
    table.finish("Figure 11(d): runtime vs number of relations (|Σ|/|R| fixed)");
    println!(
        "\nExpected shape (paper): runtime grows with the relation count;\n\
         both algorithms stay practical up to 100 relations."
    );
}
