//! Micro-bench: per-CFD violation detection vs the batched `Validator`.
//!
//! Workload: one 8-attribute relation whose columns embed three clean
//! FDs (`a1 → a2`, `a3 → a4`, `a5 → a6`) plus a unique id and a free
//! column, with a small corrupted fraction so detectors have real
//! violations to report. Σ is 200 normal CFDs arranged in three shapes
//! (2, 10, and 50 distinct LHS attribute sets) over two instance sizes
//! (10K and 100K tuples).
//!
//! The per-CFD baseline runs `find_violations_unordered` per constraint
//! (one index build each); the batched engine runs
//! `Validator::validate` (one shared index per LHS set, interned keys,
//! parallel sweep). Results print as a table and are recorded in
//! `BENCH_validator.json` at the repository root.

use condep_bench::{best_of, ms, xorshift, FigureTable};
use condep_cfd::{find_violations_unordered, NormalCfd};
use condep_model::{tuple, Database, Domain, PValue, PatternRow, Schema};
use condep_telemetry::{Export, MetricsSnapshot};
use condep_validate::Validator;
use std::fmt::Write as _;
use std::sync::Arc;

fn schema() -> Arc<Schema> {
    Arc::new(
        Schema::builder()
            .relation(
                "r",
                &[
                    ("a0", Domain::string()),
                    ("a1", Domain::string()),
                    ("a2", Domain::string()),
                    ("a3", Domain::string()),
                    ("a4", Domain::string()),
                    ("a5", Domain::string()),
                    ("a6", Domain::string()),
                    ("a7", Domain::string()),
                ],
            )
            .finish(),
    )
}

/// `n` tuples honoring the embedded FDs, with ~0.1% corrupted `a2`.
fn instance(schema: &Arc<Schema>, n: usize) -> Database {
    let mut db = Database::empty(schema.clone());
    let mut state = 0x243f_6a88_85a3_08d3u64;
    for i in 0..n {
        let h1 = xorshift(&mut state) % 64;
        let h2 = xorshift(&mut state) % 512;
        let h3 = xorshift(&mut state) % 4096;
        let w = xorshift(&mut state) % 8;
        let a2 = if i % 1024 == 1023 {
            "CORRUPT".to_string()
        } else {
            format!("c{h1}")
        };
        db.insert_into(
            "r",
            tuple![
                format!("id{i}").as_str(),
                format!("b{h1}").as_str(),
                a2.as_str(),
                format!("d{h2}").as_str(),
                format!("e{h2}").as_str(),
                format!("f{h3}").as_str(),
                format!("g{h3}").as_str(),
                format!("w{w}").as_str()
            ],
        )
        .unwrap();
    }
    db
}

/// The RHS attribute functionally determined by an LHS set (`a0`/`a1 →
/// a2`, `a3 → a4`, `a5 → a6` by construction of [`instance`]).
fn rhs_for(lhs: &[&str]) -> &'static str {
    if lhs.contains(&"a0") || lhs.contains(&"a1") {
        "a2"
    } else if lhs.contains(&"a3") {
        "a4"
    } else {
        "a6"
    }
}

/// `total` normal CFDs spread round-robin over `lhs_sets`, mixing
/// all-wildcard FD rows, constant-LHS rows, and constant-RHS rows.
fn sigma(schema: &Arc<Schema>, lhs_sets: &[Vec<&str>], total: usize) -> Vec<NormalCfd> {
    let mut cfds = Vec::with_capacity(total);
    let mut j = 0usize;
    while cfds.len() < total {
        for lhs in lhs_sets {
            if cfds.len() >= total {
                break;
            }
            let rhs = rhs_for(lhs);
            let member = j % 16;
            let (lhs_pat, rhs_pat) = match member {
                // The plain embedded FD.
                0 => (PatternRow::all_any(lhs.len()), PValue::Any),
                // Constant-RHS rows pinning one consistent pair.
                m if m >= 12 => {
                    let cells: Vec<PValue> = lhs
                        .iter()
                        .map(|a| match *a {
                            "a1" => PValue::constant(format!("b{m}")),
                            _ => PValue::Any,
                        })
                        .collect();
                    let rhs_c = if rhs == "a2" && lhs.contains(&"a1") {
                        PValue::constant(format!("c{m}"))
                    } else {
                        PValue::Any
                    };
                    (PatternRow::new(cells), rhs_c)
                }
                // Constant-LHS rows selecting one key slice.
                m => {
                    let cells: Vec<PValue> = lhs
                        .iter()
                        .enumerate()
                        .map(|(i, a)| {
                            if i == 0 {
                                match *a {
                                    "a1" => PValue::constant(format!("b{m}")),
                                    "a3" => PValue::constant(format!("d{m}")),
                                    "a5" => PValue::constant(format!("f{m}")),
                                    "a7" => PValue::constant(format!("w{}", m % 8)),
                                    _ => PValue::Any,
                                }
                            } else {
                                PValue::Any
                            }
                        })
                        .collect();
                    (PatternRow::new(cells), PValue::Any)
                }
            };
            cfds.push(NormalCfd::parse(schema, "r", lhs, lhs_pat, rhs, rhs_pat).unwrap());
            j += 1;
        }
    }
    cfds
}

/// The three Σ-shapes, in descending index-sharing order.
fn shapes() -> Vec<(&'static str, Vec<Vec<&'static str>>)> {
    let two = vec![vec!["a1"], vec!["a3"]];
    let ten = vec![
        vec!["a1"],
        vec!["a3"],
        vec!["a5"],
        vec!["a1", "a3"],
        vec!["a1", "a5"],
        vec!["a3", "a5"],
        vec!["a1", "a3", "a5"],
        vec!["a0"],
        vec!["a0", "a7"],
        vec!["a7", "a1"],
    ];
    // 50 distinct sets: {a1} ∪ one subset of {a0, a3, a4, a5, a6, a7}
    // (all determine a2 through a1) — minimal index sharing.
    let pool = ["a0", "a3", "a4", "a5", "a6", "a7"];
    let mut fifty = Vec::new();
    for mask in 0u32..64 {
        if fifty.len() == 50 {
            break;
        }
        let mut set = vec!["a1"];
        for (i, a) in pool.iter().enumerate() {
            if mask >> i & 1 == 1 {
                set.push(a);
            }
        }
        fifty.push(set);
    }
    vec![
        ("2-lhs-sets", two),
        ("10-lhs-sets", ten),
        ("50-lhs-sets", fifty),
    ]
}

fn main() {
    // Smoke mode (CI): one iteration at reduced size, JSON untouched —
    // exercises the full code path without disturbing the recorded
    // baseline.
    let smoke = std::env::var("CONDEP_BENCH_SMOKE").is_ok_and(|v| v == "1");
    let schema = schema();
    let sizes: &[usize] = if smoke { &[10_000] } else { &[10_000, 100_000] };
    let runs = if smoke { 1 } else { 3 };
    let mut table = FigureTable::new(
        "validator",
        &[
            "shape",
            "tuples",
            "cfds",
            "lhs_sets",
            "violations",
            "per_cfd_ms",
            "batched_ms",
            "speedup",
        ],
    );
    let mut json_rows = String::new();
    let mut headline_speedup = 0.0f64;
    let mut headline_metrics: Option<MetricsSnapshot> = None;

    for &n in sizes {
        let db = instance(&schema, n);
        for (shape, lhs_sets) in shapes() {
            let cfds = sigma(&schema, &lhs_sets, 200);
            let validator = Validator::new(cfds.clone(), vec![]);

            let (per_cfd, v1) = best_of(runs, || {
                cfds.iter()
                    .map(|c| find_violations_unordered(&db, c).len())
                    .sum()
            });
            let (batched, v2) = best_of(runs, || validator.validate(&db).len());
            assert_eq!(v1, v2, "detectors disagree on violation count");

            let speedup = ms(per_cfd) / ms(batched).max(1e-9);
            if shape == "10-lhs-sets" && n == *sizes.last().unwrap() {
                headline_speedup = speedup;
                let mut m = MetricsSnapshot::default();
                validator
                    .compile_stats()
                    .export("validator.compile", &mut m);
                validator.cover_stats().export("validator.cover", &mut m);
                headline_metrics = Some(m);
            }
            table.row(&[
                &shape,
                &n,
                &cfds.len(),
                &lhs_sets.len(),
                &v1,
                &format!("{:.1}", ms(per_cfd)),
                &format!("{:.1}", ms(batched)),
                &format!("{:.1}x", speedup),
            ]);
            let _ = writeln!(
                json_rows,
                "    {{\"shape\": \"{shape}\", \"tuples\": {n}, \"cfds\": {}, \
                 \"lhs_sets\": {}, \"violations\": {v1}, \"per_cfd_ms\": {:.2}, \
                 \"batched_ms\": {:.2}, \"speedup\": {:.2}}},",
                cfds.len(),
                lhs_sets.len(),
                ms(per_cfd),
                ms(batched),
                speedup,
            );
        }
    }
    table.finish("Validator micro-bench: per-CFD loop vs batched sweep");

    // Telemetry gate (both modes): the headline validator's compile +
    // cover stats must export and serialize to valid json.
    let headline_metrics = headline_metrics.expect("10-lhs-sets shape ran");
    let metrics_json = headline_metrics.to_json();
    assert!(
        condep_telemetry::json::is_valid(&metrics_json),
        "validator MetricsSnapshot did not serialize to valid json:\n{metrics_json}"
    );
    for key in [
        "validator.compile.compile_us",
        "validator.compile.cfd_groups",
        "validator.compile.cfd_members",
        "validator.cover.cfd_merged",
    ] {
        assert!(
            headline_metrics.get(key).is_some(),
            "validator MetricsSnapshot is missing required key {key}"
        );
    }

    if smoke {
        println!("(smoke mode: BENCH_validator.json not rewritten)");
        return;
    }
    let json = format!(
        "{{\n  \"bench\": \"validator\",\n  \"baseline\": \"per-CFD find_violations_unordered loop\",\n  \
         \"contender\": \"condep_validate::Validator::validate (shared group-by indexes, interned keys, parallel sweep)\",\n  \
         \"runs_per_point\": {runs},\n  \"timing\": \"best of {runs}\",\n  \
         \"headline\": {{\"shape\": \"10-lhs-sets\", \"tuples\": 100000, \"cfds\": 200, \"speedup\": {headline_speedup:.2}}},\n  \
         \"metrics\": {metrics_json},\n  \
         \"results\": [\n{}  ]\n}}\n",
        json_rows.trim_end_matches(",\n").to_string() + "\n",
    );
    let path = format!("{}/../../BENCH_validator.json", env!("CARGO_MANIFEST_DIR"));
    match std::fs::write(&path, &json) {
        Ok(()) => println!("(json: {path})"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
    println!("headline speedup (100K tuples, 200 CFDs, 10 LHS sets): {headline_speedup:.1}x");
}
