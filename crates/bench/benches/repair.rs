//! Micro-bench: end-to-end cost-based repair of a dirtied instance.
//!
//! The data-cleaning workload the repair engine was built for: a 100K
//! tuple instance satisfying the validator bench's headline Σ (200 CFDs
//! over 10 LHS sets, plus a CIND into a partner relation) is corrupted
//! by `condep_gen::dirtied_database` at a 1% error rate (typos against
//! constant patterns, orphaned CIND sources, duplicate-key conflicts)
//! and then repaired by `condep_repair::repair` — every fix applied
//! through the `ValidatorStream` delta engine and kept only when its
//! `SigmaDelta`s prove it net-negative.
//!
//! The run doubles as the end-to-end acceptance gate: after repair the
//! instance must have **zero residual CFD violations** (CIND residual is
//! tolerated only when the cascade budget was exhausted, which this
//! workload never hits).
//!
//! Results are recorded in `BENCH_repair.json` at the repository root
//! (skipped in `CONDEP_BENCH_SMOKE=1` mode, which CI uses to exercise
//! the path at reduced size).

use condep_bench::{ms, time_once, xorshift, FigureTable};
use condep_cfd::NormalCfd;
use condep_core::NormalCind;
use condep_gen::dirtied_database;
use condep_model::{tuple, Database, Domain, PValue, PatternRow, Schema, Tuple};
use condep_repair::{repair, RepairBudget, RepairCost};
use condep_validate::Validator;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt::Write as _;
use std::time::Duration;

fn schema() -> std::sync::Arc<Schema> {
    std::sync::Arc::new(
        Schema::builder()
            .relation(
                "r",
                &[
                    ("a0", Domain::string()),
                    ("a1", Domain::string()),
                    ("a2", Domain::string()),
                    ("a3", Domain::string()),
                    ("a4", Domain::string()),
                    ("a5", Domain::string()),
                    ("a6", Domain::string()),
                    ("a7", Domain::string()),
                ],
            )
            .relation("partner", &[("p", Domain::string())])
            .finish(),
    )
}

/// One pseudo-random **clean** `r` tuple honoring the embedded FDs
/// (`a1 → a2`, `a3 → a4`, `a5 → a6`) and the constant patterns.
fn random_tuple(i: usize, state: &mut u64) -> Tuple {
    let h1 = xorshift(state) % 64;
    let h2 = xorshift(state) % 512;
    let h3 = xorshift(state) % 4096;
    let w = xorshift(state) % 8;
    tuple![
        format!("id{i}").as_str(),
        format!("b{h1}").as_str(),
        format!("c{h1}").as_str(),
        format!("d{h2}").as_str(),
        format!("e{h2}").as_str(),
        format!("f{h3}").as_str(),
        format!("g{h3}").as_str(),
        format!("w{w}").as_str()
    ]
}

/// The validator bench's 10-LHS-set shape: 200 CFDs sharing 10 distinct
/// LHS attribute lists (mixed wildcard and constant patterns).
fn sigma_cfds(schema: &std::sync::Arc<Schema>) -> Vec<NormalCfd> {
    let lhs_sets: Vec<Vec<&str>> = vec![
        vec!["a1"],
        vec!["a3"],
        vec!["a5"],
        vec!["a1", "a3"],
        vec!["a1", "a5"],
        vec!["a3", "a5"],
        vec!["a1", "a3", "a5"],
        vec!["a0"],
        vec!["a0", "a7"],
        vec!["a7", "a1"],
    ];
    let rhs_for = |lhs: &[&str]| {
        if lhs.contains(&"a0") || lhs.contains(&"a1") {
            "a2"
        } else if lhs.contains(&"a3") {
            "a4"
        } else {
            "a6"
        }
    };
    let mut cfds = Vec::with_capacity(200);
    let mut j = 0usize;
    while cfds.len() < 200 {
        for lhs in &lhs_sets {
            if cfds.len() >= 200 {
                break;
            }
            let rhs = rhs_for(lhs);
            let member = j % 16;
            let (lhs_pat, rhs_pat) = match member {
                0 => (PatternRow::all_any(lhs.len()), PValue::Any),
                m if m >= 12 => {
                    let cells: Vec<PValue> = lhs
                        .iter()
                        .map(|a| match *a {
                            "a1" => PValue::constant(format!("b{m}")),
                            _ => PValue::Any,
                        })
                        .collect();
                    let rhs_c = if rhs == "a2" && lhs.contains(&"a1") {
                        PValue::constant(format!("c{m}"))
                    } else {
                        PValue::Any
                    };
                    (PatternRow::new(cells), rhs_c)
                }
                m => {
                    let cells: Vec<PValue> = lhs
                        .iter()
                        .enumerate()
                        .map(|(i, a)| {
                            if i == 0 {
                                match *a {
                                    "a1" => PValue::constant(format!("b{m}")),
                                    "a3" => PValue::constant(format!("d{m}")),
                                    "a5" => PValue::constant(format!("f{m}")),
                                    "a7" => PValue::constant(format!("w{}", m % 8)),
                                    _ => PValue::Any,
                                }
                            } else {
                                PValue::Any
                            }
                        })
                        .collect();
                    (PatternRow::new(cells), PValue::Any)
                }
            };
            cfds.push(NormalCfd::parse(schema, "r", lhs, lhs_pat, rhs, rhs_pat).unwrap());
            j += 1;
        }
    }
    cfds
}

fn build_clean(schema: &std::sync::Arc<Schema>, n: usize) -> Database {
    let mut db = Database::empty(schema.clone());
    let mut state = 0x243f_6a88_85a3_08d3u64;
    for i in 0..n {
        db.insert_into("r", random_tuple(i, &mut state)).unwrap();
    }
    for h in 0..64u64 {
        db.insert_into("partner", tuple![format!("b{h}").as_str()])
            .unwrap();
    }
    db
}

fn main() {
    let smoke = std::env::var("CONDEP_BENCH_SMOKE").is_ok_and(|v| v == "1");
    let (n, runs) = if smoke { (10_000, 1) } else { (100_000, 3) };
    let schema = schema();
    let cfds = sigma_cfds(&schema);
    // Forward CIND only: `r[a1] ⊆ partner[p]`. (The dirtifier corrupts
    // source keys; corrupting the 64-row partner side would orphan whole
    // reference cohorts and turn 1% dirt into a different workload.)
    let cinds: Vec<NormalCind> =
        vec![NormalCind::parse(&schema, "r", &["a1"], &[], "partner", &["p"], &[]).unwrap()];
    let validator = Validator::new(cfds.clone(), cinds.clone());

    let clean = build_clean(&schema, n);
    assert!(
        validator.validate(&clean).is_empty(),
        "the base instance must satisfy Σ"
    );
    let dirtied = dirtied_database(&clean, &cfds, &cinds, 0.01, &mut StdRng::seed_from_u64(42));
    let injected = dirtied.injected.len();
    let initial = validator.validate_sorted(&dirtied.db);
    let initial_violations = initial.len();

    let mut repair_time = Duration::MAX;
    let mut best = None;
    for _ in 0..runs {
        let (elapsed, (repaired_db, report)) = time_once(|| {
            repair(
                validator.clone(),
                dirtied.db.clone(),
                initial.clone(),
                &RepairCost::uniform(),
                &RepairBudget::default(),
            )
            .expect("bench sigmas are satisfiable by construction")
        });
        // Acceptance gate: zero residual CFD violations, CIND residual
        // only with an exhausted cascade budget; and the repaired
        // database really re-validates to the reported residual.
        assert!(
            report.residual.cfd.is_empty(),
            "residual CFD violations: {:?}",
            report.residual.cfd.len()
        );
        assert!(
            report.residual.cind.is_empty() || report.budget_exhausted,
            "CIND residual without budget exhaustion"
        );
        assert_eq!(
            validator.validate_sorted(&repaired_db),
            report.residual,
            "reported residual must match a fresh sweep"
        );
        for a in &report.log.applied {
            assert!(a.net_change() < 0, "kept fix not net-negative");
        }
        if elapsed < repair_time {
            repair_time = elapsed;
            best = Some(report);
        }
    }
    let report = best.expect("at least one run");
    let fixes = report.fixes_applied();
    let us_per_fix = ms(repair_time) * 1000.0 / (fixes.max(1) as f64);

    let mut table = FigureTable::new(
        "repair",
        &[
            "tuples",
            "injected",
            "initial_violations",
            "fixes",
            "cells_edited",
            "deleted",
            "inserted",
            "rounds",
            "repair_ms",
            "us_per_fix",
            "residual",
        ],
    );
    table.row(&[
        &n,
        &injected,
        &initial_violations,
        &fixes,
        &report.cells_edited,
        &report.tuples_deleted,
        &report.tuples_inserted,
        &report.log.rounds,
        &format!("{:.2}", ms(repair_time)),
        &format!("{:.1}", us_per_fix),
        &report.residual.len(),
    ]);
    table.finish("Cost-based repair of a 1%-dirty instance through the delta engine");

    // Telemetry gate (both modes): the run's RepairReport::metrics must
    // serialize to valid json and carry the round/fix summary keys.
    let metrics_json = report.metrics.to_json();
    assert!(
        condep_telemetry::json::is_valid(&metrics_json),
        "repair MetricsSnapshot did not serialize to valid json:\n{metrics_json}"
    );
    for key in [
        "repair.rounds",
        "repair.fixes.accepted",
        "repair.fixes.rejected",
        "repair.violations.initial",
        "repair.violations.residual",
        "repair.total_cost",
    ] {
        assert!(
            report.metrics.get(key).is_some(),
            "repair MetricsSnapshot is missing required key {key}"
        );
    }

    if smoke {
        println!("(smoke mode: BENCH_repair.json not rewritten)");
        return;
    }
    let mut json_rows = String::new();
    let _ = writeln!(
        json_rows,
        "    {{\"tuples\": {n}, \"injected\": {injected}, \
         \"initial_violations\": {initial_violations}, \"fixes\": {fixes}, \
         \"cells_edited\": {}, \"deleted\": {}, \"inserted\": {}, \
         \"rounds\": {}, \"repair_ms\": {:.2}, \"us_per_fix\": {:.2}, \
         \"residual\": {}, \"total_cost\": {:.1}}}",
        report.cells_edited,
        report.tuples_deleted,
        report.tuples_inserted,
        report.log.rounds,
        ms(repair_time),
        us_per_fix,
        report.residual.len(),
        report.total_cost,
    );
    let json = format!(
        "{{\n  \"bench\": \"repair\",\n  \"workload\": \"100K-tuple clean instance, 1% injected dirt (typos, CIND orphans, duplicate keys), repaired to zero residual CFD violations\",\n  \
         \"engine\": \"condep-repair greedy equivalence-class repair; every fix delta-verified net-negative through ValidatorStream\",\n  \
         \"runs_per_point\": {runs},\n  \"timing\": \"best of {runs}\",\n  \
         \"headline\": {{\"tuples\": {n}, \"dirt\": \"1%\", \"cfds\": 200, \"cinds\": 1, \"fixes\": {fixes}, \"us_per_fix\": {us_per_fix:.1}}},\n  \
         \"metrics\": {metrics_json},\n  \
         \"results\": [\n{json_rows}  ]\n}}\n",
    );
    let path = format!("{}/../../BENCH_repair.json", env!("CARGO_MANIFEST_DIR"));
    match std::fs::write(&path, &json) {
        Ok(()) => println!("(json: {path})"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
    println!(
        "headline: {n} tuples, 1% dirt -> {fixes} fixes in {:.2} ms ({us_per_fix:.1} us/fix), residual {}",
        ms(repair_time),
        report.residual.len()
    );
}
