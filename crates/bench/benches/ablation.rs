//! Ablations over the design choices Section 5/6 call out:
//!
//! * `preProcessing` on/off — the paper: "the preProcessing not only
//!   increases accuracy but it also improves the scalability";
//! * the variable-pool size `N` — the paper: "N … has a negligible
//!   impact on the accuracy … we set N = 2";
//! * the valuation budget `K` of `RandomChecking`;
//! * the tuple cap `T` of the instantiated chase.

use condep_bench::{ms, pct, time_once, FigureTable, Scale};
use condep_chase::ChaseConfig;
use condep_consistency::{checking, CheckingConfig, ConstraintSet, RandomCheckingConfig};
use condep_gen::{generate_sigma, random_schema, SchemaGenConfig, SigmaGenConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn workload(seed: u64, cardinality: usize, witness_bias: f64) -> ConstraintSet {
    let schema_cfg = SchemaGenConfig {
        relations: 20,
        attrs_min: 5,
        attrs_max: 15,
        finite_ratio: 0.2,
        finite_dom_min: 2,
        finite_dom_max: 100,
    };
    let schema = random_schema(&schema_cfg, &mut StdRng::seed_from_u64(seed));
    let (cfds, cinds, _) = generate_sigma(
        &schema,
        &SigmaGenConfig {
            cardinality,
            cfd_fraction: 0.75,
            consistent: true,
            witness_bias,
            ..SigmaGenConfig::default()
        },
        &mut StdRng::seed_from_u64(seed + 1),
    );
    ConstraintSet::new(schema, cfds, cinds)
}

fn run_config(
    sigma: &ConstraintSet,
    seed: u64,
    use_preprocessing: bool,
    k: usize,
    pool: u8,
    cap: usize,
) -> (bool, f64) {
    let cfg = CheckingConfig {
        use_preprocessing,
        random: RandomCheckingConfig {
            k,
            seed,
            chase: ChaseConfig {
                pool_size: pool,
                tuple_cap: cap,
                ..ChaseConfig::default()
            },
        },
        ..CheckingConfig::default()
    };
    let (t, ok) = time_once(|| checking(sigma, &cfg).is_some());
    (ok, ms(t))
}

fn main() {
    let scale = Scale::from_env();
    let cardinality = scale.pick(2_000, 10_000);
    let runs = scale.pick(4, 8);

    // --- preProcessing on/off. ---
    let mut t = FigureTable::new(
        "ablation_preprocessing",
        &["preprocessing", "accuracy_%", "avg_ms"],
    );
    for on in [true, false] {
        let mut hits = 0;
        let mut total_ms = 0.0;
        for run in 0..runs {
            let sigma = workload(70_000 + run as u64, cardinality, 1.0);
            let (ok, elapsed) = run_config(&sigma, run as u64, on, 20, 2, 2_000);
            hits += usize::from(ok);
            total_ms += elapsed;
        }
        t.row(&[
            &on,
            &format!("{:.1}", pct(hits, runs)),
            &format!("{:.1}", total_ms / runs as f64),
        ]);
    }
    t.finish("Ablation: preProcessing on/off (consistent sets)");

    // --- Generator hardness: the witness-bias knob. ---
    // The paper's consistent sets sit at bias 1.0 ("rarely complex
    // enough … to fail"); lowering the bias scatters conclusion
    // constants that interlock, showing where the heuristics break.
    let mut t = FigureTable::new("ablation_bias", &["witness_bias", "accuracy_%", "avg_ms"]);
    for bias in [1.0f64, 0.9, 0.5, 0.2, 0.0] {
        let mut hits = 0;
        let mut total_ms = 0.0;
        for run in 0..runs {
            let sigma = workload(74_000 + run as u64, cardinality, bias);
            let (ok, elapsed) = run_config(&sigma, run as u64, true, 20, 2, 2_000);
            hits += usize::from(ok);
            total_ms += elapsed;
        }
        t.row(&[
            &bias,
            &format!("{:.1}", pct(hits, runs)),
            &format!("{:.1}", total_ms / runs as f64),
        ]);
    }
    t.finish("Ablation: generator hardness (witness bias; 1.0 = paper regime)");

    // The remaining sweeps use a slightly adversarial workload so the
    // knobs have observable effect.
    let hard = 0.9f64;

    // --- Pool size N. ---
    let mut t = FigureTable::new("ablation_pool", &["pool_N", "accuracy_%", "avg_ms"]);
    for pool in [1u8, 2, 4, 8] {
        let mut hits = 0;
        let mut total_ms = 0.0;
        for run in 0..runs {
            let sigma = workload(71_000 + run as u64, cardinality, hard);
            let (ok, elapsed) = run_config(&sigma, run as u64, true, 20, pool, 2_000);
            hits += usize::from(ok);
            total_ms += elapsed;
        }
        t.row(&[
            &pool,
            &format!("{:.1}", pct(hits, runs)),
            &format!("{:.1}", total_ms / runs as f64),
        ]);
    }
    t.finish("Ablation: variable-pool size N (paper: negligible accuracy impact)");

    // --- Valuation budget K. ---
    let mut t = FigureTable::new("ablation_k", &["K", "accuracy_%", "avg_ms"]);
    for k in [1usize, 5, 20, 50] {
        let mut hits = 0;
        let mut total_ms = 0.0;
        for run in 0..runs {
            let sigma = workload(72_000 + run as u64, cardinality, hard);
            let (ok, elapsed) = run_config(&sigma, run as u64, true, k, 2, 2_000);
            hits += usize::from(ok);
            total_ms += elapsed;
        }
        t.row(&[
            &k,
            &format!("{:.1}", pct(hits, runs)),
            &format!("{:.1}", total_ms / runs as f64),
        ]);
    }
    t.finish("Ablation: RandomChecking valuation budget K (paper uses K = 20)");

    // --- Tuple cap T. ---
    let mut t = FigureTable::new("ablation_t", &["tuple_cap_T", "accuracy_%", "avg_ms"]);
    for cap in [50usize, 500, 2_000, 4_000] {
        let mut hits = 0;
        let mut total_ms = 0.0;
        for run in 0..runs {
            let sigma = workload(73_000 + run as u64, cardinality, hard);
            let (ok, elapsed) = run_config(&sigma, run as u64, true, 20, 2, cap);
            hits += usize::from(ok);
            total_ms += elapsed;
        }
        t.row(&[
            &cap,
            &format!("{:.1}", pct(hits, runs)),
            &format!("{:.1}", total_ms / runs as f64),
        ]);
    }
    t.finish("Ablation: chase tuple cap T (paper uses 2K-4K)");
}
