//! Figure 11(b): scalability (runtime) of `RandomChecking` vs `Checking`
//! on **consistent** sets of CFDs + CINDs.
//!
//! Same workload as Figure 11(a); y-axis is runtime. Expected shape:
//! both scale roughly linearly with the number of constraints, and
//! `Checking` is *faster* in practice despite its extra machinery —
//! "most of the cases are solved in the preProcessing step".

use condep_bench::{ms, time_once, FigureTable, Scale};
use condep_consistency::{
    checking, random_checking, CheckingConfig, ConstraintSet, RandomCheckingConfig,
};
use condep_gen::{generate_sigma, random_schema, SchemaGenConfig, SigmaGenConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let scale = Scale::from_env();
    let sizes: Vec<usize> = match scale {
        Scale::Quick => vec![250, 500, 1_000, 2_000],
        Scale::Full => vec![1_000, 5_000, 10_000, 15_000, 20_000],
    };
    let runs = scale.pick(3, 6);

    let schema_cfg = SchemaGenConfig {
        relations: 20,
        attrs_min: 5,
        attrs_max: 15,
        finite_ratio: 0.2,
        finite_dom_min: 2,
        finite_dom_max: 100,
    };

    let mut table = FigureTable::new(
        "fig11b",
        &["constraints", "random_checking_ms", "checking_ms"],
    );
    for &n in &sizes {
        let mut rc_total = 0.0;
        let mut ck_total = 0.0;
        for run in 0..runs {
            let seed = 40_000 + run as u64 * 7;
            let schema = random_schema(&schema_cfg, &mut StdRng::seed_from_u64(seed));
            let (cfds, cinds, _) = generate_sigma(
                &schema,
                &SigmaGenConfig {
                    cardinality: n,
                    cfd_fraction: 0.75,
                    consistent: true,
                    ..SigmaGenConfig::default()
                },
                &mut StdRng::seed_from_u64(seed + 1),
            );
            let sigma = ConstraintSet::new(schema.clone(), cfds, cinds);
            let rc_cfg = RandomCheckingConfig {
                k: 20,
                seed: seed + 2,
                ..RandomCheckingConfig::default()
            };
            let (rc_time, _) = time_once(|| random_checking(&sigma, &rc_cfg, None).is_some());
            let ck_cfg = CheckingConfig {
                random: rc_cfg,
                ..CheckingConfig::default()
            };
            let (ck_time, _) = time_once(|| checking(&sigma, &ck_cfg).is_some());
            rc_total += ms(rc_time);
            ck_total += ms(ck_time);
        }
        let runs_f = runs as f64;
        table.row(&[
            &n,
            &format!("{:.1}", rc_total / runs_f),
            &format!("{:.1}", ck_total / runs_f),
        ]);
    }
    table.finish("Figure 11(b): runtime on consistent sets of CFDs + CINDs");
    println!(
        "\nExpected shape (paper): near-linear scaling; Checking is the faster\n\
         of the two in practice because preProcessing resolves most cases."
    );
}
