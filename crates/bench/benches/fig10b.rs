//! Figure 10(b): accuracy of the chase-based `CFD_Checking` as a
//! function of the valuation budget `K_CFD`.
//!
//! Paper setting: 1000 randomly generated CFDs, `K_CFD` swept (their
//! x-axis shows 200–1600); accuracy is determined "by running the
//! algorithm with and without a limit K_CFD" — our unlimited reference
//! is the complete SAT checker. Expected shape: accuracy climbs with
//! `K_CFD` and saturates at 100%.
//!
//! Uniformly random CFD sets are almost always easy (either inconsistent
//! through unavoidable forcing, or satisfied by the first valuation), so
//! — like the paper, whose accuracy visibly dips at low budgets — the
//! workload here embeds *traps*: finite-domain attributes where all but
//! a few randomly chosen values are poisoned by conflicting conclusions.
//! The chase must sample a surviving value within its budget; the SAT
//! reference always finds it.

use condep_bench::{pct, FigureTable, Scale};
use condep_cfd::NormalCfd;
use condep_consistency::{CfdChecker, ChaseCfdChecker, SatCfdChecker};
use condep_gen::{random_schema, SchemaGenConfig};
use condep_model::{PValue, PatternRow, RelId, Schema, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Builds a trapped CFD set on one relation: every value of a finite
/// attribute except `survivors` many gets a pair of conflicting
/// conclusions. With zero survivors the set is inconsistent.
fn trap_set<R: Rng>(schema: &Schema, rel: RelId, rng: &mut R) -> Vec<NormalCfd> {
    let rs = schema.relation(rel).expect("rel");
    let finite: Vec<_> = rs
        .iter()
        .filter(|(_, a)| a.domain().size().map(|n| n >= 8).unwrap_or(false))
        .collect();
    let Some((attr, meta)) = finite.first() else {
        return Vec::new();
    };
    let values = meta.domain().values().expect("finite").to_vec();
    // 0–2 surviving values; 0 ⇒ genuinely inconsistent relation.
    let survivors = rng.gen_range(0..=2usize);
    let mut keep: Vec<usize> = Vec::new();
    while keep.len() < survivors {
        let i = rng.gen_range(0..values.len());
        if !keep.contains(&i) {
            keep.push(i);
        }
    }
    // Conclusion attribute: any other attribute.
    let target = rs
        .iter()
        .map(|(a, _)| a)
        .find(|a| a != attr)
        .expect("arity >= 2");
    let mut out = Vec::new();
    for (i, v) in values.iter().enumerate() {
        if keep.contains(&i) {
            // Semantically harmless (wildcard RHS is vacuous on a single
            // tuple), but it mentions the surviving value in an LHS
            // pattern — defeating the checker's "prefer unmentioned
            // values" bias, so the valuation sampling has to do the work
            // (as in the paper's plain random chase).
            out.push(NormalCfd::new(
                rel,
                vec![*attr],
                PatternRow::new([PValue::Const(v.clone())]),
                target,
                PValue::Any,
            ));
            continue;
        }
        for conclusion in ["x", "y"] {
            out.push(NormalCfd::new(
                rel,
                vec![*attr],
                PatternRow::new([PValue::Const(v.clone())]),
                target,
                PValue::Const(Value::str(conclusion)),
            ));
        }
    }
    out
}

fn main() {
    let scale = Scale::from_env();
    let relations = 20usize;
    let budgets: Vec<u64> = match scale {
        Scale::Quick => vec![1, 2, 4, 8, 16, 32, 64, 200],
        Scale::Full => vec![1, 2, 4, 8, 16, 64, 100, 200, 400, 800, 1600, 16_000],
    };
    let runs = scale.pick(4, 6);

    // Wide finite domains make the needle hard to sample.
    let schema_cfg = SchemaGenConfig {
        relations,
        attrs_min: 4,
        attrs_max: 8,
        finite_ratio: 0.5,
        finite_dom_min: 16,
        finite_dom_max: 64,
    };

    let mut table = FigureTable::new("fig10b", &["k_cfd", "accuracy_%", "total_cfds"]);
    for &k in &budgets {
        let mut hits = 0usize;
        let mut total = 0usize;
        let mut cfd_count = 0usize;
        for run in 0..runs {
            let seed = 20_000 + run as u64 * 17;
            let schema = random_schema(&schema_cfg, &mut StdRng::seed_from_u64(seed));
            let mut workload_rng = StdRng::seed_from_u64(seed + 1);
            let mut chase = ChaseCfdChecker::new(k, StdRng::seed_from_u64(seed + 2));
            let mut reference = SatCfdChecker;
            for r in 0..relations as u32 {
                let rel = RelId(r);
                let cfds = trap_set(&schema, rel, &mut workload_rng);
                if cfds.is_empty() {
                    continue;
                }
                cfd_count += cfds.len();
                let budgeted = chase.check(&schema, rel, &cfds).is_some();
                let truth = reference.check(&schema, rel, &cfds).is_some();
                total += 1;
                if budgeted == truth {
                    hits += 1;
                }
            }
        }
        table.row(&[&k, &format!("{:.1}", pct(hits, total)), &(cfd_count / runs)]);
    }
    table.finish("Figure 10(b): chase CFD_Checking accuracy vs K_CFD (trapped random CFDs)");
    println!(
        "\nExpected shape (paper): accuracy rises with K_CFD and saturates at 100%\n\
         well before the adopted budget of 2000K."
    );
}
