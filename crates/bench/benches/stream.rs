//! Micro-bench: streamed delta validation vs full re-validation.
//!
//! The repair-style workload the north star calls for: a large instance
//! under **churn** (interleaved deletes of resident tuples and inserts
//! of fresh ones, 1% of the instance), monitored by the
//! `ValidatorStream` delta engine. The contender applies every mutation
//! through `delete_tuple` / `insert_tuple`, paying only for the
//! constraint groups and key groups each tuple touches; the baseline is
//! what a batch system does after the same churn window — one full
//! `Validator::validate` sweep of the final database.
//!
//! Σ is the validator bench's headline shape (200 CFDs over 10 distinct
//! LHS sets) plus a CIND against a partner relation, so all three delta
//! tiers (CFD group indexes, CIND target and source indexes) stay hot.
//!
//! The run doubles as the delta engine's bit-rot guard: after the churn
//! the stream's materialized report must equal a fresh batch sweep.
//!
//! Results are recorded in `BENCH_stream.json` at the repository root
//! (skipped in `CONDEP_BENCH_SMOKE=1` mode, which CI uses to exercise
//! the path with 1 iteration at reduced size).

use condep_bench::{best_of, ms, time_once, xorshift, FigureTable};
use condep_cfd::NormalCfd;
use condep_core::NormalCind;
use condep_model::{tuple, Database, Domain, PValue, PatternRow, Schema, Tuple};
use condep_validate::{Validator, ValidatorStream};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Duration;

fn schema() -> Arc<Schema> {
    Arc::new(
        Schema::builder()
            .relation(
                "r",
                &[
                    ("a0", Domain::string()),
                    ("a1", Domain::string()),
                    ("a2", Domain::string()),
                    ("a3", Domain::string()),
                    ("a4", Domain::string()),
                    ("a5", Domain::string()),
                    ("a6", Domain::string()),
                    ("a7", Domain::string()),
                ],
            )
            .relation("partner", &[("p", Domain::string())])
            .finish(),
    )
}

/// One pseudo-random `r` tuple honoring the embedded FDs (`a1 → a2`,
/// `a3 → a4`, `a5 → a6`), with ~0.1% corrupted `a2`.
fn random_tuple(i: usize, state: &mut u64) -> Tuple {
    let h1 = xorshift(state) % 64;
    let h2 = xorshift(state) % 512;
    let h3 = xorshift(state) % 4096;
    let w = xorshift(state) % 8;
    let a2 = if i % 1024 == 1023 {
        "CORRUPT".to_string()
    } else {
        format!("c{h1}")
    };
    tuple![
        format!("id{i}").as_str(),
        format!("b{h1}").as_str(),
        a2.as_str(),
        format!("d{h2}").as_str(),
        format!("e{h2}").as_str(),
        format!("f{h3}").as_str(),
        format!("g{h3}").as_str(),
        format!("w{w}").as_str()
    ]
}

/// The validator bench's 10-LHS-set shape: 200 CFDs sharing 10 distinct
/// LHS attribute lists.
fn sigma_cfds(schema: &Arc<Schema>) -> Vec<NormalCfd> {
    let lhs_sets: Vec<Vec<&str>> = vec![
        vec!["a1"],
        vec!["a3"],
        vec!["a5"],
        vec!["a1", "a3"],
        vec!["a1", "a5"],
        vec!["a3", "a5"],
        vec!["a1", "a3", "a5"],
        vec!["a0"],
        vec!["a0", "a7"],
        vec!["a7", "a1"],
    ];
    let rhs_for = |lhs: &[&str]| {
        if lhs.contains(&"a0") || lhs.contains(&"a1") {
            "a2"
        } else if lhs.contains(&"a3") {
            "a4"
        } else {
            "a6"
        }
    };
    let mut cfds = Vec::with_capacity(200);
    let mut j = 0usize;
    while cfds.len() < 200 {
        for lhs in &lhs_sets {
            if cfds.len() >= 200 {
                break;
            }
            let rhs = rhs_for(lhs);
            let member = j % 16;
            let (lhs_pat, rhs_pat) = match member {
                0 => (PatternRow::all_any(lhs.len()), PValue::Any),
                m if m >= 12 => {
                    let cells: Vec<PValue> = lhs
                        .iter()
                        .map(|a| match *a {
                            "a1" => PValue::constant(format!("b{m}")),
                            _ => PValue::Any,
                        })
                        .collect();
                    let rhs_c = if rhs == "a2" && lhs.contains(&"a1") {
                        PValue::constant(format!("c{m}"))
                    } else {
                        PValue::Any
                    };
                    (PatternRow::new(cells), rhs_c)
                }
                m => {
                    let cells: Vec<PValue> = lhs
                        .iter()
                        .enumerate()
                        .map(|(i, a)| {
                            if i == 0 {
                                match *a {
                                    "a1" => PValue::constant(format!("b{m}")),
                                    "a3" => PValue::constant(format!("d{m}")),
                                    "a5" => PValue::constant(format!("f{m}")),
                                    "a7" => PValue::constant(format!("w{}", m % 8)),
                                    _ => PValue::Any,
                                }
                            } else {
                                PValue::Any
                            }
                        })
                        .collect();
                    (PatternRow::new(cells), PValue::Any)
                }
            };
            cfds.push(NormalCfd::parse(schema, "r", lhs, lhs_pat, rhs, rhs_pat).unwrap());
            j += 1;
        }
    }
    cfds
}

/// `r[a1] ⊆ partner[p]` and `partner[p] ⊆ r[a1]`: the target and source
/// delta tiers both stay live under churn.
fn sigma_cinds(schema: &Arc<Schema>) -> Vec<NormalCind> {
    vec![
        NormalCind::parse(schema, "r", &["a1"], &[], "partner", &["p"], &[]).unwrap(),
        NormalCind::parse(schema, "partner", &["p"], &[], "r", &["a1"], &[]).unwrap(),
    ]
}

fn build_db(schema: &Arc<Schema>, n: usize) -> Database {
    let mut db = Database::empty(schema.clone());
    let mut state = 0x243f_6a88_85a3_08d3u64;
    for i in 0..n {
        db.insert_into("r", random_tuple(i, &mut state)).unwrap();
    }
    for h in 0..64u64 {
        db.insert_into("partner", tuple![format!("b{h}").as_str()])
            .unwrap();
    }
    db
}

fn main() {
    let smoke = std::env::var("CONDEP_BENCH_SMOKE").is_ok_and(|v| v == "1");
    let (n, runs) = if smoke { (10_000, 1) } else { (100_000, 3) };
    let churn = n / 100; // 1%: `churn` deletes + `churn` inserts.
    let schema = schema();
    let r = schema.rel_id("r").unwrap();
    let cfds = sigma_cfds(&schema);
    let cinds = sigma_cinds(&schema);
    let validator = Validator::new(cfds, cinds);

    let db = build_db(&schema, n);
    // The churn plan: delete `churn` residents spread across the
    // instance, insert `churn` fresh tuples.
    let mut state = 0x9e37_79b9_7f4a_7c15u64;
    let deletions: Vec<Tuple> = (0..churn)
        .map(|k| {
            db.relation(r)
                .get((k * 97 + 13) % db.relation(r).len())
                .unwrap()
                .clone()
        })
        .collect();
    let insertions: Vec<Tuple> = (0..churn)
        .map(|k| random_tuple(n + k, &mut state))
        .collect();

    // Contender: streamed deltas through one persistent ValidatorStream.
    // Stream construction — one batch sweep — is the monitor's setup
    // cost, amortized over its lifetime; the churn window is what's
    // timed. Mutations are interleaved delete/insert.
    let mut delta_time = Duration::MAX;
    let mut delta_events = 0usize;
    let mut final_db: Option<Database> = None;
    for _ in 0..runs {
        let (mut stream, _initial) = ValidatorStream::new_validated(validator.clone(), db.clone());
        let (elapsed, events) = time_once(|| {
            let mut events = 0usize;
            for (del, ins) in deletions.iter().zip(&insertions) {
                let d1 = stream.delete_tuple(r, del).expect("resident tuple");
                let d2 = stream.insert_tuple(r, ins.clone()).expect("well-typed");
                events += d1.cfd.introduced.len()
                    + d1.cfd.resolved.len()
                    + d1.cind.introduced.len()
                    + d1.cind.resolved.len()
                    + d2.cfd.introduced.len()
                    + d2.cfd.resolved.len()
                    + d2.cind.introduced.len()
                    + d2.cind.resolved.len();
            }
            events
        });
        // Bit-rot guard: the stream's live state must equal a fresh
        // batch sweep of the churned database.
        let batch = validator.validate_sorted(stream.db());
        assert_eq!(
            stream.current_report(),
            batch,
            "delta state diverged from batch validation"
        );
        if elapsed < delta_time {
            delta_time = elapsed;
            delta_events = events;
        }
        final_db = Some(stream.into_db());
    }
    let final_db = final_db.expect("at least one run");

    // Baseline: one full batched sweep of the churned database — what a
    // batch system pays per validation after a churn window.
    let (full_time, full_violations) = best_of(runs, || validator.validate(&final_db).len());

    let speedup = ms(full_time) / ms(delta_time).max(1e-9);
    let per_op_us = ms(delta_time) * 1000.0 / (churn as f64 * 2.0);

    let mut table = FigureTable::new(
        "stream",
        &[
            "tuples",
            "churn_ops",
            "delta_events",
            "violations",
            "delta_ms",
            "per_op_us",
            "full_validate_ms",
            "speedup",
        ],
    );
    table.row(&[
        &n,
        &(churn * 2),
        &delta_events,
        &full_violations,
        &format!("{:.2}", ms(delta_time)),
        &format!("{:.1}", per_op_us),
        &format!("{:.2}", ms(full_time)),
        &format!("{:.1}x", speedup),
    ]);
    table.finish("Streamed delta validation vs full re-validation under 1% churn");

    if smoke {
        println!("(smoke mode: BENCH_stream.json not rewritten)");
        return;
    }
    let mut json_rows = String::new();
    let _ = writeln!(
        json_rows,
        "    {{\"tuples\": {n}, \"churn_ops\": {}, \"delta_events\": {delta_events}, \
         \"violations\": {full_violations}, \"delta_ms\": {:.2}, \"per_op_us\": {:.2}, \
         \"full_validate_ms\": {:.2}, \"speedup\": {:.2}}}",
        churn * 2,
        ms(delta_time),
        per_op_us,
        ms(full_time),
        speedup,
    );
    let json = format!(
        "{{\n  \"bench\": \"stream\",\n  \"baseline\": \"Validator::validate full sweep of the churned database\",\n  \
         \"contender\": \"ValidatorStream delete_tuple/insert_tuple deltas (1% churn: half deletes, half inserts)\",\n  \
         \"runs_per_point\": {runs},\n  \"timing\": \"best of {runs}\",\n  \
         \"headline\": {{\"tuples\": {n}, \"churn\": \"1%\", \"cfds\": 200, \"lhs_sets\": 10, \"cinds\": 2, \"speedup\": {speedup:.2}}},\n  \
         \"results\": [\n{json_rows}  ]\n}}\n",
    );
    let path = format!("{}/../../BENCH_stream.json", env!("CARGO_MANIFEST_DIR"));
    match std::fs::write(&path, &json) {
        Ok(()) => println!("(json: {path})"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
    println!(
        "headline: {n} tuples, 1% churn — delta {:.2} ms vs full {:.2} ms = {speedup:.1}x",
        ms(delta_time),
        ms(full_time)
    );
}
