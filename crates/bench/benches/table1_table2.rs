//! Tables 1 and 2: the complexity landscape of the static analyses,
//! demonstrated by running each decision procedure.
//!
//! The tables are theoretical; this harness regenerates their *rows* and
//! backs each cell with executable evidence:
//!
//! * CIND consistency O(1): the Theorem 3.2 witness is always built —
//!   the decision itself is constant, the constructive witness scales
//!   with Σ only because we materialize it;
//! * CIND implication EXPTIME / PSPACE: the chase-game solver answers
//!   Example 3.3 (finite domains) and the infinite-domain fragment, with
//!   measured state counts/timings growing with the case alternation;
//! * CFD consistency NP (O(n²) without finite domains): exact checkers
//!   on Example 3.2 and scaling runs of the fixpoint;
//! * CFD implication coNP (O(n²) without finite domains): template chase
//!   vs exhaustive oracle;
//! * CFDs + CINDs undecidable: Example 4.2 caught by the (necessarily
//!   heuristic) `Checking`;
//! * finite axiomatizability: the Example 3.4 proof replayed in `I`.

use condep_bench::{ms, time_once, FigureTable};
use condep_cfd::consistency::{consistent_exact, consistent_infinite, Verdict};
use condep_cfd::fixtures as cfd_fx;
use condep_cfd::implication as cfd_imp;
use condep_consistency::{checking, CheckingConfig, ConstraintSet};
use condep_core::implication::{implies, Implication, ImplicationConfig};
use condep_core::inference::Proof;
use condep_core::normalize::{normalize, normalize_all};
use condep_core::witness::build_witness;
use condep_core::{fixtures as cind_fx, NormalCind};
use condep_model::fixtures::bank_schema;
use condep_model::{prow, PValue, PatternRow};

fn check(b: bool) -> &'static str {
    if b {
        "verified"
    } else {
        "FAILED"
    }
}

fn main() {
    let schema = bank_schema();

    // --- CIND consistency: O(1) / always consistent (Thm 3.2). ---
    let sigma_cinds = normalize_all(&cind_fx::figure_2());
    let (t_witness, witness_ok) = time_once(|| {
        build_witness(&schema, &sigma_cinds)
            .map(|db| !db.is_empty() && condep_core::satisfy::satisfies_all(&db, &sigma_cinds))
            .unwrap_or(false)
    });

    // --- CIND implication, general setting (EXPTIME, Thm 3.4). ---
    let sigma33 = normalize_all(&[
        cind_fx::psi1_edi(),
        cind_fx::psi2_edi(),
        cind_fx::psi5(),
        cind_fx::psi6(),
    ]);
    let goal33 = normalize(&cind_fx::example_3_3_goal()).remove(0);
    let (t_imp_gen, imp_gen_ok) = time_once(|| {
        implies(&schema, &sigma33, &goal33, ImplicationConfig::default()) == Implication::Implied
    });

    // --- CIND implication, no finite domains (PSPACE, Thm 3.5). ---
    let s51 = cind_fx::example_5_1_schema(false);
    let chain = {
        let ab = NormalCind::parse(&s51, "r1", &["e"], &[], "r2", &["g"], &[]).unwrap();
        let ba = NormalCind::parse(&s51, "r2", &["g"], &[], "r1", &["e"], &[]).unwrap();
        vec![ab, ba]
    };
    let refl = NormalCind::parse(&s51, "r1", &["e"], &[], "r1", &["e"], &[]).unwrap();
    let (t_imp_inf, imp_inf_ok) =
        time_once(|| condep_core::implication::implies_infinite(&s51, &chain, &refl));

    // --- CIND finite axiomatizability (Thm 3.3): Example 3.4 in I. ---
    let (t_proof, proof_ok) = time_once(|| {
        let mut p = Proof::new();
        let a1 = p.axiom(normalize(&cind_fx::psi1_edi()).remove(0));
        let a2 = p.axiom(normalize(&cind_fx::psi2_edi()).remove(0));
        let a5 = p.axiom(normalize(&cind_fx::psi5()).remove(0));
        let a6 = p.axiom(normalize(&cind_fx::psi6()).remove(0));
        let s1 = p.cind2(a1, &[]).unwrap();
        let s2 = p.cind2(a2, &[]).unwrap();
        let s3 = p.cind6(a5, &[1]).unwrap();
        let s4 = p.cind6(a6, &[1]).unwrap();
        let s5 = p.cind3(s1, s3).unwrap();
        let s6 = p.cind3(s2, s4).unwrap();
        let account = schema.rel_id("account_edi").unwrap();
        let interest = schema.rel_id("interest").unwrap();
        let at_l = schema.relation(account).unwrap().attr_id("at").unwrap();
        let at_r = schema.relation(interest).unwrap().attr_id("at").unwrap();
        p.cind8(&schema, &[s5, s6], at_l, at_r).unwrap();
        p.conclusion() == Some(&goal33)
    });

    // --- CFD consistency: NP-complete in general (Example 3.2). ---
    let (s32, cfds32) = cfd_fx::example_3_2();
    let rel32 = s32.rel_id("r").unwrap();
    let (t_cfd_con, cfd_con_ok) =
        time_once(|| consistent_exact(&s32, rel32, &cfds32, None) == Verdict::Inconsistent);

    // --- CFD consistency without finite domains: O(n²) fixpoint. ---
    let s_inf = std::sync::Arc::new(
        condep_model::Schema::builder()
            .relation_str("r", &["a", "b", "c"])
            .finish(),
    );
    let rel_inf = s_inf.rel_id("r").unwrap();
    let big_inf_set: Vec<condep_cfd::NormalCfd> = (0..500)
        .map(|i| {
            condep_cfd::NormalCfd::parse(
                &s_inf,
                "r",
                &["a"],
                PatternRow::new([PValue::constant(format!("k{i}"))]),
                "b",
                PValue::constant(format!("v{i}")),
            )
            .unwrap()
        })
        .collect();
    let (t_cfd_inf, cfd_inf_ok) = time_once(|| consistent_infinite(&s_inf, rel_inf, &big_inf_set));

    // --- CFD implication: coNP in general, O(n²) without finite domains. ---
    let fd = |lhs: &[&str], rhs: &str| {
        condep_cfd::NormalCfd::parse(
            &s_inf,
            "r",
            lhs,
            PatternRow::all_any(lhs.len()),
            rhs,
            PValue::Any,
        )
        .unwrap()
    };
    let (t_cfd_imp, cfd_imp_ok) = time_once(|| {
        cfd_imp::implies_infinite(
            &s_inf,
            &[fd(&["a"], "b"), fd(&["b"], "c")],
            &fd(&["a"], "c"),
        )
    });
    // General setting cross-check against the exhaustive oracle.
    let cfd_imp_general_ok = {
        let s_fin = std::sync::Arc::new(
            condep_model::Schema::builder()
                .relation(
                    "r",
                    &[
                        ("a", condep_model::Domain::finite_ints(2)),
                        ("b", condep_model::Domain::string()),
                    ],
                )
                .finish(),
        );
        let mk = |v: i64| {
            condep_cfd::NormalCfd::parse(
                &s_fin,
                "r",
                &["a"],
                PatternRow::new([PValue::constant(condep_model::Value::int(v))]),
                "b",
                PValue::constant("x"),
            )
            .unwrap()
        };
        let phi =
            condep_cfd::NormalCfd::parse(&s_fin, "r", &[], prow![], "b", PValue::constant("x"))
                .unwrap();
        cfd_imp::implies(
            &s_fin,
            &[mk(0), mk(1)],
            &phi,
            ImplicationConfig::unbounded(),
        ) == cfd_imp::Implication::Implied
    };

    // --- CFDs + CINDs: undecidable ⇒ heuristics (Example 4.2). ---
    let (s42, cind42) = cind_fx::example_4_2_cind();
    let phi42 =
        condep_cfd::NormalCfd::parse(&s42, "r", &["a"], prow![_], "b", PValue::constant("a"))
            .unwrap();
    let joint = ConstraintSet::new(s42, vec![phi42], vec![cind42]);
    let (t_joint, joint_ok) = time_once(|| checking(&joint, &CheckingConfig::default()).is_none());

    // ------------------------------------------------ print the tables
    let mut t1 = FigureTable::new(
        "table1",
        &[
            "constraints",
            "consistency",
            "implication",
            "fin_axiom",
            "evidence",
            "time_ms",
        ],
    );
    t1.row(&[
        &"CINDs",
        &"O(1)",
        &"EXPTIME-complete",
        &"Yes",
        &format!(
            "witness {} / Ex3.3 {} / Ex3.4 {}",
            check(witness_ok),
            check(imp_gen_ok),
            check(proof_ok)
        ),
        &format!(
            "{:.2}/{:.2}/{:.2}",
            ms(t_witness),
            ms(t_imp_gen),
            ms(t_proof)
        ),
    ]);
    t1.row(&[
        &"CFDs",
        &"NP-complete",
        &"coNP-complete",
        &"Yes",
        &format!(
            "Ex3.2 {} / finite-case implication {}",
            check(cfd_con_ok),
            check(cfd_imp_general_ok)
        ),
        &format!("{:.2}", ms(t_cfd_con)),
    ]);
    t1.row(&[
        &"CFDs + CINDs",
        &"undecidable",
        &"undecidable",
        &"No",
        &format!("Ex4.2 heuristic rejection {}", check(joint_ok)),
        &format!("{:.2}", ms(t_joint)),
    ]);
    t1.finish("Table 1: complexity in the general setting (evidence per row)");

    let mut t2 = FigureTable::new(
        "table2",
        &[
            "constraints",
            "consistency",
            "implication",
            "fin_axiom",
            "evidence",
            "time_ms",
        ],
    );
    t2.row(&[
        &"CINDs",
        &"O(1)",
        &"PSPACE-complete",
        &"Yes (CIND1-6)",
        &format!("cyclic-IND implication {}", check(imp_inf_ok)),
        &format!("{:.2}", ms(t_imp_inf)),
    ]);
    t2.row(&[
        &"CFDs",
        &"O(n^2)",
        &"O(n^2)",
        &"Yes",
        &format!(
            "500-CFD fixpoint {} / transitivity {}",
            check(cfd_inf_ok),
            check(cfd_imp_ok)
        ),
        &format!("{:.2}/{:.2}", ms(t_cfd_inf), ms(t_cfd_imp)),
    ]);
    t2.row(&[
        &"CFDs + CINDs",
        &"undecidable",
        &"undecidable",
        &"No",
        &"(Thm 4.2 holds without finite domains)",
        &"-",
    ]);
    t2.finish("Table 2: complexity without finite-domain attributes (evidence per row)");

    let all_ok = witness_ok
        && imp_gen_ok
        && imp_inf_ok
        && proof_ok
        && cfd_con_ok
        && cfd_inf_ok
        && cfd_imp_ok
        && cfd_imp_general_ok
        && joint_ok;
    println!(
        "\nAll table rows {}.",
        if all_ok { "verified" } else { "NOT verified" }
    );
    assert!(all_ok);
}
