//! Micro-bench: dependency discovery at scale.
//!
//! The acceptance workload for `condep-discover`: a 100K-tuple instance
//! generated from a hidden planted Σ of **20 CFDs** (4 variable FDs +
//! 16 constant tableau rows over value-locked column pairs) and
//! **2 CINDs** (reference inclusions) is profiled with the default
//! `DiscoveryConfig`, and the recovered Σ′ must **imply every planted
//! dependency** — verified in-run with the exact implication machinery
//! (`condep_cfd::implication` / `condep_core::implication`), so the
//! recovery guarantee cannot silently bit-rot.
//!
//! Results are recorded in `BENCH_discover.json` at the repository root
//! (skipped in `CONDEP_BENCH_SMOKE=1` mode, which CI uses to exercise
//! the path at reduced size).

use condep_bench::{ms, time_once, FigureTable};
use condep_core::implication::ImplicationConfig;
use condep_discover::{discover, DiscoveryConfig};
use condep_gen::{clean_database_with_hidden_sigma, PlantedSigmaConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt::Write as _;
use std::time::Duration;

fn main() {
    let smoke = std::env::var("CONDEP_BENCH_SMOKE").is_ok_and(|v| v == "1");
    let (tuples, runs) = if smoke { (10_000, 1) } else { (100_000, 3) };
    // 4 pairs × (1 variable FD + 4 constant rows) = 20 CFDs; 2 CINDs.
    let cfg = PlantedSigmaConfig {
        fd_pairs: 4,
        pair_cardinality: 8,
        constant_rows_per_pair: 4,
        cind_count: 2,
        tuples,
    };
    let planted = clean_database_with_hidden_sigma(&cfg, &mut StdRng::seed_from_u64(2007));
    assert_eq!(planted.cfds.len(), 20);
    assert_eq!(planted.cinds.len(), 2);
    let discovery_config = DiscoveryConfig::default();

    let mut discover_time = Duration::MAX;
    let mut best = None;
    for _ in 0..runs {
        let (elapsed, found) = time_once(|| discover(&planted.db, &discovery_config));
        if elapsed < discover_time {
            discover_time = elapsed;
            best = Some(found);
        }
    }
    let found = best.expect("at least one run");

    // Acceptance gate: Σ′ implies every planted dependency.
    let schema = planted.db.schema();
    let sigma_cfds = found.cfds_normal();
    for cfd in &planted.cfds {
        assert_eq!(
            condep_cfd::implication::implies(
                schema,
                &sigma_cfds,
                cfd,
                ImplicationConfig::unbounded()
            ),
            condep_cfd::implication::Implication::Implied,
            "planted CFD not implied: {}",
            cfd.display(schema)
        );
    }
    let sigma_cinds = found.cinds_normal();
    for cind in &planted.cinds {
        assert_eq!(
            condep_core::implication::implies(
                schema,
                &sigma_cinds,
                cind,
                ImplicationConfig::default()
            ),
            condep_core::implication::Implication::Implied,
            "planted CIND not implied: {}",
            cind.display(schema)
        );
    }
    // Everything kept at the strict default is sound on the instance.
    for d in &found.cfds {
        assert!(condep_cfd::satisfy::satisfies_normal(&planted.db, &d.cfd));
    }
    for d in &found.cinds {
        assert!(condep_core::satisfy::satisfies_normal(&planted.db, &d.cind));
    }

    let mut table = FigureTable::new(
        "discover",
        &[
            "tuples",
            "planted_cfds",
            "planted_cinds",
            "recovered_cfds",
            "recovered_cinds",
            "lattice_nodes",
            "cfd_candidates",
            "pruned_implied",
            "discover_ms",
        ],
    );
    table.row(&[
        &tuples,
        &planted.cfds.len(),
        &planted.cinds.len(),
        &found.cfds.len(),
        &found.cinds.len(),
        &found.stats.lattice_nodes,
        &found.stats.cfd_candidates,
        &found.stats.pruned_implied,
        &format!("{:.2}", ms(discover_time)),
    ]);
    table.finish("Dependency discovery over a planted-sigma instance");

    if smoke {
        println!("(smoke mode: BENCH_discover.json not rewritten)");
        return;
    }
    let mut json_rows = String::new();
    let _ = writeln!(
        json_rows,
        "    {{\"tuples\": {tuples}, \"planted_cfds\": {}, \"planted_cinds\": {}, \
         \"recovered_cfds\": {}, \"recovered_cinds\": {}, \"lattice_nodes\": {}, \
         \"cfd_candidates\": {}, \"cind_candidates\": {}, \"pruned_implied\": {}, \
         \"pruned_capped\": {}, \"implication_checks\": {}, \"discover_ms\": {:.2}, \
         \"all_planted_implied\": true}}",
        planted.cfds.len(),
        planted.cinds.len(),
        found.cfds.len(),
        found.cinds.len(),
        found.stats.lattice_nodes,
        found.stats.cfd_candidates,
        found.stats.cind_candidates,
        found.stats.pruned_implied,
        found.stats.pruned_capped,
        found.stats.implication_checks,
        ms(discover_time),
    );
    let json = format!(
        "{{\n  \"bench\": \"discover\",\n  \"workload\": \"100K-tuple instance generated from a hidden sigma of 20 CFDs (4 variable FDs + 16 constant rows) and 2 CINDs; discovery at DiscoveryConfig::default() must recover a sigma-prime implying every planted dependency (verified in-run with the exact implication checkers)\",\n  \
         \"engine\": \"condep-discover lattice-walk CFD miner over stripped partitions (SymTables + SymIndex counting-sort CSR) + unary CIND inclusion miner\",\n  \
         \"runs_per_point\": {runs},\n  \"timing\": \"best of {runs}, single-core\",\n  \
         \"headline\": {{\"tuples\": {tuples}, \"planted\": 22, \"recovered_cfds\": {}, \"recovered_cinds\": {}, \"discover_ms\": {:.2}}},\n  \
         \"results\": [\n{json_rows}  ]\n}}\n",
        found.cfds.len(),
        found.cinds.len(),
        ms(discover_time),
    );
    let path = format!("{}/../../BENCH_discover.json", env!("CARGO_MANIFEST_DIR"));
    match std::fs::write(&path, &json) {
        Ok(()) => println!("(json: {path})"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
    println!(
        "headline: {tuples} tuples profiled in {:.2} ms -> {} CFDs + {} CINDs, all 22 planted dependencies implied",
        ms(discover_time),
        found.cfds.len(),
        found.cinds.len()
    );
}
