//! Micro-bench: dependency discovery at scale.
//!
//! Two acceptance workloads for `condep-discover` over instances
//! generated from a hidden planted Σ of **20 CFDs** (4 variable FDs +
//! 16 constant tableau rows over value-locked column pairs) and
//! **2 CINDs** (reference inclusions):
//!
//! * **exact** — the full lattice walk at 100K tuples (the historical
//!   headline, and the extrapolation base for the sampled speedup);
//! * **sampled** — `DiscoveryConfig::sample` at 100K / 1M / 10M tuples:
//!   a 50K-row reservoir feeds the miners, interval estimates select
//!   the keep-set, one streaming confirmation scan makes it exact.
//!
//! Every run (exact and sampled, every scale) passes the in-run
//! **all-planted-implied gate**: the recovered Σ′ must imply every
//! planted dependency (exact implication machinery), so the recovery
//! guarantee cannot silently bit-rot. The 10M sampled run additionally
//! gates its **mining phase** at ≥10× faster than the full-lattice
//! pass extrapolated from the exact 100K run.
//!
//! Results are recorded in `BENCH_discover.json` at the repository
//! root. In `CONDEP_BENCH_SMOKE=1` mode the workload shrinks to 10K
//! tuples, the json is left untouched, and a perf guard fails the run
//! when the sampled per-row cost comes in >25% over the last recorded
//! `sampled_100k` figure.

use condep_bench::{ms, time_once, FigureTable};
use condep_core::implication::ImplicationConfig;
use condep_discover::{discover, DiscoveredSigma, DiscoveryConfig, SampleConfig};
use condep_gen::{clean_database_with_hidden_sigma, PlantedDatabase, PlantedSigmaConfig};
use condep_telemetry::MetricsSnapshot;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt::Write as _;
use std::time::Duration;

/// One benchmarked configuration's record.
struct ScaleRow {
    label: &'static str,
    tuples: usize,
    discover_ms: f64,
    sample_ms: f64,
    mine_ms: f64,
    confirm_ms: f64,
    recovered_cfds: usize,
    recovered_cinds: usize,
    sampled_rows: usize,
    epsilon: f64,
    metrics: MetricsSnapshot,
}

impl ScaleRow {
    fn per_row_us(&self) -> f64 {
        self.discover_ms * 1e3 / self.tuples.max(1) as f64
    }
}

fn planted_at(tuples: usize) -> PlantedDatabase {
    // 4 pairs × (1 variable FD + 4 constant rows) = 20 CFDs; 2 CINDs.
    let cfg = PlantedSigmaConfig {
        fd_pairs: 4,
        pair_cardinality: 8,
        constant_rows_per_pair: 4,
        cind_count: 2,
        tuples,
        ..PlantedSigmaConfig::default()
    };
    let planted = clean_database_with_hidden_sigma(&cfg, &mut StdRng::seed_from_u64(2007));
    assert_eq!(planted.cfds.len(), 20);
    assert_eq!(planted.cinds.len(), 2);
    planted
}

/// The all-planted-implied acceptance gate + keep-set soundness.
fn gate(label: &str, planted: &PlantedDatabase, found: &DiscoveredSigma) {
    let schema = planted.db.schema();
    let sigma_cfds = found.cfds_normal();
    for cfd in &planted.cfds {
        assert_eq!(
            condep_cfd::implication::implies(
                schema,
                &sigma_cfds,
                cfd,
                ImplicationConfig::unbounded()
            ),
            condep_cfd::implication::Implication::Implied,
            "{label}: planted CFD not implied: {}",
            cfd.display(schema)
        );
    }
    let sigma_cinds = found.cinds_normal();
    for cind in &planted.cinds {
        assert_eq!(
            condep_core::implication::implies(
                schema,
                &sigma_cinds,
                cind,
                ImplicationConfig::default()
            ),
            condep_core::implication::Implication::Implied,
            "{label}: planted CIND not implied: {}",
            cind.display(schema)
        );
    }
    // Everything kept at the strict default is sound on the instance
    // (for sampled runs: the confirmation pass did its job).
    for d in &found.cfds {
        assert!(
            condep_cfd::satisfy::satisfies_normal(&planted.db, &d.cfd),
            "{label}: unsound keep"
        );
    }
    for d in &found.cinds {
        assert!(
            condep_core::satisfy::satisfies_normal(&planted.db, &d.cind),
            "{label}: unsound keep"
        );
    }
}

fn bench_config(
    label: &'static str,
    planted: &PlantedDatabase,
    config: &DiscoveryConfig,
    runs: usize,
) -> ScaleRow {
    let tuples = planted
        .db
        .relation(planted.db.schema().rel_id("fact").unwrap())
        .len();
    let mut best_time = Duration::MAX;
    let mut best = None;
    for _ in 0..runs {
        let (elapsed, found) = time_once(|| discover(&planted.db, config));
        if elapsed < best_time {
            best_time = elapsed;
            best = Some(found);
        }
    }
    let found = best.expect("at least one run");
    gate(label, planted, &found);
    let sampling = found.stats.sampling.unwrap_or_default();
    ScaleRow {
        label,
        tuples,
        discover_ms: ms(best_time),
        sample_ms: found.timings.sample_ms,
        mine_ms: found.timings.mine_ms,
        confirm_ms: found.timings.confirm_ms,
        recovered_cfds: found.cfds.len(),
        recovered_cinds: found.cinds.len(),
        sampled_rows: sampling.sampled_rows,
        epsilon: sampling.epsilon,
        metrics: found.metrics(),
    }
}

fn sampled_config(budget_rows: usize) -> DiscoveryConfig {
    DiscoveryConfig::default().sample(SampleConfig {
        budget_rows,
        epsilon: 0.05,
        delta: 0.01,
        seed: 2007,
    })
}

/// String-scan of the recorded json for a row's `per_row_us` (mirrors
/// the batch bench's guard; no json dependency in the tree).
fn recorded_per_row(json: &str, config: &str) -> Option<f64> {
    let needle = format!("\"config\": \"{config}\"");
    let row = json.split('{').find(|s| s.contains(&needle))?;
    let tail = row.split("\"per_row_us\":").nth(1)?;
    tail.trim_start()
        .split([',', '}'])
        .next()?
        .trim()
        .parse()
        .ok()
}

fn main() {
    let smoke = std::env::var("CONDEP_BENCH_SMOKE").is_ok_and(|v| v == "1");
    let mut rows: Vec<ScaleRow> = Vec::new();

    if smoke {
        let planted = planted_at(10_000);
        rows.push(bench_config(
            "exact_smoke",
            &planted,
            &DiscoveryConfig::default(),
            1,
        ));
        // Budget half the instance so the reservoir genuinely
        // downsamples — the same mine-to-scan ratio as the recorded
        // 50K-of-100K run the guard compares against.
        rows.push(bench_config(
            "sampled_smoke",
            &planted,
            &sampled_config(5_000),
            1,
        ));
    } else {
        let planted_100k = planted_at(100_000);
        rows.push(bench_config(
            "exact_100k",
            &planted_100k,
            &DiscoveryConfig::default(),
            3,
        ));
        rows.push(bench_config(
            "sampled_100k",
            &planted_100k,
            &sampled_config(50_000),
            3,
        ));
        drop(planted_100k);
        let planted_1m = planted_at(1_000_000);
        rows.push(bench_config(
            "sampled_1m",
            &planted_1m,
            &sampled_config(50_000),
            2,
        ));
        drop(planted_1m);
        let planted_10m = planted_at(10_000_000);
        rows.push(bench_config(
            "sampled_10m",
            &planted_10m,
            &sampled_config(50_000),
            1,
        ));
    }

    let mut table = FigureTable::new(
        "discover",
        &[
            "config",
            "tuples",
            "sampled_rows",
            "recovered_cfds",
            "recovered_cinds",
            "sample_ms",
            "mine_ms",
            "confirm_ms",
            "discover_ms",
            "per_row_us",
        ],
    );
    for r in &rows {
        table.row(&[
            &r.label,
            &r.tuples,
            &r.sampled_rows,
            &r.recovered_cfds,
            &r.recovered_cinds,
            &format!("{:.2}", r.sample_ms),
            &format!("{:.2}", r.mine_ms),
            &format!("{:.2}", r.confirm_ms),
            &format!("{:.2}", r.discover_ms),
            &format!("{:.3}", r.per_row_us()),
        ]);
    }
    table.finish("Dependency discovery over planted-sigma instances (all scales gated: planted sigma implied)");

    // Telemetry gate (both modes): the sampled row's MetricsSnapshot
    // must serialize to valid json and carry the phase/keep keys the
    // dashboards key on.
    {
        let sampled = rows.last().expect("at least one row");
        let metrics_json = sampled.metrics.to_json();
        assert!(
            condep_telemetry::json::is_valid(&metrics_json),
            "discover MetricsSnapshot did not serialize to valid json:\n{metrics_json}"
        );
        for key in [
            "discover.kept.cfds",
            "discover.kept.cinds",
            "discover.stats.lattice_nodes",
            "discover.timings.mine_ms",
            "discover.timings.confirm_ms",
        ] {
            assert!(
                sampled.metrics.get(key).is_some(),
                "discover MetricsSnapshot is missing required key {key}"
            );
        }
    }

    if smoke {
        // Smoke-mode perf guard: the sampled path's per-row cost at the
        // 10K smoke scale is compared against the recorded 100K figure.
        // The shapes differ (the smoke instance amortizes fixed costs
        // over 10× fewer rows) and the shared box swings identical
        // binaries by ±15%, so this is an order-of-magnitude tripwire
        // (2×), not a tight regression bound — the mine-to-scan ratio
        // matches by construction, so a breach still means the sampled
        // pipeline itself got materially slower.
        let path = format!("{}/../../BENCH_discover.json", env!("CARGO_MANIFEST_DIR"));
        let smoke_row = rows.last().expect("sampled smoke row");
        if let Some(recorded) = std::fs::read_to_string(&path)
            .ok()
            .as_deref()
            .and_then(|json| recorded_per_row(json, "sampled_100k"))
        {
            let measured = smoke_row.per_row_us();
            assert!(
                measured <= recorded * 2.0,
                "smoke perf guard: sampled discovery at {measured:.3} µs/row is >2x the \
                 recorded {recorded:.3} µs/row (BENCH_discover.json)"
            );
            println!(
                "smoke perf guard: sampled discovery {measured:.3} µs/row within 2x of \
                 recorded {recorded:.3} µs/row"
            );
        }
        println!("(smoke mode: BENCH_discover.json not rewritten)");
        return;
    }

    // Acceptance gate: at 10M the sampled run's mining phase beats the
    // extrapolated full-lattice pass by ≥10×.
    let exact = &rows[0];
    let at_10m = rows.iter().find(|r| r.label == "sampled_10m").unwrap();
    let extrapolated_ms = exact.discover_ms * (at_10m.tuples as f64 / exact.tuples as f64);
    let mining_speedup = extrapolated_ms / at_10m.mine_ms.max(1e-9);
    assert!(
        mining_speedup >= 10.0,
        "sampled mining at 10M must be >=10x the extrapolated full lattice: \
         {:.2} ms vs {:.2} ms extrapolated ({mining_speedup:.1}x)",
        at_10m.mine_ms,
        extrapolated_ms
    );

    let mut json_rows = String::new();
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            json_rows,
            "    {{\"config\": \"{}\", \"tuples\": {}, \"sampled_rows\": {}, \
             \"recovered_cfds\": {}, \"recovered_cinds\": {}, \"sample_ms\": {:.2}, \
             \"mine_ms\": {:.2}, \"confirm_ms\": {:.2}, \"discover_ms\": {:.2}, \
             \"per_row_us\": {:.3}, \"epsilon\": {:.4}, \"all_planted_implied\": true}}{}",
            r.label,
            r.tuples,
            r.sampled_rows,
            r.recovered_cfds,
            r.recovered_cinds,
            r.sample_ms,
            r.mine_ms,
            r.confirm_ms,
            r.discover_ms,
            r.per_row_us(),
            r.epsilon,
            if i + 1 < rows.len() { "," } else { "" },
        );
    }
    let json = format!(
        "{{\n  \"bench\": \"discover\",\n  \"workload\": \"instances generated from a hidden sigma of 20 CFDs (4 variable FDs + 16 constant rows) and 2 CINDs; exact discovery at 100K plus reservoir-sampled discovery (50K budget, epsilon 0.05, delta 0.01) at 100K/1M/10M; every run must recover a sigma-prime implying every planted dependency (verified in-run with the exact implication checkers)\",\n  \
         \"engine\": \"condep-discover lattice-walk CFD miner over stripped partitions (SymTables + SymIndex counting-sort CSR) + unary CIND inclusion miner; sampled path: seeded per-relation reservoir -> Hoeffding interval estimates -> streaming full-scan confirmation\",\n  \
         \"timing\": \"best of 3 (100K) / 2 (1M) / 1 (10M), single-core\",\n  \
         \"headline\": {{\"tuples\": {}, \"mode\": \"sampled\", \"mine_ms\": {:.2}, \"confirm_ms\": {:.2}, \"discover_ms\": {:.2}, \"extrapolated_full_lattice_ms\": {:.2}, \"mining_speedup_vs_extrapolated\": {:.1}, \"all_planted_implied\": true}},\n  \
         \"metrics\": {},\n  \
         \"results\": [\n{json_rows}  ]\n}}\n",
        at_10m.tuples,
        at_10m.mine_ms,
        at_10m.confirm_ms,
        at_10m.discover_ms,
        extrapolated_ms,
        mining_speedup,
        at_10m.metrics.to_json(),
    );
    let path = format!("{}/../../BENCH_discover.json", env!("CARGO_MANIFEST_DIR"));
    match std::fs::write(&path, &json) {
        Ok(()) => println!("(json: {path})"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
    println!(
        "headline: 10M tuples profiled in {:.2} ms ({:.2} ms mining, {mining_speedup:.1}x the \
         extrapolated full lattice) -> {} CFDs + {} CINDs, all 22 planted dependencies implied at \
         every scale",
        at_10m.discover_ms, at_10m.mine_ms, at_10m.recovered_cfds, at_10m.recovered_cinds,
    );
}
