//! Figure 10(a): performance of `CFD_Checking` — Chase vs SAT.
//!
//! Paper setting: 20 relations, `F = 25%`, x-axis = number of CFDs per
//! relation (up to 1200), y-axis = runtime in seconds. Expected shape:
//! both grow with the number of CFDs; **Chase significantly outperforms
//! SAT**, and SAT's curve bends up faster (the exactly-one encodings over
//! whole finite domains dominate).

use condep_bench::{ms, time_once, FigureTable, Scale};
use condep_consistency::{CfdChecker, ChaseCfdChecker, SatCfdChecker};
use condep_gen::{generate_sigma, random_schema, SchemaGenConfig, SigmaGenConfig};
use condep_model::RelId;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let scale = Scale::from_env();
    let relations = 20usize;
    let per_relation: Vec<usize> = match scale {
        Scale::Quick => vec![25, 50, 100, 200, 400],
        Scale::Full => vec![100, 200, 400, 600, 800, 1000, 1200],
    };
    let runs = scale.pick(3, 6); // paper: "run 6 times and the average"
    let k_cfd = 2_000_000u64; // "we fixed KCFD = 2000K"

    let schema_cfg = SchemaGenConfig {
        relations,
        attrs_min: 5,
        attrs_max: 15,
        finite_ratio: 0.25,
        finite_dom_min: 2,
        finite_dom_max: 100,
    };

    let mut table = FigureTable::new(
        "fig10a",
        &["cfds_per_relation", "chase_ms", "sat_ms", "agree_%"],
    );
    for &n in &per_relation {
        let mut chase_total = 0.0;
        let mut sat_total = 0.0;
        let mut agree = 0usize;
        let mut checks = 0usize;
        for run in 0..runs {
            let seed = 10_000 + run as u64;
            let schema = random_schema(&schema_cfg, &mut StdRng::seed_from_u64(seed));
            let (cfds, _, _) = generate_sigma(
                &schema,
                &SigmaGenConfig {
                    cardinality: n * relations,
                    cfd_fraction: 1.0,
                    consistent: true,
                    ..SigmaGenConfig::default()
                },
                &mut StdRng::seed_from_u64(seed + 1),
            );
            // Chase-based CFD_Checking over every relation.
            let mut chase = ChaseCfdChecker::new(k_cfd, StdRng::seed_from_u64(seed + 2));
            let (chase_time, chase_verdicts) = time_once(|| {
                (0..relations as u32)
                    .map(|r| {
                        let rel = RelId(r);
                        let on_rel: Vec<_> =
                            cfds.iter().filter(|c| c.rel() == rel).cloned().collect();
                        chase.check(&schema, rel, &on_rel).is_some()
                    })
                    .collect::<Vec<bool>>()
            });
            // SAT-based CFD_Checking over every relation.
            let mut sat = SatCfdChecker;
            let (sat_time, sat_verdicts) = time_once(|| {
                (0..relations as u32)
                    .map(|r| {
                        let rel = RelId(r);
                        let on_rel: Vec<_> =
                            cfds.iter().filter(|c| c.rel() == rel).cloned().collect();
                        sat.check(&schema, rel, &on_rel).is_some()
                    })
                    .collect::<Vec<bool>>()
            });
            chase_total += ms(chase_time);
            sat_total += ms(sat_time);
            for (a, b) in chase_verdicts.iter().zip(&sat_verdicts) {
                checks += 1;
                if a == b {
                    agree += 1;
                }
            }
        }
        let runs_f = runs as f64;
        table.row(&[
            &n,
            &format!("{:.2}", chase_total / runs_f),
            &format!("{:.2}", sat_total / runs_f),
            &format!("{:.1}", condep_bench::pct(agree, checks)),
        ]);
    }
    table.finish("Figure 10(a): CFD_Checking runtime, Chase vs SAT (20 relations, F = 25%)");
    println!(
        "\nExpected shape (paper): Chase significantly outperforms SAT and scales\n\
         to large CFD counts; the two methods agree on (nearly) all verdicts."
    );
}
