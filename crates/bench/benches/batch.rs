//! Micro-bench: batched `apply_deltas` vs the mutation-at-a-time path.
//!
//! The long-lived-stream workload: the `BENCH_stream.json` instance
//! (100K tuples, 200 CFDs over 10 LHS sets, 2 CINDs) under 1% churn,
//! applied five ways — the per-mutation `delete_tuple`/`insert_tuple`
//! loop, `apply_deltas` windows of 1, 32 and 1024 mutations, and the
//! 1024-window plan against a 2×-redundant suite compiled through the
//! exact Σ cover (`cover`). The batched path symbolizes each window
//! through one interner pass, translates keys per `(relation, LHS set)`
//! group from pre-built rows and probes each touched key group once, so
//! per-mutation cost falls as the window grows.
//!
//! Three gates are asserted **in-run** (CI smoke mode included):
//!
//! * after every configuration, the stream's materialized report equals
//!   a fresh batch sweep of the churned database (the batched path
//!   cannot silently drift from the sequential semantics) — for the
//!   `cover` configuration the sweep runs through an **uncovered**
//!   compile of the same redundant Σ, pinning cover equivalence;
//! * a churn-then-compact loop over ever-fresh keys keeps the interner's
//!   retained string count invariant across rounds — bounded by the live
//!   distinct values, not by the keys ever seen (the dead-strings leak
//!   stays closed);
//! * in smoke mode, a perf guard fails the run when batch-1024 comes in
//!   >25% over the last recorded full run's per-op cost.
//!
//! Results are recorded in `BENCH_batch.json` at the repository root
//! (skipped in `CONDEP_BENCH_SMOKE=1` mode, which CI uses to exercise
//! the path with 1 iteration at reduced size).

use condep_bench::{ms, time_once, xorshift, FigureTable};
use condep_cfd::NormalCfd;
use condep_core::NormalCind;
use condep_model::{tuple, Database, Domain, PValue, PatternRow, Schema, Tuple};
use condep_telemetry::{Export, MetricsSnapshot};
use condep_validate::{Mutation, Validator, ValidatorStream};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Duration;

fn schema() -> Arc<Schema> {
    Arc::new(
        Schema::builder()
            .relation(
                "r",
                &[
                    ("a0", Domain::string()),
                    ("a1", Domain::string()),
                    ("a2", Domain::string()),
                    ("a3", Domain::string()),
                    ("a4", Domain::string()),
                    ("a5", Domain::string()),
                    ("a6", Domain::string()),
                    ("a7", Domain::string()),
                ],
            )
            .relation("partner", &[("p", Domain::string())])
            .finish(),
    )
}

/// One pseudo-random `r` tuple honoring the embedded FDs (`a1 → a2`,
/// `a3 → a4`, `a5 → a6`), with ~0.1% corrupted `a2` — identical to the
/// `stream` bench's generator so the two benches stay comparable.
fn random_tuple(i: usize, state: &mut u64) -> Tuple {
    let h1 = xorshift(state) % 64;
    let h2 = xorshift(state) % 512;
    let h3 = xorshift(state) % 4096;
    let w = xorshift(state) % 8;
    let a2 = if i % 1024 == 1023 {
        "CORRUPT".to_string()
    } else {
        format!("c{h1}")
    };
    tuple![
        format!("id{i}").as_str(),
        format!("b{h1}").as_str(),
        a2.as_str(),
        format!("d{h2}").as_str(),
        format!("e{h2}").as_str(),
        format!("f{h3}").as_str(),
        format!("g{h3}").as_str(),
        format!("w{w}").as_str()
    ]
}

/// The validator bench's 10-LHS-set shape: 200 CFDs sharing 10 distinct
/// LHS attribute lists.
fn sigma_cfds(schema: &Arc<Schema>) -> Vec<NormalCfd> {
    let lhs_sets: Vec<Vec<&str>> = vec![
        vec!["a1"],
        vec!["a3"],
        vec!["a5"],
        vec!["a1", "a3"],
        vec!["a1", "a5"],
        vec!["a3", "a5"],
        vec!["a1", "a3", "a5"],
        vec!["a0"],
        vec!["a0", "a7"],
        vec!["a7", "a1"],
    ];
    let rhs_for = |lhs: &[&str]| {
        if lhs.contains(&"a0") || lhs.contains(&"a1") {
            "a2"
        } else if lhs.contains(&"a3") {
            "a4"
        } else {
            "a6"
        }
    };
    let mut cfds = Vec::with_capacity(200);
    let mut j = 0usize;
    while cfds.len() < 200 {
        for lhs in &lhs_sets {
            if cfds.len() >= 200 {
                break;
            }
            let rhs = rhs_for(lhs);
            let member = j % 16;
            let (lhs_pat, rhs_pat) = match member {
                0 => (PatternRow::all_any(lhs.len()), PValue::Any),
                m if m >= 12 => {
                    let cells: Vec<PValue> = lhs
                        .iter()
                        .map(|a| match *a {
                            "a1" => PValue::constant(format!("b{m}")),
                            _ => PValue::Any,
                        })
                        .collect();
                    let rhs_c = if rhs == "a2" && lhs.contains(&"a1") {
                        PValue::constant(format!("c{m}"))
                    } else {
                        PValue::Any
                    };
                    (PatternRow::new(cells), rhs_c)
                }
                m => {
                    let cells: Vec<PValue> = lhs
                        .iter()
                        .enumerate()
                        .map(|(i, a)| {
                            if i == 0 {
                                match *a {
                                    "a1" => PValue::constant(format!("b{m}")),
                                    "a3" => PValue::constant(format!("d{m}")),
                                    "a5" => PValue::constant(format!("f{m}")),
                                    "a7" => PValue::constant(format!("w{}", m % 8)),
                                    _ => PValue::Any,
                                }
                            } else {
                                PValue::Any
                            }
                        })
                        .collect();
                    (PatternRow::new(cells), PValue::Any)
                }
            };
            cfds.push(NormalCfd::parse(schema, "r", lhs, lhs_pat, rhs, rhs_pat).unwrap());
            j += 1;
        }
    }
    cfds
}

/// `r[a1] ⊆ partner[p]` and `partner[p] ⊆ r[a1]`: the target and source
/// delta tiers both stay live under churn.
fn sigma_cinds(schema: &Arc<Schema>) -> Vec<NormalCind> {
    vec![
        NormalCind::parse(schema, "r", &["a1"], &[], "partner", &["p"], &[]).unwrap(),
        NormalCind::parse(schema, "partner", &["p"], &[], "r", &["a1"], &[]).unwrap(),
    ]
}

/// A mined-Σ-style redundant suite: every dependency stated twice (the
/// shape a discovery pass emits before dedup). The exact Σ cover
/// collapses the duplicates at compile time, so the covered hot path
/// should cost what the non-redundant suite costs — that is what the
/// `cover` configuration measures.
fn sigma_redundant(schema: &Arc<Schema>) -> (Vec<NormalCfd>, Vec<NormalCind>) {
    let cfds = sigma_cfds(schema)
        .into_iter()
        .flat_map(|c| [c.clone(), c])
        .collect();
    let cinds = sigma_cinds(schema)
        .into_iter()
        .flat_map(|c| [c.clone(), c])
        .collect();
    (cfds, cinds)
}

/// The `per_op_us` recorded for `config` in a previously written
/// `BENCH_batch.json` — a minimal string scan so the guard needs no
/// JSON dependency.
fn recorded_per_op(json: &str, config: &str) -> Option<f64> {
    let needle = format!("\"config\": \"{config}\"");
    let row = json.split('{').find(|s| s.contains(&needle))?;
    let tail = row.split("\"per_op_us\":").nth(1)?;
    tail.trim_start()
        .split([',', '}'])
        .next()?
        .trim()
        .parse()
        .ok()
}

fn build_db(schema: &Arc<Schema>, n: usize) -> Database {
    let mut db = Database::empty(schema.clone());
    let mut state = 0x243f_6a88_85a3_08d3u64;
    for i in 0..n {
        db.insert_into("r", random_tuple(i, &mut state)).unwrap();
    }
    for h in 0..64u64 {
        db.insert_into("partner", tuple![format!("b{h}").as_str()])
            .unwrap();
    }
    db
}

/// The single-mutation per-op cost `BENCH_stream.json` recorded **before
/// this hardening pass** (PR 2's delta engine) — the "~30 µs/mutation"
/// the batch path was built to amortize. The same-binary `single` row
/// below is faster than this because the hardening also upgraded the
/// shared index machinery (O(1) `min_pos`/`remove_key`/`replace_pos`,
/// value-guarded relabels); both ratios are recorded.
const PRE_HARDENING_SINGLE_US: f64 = 29.33;

fn main() {
    let smoke = std::env::var("CONDEP_BENCH_SMOKE").is_ok_and(|v| v == "1");
    let (n, runs) = if smoke { (10_000, 1) } else { (100_000, 5) };
    let churn = n / 100; // 1%: `churn` deletes + `churn` inserts.
    let schema = schema();
    let r = schema.rel_id("r").unwrap();
    let cfds = sigma_cfds(&schema);
    let cinds = sigma_cinds(&schema);
    let validator = Validator::new(cfds, cinds);

    let db = build_db(&schema, n);
    let mut state = 0x9e37_79b9_7f4a_7c15u64;
    let deletions: Vec<Tuple> = (0..churn)
        .map(|k| {
            db.relation(r)
                .get((k * 97 + 13) % db.relation(r).len())
                .unwrap()
                .clone()
        })
        .collect();
    let insertions: Vec<Tuple> = (0..churn)
        .map(|k| random_tuple(n + k, &mut state))
        .collect();
    // The same interleaved delete/insert plan, once as explicit calls
    // (the single-mutation baseline) and once as value-level mutations
    // for the batched windows.
    let muts: Vec<Mutation> = deletions
        .iter()
        .zip(&insertions)
        .flat_map(|(del, ins)| {
            [
                Mutation::Delete {
                    rel: r,
                    tuple: del.clone(),
                },
                Mutation::Insert {
                    rel: r,
                    tuple: ins.clone(),
                },
            ]
        })
        .collect();

    // batch = 0 encodes the single-mutation baseline.
    let configs: [(&str, usize); 4] = [
        ("single", 0),
        ("batch_1", 1),
        ("batch_32", 32),
        ("batch_1024", 1024),
    ];
    let mut times: Vec<Duration> = Vec::new();
    // The batch-1024 stream's own telemetry (from its last run) rides
    // along in the emitted JSON as the `metrics` section.
    let mut metrics: Option<MetricsSnapshot> = None;
    for (label, batch) in configs {
        let mut best = Duration::MAX;
        for _ in 0..runs {
            // Stream construction (one batch sweep) is the monitor's
            // amortized setup cost; only the churn window is timed.
            let (mut stream, _initial) =
                ValidatorStream::new_validated(validator.clone(), db.clone());
            let (elapsed, ()) = time_once(|| {
                if batch == 0 {
                    for (del, ins) in deletions.iter().zip(&insertions) {
                        stream.delete_tuple(r, del).expect("resident tuple");
                        stream.insert_tuple(r, ins.clone()).expect("well-typed");
                    }
                } else {
                    for window in muts.chunks(batch) {
                        stream.apply_deltas(window).expect("well-typed");
                    }
                }
            });
            // In-run gate: the live state equals a fresh batch sweep of
            // the churned database, whichever path produced it.
            let swept = validator.validate_sorted(stream.db());
            assert_eq!(
                stream.current_report(),
                swept,
                "{label}: delta state diverged from batch validation"
            );
            best = best.min(elapsed);
            if label == "batch_1024" {
                metrics = Some(stream.telemetry().snapshot());
            }
        }
        times.push(best);
    }
    // Σ-cover configuration: the batch-1024 plan against the redundant
    // (every-dependency-twice) suite compiled through the exact cover.
    // In-run gate: the covered compile's live state must equal a batch
    // sweep by an *uncovered* compile of the same redundant Σ — the
    // cover is a compile-time optimization, never a semantic change.
    let (red_cfds, red_cinds) = sigma_redundant(&schema);
    let covered = Validator::new(red_cfds.clone(), red_cinds.clone());
    let uncovered = Validator::new_uncovered(red_cfds, red_cinds);
    assert!(
        covered.compiled_cfd_members() < uncovered.compiled_cfd_members(),
        "redundant suite must actually shrink under the cover"
    );
    let mut cover_best = Duration::MAX;
    for _ in 0..runs {
        let (mut stream, _initial) = ValidatorStream::new_validated(covered.clone(), db.clone());
        let (elapsed, ()) = time_once(|| {
            for window in muts.chunks(1024) {
                stream.apply_deltas(window).expect("well-typed");
            }
        });
        assert_eq!(
            stream.current_report(),
            uncovered.validate_sorted(stream.db()),
            "cover: covered compile diverged from the uncovered compile"
        );
        cover_best = cover_best.min(elapsed);
    }

    let per_op_us = |d: Duration| ms(d) * 1000.0 / (churn as f64 * 2.0);
    let single_us = per_op_us(times[0]);

    // In-run gate: churn-then-compact keeps the interner bounded by the
    // live distinct values — retention must be invariant across rounds
    // of ever-fresh keys.
    let (mut stream, _) = ValidatorStream::new_validated(validator.clone(), db.clone());
    let rounds = 5usize;
    let ops_per_round = if smoke { 128 } else { 512 };
    let mut fresh_serial = 2 * n;
    let mut first_stats = None;
    let mut retained: Vec<usize> = Vec::new();
    for round in 0..rounds {
        let window: Vec<Mutation> = (0..ops_per_round)
            .flat_map(|_| {
                fresh_serial += 1;
                let t = random_tuple(fresh_serial, &mut state);
                [
                    Mutation::Insert {
                        rel: r,
                        tuple: t.clone(),
                    },
                    Mutation::Delete { rel: r, tuple: t },
                ]
            })
            .collect();
        stream.apply_deltas(&window).expect("well-typed");
        let stats = stream.compact();
        assert!(
            stats.interned_strings_dropped() > 0,
            "round {round}: fresh-key churn must leave droppable strings: {stats:?}"
        );
        retained.push(stats.interned_strings_after);
        first_stats.get_or_insert(stats);
    }
    assert!(
        retained.iter().all(|&v| v == retained[0]),
        "interner retention must be bounded by live values, not keys ever seen: {retained:?}"
    );
    let compact_stats = first_stats.expect("at least one round ran");
    assert_eq!(
        stream.current_report(),
        validator.validate_sorted(stream.db()),
        "compaction rounds disturbed the live state"
    );

    // All rows, the `cover` configuration last (batch-1024 plan, 2×
    // redundant Σ compiled through the exact cover).
    let rows: Vec<(&str, usize, Duration)> = configs
        .iter()
        .zip(&times)
        .map(|((label, batch), time)| (*label, *batch, *time))
        .chain([("cover", 1024usize, cover_best)])
        .collect();

    let mut table = FigureTable::new(
        "batch",
        &[
            "config",
            "tuples",
            "churn_ops",
            "ms",
            "per_op_us",
            "speedup_vs_single",
        ],
    );
    for (label, _, time) in &rows {
        table.row(&[
            label,
            &n,
            &(churn * 2),
            &format!("{:.2}", ms(*time)),
            &format!("{:.1}", per_op_us(*time)),
            &format!("{:.2}x", single_us / per_op_us(*time)),
        ]);
    }
    table.finish("Batched apply_deltas vs per-mutation deltas under 1% churn");
    println!(
        "compact gate: {} -> {} interned strings ({} bytes reclaimed), retention churn-invariant \
         over {rounds} rounds",
        compact_stats.interned_strings_before,
        compact_stats.interned_strings_after,
        compact_stats.interned_bytes_reclaimed(),
    );

    // The `metrics` JSON section: the batch-1024 stream's telemetry.
    // Gated in smoke mode (CI) — it must parse and carry the keys the
    // dashboards read.
    let metrics = metrics.expect("batch_1024 configuration ran");
    let metrics_json = metrics.to_json();
    assert!(
        condep_telemetry::json::is_valid(&metrics_json),
        "metrics section must be valid JSON: {metrics_json}"
    );
    for key in [
        "stream.materialize_us",
        "stream.apply.window_us",
        "stream.apply.windows",
        "stream.mutations.inserts",
        "stream.mutations.deletes",
        "stream.probes.hash",
        "stream.probes.slot",
    ] {
        assert!(metrics.get(key).is_some(), "metrics snapshot missing {key}");
    }
    println!("metrics gate: batch-1024 MetricsSnapshot renders valid JSON with required keys");

    if smoke {
        // Smoke-mode perf guard: a gross batch-1024 regression against
        // the last recorded full run fails CI. The smoke instance is 10×
        // smaller than the recorded one, so an honest smoke run comes in
        // at or under the recorded per-op cost; >25% over it means the
        // hot path got materially slower, not that the machine wobbled.
        let path = format!("{}/../../BENCH_batch.json", env!("CARGO_MANIFEST_DIR"));
        if let Some(recorded) = std::fs::read_to_string(&path)
            .ok()
            .as_deref()
            .and_then(|json| recorded_per_op(json, "batch_1024"))
        {
            let measured = per_op_us(times[3]);
            assert!(
                measured <= recorded * 1.25,
                "smoke perf guard: batch-1024 at {measured:.2} µs/op is >25% over the recorded \
                 {recorded:.2} µs/op (BENCH_batch.json)"
            );
            println!(
                "smoke perf guard: batch-1024 {measured:.2} µs/op within 25% of recorded \
                 {recorded:.2} µs/op"
            );
        }
        println!("(smoke mode: BENCH_batch.json not rewritten)");
        return;
    }
    let mut json_rows = String::new();
    for (i, (label, batch, time)) in rows.iter().enumerate() {
        let _ = writeln!(
            json_rows,
            "    {{\"config\": \"{label}\", \"batch\": {batch}, \"ms\": {:.2}, \
             \"per_op_us\": {:.2}, \"speedup_vs_single\": {:.2}, \"speedup_vs_pre_hardening\": {:.2}}}{}",
            ms(*time),
            per_op_us(*time),
            single_us / per_op_us(*time),
            PRE_HARDENING_SINGLE_US / per_op_us(*time),
            if i + 1 < rows.len() { "," } else { "" },
        );
    }
    let vs_single = single_us / per_op_us(times[3]);
    let vs_pre = PRE_HARDENING_SINGLE_US / per_op_us(times[3]);
    // The compaction section through the shared `Export` trait instead
    // of hand-rolled field formatting.
    let mut compaction = MetricsSnapshot::default();
    compact_stats.export("", &mut compaction);
    compaction.counter("rounds", rounds as u64);
    compaction.text("retention", "churn-invariant");
    let compaction_json = compaction.to_json();
    let json = format!(
        "{{\n  \"bench\": \"batch\",\n  \"baseline\": \"per-mutation delete_tuple/insert_tuple deltas (same binary)\",\n  \
         \"pre_hardening_baseline\": \"BENCH_stream.json per-mutation cost before this hardening pass: {PRE_HARDENING_SINGLE_US} us/op\",\n  \
         \"contender\": \"ValidatorStream::apply_deltas windows of 1/32/1024 mutations (same 1% churn plan)\",\n  \
         \"runs_per_point\": {runs},\n  \"timing\": \"best of {runs}\",\n  \
         \"headline\": {{\"tuples\": {n}, \"churn\": \"1%\", \"cfds\": 200, \"lhs_sets\": 10, \"cinds\": 2, \
         \"batch_1024_vs_pre_hardening\": {vs_pre:.2}, \"batch_1024_vs_same_binary_single\": {vs_single:.2}}},\n  \
         \"note\": \"the >=2x per-mutation win over the ~30 us/mutation pre-hardening path comes from batching \
         (one-pass symbolization, grouped key translation, one probe per touched key group) COMBINED with the \
         shared index upgrades this PR ships (O(1) min_pos/remove_key/replace_pos, value-guarded relabels); \
         the same-binary single path inherits the shared upgrades, so its ratio is smaller — the residual \
         per-mutation cost is memory-bound index/live-set maintenance identical in both paths; the cover row \
         runs the batch-1024 plan against a 2x-redundant (every-dependency-twice) suite compiled through the \
         exact Sigma cover, with an in-run gate that its report equals an uncovered compile's batch sweep\",\n  \
         \"compaction\": {compaction_json},\n  \
         \"metrics\": {metrics_json},\n  \
         \"results\": [\n{json_rows}  ]\n}}\n",
    );
    let path = format!("{}/../../BENCH_batch.json", env!("CARGO_MANIFEST_DIR"));
    match std::fs::write(&path, &json) {
        Ok(()) => println!("(json: {path})"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
    println!(
        "headline: {n} tuples, 1% churn — batch-1024 {:.1} µs/op vs same-binary single {single_us:.1} µs/op \
         ({vs_single:.1}x) and vs the pre-hardening {PRE_HARDENING_SINGLE_US} µs/op ({vs_pre:.1}x)",
        per_op_us(times[3]),
    );
}
