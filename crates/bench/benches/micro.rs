//! Criterion micro-benchmarks for the core operations: satisfaction
//! checking, violation detection, normalization, chasing, SAT solving,
//! and joins — the building blocks every figure rests on.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use condep_cfd::fixtures as cfd_fx;
use condep_chase::ops::seed_tuple;
use condep_chase::{chase, ChaseConfig, TemplateDb};
use condep_core::fixtures as cind_fx;
use condep_core::normalize::{normalize, normalize_all};
use condep_gen::{
    dirty_database, generate_sigma, random_schema, DirtyDataConfig, SchemaGenConfig, SigmaGenConfig,
};
use condep_model::fixtures::bank_database;
use condep_sat::{Cnf, Solver, Var};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_satisfaction(c: &mut Criterion) {
    let db = bank_database();
    let psi6 = normalize(&cind_fx::psi6());
    c.bench_function("cind_satisfies_normal_bank", |b| {
        b.iter(|| {
            black_box(condep_core::satisfy::satisfies_normal(
                black_box(&db),
                black_box(&psi6[0]),
            ))
        })
    });
    let phi3 = condep_cfd::normalize::normalize(&cfd_fx::phi3());
    c.bench_function("cfd_satisfies_normal_bank", |b| {
        b.iter(|| {
            black_box(condep_cfd::satisfy::satisfies_normal(
                black_box(&db),
                black_box(&phi3[2]),
            ))
        })
    });
}

fn bench_violation_detection_at_scale(c: &mut Criterion) {
    let schema = random_schema(
        &SchemaGenConfig {
            relations: 5,
            attrs_min: 5,
            attrs_max: 8,
            finite_ratio: 0.2,
            finite_dom_min: 2,
            finite_dom_max: 10,
        },
        &mut StdRng::seed_from_u64(1),
    );
    let (cfds, cinds, witness) = generate_sigma(
        &schema,
        &SigmaGenConfig {
            cardinality: 30,
            consistent: true,
            ..SigmaGenConfig::default()
        },
        &mut StdRng::seed_from_u64(2),
    );
    let dirty = dirty_database(
        &schema,
        &cfds,
        &cinds,
        &witness.unwrap(),
        &DirtyDataConfig {
            tuples_per_relation: 1_000,
            violations_per_relation: 10,
        },
        &mut StdRng::seed_from_u64(3),
    );
    c.bench_function("cind_find_violations_1k_tuples", |b| {
        b.iter(|| {
            let mut n = 0;
            for cind in &cinds {
                n += condep_core::find_violations(black_box(&dirty.db), cind).len();
            }
            black_box(n)
        })
    });
}

fn bench_normalization(c: &mut Criterion) {
    let sigma = cind_fx::figure_2();
    c.bench_function("normalize_figure_2", |b| {
        b.iter(|| black_box(normalize_all(black_box(&sigma))))
    });
}

fn bench_chase(c: &mut Criterion) {
    let schema = cind_fx::example_5_1_schema(true);
    let cinds = cind_fx::example_5_1_cinds(&schema);
    let cfds = vec![condep_cfd::NormalCfd::parse(
        &schema,
        "r2",
        &["h"],
        condep_model::prow![_],
        "g",
        condep_model::PValue::constant("c"),
    )
    .unwrap()];
    c.bench_function("chase_example_5_1", |b| {
        b.iter_batched(
            || {
                let mut db = TemplateDb::empty(schema.clone());
                seed_tuple(&mut db, schema.rel_id("r1").unwrap());
                (db, StdRng::seed_from_u64(7))
            },
            |(db, mut rng)| black_box(chase(db, &cfds, &cinds, &ChaseConfig::default(), &mut rng)),
            BatchSize::SmallInput,
        )
    });
}

fn bench_sat(c: &mut Criterion) {
    // Pigeonhole 7→6: a solid UNSAT workout.
    let mut cnf = Cnf::new();
    let p: Vec<Vec<condep_sat::Lit>> = (0..7)
        .map(|_| cnf.fresh_vars(6).into_iter().map(Var::pos).collect())
        .collect();
    for row in &p {
        cnf.add_at_least_one(row);
    }
    #[allow(clippy::needless_range_loop)]
    for j in 0..6 {
        for i1 in 0..7 {
            for i2 in (i1 + 1)..7 {
                cnf.add_clause([!p[i1][j], !p[i2][j]]);
            }
        }
    }
    c.bench_function("sat_pigeonhole_7_6", |b| {
        b.iter(|| black_box(Solver::new(black_box(&cnf)).solve()))
    });
}

criterion_group!(
    benches,
    bench_satisfaction,
    bench_violation_detection_at_scale,
    bench_normalization,
    bench_chase,
    bench_sat
);
criterion_main!(benches);
