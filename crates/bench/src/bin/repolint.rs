//! Repo-level lint pass for the telemetry conventions CI enforces next
//! to `fmt` and `clippy`:
//!
//! 1. **Key naming** — every string literal passed to `SpanKey` /
//!    `CounterKey` construction outside `crates/telemetry` must be dot-lowercase
//!    (`layer.what` segments of `[a-z0-9_]`) and its first segment must
//!    be documented as a `` `<prefix>.*` `` row in the metric-naming
//!    table of `crates/telemetry/README.md`.
//! 2. **Feature twins** — any file using `#[cfg(feature = "telemetry")]`
//!    must either gate the whole file (`#![cfg(feature = "telemetry")]`)
//!    or carry a `#[cfg(not(feature = "telemetry"))]` no-op twin, so a
//!    `--no-default-features` build never loses an item silently.
//!
//! Run from anywhere in the workspace: `cargo run -p condep-bench --bin
//! repolint`. Exits 1 with one line per finding.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn repo_root() -> PathBuf {
    PathBuf::from(format!("{}/../..", env!("CARGO_MANIFEST_DIR")))
}

/// Directories the walk never descends into.
const SKIP_DIRS: &[&str] = &["target", ".git", "shims", "node_modules"];

fn rust_sources(root: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(root) else {
        return;
    };
    let mut entries: Vec<_> = entries.flatten().map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if !SKIP_DIRS.contains(&name) {
                rust_sources(&path, out);
            }
        } else if path.extension().and_then(|e| e.to_str()) == Some("rs") {
            out.push(path);
        }
    }
}

/// Is `name` a dotted lowercase metric path (`layer.what[_us]`)?
fn dot_lowercase(name: &str) -> bool {
    let segments: Vec<&str> = name.split('.').collect();
    segments.len() >= 2
        && segments.iter().all(|s| {
            !s.is_empty()
                && s.chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
        })
}

/// Every `` `<prefix>.*` `` the telemetry README's naming table blesses.
fn documented_prefixes(readme: &str) -> Vec<String> {
    let mut prefixes = Vec::new();
    for line in readme.lines() {
        let mut rest = line;
        while let Some(start) = rest.find('`') {
            let tail = &rest[start + 1..];
            let Some(end) = tail.find('`') else { break };
            let span = &tail[..end];
            if let Some(prefix) = span.strip_suffix(".*") {
                if dot_lowercase(&format!("{prefix}.x")) {
                    prefixes.push(prefix.to_string());
                }
            }
            rest = &tail[end + 1..];
        }
    }
    prefixes
}

/// Extracts the string-literal arguments of `<kind>::new("…")` calls.
fn key_literals<'a>(source: &'a str, kind: &str) -> Vec<&'a str> {
    let needle = format!("{kind}::new(\"");
    let mut found = Vec::new();
    let mut rest = source;
    while let Some(at) = rest.find(&needle) {
        let tail = &rest[at + needle.len()..];
        if let Some(end) = tail.find('"') {
            found.push(&tail[..end]);
            rest = &tail[end..];
        } else {
            break;
        }
    }
    found
}

/// Rule 1 over one file's source; returns human-readable findings.
fn check_key_names(rel: &str, source: &str, prefixes: &[String]) -> Vec<String> {
    let mut findings = Vec::new();
    for kind in ["SpanKey", "CounterKey"] {
        for name in key_literals(source, kind) {
            if !dot_lowercase(name) {
                findings.push(format!(
                    "{rel}: {kind} \"{name}\" is not dot-lowercase (want layer.what)"
                ));
                continue;
            }
            let layer = name.split('.').next().unwrap_or("");
            if !prefixes.iter().any(|p| p == layer) {
                findings.push(format!(
                    "{rel}: {kind} \"{name}\" uses prefix `{layer}.*` that is not documented \
                     in crates/telemetry/README.md's naming table"
                ));
            }
        }
    }
    findings
}

/// Rule 2 over one file's source.
fn check_cfg_twin(rel: &str, source: &str) -> Vec<String> {
    let gated = source.contains("#[cfg(feature = \"telemetry\")]");
    if !gated {
        return Vec::new();
    }
    let whole_file = source.contains("#![cfg(feature = \"telemetry\")]");
    let twin = source.contains("#[cfg(not(feature = \"telemetry\"))]");
    if whole_file || twin {
        return Vec::new();
    }
    vec![format!(
        "{rel}: gates items on feature \"telemetry\" without a \
         #[cfg(not(feature = \"telemetry\"))] no-op twin (or a whole-file #![cfg])"
    )]
}

fn main() -> ExitCode {
    let root = repo_root();
    let readme_path = root.join("crates/telemetry/README.md");
    let readme = match fs::read_to_string(&readme_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("repolint: cannot read {}: {e}", readme_path.display());
            return ExitCode::FAILURE;
        }
    };
    let prefixes = documented_prefixes(&readme);
    if prefixes.is_empty() {
        eprintln!("repolint: no `prefix.*` rows found in the telemetry README naming table");
        return ExitCode::FAILURE;
    }

    let mut sources = Vec::new();
    rust_sources(&root, &mut sources);
    let mut findings = Vec::new();
    let mut scanned = 0usize;
    for path in &sources {
        let Ok(source) = fs::read_to_string(path) else {
            continue;
        };
        scanned += 1;
        let rel = path
            .strip_prefix(&root)
            .unwrap_or(path)
            .display()
            .to_string();
        // The telemetry crate documents the mechanism and uses scratch
        // key names in its own doctests/tests; only the twin rule
        // applies to it.
        if !rel.starts_with("crates/telemetry") {
            findings.extend(check_key_names(&rel, &source, &prefixes));
        }
        findings.extend(check_cfg_twin(&rel, &source));
    }

    if findings.is_empty() {
        println!(
            "repolint: {scanned} files clean ({} documented prefixes)",
            prefixes.len()
        );
        ExitCode::SUCCESS
    } else {
        for f in &findings {
            eprintln!("repolint: {f}");
        }
        eprintln!("repolint: {} finding(s)", findings.len());
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_lowercase_accepts_metric_paths_only() {
        assert!(dot_lowercase("discover.sample_us"));
        assert!(dot_lowercase("stream.probes.slot"));
        assert!(!dot_lowercase("Discover.sample"));
        assert!(!dot_lowercase("flat"));
        assert!(!dot_lowercase("a..b"));
        assert!(!dot_lowercase("a.b-c"));
    }

    #[test]
    fn prefixes_come_from_backticked_star_rows() {
        let readme = "| `stream.*` | stream |\n| `validator.*` | v |\nplain text";
        assert_eq!(documented_prefixes(readme), vec!["stream", "validator"]);
    }

    #[test]
    fn key_literals_are_extracted_and_checked() {
        // Assembled at runtime so the lint's own source stays clean
        // under its self-scan.
        let src = format!(
            "static S: SpanKey = SpanKey::{call}(\"discover.mine_us\");\n\
             static C: CounterKey = CounterKey::{call}(\"Bad.Name\");",
            call = "new"
        );
        assert_eq!(key_literals(&src, "SpanKey"), vec!["discover.mine_us"]);
        let prefixes = vec!["discover".to_string()];
        let findings = check_key_names("f.rs", &src, &prefixes);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].contains("Bad.Name"));
    }

    #[test]
    fn cfg_twin_rule_accepts_whole_file_gates_and_twins() {
        let gated_only = "#[cfg(feature = \"telemetry\")] fn a() {}";
        assert_eq!(check_cfg_twin("f.rs", gated_only).len(), 1);
        let with_twin =
            "#[cfg(feature = \"telemetry\")] fn a() {}\n#[cfg(not(feature = \"telemetry\"))] fn a() {}";
        assert!(check_cfg_twin("f.rs", with_twin).is_empty());
        let whole = "#![cfg(feature = \"telemetry\")]\nfn a() {}";
        assert!(check_cfg_twin("f.rs", whole).is_empty());
        assert!(check_cfg_twin("f.rs", "fn a() {}").is_empty());
    }

    #[test]
    fn the_real_repo_is_clean() {
        // The CI step runs the binary; this keeps `cargo test` parity.
        let root = repo_root();
        let readme = std::fs::read_to_string(root.join("crates/telemetry/README.md")).unwrap();
        let prefixes = documented_prefixes(&readme);
        assert!(!prefixes.is_empty());
        let mut sources = Vec::new();
        rust_sources(&root, &mut sources);
        assert!(sources.len() > 50, "walk found too few files");
        for path in sources {
            let Ok(source) = std::fs::read_to_string(&path) else {
                continue;
            };
            let rel = path.strip_prefix(&root).unwrap().display().to_string();
            if !rel.starts_with("crates/telemetry") {
                assert_eq!(
                    check_key_names(&rel, &source, &prefixes),
                    Vec::<String>::new()
                );
            }
            assert_eq!(check_cfg_twin(&rel, &source), Vec::<String>::new());
        }
    }
}
