//! The scenario-matrix scoreboard harness.
//!
//! ```text
//! scoreboard run  [--out PATH] [--only NAME[,NAME…]]
//! scoreboard diff BASE NEW [--latency F] [--latency-floor-us N]
//!                          [--throughput F] [--counter F]
//! scoreboard list
//! ```
//!
//! `run` drives every matrix scenario through the generic runner,
//! validates the emitted document (well-formed JSON + required key
//! schema) and writes it — by default to `SCOREBOARD.json` at the repo
//! root, the committed baseline. `diff` compares two scoreboard
//! documents with class-aware thresholds and exits `2` on any gated
//! regression; `scoreboard diff SCOREBOARD.json SCOREBOARD.json` is
//! zero-regression by construction. CI runs the matrix with
//! `--out target/…` and diffs against the committed baseline with
//! loose timing thresholds — counters still gate exactly.

use condep_bench::scenario::{matrix, run_scenario, ScenarioResult};
use condep_bench::scoreboard::{diff, emit, validate, Thresholds};
use std::path::PathBuf;
use std::process::ExitCode;

fn default_out() -> PathBuf {
    PathBuf::from(format!(
        "{}/../../SCOREBOARD.json",
        env!("CARGO_MANIFEST_DIR")
    ))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("run") => cmd_run(&args[1..]),
        Some("diff") => cmd_diff(&args[1..]),
        Some("list") => {
            for s in matrix() {
                println!("{:24} seed 0x{:X}", s.name, s.seed);
            }
            ExitCode::SUCCESS
        }
        _ => {
            eprintln!(
                "usage: scoreboard run [--out PATH] [--only NAME[,NAME…]]\n       \
                 scoreboard diff BASE NEW [--latency F] [--latency-floor-us N] \
                 [--throughput F] [--counter F]\n       scoreboard list"
            );
            ExitCode::FAILURE
        }
    }
}

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn cmd_run(args: &[String]) -> ExitCode {
    let out = flag_value(args, "--out")
        .map(PathBuf::from)
        .unwrap_or_else(default_out);
    let only: Option<Vec<&str>> = flag_value(args, "--only").map(|v| v.split(',').collect());

    let scenarios: Vec<_> = matrix()
        .into_iter()
        .filter(|s| only.as_ref().is_none_or(|names| names.contains(&s.name)))
        .collect();
    if scenarios.is_empty() {
        eprintln!("scoreboard: no scenario matches --only");
        return ExitCode::FAILURE;
    }

    let mut results: Vec<ScenarioResult> = Vec::with_capacity(scenarios.len());
    for s in &scenarios {
        let r = run_scenario(s);
        print_result(&r);
        results.push(r);
    }

    let doc = emit(&results);
    // Self-gate before writing: the emitted document must satisfy its
    // own schema.
    if let Err(e) = validate(&doc) {
        eprintln!("scoreboard: emitted document failed validation: {e}");
        return ExitCode::FAILURE;
    }
    if let Some(dir) = out.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    match std::fs::write(&out, &doc) {
        Ok(()) => {
            println!("\n(scoreboard: {})", out.display());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("scoreboard: cannot write {}: {e}", out.display());
            ExitCode::FAILURE
        }
    }
}

fn print_result(r: &ScenarioResult) {
    if let Some(sl) = &r.sigma_lint {
        println!(
            "{:24} {} families  sat/unsat/unknown {}/{}/{}  core cfds {}  \
             lints {}  misses {}",
            r.name,
            sl.families,
            sl.sat,
            sl.unsat,
            sl.unknown,
            sl.core_cfds,
            sl.lints,
            sl.expectation_misses,
        );
        return;
    }
    println!(
        "{:24} rows {:>6}  churn {:>5} ops ({:>9.0} ops/s)  \
         p50/p90/p99 {:>5}/{:>5}/{:>5} µs [{}]  violations {} -> {} -> {}{}",
        r.name,
        r.rows,
        r.churn_ops,
        r.churn_ops_per_s,
        r.latency.p50_us,
        r.latency.p90_us,
        r.latency.p99_us,
        r.latency.source,
        r.violations.initial,
        r.violations.residual,
        r.violations.after_churn,
        match &r.repair {
            Some(rep) => format!(
                "  repair {}+/{}-{}",
                rep.accepted,
                rep.rejected,
                if rep.poisoned_classes > 0 {
                    format!("  flips {}/{}", rep.majority_flips, rep.poisoned_classes)
                } else {
                    String::new()
                }
            ),
            None => String::new(),
        },
    );
}

fn cmd_diff(args: &[String]) -> ExitCode {
    // Positional args are the two paths; every `--flag` consumes the
    // token after it.
    let mut positional: Vec<&str> = Vec::new();
    let mut skip = false;
    for a in args {
        if skip {
            skip = false;
            continue;
        }
        if a.starts_with("--") {
            skip = true;
            continue;
        }
        positional.push(a);
    }
    let [base_path, new_path] = positional.as_slice() else {
        eprintln!("usage: scoreboard diff BASE NEW [--latency F] [--latency-floor-us N] [--throughput F] [--counter F]");
        return ExitCode::FAILURE;
    };

    let mut t = Thresholds::default();
    let parse = |v: Option<&str>, name: &str| -> Option<f64> {
        v.map(|s| {
            s.parse::<f64>()
                .unwrap_or_else(|_| panic!("scoreboard: bad {name} value {s:?}"))
        })
    };
    if let Some(v) = parse(flag_value(args, "--latency"), "--latency") {
        t.latency_frac = v;
    }
    if let Some(v) = parse(flag_value(args, "--latency-floor-us"), "--latency-floor-us") {
        t.latency_floor_us = v;
    }
    if let Some(v) = parse(flag_value(args, "--throughput"), "--throughput") {
        t.throughput_frac = v;
    }
    if let Some(v) = parse(flag_value(args, "--counter"), "--counter") {
        t.counter_frac = v;
    }

    let load = |path: &str| -> Result<condep_telemetry::json::JsonValue, String> {
        let doc = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        validate(&doc).map_err(|e| format!("{path}: {e}"))
    };
    let (base, new) = match (load(base_path), load(new_path)) {
        (Ok(b), Ok(n)) => (b, n),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("scoreboard: {e}");
            return ExitCode::FAILURE;
        }
    };

    let report = diff(&base, &new, &t);
    for msg in &report.incomparable {
        println!("INCOMPARABLE  {msg}");
    }
    for a in &report.added {
        println!("ADDED         {a} (no baseline entry)");
    }
    for r in &report.regressions {
        println!(
            "REGRESSION    {}.{}  {:?}  {} -> {}",
            r.scenario, r.path, r.class, r.base, r.new
        );
    }
    println!(
        "scoreboard diff: {} compared, {} improved, {} regressed, {} incomparable",
        report.compared,
        report.improvements,
        report.regressions.len(),
        report.incomparable.len()
    );
    if report.ok() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(2)
    }
}
