//! Scoreboard serialization and regression diffing.
//!
//! [`emit`] renders a slice of [`ScenarioResult`]s as one deterministic
//! pretty-printed JSON document (scenario entries keyed by name, keys
//! in fixed order); [`validate`] checks a document is well-formed JSON
//! carrying the required per-scenario key schema; [`diff`] compares two
//! documents metric-by-metric with class-aware thresholds:
//!
//! - **counters** (violation counts, repair accept/reject, stream
//!   mutation counts, …) are deterministic for a fixed seed and gate
//!   **exactly** by default — any drift means behavior changed;
//! - **latency** paths (`elapsed_us.*`, `latency_us.{p50,p90,p99,max}`)
//!   gate on a relative threshold with an absolute floor, so machine
//!   noise under the floor never trips the gate;
//! - **throughput** paths (`*per_s`) gate on a relative drop;
//! - **`metrics.*`** is informational — full-fidelity telemetry travels
//!   with the scoreboard but never gates;
//! - **fingerprint** paths (and string leaves) must match exactly or
//!   the scenario is reported *incomparable* (workload shape changed —
//!   rebaseline rather than gate).

use crate::scenario::ScenarioResult;
use condep_telemetry::json::{self, JsonValue, JsonWriter};

/// Current scoreboard document version ([`emit`] stamps it,
/// [`validate`] requires it).
pub const SCHEMA_VERSION: u64 = 1;

/// Renders results as the scoreboard JSON document.
pub fn emit(results: &[ScenarioResult]) -> String {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("schema_version");
    w.value_u64(SCHEMA_VERSION);
    w.key("scenarios");
    w.begin_object();
    for r in results {
        w.key(r.name);
        write_entry(&mut w, r);
    }
    w.end_object();
    w.end_object();
    w.finish()
}

fn write_entry(w: &mut JsonWriter, r: &ScenarioResult) {
    w.begin_object();
    w.key("name");
    w.value_str(r.name);
    w.key("seed");
    w.value_u64(r.seed);

    w.key("fingerprint");
    w.begin_object();
    w.key("rows");
    w.value_u64(r.rows);
    w.key("relations");
    w.value_u64(r.relations);
    w.key("churn_ops");
    w.value_u64(r.churn_ops);
    w.key("passes");
    w.begin_array();
    for p in &r.passes {
        w.value_str(p);
    }
    w.end_array();
    w.end_object();

    w.key("elapsed_us");
    w.begin_object();
    w.key("generate");
    w.value_u64(r.elapsed.generate);
    w.key("sigma");
    w.value_u64(r.elapsed.sigma);
    w.key("validate");
    w.value_u64(r.elapsed.validate);
    w.key("repair");
    w.value_u64(r.elapsed.repair);
    w.key("churn");
    w.value_u64(r.elapsed.churn);
    w.end_object();

    w.key("throughput");
    w.begin_object();
    w.key("validate_tuples_per_s");
    w.value_f64(r.validate_tuples_per_s);
    w.key("churn_ops_per_s");
    w.value_f64(r.churn_ops_per_s);
    w.end_object();

    w.key("latency_us");
    w.begin_object();
    w.key("p50");
    w.value_u64(r.latency.p50_us);
    w.key("p90");
    w.value_u64(r.latency.p90_us);
    w.key("p99");
    w.value_u64(r.latency.p99_us);
    w.key("max");
    w.value_u64(r.latency.max_us);
    w.key("count");
    w.value_u64(r.latency.count);
    w.key("source");
    w.value_str(r.latency.source);
    w.end_object();

    w.key("violations");
    w.begin_object();
    w.key("initial");
    w.value_u64(r.violations.initial);
    w.key("residual");
    w.value_u64(r.violations.residual);
    w.key("after_churn");
    w.value_u64(r.violations.after_churn);
    w.end_object();

    w.key("repair");
    match &r.repair {
        Some(rep) => {
            w.begin_object();
            w.key("accepted");
            w.value_u64(rep.accepted);
            w.key("rejected");
            w.value_u64(rep.rejected);
            w.key("stale");
            w.value_u64(rep.stale);
            w.key("rounds");
            w.value_u64(rep.rounds);
            w.key("cells_edited");
            w.value_u64(rep.cells_edited);
            w.key("tuples_deleted");
            w.value_u64(rep.tuples_deleted);
            w.key("tuples_inserted");
            w.value_u64(rep.tuples_inserted);
            w.key("majority_flips");
            w.value_u64(rep.majority_flips);
            w.key("poisoned_classes");
            w.value_u64(rep.poisoned_classes);
            w.end_object();
        }
        None => w.value_null(),
    }

    w.key("stream");
    w.begin_object();
    w.key("windows");
    w.value_u64(r.stream.windows);
    w.key("inserts");
    w.value_u64(r.stream.inserts);
    w.key("deletes");
    w.value_u64(r.stream.deletes);
    w.key("noops");
    w.value_u64(r.stream.noops);
    w.key("journal_total");
    w.value_u64(r.stream.journal_total);
    w.key("probe_hit_rate");
    w.value_f64(r.stream.probe_hit_rate);
    w.end_object();

    w.key("online");
    match r.online {
        Some((polls, proposed, promoted, retired)) => {
            w.begin_object();
            w.key("polls");
            w.value_u64(polls);
            w.key("proposed");
            w.value_u64(proposed);
            w.key("promoted");
            w.value_u64(promoted);
            w.key("retired");
            w.value_u64(retired);
            w.end_object();
        }
        None => w.value_null(),
    }

    w.key("sigma_churn");
    w.begin_object();
    w.key("retires");
    w.value_u64(r.sigma_churn.retires);
    w.key("readds");
    w.value_u64(r.sigma_churn.readds);
    w.end_object();

    // Static-analysis sweep counters: null for pipeline scenarios (the
    // diff flattener skips nulls), an exact-gated counter block for the
    // `sigma_lint` scenario.
    w.key("sigma_lint");
    match &r.sigma_lint {
        Some(sl) => {
            w.begin_object();
            w.key("families");
            w.value_u64(sl.families);
            w.key("sat");
            w.value_u64(sl.sat);
            w.key("unsat");
            w.value_u64(sl.unsat);
            w.key("unknown");
            w.value_u64(sl.unknown);
            w.key("core_cfds");
            w.value_u64(sl.core_cfds);
            w.key("lints");
            w.value_u64(sl.lints);
            w.key("witness_ok");
            w.value_u64(sl.witness_ok);
            w.key("expectation_misses");
            w.value_u64(sl.expectation_misses);
            w.end_object();
        }
        None => w.value_null(),
    }

    w.key("metrics");
    r.metrics.write_json(w);
    w.end_object();
}

/// The per-scenario keys [`validate`] requires (dotted paths; a listed
/// path must resolve to a non-null value).
pub const REQUIRED_ENTRY_PATHS: &[&str] = &[
    "name",
    "seed",
    "fingerprint.rows",
    "fingerprint.churn_ops",
    "throughput.validate_tuples_per_s",
    "throughput.churn_ops_per_s",
    "latency_us.p50",
    "latency_us.p90",
    "latency_us.p99",
    "violations.initial",
    "violations.residual",
    "metrics",
];

/// Checks a scoreboard document: well-formed JSON (per
/// [`json::is_valid`]), the schema version, a non-empty scenario map,
/// and every required per-scenario path present and non-null. Returns
/// the parsed tree on success.
pub fn validate(doc: &str) -> Result<JsonValue, String> {
    if !json::is_valid(doc) {
        return Err("not well-formed JSON".into());
    }
    let v = json::parse(doc).ok_or("unparseable JSON")?;
    let version = v
        .at("schema_version")
        .and_then(JsonValue::as_f64)
        .ok_or("missing schema_version")?;
    if version as u64 != SCHEMA_VERSION {
        return Err(format!("schema_version {version} != {SCHEMA_VERSION}"));
    }
    let scenarios = v
        .at("scenarios")
        .and_then(JsonValue::as_object)
        .ok_or("missing scenarios object")?;
    if scenarios.is_empty() {
        return Err("scenarios object is empty".into());
    }
    for (name, entry) in scenarios {
        for path in REQUIRED_ENTRY_PATHS {
            match entry.at(path) {
                None | Some(JsonValue::Null) => {
                    return Err(format!("scenario {name}: missing required key {path}"));
                }
                Some(_) => {}
            }
        }
        // A repair entry, when present, must carry its accept/reject
        // counts.
        if let Some(rep) = entry.at("repair") {
            if !matches!(rep, JsonValue::Null) {
                for key in ["accepted", "rejected"] {
                    if rep.get(key).is_none() {
                        return Err(format!("scenario {name}: repair missing {key}"));
                    }
                }
            }
        }
    }
    Ok(v)
}

/// How a diffed metric path gates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MetricClass {
    /// Deterministic count: gates exactly (± `counter_frac`).
    Counter,
    /// Wall-time: higher is worse; gates on `latency_frac` with an
    /// absolute floor.
    Latency,
    /// Rate: lower is worse; gates on `throughput_frac`.
    Throughput,
    /// Workload identity: a mismatch makes the scenario incomparable.
    Fingerprint,
    /// Telemetry payload (`metrics.*`): never gates.
    Informational,
}

/// Classifies a dotted path within a scenario entry.
pub fn classify(path: &str) -> MetricClass {
    if path.starts_with("metrics.") || path == "metrics" {
        return MetricClass::Informational;
    }
    if path.starts_with("fingerprint.") || path == "seed" || path == "latency_us.source" {
        return MetricClass::Fingerprint;
    }
    if path.starts_with("elapsed_us.") {
        return MetricClass::Latency;
    }
    if let Some(q) = path.strip_prefix("latency_us.") {
        return match q {
            "p50" | "p90" | "p99" | "max" => MetricClass::Latency,
            _ => MetricClass::Counter,
        };
    }
    if path.ends_with("per_s") {
        return MetricClass::Throughput;
    }
    MetricClass::Counter
}

/// Regression thresholds, one knob per metric class.
#[derive(Clone, Copy, Debug)]
pub struct Thresholds {
    /// Allowed relative latency growth (`0.25` = +25%).
    pub latency_frac: f64,
    /// Latency changes under this many µs never gate.
    pub latency_floor_us: f64,
    /// Allowed relative throughput drop (`0.20` = −20%).
    pub throughput_frac: f64,
    /// Allowed relative counter drift (`0.0` = exact).
    pub counter_frac: f64,
}

impl Default for Thresholds {
    fn default() -> Self {
        Thresholds {
            latency_frac: 0.25,
            latency_floor_us: 50.0,
            throughput_frac: 0.20,
            counter_frac: 0.0,
        }
    }
}

/// One gated deviation.
#[derive(Clone, Debug)]
pub struct Regression {
    /// The scenario the path lives in.
    pub scenario: String,
    /// Dotted path within the entry.
    pub path: String,
    /// Metric class that gated it.
    pub class: MetricClass,
    /// Baseline value.
    pub base: f64,
    /// New value.
    pub new: f64,
}

/// What a diff run found.
#[derive(Clone, Debug, Default)]
pub struct DiffReport {
    /// Gated deviations — non-empty fails the run.
    pub regressions: Vec<Regression>,
    /// Gated-class paths that moved in the *good* direction.
    pub improvements: usize,
    /// Gated-class paths compared.
    pub compared: usize,
    /// Scenario-level problems: fingerprint mismatches and scenarios
    /// missing from the new document. Reported and **gated** (a
    /// vanished scenario is a regression; a changed fingerprint needs
    /// a rebaseline, not a silent pass).
    pub incomparable: Vec<String>,
    /// Scenarios only in the new document (informational).
    pub added: Vec<String>,
}

impl DiffReport {
    /// Did the new document pass the gate?
    pub fn ok(&self) -> bool {
        self.regressions.is_empty() && self.incomparable.is_empty()
    }
}

/// Flattens an entry to `(dotted path, leaf)` pairs, skipping the
/// `metrics` subtree (informational) and nulls.
fn flatten<'a>(prefix: &str, v: &'a JsonValue, out: &mut Vec<(String, &'a JsonValue)>) {
    match v {
        JsonValue::Object(fields) => {
            for (k, val) in fields {
                let path = if prefix.is_empty() {
                    k.clone()
                } else {
                    format!("{prefix}.{k}")
                };
                if path == "metrics" {
                    continue;
                }
                flatten(&path, val, out);
            }
        }
        JsonValue::Null => {}
        JsonValue::Array(items) => {
            for (i, item) in items.iter().enumerate() {
                flatten(&format!("{prefix}.{i}"), item, out);
            }
        }
        _ => out.push((prefix.to_string(), v)),
    }
}

/// Diffs two **validated** scoreboard trees (see [`validate`]) under
/// the thresholds. Scenarios are matched by name.
pub fn diff(base: &JsonValue, new: &JsonValue, t: &Thresholds) -> DiffReport {
    let empty: &[(String, JsonValue)] = &[];
    let base_scenarios = base
        .at("scenarios")
        .and_then(JsonValue::as_object)
        .unwrap_or(empty);
    let new_scenarios = new
        .at("scenarios")
        .and_then(JsonValue::as_object)
        .unwrap_or(empty);
    let mut report = DiffReport::default();

    for (name, _) in new_scenarios {
        if !base_scenarios.iter().any(|(n, _)| n == name) {
            report.added.push(name.clone());
        }
    }

    for (name, base_entry) in base_scenarios {
        let Some(new_entry) = new_scenarios
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, e)| e)
        else {
            report
                .incomparable
                .push(format!("{name}: missing from new document"));
            continue;
        };

        let mut base_leaves = Vec::new();
        let mut new_leaves = Vec::new();
        flatten("", base_entry, &mut base_leaves);
        flatten("", new_entry, &mut new_leaves);

        // Fingerprint first: identity mismatch makes every other
        // comparison meaningless for this scenario.
        let mut comparable = true;
        for (path, bv) in &base_leaves {
            if classify(path) != MetricClass::Fingerprint {
                continue;
            }
            let nv = new_leaves.iter().find(|(p, _)| p == path).map(|(_, v)| *v);
            let matches = match (bv, nv) {
                (JsonValue::Str(a), Some(JsonValue::Str(b))) => a == b,
                (JsonValue::Num(a), Some(JsonValue::Num(b))) => a == b,
                _ => false,
            };
            if !matches {
                report.incomparable.push(format!(
                    "{name}: fingerprint {path} changed ({} -> {})",
                    render(bv),
                    nv.map(render).unwrap_or_else(|| "<absent>".into()),
                ));
                comparable = false;
            }
        }
        if !comparable {
            continue;
        }

        for (path, bv) in &base_leaves {
            let class = classify(path);
            if matches!(class, MetricClass::Fingerprint | MetricClass::Informational) {
                continue;
            }
            let Some(b) = bv.as_f64() else { continue };
            let Some(n) = new_leaves
                .iter()
                .find(|(p, _)| p == path)
                .and_then(|(_, v)| v.as_f64())
            else {
                report.regressions.push(Regression {
                    scenario: name.clone(),
                    path: path.clone(),
                    class,
                    base: b,
                    new: f64::NAN,
                });
                continue;
            };
            report.compared += 1;
            let (regressed, improved) = match class {
                MetricClass::Latency => {
                    let allowed = (b * (1.0 + t.latency_frac)).max(b + t.latency_floor_us);
                    (n > allowed, n < b)
                }
                MetricClass::Throughput => (n < b * (1.0 - t.throughput_frac), n > b),
                MetricClass::Counter => {
                    let drift = (n - b).abs();
                    (drift > b.abs() * t.counter_frac, false)
                }
                MetricClass::Fingerprint | MetricClass::Informational => (false, false),
            };
            if regressed {
                report.regressions.push(Regression {
                    scenario: name.clone(),
                    path: path.clone(),
                    class,
                    base: b,
                    new: n,
                });
            } else if improved {
                report.improvements += 1;
            }
        }
    }
    report
}

fn render(v: &JsonValue) -> String {
    match v {
        JsonValue::Str(s) => s.clone(),
        JsonValue::Num(n) => format!("{n}"),
        JsonValue::Bool(b) => format!("{b}"),
        JsonValue::Null => "null".into(),
        JsonValue::Array(_) => "<array>".into(),
        JsonValue::Object(_) => "<object>".into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_knows_the_path_classes() {
        assert_eq!(classify("violations.residual"), MetricClass::Counter);
        assert_eq!(classify("sigma_lint.core_cfds"), MetricClass::Counter);
        assert_eq!(classify("repair.accepted"), MetricClass::Counter);
        assert_eq!(classify("elapsed_us.validate"), MetricClass::Latency);
        assert_eq!(classify("latency_us.p99"), MetricClass::Latency);
        assert_eq!(classify("latency_us.count"), MetricClass::Counter);
        assert_eq!(classify("latency_us.source"), MetricClass::Fingerprint);
        assert_eq!(
            classify("throughput.churn_ops_per_s"),
            MetricClass::Throughput
        );
        assert_eq!(classify("fingerprint.rows"), MetricClass::Fingerprint);
        assert_eq!(classify("seed"), MetricClass::Fingerprint);
        assert_eq!(
            classify("metrics.stream.apply.window_us.p50_us"),
            MetricClass::Informational
        );
    }

    fn doc(p99: u64, residual: u64, per_s: f64, rows: u64) -> String {
        format!(
            r#"{{
  "schema_version": 1,
  "scenarios": {{
    "s": {{
      "name": "s",
      "seed": 7,
      "fingerprint": {{"rows": {rows}, "churn_ops": 10}},
      "throughput": {{"validate_tuples_per_s": {per_s}, "churn_ops_per_s": {per_s}}},
      "latency_us": {{"p50": 5, "p90": 9, "p99": {p99}}},
      "violations": {{"initial": 3, "residual": {residual}}},
      "repair": null,
      "metrics": {{"x": 1}}
    }}
  }}
}}"#
        )
    }

    #[test]
    fn validate_accepts_the_schema_and_rejects_missing_keys() {
        let good = doc(12, 0, 100.0, 500);
        validate(&good).expect("valid");
        let bad = good.replace("\"residual\": 0", "\"residually\": 0");
        assert!(validate(&bad).unwrap_err().contains("violations.residual"));
        assert!(validate("{").is_err());
        assert!(validate(r#"{"schema_version": 1, "scenarios": {}}"#).is_err());
    }

    #[test]
    fn self_diff_is_clean_and_classes_gate_as_designed() {
        let base = validate(&doc(100, 2, 1000.0, 500)).unwrap();
        let t = Thresholds::default();
        let self_diff = diff(&base, &base, &t);
        assert!(self_diff.ok(), "self-diff regressions: {self_diff:?}");
        assert!(self_diff.compared > 0);

        // Latency within floor+frac passes; beyond it gates.
        let fast = validate(&doc(120, 2, 1000.0, 500)).unwrap();
        assert!(diff(&base, &fast, &t).ok());
        let slow = validate(&doc(500, 2, 1000.0, 500)).unwrap();
        let r = diff(&base, &slow, &t);
        assert!(!r.ok());
        assert!(r.regressions.iter().any(|x| x.path == "latency_us.p99"));

        // Counters gate exactly.
        let drifted = validate(&doc(100, 3, 1000.0, 500)).unwrap();
        let r = diff(&base, &drifted, &t);
        assert!(r
            .regressions
            .iter()
            .any(|x| x.path == "violations.residual" && x.class == MetricClass::Counter));

        // Throughput gates on relative drop only.
        let slower = validate(&doc(100, 2, 850.0, 500)).unwrap();
        assert!(diff(&base, &slower, &t).ok());
        let collapsed = validate(&doc(100, 2, 100.0, 500)).unwrap();
        assert!(!diff(&base, &collapsed, &t).ok());

        // Fingerprint change makes the scenario incomparable (gated).
        let reshaped = validate(&doc(100, 2, 1000.0, 999)).unwrap();
        let r = diff(&base, &reshaped, &t);
        assert!(!r.ok());
        assert!(r.regressions.is_empty());
        assert!(r.incomparable[0].contains("fingerprint.rows"));
    }
}
