#![warn(missing_docs)]

//! # condep-bench
//!
//! Shared harness utilities for the figure/table regeneration benches.
//!
//! Every bench target (`fig10a` … `fig11d`, `table1_table2`, `ablation`)
//! is a `harness = false` binary that sweeps the paper's parameters,
//! prints the series as an aligned table (the "rows the paper reports"),
//! and writes a CSV under `target/figures/` for plotting.
//!
//! Scale control: benches default to a reduced sweep so `cargo bench`
//! finishes quickly; set `CONDEP_BENCH_SCALE=full` to run the paper-size
//! sweeps (20 relations × up to 20K constraints, 100-relation scaling).

pub mod scenario;
pub mod scoreboard;

use std::fmt::Display;
use std::fs;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Sweep scale selected via `CONDEP_BENCH_SCALE`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Scale {
    /// Reduced sweep (default): minutes, same shapes.
    Quick,
    /// Paper-scale sweep.
    Full,
}

impl Scale {
    /// Reads the scale from the environment.
    pub fn from_env() -> Scale {
        match std::env::var("CONDEP_BENCH_SCALE").as_deref() {
            Ok("full") | Ok("FULL") => Scale::Full,
            _ => Scale::Quick,
        }
    }

    /// Picks between the quick and full variant of a parameter.
    pub fn pick<T: Copy>(self, quick: T, full: T) -> T {
        match self {
            Scale::Quick => quick,
            Scale::Full => full,
        }
    }
}

/// Times one run of `f`.
pub fn time_once<F: FnOnce() -> R, R>(f: F) -> (Duration, R) {
    let start = Instant::now();
    let out = f();
    (start.elapsed(), out)
}

/// Best-of-`runs` timing: the minimum duration and its run's value.
pub fn best_of<F: FnMut() -> usize>(runs: usize, mut f: F) -> (Duration, usize) {
    let mut best = Duration::MAX;
    let mut out = 0;
    for _ in 0..runs {
        let (d, n) = time_once(&mut f);
        if d < best {
            best = d;
            out = n;
        }
    }
    (best, out)
}

/// The deterministic xorshift step every bench workload generator
/// shares — one definition keeps cross-bench instances identical.
pub fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

/// Milliseconds as a printable f64.
pub fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1_000.0
}

/// A rendered results table that also lands in `target/figures/`.
pub struct FigureTable {
    name: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl FigureTable {
    /// Starts a table for figure/table `name` with the given column
    /// headers.
    pub fn new(name: &str, headers: &[&str]) -> Self {
        FigureTable {
            name: name.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn row(&mut self, cells: &[&dyn Display]) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows
            .push(cells.iter().map(|c| c.to_string()).collect());
    }

    /// Prints the table (aligned) and writes the CSV.
    pub fn finish(self, title: &str) {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        println!("\n=== {title} ===");
        let fmt_row = |cells: &[String]| {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>width$}", c, width = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        println!("{}", fmt_row(&self.headers));
        println!(
            "{}",
            widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("  ")
        );
        for row in &self.rows {
            println!("{}", fmt_row(row));
        }
        // CSV.
        let dir = figures_dir();
        if fs::create_dir_all(&dir).is_ok() {
            let mut csv = String::new();
            csv.push_str(&self.headers.join(","));
            csv.push('\n');
            for row in &self.rows {
                csv.push_str(&row.join(","));
                csv.push('\n');
            }
            let path = dir.join(format!("{}.csv", self.name));
            if fs::write(&path, csv).is_ok() {
                println!("(csv: {})", path.display());
            }
        }
    }
}

/// `target/figures/` relative to the workspace.
pub fn figures_dir() -> PathBuf {
    // CARGO_TARGET_DIR may relocate the target directory.
    let target = std::env::var("CARGO_TARGET_DIR")
        .unwrap_or_else(|_| format!("{}/../../target", env!("CARGO_MANIFEST_DIR")));
    PathBuf::from(target).join("figures")
}

/// Percentage formatting helper.
pub fn pct(hits: usize, total: usize) -> f64 {
    if total == 0 {
        100.0
    } else {
        100.0 * hits as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_pick() {
        assert_eq!(Scale::Quick.pick(1, 10), 1);
        assert_eq!(Scale::Full.pick(1, 10), 10);
    }

    #[test]
    fn pct_handles_zero() {
        assert_eq!(pct(0, 0), 100.0);
        assert_eq!(pct(1, 2), 50.0);
    }

    #[test]
    fn table_rows_render() {
        let mut t = FigureTable::new("smoke_test", &["x", "y"]);
        t.row(&[&1, &2.5]);
        t.finish("smoke");
    }
}
