//! The scenario matrix: workload sweeps as *data*, driven by one
//! generic runner.
//!
//! A [`Scenario`] names a data shape, a dirt model, a Σ source, a churn
//! schedule and the passes to run; [`run_scenario`] drives every
//! scenario through the same generate → discover/compile → validate →
//! repair → stream-churn → health pipeline and captures one
//! [`ScenarioResult`] — throughput, latency percentiles from the
//! stream's telemetry histograms, residual violations, repair
//! accept/reject counts and the full metric set. The scoreboard
//! ([`crate::scoreboard`]) serializes the results and diffs runs.
//!
//! Every scenario is deterministic for its seed in everything but wall
//! time: the counters of two runs on the same tree are byte-identical,
//! which is what lets CI diff a fresh run against the committed
//! baseline with exact counter thresholds.

use condep::report::{HealthSnapshot, QualitySuite};
use condep_discover::online::OnlineConfig;
use condep_discover::DiscoveryConfig;
use condep_gen::{
    adversarial_majority_dirt, churn_plan, clean_database_with_hidden_sigma, dirtied_database,
    dirty_database, generate_sigma, random_schema, AdversarialDirtConfig, ChurnConfig, ChurnOp,
    DirtyDataConfig, PlantedSigmaConfig, PoisonedClass, SchemaGenConfig, SigmaGenConfig,
};
use condep_model::{Database, RelId, Tuple};
use condep_repair::{RepairBudget, RepairCost};
use condep_telemetry::MetricsSnapshot;
use condep_validate::Mutation;
use rand::{rngs::StdRng, SeedableRng};
use std::time::Instant;

/// What instance a scenario runs against.
#[derive(Clone, Debug)]
pub enum DataShape {
    /// One wide `fact` relation with planted FD pairs + `dim`
    /// inclusions ([`clean_database_with_hidden_sigma`]).
    Planted(PlantedSigmaConfig),
    /// Many small relations with a random consistent Σ
    /// ([`random_schema`] + [`generate_sigma`] + [`dirty_database`]).
    ManyRelations {
        /// Relations in the schema.
        relations: usize,
        /// Clean tuples per relation.
        tuples_per_relation: usize,
        /// `card(Σ)` of the generated constraint set.
        sigma_cardinality: usize,
    },
}

/// How the instance gets dirtied before Σ compilation.
#[derive(Clone, Copy, Debug)]
pub enum Dirt {
    /// Leave the instance clean.
    None,
    /// Independent errors at this rate
    /// ([`dirtied_database`]; planted shapes only).
    Uniform(f64),
    /// Coordinated majority-flipping noise
    /// ([`adversarial_majority_dirt`]; planted shapes only).
    Adversarial {
        /// `(pair, class)` slots to poison.
        classes: usize,
        /// Conflicting copies per slot.
        copies: usize,
    },
}

/// The mutation schedule streamed through the monitor.
#[derive(Clone, Copy, Debug)]
pub enum ChurnSpec {
    /// No streaming pass.
    None,
    /// A generated insert/delete plan against the planted `fact`
    /// relation ([`churn_plan`]); `window == 1` exercises the
    /// single-mutation path, larger windows the batched path.
    Plan(ChurnConfig),
    /// Delete-then-reinsert resident rows round-robin across relations
    /// — steady-state churn that works on any shape.
    Recycle {
        /// Total mutations (half deletes, half reinserts).
        ops: usize,
        /// Mutations per `apply_deltas` window.
        window: usize,
    },
    /// Stream the planted instance's *drifted suffix* into a monitor
    /// seeded on the clean prefix (requires
    /// [`PlantedSigmaConfig::drift_pairs`] > 0).
    DriftSuffix {
        /// Suffix rows per window.
        window: usize,
    },
}

/// One cell of the scenario matrix.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// Stable scenario name — the scoreboard's entry key.
    pub name: &'static str,
    /// Master seed: data, dirt and churn all derive from it.
    pub seed: u64,
    /// The instance to build.
    pub data: DataShape,
    /// The dirt model.
    pub dirt: Dirt,
    /// When set, mine Σ from the dirty instance
    /// ([`QualitySuite::discover`]) with this config instead of
    /// compiling the planted ground truth. Mining dirty data below
    /// `min_confidence: 1.0` recovers the *approximate* planted
    /// dependencies — the violations the relaxed Σ′ still flags are
    /// what the repair pass consumes.
    pub discover: Option<DiscoveryConfig>,
    /// Run the cost-based repair pass before streaming.
    pub repair: bool,
    /// The streaming pass.
    pub churn: ChurnSpec,
    /// Enable the monitor's online-discovery loop during churn.
    pub online: Option<OnlineConfig>,
    /// When non-zero, retire + re-add pair 0's planted dependencies
    /// every this many churn windows — live Σ churn.
    pub sigma_churn_every: usize,
    /// When set, the scenario is a **static-analysis sweep**: run the
    /// Σ analyzer over this many seeds of `condep-gen`'s expectation-
    /// carrying families instead of the data pipeline. Every counter
    /// it produces is deterministic and gates exactly.
    pub sigma_lint: Option<usize>,
}

/// Elapsed wall time per pass, microseconds (informational — the diff
/// gate treats them as latency-class, not exact).
#[derive(Clone, Copy, Debug, Default)]
pub struct ElapsedUs {
    /// Instance generation + dirt injection.
    pub generate: u64,
    /// Σ acquisition (discovery or planted-Σ compilation).
    pub sigma: u64,
    /// The batched validation pass.
    pub validate: u64,
    /// The repair pass (0 when skipped).
    pub repair: u64,
    /// The streaming churn pass (0 when skipped).
    pub churn: u64,
}

/// Latency percentiles captured from the stream's telemetry
/// histograms.
#[derive(Clone, Copy, Debug, Default)]
pub struct LatencySummary {
    /// Median, µs (bucket upper bound).
    pub p50_us: u64,
    /// 90th percentile, µs.
    pub p90_us: u64,
    /// 99th percentile, µs.
    pub p99_us: u64,
    /// Largest sample, µs (exact).
    pub max_us: u64,
    /// Samples recorded.
    pub count: u64,
    /// Which histogram: `"window"` (batched) or `"mutation"`
    /// (single-mutation schedules).
    pub source: &'static str,
}

/// Violation counts at the pipeline's checkpoints.
#[derive(Clone, Copy, Debug, Default)]
pub struct ViolationCounts {
    /// After generation + dirt, before any cleaning.
    pub initial: u64,
    /// Residual after the repair pass (== `initial` when repair is
    /// skipped).
    pub residual: u64,
    /// Live count after the churn pass (== `residual` when churn is
    /// skipped).
    pub after_churn: u64,
}

/// What the repair pass did, scored against the dirt ground truth.
#[derive(Clone, Copy, Debug, Default)]
pub struct RepairOutcome {
    /// Fixes kept (verified net-negative through the delta engine).
    pub accepted: u64,
    /// Candidate fixes applied and rolled back.
    pub rejected: u64,
    /// Planned fixes skipped as stale.
    pub stale: u64,
    /// Fixpoint rounds.
    pub rounds: u64,
    /// Cells edited across kept fixes.
    pub cells_edited: u64,
    /// Tuples deleted across kept fixes.
    pub tuples_deleted: u64,
    /// Tuples inserted across kept fixes.
    pub tuples_inserted: u64,
    /// Adversarial scenarios: poisoned classes where the dirty value
    /// won the majority election (the heuristic's failure count).
    pub majority_flips: u64,
    /// Adversarial scenarios: classes poisoned in total.
    pub poisoned_classes: u64,
}

/// Stream counters captured after the churn pass.
#[derive(Clone, Copy, Debug, Default)]
pub struct StreamStats {
    /// `apply_deltas` windows ingested.
    pub windows: u64,
    /// Effective inserts.
    pub inserts: u64,
    /// Effective deletes.
    pub deletes: u64,
    /// No-op mutations.
    pub noops: u64,
    /// Journal events over the monitor's lifetime.
    pub journal_total: u64,
    /// Share of key-group lookups served probe-free (0.0 before any).
    pub probe_hit_rate: f64,
}

/// Σ static-analysis sweep counters (the `sigma_lint` scenario).
#[derive(Clone, Copy, Debug, Default)]
pub struct SigmaLintStats {
    /// Families analyzed across all seeds.
    pub families: u64,
    /// `Sat` verdicts (each with a witness that re-validated).
    pub sat: u64,
    /// `Unsat` verdicts (each with a minimal core).
    pub unsat: u64,
    /// `Unknown` verdicts (budgeted-chase give-ups).
    pub unknown: u64,
    /// Total unsat-core CFDs across all `Unsat` verdicts.
    pub core_cfds: u64,
    /// Total Σ lints raised.
    pub lints: u64,
    /// Sat witnesses that re-validated through `Validator` (must equal
    /// `sat`).
    pub witness_ok: u64,
    /// Families whose analysis missed the generator's expectation
    /// (must stay 0).
    pub expectation_misses: u64,
}

/// Live-Σ churn counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct SigmaChurnStats {
    /// Retire calls (each drops pair 0's dependencies).
    pub retires: u64,
    /// Re-add calls (each splices them back live).
    pub readds: u64,
}

/// Everything one scenario run measured.
#[derive(Clone, Debug)]
pub struct ScenarioResult {
    /// The scenario's name.
    pub name: &'static str,
    /// The seed it ran with.
    pub seed: u64,
    /// Instance rows after generation + dirt.
    pub rows: u64,
    /// Relations in the schema.
    pub relations: u64,
    /// Mutations streamed by the churn pass.
    pub churn_ops: u64,
    /// The passes that ran, in order.
    pub passes: Vec<&'static str>,
    /// Wall time per pass.
    pub elapsed: ElapsedUs,
    /// Batched-validation throughput, tuples/s.
    pub validate_tuples_per_s: f64,
    /// Churn throughput, mutations/s (0.0 when churn is skipped).
    pub churn_ops_per_s: f64,
    /// Stream latency percentiles.
    pub latency: LatencySummary,
    /// Violation checkpoints.
    pub violations: ViolationCounts,
    /// Repair outcome, when the pass ran.
    pub repair: Option<RepairOutcome>,
    /// Stream counters.
    pub stream: StreamStats,
    /// Online-discovery counters, when the loop ran:
    /// `(polls, proposed, promoted, retired)`.
    pub online: Option<(u64, u64, u64, u64)>,
    /// Live-Σ churn counters.
    pub sigma_churn: SigmaChurnStats,
    /// Static-analysis sweep counters (the `sigma_lint` scenario).
    pub sigma_lint: Option<SigmaLintStats>,
    /// The monitor's full end-of-run metric set (plus
    /// `monitor.violations.*` / `monitor.online.*`).
    pub metrics: MetricsSnapshot,
}

/// The default scenario matrix — eight workloads covering value drift,
/// bursty vs singleton churn, hot-key skew, adversarial dirt, shape
/// extremes and live Σ churn. Sized so the whole sweep runs in
/// seconds: the committed baseline **is** the CI smoke matrix.
pub fn matrix() -> Vec<Scenario> {
    let planted = |tuples: usize| PlantedSigmaConfig {
        fd_pairs: 3,
        pair_cardinality: 16,
        constant_rows_per_pair: 3,
        cind_count: 2,
        tuples,
        drift_pairs: 0,
        drift_onset: 0.5,
    };
    vec![
        Scenario {
            name: "value_drift",
            seed: 0xD217,
            data: DataShape::Planted(PlantedSigmaConfig {
                drift_pairs: 1,
                drift_onset: 0.5,
                ..planted(4_000)
            }),
            dirt: Dirt::None,
            discover: None,
            repair: false,
            churn: ChurnSpec::DriftSuffix { window: 64 },
            online: Some(OnlineConfig {
                min_support: 16,
                min_confidence: 0.98,
                retire_confidence: 0.9,
                window: 256,
            }),
            sigma_churn_every: 0,
            sigma_lint: None,
        },
        Scenario {
            name: "bursty_churn",
            seed: 0xB0457,
            data: DataShape::Planted(planted(3_000)),
            dirt: Dirt::None,
            discover: None,
            repair: false,
            churn: ChurnSpec::Plan(ChurnConfig {
                ops: 2_048,
                window: 16,
                burst: 256,
                skew: 0.0,
                dirt_rate: 0.05,
            }),
            online: None,
            sigma_churn_every: 0,
            sigma_lint: None,
        },
        Scenario {
            name: "singleton_churn",
            seed: 0x516E,
            data: DataShape::Planted(planted(3_000)),
            dirt: Dirt::None,
            discover: None,
            repair: false,
            churn: ChurnSpec::Plan(ChurnConfig {
                ops: 1_024,
                window: 1,
                burst: 0,
                skew: 0.0,
                dirt_rate: 0.05,
            }),
            online: None,
            sigma_churn_every: 0,
            sigma_lint: None,
        },
        Scenario {
            name: "hot_key_skew",
            seed: 0x4053,
            data: DataShape::Planted(PlantedSigmaConfig {
                pair_cardinality: 64,
                constant_rows_per_pair: 4,
                ..planted(3_000)
            }),
            dirt: Dirt::None,
            discover: None,
            repair: false,
            churn: ChurnSpec::Plan(ChurnConfig {
                ops: 2_048,
                window: 32,
                burst: 0,
                skew: 2.0,
                dirt_rate: 0.02,
            }),
            online: None,
            sigma_churn_every: 0,
            sigma_lint: None,
        },
        Scenario {
            name: "adversarial_dirt",
            seed: 0xADD1,
            data: DataShape::Planted(PlantedSigmaConfig {
                fd_pairs: 2,
                pair_cardinality: 16,
                constant_rows_per_pair: 2,
                cind_count: 0,
                tuples: 2_000,
                drift_pairs: 0,
                drift_onset: 0.5,
            }),
            dirt: Dirt::Adversarial {
                classes: 4,
                copies: 160,
            },
            discover: None,
            repair: true,
            churn: ChurnSpec::None,
            online: None,
            sigma_churn_every: 0,
            sigma_lint: None,
        },
        Scenario {
            name: "many_small_relations",
            seed: 0x3A11,
            data: DataShape::ManyRelations {
                relations: 12,
                tuples_per_relation: 160,
                sigma_cardinality: 48,
            },
            dirt: Dirt::None,
            discover: None,
            repair: false,
            churn: ChurnSpec::Recycle {
                ops: 1_024,
                window: 32,
            },
            online: None,
            sigma_churn_every: 0,
            sigma_lint: None,
        },
        Scenario {
            name: "one_huge_relation",
            seed: 0x46E0,
            data: DataShape::Planted(PlantedSigmaConfig {
                pair_cardinality: 32,
                ..planted(12_000)
            }),
            dirt: Dirt::Uniform(0.01),
            // Mine below exact confidence: the approximate planted FDs
            // survive the 1% dirt and still flag it for repair.
            discover: Some(DiscoveryConfig {
                min_confidence: 0.95,
                ..DiscoveryConfig::default()
            }),
            repair: true,
            churn: ChurnSpec::Recycle {
                ops: 512,
                window: 64,
            },
            online: None,
            sigma_churn_every: 0,
            sigma_lint: None,
        },
        Scenario {
            name: "sigma_churn",
            seed: 0x51C7,
            data: DataShape::Planted(planted(3_000)),
            dirt: Dirt::None,
            discover: None,
            repair: false,
            churn: ChurnSpec::Plan(ChurnConfig {
                ops: 1_536,
                window: 32,
                burst: 0,
                skew: 0.0,
                dirt_rate: 0.05,
            }),
            online: None,
            sigma_churn_every: 8,
            sigma_lint: None,
        },
        Scenario {
            name: "sigma_lint",
            seed: 0x51F0,
            // The data-pipeline fields are inert for an analysis sweep.
            data: DataShape::ManyRelations {
                relations: 0,
                tuples_per_relation: 0,
                sigma_cardinality: 0,
            },
            dirt: Dirt::None,
            discover: None,
            repair: false,
            churn: ChurnSpec::None,
            online: None,
            sigma_churn_every: 0,
            sigma_lint: Some(24),
        },
    ]
}

/// Looks a matrix scenario up by name.
pub fn by_name(name: &str) -> Option<Scenario> {
    matrix().into_iter().find(|s| s.name == name)
}

struct BuiltInstance {
    db: Database,
    suite_src: SuiteSource,
    poisoned: Vec<PoisonedClass>,
    planted_cfg: Option<PlantedSigmaConfig>,
    drift_suffix: Vec<Tuple>,
    drift_rel: Option<RelId>,
}

enum SuiteSource {
    Normal {
        cfds: Vec<condep_cfd::NormalCfd>,
        cinds: Vec<condep_core::NormalCind>,
    },
}

fn build_instance(s: &Scenario, rng: &mut StdRng) -> BuiltInstance {
    match &s.data {
        DataShape::Planted(cfg) => {
            let planted = clean_database_with_hidden_sigma(cfg, rng);
            let mut cfds = planted.cfds.clone();
            // Drifted pairs ship their planted dependencies too: they
            // hold on the prefix and decay over the streamed suffix —
            // that accumulation is the drift scenario's signal.
            cfds.extend(planted.drifted_cfds.iter().cloned());
            let cinds = planted.cinds.clone();

            let (db, drift_suffix, drift_rel) = if matches!(s.churn, ChurnSpec::DriftSuffix { .. })
            {
                // Seed the monitor on the clean prefix; the drifted
                // suffix arrives through the stream.
                let fact = planted.db.schema().rel_id("fact").expect("planted shape");
                let onset = planted.drift_onset_row;
                let mut prefix = Database::empty(planted.db.schema().clone());
                let mut suffix = Vec::new();
                for (i, t) in planted.db.relation(fact).iter().enumerate() {
                    if i < onset {
                        prefix.insert(fact, t.clone()).expect("well-typed");
                    } else {
                        suffix.push(t.clone());
                    }
                }
                for (rel, relation) in planted.db.iter() {
                    if rel != fact {
                        for t in relation.iter() {
                            prefix.insert(rel, t.clone()).expect("well-typed");
                        }
                    }
                }
                (prefix, suffix, Some(fact))
            } else {
                (planted.db.clone(), Vec::new(), None)
            };

            let (db, poisoned) = match s.dirt {
                Dirt::None => (db, Vec::new()),
                Dirt::Uniform(rate) => {
                    let dirty = dirtied_database(&db, &planted.cfds, &planted.cinds, rate, rng);
                    (dirty.db, Vec::new())
                }
                Dirt::Adversarial { classes, copies } => {
                    let adv = adversarial_majority_dirt(
                        &planted,
                        cfg,
                        &AdversarialDirtConfig { classes, copies },
                        rng,
                    );
                    (adv.db, adv.poisoned)
                }
            };
            BuiltInstance {
                db,
                suite_src: SuiteSource::Normal { cfds, cinds },
                poisoned,
                planted_cfg: Some(*cfg),
                drift_suffix,
                drift_rel,
            }
        }
        DataShape::ManyRelations {
            relations,
            tuples_per_relation,
            sigma_cardinality,
        } => {
            let schema = random_schema(
                // Wide enough that most relations keep an unconstrained
                // infinite attribute: witness clones then stay distinct
                // under set semantics instead of collapsing.
                &SchemaGenConfig {
                    relations: *relations,
                    attrs_min: 5,
                    attrs_max: 8,
                    finite_ratio: 0.1,
                    finite_dom_min: 8,
                    finite_dom_max: 40,
                },
                rng,
            );
            let (cfds, cinds, witness) = generate_sigma(
                &schema,
                &SigmaGenConfig {
                    cardinality: *sigma_cardinality,
                    consistent: true,
                    ..SigmaGenConfig::default()
                },
                rng,
            );
            let witness = witness.expect("consistent generation carries a witness");
            let dirty = dirty_database(
                &schema,
                &cfds,
                &cinds,
                &witness,
                &DirtyDataConfig {
                    tuples_per_relation: *tuples_per_relation,
                    violations_per_relation: 3,
                },
                rng,
            );
            BuiltInstance {
                db: dirty.db,
                suite_src: SuiteSource::Normal { cfds, cinds },
                poisoned: Vec::new(),
                planted_cfg: None,
                drift_suffix: Vec::new(),
                drift_rel: None,
            }
        }
    }
}

/// Scores the adversarial ground truth against the repaired database:
/// a class *flipped* when the dirty value outvoted the clean one in
/// the final instance.
fn count_majority_flips(db: &Database, poisoned: &[PoisonedClass]) -> u64 {
    let Ok(fact) = db.schema().rel_id("fact") else {
        return 0;
    };
    let fact_rs = db.schema().relation(fact).expect("in range");
    let mut flips = 0u64;
    for slot in poisoned {
        let (Ok(k), Ok(d)) = (
            fact_rs.attr_id(&format!("k{}", slot.pair)),
            fact_rs.attr_id(&format!("d{}", slot.pair)),
        ) else {
            continue;
        };
        let (mut dirty, mut clean) = (0usize, 0usize);
        for t in db.relation(fact).iter() {
            if t[k] == slot.key {
                if t[d] == slot.dirty_value {
                    dirty += 1;
                } else if t[d] == slot.clean_value {
                    clean += 1;
                }
            }
        }
        if dirty > clean {
            flips += 1;
        }
    }
    flips
}

/// Builds the churn mutation windows for a scenario (empty when it has
/// no streaming pass).
fn churn_windows(
    s: &Scenario,
    built: &BuiltInstance,
    db: &Database,
    rng: &mut StdRng,
) -> Vec<Vec<Mutation>> {
    match s.churn {
        ChurnSpec::None => Vec::new(),
        ChurnSpec::Plan(cfg) => {
            let planted_cfg = built.planted_cfg.expect("Plan churn needs a planted shape");
            // The plan generator only needs the planted shape/Σ, which
            // `built` preserves; rebuild a planted view for it.
            let plan = churn_plan(
                &condep_gen::PlantedDatabase {
                    db: db.clone(),
                    cfds: Vec::new(),
                    cinds: Vec::new(),
                    drifted_cfds: Vec::new(),
                    drift_onset_row: planted_cfg.tuples,
                },
                &planted_cfg,
                &cfg,
                rng,
            );
            let rel = plan.rel;
            plan.windows
                .into_iter()
                .map(|w| {
                    w.into_iter()
                        .map(|op| match op {
                            ChurnOp::Insert(t) => Mutation::Insert { rel, tuple: t },
                            ChurnOp::Delete(t) => Mutation::Delete { rel, tuple: t },
                        })
                        .collect()
                })
                .collect()
        }
        ChurnSpec::Recycle { ops, window } => {
            // Delete + reinsert resident rows, round-robin across
            // relations — every mutation is effective and the instance
            // ends where it began.
            let mut victims: Vec<(RelId, Tuple)> = Vec::new();
            let rels: Vec<RelId> = db.iter().map(|(rel, _)| rel).collect();
            let mut cursor = vec![0usize; rels.len()];
            'fill: loop {
                for (i, rel) in rels.iter().enumerate() {
                    if victims.len() * 2 >= ops {
                        break 'fill;
                    }
                    let relation = db.relation(*rel);
                    if cursor[i] < relation.len() {
                        victims.push((*rel, relation.tuples()[cursor[i]].clone()));
                        cursor[i] += 1;
                    }
                }
                if cursor
                    .iter()
                    .enumerate()
                    .all(|(i, c)| *c >= db.relation(rels[i]).len())
                {
                    break;
                }
            }
            let muts: Vec<Mutation> = victims
                .into_iter()
                .flat_map(|(rel, t)| {
                    [
                        Mutation::Delete {
                            rel,
                            tuple: t.clone(),
                        },
                        Mutation::Insert { rel, tuple: t },
                    ]
                })
                .collect();
            muts.chunks(window.max(1)).map(|c| c.to_vec()).collect()
        }
        ChurnSpec::DriftSuffix { window } => {
            let rel = built.drift_rel.expect("DriftSuffix needs a planted drift");
            built
                .drift_suffix
                .chunks(window.max(1))
                .map(|c| {
                    c.iter()
                        .map(|t| Mutation::Insert {
                            rel,
                            tuple: t.clone(),
                        })
                        .collect()
                })
                .collect()
        }
    }
}

/// Runs a static-analysis sweep: `seeds` instances of every Σ family,
/// each analyzed and held to its generator-declared expectation.
fn run_sigma_lint(s: &Scenario, seeds: usize) -> ScenarioResult {
    use condep_analyze::{analyze, AnalyzeConfig, SigmaVerdict};
    use condep_gen::{sigma_families, ExpectedVerdict};

    let config = AnalyzeConfig::default();
    let mut stats = SigmaLintStats::default();
    let mut constraints = 0u64;
    let t0 = Instant::now();
    for i in 0..seeds as u64 {
        for family in sigma_families(s.seed ^ i) {
            stats.families += 1;
            constraints += (family.cfds.len() + family.cinds.len()) as u64;
            let analysis = analyze(&family.schema, &family.cfds, &family.cinds, &config);
            stats.lints += analysis.lints.len() as u64;
            let mut hit = analysis.lints.len() == family.expect.lints;
            match &analysis.verdict {
                SigmaVerdict::Sat(w) => {
                    stats.sat += 1;
                    hit &= family.expect.verdict == ExpectedVerdict::Sat;
                    let v =
                        condep_validate::Validator::new(family.cfds.clone(), family.cinds.clone());
                    if v.validate(&w.db).is_empty() {
                        stats.witness_ok += 1;
                    } else {
                        hit = false;
                    }
                }
                SigmaVerdict::Unsat(core) => {
                    stats.unsat += 1;
                    stats.core_cfds += core.cfds.len() as u64;
                    hit &= family.expect.verdict == ExpectedVerdict::Unsat
                        && core.cfds.len() == family.expect.core_size;
                }
                SigmaVerdict::Unknown(_) => {
                    stats.unknown += 1;
                    hit &= family.expect.verdict == ExpectedVerdict::Unknown;
                }
            }
            if !hit {
                stats.expectation_misses += 1;
            }
        }
    }
    let sigma_us = t0.elapsed().as_micros() as u64;

    let mut metrics = MetricsSnapshot::new();
    metrics.counter("analyze.families", stats.families);
    metrics.counter("analyze.verdict.sat", stats.sat);
    metrics.counter("analyze.verdict.unsat", stats.unsat);
    metrics.counter("analyze.verdict.unknown", stats.unknown);
    metrics.counter("analyze.core.cfds", stats.core_cfds);
    metrics.counter("analyze.lints", stats.lints);
    metrics.counter("analyze.witness.ok", stats.witness_ok);
    metrics.counter("analyze.expectation.misses", stats.expectation_misses);

    ScenarioResult {
        name: s.name,
        seed: s.seed,
        rows: constraints,
        relations: stats.families,
        churn_ops: 0,
        passes: vec!["sigma_lint"],
        elapsed: ElapsedUs {
            sigma: sigma_us,
            ..ElapsedUs::default()
        },
        validate_tuples_per_s: 0.0,
        churn_ops_per_s: 0.0,
        latency: LatencySummary {
            source: "window",
            ..LatencySummary::default()
        },
        violations: ViolationCounts::default(),
        repair: None,
        stream: StreamStats::default(),
        online: None,
        sigma_churn: SigmaChurnStats::default(),
        sigma_lint: Some(stats),
        metrics,
    }
}

/// Runs one scenario end to end and captures its result.
pub fn run_scenario(s: &Scenario) -> ScenarioResult {
    if let Some(seeds) = s.sigma_lint {
        return run_sigma_lint(s, seeds);
    }
    let mut rng = StdRng::seed_from_u64(s.seed);
    let mut passes: Vec<&'static str> = vec!["generate"];

    let t0 = Instant::now();
    let built = build_instance(s, &mut rng);
    let generate_us = t0.elapsed().as_micros() as u64;
    let db = built.db.clone();
    let rows = db.total_tuples() as u64;
    let relations = db.schema().iter().count() as u64;

    // Σ: mined from the dirty instance, or the planted/generated truth.
    let t0 = Instant::now();
    let suite = if let Some(config) = &s.discover {
        passes.push("discover");
        let (suite, _) = QualitySuite::discover(&db, config);
        suite
    } else {
        let SuiteSource::Normal { cfds, cinds } = &built.suite_src;
        QualitySuite::from_normal(db.schema().clone(), cfds.clone(), cinds.clone())
    };
    let sigma_us = t0.elapsed().as_micros() as u64;

    passes.push("validate");
    let t0 = Instant::now();
    let initial = suite.check(&db);
    let validate_us = t0.elapsed().as_micros() as u64;
    let validate_tuples_per_s = if validate_us == 0 {
        0.0
    } else {
        rows as f64 / (validate_us as f64 / 1e6)
    };

    let mut violations = ViolationCounts {
        initial: initial.summary.total() as u64,
        residual: initial.summary.total() as u64,
        after_churn: initial.summary.total() as u64,
    };

    let (db, repair_outcome, repair_us) = if s.repair {
        passes.push("repair");
        let t0 = Instant::now();
        let (repaired, report) = suite
            .repair(db, &RepairCost::default(), &RepairBudget::default())
            .expect("scenario sigmas are satisfiable by construction");
        let repair_us = t0.elapsed().as_micros() as u64;
        violations.residual = report.residual.len() as u64;
        violations.after_churn = violations.residual;
        let outcome = RepairOutcome {
            accepted: report.fixes_applied() as u64,
            rejected: report.log.rejected as u64,
            stale: report.log.stale as u64,
            rounds: report.log.rounds as u64,
            cells_edited: report.cells_edited as u64,
            tuples_deleted: report.tuples_deleted as u64,
            tuples_inserted: report.tuples_inserted as u64,
            majority_flips: count_majority_flips(&repaired, &built.poisoned),
            poisoned_classes: built.poisoned.len() as u64,
        };
        (repaired, Some(outcome), repair_us)
    } else {
        (db, None, 0)
    };

    // Streaming pass: a monitor over the (possibly repaired) instance.
    let windows = churn_windows(s, &built, &db, &mut rng);
    let churn_ops: u64 = windows.iter().map(|w| w.len() as u64).sum();
    let (mut monitor, _) = suite.monitor(db);
    monitor.set_journal_capacity((windows.len() + 64).max(256));
    if let Some(online) = s.online {
        monitor = monitor.with_online_discovery(online);
    }

    let mut sigma_churn = SigmaChurnStats::default();
    // Live Σ churn rotates pair 0's planted dependencies: its variable
    // FD plus constant rows sit at the front of the CFD list, both for
    // planted suites and for the re-added clones.
    let mut rotating: Vec<usize> = if s.sigma_churn_every > 0 {
        let per_pair = 1 + built
            .planted_cfg
            .map(|c| c.constant_rows_per_pair)
            .unwrap_or(0);
        (0..per_pair.min(monitor.validator().cfds().len())).collect()
    } else {
        Vec::new()
    };
    let rotating_cfds: Vec<condep_cfd::NormalCfd> = rotating
        .iter()
        .map(|&i| monitor.validator().cfds()[i].clone())
        .collect();

    let churn_us = if windows.is_empty() {
        0
    } else {
        passes.push("churn");
        let t0 = Instant::now();
        for (w, window) in windows.iter().enumerate() {
            if window.len() == 1 {
                // Exercise the single-mutation path.
                match window[0].clone() {
                    Mutation::Insert { rel, tuple } => {
                        monitor.insert(rel, tuple).expect("well-typed");
                    }
                    Mutation::Delete { rel, tuple } => {
                        monitor.delete(rel, &tuple);
                    }
                    other => {
                        monitor.ingest_batch(&[other]).expect("well-typed");
                    }
                }
            } else {
                monitor.ingest_batch(window).expect("well-typed");
            }
            if s.sigma_churn_every > 0 && (w + 1) % s.sigma_churn_every == 0 {
                monitor.retire_dependencies(&rotating, &[]);
                sigma_churn.retires += 1;
                // Re-added dependencies append to the live Σ: their
                // indices are the tail of the CFD list after the splice.
                let before = monitor.validator().cfds().len();
                monitor.add_dependencies(rotating_cfds.clone(), Vec::new());
                sigma_churn.readds += 1;
                rotating = (before..before + rotating_cfds.len()).collect();
            }
        }
        t0.elapsed().as_micros() as u64
    };
    let churn_ops_per_s = if churn_us == 0 {
        0.0
    } else {
        churn_ops as f64 / (churn_us as f64 / 1e6)
    };
    if !windows.is_empty() {
        violations.after_churn = monitor.summary().total() as u64;
    }

    let health: HealthSnapshot = monitor.health();
    let latency = if health.window_latency.count > 0 {
        LatencySummary {
            p50_us: health.window_latency.p50_us,
            p90_us: health.window_latency.p90_us,
            p99_us: health.window_latency.p99_us,
            max_us: health.window_latency.max_us,
            count: health.window_latency.count,
            source: "window",
        }
    } else {
        LatencySummary {
            p50_us: health.mutation_latency.p50_us,
            p90_us: health.mutation_latency.p90_us,
            p99_us: health.mutation_latency.p99_us,
            max_us: health.mutation_latency.max_us,
            count: health.mutation_latency.count,
            source: "mutation",
        }
    };
    let telemetry_snapshot = health.metrics.clone();
    let counter_of = |name: &str| match telemetry_snapshot.get(name) {
        Some(condep_telemetry::MetricValue::Counter(v)) => *v,
        _ => 0,
    };
    let stream = StreamStats {
        windows: counter_of("stream.apply.windows"),
        inserts: counter_of("stream.mutations.inserts"),
        deletes: counter_of("stream.mutations.deletes"),
        noops: counter_of("stream.mutations.noops"),
        journal_total: health.journal_total,
        probe_hit_rate: {
            let slot = counter_of("stream.probes.slot");
            let total = slot + counter_of("stream.probes.hash");
            if total == 0 {
                0.0
            } else {
                slot as f64 / total as f64
            }
        },
    };

    ScenarioResult {
        name: s.name,
        seed: s.seed,
        rows,
        relations,
        churn_ops,
        passes,
        elapsed: ElapsedUs {
            generate: generate_us,
            sigma: sigma_us,
            validate: validate_us,
            repair: repair_us,
            churn: churn_us,
        },
        validate_tuples_per_s,
        churn_ops_per_s,
        latency,
        violations,
        repair: repair_outcome,
        stream,
        online: health.online.map(|a| {
            (
                a.polls as u64,
                a.proposed as u64,
                a.promoted as u64,
                a.retired as u64,
            )
        }),
        sigma_churn,
        sigma_lint: None,
        metrics: health.metrics,
    }
}
