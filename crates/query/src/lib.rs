#![warn(missing_docs)]

//! # condep-query
//!
//! A minimal in-memory relational execution engine.
//!
//! The paper (Section 8 and its companion work on CFDs, Bohannon et al.
//! ICDE 2007) detects dependency violations with SQL queries over the
//! pattern tableaux. We have no SQL engine to lean on, so this crate
//! provides the needed fragment from scratch:
//!
//! * [`predicate::Predicate`] — conjunctive selection conditions over
//!   attributes (equality with constants, pattern-row matching,
//!   attr-to-attr equality, boolean combinators);
//! * [`index::HashIndex`] — hash indexes on attribute lists, the backbone
//!   of equi-joins, with borrowed-key probing for the hot paths;
//! * [`sym_index::SymIndex`] — the compact-key variant over interned
//!   [`condep_model::SymValue`]s used by the batched Σ-validator;
//! * [`ops`] — free-standing select / project / join / semi-join /
//!   anti-join / group-by operators;
//! * [`plan`] — a tiny composable logical plan (scan → filter → project →
//!   join …) with an executor, used by the SQL-style CIND/CFD violation
//!   compilers in the dependency crates.
//!
//! Everything operates on `condep-model` relations and keeps iteration
//! deterministic.

pub mod index;
pub mod ops;
pub mod plan;
pub mod predicate;
pub mod sym_index;

pub use index::HashIndex;
pub use plan::{Plan, Rows};
pub use predicate::Predicate;
pub use sym_index::{PosIter, SymIndex};
