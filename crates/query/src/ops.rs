//! Free-standing relational operators.
//!
//! These operate directly on [`Relation`]s and position lists; the
//! [`crate::plan`] module composes them into executable plans. Join
//! outputs concatenate the left and right tuples, so downstream
//! predicates address right-hand attributes at offset `left_arity`.

use crate::index::HashIndex;
use crate::predicate::Predicate;
use condep_model::{AttrId, Relation, Tuple, Value};
use std::collections::HashMap;

/// `σ_pred(rel)` — positions of tuples satisfying `pred`.
pub fn select_positions(rel: &Relation, pred: &Predicate) -> Vec<usize> {
    rel.iter()
        .enumerate()
        .filter(|(_, t)| pred.eval(t))
        .map(|(i, _)| i)
        .collect()
}

/// `σ_pred(rel)` — the selected tuples, cloned.
pub fn select(rel: &Relation, pred: &Predicate) -> Vec<Tuple> {
    rel.iter().filter(|t| pred.eval(t)).cloned().collect()
}

/// `π_attrs(rows)` — projection of each row onto `attrs` (duplicates
/// preserved; compose with [`distinct`] for set semantics).
pub fn project(rows: &[Tuple], attrs: &[AttrId]) -> Vec<Tuple> {
    rows.iter().map(|t| Tuple::new(t.project(attrs))).collect()
}

/// Removes duplicate rows, keeping first occurrences (stable).
pub fn distinct(rows: Vec<Tuple>) -> Vec<Tuple> {
    let mut seen = std::collections::HashSet::with_capacity(rows.len());
    rows.into_iter()
        .filter(|t| seen.insert(t.clone()))
        .collect()
}

/// Hash equi-join: pairs `(l, r)` with `l[left_keys] = r[right_keys]`,
/// emitted as concatenated tuples (left fields then right fields).
pub fn hash_join(
    left: &[Tuple],
    right: &Relation,
    left_keys: &[AttrId],
    right_keys: &[AttrId],
) -> Vec<Tuple> {
    debug_assert_eq!(left_keys.len(), right_keys.len());
    let idx = HashIndex::build(right, right_keys);
    let mut out = Vec::new();
    for l in left {
        for &pos in idx.probe_tuple(l, left_keys) {
            let r = right.get(pos).expect("index position valid");
            out.push(Tuple::new(
                l.values().iter().chain(r.values().iter()).cloned(),
            ));
        }
    }
    out
}

/// Semi-join: the left tuples that have at least one key-partner on the
/// right (right side optionally pre-filtered).
pub fn semi_join<F>(
    left: &[Tuple],
    right: &Relation,
    left_keys: &[AttrId],
    right_keys: &[AttrId],
    right_filter: F,
) -> Vec<Tuple>
where
    F: Fn(&Tuple) -> bool,
{
    let idx = HashIndex::build_filtered(right, right_keys, right_filter);
    left.iter()
        .filter(|l| idx.contains_tuple_key(l, left_keys))
        .cloned()
        .collect()
}

/// Anti-join: the left tuples with **no** key-partner on the right.
///
/// This is the violation query for inclusion dependencies: tuples
/// required to have a match in the target, but lacking one.
pub fn anti_join<F>(
    left: &[Tuple],
    right: &Relation,
    left_keys: &[AttrId],
    right_keys: &[AttrId],
    right_filter: F,
) -> Vec<Tuple>
where
    F: Fn(&Tuple) -> bool,
{
    let idx = HashIndex::build_filtered(right, right_keys, right_filter);
    left.iter()
        .filter(|l| !idx.contains_tuple_key(l, left_keys))
        .cloned()
        .collect()
}

/// Groups row positions by their projection onto `attrs` — the group-by
/// used for FD/CFD checking (group on `X`, inspect `A` within groups).
pub fn group_by(rows: &[Tuple], attrs: &[AttrId]) -> HashMap<Vec<Value>, Vec<usize>> {
    let mut groups: HashMap<Vec<Value>, Vec<usize>> = HashMap::new();
    for (i, t) in rows.iter().enumerate() {
        groups.entry(t.project(attrs)).or_default().push(i);
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::*;
    use condep_model::{prow, tuple};

    fn saving() -> Relation {
        [
            tuple!["01", "NYC"],
            tuple!["01", "EDI"],
            tuple!["02", "EDI"],
        ]
        .into_iter()
        .collect()
    }

    fn interest() -> Relation {
        [tuple!["EDI", "UK"], tuple!["NYC", "US"]]
            .into_iter()
            .collect()
    }

    #[test]
    fn select_filters() {
        let rel = saving();
        let pred = Predicate::AttrEq(AttrId(1), Value::str("EDI"));
        assert_eq!(select_positions(&rel, &pred), vec![1, 2]);
        assert_eq!(select(&rel, &pred).len(), 2);
        assert_eq!(select_positions(&rel, &Predicate::True).len(), 3);
    }

    #[test]
    fn project_and_distinct() {
        let rows = select(&saving(), &Predicate::True);
        let projected = project(&rows, &[AttrId(1)]);
        assert_eq!(projected.len(), 3);
        let d = distinct(projected);
        assert_eq!(d, vec![tuple!["NYC"], tuple!["EDI"]]);
    }

    #[test]
    fn hash_join_concatenates() {
        let left = select(&saving(), &Predicate::True);
        let joined = hash_join(&left, &interest(), &[AttrId(1)], &[AttrId(0)]);
        assert_eq!(joined.len(), 3);
        assert!(joined.contains(&tuple!["01", "EDI", "EDI", "UK"]));
        assert!(joined.contains(&tuple!["01", "NYC", "NYC", "US"]));
        // Right-hand attributes are addressable at offset = left arity.
        for row in &joined {
            assert_eq!(row[AttrId(1)], row[AttrId(2)]);
        }
    }

    #[test]
    fn semi_and_anti_join_partition() {
        let left = select(&saving(), &Predicate::True);
        // Only UK rows on the right.
        let uk = |t: &Tuple| t[AttrId(1)] == Value::str("UK");
        let semi = semi_join(&left, &interest(), &[AttrId(1)], &[AttrId(0)], uk);
        let anti = anti_join(&left, &interest(), &[AttrId(1)], &[AttrId(0)], uk);
        assert_eq!(semi.len(), 2); // the two EDI rows
        assert_eq!(anti, vec![tuple!["01", "NYC"]]);
        assert_eq!(semi.len() + anti.len(), left.len());
    }

    #[test]
    fn anti_join_against_empty_right_keeps_everything() {
        let left = select(&saving(), &Predicate::True);
        let anti = anti_join(&left, &Relation::new(), &[AttrId(1)], &[AttrId(0)], |_| {
            true
        });
        assert_eq!(anti.len(), 3);
    }

    #[test]
    fn group_by_partitions_positions() {
        let rows = select(&saving(), &Predicate::True);
        let groups = group_by(&rows, &[AttrId(0)]);
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[&vec![Value::str("01")]], vec![0, 1]);
        assert_eq!(groups[&vec![Value::str("02")]], vec![2]);
    }

    #[test]
    fn pattern_select_composes_with_anti_join() {
        // The violation query of ψ6-style CINDs in miniature: EDI rows of
        // `saving` with no UK partner in `interest`.
        let rel = saving();
        let left = select(
            &rel,
            &Predicate::matches(vec![AttrId(0), AttrId(1)], prow![_, "EDI"]),
        );
        let anti = anti_join(
            &left,
            &interest(),
            &[AttrId(1)],
            &[AttrId(0)],
            |t: &Tuple| t[AttrId(1)] == Value::str("US"),
        );
        // Both EDI rows violate: the only EDI interest row is UK.
        assert_eq!(anti.len(), 2);
    }
}
