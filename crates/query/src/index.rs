//! Hash indexes over relations.

use condep_model::{AttrId, Relation, Tuple, Value};
use std::collections::HashMap;

/// A hash index mapping a key (projection onto an attribute list) to the
/// dense positions of the tuples carrying that key.
///
/// This is the workhorse of CIND checking: for a normal CIND
/// `(R1[X; Xp] ⊆ R2[Y; Yp], tp)` we index the `tp[Yp]`-matching tuples of
/// `R2` on `Y` once, then probe with `t1[X]` for every candidate `t1` —
/// turning the naive `O(|I1| · |I2|)` scan into `O(|I1| + |I2|)`.
#[derive(Clone, Debug, Default)]
pub struct HashIndex {
    map: HashMap<Vec<Value>, Vec<usize>>,
    key_len: usize,
}

impl HashIndex {
    /// Builds an index over all tuples of `rel`, keyed by `key_attrs`.
    pub fn build(rel: &Relation, key_attrs: &[AttrId]) -> Self {
        Self::build_filtered(rel, key_attrs, |_| true)
    }

    /// Builds an index over the tuples of `rel` that pass `filter`.
    pub fn build_filtered<F>(rel: &Relation, key_attrs: &[AttrId], filter: F) -> Self
    where
        F: Fn(&Tuple) -> bool,
    {
        let mut map: HashMap<Vec<Value>, Vec<usize>> = HashMap::new();
        for (pos, t) in rel.iter().enumerate() {
            if filter(t) {
                map.entry(t.project(key_attrs)).or_default().push(pos);
            }
        }
        HashIndex {
            map,
            key_len: key_attrs.len(),
        }
    }

    /// The positions of tuples whose key equals `key` (empty when none).
    pub fn probe(&self, key: &[Value]) -> &[usize] {
        debug_assert_eq!(key.len(), self.key_len);
        self.map.get(key).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Does any indexed tuple carry `key`?
    pub fn contains_key(&self, key: &[Value]) -> bool {
        !self.probe(key).is_empty()
    }

    /// Number of distinct keys.
    pub fn distinct_keys(&self) -> usize {
        self.map.len()
    }

    /// Number of indexed tuples.
    pub fn len(&self) -> usize {
        self.map.values().map(Vec::len).sum()
    }

    /// Whether the index holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterator over `(key, positions)` groups — the group-by view used
    /// by the CFD checker (group on `X`, inspect the `A` column).
    pub fn groups(&self) -> impl Iterator<Item = (&Vec<Value>, &[usize])> {
        self.map.iter().map(|(k, v)| (k, v.as_slice()))
    }

    /// The arity of keys in this index.
    pub fn key_len(&self) -> usize {
        self.key_len
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use condep_model::tuple;

    fn rel() -> Relation {
        [
            tuple!["EDI", "UK", "saving"],
            tuple!["EDI", "UK", "checking"],
            tuple!["NYC", "US", "saving"],
        ]
        .into_iter()
        .collect()
    }

    #[test]
    fn probe_finds_all_positions() {
        let idx = HashIndex::build(&rel(), &[AttrId(0)]);
        assert_eq!(idx.probe(&[Value::str("EDI")]), &[0, 1]);
        assert_eq!(idx.probe(&[Value::str("NYC")]), &[2]);
        assert!(idx.probe(&[Value::str("LON")]).is_empty());
        assert!(idx.contains_key(&[Value::str("EDI")]));
        assert!(!idx.contains_key(&[Value::str("LON")]));
    }

    #[test]
    fn composite_keys() {
        let idx = HashIndex::build(&rel(), &[AttrId(1), AttrId(0)]);
        // Key order follows the attribute list, not the schema.
        assert_eq!(idx.probe(&[Value::str("UK"), Value::str("EDI")]), &[0, 1]);
        assert_eq!(idx.key_len(), 2);
    }

    #[test]
    fn filtered_build_skips_tuples() {
        let idx = HashIndex::build_filtered(&rel(), &[AttrId(0)], |t| {
            t[AttrId(2)] == Value::str("saving")
        });
        assert_eq!(idx.probe(&[Value::str("EDI")]), &[0]);
        assert_eq!(idx.len(), 2);
        assert_eq!(idx.distinct_keys(), 2);
    }

    #[test]
    fn empty_key_groups_everything() {
        // A zero-length key indexes the whole relation under one group —
        // needed for CINDs whose X list is nil (ψ5, ψ6 in the paper).
        let idx = HashIndex::build(&rel(), &[]);
        assert_eq!(idx.probe(&[]), &[0, 1, 2]);
        assert_eq!(idx.distinct_keys(), 1);
    }

    #[test]
    fn empty_relation_builds_empty_index() {
        let idx = HashIndex::build(&Relation::new(), &[AttrId(0)]);
        assert!(idx.is_empty());
        assert_eq!(idx.distinct_keys(), 0);
    }

    #[test]
    fn groups_cover_all_tuples() {
        let idx = HashIndex::build(&rel(), &[AttrId(1)]);
        let mut total = 0;
        for (_, positions) in idx.groups() {
            total += positions.len();
        }
        assert_eq!(total, 3);
    }
}
