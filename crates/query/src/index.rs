//! Hash indexes over relations.

use condep_model::fxhash::{FxBuildHasher, FxHasher};
use condep_model::{AttrId, PosList, Relation, Tuple, Value};
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

/// A hash index mapping a key (projection onto an attribute list) to the
/// dense positions of the tuples carrying that key.
///
/// This is the workhorse of CIND checking: for a normal CIND
/// `(R1[X; Xp] ⊆ R2[Y; Yp], tp)` we index the `tp[Yp]`-matching tuples of
/// `R2` on `Y` once, then probe with `t1[X]` for every candidate `t1` —
/// turning the naive `O(|I1| · |I2|)` scan into `O(|I1| + |I2|)`.
///
/// Keys are stored once in first-seen order; the table maps key *hashes*
/// to key slots, which lets the probe side hash **borrowed** projections
/// ([`HashIndex::probe_tuple`], [`HashIndex::probe_ref`]) instead of
/// cloning every key the way `t.project(..)` does.
#[derive(Clone, Debug, Default)]
pub struct HashIndex {
    /// Distinct keys, first-seen order.
    keys: Vec<Vec<Value>>,
    /// Positions per key, parallel to `keys`.
    groups: Vec<Vec<usize>>,
    /// Key hash → slots in `keys` with that hash (collisions are rare,
    /// so [`PosList`] keeps the common case allocation-free).
    slots: HashMap<u64, PosList, FxBuildHasher>,
    key_len: usize,
}

/// Hashes the fields of a key one value at a time (no length prefix), so
/// owned keys, borrowed keys, and in-tuple projections all hash alike.
fn hash_key<'a, I>(vals: I) -> u64
where
    I: IntoIterator<Item = &'a Value>,
{
    let mut h = FxHasher::default();
    for v in vals {
        v.hash(&mut h);
    }
    h.finish()
}

impl HashIndex {
    /// Builds an index over all tuples of `rel`, keyed by `key_attrs`.
    pub fn build(rel: &Relation, key_attrs: &[AttrId]) -> Self {
        Self::build_filtered(rel, key_attrs, |_| true)
    }

    /// Builds an index over the tuples of `rel` that pass `filter`.
    pub fn build_filtered<F>(rel: &Relation, key_attrs: &[AttrId], filter: F) -> Self
    where
        F: Fn(&Tuple) -> bool,
    {
        let mut idx = HashIndex {
            keys: Vec::new(),
            groups: Vec::new(),
            slots: HashMap::default(),
            key_len: key_attrs.len(),
        };
        for (pos, t) in rel.iter().enumerate() {
            if filter(t) {
                idx.insert_position(t, key_attrs, pos);
            }
        }
        idx
    }

    /// Adds one tuple's position under its projected key.
    fn insert_position(&mut self, t: &Tuple, key_attrs: &[AttrId], pos: usize) {
        let hash = hash_key(key_attrs.iter().map(|a| &t[*a]));
        let slot = u32::try_from(self.keys.len()).expect("index capacity exceeded");
        match self.slots.entry(hash) {
            std::collections::hash_map::Entry::Occupied(mut e) => {
                for existing in e.get().iter() {
                    let key = &self.keys[existing as usize];
                    if key_attrs.iter().zip(key.iter()).all(|(a, k)| &t[*a] == k) {
                        self.groups[existing as usize].push(pos);
                        return;
                    }
                }
                e.get_mut().push(slot);
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(PosList::One(slot));
            }
        }
        self.keys
            .push(key_attrs.iter().map(|a| t[*a].clone()).collect());
        self.groups.push(vec![pos]);
    }

    /// Slot lookup shared by the probe variants.
    fn find_slot<'a, I, F>(&self, hash_vals: I, eq: F) -> Option<usize>
    where
        I: IntoIterator<Item = &'a Value>,
        F: Fn(&[Value]) -> bool,
    {
        let slots = self.slots.get(&hash_key(hash_vals))?;
        slots
            .iter()
            .map(|s| s as usize)
            .find(|&s| eq(&self.keys[s]))
    }

    /// The positions of tuples whose key equals `key` (empty when none).
    pub fn probe(&self, key: &[Value]) -> &[usize] {
        debug_assert_eq!(key.len(), self.key_len);
        self.find_slot(key.iter(), |k| k == key)
            .map(|s| self.groups[s].as_slice())
            .unwrap_or(&[])
    }

    /// Borrowed-key probe: like [`HashIndex::probe`] but over a slice of
    /// references (e.g. from [`Tuple::project_ref`]) — no cloning.
    pub fn probe_ref(&self, key: &[&Value]) -> &[usize] {
        debug_assert_eq!(key.len(), self.key_len);
        self.find_slot(key.iter().copied(), |k| {
            k.iter().zip(key.iter()).all(|(a, b)| &a == b)
        })
        .map(|s| self.groups[s].as_slice())
        .unwrap_or(&[])
    }

    /// Zero-allocation probe with `t[key_attrs]` as the key: the hot path
    /// of CIND validation — hashes the projection straight out of the
    /// tuple.
    pub fn probe_tuple(&self, t: &Tuple, key_attrs: &[AttrId]) -> &[usize] {
        debug_assert_eq!(key_attrs.len(), self.key_len);
        self.find_slot(key_attrs.iter().map(|a| &t[*a]), |k| {
            key_attrs.iter().zip(k.iter()).all(|(a, v)| &t[*a] == v)
        })
        .map(|s| self.groups[s].as_slice())
        .unwrap_or(&[])
    }

    /// Does any indexed tuple carry `key`?
    pub fn contains_key(&self, key: &[Value]) -> bool {
        !self.probe(key).is_empty()
    }

    /// [`HashIndex::contains_key`] for a projection of `t` — no cloning.
    pub fn contains_tuple_key(&self, t: &Tuple, key_attrs: &[AttrId]) -> bool {
        !self.probe_tuple(t, key_attrs).is_empty()
    }

    /// Number of distinct keys.
    pub fn distinct_keys(&self) -> usize {
        self.keys.len()
    }

    /// Number of indexed tuples.
    pub fn len(&self) -> usize {
        self.groups.iter().map(Vec::len).sum()
    }

    /// Whether the index holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Iterator over `(key, positions)` groups in first-seen order — the
    /// group-by view used by the CFD checker (group on `X`, inspect the
    /// `A` column).
    pub fn groups(&self) -> impl Iterator<Item = (&Vec<Value>, &[usize])> {
        self.keys.iter().zip(self.groups.iter().map(Vec::as_slice))
    }

    /// The arity of keys in this index.
    pub fn key_len(&self) -> usize {
        self.key_len
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use condep_model::tuple;

    fn rel() -> Relation {
        [
            tuple!["EDI", "UK", "saving"],
            tuple!["EDI", "UK", "checking"],
            tuple!["NYC", "US", "saving"],
        ]
        .into_iter()
        .collect()
    }

    #[test]
    fn probe_finds_all_positions() {
        let idx = HashIndex::build(&rel(), &[AttrId(0)]);
        assert_eq!(idx.probe(&[Value::str("EDI")]), &[0, 1]);
        assert_eq!(idx.probe(&[Value::str("NYC")]), &[2]);
        assert!(idx.probe(&[Value::str("LON")]).is_empty());
        assert!(idx.contains_key(&[Value::str("EDI")]));
        assert!(!idx.contains_key(&[Value::str("LON")]));
    }

    #[test]
    fn borrowed_probes_agree_with_owned() {
        let r = rel();
        let idx = HashIndex::build(&r, &[AttrId(1), AttrId(0)]);
        for t in r.iter() {
            let owned = t.project(&[AttrId(1), AttrId(0)]);
            let refs = t.project_ref(&[AttrId(1), AttrId(0)]);
            assert_eq!(idx.probe(&owned), idx.probe_ref(&refs));
            assert_eq!(
                idx.probe(&owned),
                idx.probe_tuple(t, &[AttrId(1), AttrId(0)])
            );
            assert!(idx.contains_tuple_key(t, &[AttrId(1), AttrId(0)]));
        }
        let miss = tuple!["XX", "YY", "z"];
        assert!(idx.probe_tuple(&miss, &[AttrId(1), AttrId(0)]).is_empty());
    }

    #[test]
    fn composite_keys() {
        let idx = HashIndex::build(&rel(), &[AttrId(1), AttrId(0)]);
        // Key order follows the attribute list, not the schema.
        assert_eq!(idx.probe(&[Value::str("UK"), Value::str("EDI")]), &[0, 1]);
        assert_eq!(idx.key_len(), 2);
    }

    #[test]
    fn filtered_build_skips_tuples() {
        let idx = HashIndex::build_filtered(&rel(), &[AttrId(0)], |t| {
            t[AttrId(2)] == Value::str("saving")
        });
        assert_eq!(idx.probe(&[Value::str("EDI")]), &[0]);
        assert_eq!(idx.len(), 2);
        assert_eq!(idx.distinct_keys(), 2);
    }

    #[test]
    fn empty_key_groups_everything() {
        // A zero-length key indexes the whole relation under one group —
        // needed for CINDs whose X list is nil (ψ5, ψ6 in the paper).
        let idx = HashIndex::build(&rel(), &[]);
        assert_eq!(idx.probe(&[]), &[0, 1, 2]);
        assert_eq!(idx.distinct_keys(), 1);
    }

    #[test]
    fn empty_relation_builds_empty_index() {
        let idx = HashIndex::build(&Relation::new(), &[AttrId(0)]);
        assert!(idx.is_empty());
        assert_eq!(idx.distinct_keys(), 0);
    }

    #[test]
    fn groups_cover_all_tuples_in_first_seen_order() {
        let idx = HashIndex::build(&rel(), &[AttrId(1)]);
        let mut total = 0;
        let mut keys = Vec::new();
        for (key, positions) in idx.groups() {
            total += positions.len();
            keys.push(key[0].clone());
        }
        assert_eq!(total, 3);
        assert_eq!(keys, vec![Value::str("UK"), Value::str("US")]);
    }
}
