//! Composable logical plans.
//!
//! A [`Plan`] is a small tree of relational operators executed against a
//! [`Database`]. The dependency crates compile CFDs and CINDs into plans
//! (the "SQL techniques" of the paper's related work): e.g. the
//! violations of a normal CIND compile to
//! `AntiJoin(Filter(Scan R1, tp[Xp]), Filter(Scan R2, tp[Yp]), X = Y)`.

use crate::ops;
use crate::predicate::Predicate;
use condep_model::{AttrId, Database, RelId, Relation, Tuple};
use std::fmt;

/// Materialized rows produced by plan execution.
pub type Rows = Vec<Tuple>;

/// A logical query plan.
#[derive(Clone, Debug)]
pub enum Plan {
    /// All tuples of a stored relation.
    Scan(RelId),
    /// `σ_pred(input)`.
    Filter {
        /// Input plan.
        input: Box<Plan>,
        /// Selection condition.
        pred: Predicate,
    },
    /// `π_attrs(input)` (bag semantics).
    Project {
        /// Input plan.
        input: Box<Plan>,
        /// Output attribute list.
        attrs: Vec<AttrId>,
    },
    /// Duplicate elimination.
    Distinct(Box<Plan>),
    /// Hash equi-join of two plans; output rows are left ++ right.
    HashJoin {
        /// Left input.
        left: Box<Plan>,
        /// Right input.
        right: Box<Plan>,
        /// Join key attributes on the left rows.
        left_keys: Vec<AttrId>,
        /// Join key attributes on the right rows.
        right_keys: Vec<AttrId>,
    },
    /// Left rows with at least one right partner.
    SemiJoin {
        /// Left input.
        left: Box<Plan>,
        /// Right input.
        right: Box<Plan>,
        /// Join key attributes on the left rows.
        left_keys: Vec<AttrId>,
        /// Join key attributes on the right rows.
        right_keys: Vec<AttrId>,
    },
    /// Left rows with **no** right partner — the inclusion-violation
    /// operator.
    AntiJoin {
        /// Left input.
        left: Box<Plan>,
        /// Right input.
        right: Box<Plan>,
        /// Join key attributes on the left rows.
        left_keys: Vec<AttrId>,
        /// Join key attributes on the right rows.
        right_keys: Vec<AttrId>,
    },
}

impl Plan {
    /// Scan shorthand.
    pub fn scan(rel: RelId) -> Plan {
        Plan::Scan(rel)
    }

    /// Filter shorthand; a `True` predicate is a no-op.
    pub fn filter(self, pred: Predicate) -> Plan {
        if pred == Predicate::True {
            self
        } else {
            Plan::Filter {
                input: Box::new(self),
                pred,
            }
        }
    }

    /// Projection shorthand.
    pub fn project(self, attrs: Vec<AttrId>) -> Plan {
        Plan::Project {
            input: Box::new(self),
            attrs,
        }
    }

    /// Distinct shorthand.
    pub fn distinct(self) -> Plan {
        Plan::Distinct(Box::new(self))
    }

    /// Anti-join shorthand.
    pub fn anti_join(self, right: Plan, left_keys: Vec<AttrId>, right_keys: Vec<AttrId>) -> Plan {
        Plan::AntiJoin {
            left: Box::new(self),
            right: Box::new(right),
            left_keys,
            right_keys,
        }
    }

    /// Semi-join shorthand.
    pub fn semi_join(self, right: Plan, left_keys: Vec<AttrId>, right_keys: Vec<AttrId>) -> Plan {
        Plan::SemiJoin {
            left: Box::new(self),
            right: Box::new(right),
            left_keys,
            right_keys,
        }
    }

    /// Join shorthand.
    pub fn join(self, right: Plan, left_keys: Vec<AttrId>, right_keys: Vec<AttrId>) -> Plan {
        Plan::HashJoin {
            left: Box::new(self),
            right: Box::new(right),
            left_keys,
            right_keys,
        }
    }

    /// Executes the plan against `db`, materializing the result.
    pub fn execute(&self, db: &Database) -> Rows {
        match self {
            Plan::Scan(rel) => db.relation(*rel).tuples().to_vec(),
            Plan::Filter { input, pred } => input
                .execute(db)
                .into_iter()
                .filter(|t| pred.eval(t))
                .collect(),
            Plan::Project { input, attrs } => ops::project(&input.execute(db), attrs),
            Plan::Distinct(input) => ops::distinct(input.execute(db)),
            Plan::HashJoin {
                left,
                right,
                left_keys,
                right_keys,
            } => {
                let l = left.execute(db);
                let r: Relation = right.execute(db).into_iter().collect();
                ops::hash_join(&l, &r, left_keys, right_keys)
            }
            Plan::SemiJoin {
                left,
                right,
                left_keys,
                right_keys,
            } => {
                let l = left.execute(db);
                let r: Relation = right.execute(db).into_iter().collect();
                ops::semi_join(&l, &r, left_keys, right_keys, |_| true)
            }
            Plan::AntiJoin {
                left,
                right,
                left_keys,
                right_keys,
            } => {
                let l = left.execute(db);
                let r: Relation = right.execute(db).into_iter().collect();
                ops::anti_join(&l, &r, left_keys, right_keys, |_| true)
            }
        }
    }
}

impl fmt::Display for Plan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn keys(ks: &[AttrId]) -> String {
            ks.iter()
                .map(|k| k.to_string())
                .collect::<Vec<_>>()
                .join(",")
        }
        match self {
            Plan::Scan(rel) => write!(f, "scan({rel})"),
            Plan::Filter { input, pred } => write!(f, "filter[{pred}]({input})"),
            Plan::Project { input, attrs } => {
                write!(f, "project[{}]({input})", keys(attrs))
            }
            Plan::Distinct(input) => write!(f, "distinct({input})"),
            Plan::HashJoin {
                left,
                right,
                left_keys,
                right_keys,
            } => write!(
                f,
                "join[{}={}]({left}, {right})",
                keys(left_keys),
                keys(right_keys)
            ),
            Plan::SemiJoin {
                left,
                right,
                left_keys,
                right_keys,
            } => write!(
                f,
                "semijoin[{}={}]({left}, {right})",
                keys(left_keys),
                keys(right_keys)
            ),
            Plan::AntiJoin {
                left,
                right,
                left_keys,
                right_keys,
            } => write!(
                f,
                "antijoin[{}={}]({left}, {right})",
                keys(left_keys),
                keys(right_keys)
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use condep_model::{prow, tuple, Database, Domain, Schema, Value};
    use std::sync::Arc;

    fn db() -> Database {
        let schema = Arc::new(
            Schema::builder()
                .relation(
                    "saving",
                    &[("an", Domain::string()), ("ab", Domain::string())],
                )
                .relation(
                    "interest",
                    &[("ab", Domain::string()), ("ct", Domain::string())],
                )
                .finish(),
        );
        let mut db = Database::empty(schema);
        for t in [
            tuple!["01", "NYC"],
            tuple!["01", "EDI"],
            tuple!["02", "EDI"],
        ] {
            db.insert_into("saving", t).unwrap();
        }
        db.insert_into("interest", tuple!["EDI", "UK"]).unwrap();
        db
    }

    #[test]
    fn scan_filter_project_distinct() {
        let db = db();
        let saving = db.schema().rel_id("saving").unwrap();
        let plan = Plan::scan(saving)
            .filter(Predicate::matches(
                vec![AttrId(0), AttrId(1)],
                prow![_, "EDI"],
            ))
            .project(vec![AttrId(1)])
            .distinct();
        assert_eq!(plan.execute(&db), vec![tuple!["EDI"]]);
    }

    #[test]
    fn anti_join_finds_missing_partners() {
        let db = db();
        let saving = db.schema().rel_id("saving").unwrap();
        let interest = db.schema().rel_id("interest").unwrap();
        // saving rows whose branch has no interest row: the NYC row.
        let plan =
            Plan::scan(saving).anti_join(Plan::scan(interest), vec![AttrId(1)], vec![AttrId(0)]);
        assert_eq!(plan.execute(&db), vec![tuple!["01", "NYC"]]);
    }

    #[test]
    fn join_concatenates_rows() {
        let db = db();
        let saving = db.schema().rel_id("saving").unwrap();
        let interest = db.schema().rel_id("interest").unwrap();
        let plan = Plan::scan(saving).join(Plan::scan(interest), vec![AttrId(1)], vec![AttrId(0)]);
        let rows = plan.execute(&db);
        assert_eq!(rows.len(), 2);
        for row in &rows {
            assert_eq!(row.arity(), 4);
            assert_eq!(row[AttrId(3)], Value::str("UK"));
        }
    }

    #[test]
    fn semi_join_keeps_matched_rows() {
        let db = db();
        let saving = db.schema().rel_id("saving").unwrap();
        let interest = db.schema().rel_id("interest").unwrap();
        let plan =
            Plan::scan(saving).semi_join(Plan::scan(interest), vec![AttrId(1)], vec![AttrId(0)]);
        assert_eq!(plan.execute(&db).len(), 2);
    }

    #[test]
    fn filter_true_is_identity() {
        let db = db();
        let saving = db.schema().rel_id("saving").unwrap();
        let plan = Plan::scan(saving).filter(Predicate::True);
        // No Filter node is introduced.
        assert!(matches!(plan, Plan::Scan(_)));
        assert_eq!(plan.execute(&db).len(), 3);
    }

    #[test]
    fn display_renders_tree() {
        let db = db();
        let saving = db.schema().rel_id("saving").unwrap();
        let interest = db.schema().rel_id("interest").unwrap();
        let plan =
            Plan::scan(saving).anti_join(Plan::scan(interest), vec![AttrId(1)], vec![AttrId(0)]);
        let s = plan.to_string();
        assert!(s.starts_with("antijoin"));
        assert!(s.contains("scan(R0)"));
    }
}
