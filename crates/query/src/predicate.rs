//! Selection predicates.

use condep_model::{AttrId, PValue, PatternRow, Tuple, Value};
use std::fmt;

/// A boolean condition over a single tuple.
///
/// Rich enough to express every selection the dependency checkers need:
/// constant equality (`σ_{A = a}`), pattern matching against a tableau
/// row (`t[X] ≍ tp[X]`), attribute equality (`A = B`, used after joins),
/// and the boolean combinators.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Predicate {
    /// Always true (the neutral selection).
    True,
    /// Always false.
    False,
    /// `t[attr] = value`.
    AttrEq(AttrId, Value),
    /// `t[attr] ≠ value`.
    AttrNe(AttrId, Value),
    /// `t[a] = t[b]` (within one, possibly concatenated, row).
    AttrsEq(AttrId, AttrId),
    /// `t[attrs] ≍ row` — the pattern-match selection that makes
    /// conditional dependencies "conditional".
    Matches {
        /// The attribute list the row is aligned with.
        attrs: Vec<AttrId>,
        /// The pattern row.
        row: PatternRow,
    },
    /// Negation.
    Not(Box<Predicate>),
    /// Conjunction over all children.
    And(Vec<Predicate>),
    /// Disjunction over all children.
    Or(Vec<Predicate>),
}

impl Predicate {
    /// `t[attrs] ≍ row` as a predicate; collapses to [`Predicate::True`]
    /// when the row is all wildcards (a useful normalization: traditional
    /// dependencies select everything).
    pub fn matches(attrs: Vec<AttrId>, row: PatternRow) -> Predicate {
        debug_assert_eq!(attrs.len(), row.len());
        if row.is_all_any() {
            Predicate::True
        } else {
            Predicate::Matches { attrs, row }
        }
    }

    /// Conjunction builder that flattens nested `And`s and drops `True`s.
    pub fn and(parts: impl IntoIterator<Item = Predicate>) -> Predicate {
        let mut flat = Vec::new();
        for p in parts {
            match p {
                Predicate::True => {}
                Predicate::False => return Predicate::False,
                Predicate::And(children) => flat.extend(children),
                other => flat.push(other),
            }
        }
        match flat.len() {
            0 => Predicate::True,
            1 => flat.pop().expect("len checked"),
            _ => Predicate::And(flat),
        }
    }

    /// Disjunction builder that flattens nested `Or`s and drops `False`s.
    pub fn or(parts: impl IntoIterator<Item = Predicate>) -> Predicate {
        let mut flat = Vec::new();
        for p in parts {
            match p {
                Predicate::False => {}
                Predicate::True => return Predicate::True,
                Predicate::Or(children) => flat.extend(children),
                other => flat.push(other),
            }
        }
        match flat.len() {
            0 => Predicate::False,
            1 => flat.pop().expect("len checked"),
            _ => Predicate::Or(flat),
        }
    }

    /// Evaluates the predicate on one tuple.
    pub fn eval(&self, t: &Tuple) -> bool {
        match self {
            Predicate::True => true,
            Predicate::False => false,
            Predicate::AttrEq(a, v) => &t[*a] == v,
            Predicate::AttrNe(a, v) => &t[*a] != v,
            Predicate::AttrsEq(a, b) => t[*a] == t[*b],
            Predicate::Matches { attrs, row } => row.matches_tuple(t, attrs),
            Predicate::Not(p) => !p.eval(t),
            Predicate::And(ps) => ps.iter().all(|p| p.eval(t)),
            Predicate::Or(ps) => ps.iter().any(|p| p.eval(t)),
        }
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Predicate::True => write!(f, "true"),
            Predicate::False => write!(f, "false"),
            Predicate::AttrEq(a, v) => write!(f, "{a} = {v}"),
            Predicate::AttrNe(a, v) => write!(f, "{a} != {v}"),
            Predicate::AttrsEq(a, b) => write!(f, "{a} = {b}"),
            Predicate::Matches { attrs, row } => {
                write!(f, "[")?;
                for (i, a) in attrs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, "] ~ {row}")
            }
            Predicate::Not(p) => write!(f, "not ({p})"),
            Predicate::And(ps) => {
                for (i, p) in ps.iter().enumerate() {
                    if i > 0 {
                        write!(f, " and ")?;
                    }
                    write!(f, "({p})")?;
                }
                Ok(())
            }
            Predicate::Or(ps) => {
                for (i, p) in ps.iter().enumerate() {
                    if i > 0 {
                        write!(f, " or ")?;
                    }
                    write!(f, "({p})")?;
                }
                Ok(())
            }
        }
    }
}

/// Builds the selection `t[attrs] ≍ row` restricted to the *constant*
/// cells of the row — the wildcard cells impose no condition, so this is
/// semantically identical to [`Predicate::matches`] but often produces a
/// smaller predicate.
pub fn constant_cells_predicate(attrs: &[AttrId], row: &PatternRow) -> Predicate {
    debug_assert_eq!(attrs.len(), row.len());
    Predicate::and(
        attrs
            .iter()
            .zip(row.cells())
            .filter_map(|(a, cell)| match cell {
                PValue::Any => None,
                PValue::Const(v) => Some(Predicate::AttrEq(*a, v.clone())),
            }),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use condep_model::{prow, tuple};

    #[test]
    fn atoms_evaluate() {
        let t = tuple!["EDI", "UK", "1.5%"];
        assert!(Predicate::AttrEq(AttrId(0), Value::str("EDI")).eval(&t));
        assert!(Predicate::AttrNe(AttrId(0), Value::str("NYC")).eval(&t));
        assert!(!Predicate::AttrsEq(AttrId(0), AttrId(1)).eval(&t));
        assert!(Predicate::AttrsEq(AttrId(2), AttrId(2)).eval(&t));
        assert!(Predicate::True.eval(&t));
        assert!(!Predicate::False.eval(&t));
    }

    #[test]
    fn matches_predicate_and_normalization() {
        let t = tuple!["EDI", "UK"];
        let p = Predicate::matches(vec![AttrId(0), AttrId(1)], prow!["EDI", _]);
        assert!(p.eval(&t));
        // All-wildcard rows normalize away.
        assert_eq!(
            Predicate::matches(vec![AttrId(0)], prow![_]),
            Predicate::True
        );
    }

    #[test]
    fn combinators_flatten_and_shortcut() {
        let a = Predicate::AttrEq(AttrId(0), Value::str("x"));
        let b = Predicate::AttrEq(AttrId(1), Value::str("y"));
        let and = Predicate::and([a.clone(), Predicate::True, b.clone()]);
        assert_eq!(and, Predicate::And(vec![a.clone(), b.clone()]));
        assert_eq!(Predicate::and([Predicate::True]), Predicate::True);
        assert_eq!(
            Predicate::and([a.clone(), Predicate::False]),
            Predicate::False
        );
        assert_eq!(Predicate::or([Predicate::False]), Predicate::False);
        assert_eq!(Predicate::or([a.clone(), Predicate::True]), Predicate::True);
        // Single child unwraps.
        assert_eq!(Predicate::or([b.clone()]), b);
    }

    #[test]
    fn not_negates() {
        let t = tuple!["a"];
        let p = Predicate::Not(Box::new(Predicate::AttrEq(AttrId(0), Value::str("a"))));
        assert!(!p.eval(&t));
    }

    #[test]
    fn constant_cells_predicate_ignores_wildcards() {
        let attrs = [AttrId(0), AttrId(1), AttrId(2)];
        let row = prow![_, "UK", _];
        let p = constant_cells_predicate(&attrs, &row);
        assert_eq!(p, Predicate::AttrEq(AttrId(1), Value::str("UK")));
        assert!(p.eval(&tuple!["anything", "UK", "zzz"]));
        assert!(!p.eval(&tuple!["anything", "US", "zzz"]));
        // All-wildcard row yields the neutral selection.
        assert_eq!(
            constant_cells_predicate(&attrs, &prow![_, _, _]),
            Predicate::True
        );
    }

    #[test]
    fn display_round_trip_smoke() {
        let p = Predicate::and([
            Predicate::AttrEq(AttrId(0), Value::str("x")),
            Predicate::Not(Box::new(Predicate::AttrsEq(AttrId(1), AttrId(2)))),
        ]);
        let s = p.to_string();
        assert!(s.contains("#0 = x"));
        assert!(s.contains("not"));
    }
}
