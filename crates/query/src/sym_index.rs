//! Compact-key group-by indexes over interned values.
//!
//! A [`SymIndex`] is the [`crate::HashIndex`] idea rebuilt for the
//! batched Σ-validation hot path: keys are `Box<[SymValue]>` — `Copy`
//! word-sized cells from a [`condep_model::Interner`] — hashed with the
//! fx hasher, so building and probing never touch string bytes or bump
//! `Arc` reference counts. Probes borrow (`&[SymValue]`), and the index
//! supports incremental growth for streaming validation.

use condep_model::fxhash::FxBuildHasher;
use condep_model::{AttrId, Interner, Relation, SymValue, Tuple};
use std::collections::HashMap;

/// A group-by index keyed by interned projections.
#[derive(Clone, Debug, Default)]
pub struct SymIndex {
    /// Distinct keys → slot, probed with borrowed `&[SymValue]`.
    map: HashMap<Box<[SymValue]>, u32, FxBuildHasher>,
    /// Distinct keys in first-seen order, parallel to `groups`.
    keys: Vec<Box<[SymValue]>>,
    /// Dense tuple positions per key, parallel to `keys`.
    groups: Vec<Vec<u32>>,
    key_len: usize,
}

impl SymIndex {
    /// An empty index over keys of width `key_len`.
    pub fn new(key_len: usize) -> Self {
        SymIndex {
            map: HashMap::default(),
            keys: Vec::new(),
            groups: Vec::new(),
            key_len,
        }
    }

    /// Builds an index over all tuples of `rel` keyed by `key_attrs`,
    /// interning any new strings into `interner`.
    pub fn build(rel: &Relation, key_attrs: &[AttrId], interner: &mut Interner) -> Self {
        let mut idx = SymIndex::new(key_attrs.len());
        let mut buf: Vec<SymValue> = Vec::with_capacity(key_attrs.len());
        for (pos, t) in rel.iter().enumerate() {
            idx.insert_with_buf(pos as u32, t, key_attrs, interner, &mut buf);
        }
        idx
    }

    /// Builds from pre-symbolized columns (see
    /// [`condep_model::SymTables`]): `key_cols` are the key attributes'
    /// columns in key order, all of length `rows`; only positions passing
    /// `filter` are indexed. This is the validation hot path — key cells
    /// are `Copy` reads, no string ever gets hashed.
    pub fn build_from_columns<F>(rows: usize, key_cols: &[&[SymValue]], filter: F) -> Self
    where
        F: Fn(usize) -> bool,
    {
        let mut idx = SymIndex::new(key_cols.len());
        let mut buf: Vec<SymValue> = Vec::with_capacity(key_cols.len());
        for pos in 0..rows {
            if !filter(pos) {
                continue;
            }
            buf.clear();
            buf.extend(key_cols.iter().map(|col| col[pos]));
            idx.push_key(pos as u32, &buf);
        }
        idx
    }

    /// Read-only-interner build over the tuples passing `filter`.
    ///
    /// Requires `interner` to already cover every string of `rel` (e.g.
    /// built with [`Interner::from_database`] on the owning database) —
    /// this is what lets the parallel validation sweep share one
    /// immutable interner across threads.
    pub fn build_filtered_interned<F>(
        rel: &Relation,
        key_attrs: &[AttrId],
        interner: &Interner,
        filter: F,
    ) -> Self
    where
        F: Fn(&Tuple) -> bool,
    {
        let mut idx = SymIndex::new(key_attrs.len());
        let mut buf: Vec<SymValue> = Vec::with_capacity(key_attrs.len());
        for (pos, t) in rel.iter().enumerate() {
            if !filter(t) {
                continue;
            }
            buf.clear();
            buf.extend(key_attrs.iter().map(|a| {
                interner
                    .sym_value(&t[*a])
                    .expect("interner must cover the indexed relation")
            }));
            idx.push_key(pos as u32, &buf);
        }
        idx
    }

    /// Appends `pos` under the already-translated `key`.
    fn push_key(&mut self, pos: u32, key: &[SymValue]) {
        debug_assert_eq!(key.len(), self.key_len);
        if let Some(&slot) = self.map.get(key) {
            self.groups[slot as usize].push(pos);
        } else {
            let slot = u32::try_from(self.keys.len()).expect("index capacity exceeded");
            let boxed: Box<[SymValue]> = key.into();
            self.map.insert(boxed.clone(), slot);
            self.keys.push(boxed);
            self.groups.push(vec![pos]);
        }
    }

    /// Adds the tuple at dense position `pos` under its projected key.
    pub fn insert(&mut self, pos: u32, t: &Tuple, key_attrs: &[AttrId], interner: &mut Interner) {
        let mut buf = Vec::with_capacity(key_attrs.len());
        self.insert_with_buf(pos, t, key_attrs, interner, &mut buf);
    }

    fn insert_with_buf(
        &mut self,
        pos: u32,
        t: &Tuple,
        key_attrs: &[AttrId],
        interner: &mut Interner,
        buf: &mut Vec<SymValue>,
    ) {
        debug_assert_eq!(key_attrs.len(), self.key_len);
        buf.clear();
        buf.extend(key_attrs.iter().map(|a| interner.intern_value(&t[*a])));
        self.push_key(pos, buf);
    }

    /// The positions of tuples whose key equals `key` (empty when none).
    pub fn probe(&self, key: &[SymValue]) -> &[u32] {
        debug_assert_eq!(key.len(), self.key_len);
        self.map
            .get(key)
            .map(|&slot| self.groups[slot as usize].as_slice())
            .unwrap_or(&[])
    }

    /// Does any indexed tuple carry `key`?
    pub fn contains_key(&self, key: &[SymValue]) -> bool {
        !self.probe(key).is_empty()
    }

    /// Iterator over `(key, positions)` groups in first-seen order.
    pub fn groups(&self) -> impl Iterator<Item = (&[SymValue], &[u32])> {
        self.keys
            .iter()
            .map(Box::as_ref)
            .zip(self.groups.iter().map(Vec::as_slice))
    }

    /// Number of distinct keys.
    pub fn distinct_keys(&self) -> usize {
        self.keys.len()
    }

    /// Number of indexed tuples.
    pub fn len(&self) -> usize {
        self.groups.iter().map(Vec::len).sum()
    }

    /// Whether the index holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// The arity of keys in this index.
    pub fn key_len(&self) -> usize {
        self.key_len
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use condep_model::{tuple, AttrId, Value};

    fn rel() -> Relation {
        [
            tuple!["EDI", "UK", 1i64],
            tuple!["EDI", "UK", 2i64],
            tuple!["NYC", "US", 1i64],
        ]
        .into_iter()
        .collect()
    }

    #[test]
    fn build_probe_and_groups_agree_with_hash_index() {
        let r = rel();
        let mut interner = Interner::new();
        let idx = SymIndex::build(&r, &[AttrId(0)], &mut interner);
        let edi = [interner.sym_value(&Value::str("EDI")).unwrap()];
        assert_eq!(idx.probe(&edi), &[0, 1]);
        assert!(idx.contains_key(&edi));
        assert_eq!(idx.distinct_keys(), 2);
        assert_eq!(idx.len(), 3);
        let reference = crate::HashIndex::build(&r, &[AttrId(0)]);
        assert_eq!(idx.distinct_keys(), reference.distinct_keys());
        for (key, positions) in idx.groups() {
            assert_eq!(key.len(), 1);
            assert!(!positions.is_empty());
        }
    }

    #[test]
    fn mixed_type_composite_keys() {
        let r = rel();
        let mut interner = Interner::new();
        let idx = SymIndex::build(&r, &[AttrId(2), AttrId(1)], &mut interner);
        let key = [
            SymValue::Int(1),
            interner.sym_value(&Value::str("UK")).unwrap(),
        ];
        assert_eq!(idx.probe(&key), &[0]);
    }

    #[test]
    fn incremental_insert_extends_groups() {
        let mut interner = Interner::new();
        let mut idx = SymIndex::new(1);
        let attrs = [AttrId(0)];
        idx.insert(0, &tuple!["a", "x"], &attrs, &mut interner);
        idx.insert(1, &tuple!["a", "y"], &attrs, &mut interner);
        idx.insert(2, &tuple!["b", "x"], &attrs, &mut interner);
        let a = [interner.sym_value(&Value::str("a")).unwrap()];
        assert_eq!(idx.probe(&a), &[0, 1]);
        assert_eq!(idx.distinct_keys(), 2);
    }

    #[test]
    fn zero_width_keys_group_everything() {
        let r = rel();
        let mut interner = Interner::new();
        let idx = SymIndex::build(&r, &[], &mut interner);
        assert_eq!(idx.probe(&[]), &[0, 1, 2]);
        assert_eq!(idx.distinct_keys(), 1);
    }

    #[test]
    fn unknown_key_probes_empty() {
        let r = rel();
        let mut interner = Interner::new();
        let idx = SymIndex::build(&r, &[AttrId(0)], &mut interner);
        // A string the interner has never seen cannot even form a key;
        // sym_value signals that with None.
        assert_eq!(interner.sym_value(&Value::str("LON")), None);
        // A well-formed but absent key probes empty.
        assert!(idx.probe(&[SymValue::Int(99)]).is_empty());
    }
}
