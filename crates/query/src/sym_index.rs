//! Compact-key group-by indexes over interned values.
//!
//! A [`SymIndex`] is the [`crate::HashIndex`] idea rebuilt for the
//! batched Σ-validation hot path: keys are `Box<[SymValue]>` — `Copy`
//! word-sized cells from a [`condep_model::Interner`] — hashed with the
//! fx hasher, so building and probing never touch string bytes or bump
//! `Arc` reference counts. Probes borrow (`&[SymValue]`).
//!
//! Storage is a two-tier layout tuned for both the batch sweep and the
//! delta engine:
//!
//! * **Bulk tier** — the whole-relation builds ([`SymIndex::build`],
//!   [`SymIndex::build_from_columns`], …) run a two-pass counting sort:
//!   pass one maps rows to key slots and counts them, pass two scatters
//!   positions into **one** shared CSR vector. No per-key `Vec` is ever
//!   allocated, and each slot's segment is contiguous and
//!   position-ascending — ideal for the sequential group sweep.
//! * **Overflow tier** — streaming [`SymIndex::insert_key`]s that cannot
//!   extend a slot's tail segment go to a shared arena of singly-linked
//!   nodes (with a free list fed by removals), so incremental growth is
//!   also allocation-amortized.
//!
//! [`SymIndex::remove_key`] / [`SymIndex::replace_pos`] give the
//! multiset-aware maintenance the `ValidatorStream` delta engine needs:
//! removal is `O(group)`, and a swap-removed relation position can be
//! renumbered in place.

use condep_model::fxhash::FxBuildHasher;
use condep_model::{AttrId, Interner, Relation, SymValue, Tuple};
use std::collections::HashMap;

/// Sentinel for "no overflow node".
const NONE: u32 = u32::MAX;

/// High bit of a stored location: the location is an overflow node
/// index, not a `bulk` offset.
const OVER_BIT: u32 = 1 << 31;

/// A position's packed back-pointer: storage location + owning slot.
#[derive(Clone, Copy, Debug)]
struct PosRec {
    loc: u32,
    slot: u32,
}

/// "Position absent" sentinel record.
const ABSENT: PosRec = PosRec {
    loc: NONE,
    slot: NONE,
};

/// A group-by index keyed by interned projections.
///
/// Each dense position appears **at most once** per index (one tuple
/// projects to one key), which buys three O(1) upgrades over a plain
/// CSR: a packed per-position record holding the storage location (so
/// [`SymIndex::remove_key`] and [`SymIndex::replace_pos`] never scan a
/// key group) **and** the owning slot (so [`SymIndex::slot_of_pos`]
/// recovers a resident position's group without rehashing its key),
/// plus a cached per-slot minimum (so [`SymIndex::min_pos`] — the
/// delta engine's pair-witness probe — is a single lookup; only
/// removing the minimum itself rescans its group).
#[derive(Clone, Debug, Default)]
pub struct SymIndex {
    /// Distinct keys → slot, probed with borrowed `&[SymValue]`.
    map: HashMap<Box<[SymValue]>, u32, FxBuildHasher>,
    /// Distinct keys in first-seen order, parallel to the slot vectors.
    keys: Vec<Box<[SymValue]>>,
    /// Shared CSR position storage for the bulk tier.
    bulk: Vec<u32>,
    /// Per slot: start of its segment in `bulk`.
    bulk_start: Vec<u32>,
    /// Per slot: live length of its segment.
    bulk_len: Vec<u32>,
    /// Overflow arena: `(position, next)` singly-linked per slot.
    over: Vec<(u32, u32)>,
    /// Per slot: head of its overflow chain (`NONE` when empty).
    over_head: Vec<u32>,
    /// Free list through the `next` fields of `over`.
    free_head: u32,
    /// Per dense position: its storage location and owning slot, packed
    /// in one 8-byte record so the delete path's two questions — "where
    /// is it stored?" and "which group owns it?" ([`SymIndex::
    /// slot_of_pos`]) — cost a single cache line. `loc` is a `bulk`
    /// offset, or an overflow node index tagged with [`OVER_BIT`]
    /// (`NONE` = absent).
    at: Vec<PosRec>,
    /// Per slot: cached smallest live position (`NONE` when emptied).
    min: Vec<u32>,
    /// Total live positions.
    len: usize,
    key_len: usize,
}

impl SymIndex {
    /// An empty index over keys of width `key_len`.
    pub fn new(key_len: usize) -> Self {
        SymIndex {
            map: HashMap::default(),
            keys: Vec::new(),
            bulk: Vec::new(),
            bulk_start: Vec::new(),
            bulk_len: Vec::new(),
            over: Vec::new(),
            over_head: Vec::new(),
            free_head: NONE,
            at: Vec::new(),
            min: Vec::new(),
            len: 0,
            key_len,
        }
    }

    /// Builds an index over all tuples of `rel` keyed by `key_attrs`,
    /// interning any new strings into `interner`.
    pub fn build(rel: &Relation, key_attrs: &[AttrId], interner: &mut Interner) -> Self {
        let mut idx = SymIndex::new(key_attrs.len());
        let mut buf: Vec<SymValue> = Vec::with_capacity(key_attrs.len());
        let mut rows = Vec::with_capacity(rel.len());
        for (pos, t) in rel.iter().enumerate() {
            buf.clear();
            buf.extend(key_attrs.iter().map(|a| interner.intern_value(&t[*a])));
            rows.push((pos as u32, idx.slot_of(&buf)));
        }
        idx.scatter_bulk(&rows);
        idx
    }

    /// Builds from pre-symbolized columns (see
    /// [`condep_model::SymTables`]): `key_cols` are the key attributes'
    /// columns in key order, all of length `rows`; only positions passing
    /// `filter` are indexed. This is the validation hot path — key cells
    /// are `Copy` reads, the counting-sort build allocates one shared
    /// position vector, and no string ever gets hashed.
    pub fn build_from_columns<F>(rows: usize, key_cols: &[&[SymValue]], filter: F) -> Self
    where
        F: Fn(usize) -> bool,
    {
        let mut idx = SymIndex::new(key_cols.len());
        let mut buf: Vec<SymValue> = Vec::with_capacity(key_cols.len());
        let mut pairs = Vec::with_capacity(rows);
        for pos in 0..rows {
            if !filter(pos) {
                continue;
            }
            buf.clear();
            buf.extend(key_cols.iter().map(|col| col[pos]));
            pairs.push((pos as u32, idx.slot_of(&buf)));
        }
        idx.scatter_bulk(&pairs);
        idx
    }

    /// Read-only-interner build over the tuples passing `filter`.
    ///
    /// Requires `interner` to already cover every string of `rel` (e.g.
    /// built with [`Interner::from_database`] on the owning database) —
    /// this is what lets the parallel validation sweep share one
    /// immutable interner across threads.
    pub fn build_filtered_interned<F>(
        rel: &Relation,
        key_attrs: &[AttrId],
        interner: &Interner,
        filter: F,
    ) -> Self
    where
        F: Fn(&Tuple) -> bool,
    {
        let mut idx = SymIndex::new(key_attrs.len());
        let mut buf: Vec<SymValue> = Vec::with_capacity(key_attrs.len());
        let mut pairs = Vec::with_capacity(rel.len());
        for (pos, t) in rel.iter().enumerate() {
            if !filter(t) {
                continue;
            }
            buf.clear();
            buf.extend(key_attrs.iter().map(|a| {
                interner
                    .sym_value(&t[*a])
                    .expect("interner must cover the indexed relation")
            }));
            pairs.push((pos as u32, idx.slot_of(&buf)));
        }
        idx.scatter_bulk(&pairs);
        idx
    }

    /// The slot handle of `key`, if the key has ever been seen — one
    /// hash probe; every `*_at` method is then `O(1)` with **no**
    /// rehashing. Handles are stable across every mutation and only
    /// invalidated by [`SymIndex::compact`] / [`SymIndex::remap_keys`].
    /// An emptied group keeps its handle (probe [`SymIndex::occupied_at`]
    /// to distinguish "seen but empty" from "holds tuples").
    #[inline]
    pub fn probe_slot(&self, key: &[SymValue]) -> Option<u32> {
        debug_assert_eq!(key.len(), self.key_len);
        self.map.get(key).copied()
    }

    /// The slot handle of `key`, allocating an empty slot on first
    /// sight — the insert-side counterpart of [`SymIndex::probe_slot`].
    #[inline]
    pub fn ensure_slot(&mut self, key: &[SymValue]) -> u32 {
        self.slot_of(key)
    }

    /// The slot of `key`, allocating a fresh (empty) one on first sight.
    fn slot_of(&mut self, key: &[SymValue]) -> u32 {
        debug_assert_eq!(key.len(), self.key_len);
        if let Some(&slot) = self.map.get(key) {
            return slot;
        }
        let slot = u32::try_from(self.keys.len()).expect("index capacity exceeded");
        let boxed: Box<[SymValue]> = key.into();
        self.map.insert(boxed.clone(), slot);
        self.keys.push(boxed);
        self.bulk_start.push(0);
        self.bulk_len.push(0);
        self.over_head.push(NONE);
        self.min.push(NONE);
        slot
    }

    /// Records position `pos`'s storage location and owning slot.
    fn note(&mut self, pos: u32, loc: u32, slot: u32) {
        let pos = pos as usize;
        if pos >= self.at.len() {
            self.at.resize(pos + 1, ABSENT);
        }
        self.at[pos] = PosRec { loc, slot };
    }

    /// Recomputes a slot's cached minimum from both tiers.
    fn rescan_min(&self, slot: usize) -> u32 {
        self.slot_positions(slot).min().unwrap_or(NONE)
    }

    /// Counting-sort scatter: lays `(pos, slot)` pairs out as contiguous
    /// per-slot CSR segments in one shared vector (pairs arrive in
    /// ascending position order, so segments end up ascending too), and
    /// seeds the per-position back-pointers and per-slot minima.
    fn scatter_bulk(&mut self, pairs: &[(u32, u32)]) {
        debug_assert!(self.bulk.is_empty(), "scatter_bulk is a bulk-build step");
        let mut counts = vec![0u32; self.keys.len()];
        let mut max_pos = 0usize;
        for &(pos, slot) in pairs {
            counts[slot as usize] += 1;
            max_pos = max_pos.max(pos as usize + 1);
        }
        let mut start = 0u32;
        for (slot, count) in counts.iter().enumerate() {
            self.bulk_start[slot] = start;
            start += count;
        }
        self.bulk.resize(pairs.len(), 0);
        if max_pos > self.at.len() {
            self.at.resize(max_pos, ABSENT);
        }
        for &(pos, slot) in pairs {
            let s = slot;
            let slot = slot as usize;
            let at = self.bulk_start[slot] + self.bulk_len[slot];
            self.bulk[at as usize] = pos;
            self.bulk_len[slot] += 1;
            self.at[pos as usize] = PosRec { loc: at, slot: s };
            self.min[slot] = self.min[slot].min(pos);
        }
        self.len = pairs.len();
    }

    /// Adds the tuple at dense position `pos` under its projected key.
    pub fn insert(&mut self, pos: u32, t: &Tuple, key_attrs: &[AttrId], interner: &mut Interner) {
        debug_assert_eq!(key_attrs.len(), self.key_len);
        let key: Vec<SymValue> = key_attrs
            .iter()
            .map(|a| interner.intern_value(&t[*a]))
            .collect();
        self.insert_key(pos, &key);
    }

    /// Appends `pos` under the already-translated `key` (streaming
    /// tier). When the slot's bulk segment ends at the tail of the
    /// shared vector it is grown in place; otherwise the position goes
    /// to the overflow arena.
    pub fn insert_key(&mut self, pos: u32, key: &[SymValue]) {
        let slot = self.slot_of(key);
        self.insert_at(slot, pos);
    }

    /// [`SymIndex::insert_key`] minus the probe: appends `pos` under the
    /// group addressed by `slot` (from [`SymIndex::ensure_slot`]).
    #[inline]
    pub fn insert_at(&mut self, slot: u32, pos: u32) {
        let s = slot;
        let slot = slot as usize;
        let seg_end = self.bulk_start[slot] + self.bulk_len[slot];
        if seg_end as usize == self.bulk.len() {
            self.bulk.push(pos);
            self.bulk_len[slot] += 1;
            self.note(pos, seg_end, s);
        } else {
            let node = if self.free_head != NONE {
                let node = self.free_head;
                self.free_head = self.over[node as usize].1;
                self.over[node as usize] = (pos, self.over_head[slot]);
                node
            } else {
                let node = u32::try_from(self.over.len()).expect("overflow arena full");
                self.over.push((pos, self.over_head[slot]));
                node
            };
            self.over_head[slot] = node;
            self.note(pos, node | OVER_BIT, s);
        }
        self.min[slot] = self.min[slot].min(pos);
        self.len += 1;
    }

    /// Removes one occurrence of `pos` under `key`; returns whether it
    /// was found. `O(1)` through the position back-pointer (`O(chain)`
    /// in the overflow tier, `O(group)` only when `pos` was the group's
    /// cached minimum and it must be rescanned). Within the bulk segment
    /// the last live entry is swapped into the hole, so segment
    /// iteration order is no longer position-ascending after a removal —
    /// order-sensitive consumers must sort (see `wildcard_pairs`
    /// recomputation in `condep-validate`).
    pub fn remove_key(&mut self, pos: u32, key: &[SymValue]) -> bool {
        debug_assert_eq!(key.len(), self.key_len);
        match self.map.get(key) {
            Some(&slot) => self.remove_at(slot, pos),
            None => false,
        }
    }

    /// [`SymIndex::remove_key`] minus the probe: removes one occurrence
    /// of `pos` from the group addressed by `slot`.
    pub fn remove_at(&mut self, slot: u32, pos: u32) -> bool {
        let rec = match self.at.get(pos as usize) {
            Some(rec) if rec.loc != NONE => *rec,
            _ => return false,
        };
        // The record carries the owning slot — a mismatch means `pos`
        // is indexed under a *different* key.
        if rec.slot != slot {
            return false;
        }
        let loc = rec.loc;
        let slot = slot as usize;
        if loc & OVER_BIT == 0 {
            let loc = loc as usize;
            let (start, live) = (self.bulk_start[slot] as usize, self.bulk_len[slot] as usize);
            debug_assert!(
                loc >= start && loc < start + live && self.bulk[loc] == pos,
                "back-pointer must land on `pos` in its slot's live segment"
            );
            let tail = start + live - 1;
            self.bulk.swap(loc, tail);
            if loc != tail {
                // The entry swapped into the hole moved: retarget it.
                self.at[self.bulk[loc] as usize].loc = loc as u32;
            }
            self.bulk_len[slot] -= 1;
        } else {
            // Unlink from the overflow chain (singly linked, so walk for
            // the predecessor; chains are short streamed growth).
            let target = loc & !OVER_BIT;
            debug_assert_eq!(self.over[target as usize].0, pos);
            let mut prev = NONE;
            let mut node = self.over_head[slot];
            loop {
                if node == NONE {
                    return false;
                }
                if node == target {
                    break;
                }
                prev = node;
                node = self.over[node as usize].1;
            }
            let next = self.over[target as usize].1;
            if prev == NONE {
                self.over_head[slot] = next;
            } else {
                self.over[prev as usize].1 = next;
            }
            self.over[target as usize] = (0, self.free_head);
            self.free_head = target;
        }
        self.at[pos as usize] = ABSENT;
        self.len -= 1;
        if self.min[slot] == pos {
            self.min[slot] = self.rescan_min(slot);
        }
        true
    }

    /// Renumbers one occurrence of `from` to `to` under `key` — the
    /// index-side companion of a swap-based relation deletion. Returns
    /// whether `from` was found. `O(1)` through the position
    /// back-pointer (plus a group rescan when `from` was the cached
    /// minimum).
    pub fn replace_pos(&mut self, from: u32, to: u32, key: &[SymValue]) -> bool {
        debug_assert_eq!(key.len(), self.key_len);
        match self.map.get(key) {
            Some(&slot) => self.replace_at(slot, from, to),
            None => false,
        }
    }

    /// [`SymIndex::replace_pos`] minus the probe: renumbers `from` to
    /// `to` within the group addressed by `slot`.
    pub fn replace_at(&mut self, slot: u32, from: u32, to: u32) -> bool {
        let s = slot;
        let rec = match self.at.get(from as usize) {
            Some(rec) if rec.loc != NONE => *rec,
            _ => return false,
        };
        if rec.slot != s {
            return false;
        }
        let loc = rec.loc;
        let slot = slot as usize;
        if loc & OVER_BIT == 0 {
            let l = loc as usize;
            debug_assert!(
                {
                    let (start, live) =
                        (self.bulk_start[slot] as usize, self.bulk_len[slot] as usize);
                    l >= start && l < start + live && self.bulk[l] == from
                },
                "back-pointer must land on `from` in its slot's live segment"
            );
            self.bulk[l] = to;
        } else {
            let node = (loc & !OVER_BIT) as usize;
            debug_assert_eq!(self.over[node].0, from);
            debug_assert!(
                {
                    let mut n = self.over_head[slot];
                    let mut found = false;
                    while n != NONE {
                        if n as usize == node {
                            found = true;
                            break;
                        }
                        n = self.over[n as usize].1;
                    }
                    found
                },
                "renumbered node must live in the probed key's chain"
            );
            self.over[node].0 = to;
        }
        self.at[from as usize] = ABSENT;
        self.note(to, loc, s);
        if self.min[slot] == from {
            self.min[slot] = self.rescan_min(slot);
        } else {
            self.min[slot] = self.min[slot].min(to);
        }
        true
    }

    /// The positions of tuples whose key equals `key` (empty when none).
    pub fn positions(&self, key: &[SymValue]) -> PosIter<'_> {
        debug_assert_eq!(key.len(), self.key_len);
        match self.map.get(key) {
            Some(&slot) => self.slot_positions(slot as usize),
            None => PosIter {
                bulk: &[],
                over: &self.over,
                node: NONE,
            },
        }
    }

    fn slot_positions(&self, slot: usize) -> PosIter<'_> {
        let (start, live) = (self.bulk_start[slot] as usize, self.bulk_len[slot] as usize);
        PosIter {
            bulk: &self.bulk[start..start + live],
            over: &self.over,
            node: self.over_head[slot],
        }
    }

    /// Does any indexed tuple carry `key`?
    pub fn contains_key(&self, key: &[SymValue]) -> bool {
        self.positions(key).next().is_some()
    }

    /// The smallest position under `key` — the batch sweep's "first
    /// witness" of the key group, independent of mutation history.
    /// `O(1)`: reads the maintained per-slot minimum.
    pub fn min_pos(&self, key: &[SymValue]) -> Option<u32> {
        let &slot = self.map.get(key)?;
        self.min_at(slot)
    }

    /// [`SymIndex::min_pos`] minus the probe: the smallest live position
    /// of the group addressed by `slot` (`None` when emptied).
    #[inline]
    pub fn min_at(&self, slot: u32) -> Option<u32> {
        let m = self.min[slot as usize];
        debug_assert_eq!(
            (m != NONE).then_some(m),
            self.slot_positions(slot as usize).min(),
            "cached minimum diverged from the group contents"
        );
        (m != NONE).then_some(m)
    }

    /// [`SymIndex::positions`] minus the probe: the live positions of the
    /// group addressed by `slot`.
    #[inline]
    pub fn positions_at(&self, slot: u32) -> PosIter<'_> {
        self.slot_positions(slot as usize)
    }

    /// Does the group addressed by `slot` hold any tuple? `O(1)` — reads
    /// the cached minimum, which is `NONE` exactly when the group is
    /// empty.
    #[inline]
    pub fn occupied_at(&self, slot: u32) -> bool {
        self.min[slot as usize] != NONE
    }

    /// The slot handle of the group holding dense position `pos`, if it
    /// is indexed — the probe-free inverse of [`SymIndex::positions_at`].
    /// `O(1)`: a direct read of the per-position slot record, so the
    /// delta engine's delete path never rehashes a resident tuple's key
    /// just to find its group.
    #[inline]
    pub fn slot_of_pos(&self, pos: u32) -> Option<u32> {
        match self.at.get(pos as usize) {
            Some(rec) if rec.loc != NONE => Some(rec.slot),
            _ => None,
        }
    }

    /// Iterator over `(key, positions)` groups in first-seen key order.
    /// Removals can leave a key with no positions; such groups are still
    /// yielded (their iterator is immediately empty).
    pub fn groups(&self) -> impl Iterator<Item = (&[SymValue], PosIter<'_>)> {
        self.keys
            .iter()
            .enumerate()
            .map(|(slot, key)| (key.as_ref(), self.slot_positions(slot)))
    }

    /// Number of distinct keys ever seen (including emptied groups).
    pub fn distinct_keys(&self) -> usize {
        self.keys.len()
    }

    /// Number of indexed tuples.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the index holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The arity of keys in this index.
    pub fn key_len(&self) -> usize {
        self.key_len
    }

    /// Rebuilds the index around its **live** key groups, dropping every
    /// emptied one, and returns how many groups were reclaimed.
    ///
    /// Removals never shrink the index: an emptied group keeps its map
    /// entry, key cells and slot bookkeeping forever, so a long-lived
    /// stream over high-key-churn data grows with the distinct keys ever
    /// seen, not with the live data. Compaction folds the overflow arena
    /// back into one freshly counting-sorted CSR (each surviving segment
    /// comes back position-ascending) and frees the dead slots.
    ///
    /// `O(keys + live positions)`; all live `(key, position)` pairs are
    /// preserved, so probes, removals and renumbers behave identically
    /// afterwards.
    pub fn compact(&mut self) -> usize {
        let seen = self.keys.len();
        let mut live: Vec<(Box<[SymValue]>, Vec<u32>)> = Vec::with_capacity(seen);
        for slot in 0..seen {
            let mut positions: Vec<u32> = self.slot_positions(slot).collect();
            if positions.is_empty() {
                continue;
            }
            positions.sort_unstable();
            live.push((std::mem::take(&mut self.keys[slot]), positions));
        }
        let key_len = self.key_len;
        *self = SymIndex::new(key_len);
        let mut pairs = Vec::new();
        for (key, positions) in live {
            let slot = self.slot_of(&key);
            pairs.extend(positions.into_iter().map(|p| (p, slot)));
        }
        self.scatter_bulk(&pairs);
        seen - self.keys.len()
    }

    /// Rewrites every key cell through `f` and rebuilds the probe map —
    /// the index-side half of an **interner compaction**: when the
    /// owning stream re-interns its live strings, the dense symbols
    /// change and every stored key must be translated to the new
    /// numbering. `f` must be injective on the cells actually stored
    /// (distinct keys stay distinct); position storage is untouched.
    pub fn remap_keys<F>(&mut self, f: F)
    where
        F: Fn(SymValue) -> SymValue,
    {
        self.map.clear();
        for (slot, key) in self.keys.iter_mut().enumerate() {
            for cell in key.iter_mut() {
                *cell = f(*cell);
            }
            self.map.insert(key.clone(), slot as u32);
        }
    }
}

/// Iterator over one key group's positions: the CSR bulk segment first,
/// then the overflow chain.
#[derive(Clone, Debug)]
pub struct PosIter<'a> {
    bulk: &'a [u32],
    over: &'a [(u32, u32)],
    node: u32,
}

impl Iterator for PosIter<'_> {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        if let Some((&p, rest)) = self.bulk.split_first() {
            self.bulk = rest;
            return Some(p);
        }
        if self.node == NONE {
            return None;
        }
        let (p, next) = self.over[self.node as usize];
        self.node = next;
        Some(p)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.bulk.len(), None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use condep_model::{tuple, AttrId, Sym, Value};

    fn rel() -> Relation {
        [
            tuple!["EDI", "UK", 1i64],
            tuple!["EDI", "UK", 2i64],
            tuple!["NYC", "US", 1i64],
        ]
        .into_iter()
        .collect()
    }

    fn probe_vec(idx: &SymIndex, key: &[SymValue]) -> Vec<u32> {
        idx.positions(key).collect()
    }

    #[test]
    fn build_probe_and_groups_agree_with_hash_index() {
        let r = rel();
        let mut interner = Interner::new();
        let idx = SymIndex::build(&r, &[AttrId(0)], &mut interner);
        let edi = [interner.sym_value(&Value::str("EDI")).unwrap()];
        assert_eq!(probe_vec(&idx, &edi), vec![0, 1]);
        assert!(idx.contains_key(&edi));
        assert_eq!(idx.distinct_keys(), 2);
        assert_eq!(idx.len(), 3);
        let reference = crate::HashIndex::build(&r, &[AttrId(0)]);
        assert_eq!(idx.distinct_keys(), reference.distinct_keys());
        for (key, positions) in idx.groups() {
            assert_eq!(key.len(), 1);
            assert!(positions.count() > 0);
        }
    }

    #[test]
    fn mixed_type_composite_keys() {
        let r = rel();
        let mut interner = Interner::new();
        let idx = SymIndex::build(&r, &[AttrId(2), AttrId(1)], &mut interner);
        let key = [
            SymValue::Int(1),
            interner.sym_value(&Value::str("UK")).unwrap(),
        ];
        assert_eq!(probe_vec(&idx, &key), vec![0]);
    }

    #[test]
    fn incremental_insert_extends_groups() {
        let mut interner = Interner::new();
        let mut idx = SymIndex::new(1);
        let attrs = [AttrId(0)];
        idx.insert(0, &tuple!["a", "x"], &attrs, &mut interner);
        idx.insert(1, &tuple!["a", "y"], &attrs, &mut interner);
        idx.insert(2, &tuple!["b", "x"], &attrs, &mut interner);
        idx.insert(3, &tuple!["a", "z"], &attrs, &mut interner);
        let a = [interner.sym_value(&Value::str("a")).unwrap()];
        let mut got = probe_vec(&idx, &a);
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 3]);
        assert_eq!(idx.distinct_keys(), 2);
        assert_eq!(idx.len(), 4);
        assert_eq!(idx.min_pos(&a), Some(0));
    }

    #[test]
    fn zero_width_keys_group_everything() {
        let r = rel();
        let mut interner = Interner::new();
        let idx = SymIndex::build(&r, &[], &mut interner);
        assert_eq!(probe_vec(&idx, &[]), vec![0, 1, 2]);
        assert_eq!(idx.distinct_keys(), 1);
    }

    #[test]
    fn unknown_key_probes_empty() {
        let r = rel();
        let mut interner = Interner::new();
        let idx = SymIndex::build(&r, &[AttrId(0)], &mut interner);
        // A string the interner has never seen cannot even form a key;
        // sym_value signals that with None.
        assert_eq!(interner.sym_value(&Value::str("LON")), None);
        // A well-formed but absent key probes empty.
        assert!(probe_vec(&idx, &[SymValue::Int(99)]).is_empty());
        assert_eq!(idx.min_pos(&[SymValue::Int(99)]), None);
    }

    #[test]
    fn bulk_build_segments_are_position_ascending() {
        // Interleave two keys so their rows alternate; the counting-sort
        // scatter must still emit each segment in ascending order.
        let r: Relation = (0..10i64)
            .map(|i| tuple![if i % 2 == 0 { "even" } else { "odd" }, i])
            .collect();
        let mut interner = Interner::new();
        let idx = SymIndex::build(&r, &[AttrId(0)], &mut interner);
        let even = [interner.sym_value(&Value::str("even")).unwrap()];
        let odd = [interner.sym_value(&Value::str("odd")).unwrap()];
        assert_eq!(probe_vec(&idx, &even), vec![0, 2, 4, 6, 8]);
        assert_eq!(probe_vec(&idx, &odd), vec![1, 3, 5, 7, 9]);
    }

    #[test]
    fn remove_and_replace_maintain_the_multiset() {
        let mut interner = Interner::new();
        let mut idx = SymIndex::new(1);
        let attrs = [AttrId(0)];
        for (pos, t) in [
            tuple!["k", "a"],
            tuple!["k", "b"],
            tuple!["j", "c"],
            tuple!["k", "d"],
        ]
        .iter()
        .enumerate()
        {
            idx.insert(pos as u32, t, &attrs, &mut interner);
        }
        let k = [interner.sym_value(&Value::str("k")).unwrap()];
        let j = [interner.sym_value(&Value::str("j")).unwrap()];
        assert!(idx.remove_key(1, &k));
        assert!(!idx.remove_key(1, &k), "already removed");
        let mut got = probe_vec(&idx, &k);
        got.sort_unstable();
        assert_eq!(got, vec![0, 3]);
        assert_eq!(idx.len(), 3);
        // Renumber 3 → 1 (a swap-removed relation position).
        assert!(idx.replace_pos(3, 1, &k));
        assert_eq!(idx.min_pos(&k), Some(0));
        let mut got = probe_vec(&idx, &k);
        got.sort_unstable();
        assert_eq!(got, vec![0, 1]);
        // Emptied groups stay probeable and report empty.
        assert!(idx.remove_key(2, &j));
        assert!(!idx.contains_key(&j));
        assert_eq!(idx.distinct_keys(), 2);
        // Free-listed overflow nodes are reused.
        idx.insert_key(7, &j);
        assert_eq!(probe_vec(&idx, &j), vec![7]);
        assert!(idx.remove_key(7, &j));
        assert!(!idx.replace_pos(9, 1, &j));
    }

    #[test]
    fn compact_drops_emptied_groups_and_preserves_live_ones() {
        let mut interner = Interner::new();
        let mut idx = SymIndex::new(1);
        let attrs = [AttrId(0)];
        // Churn: 50 keys come and go, two stay.
        for i in 0..50u32 {
            idx.insert(
                i,
                &tuple![format!("gone{i}").as_str(), "x"],
                &attrs,
                &mut interner,
            );
        }
        idx.insert(50, &tuple!["keep", "x"], &attrs, &mut interner);
        idx.insert(51, &tuple!["keep", "y"], &attrs, &mut interner);
        idx.insert(52, &tuple!["also", "z"], &attrs, &mut interner);
        for i in 0..50u32 {
            let key = [interner.sym_value(&Value::str(format!("gone{i}"))).unwrap()];
            assert!(idx.remove_key(i, &key));
        }
        assert_eq!(idx.distinct_keys(), 52, "emptied groups linger");
        assert_eq!(idx.len(), 3);
        let dropped = idx.compact();
        assert_eq!(dropped, 50);
        assert_eq!(idx.distinct_keys(), 2);
        assert_eq!(idx.len(), 3);
        // Live groups survive, position-ascending, and stay mutable.
        let keep = [interner.sym_value(&Value::str("keep")).unwrap()];
        let also = [interner.sym_value(&Value::str("also")).unwrap()];
        assert_eq!(probe_vec(&idx, &keep), vec![50, 51]);
        assert_eq!(idx.min_pos(&keep), Some(50));
        assert_eq!(probe_vec(&idx, &also), vec![52]);
        assert!(idx.remove_key(51, &keep));
        idx.insert_key(53, &also);
        let mut got = probe_vec(&idx, &also);
        got.sort_unstable();
        assert_eq!(got, vec![52, 53]);
        // Idempotent once nothing is dead.
        assert_eq!(idx.compact(), 0);
        assert_eq!(idx.distinct_keys(), 2);
    }

    #[test]
    fn slot_of_pos_tracks_every_mutation() {
        let r = rel();
        let mut interner = Interner::new();
        let mut idx = SymIndex::build(&r, &[AttrId(0)], &mut interner);
        let edi = [interner.sym_value(&Value::str("EDI")).unwrap()];
        let nyc = [interner.sym_value(&Value::str("NYC")).unwrap()];
        let se = idx.probe_slot(&edi).unwrap();
        let sn = idx.probe_slot(&nyc).unwrap();
        // Bulk-built positions resolve to their probed slots.
        assert_eq!(idx.slot_of_pos(0), Some(se));
        assert_eq!(idx.slot_of_pos(1), Some(se));
        assert_eq!(idx.slot_of_pos(2), Some(sn));
        assert_eq!(idx.slot_of_pos(3), None, "never-indexed position");
        // Streaming inserts land in either tier; both are tracked.
        idx.insert(3, &tuple!["EDI", "UK", 3i64], &[AttrId(0)], &mut interner);
        idx.insert(4, &tuple!["NYC", "US", 2i64], &[AttrId(0)], &mut interner);
        assert_eq!(idx.slot_of_pos(3), Some(se));
        assert_eq!(idx.slot_of_pos(4), Some(sn));
        // Removal forgets the position; renumbering follows it.
        assert!(idx.remove_at(se, 1));
        assert_eq!(idx.slot_of_pos(1), None);
        assert!(idx.replace_at(sn, 4, 1));
        assert_eq!(idx.slot_of_pos(4), None);
        assert_eq!(idx.slot_of_pos(1), Some(sn));
        // Compaction renumbers slots but keeps the inverse consistent
        // with fresh probes.
        idx.compact();
        let se = idx.probe_slot(&edi).unwrap();
        let sn = idx.probe_slot(&nyc).unwrap();
        assert_eq!(idx.slot_of_pos(0), Some(se));
        assert_eq!(idx.slot_of_pos(3), Some(se));
        assert_eq!(idx.slot_of_pos(1), Some(sn));
        assert_eq!(idx.slot_of_pos(2), Some(sn));
    }

    #[test]
    fn remap_keys_translates_probes_to_the_new_numbering() {
        let r = rel();
        let mut old = Interner::new();
        let idx_src = SymIndex::build(&r, &[AttrId(0), AttrId(1)], &mut old);
        // Re-intern the live strings in reverse encounter order: every
        // symbol changes, the index must follow.
        let mut fresh = Interner::new();
        let mut remap = vec![None; old.len()];
        for sym in (0..old.len() as u32).rev().map(Sym) {
            remap[sym.0 as usize] = Some(fresh.intern(old.resolve_arc(sym)));
        }
        let mut idx = idx_src;
        idx.remap_keys(|sv| match sv {
            SymValue::Str(s) => SymValue::Str(remap[s.0 as usize].unwrap()),
            other => other,
        });
        let edi = [
            fresh.sym_value(&Value::str("EDI")).unwrap(),
            fresh.sym_value(&Value::str("UK")).unwrap(),
        ];
        assert_eq!(probe_vec(&idx, &edi), vec![0, 1]);
        assert_eq!(idx.min_pos(&edi), Some(0));
        // Old-numbering probes miss: the reversed re-intern changed
        // every symbol, so the stale key addresses different strings.
        let stale = [
            SymValue::Str(old.lookup("EDI").unwrap()),
            SymValue::Str(old.lookup("UK").unwrap()),
        ];
        assert!(!idx.contains_key(&stale));
        // Mutations keep working against the remapped keys.
        assert!(idx.remove_key(0, &edi));
        idx.insert_key(9, &edi);
        let mut got = probe_vec(&idx, &edi);
        got.sort_unstable();
        assert_eq!(got, vec![1, 9]);
    }

    #[test]
    fn streaming_inserts_after_bulk_build_land_in_overflow() {
        let r = rel();
        let mut interner = Interner::new();
        let mut idx = SymIndex::build(&r, &[AttrId(0)], &mut interner);
        // "EDI" segment is not at the tail of the CSR vector, so this
        // lands in the overflow arena; "NYC" is at the tail and grows in
        // place. Either way the group contents must be right.
        idx.insert(3, &tuple!["EDI", "UK", 3i64], &[AttrId(0)], &mut interner);
        idx.insert(4, &tuple!["NYC", "US", 2i64], &[AttrId(0)], &mut interner);
        let edi = [interner.sym_value(&Value::str("EDI")).unwrap()];
        let nyc = [interner.sym_value(&Value::str("NYC")).unwrap()];
        let mut e = probe_vec(&idx, &edi);
        e.sort_unstable();
        assert_eq!(e, vec![0, 1, 3]);
        let mut n = probe_vec(&idx, &nyc);
        n.sort_unstable();
        assert_eq!(n, vec![2, 4]);
        assert_eq!(idx.len(), 5);
        // Removal reaches both tiers.
        assert!(idx.remove_key(3, &edi));
        assert!(idx.remove_key(0, &edi));
        let mut e = probe_vec(&idx, &edi);
        e.sort_unstable();
        assert_eq!(e, vec![1]);
    }
}
