//! Random schema generation (Section 6 experimental setting).

use condep_model::{Attribute, Domain, RelationSchema, Schema};
use rand::Rng;
use std::sync::Arc;

/// Parameters of the schema generator.
#[derive(Clone, Copy, Debug)]
pub struct SchemaGenConfig {
    /// Number of relations (20 in most experiments, up to 100 in
    /// Figure 11(d)).
    pub relations: usize,
    /// Minimum attributes per relation.
    pub attrs_min: usize,
    /// Maximum attributes per relation ("at most 15 attributes").
    pub attrs_max: usize,
    /// `F` — the ratio of finite-domain attributes (0%–25%).
    pub finite_ratio: f64,
    /// Smallest finite-domain size ("2 to 100 elements").
    pub finite_dom_min: usize,
    /// Largest finite-domain size.
    pub finite_dom_max: usize,
}

impl Default for SchemaGenConfig {
    fn default() -> Self {
        SchemaGenConfig {
            relations: 20,
            attrs_min: 3,
            attrs_max: 15,
            finite_ratio: 0.25,
            finite_dom_min: 2,
            finite_dom_max: 100,
        }
    }
}

/// Generates a random schema.
///
/// Every relation keeps its first attribute infinite (a guaranteed
/// join-compatible column for CIND generation); the remaining attributes
/// are finite with probability `F`. Finite domains are integer ranges
/// `{0, …, n−1}`, matching the paper's "each finite domain was set to
/// have 2 to 100 elements".
pub fn random_schema<R: Rng>(cfg: &SchemaGenConfig, rng: &mut R) -> Arc<Schema> {
    let mut relations = Vec::with_capacity(cfg.relations);
    for r in 0..cfg.relations {
        let arity = rng.gen_range(cfg.attrs_min..=cfg.attrs_max.max(cfg.attrs_min));
        let mut attrs = Vec::with_capacity(arity);
        for a in 0..arity {
            let finite = a > 0 && rng.gen_bool(cfg.finite_ratio.clamp(0.0, 1.0));
            let domain = if finite {
                let n = rng.gen_range(cfg.finite_dom_min..=cfg.finite_dom_max);
                Domain::finite_ints(n.max(2))
            } else {
                Domain::string()
            };
            attrs.push(Attribute::new(format!("a{a}"), domain));
        }
        relations
            .push(RelationSchema::new(format!("rel{r}"), attrs).expect("generated names unique"));
    }
    Arc::new(Schema::new(relations).expect("generated names unique"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn respects_relation_and_arity_bounds() {
        let cfg = SchemaGenConfig {
            relations: 20,
            attrs_min: 3,
            attrs_max: 15,
            ..SchemaGenConfig::default()
        };
        let schema = random_schema(&cfg, &mut StdRng::seed_from_u64(1));
        assert_eq!(schema.len(), 20);
        for (_, rs) in schema.iter() {
            assert!(rs.arity() >= 3 && rs.arity() <= 15);
            // First attribute always infinite.
            assert!(!rs.attributes()[0].is_finite());
        }
    }

    #[test]
    fn finite_ratio_zero_gives_all_infinite() {
        let cfg = SchemaGenConfig {
            finite_ratio: 0.0,
            ..SchemaGenConfig::default()
        };
        let schema = random_schema(&cfg, &mut StdRng::seed_from_u64(2));
        assert!(!schema.has_finite_attrs());
    }

    #[test]
    fn finite_ratio_produces_finite_attrs() {
        let cfg = SchemaGenConfig {
            finite_ratio: 0.5,
            relations: 10,
            ..SchemaGenConfig::default()
        };
        let schema = random_schema(&cfg, &mut StdRng::seed_from_u64(3));
        assert!(schema.has_finite_attrs());
        // Domain sizes in [2, 100].
        for (_, rs) in schema.iter() {
            for a in rs.attributes() {
                if let Some(n) = a.domain().size() {
                    assert!((2..=100).contains(&n));
                }
            }
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let cfg = SchemaGenConfig::default();
        let s1 = random_schema(&cfg, &mut StdRng::seed_from_u64(7));
        let s2 = random_schema(&cfg, &mut StdRng::seed_from_u64(7));
        assert_eq!(s1.len(), s2.len());
        for ((_, a), (_, b)) in s1.iter().zip(s2.iter()) {
            assert_eq!(a.arity(), b.arity());
            assert_eq!(a.name(), b.name());
        }
    }
}
