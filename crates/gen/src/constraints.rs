//! Random constraint-set generation (Section 6).
//!
//! Two modes:
//!
//! * **consistent** — constraints are generated around a *hidden
//!   witness*: one tuple per relation, drawn first; every emitted CFD
//!   and CIND is checked (by construction) to hold on the witness
//!   database, so the set is consistent with a known certificate. This
//!   matches the paper's "ensuring that there exists at least one
//!   possible value for each attribute so as to make a witness database
//!   of Σ".
//! * **random** — the same shapes with unconstrained constants; such
//!   sets may or may not be consistent (Figure 11(c) feeds them to the
//!   checkers).

use condep_cfd::NormalCfd;
use condep_core::NormalCind;
use condep_model::{AttrId, Database, PValue, PatternRow, RelId, Schema, Tuple, Value};
use rand::seq::SliceRandom;
use rand::Rng;
use std::sync::Arc;

/// Parameters of the Σ generator.
#[derive(Clone, Copy, Debug)]
pub struct SigmaGenConfig {
    /// `card(Σ)` — total number of constraints.
    pub cardinality: usize,
    /// Fraction of CFDs ("Σ consisted of 75% of CFDs and 25% of CINDs").
    pub cfd_fraction: f64,
    /// Generate a guaranteed-consistent set around a hidden witness.
    pub consistent: bool,
    /// Size of the shared constant pool for infinite-domain attributes
    /// (small pools create value coincidences, which make CINDs with
    /// non-empty `X` lists generable).
    pub constant_pool: usize,
    /// In consistent mode, the probability that a conclusion constant on
    /// a *witness-missing* branch still copies the hidden witness value.
    ///
    /// At `1.0` (the default) all conclusion constants agree with the
    /// witness, so forced values never interlock — this reproduces the
    /// paper's regime ("the difficulty of generating consistent datasets
    /// that were complex enough for the algorithm to fail"). Lowering it
    /// scatters random conclusions that interact into near-traps, making
    /// consistent sets adversarially hard while still consistent — the
    /// `ablation` bench sweeps this.
    pub witness_bias: f64,
}

impl Default for SigmaGenConfig {
    fn default() -> Self {
        SigmaGenConfig {
            cardinality: 1_000,
            cfd_fraction: 0.75,
            consistent: true,
            constant_pool: 10,
            witness_bias: 1.0,
        }
    }
}

/// The hidden witness: one tuple per relation. The database placing each
/// tuple in its relation satisfies every constraint of a `consistent`
/// generation run.
#[derive(Clone, Debug)]
pub struct HiddenWitness {
    tuples: Vec<Tuple>,
}

impl HiddenWitness {
    /// The witness tuple of `rel`.
    pub fn tuple(&self, rel: RelId) -> &Tuple {
        &self.tuples[rel.index()]
    }

    /// Materializes the witness database.
    pub fn database(&self, schema: &Arc<Schema>) -> Database {
        let mut db = Database::empty(schema.clone());
        for (i, t) in self.tuples.iter().enumerate() {
            db.insert(RelId(i as u32), t.clone())
                .expect("witness well-typed");
        }
        db
    }
}

fn pool_value<R: Rng>(pool: usize, rng: &mut R) -> Value {
    Value::str(format!("c{}", rng.gen_range(0..pool.max(1))))
}

fn random_domain_value<R: Rng>(
    schema: &Schema,
    rel: RelId,
    attr: AttrId,
    pool: usize,
    rng: &mut R,
) -> Value {
    let dom = schema
        .relation(rel)
        .expect("rel in range")
        .attribute(attr)
        .expect("attr in range")
        .domain()
        .clone();
    match dom.values() {
        Some(vs) => vs[rng.gen_range(0..vs.len())].clone(),
        None => pool_value(pool, rng),
    }
}

fn draw_witness<R: Rng>(schema: &Schema, pool: usize, rng: &mut R) -> HiddenWitness {
    let tuples = schema
        .iter()
        .map(|(rel, rs)| {
            Tuple::new(
                rs.iter()
                    .map(|(a, _)| random_domain_value(schema, rel, a, pool, rng))
                    .collect::<Vec<_>>(),
            )
        })
        .collect();
    HiddenWitness { tuples }
}

/// Generates one CFD. In consistent mode the hidden witness tuple `w`
/// must satisfy it: either the premise misses `w`, or the conclusion
/// agrees with `w`.
fn generate_cfd<R: Rng>(
    schema: &Schema,
    witness: Option<&HiddenWitness>,
    cfg: &SigmaGenConfig,
    rng: &mut R,
) -> NormalCfd {
    let pool = cfg.constant_pool;
    let rel = RelId(rng.gen_range(0..schema.len()) as u32);
    let rs = schema.relation(rel).expect("rel in range");
    let arity = rs.arity();
    // LHS: 1–3 distinct attributes; RHS: another attribute.
    let mut attrs: Vec<u32> = (0..arity as u32).collect();
    attrs.shuffle(rng);
    let lhs_len = rng.gen_range(1..=3.min(arity.saturating_sub(1)).max(1));
    let lhs: Vec<AttrId> = attrs[..lhs_len].iter().map(|a| AttrId(*a)).collect();
    let rhs = AttrId(attrs[lhs_len.min(attrs.len() - 1)]);

    let w = witness.map(|h| h.tuple(rel));
    // Decide whether the premise should match the witness.
    let premise_matches = w.is_none() || rng.gen_bool(0.5);
    let mut cells = Vec::with_capacity(lhs.len());
    let mut actually_matches = true;
    for a in &lhs {
        let wildcard = rng.gen_bool(0.5);
        if wildcard {
            cells.push(PValue::Any);
            continue;
        }
        let v = match (w, premise_matches) {
            (Some(w), true) => w[*a].clone(),
            (Some(w), false) => {
                // A constant different from the witness value, if the
                // domain offers one.
                let dom = rs.attribute(*a).expect("attr").domain().clone();
                dom.fresh_value([&w[*a]]).unwrap_or_else(|| w[*a].clone())
            }
            (None, _) => random_domain_value(schema, rel, *a, pool, rng),
        };
        if let Some(w) = w {
            if w[*a] != v {
                actually_matches = false;
            }
        }
        cells.push(PValue::Const(v));
    }
    let rhs_pat = if rng.gen_bool(0.4) {
        PValue::Any
    } else {
        match (w, actually_matches) {
            (Some(w), true) => PValue::Const(w[rhs].clone()),
            // Premise misses the witness: any conclusion keeps the set
            // consistent, but conclusions that disagree with the witness
            // interlock into near-traps. `witness_bias` controls how
            // often that happens (1.0 = never, the paper's regime).
            (Some(w), false) if rng.gen_bool(cfg.witness_bias.clamp(0.0, 1.0)) => {
                PValue::Const(w[rhs].clone())
            }
            _ => PValue::Const(random_domain_value(schema, rel, rhs, pool, rng)),
        }
    };
    NormalCfd::new(rel, lhs, PatternRow::new(cells), rhs, rhs_pat)
}

/// Picks up to `want` matched column pairs `(xi, yi)` between two
/// relations such that both sides are infinite-domain (always
/// join-compatible) and — in consistent mode — the witness values agree.
fn matched_columns<R: Rng>(
    schema: &Schema,
    lhs_rel: RelId,
    rhs_rel: RelId,
    witness: Option<&HiddenWitness>,
    want: usize,
    rng: &mut R,
) -> Vec<(AttrId, AttrId)> {
    let ls = schema.relation(lhs_rel).expect("rel");
    let rs = schema.relation(rhs_rel).expect("rel");
    let mut candidates: Vec<(AttrId, AttrId)> = Vec::new();
    for (xa, x_attr) in ls.iter() {
        if x_attr.is_finite() {
            continue;
        }
        for (ya, y_attr) in rs.iter() {
            if y_attr.is_finite() {
                continue;
            }
            if lhs_rel == rhs_rel && xa == ya {
                continue;
            }
            let ok = match witness {
                None => true,
                Some(h) => h.tuple(lhs_rel)[xa] == h.tuple(rhs_rel)[ya],
            };
            if ok {
                candidates.push((xa, ya));
            }
        }
    }
    candidates.shuffle(rng);
    // Keep distinct attributes on both sides.
    let mut out: Vec<(AttrId, AttrId)> = Vec::new();
    for (xa, ya) in candidates {
        if out.len() >= want {
            break;
        }
        if out.iter().any(|(x, y)| *x == xa || *y == ya) {
            continue;
        }
        out.push((xa, ya));
    }
    out
}

/// Generates one CIND. In consistent mode the hidden witness database
/// must satisfy it: either the trigger misses the source witness
/// (guaranteed by an explicit trigger-breaking `Xp` entry), or the
/// matched columns and RHS pattern agree with the target witness.
fn generate_cind<R: Rng>(
    schema: &Schema,
    witness: Option<&HiddenWitness>,
    cfg: &SigmaGenConfig,
    rng: &mut R,
) -> NormalCind {
    let pool = cfg.constant_pool;
    let lhs_rel = RelId(rng.gen_range(0..schema.len()) as u32);
    let rhs_rel = RelId(rng.gen_range(0..schema.len()) as u32);
    let ls = schema.relation(lhs_rel).expect("rel");
    let rs = schema.relation(rhs_rel).expect("rel");

    // Decide whether the CIND should trigger on the witness. A
    // non-triggering CIND needs an Xp entry whose constant differs from
    // the witness value; find one up front, falling back to triggering
    // when no attribute offers an alternative value.
    let mut triggering = witness.is_none() || rng.gen_bool(0.5);
    let mut forced_break: Option<(AttrId, Value)> = None;
    if !triggering {
        let h = witness.expect("non-triggering implies consistent mode");
        let mut cands: Vec<AttrId> = ls.iter().map(|(a, _)| a).collect();
        cands.shuffle(rng);
        for a in cands {
            let dom = ls.attribute(a).expect("attr").domain().clone();
            if let Some(v) = dom.fresh_value([&h.tuple(lhs_rel)[a]]) {
                forced_break = Some((a, v));
                break;
            }
        }
        if forced_break.is_none() {
            triggering = true;
        }
    }

    // Matched columns. For triggering consistent CINDs the witness values
    // must agree across the pair; otherwise any infinite pair works.
    let want_x = rng.gen_range(0..=2usize);
    let witness_for_pairs = if triggering { witness } else { None };
    let mut pairs = matched_columns(schema, lhs_rel, rhs_rel, witness_for_pairs, want_x, rng);
    if let Some((break_attr, _)) = &forced_break {
        pairs.retain(|(xa, _)| xa != break_attr);
    }
    let x: Vec<AttrId> = pairs.iter().map(|(a, _)| *a).collect();
    let y: Vec<AttrId> = pairs.iter().map(|(_, b)| *b).collect();

    // Xp: the trigger-breaking entry (if any) plus 0–2 extra conditions.
    let mut xp: Vec<(AttrId, Value)> = Vec::new();
    if let Some(pair) = forced_break.clone() {
        xp.push(pair);
    }
    let mut xp_candidates: Vec<AttrId> = ls
        .iter()
        .map(|(a, _)| a)
        .filter(|a| !x.contains(a) && !xp.iter().any(|(b, _)| b == a))
        .collect();
    xp_candidates.shuffle(rng);
    let xp_len = rng.gen_range(0..=2.min(xp_candidates.len()));
    for a in xp_candidates.into_iter().take(xp_len) {
        let v = match (witness, triggering) {
            // Triggering: the condition must hold on the witness.
            (Some(h), true) => h.tuple(lhs_rel)[a].clone(),
            // Non-triggering: the break is already in place, anything
            // goes.
            _ => random_domain_value(schema, lhs_rel, a, pool, rng),
        };
        xp.push((a, v));
    }

    // Yp: 0–3 conditions on attributes outside Y; for a triggering
    // consistent CIND they must hold on the target witness.
    let mut yp: Vec<(AttrId, Value)> = Vec::new();
    let mut yp_candidates: Vec<AttrId> = rs
        .iter()
        .map(|(a, _)| a)
        .filter(|a| !y.contains(a))
        .collect();
    yp_candidates.shuffle(rng);
    let yp_len = rng.gen_range(0..=3.min(yp_candidates.len()));
    for a in yp_candidates.into_iter().take(yp_len) {
        let v = match (witness, triggering) {
            (Some(h), true) => h.tuple(rhs_rel)[a].clone(),
            // Non-triggering CINDs may demand arbitrary target patterns,
            // but witness-disagreeing demands interlock with the CFDs
            // during the chase — `witness_bias` controls them too.
            (Some(h), false) if rng.gen_bool(cfg.witness_bias.clamp(0.0, 1.0)) => {
                h.tuple(rhs_rel)[a].clone()
            }
            _ => random_domain_value(schema, rhs_rel, a, pool, rng),
        };
        yp.push((a, v));
    }

    NormalCind::new(lhs_rel, rhs_rel, x, y, xp, yp)
}

/// Generates Σ. Returns the CFDs, the CINDs, and — in consistent mode —
/// the hidden witness certifying consistency.
pub fn generate_sigma<R: Rng>(
    schema: &Arc<Schema>,
    cfg: &SigmaGenConfig,
    rng: &mut R,
) -> (Vec<NormalCfd>, Vec<NormalCind>, Option<HiddenWitness>) {
    let witness = cfg
        .consistent
        .then(|| draw_witness(schema, cfg.constant_pool, rng));
    let n_cfds = ((cfg.cardinality as f64) * cfg.cfd_fraction.clamp(0.0, 1.0)).round() as usize;
    let n_cinds = cfg.cardinality.saturating_sub(n_cfds);
    let mut cfds = Vec::with_capacity(n_cfds);
    for _ in 0..n_cfds {
        cfds.push(generate_cfd(schema, witness.as_ref(), cfg, rng));
    }
    let mut cinds = Vec::with_capacity(n_cinds);
    for _ in 0..n_cinds {
        cinds.push(generate_cind(schema, witness.as_ref(), cfg, rng));
    }
    (cfds, cinds, witness)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{random_schema, SchemaGenConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn schema(seed: u64, finite_ratio: f64) -> Arc<Schema> {
        let cfg = SchemaGenConfig {
            relations: 8,
            attrs_min: 3,
            attrs_max: 8,
            finite_ratio,
            finite_dom_min: 2,
            finite_dom_max: 10,
        };
        random_schema(&cfg, &mut StdRng::seed_from_u64(seed))
    }

    #[test]
    fn consistent_sigma_is_satisfied_by_its_witness() {
        for seed in 0..10u64 {
            let schema = schema(seed, 0.25);
            let cfg = SigmaGenConfig {
                cardinality: 120,
                consistent: true,
                ..SigmaGenConfig::default()
            };
            let mut rng = StdRng::seed_from_u64(seed * 31 + 1);
            let (cfds, cinds, witness) = generate_sigma(&schema, &cfg, &mut rng);
            let witness = witness.expect("consistent mode");
            let db = witness.database(&schema);
            assert!(
                condep_cfd::satisfy::satisfies_all(&db, &cfds),
                "witness must satisfy all generated CFDs (seed {seed})"
            );
            assert!(
                condep_core::satisfy::satisfies_all(&db, &cinds),
                "witness must satisfy all generated CINDs (seed {seed})"
            );
        }
    }

    #[test]
    fn cardinality_split_matches_the_fraction() {
        let schema = schema(1, 0.2);
        let cfg = SigmaGenConfig {
            cardinality: 200,
            cfd_fraction: 0.75,
            ..SigmaGenConfig::default()
        };
        let (cfds, cinds, _) = generate_sigma(&schema, &cfg, &mut StdRng::seed_from_u64(2));
        assert_eq!(cfds.len(), 150);
        assert_eq!(cinds.len(), 50);
    }

    #[test]
    fn random_mode_emits_no_witness() {
        let schema = schema(3, 0.25);
        let cfg = SigmaGenConfig {
            cardinality: 50,
            consistent: false,
            ..SigmaGenConfig::default()
        };
        let (cfds, cinds, witness) = generate_sigma(&schema, &cfg, &mut StdRng::seed_from_u64(4));
        assert!(witness.is_none());
        assert_eq!(cfds.len() + cinds.len(), 50);
    }

    #[test]
    fn cind_matched_columns_are_infinite_and_distinct() {
        let schema = schema(5, 0.5);
        let cfg = SigmaGenConfig {
            cardinality: 200,
            consistent: false,
            ..SigmaGenConfig::default()
        };
        let (_, cinds, _) = generate_sigma(&schema, &cfg, &mut StdRng::seed_from_u64(6));
        for c in &cinds {
            let ls = schema.relation(c.lhs_rel()).unwrap();
            let rs = schema.relation(c.rhs_rel()).unwrap();
            for (xa, ya) in c.x().iter().zip(c.y()) {
                assert!(!ls.attribute(*xa).unwrap().is_finite());
                assert!(!rs.attribute(*ya).unwrap().is_finite());
            }
            // Distinct x attrs and distinct y attrs.
            let mut xs = c.x().to_vec();
            xs.dedup();
            assert_eq!(xs.len(), c.x().len());
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let schema = schema(7, 0.25);
        let cfg = SigmaGenConfig::default();
        let (c1, i1, _) = generate_sigma(&schema, &cfg, &mut StdRng::seed_from_u64(9));
        let (c2, i2, _) = generate_sigma(&schema, &cfg, &mut StdRng::seed_from_u64(9));
        assert_eq!(c1, c2);
        assert_eq!(i1, i2);
    }

    #[test]
    fn constants_lie_in_their_domains() {
        let schema = schema(11, 0.4);
        let cfg = SigmaGenConfig {
            cardinality: 150,
            consistent: false,
            ..SigmaGenConfig::default()
        };
        let (cfds, cinds, _) = generate_sigma(&schema, &cfg, &mut StdRng::seed_from_u64(12));
        for cfd in &cfds {
            let rs = schema.relation(cfd.rel()).unwrap();
            for (a, v) in cfd.pattern_constants() {
                assert!(rs.attribute(a).unwrap().domain().contains(&v));
            }
        }
        for cind in &cinds {
            for (rel, a, v) in cind.constants() {
                let rs = schema.relation(rel).unwrap();
                assert!(rs.attribute(a).unwrap().domain().contains(v));
            }
        }
    }
}
