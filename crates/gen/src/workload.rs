//! Workload-shaped mutation generators for the scenario scoreboard.
//!
//! Where [`data`](crate::data) builds *instances*, this module builds
//! *schedules*: deterministic streams of inserts/deletes against a
//! planted database ([`churn_plan`]) and targeted majority-flipping
//! noise ([`adversarial_majority_dirt`]) — each with machine-checkable
//! ground truth so a harness can score what a stream/repair run did
//! against what the generator actually planted.

use crate::data::{PlantedDatabase, PlantedSigmaConfig};
use condep_model::{RelId, Tuple, Value};
use rand::Rng;
use std::collections::VecDeque;

/// Parameters of [`churn_plan`].
#[derive(Clone, Copy, Debug)]
pub struct ChurnConfig {
    /// Total mutations to schedule (inserts + deletes).
    pub ops: usize,
    /// Steady-state window size (mutations per `apply_deltas` batch).
    /// `1` degenerates to a single-mutation schedule.
    pub window: usize,
    /// When non-zero, every 4th window is a *burst* of this many
    /// mutations instead of `window` — the bursty-churn scenario's
    /// latency-tail driver. `0` keeps every window at `window`.
    pub burst: usize,
    /// Key-skew exponent: class draws for pair 0 follow
    /// `⌊u^(1+skew) · cardinality⌋` for uniform `u`, so `0.0` is
    /// uniform and larger values concentrate churn on the low classes
    /// (hot keys). Negative values are treated as `0.0`.
    pub skew: f64,
    /// Probability that a scheduled insert breaks pair 0's value lock
    /// (its `d0` class drawn ≠ its `k0` class) — a guaranteed new
    /// violation against the planted variable FD. `0.0` keeps every
    /// insert clean.
    pub dirt_rate: f64,
}

impl Default for ChurnConfig {
    fn default() -> Self {
        ChurnConfig {
            ops: 1024,
            window: 16,
            burst: 0,
            skew: 0.0,
            dirt_rate: 0.0,
        }
    }
}

/// One scheduled mutation against the planted `fact` relation.
#[derive(Clone, Debug, PartialEq)]
pub enum ChurnOp {
    /// Insert this tuple.
    Insert(Tuple),
    /// Delete this tuple (always a tuple a *prior* op of the same plan
    /// inserted, so replaying the plan in order keeps every delete
    /// effective).
    Delete(Tuple),
}

/// A deterministic mutation schedule plus its ground truth.
#[derive(Clone, Debug, PartialEq)]
pub struct ChurnPlan {
    /// The relation every op targets (the planted `fact`).
    pub rel: RelId,
    /// The schedule, pre-batched into `apply_deltas` windows. Window
    /// sizes follow [`ChurnConfig::window`]/[`ChurnConfig::burst`];
    /// the last window may be short.
    pub windows: Vec<Vec<ChurnOp>>,
    /// Ground truth: how many scheduled inserts break pair 0's value
    /// lock (each introduces at least one violation on arrival).
    pub dirty_inserts: usize,
    /// Ground truth: pair-0 class draws per class, across all
    /// scheduled inserts — the skew histogram.
    pub class_draws: Vec<u64>,
}

impl ChurnPlan {
    /// Total scheduled mutations.
    pub fn ops(&self) -> usize {
        self.windows.iter().map(Vec::len).sum()
    }
}

/// Draws a class in `0..cardinality` skewed toward low classes:
/// `⌊u^(1+skew) · cardinality⌋` for uniform `u ∈ [0,1)`. `skew ≤ 0`
/// is the uniform draw.
fn skewed_class<R: Rng>(rng: &mut R, cardinality: usize, skew: f64) -> usize {
    if skew <= 0.0 {
        return rng.gen_range(0..cardinality);
    }
    // 53 uniform mantissa bits → u ∈ [0, 1).
    let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
    let x = u.powf(1.0 + skew);
    ((x * cardinality as f64) as usize).min(cardinality - 1)
}

/// Builds a deterministic churn schedule against `planted`'s `fact`
/// relation: fresh inserts (ids `c0, c1, …` — disjoint from the
/// planted `t{i}` namespace) whose pair-0 class follows the configured
/// skew, interleaved with deletes of previously scheduled inserts
/// (every 3rd op, FIFO), pre-batched into windows per
/// [`ChurnConfig::window`]/[`ChurnConfig::burst`].
///
/// Inserts honor every pair's value lock except when the dirt coin
/// ([`ChurnConfig::dirt_rate`]) fires, in which case pair 0's
/// dependent cell is drawn from a *different* class than its key —
/// ground truth for violation-introduction counts
/// ([`ChurnPlan::dirty_inserts`]).
///
/// Deterministic for a fixed `(planted, cfg, seed)`.
pub fn churn_plan<R: Rng>(
    planted: &PlantedDatabase,
    sigma: &PlantedSigmaConfig,
    cfg: &ChurnConfig,
    rng: &mut R,
) -> ChurnPlan {
    assert!(cfg.window >= 1, "windows hold at least one mutation");
    let card = sigma.pair_cardinality;
    let rel = planted.db.schema().rel_id("fact").expect("planted shape");

    let mut windows = Vec::new();
    let mut current: Vec<ChurnOp> = Vec::new();
    let mut pending: VecDeque<Tuple> = VecDeque::new();
    let mut class_draws = vec![0u64; card];
    let mut dirty_inserts = 0usize;
    let mut serial = 0usize;

    let window_quota = |w: usize| {
        if cfg.burst > 0 && w % 4 == 3 {
            cfg.burst.max(1)
        } else {
            cfg.window
        }
    };

    for op in 0..cfg.ops {
        if op % 3 == 2 && !pending.is_empty() {
            let victim = pending.pop_front().expect("non-empty");
            current.push(ChurnOp::Delete(victim));
        } else {
            let mut values = Vec::with_capacity(1 + 2 * sigma.fd_pairs);
            values.push(Value::str(format!("c{serial}")));
            serial += 1;
            for p in 0..sigma.fd_pairs {
                let h = if p == 0 {
                    let h = skewed_class(rng, card, cfg.skew);
                    class_draws[h] += 1;
                    h
                } else {
                    rng.gen_range(0..card)
                };
                values.push(Value::str(format!("k{p}_{h}")));
                let g = if p == 0 && cfg.dirt_rate > 0.0 && rng.gen_bool(cfg.dirt_rate) {
                    dirty_inserts += 1;
                    // Any class but `h`: the lock is guaranteed broken.
                    (h + 1 + rng.gen_range(0..card - 1)) % card
                } else {
                    h
                };
                values.push(Value::str(format!("d{p}_{g}")));
            }
            let t = Tuple::new(values);
            pending.push_back(t.clone());
            current.push(ChurnOp::Insert(t));
        }
        if current.len() >= window_quota(windows.len()) {
            windows.push(std::mem::take(&mut current));
        }
    }
    if !current.is_empty() {
        windows.push(current);
    }

    ChurnPlan {
        rel,
        windows,
        dirty_inserts,
        class_draws,
    }
}

/// Parameters of [`adversarial_majority_dirt`].
#[derive(Clone, Copy, Debug)]
pub struct AdversarialDirtConfig {
    /// How many `(pair, class)` slots to poison. Slots round-robin the
    /// stable pairs and walk up through the non-constant classes, so
    /// `classes ≤ stable_pairs · (pair_cardinality −
    /// constant_rows_per_pair)` must hold.
    pub classes: usize,
    /// Conflicting copies injected per poisoned class, all agreeing on
    /// one *wrong* dependent value. Choose `copies` above the class's
    /// clean support and a count-based majority heuristic flips: it
    /// keeps the dirty value and "repairs" the clean rows.
    pub copies: usize,
}

/// Ground truth for one poisoned equivalence class.
#[derive(Clone, Debug)]
pub struct PoisonedClass {
    /// The poisoned column pair.
    pub pair: usize,
    /// The poisoned class index within the pair.
    pub class: usize,
    /// The shared key value (`k{p}_{h}`) of the class.
    pub key: Value,
    /// The planted-clean dependent value (`d{p}_{h}`) — what a correct
    /// repair should converge the class to.
    pub clean_value: Value,
    /// The injected dependent value (`adv{p}_{h}`) — what a fooled
    /// majority vote converges to instead.
    pub dirty_value: Value,
    /// Clean resident rows of this class in the planted instance (the
    /// honest votes).
    pub clean_rows: usize,
    /// Conflicting copies actually inserted (the dishonest votes).
    pub injected: usize,
}

/// A poisoned instance plus its per-class ground truth.
#[derive(Clone, Debug)]
pub struct AdversarialDatabase {
    /// The planted instance with the poison rows appended.
    pub db: condep_model::Database,
    /// One entry per poisoned `(pair, class)` slot.
    pub poisoned: Vec<PoisonedClass>,
}

/// Injects **majority-flipping** dirt: for each targeted `(pair,
/// class)` slot, inserts [`AdversarialDirtConfig::copies`] fresh rows
/// that all share the class key and all agree on one wrong dependent
/// value. Unlike [`dirtied_database`](crate::data::dirtied_database)'s
/// independent typos, the conflicting rows *coordinate* — when they
/// outnumber the class's clean support, a count-based majority repair
/// heuristic elects the dirty value and edits the clean rows, and the
/// returned ground truth lets a harness count exactly how many classes
/// flipped.
///
/// Only stable (non-drifting) pairs and non-constant classes are
/// targeted: constant tableau rows pin their class's dependent value
/// by pattern, which a majority vote cannot flip, so poisoning them
/// would not probe the heuristic. Other pairs of each poison row keep
/// their value locks — every introduced violation is attributable to
/// its slot.
///
/// Deterministic for a fixed `(planted, cfg, seed)`.
pub fn adversarial_majority_dirt<R: Rng>(
    planted: &PlantedDatabase,
    sigma: &PlantedSigmaConfig,
    cfg: &AdversarialDirtConfig,
    rng: &mut R,
) -> AdversarialDatabase {
    let stable_pairs = sigma.fd_pairs - sigma.drift_pairs;
    assert!(stable_pairs >= 1, "need a stable pair to poison");
    let free_classes = sigma.pair_cardinality - sigma.constant_rows_per_pair;
    assert!(
        cfg.classes <= stable_pairs * free_classes,
        "not enough non-constant (pair, class) slots to poison"
    );

    let mut db = planted.db.clone();
    let schema = db.schema().clone();
    let fact = schema.rel_id("fact").expect("planted shape");
    let fact_rs = schema.relation(fact).expect("in range");

    // Classes each pair gets poisoned on — the *other*-pair cells of a
    // poison row must avoid them, or one slot's filler rows would cast
    // extra clean votes in another slot's election and skew its ground
    // truth.
    let mut poisoned_on_pair = vec![std::collections::BTreeSet::new(); sigma.fd_pairs];
    for i in 0..cfg.classes {
        poisoned_on_pair[i % stable_pairs].insert(sigma.constant_rows_per_pair + i / stable_pairs);
    }
    let safe_classes: Vec<Vec<usize>> = poisoned_on_pair
        .iter()
        .map(|hit| {
            (0..sigma.pair_cardinality)
                .filter(|h| !hit.contains(h))
                .collect()
        })
        .collect();
    assert!(
        safe_classes.iter().all(|s| !s.is_empty()),
        "every pair needs at least one unpoisoned class for filler cells"
    );

    let mut poisoned = Vec::with_capacity(cfg.classes);
    let mut serial = 0usize;
    for i in 0..cfg.classes {
        let pair = i % stable_pairs;
        let class = sigma.constant_rows_per_pair + i / stable_pairs;
        let key = Value::str(format!("k{pair}_{class}"));
        let clean_value = Value::str(format!("d{pair}_{class}"));
        let dirty_value = Value::str(format!("adv{pair}_{class}"));

        let k_attr = fact_rs.attr_id(&format!("k{pair}")).expect("planted");
        let clean_rows = db
            .relation(fact)
            .iter()
            .filter(|t| t[k_attr] == key)
            .count();

        let mut injected = 0usize;
        for _ in 0..cfg.copies {
            let mut values = Vec::with_capacity(1 + 2 * sigma.fd_pairs);
            values.push(Value::str(format!("adv{serial}")));
            serial += 1;
            for (q, safe) in safe_classes.iter().enumerate().take(sigma.fd_pairs) {
                if q == pair {
                    values.push(key.clone());
                    values.push(dirty_value.clone());
                } else {
                    let g = safe[rng.gen_range(0..safe.len())];
                    values.push(Value::str(format!("k{q}_{g}")));
                    values.push(Value::str(format!("d{q}_{g}")));
                }
            }
            if db.insert(fact, Tuple::new(values)).expect("well-typed") {
                injected += 1;
            }
        }

        poisoned.push(PoisonedClass {
            pair,
            class,
            key,
            clean_value,
            dirty_value,
            clean_rows,
            injected,
        });
    }

    AdversarialDatabase { db, poisoned }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::clean_database_with_hidden_sigma;
    use rand::{rngs::StdRng, SeedableRng};

    fn sigma() -> PlantedSigmaConfig {
        PlantedSigmaConfig {
            fd_pairs: 2,
            pair_cardinality: 8,
            constant_rows_per_pair: 2,
            cind_count: 1,
            tuples: 400,
            ..Default::default()
        }
    }

    #[test]
    fn churn_plan_is_deterministic_for_a_fixed_seed() {
        let cfg = sigma();
        let churn = ChurnConfig {
            ops: 500,
            window: 16,
            burst: 64,
            skew: 1.5,
            dirt_rate: 0.1,
        };
        for seed in 0..5u64 {
            let planted = clean_database_with_hidden_sigma(&cfg, &mut StdRng::seed_from_u64(seed));
            let a = churn_plan(
                &planted,
                &cfg,
                &churn,
                &mut StdRng::seed_from_u64(seed ^ 0xC0),
            );
            let b = churn_plan(
                &planted,
                &cfg,
                &churn,
                &mut StdRng::seed_from_u64(seed ^ 0xC0),
            );
            assert_eq!(a, b);
        }
    }

    #[test]
    fn churn_plan_batches_bursts_and_conserves_ops() {
        let cfg = sigma();
        let planted = clean_database_with_hidden_sigma(&cfg, &mut StdRng::seed_from_u64(7));
        let churn = ChurnConfig {
            ops: 1000,
            window: 16,
            burst: 128,
            ..Default::default()
        };
        let plan = churn_plan(&planted, &cfg, &churn, &mut StdRng::seed_from_u64(8));
        assert_eq!(plan.ops(), 1000);
        for (w, window) in plan.windows.iter().enumerate() {
            let quota = if w % 4 == 3 { 128 } else { 16 };
            if w + 1 < plan.windows.len() {
                assert_eq!(window.len(), quota, "window {w}");
            } else {
                assert!(window.len() <= quota, "last window may be short");
            }
        }
        // Every delete targets an earlier insert of the same plan.
        let mut live: Vec<&Tuple> = Vec::new();
        for op in plan.windows.iter().flatten() {
            match op {
                ChurnOp::Insert(t) => live.push(t),
                ChurnOp::Delete(t) => {
                    let at = live.iter().position(|l| *l == t).expect("prior insert");
                    live.remove(at);
                }
            }
        }
    }

    #[test]
    fn skew_concentrates_class_draws_and_uniform_does_not() {
        let cfg = PlantedSigmaConfig {
            pair_cardinality: 64,
            ..sigma()
        };
        let planted = clean_database_with_hidden_sigma(&cfg, &mut StdRng::seed_from_u64(3));
        let run = |skew: f64| {
            let churn = ChurnConfig {
                ops: 6000,
                window: 64,
                skew,
                ..Default::default()
            };
            churn_plan(&planted, &cfg, &churn, &mut StdRng::seed_from_u64(4)).class_draws
        };
        let skewed = run(2.0);
        let uniform = run(0.0);
        let mean = |d: &[u64]| d.iter().sum::<u64>() as f64 / d.len() as f64;
        let max = |d: &[u64]| *d.iter().max().unwrap() as f64;
        assert!(
            max(&skewed) > 3.0 * mean(&skewed),
            "skew 2.0 concentrates on hot classes: max {} mean {}",
            max(&skewed),
            mean(&skewed)
        );
        assert!(
            max(&uniform) < 2.5 * mean(&uniform),
            "uniform draws stay flat: max {} mean {}",
            max(&uniform),
            mean(&uniform)
        );
    }

    #[test]
    fn dirt_rate_ground_truth_matches_the_scheduled_lock_breaks() {
        let cfg = sigma();
        let planted = clean_database_with_hidden_sigma(&cfg, &mut StdRng::seed_from_u64(11));
        let churn = ChurnConfig {
            ops: 2000,
            window: 32,
            dirt_rate: 0.1,
            ..Default::default()
        };
        let plan = churn_plan(&planted, &cfg, &churn, &mut StdRng::seed_from_u64(12));
        // Structural recount: inserts whose pair-0 d-class ≠ k-class.
        let fact_rs = planted.db.schema().relation(plan.rel).unwrap();
        let k0 = fact_rs.attr_id("k0").unwrap();
        let d0 = fact_rs.attr_id("d0").unwrap();
        let mut broken = 0usize;
        let mut inserts = 0usize;
        for op in plan.windows.iter().flatten() {
            if let ChurnOp::Insert(t) = op {
                inserts += 1;
                let k = t[k0].as_str().unwrap().to_string();
                let d = t[d0].as_str().unwrap().to_string();
                if k.trim_start_matches("k0_") != d.trim_start_matches("d0_") {
                    broken += 1;
                }
            }
        }
        assert_eq!(plan.dirty_inserts, broken);
        let rate = broken as f64 / inserts as f64;
        assert!((0.03..=0.25).contains(&rate), "observed dirt rate {rate}");
    }

    #[test]
    fn adversarial_dirt_flips_class_majorities_with_ground_truth() {
        let cfg = PlantedSigmaConfig {
            fd_pairs: 2,
            pair_cardinality: 16,
            constant_rows_per_pair: 2,
            cind_count: 0,
            tuples: 600,
            ..Default::default()
        };
        let planted = clean_database_with_hidden_sigma(&cfg, &mut StdRng::seed_from_u64(21));
        let adv = AdversarialDirtConfig {
            classes: 4,
            copies: 80,
        };
        let poisoned =
            adversarial_majority_dirt(&planted, &cfg, &adv, &mut StdRng::seed_from_u64(22));
        let again = adversarial_majority_dirt(&planted, &cfg, &adv, &mut StdRng::seed_from_u64(22));
        assert_eq!(
            poisoned.db.total_tuples(),
            again.db.total_tuples(),
            "deterministic"
        );
        assert_eq!(poisoned.poisoned.len(), 4);

        let fact = poisoned.db.schema().rel_id("fact").unwrap();
        let fact_rs = poisoned.db.schema().relation(fact).unwrap();
        for slot in &poisoned.poisoned {
            assert_eq!(slot.injected, adv.copies, "unique ids never collide");
            assert!(
                slot.class >= cfg.constant_rows_per_pair,
                "constant classes are never poisoned"
            );
            let k = fact_rs.attr_id(&format!("k{}", slot.pair)).unwrap();
            let d = fact_rs.attr_id(&format!("d{}", slot.pair)).unwrap();
            let (mut dirty, mut clean) = (0usize, 0usize);
            for t in poisoned.db.relation(fact).iter() {
                if t[k] == slot.key {
                    if t[d] == slot.dirty_value {
                        dirty += 1;
                    } else if t[d] == slot.clean_value {
                        clean += 1;
                    }
                }
            }
            assert_eq!(dirty, slot.injected);
            assert_eq!(clean, slot.clean_rows);
            // The poison is a strict majority: the precondition for
            // flipping a count-based repair vote.
            assert!(
                dirty > clean,
                "pair {} class {}: {dirty} dirty vs {clean} clean",
                slot.pair,
                slot.class
            );
        }
        let total: usize = poisoned.poisoned.iter().map(|p| p.injected).sum();
        assert_eq!(
            poisoned.db.total_tuples(),
            planted.db.total_tuples() + total
        );
    }
}
