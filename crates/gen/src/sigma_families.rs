//! Seeded Σ families with **known** static-analysis outcomes.
//!
//! Each [`SigmaFamily`] is a small hand-shaped constraint set whose
//! verdict under `condep-analyze` is forced by construction — the
//! expectation is part of the family, so scenario harnesses can gate
//! verdict counts and unsat-core sizes *exactly* rather than loosely.
//! The seed varies the inessential surface (constant names, witness
//! draws) without ever moving a family off its expected verdict.
//!
//! This crate deliberately does **not** depend on `condep-analyze`;
//! the families are plain data plus an expectation, and the analyzer's
//! own tests / the `sigma_lint` scoreboard scenario close the loop.

use condep_cfd::NormalCfd;
use condep_core::NormalCind;
use condep_model::{Domain, PValue, PatternRow, Schema, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

use crate::constraints::{generate_sigma, SigmaGenConfig};
use crate::schema::{random_schema, SchemaGenConfig};

/// What the static analyzer must say about a family.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExpectedVerdict {
    /// A witness database exists and the analyzer finds it.
    Sat,
    /// Provably inconsistent, with a minimal core of exactly
    /// [`FamilyExpectation::core_size`] CFDs.
    Unsat,
    /// The budgeted chase must give up — the family is crafted so no
    /// sound polynomial procedure can settle it (Theorem 4.2 territory).
    Unknown,
}

/// The exact outcome a family is constructed to produce.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FamilyExpectation {
    /// The forced verdict.
    pub verdict: ExpectedVerdict,
    /// Exact minimal-core size (0 unless `verdict` is `Unsat`).
    pub core_size: usize,
    /// Exact number of Σ lints the row/domain tier must raise.
    pub lints: usize,
}

/// One seeded constraint set with its forced analysis outcome.
#[derive(Clone, Debug)]
pub struct SigmaFamily {
    /// Stable family kind name (used as a telemetry label).
    pub name: &'static str,
    /// The schema the constraints live over.
    pub schema: Arc<Schema>,
    /// The CFDs of Σ.
    pub cfds: Vec<NormalCfd>,
    /// The CINDs of Σ.
    pub cinds: Vec<NormalCind>,
    /// What the analyzer must conclude.
    pub expect: FamilyExpectation,
}

fn pool_constant(rng: &mut StdRng) -> String {
    format!("k{}", rng.gen_range(0..997u32))
}

/// Two distinct constants from the seeded pool.
fn distinct_pair(rng: &mut StdRng) -> (String, String) {
    let a = pool_constant(rng);
    loop {
        let b = pool_constant(rng);
        if b != a {
            return (a, b);
        }
    }
}

fn rs_schema(attrs: &[(&str, Domain)]) -> Arc<Schema> {
    Arc::new(Schema::builder().relation("r", attrs).finish())
}

/// CFD-only consistent draw around a hidden witness: always `Sat`.
fn consistent_cfds(rng: &mut StdRng) -> SigmaFamily {
    let schema = random_schema(
        &SchemaGenConfig {
            relations: 2,
            attrs_min: 3,
            attrs_max: 4,
            finite_ratio: 0.25,
            finite_dom_min: 2,
            finite_dom_max: 4,
        },
        rng,
    );
    // cfd_fraction 1.0: CINDs could push a guaranteed-Sat set to
    // `Unknown` when the chase starts from a non-witness tuple; pure
    // CFDs keep the per-relation SAT tier complete.
    let (cfds, cinds, witness) = generate_sigma(
        &schema,
        &SigmaGenConfig {
            cardinality: 6,
            cfd_fraction: 1.0,
            consistent: true,
            constant_pool: 4,
            witness_bias: 1.0,
        },
        rng,
    );
    debug_assert!(witness.is_some() && cinds.is_empty());
    SigmaFamily {
        name: "consistent_cfds",
        schema,
        cfds,
        cinds: Vec::new(),
        expect: FamilyExpectation {
            verdict: ExpectedVerdict::Sat,
            core_size: 0,
            lints: 0,
        },
    }
}

/// The paper's Example 3.2: four CFDs, jointly inconsistent, every
/// proper subset consistent — the canonical size-4 minimal core.
fn example_3_2() -> SigmaFamily {
    let (schema, cfds) = condep_cfd::fixtures::example_3_2();
    SigmaFamily {
        name: "example_3_2",
        schema,
        cfds,
        cinds: Vec::new(),
        expect: FamilyExpectation {
            verdict: ExpectedVerdict::Unsat,
            core_size: 4,
            lints: 0,
        },
    }
}

/// Two always-firing rows that force one infinite attribute to two
/// different constants; a third, harmless row rides along so the core
/// is a strict subset of Σ.
fn pair_clash(rng: &mut StdRng) -> SigmaFamily {
    let schema = rs_schema(&[("a", Domain::string()), ("b", Domain::string())]);
    let (u, v) = distinct_pair(rng);
    let w = pool_constant(rng);
    let cfds = vec![
        NormalCfd::parse(
            &schema,
            "r",
            &[],
            PatternRow::all_any(0),
            "b",
            PValue::constant(u.as_str()),
        )
        .unwrap(),
        NormalCfd::parse(
            &schema,
            "r",
            &[],
            PatternRow::all_any(0),
            "b",
            PValue::constant(v.as_str()),
        )
        .unwrap(),
        NormalCfd::parse(
            &schema,
            "r",
            &["b"],
            PatternRow::new([PValue::constant(u.as_str())]),
            "a",
            PValue::constant(w.as_str()),
        )
        .unwrap(),
    ];
    SigmaFamily {
        name: "pair_clash",
        schema,
        cfds,
        cinds: Vec::new(),
        expect: FamilyExpectation {
            verdict: ExpectedVerdict::Unsat,
            // Rows 0 and 1 clash on `b`; row 2 is satisfiable alongside
            // either one alone. Lint tier sees the same pair.
            core_size: 2,
            lints: 1,
        },
    }
}

/// A domain-covering chain: every value of a finite attribute forces
/// `y = u`, and a wildcard row forces `y = v` — all three rows are
/// needed, so the minimal core is exactly the chain plus the clash.
fn domain_chain(rng: &mut StdRng) -> SigmaFamily {
    let schema = rs_schema(&[
        ("x", Domain::finite_strs(&["d0", "d1"])),
        ("y", Domain::string()),
    ]);
    let (u, v) = distinct_pair(rng);
    let mut cfds = Vec::new();
    for d in ["d0", "d1"] {
        cfds.push(
            NormalCfd::parse(
                &schema,
                "r",
                &["x"],
                PatternRow::new([PValue::constant(d)]),
                "y",
                PValue::constant(u.as_str()),
            )
            .unwrap(),
        );
    }
    cfds.push(
        NormalCfd::parse(
            &schema,
            "r",
            &["x"],
            PatternRow::all_any(1),
            "y",
            PValue::constant(v.as_str()),
        )
        .unwrap(),
    );
    SigmaFamily {
        name: "domain_chain",
        schema,
        cfds,
        cinds: Vec::new(),
        expect: FamilyExpectation {
            verdict: ExpectedVerdict::Unsat,
            core_size: 3,
            // The wildcard row subsumes each chain row one-way while
            // disagreeing on the constant: two redundant-conflict lints.
            lints: 2,
        },
    }
}

/// Satisfiable Σ that still deserves exactly two lints: a key-group
/// conflict behind a dodgeable premise, and a row whose LHS constant
/// lies outside its finite domain (unreachable, hence vacuous).
fn lint_rows(rng: &mut StdRng) -> SigmaFamily {
    let schema = rs_schema(&[
        ("x", Domain::finite_strs(&["a", "b"])),
        ("y", Domain::string()),
    ]);
    let (u, v) = distinct_pair(rng);
    let cfds = vec![
        NormalCfd::parse(
            &schema,
            "r",
            &["x"],
            PatternRow::new([PValue::constant("a")]),
            "y",
            PValue::constant(u.as_str()),
        )
        .unwrap(),
        NormalCfd::parse(
            &schema,
            "r",
            &["x"],
            PatternRow::new([PValue::constant("a")]),
            "y",
            PValue::constant(v.as_str()),
        )
        .unwrap(),
        // "c" is outside dom(x) = {a, b}: the premise can never fire.
        NormalCfd::parse(
            &schema,
            "r",
            &["x"],
            PatternRow::new([PValue::constant("c")]),
            "y",
            PValue::constant(u.as_str()),
        )
        .unwrap(),
    ];
    SigmaFamily {
        name: "lint_rows",
        schema,
        cfds,
        cinds: Vec::new(),
        expect: FamilyExpectation {
            // x = b satisfies everything vacuously.
            verdict: ExpectedVerdict::Sat,
            core_size: 0,
            lints: 2,
        },
    }
}

fn two_rel_schema() -> Arc<Schema> {
    Arc::new(
        Schema::builder()
            .relation("r", &[("a", Domain::string())])
            .relation("s", &[("k", Domain::string()), ("c", Domain::string())])
            .finish(),
    )
}

/// A CIND whose obligation the chase can discharge: `r[a] ⊆ s[k]` with
/// a target condition the target's own CFD agrees with.
fn cind_bridge(rng: &mut StdRng) -> SigmaFamily {
    let schema = two_rel_schema();
    let p = pool_constant(rng);
    let cfds = vec![NormalCfd::parse(
        &schema,
        "s",
        &[],
        PatternRow::all_any(0),
        "c",
        PValue::constant(p.as_str()),
    )
    .unwrap()];
    let cinds = vec![NormalCind::parse(
        &schema,
        "r",
        &["a"],
        &[],
        "s",
        &["k"],
        &[("c", Value::str(p.as_str()))],
    )
    .unwrap()];
    SigmaFamily {
        name: "cind_bridge",
        schema,
        cfds,
        cinds,
        expect: FamilyExpectation {
            verdict: ExpectedVerdict::Sat,
            core_size: 0,
            lints: 0,
        },
    }
}

/// A CIND into a relation whose CFDs clash: Σ is truly inconsistent
/// (an `r` tuple forces an `s` tuple; `s` admits none; and `r` alone
/// violates the CIND), but proving that needs the cross-relation
/// argument the per-relation tier cannot make — the chase gives up and
/// the verdict is soundly `Unknown`, mirroring Theorem 4.2's wall.
fn cind_trap(rng: &mut StdRng) -> SigmaFamily {
    let schema = two_rel_schema();
    let (u, v) = distinct_pair(rng);
    let mut cfds = Vec::new();
    for val in [u.as_str(), v.as_str()] {
        cfds.push(
            NormalCfd::parse(
                &schema,
                "s",
                &[],
                PatternRow::all_any(0),
                "c",
                PValue::constant(val),
            )
            .unwrap(),
        );
    }
    let cinds = vec![NormalCind::parse(&schema, "r", &["a"], &[], "s", &["k"], &[]).unwrap()];
    SigmaFamily {
        name: "cind_trap",
        schema,
        cfds,
        cinds,
        expect: FamilyExpectation {
            verdict: ExpectedVerdict::Unknown,
            core_size: 0,
            // The clashing pair on `s` is a key-group conflict.
            lints: 1,
        },
    }
}

/// Two CINDs that pin the same target tuple to different conditions:
/// satisfiable with two `s` tuples, but the one-tuple-per-relation
/// chase cannot represent that — deterministic `Unknown` from the
/// chase's occupied-slot give-up, not from any random budget.
fn cind_split_target(rng: &mut StdRng) -> SigmaFamily {
    let schema = two_rel_schema();
    let (p, q) = distinct_pair(rng);
    let cinds = vec![
        NormalCind::parse(
            &schema,
            "r",
            &["a"],
            &[],
            "s",
            &["k"],
            &[("c", Value::str(p.as_str()))],
        )
        .unwrap(),
        NormalCind::parse(
            &schema,
            "r",
            &["a"],
            &[],
            "s",
            &["k"],
            &[("c", Value::str(q.as_str()))],
        )
        .unwrap(),
    ];
    SigmaFamily {
        name: "cind_split_target",
        schema,
        cfds: Vec::new(),
        cinds,
        expect: FamilyExpectation {
            // A single `s` tuple (no `r` tuples) satisfies Σ outright,
            // and the analyzer finds it by chasing from the `s` witness.
            verdict: ExpectedVerdict::Sat,
            core_size: 0,
            lints: 0,
        },
    }
}

/// One seeded instance of each family kind, in a stable order.
pub fn sigma_families(seed: u64) -> Vec<SigmaFamily> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x51F0_FA41);
    vec![
        consistent_cfds(&mut rng),
        example_3_2(),
        pair_clash(&mut rng),
        domain_chain(&mut rng),
        lint_rows(&mut rng),
        cind_bridge(&mut rng),
        cind_trap(&mut rng),
        cind_split_target(&mut rng),
    ]
}
