//! Dirty-data generation for the data-cleaning workloads.
//!
//! The paper motivates CINDs/CFDs with dirty bank data (Figure 1's
//! `t12`); this module scales that scenario: it builds a database that
//! satisfies a constraint set (by replicating perturbed copies of a
//! hidden witness) and then injects a controlled fraction of violations,
//! recording the ground truth so detectors can be scored.

use crate::constraints::HiddenWitness;
use condep_cfd::NormalCfd;
use condep_core::NormalCind;
use condep_model::{AttrId, Database, Domain, RelId, Schema, Tuple, TupleId, Value};
use rand::Rng;
use std::sync::Arc;

/// Parameters of the dirty-database generator.
#[derive(Clone, Copy, Debug)]
pub struct DirtyDataConfig {
    /// Clean tuples per relation (clones of the witness with fresh
    /// values on unconstrained attributes).
    pub tuples_per_relation: usize,
    /// Number of violations to inject per relation that is a CIND
    /// source (a triggered tuple whose join value is scrambled).
    pub violations_per_relation: usize,
}

impl Default for DirtyDataConfig {
    fn default() -> Self {
        DirtyDataConfig {
            tuples_per_relation: 100,
            violations_per_relation: 5,
        }
    }
}

/// The generated instance plus ground truth.
#[derive(Clone, Debug)]
pub struct DirtyDatabase {
    /// The instance (clean base + injected noise).
    pub db: Database,
    /// `(relation, tuple)` pairs injected as violations.
    pub injected: Vec<(RelId, Tuple)>,
}

/// Attributes of `rel` constrained by any CFD/CIND pattern or matched
/// list — these keep their witness values in clean clones.
fn constrained_attrs(
    rel: RelId,
    cfds: &[NormalCfd],
    cinds: &[NormalCind],
) -> Vec<condep_model::AttrId> {
    let mut out = std::collections::BTreeSet::new();
    for c in cfds.iter().filter(|c| c.rel() == rel) {
        out.extend(c.lhs().iter().copied());
        out.insert(c.rhs());
    }
    for c in cinds {
        if c.lhs_rel() == rel {
            out.extend(c.x().iter().copied());
            out.extend(c.xp().iter().map(|(a, _)| *a));
        }
        if c.rhs_rel() == rel {
            out.extend(c.y().iter().copied());
            out.extend(c.yp().iter().map(|(a, _)| *a));
        }
    }
    out.into_iter().collect()
}

/// Builds a database satisfying `(cfds, cinds)` by cloning the hidden
/// witness with fresh values on unconstrained attributes, then injects
/// violations by scrambling the `Yp`-ish fields of CIND source tuples.
pub fn dirty_database<R: Rng>(
    schema: &Arc<Schema>,
    cfds: &[NormalCfd],
    cinds: &[NormalCind],
    witness: &HiddenWitness,
    cfg: &DirtyDataConfig,
    rng: &mut R,
) -> DirtyDatabase {
    let mut db = Database::empty(schema.clone());
    // Clean base: perturbed witness clones. Unconstrained attributes get
    // unique values so clones do not collide; constrained ones keep the
    // witness value, preserving satisfaction of every constraint.
    let mut serial = 0u64;
    for (rel, rs) in schema.iter() {
        let constrained = constrained_attrs(rel, cfds, cinds);
        let base = witness.tuple(rel);
        for _ in 0..cfg.tuples_per_relation {
            let values: Vec<Value> = rs
                .iter()
                .map(|(a, attr)| {
                    if constrained.contains(&a) {
                        base[a].clone()
                    } else if let Some(vs) = attr.domain().values() {
                        vs[rng.gen_range(0..vs.len())].clone()
                    } else {
                        serial += 1;
                        Value::str(format!("row{serial}"))
                    }
                })
                .collect();
            db.insert(rel, Tuple::new(values)).expect("well-typed");
        }
    }
    debug_assert!(condep_cfd::satisfy::satisfies_all(&db, cfds));
    debug_assert!(condep_core::satisfy::satisfies_all(&db, cinds));

    // Noise: for CINDs with a trigger-able source, insert tuples that
    // trigger but scramble a matched column (so the target lookup
    // fails). Only infinite matched columns are scrambled, guaranteeing
    // the scrambled value misses every target.
    let mut injected = Vec::new();
    for cind in cinds {
        if cind.x().is_empty() {
            continue;
        }
        let rel = cind.lhs_rel();
        let base = witness.tuple(rel);
        for k in 0..cfg.violations_per_relation {
            let scramble_attr = cind.x()[k % cind.x().len()];
            serial += 1;
            let t = base.with(scramble_attr, Value::str(format!("dirty{serial}")));
            if cind.triggers(&t) && db.insert(rel, t.clone()).unwrap_or(false) {
                injected.push((rel, t));
            }
        }
    }
    DirtyDatabase { db, injected }
}

/// Parameters of the planted-Σ generator
/// ([`clean_database_with_hidden_sigma`]).
#[derive(Clone, Copy, Debug)]
pub struct PlantedSigmaConfig {
    /// `(key, dep)` column pairs in the `fact` relation; each pair
    /// plants the variable FD `k{p} → d{p}`.
    pub fd_pairs: usize,
    /// Distinct values per pair — each value is one equivalence class,
    /// so expected per-class support is `tuples / pair_cardinality`.
    pub pair_cardinality: usize,
    /// Constant tableau rows `(k{p}=k{p}_h ‖ d{p}=d{p}_h)` planted per
    /// pair (`h < constant_rows_per_pair ≤ pair_cardinality`).
    pub constant_rows_per_pair: usize,
    /// Reference relations `dim{p}` with the planted inclusion
    /// `fact[k{p}] ⊆ dim{p}[v]` (`≤ fd_pairs`).
    pub cind_count: usize,
    /// `fact` rows to generate (each row gets a unique serial id, so the
    /// set instance really holds this many tuples) — the scale knob the
    /// 100K/1M/10M sampled-discovery workloads turn.
    pub tuples: usize,
    /// The **last** `drift_pairs` column pairs *drift*: from row
    /// `tuples · drift_onset` on, their `d{p}` cell is drawn
    /// independently of `k{p}`, so the pair's planted dependencies are
    /// exact on the pre-onset prefix and decay over the suffix — the
    /// confidence-decay ground truth. `0` (the default) plants no
    /// drift.
    pub drift_pairs: usize,
    /// Fraction of the instance generated before drift sets in
    /// (ignored when `drift_pairs == 0`).
    pub drift_onset: f64,
}

impl Default for PlantedSigmaConfig {
    fn default() -> Self {
        PlantedSigmaConfig {
            fd_pairs: 4,
            pair_cardinality: 8,
            constant_rows_per_pair: 4,
            cind_count: 2,
            tuples: 10_000,
            drift_pairs: 0,
            drift_onset: 0.5,
        }
    }
}

/// A clean database together with the hidden Σ it was built to satisfy
/// — the discovery ground truth.
#[derive(Clone, Debug)]
pub struct PlantedDatabase {
    /// The clean instance (satisfies every planted dependency).
    pub db: Database,
    /// The planted CFDs of the **stable** pairs: one variable FD per
    /// pair plus the constant tableau rows. These hold on the whole
    /// instance.
    pub cfds: Vec<NormalCfd>,
    /// The planted CINDs: one exact inclusion per `dim` relation (drift
    /// never touches the `k{p}` columns, so these hold on the whole
    /// instance too).
    pub cinds: Vec<NormalCind>,
    /// The planted CFDs of the **drifting** pairs: exact on the rows
    /// before [`PlantedDatabase::drift_onset_row`], broken after —
    /// stream the suffix into an online miner and watch their
    /// confidence decay. Empty without drift.
    pub drifted_cfds: Vec<NormalCfd>,
    /// First row index the drift applies to (`tuples` when no drift —
    /// i.e. the clean prefix is the whole instance). Rows keep their
    /// generation order as dense positions, so slicing the `fact`
    /// relation at this row splits clean prefix from drifted suffix.
    pub drift_onset_row: usize,
}

/// Builds a clean database around a **hidden planted Σ** with enough
/// value diversity for discovery to be non-trivial — unlike
/// [`dirty_database`]'s witness clones (whose constrained columns are
/// constant, so every FD holds vacuously), each planted FD here holds
/// through `pair_cardinality` distinct equivalence classes.
///
/// Shape: one `fact(id, k0, d0, k1, d1, …)` relation whose column pairs
/// are value-locked (`k{p} = k{p}_h ⇒ d{p} = d{p}_h` for a per-row
/// random `h`), plus `cind_count` single-column `dim{p}(v)` relations
/// holding every `k{p}` value. The planted ground truth comes back in
/// [`PlantedDatabase::cfds`] / [`PlantedDatabase::cinds`]; a discovery
/// run on [`PlantedDatabase::db`] should recover a Σ′ **implying** every
/// member of it (asserted via the exact implication checkers in the
/// discovery property suite and `benches/discover.rs`).
///
/// With `drift_pairs > 0` the last pairs **drift**: past
/// `tuples · drift_onset` their dependent cell decouples from the key,
/// so their planted dependencies (returned separately in
/// [`PlantedDatabase::drifted_cfds`]) are exact on the prefix and decay
/// over the suffix — ground truth for confidence-decay and
/// online-retirement tests. [`PlantedDatabase::cfds`] /
/// [`PlantedDatabase::cinds`] always hold on the whole instance.
///
/// Deterministic for a fixed `(cfg, seed)`. The first
/// `pair_cardinality` rows cycle every class deterministically, so each
/// planted constant row is guaranteed to have support.
pub fn clean_database_with_hidden_sigma<R: Rng>(
    cfg: &PlantedSigmaConfig,
    rng: &mut R,
) -> PlantedDatabase {
    assert!(cfg.fd_pairs >= 1, "at least one column pair");
    assert!(cfg.pair_cardinality >= 2, "classes must be non-degenerate");
    assert!(
        cfg.constant_rows_per_pair <= cfg.pair_cardinality,
        "cannot plant more constant rows than classes"
    );
    assert!(cfg.cind_count <= cfg.fd_pairs, "one dim per pair at most");
    assert!(
        cfg.drift_pairs <= cfg.fd_pairs,
        "can only drift planted pairs"
    );
    if cfg.drift_pairs > 0 {
        assert!(
            (0.0..=1.0).contains(&cfg.drift_onset),
            "drift_onset is a fraction of the instance"
        );
    }
    let first_drifting_pair = cfg.fd_pairs - cfg.drift_pairs;
    let drift_onset_row = if cfg.drift_pairs > 0 {
        // Never drift inside the deterministic class-seeding prefix:
        // every class (and so every planted constant row) must witness
        // its lock at least once.
        ((cfg.tuples as f64 * cfg.drift_onset) as usize).max(cfg.pair_cardinality)
    } else {
        cfg.tuples
    };

    let mut builder = Schema::builder();
    let mut fact_cols: Vec<(String, condep_model::Domain)> =
        vec![("id".to_string(), condep_model::Domain::string())];
    for p in 0..cfg.fd_pairs {
        fact_cols.push((format!("k{p}"), condep_model::Domain::string()));
        fact_cols.push((format!("d{p}"), condep_model::Domain::string()));
    }
    let cols_ref: Vec<(&str, condep_model::Domain)> = fact_cols
        .iter()
        .map(|(n, d)| (n.as_str(), d.clone()))
        .collect();
    builder = builder.relation("fact", &cols_ref);
    for p in 0..cfg.cind_count {
        builder = builder.relation(&format!("dim{p}"), &[("v", condep_model::Domain::string())]);
    }
    let schema = Arc::new(builder.finish());
    let fact = schema.rel_id("fact").expect("just declared");
    let fact_rs = schema.relation(fact).expect("in range");

    let mut db = Database::empty(schema.clone());
    for i in 0..cfg.tuples {
        let mut values = Vec::with_capacity(1 + 2 * cfg.fd_pairs);
        values.push(Value::str(format!("t{i}")));
        for p in 0..cfg.fd_pairs {
            // Guarantee every class appears before randomness takes
            // over, so planted constant rows always have support.
            let h = if i < cfg.pair_cardinality {
                i
            } else {
                rng.gen_range(0..cfg.pair_cardinality)
            };
            values.push(Value::str(format!("k{p}_{h}")));
            // A drifting pair breaks its value lock past the onset: the
            // dependent cell is drawn independently of the key.
            let g = if p >= first_drifting_pair && i >= drift_onset_row {
                rng.gen_range(0..cfg.pair_cardinality)
            } else {
                h
            };
            values.push(Value::str(format!("d{p}_{g}")));
        }
        db.insert(fact, Tuple::new(values)).expect("well-typed");
    }
    for p in 0..cfg.cind_count {
        let dim = schema.rel_id(&format!("dim{p}")).expect("just declared");
        for h in 0..cfg.pair_cardinality {
            db.insert(dim, Tuple::new(vec![Value::str(format!("k{p}_{h}"))]))
                .expect("well-typed");
        }
    }

    let mut cfds = Vec::new();
    let mut drifted_cfds = Vec::new();
    for p in 0..cfg.fd_pairs {
        let k = fact_rs.attr_id(&format!("k{p}")).expect("declared");
        let d = fact_rs.attr_id(&format!("d{p}")).expect("declared");
        let out = if p >= first_drifting_pair {
            &mut drifted_cfds
        } else {
            &mut cfds
        };
        out.push(NormalCfd::new(
            fact,
            vec![k],
            condep_model::PatternRow::all_any(1),
            d,
            condep_model::PValue::Any,
        ));
        for h in 0..cfg.constant_rows_per_pair {
            out.push(NormalCfd::new(
                fact,
                vec![k],
                condep_model::PatternRow::new(vec![condep_model::PValue::constant(format!(
                    "k{p}_{h}"
                ))]),
                d,
                condep_model::PValue::constant(format!("d{p}_{h}")),
            ));
        }
    }
    let mut cinds = Vec::new();
    for p in 0..cfg.cind_count {
        let dim = schema.rel_id(&format!("dim{p}")).expect("declared");
        let dim_v = schema
            .relation(dim)
            .expect("in range")
            .attr_id("v")
            .expect("declared");
        let k = fact_rs.attr_id(&format!("k{p}")).expect("declared");
        cinds.push(NormalCind::new(
            fact,
            dim,
            vec![k],
            vec![dim_v],
            Vec::new(),
            Vec::new(),
        ));
    }
    debug_assert!(condep_cfd::satisfy::satisfies_all(&db, &cfds));
    debug_assert!(condep_core::satisfy::satisfies_all(&db, &cinds));
    PlantedDatabase {
        db,
        cfds,
        cinds,
        drifted_cfds,
        drift_onset_row,
    }
}

/// One error [`dirtied_database`] injected, with the **dirty** tuple
/// value (the ground truth a repair run should undo) and its
/// **position-stable id**.
///
/// The `id` follows the dense-seeding convention: it equals the dirty
/// tuple's dense position in the **final** returned database, which is
/// exactly the [`TupleId`] any `ValidatorStream` seeded on that database
/// allocates for it. Resolve it through the stream
/// (`tuple_by_id`/`position_of`) and it keeps addressing this injection
/// through every swap-renumbering a repair run causes — the stale dense
/// positions recorded by earlier revisions of this ground truth did not.
#[derive(Clone, Debug)]
pub enum InjectedDirt {
    /// A CFD RHS cell scrambled in place (typo injection): the edited
    /// tuple now carries `attr = <scrambled>` where the pattern (or its
    /// key group) demands otherwise.
    Typo {
        /// The relation edited in.
        rel: RelId,
        /// The tuple **after** the edit.
        tuple: Tuple,
        /// The scrambled attribute (the CFD's RHS).
        attr: AttrId,
        /// The dirty tuple's stable id (dense-seeding convention).
        id: TupleId,
    },
    /// A CIND source tuple's matched `X` cell scrambled to a value no
    /// target holds — the tuple is now an orphan.
    Orphan {
        /// The source relation.
        rel: RelId,
        /// The tuple **after** the edit.
        tuple: Tuple,
        /// The scrambled attribute (one of the CIND's `X`).
        attr: AttrId,
        /// The dirty tuple's stable id (dense-seeding convention).
        id: TupleId,
    },
    /// A near-duplicate inserted next to a resident tuple: same LHS key
    /// under some wildcard-RHS CFD, different RHS value — a guaranteed
    /// pair conflict.
    DuplicateKey {
        /// The relation inserted into.
        rel: RelId,
        /// The inserted conflicting tuple.
        tuple: Tuple,
        /// The disagreeing attribute (the CFD's RHS).
        attr: AttrId,
        /// The dirty tuple's stable id (dense-seeding convention).
        id: TupleId,
    },
}

impl InjectedDirt {
    /// The relation the dirt landed in.
    pub fn rel(&self) -> RelId {
        match self {
            InjectedDirt::Typo { rel, .. }
            | InjectedDirt::Orphan { rel, .. }
            | InjectedDirt::DuplicateKey { rel, .. } => *rel,
        }
    }

    /// The dirty tuple (its value in the final returned database).
    pub fn tuple(&self) -> &Tuple {
        match self {
            InjectedDirt::Typo { tuple, .. }
            | InjectedDirt::Orphan { tuple, .. }
            | InjectedDirt::DuplicateKey { tuple, .. } => tuple,
        }
    }

    /// The scrambled / disagreeing attribute.
    pub fn attr(&self) -> AttrId {
        match self {
            InjectedDirt::Typo { attr, .. }
            | InjectedDirt::Orphan { attr, .. }
            | InjectedDirt::DuplicateKey { attr, .. } => *attr,
        }
    }

    /// The dirty tuple's position-stable id (see the type docs for the
    /// dense-seeding convention).
    pub fn id(&self) -> TupleId {
        match self {
            InjectedDirt::Typo { id, .. }
            | InjectedDirt::Orphan { id, .. }
            | InjectedDirt::DuplicateKey { id, .. } => *id,
        }
    }

    fn parts_mut(&mut self) -> (&mut Tuple, &mut TupleId) {
        match self {
            InjectedDirt::Typo { tuple, id, .. }
            | InjectedDirt::Orphan { tuple, id, .. }
            | InjectedDirt::DuplicateKey { tuple, id, .. } => (tuple, id),
        }
    }
}

/// A clean database plus a controlled fraction of injected errors.
#[derive(Clone, Debug)]
pub struct DirtiedDatabase {
    /// The dirtied instance.
    pub db: Database,
    /// Ground truth: every injected error, in injection order.
    pub injected: Vec<InjectedDirt>,
}

/// A value of `dom` that differs from `current` (and, for infinite
/// domains, from everything the clean data plausibly holds): infinite
/// strings get a serial `dirt{n}` marker, infinite ints a far-offset
/// serial, finite domains their first member ≠ `current` (`None` for
/// singleton domains).
fn scramble(dom: &Domain, current: &Value, serial: u64) -> Option<Value> {
    match dom.values() {
        Some(vs) => vs.iter().find(|v| *v != current).cloned(),
        None => Some(match dom.base_type() {
            condep_model::BaseType::Str => Value::str(format!("dirt{serial}")),
            condep_model::BaseType::Int => Value::int(0x4000_0000_0000 + serial as i64),
            condep_model::BaseType::Bool => Value::bool(current != &Value::bool(true)),
        }),
    }
}

/// Picks a resident tuple of `rel` satisfying `pred`, scanning from a
/// random offset (bounded by one wrap-around).
fn pick_tuple<R: Rng, F: Fn(&Tuple) -> bool>(
    db: &Database,
    rel: RelId,
    rng: &mut R,
    pred: F,
) -> Option<Tuple> {
    let inst = db.relation(rel);
    if inst.is_empty() {
        return None;
    }
    let start = rng.gen_range(0..inst.len());
    (0..inst.len())
        .map(|k| inst.get((start + k) % inst.len()).expect("in range"))
        .find(|t| pred(t))
        .cloned()
}

/// Injects a controlled error fraction into a **clean** database: cycles
/// through **typo injection** (a constant-RHS CFD's RHS cell scrambled —
/// a guaranteed single-tuple violation), **orphaned CIND sources** (a
/// matched `X` cell scrambled to a key no target holds) and
/// **duplicate-key conflicts** (a near-duplicate inserted that agrees
/// with a resident tuple on a wildcard-RHS CFD's LHS but disagrees on
/// the RHS — a guaranteed pair violation), until
/// `⌈total_tuples × error_rate⌉` errors are placed (or no constraint
/// offers a viable injection site).
///
/// Deterministic for a fixed `(clean, cfds, cinds, error_rate, seed)`;
/// the ground truth comes back in [`DirtiedDatabase::injected`]. Fresh
/// scramble values use a `dirt{n}` marker namespace, so they never
/// collide with clean data that avoids that prefix.
pub fn dirtied_database<R: Rng>(
    clean: &Database,
    cfds: &[NormalCfd],
    cinds: &[NormalCind],
    error_rate: f64,
    rng: &mut R,
) -> DirtiedDatabase {
    let mut db = clean.clone();
    let mut injected = Vec::new();
    let target = ((clean.total_tuples() as f64) * error_rate).ceil() as usize;
    let schema = clean.schema().clone();
    let domain_of = |rel: RelId, attr: AttrId| -> &Domain {
        schema
            .relation(rel)
            .expect("relation in range")
            .attribute(attr)
            .expect("attribute in range")
            .domain()
    };
    let const_rhs: Vec<&NormalCfd> = cfds.iter().filter(|c| c.is_constant_rhs()).collect();
    let wild_rhs: Vec<&NormalCfd> = cfds.iter().filter(|c| !c.is_constant_rhs()).collect();
    let sources: Vec<&NormalCind> = cinds.iter().filter(|c| !c.x().is_empty()).collect();
    // Ids are assigned once generation finishes (they are final dense
    // positions — the dense-seeding convention); until then a placeholder.
    let pending = TupleId(u32::MAX);
    // A later injection may re-edit an already-dirty tuple; the earlier
    // record is rewritten to the new value so every record's `tuple` is
    // its value in the final database (set semantics make `(rel, value)`
    // identify the tuple, so this cannot mis-target).
    let retarget = |injected: &mut Vec<InjectedDirt>, rel: RelId, old: &Tuple, new: &Tuple| {
        for d in injected.iter_mut() {
            if d.rel() == rel && d.tuple() == old {
                *d.parts_mut().0 = new.clone();
            }
        }
    };
    let mut serial = 0u64;
    let mut misses = 0usize;
    while injected.len() < target && misses < 3 * target + 8 {
        serial += 1;
        // Cycle the error kinds; misses rotate too, so a Σ without (say)
        // constant-RHS CFDs still exercises the other injectors.
        let kind = (injected.len() + misses) % 3;
        let placed = match kind {
            // Typo: scramble the RHS of a tuple matching a constant-RHS
            // pattern, away from both the pattern constant and the
            // current value.
            0 if !const_rhs.is_empty() => {
                let cfd = const_rhs[rng.gen_range(0..const_rhs.len())];
                let expected = cfd.rhs_pat().as_const().expect("constant RHS").clone();
                pick_tuple(&db, cfd.rel(), rng, |t| {
                    cfd.lhs_pat().matches_tuple(t, cfd.lhs()) && t[cfd.rhs()] == expected
                })
                .and_then(|t| {
                    let bad = scramble(domain_of(cfd.rel(), cfd.rhs()), &t[cfd.rhs()], serial)?;
                    if bad == expected
                        || db
                            .relation(cfd.rel())
                            .contains(&t.with(cfd.rhs(), bad.clone()))
                    {
                        // A scramble that would merge into a resident
                        // tuple (set semantics) is a miss *before* any
                        // mutation — the database must only change when
                        // ground truth is recorded.
                        return None;
                    }
                    let (dirty, merged) = db
                        .edit_cell(cfd.rel(), &t, cfd.rhs(), bad)
                        .expect("scramble respects the domain")
                        .expect("picked tuple is resident");
                    debug_assert!(!merged, "merge was pre-checked");
                    retarget(&mut injected, cfd.rel(), &t, &dirty);
                    Some(InjectedDirt::Typo {
                        rel: cfd.rel(),
                        tuple: dirty,
                        attr: cfd.rhs(),
                        id: pending,
                    })
                })
            }
            // Orphan: scramble one matched X cell of a triggered source
            // tuple to a fresh value no target can hold.
            1 if !sources.is_empty() => {
                let cind = sources[rng.gen_range(0..sources.len())];
                let attr = cind.x()[rng.gen_range(0..cind.x().len())];
                let dom = domain_of(cind.lhs_rel(), attr);
                if dom.is_finite() {
                    // A finite scramble may still hit a resident target
                    // key; only infinite domains guarantee an orphan.
                    None
                } else {
                    pick_tuple(&db, cind.lhs_rel(), rng, |t| cind.triggers(t)).map(|t| {
                        let bad = scramble(dom, &t[attr], serial).expect("infinite domain");
                        let (dirty, merged) = db
                            .edit_cell(cind.lhs_rel(), &t, attr, bad)
                            .expect("scramble respects the domain")
                            .expect("picked tuple is resident");
                        debug_assert!(!merged, "fresh dirt values cannot merge");
                        retarget(&mut injected, cind.lhs_rel(), &t, &dirty);
                        InjectedDirt::Orphan {
                            rel: cind.lhs_rel(),
                            tuple: dirty,
                            attr,
                            id: pending,
                        }
                    })
                }
            }
            // Duplicate key: insert a near-copy disagreeing on a
            // wildcard RHS — the copy shares its victim's whole LHS key.
            2 if !wild_rhs.is_empty() => {
                let cfd = wild_rhs[rng.gen_range(0..wild_rhs.len())];
                pick_tuple(&db, cfd.rel(), rng, |t| {
                    cfd.lhs_pat().matches_tuple(t, cfd.lhs())
                })
                .and_then(|t| {
                    let bad = scramble(domain_of(cfd.rel(), cfd.rhs()), &t[cfd.rhs()], serial)?;
                    let dirty = t.with(cfd.rhs(), bad);
                    db.insert(cfd.rel(), dirty.clone())
                        .expect("well-typed near-duplicate")
                        .then_some(InjectedDirt::DuplicateKey {
                            rel: cfd.rel(),
                            tuple: dirty,
                            attr: cfd.rhs(),
                            id: pending,
                        })
                })
            }
            _ => None,
        };
        match placed {
            Some(dirt) => injected.push(dirt),
            None => misses += 1,
        }
    }
    // Dense-seeding ids: final position == the TupleId any stream
    // seeded on this database allocates for the tuple.
    for d in injected.iter_mut() {
        let rel = d.rel();
        let (tuple, id) = d.parts_mut();
        let pos = db
            .relation(rel)
            .position(tuple)
            .expect("every ground-truth tuple is resident in the final database");
        *id = TupleId(pos as u32);
    }
    DirtiedDatabase { db, injected }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraints::{generate_sigma, SigmaGenConfig};
    use crate::schema::{random_schema, SchemaGenConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(seed: u64) -> (Arc<Schema>, Vec<NormalCfd>, Vec<NormalCind>, HiddenWitness) {
        let schema = random_schema(
            &SchemaGenConfig {
                relations: 6,
                attrs_min: 3,
                attrs_max: 6,
                finite_ratio: 0.2,
                finite_dom_min: 2,
                finite_dom_max: 8,
            },
            &mut StdRng::seed_from_u64(seed),
        );
        let (cfds, cinds, witness) = generate_sigma(
            &schema,
            &SigmaGenConfig {
                cardinality: 40,
                consistent: true,
                ..SigmaGenConfig::default()
            },
            &mut StdRng::seed_from_u64(seed + 1),
        );
        (schema, cfds, cinds, witness.unwrap())
    }

    #[test]
    fn clean_base_satisfies_sigma() {
        let (schema, cfds, cinds, witness) = setup(1);
        let out = dirty_database(
            &schema,
            &cfds,
            &cinds,
            &witness,
            &DirtyDataConfig {
                tuples_per_relation: 30,
                violations_per_relation: 0,
            },
            &mut StdRng::seed_from_u64(2),
        );
        assert!(out.injected.is_empty());
        assert!(condep_cfd::satisfy::satisfies_all(&out.db, &cfds));
        assert!(condep_core::satisfy::satisfies_all(&out.db, &cinds));
        // Every relation is populated (clones of fully-constrained
        // relations may collapse under set semantics, so only lower-bound
        // by one per relation).
        for (_, inst) in out.db.iter() {
            assert!(!inst.is_empty());
        }
        assert!(out.db.total_tuples() <= 30 * schema.len());
    }

    #[test]
    fn injected_tuples_are_detected_as_violations() {
        let (schema, cfds, cinds, witness) = setup(3);
        let out = dirty_database(
            &schema,
            &cfds,
            &cinds,
            &witness,
            &DirtyDataConfig {
                tuples_per_relation: 20,
                violations_per_relation: 3,
            },
            &mut StdRng::seed_from_u64(4),
        );
        if out.injected.is_empty() {
            // No CIND with a non-empty X in this draw — nothing to check.
            return;
        }
        // Every injected tuple shows up in some CIND's violation list.
        let mut caught = 0;
        for (rel, t) in &out.injected {
            let found = cinds.iter().any(|c| {
                c.lhs_rel() == *rel
                    && condep_core::find_violations(&out.db, c)
                        .iter()
                        .any(|v| out.db.relation(*rel).get(v.tuple) == Some(t))
            });
            if found {
                caught += 1;
            }
        }
        assert_eq!(
            caught,
            out.injected.len(),
            "all injected dirt is detectable"
        );
    }

    fn bank_sigma() -> (Vec<NormalCfd>, Vec<NormalCind>) {
        (
            condep_cfd::normalize::normalize_all(&[
                condep_cfd::fixtures::phi1(),
                condep_cfd::fixtures::phi2(),
                condep_cfd::fixtures::phi3(),
            ]),
            condep_core::normalize::normalize_all(&condep_core::fixtures::figure_2()),
        )
    }

    #[test]
    fn dirtied_database_injects_detectable_errors() {
        let clean = condep_model::fixtures::clean_bank_database();
        let (cfds, cinds) = bank_sigma();
        // The clean fixture satisfies Σ.
        assert!(condep_cfd::satisfy::satisfies_all(&clean, &cfds));
        assert!(condep_core::satisfy::satisfies_all(&clean, &cinds));
        let out = dirtied_database(&clean, &cfds, &cinds, 0.3, &mut StdRng::seed_from_u64(11));
        assert!(!out.injected.is_empty(), "30% of 14 tuples must inject");
        let mut violations = 0;
        for c in &cfds {
            violations += condep_cfd::find_violations(&out.db, c).len();
        }
        for c in &cinds {
            violations += condep_core::find_violations(&out.db, c).len();
        }
        assert!(
            violations >= out.injected.len(),
            "each injection must surface at least one violation \
             ({} injected, {violations} found)",
            out.injected.len(),
        );
        // All three error kinds have injectors wired for this Σ.
        let kinds: std::collections::HashSet<u8> = out
            .injected
            .iter()
            .map(|d| match d {
                InjectedDirt::Typo { .. } => 0u8,
                InjectedDirt::Orphan { .. } => 1,
                InjectedDirt::DuplicateKey { .. } => 2,
            })
            .collect();
        assert!(kinds.len() >= 2, "error kinds must vary: {kinds:?}");
    }

    #[test]
    fn dirtied_database_ids_survive_swap_renumbering() {
        use condep_validate::{Validator, ValidatorStream};
        let clean = condep_model::fixtures::clean_bank_database();
        let (cfds, cinds) = bank_sigma();
        let out = dirtied_database(&clean, &cfds, &cinds, 0.3, &mut StdRng::seed_from_u64(11));
        assert!(!out.injected.is_empty());
        // Ids follow the dense-seeding convention: in the freshly
        // returned database, id == dense position.
        for d in &out.injected {
            assert_eq!(
                out.db.relation(d.rel()).get(d.id().0 as usize),
                Some(d.tuple()),
                "seed id must be the dense position: {d:?}"
            );
        }
        // A stream seeded on the dirty database allocates exactly those
        // ids — and they keep resolving after swap-renumbering deletes
        // of *other* tuples (the old dense positions would go stale).
        let validator = Validator::new(cfds, cinds);
        let (mut stream, _) = ValidatorStream::new_validated(validator, out.db.clone());
        let dirty_keys: std::collections::HashSet<(RelId, Tuple)> = out
            .injected
            .iter()
            .map(|d| (d.rel(), d.tuple().clone()))
            .collect();
        let mut deleted = 0;
        for (rel, inst) in out.db.iter() {
            for t in inst.iter() {
                if deleted < 4 && !dirty_keys.contains(&(rel, t.clone())) {
                    stream.delete_tuple(rel, t).expect("resident");
                    deleted += 1;
                }
            }
        }
        assert!(deleted > 0, "the fixture must offer clean tuples");
        let mut stale_positions = 0;
        for d in &out.injected {
            assert_eq!(
                stream.tuple_by_id(d.rel(), d.id()),
                Some(d.tuple()),
                "ground-truth id must survive the churn: {d:?}"
            );
            if stream.db().relation(d.rel()).get(d.id().0 as usize) != Some(d.tuple()) {
                stale_positions += 1;
            }
        }
        assert!(
            stale_positions > 0,
            "the deletes must have moved at least one ground-truth tuple \
             (otherwise this test proves nothing)"
        );
    }

    #[test]
    fn dirtied_database_is_deterministic() {
        let clean = condep_model::fixtures::clean_bank_database();
        let (cfds, cinds) = bank_sigma();
        let a = dirtied_database(&clean, &cfds, &cinds, 0.25, &mut StdRng::seed_from_u64(7));
        let b = dirtied_database(&clean, &cfds, &cinds, 0.25, &mut StdRng::seed_from_u64(7));
        assert_eq!(a.db.total_tuples(), b.db.total_tuples());
        assert_eq!(a.injected.len(), b.injected.len());
        for (rel, inst) in a.db.iter() {
            assert_eq!(inst, b.db.relation(rel));
        }
    }

    #[test]
    fn planted_database_satisfies_its_hidden_sigma() {
        let cfg = PlantedSigmaConfig {
            tuples: 300,
            ..PlantedSigmaConfig::default()
        };
        let planted = clean_database_with_hidden_sigma(&cfg, &mut StdRng::seed_from_u64(21));
        assert_eq!(
            planted.cfds.len(),
            cfg.fd_pairs * (1 + cfg.constant_rows_per_pair)
        );
        assert_eq!(planted.cinds.len(), cfg.cind_count);
        assert!(condep_cfd::satisfy::satisfies_all(
            &planted.db,
            &planted.cfds
        ));
        assert!(condep_core::satisfy::satisfies_all(
            &planted.db,
            &planted.cinds
        ));
        // The unique id column keeps the set instance at full size...
        let fact = planted.db.schema().rel_id("fact").unwrap();
        assert_eq!(planted.db.relation(fact).len(), cfg.tuples);
        // ...and every planted constant row has resident support.
        for cfd in planted.cfds.iter().filter(|c| c.is_constant_rhs()) {
            let hits = planted
                .db
                .relation(fact)
                .iter()
                .filter(|t| cfd.lhs_pat().matches_tuple(t, cfd.lhs()))
                .count();
            assert!(hits >= 2, "planted pattern must have support: {hits}");
        }
    }

    #[test]
    fn drifting_pairs_hold_on_the_prefix_and_break_after_onset() {
        let cfg = PlantedSigmaConfig {
            tuples: 400,
            fd_pairs: 3,
            drift_pairs: 1,
            drift_onset: 0.5,
            ..PlantedSigmaConfig::default()
        };
        let planted = clean_database_with_hidden_sigma(&cfg, &mut StdRng::seed_from_u64(77));
        assert_eq!(planted.drift_onset_row, 200);
        assert_eq!(
            planted.cfds.len(),
            (cfg.fd_pairs - 1) * (1 + cfg.constant_rows_per_pair),
            "the drifting pair leaves the stable ground truth"
        );
        assert_eq!(planted.drifted_cfds.len(), 1 + cfg.constant_rows_per_pair);
        // Stable Σ (and the CINDs: drift never touches key columns)
        // hold on the whole instance...
        assert!(condep_cfd::satisfy::satisfies_all(
            &planted.db,
            &planted.cfds
        ));
        assert!(condep_core::satisfy::satisfies_all(
            &planted.db,
            &planted.cinds
        ));
        // ...the drifting pair's do not...
        assert!(!condep_cfd::satisfy::satisfies_all(
            &planted.db,
            &planted.drifted_cfds
        ));
        // ...but they are exact on the pre-onset prefix (rows keep
        // generation order as dense positions).
        let fact = planted.db.schema().rel_id("fact").unwrap();
        let mut prefix = Database::empty(planted.db.schema().clone());
        for t in planted
            .db
            .relation(fact)
            .iter()
            .take(planted.drift_onset_row)
        {
            prefix.insert(fact, t.clone()).unwrap();
        }
        assert!(condep_cfd::satisfy::satisfies_all(
            &prefix,
            &planted.drifted_cfds
        ));
        // Determinism holds with drift in play.
        let again = clean_database_with_hidden_sigma(&cfg, &mut StdRng::seed_from_u64(77));
        assert_eq!(again.drifted_cfds, planted.drifted_cfds);
        assert_eq!(again.db.relation(fact), planted.db.relation(fact));
    }

    #[test]
    fn planted_database_is_deterministic() {
        let cfg = PlantedSigmaConfig {
            tuples: 200,
            ..PlantedSigmaConfig::default()
        };
        let a = clean_database_with_hidden_sigma(&cfg, &mut StdRng::seed_from_u64(9));
        let b = clean_database_with_hidden_sigma(&cfg, &mut StdRng::seed_from_u64(9));
        assert_eq!(a.cfds, b.cfds);
        assert_eq!(a.cinds, b.cinds);
        for (rel, inst) in a.db.iter() {
            assert_eq!(inst, b.db.relation(rel));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let (schema, cfds, cinds, witness) = setup(5);
        let cfg = DirtyDataConfig::default();
        let a = dirty_database(
            &schema,
            &cfds,
            &cinds,
            &witness,
            &cfg,
            &mut StdRng::seed_from_u64(6),
        );
        let b = dirty_database(
            &schema,
            &cfds,
            &cinds,
            &witness,
            &cfg,
            &mut StdRng::seed_from_u64(6),
        );
        assert_eq!(a.db.total_tuples(), b.db.total_tuples());
        assert_eq!(a.injected.len(), b.injected.len());
    }
}
