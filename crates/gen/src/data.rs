//! Dirty-data generation for the data-cleaning workloads.
//!
//! The paper motivates CINDs/CFDs with dirty bank data (Figure 1's
//! `t12`); this module scales that scenario: it builds a database that
//! satisfies a constraint set (by replicating perturbed copies of a
//! hidden witness) and then injects a controlled fraction of violations,
//! recording the ground truth so detectors can be scored.

use crate::constraints::HiddenWitness;
use condep_cfd::NormalCfd;
use condep_core::NormalCind;
use condep_model::{Database, RelId, Schema, Tuple, Value};
use rand::Rng;
use std::sync::Arc;

/// Parameters of the dirty-database generator.
#[derive(Clone, Copy, Debug)]
pub struct DirtyDataConfig {
    /// Clean tuples per relation (clones of the witness with fresh
    /// values on unconstrained attributes).
    pub tuples_per_relation: usize,
    /// Number of violations to inject per relation that is a CIND
    /// source (a triggered tuple whose join value is scrambled).
    pub violations_per_relation: usize,
}

impl Default for DirtyDataConfig {
    fn default() -> Self {
        DirtyDataConfig {
            tuples_per_relation: 100,
            violations_per_relation: 5,
        }
    }
}

/// The generated instance plus ground truth.
#[derive(Clone, Debug)]
pub struct DirtyDatabase {
    /// The instance (clean base + injected noise).
    pub db: Database,
    /// `(relation, tuple)` pairs injected as violations.
    pub injected: Vec<(RelId, Tuple)>,
}

/// Attributes of `rel` constrained by any CFD/CIND pattern or matched
/// list — these keep their witness values in clean clones.
fn constrained_attrs(
    rel: RelId,
    cfds: &[NormalCfd],
    cinds: &[NormalCind],
) -> Vec<condep_model::AttrId> {
    let mut out = std::collections::BTreeSet::new();
    for c in cfds.iter().filter(|c| c.rel() == rel) {
        out.extend(c.lhs().iter().copied());
        out.insert(c.rhs());
    }
    for c in cinds {
        if c.lhs_rel() == rel {
            out.extend(c.x().iter().copied());
            out.extend(c.xp().iter().map(|(a, _)| *a));
        }
        if c.rhs_rel() == rel {
            out.extend(c.y().iter().copied());
            out.extend(c.yp().iter().map(|(a, _)| *a));
        }
    }
    out.into_iter().collect()
}

/// Builds a database satisfying `(cfds, cinds)` by cloning the hidden
/// witness with fresh values on unconstrained attributes, then injects
/// violations by scrambling the `Yp`-ish fields of CIND source tuples.
pub fn dirty_database<R: Rng>(
    schema: &Arc<Schema>,
    cfds: &[NormalCfd],
    cinds: &[NormalCind],
    witness: &HiddenWitness,
    cfg: &DirtyDataConfig,
    rng: &mut R,
) -> DirtyDatabase {
    let mut db = Database::empty(schema.clone());
    // Clean base: perturbed witness clones. Unconstrained attributes get
    // unique values so clones do not collide; constrained ones keep the
    // witness value, preserving satisfaction of every constraint.
    let mut serial = 0u64;
    for (rel, rs) in schema.iter() {
        let constrained = constrained_attrs(rel, cfds, cinds);
        let base = witness.tuple(rel);
        for _ in 0..cfg.tuples_per_relation {
            let values: Vec<Value> = rs
                .iter()
                .map(|(a, attr)| {
                    if constrained.contains(&a) {
                        base[a].clone()
                    } else if let Some(vs) = attr.domain().values() {
                        vs[rng.gen_range(0..vs.len())].clone()
                    } else {
                        serial += 1;
                        Value::str(format!("row{serial}"))
                    }
                })
                .collect();
            db.insert(rel, Tuple::new(values)).expect("well-typed");
        }
    }
    debug_assert!(condep_cfd::satisfy::satisfies_all(&db, cfds));
    debug_assert!(condep_core::satisfy::satisfies_all(&db, cinds));

    // Noise: for CINDs with a trigger-able source, insert tuples that
    // trigger but scramble a matched column (so the target lookup
    // fails). Only infinite matched columns are scrambled, guaranteeing
    // the scrambled value misses every target.
    let mut injected = Vec::new();
    for cind in cinds {
        if cind.x().is_empty() {
            continue;
        }
        let rel = cind.lhs_rel();
        let base = witness.tuple(rel);
        for k in 0..cfg.violations_per_relation {
            let scramble_attr = cind.x()[k % cind.x().len()];
            serial += 1;
            let t = base.with(scramble_attr, Value::str(format!("dirty{serial}")));
            if cind.triggers(&t) && db.insert(rel, t.clone()).unwrap_or(false) {
                injected.push((rel, t));
            }
        }
    }
    DirtyDatabase { db, injected }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraints::{generate_sigma, SigmaGenConfig};
    use crate::schema::{random_schema, SchemaGenConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(seed: u64) -> (Arc<Schema>, Vec<NormalCfd>, Vec<NormalCind>, HiddenWitness) {
        let schema = random_schema(
            &SchemaGenConfig {
                relations: 6,
                attrs_min: 3,
                attrs_max: 6,
                finite_ratio: 0.2,
                finite_dom_min: 2,
                finite_dom_max: 8,
            },
            &mut StdRng::seed_from_u64(seed),
        );
        let (cfds, cinds, witness) = generate_sigma(
            &schema,
            &SigmaGenConfig {
                cardinality: 40,
                consistent: true,
                ..SigmaGenConfig::default()
            },
            &mut StdRng::seed_from_u64(seed + 1),
        );
        (schema, cfds, cinds, witness.unwrap())
    }

    #[test]
    fn clean_base_satisfies_sigma() {
        let (schema, cfds, cinds, witness) = setup(1);
        let out = dirty_database(
            &schema,
            &cfds,
            &cinds,
            &witness,
            &DirtyDataConfig {
                tuples_per_relation: 30,
                violations_per_relation: 0,
            },
            &mut StdRng::seed_from_u64(2),
        );
        assert!(out.injected.is_empty());
        assert!(condep_cfd::satisfy::satisfies_all(&out.db, &cfds));
        assert!(condep_core::satisfy::satisfies_all(&out.db, &cinds));
        // Every relation is populated (clones of fully-constrained
        // relations may collapse under set semantics, so only lower-bound
        // by one per relation).
        for (_, inst) in out.db.iter() {
            assert!(!inst.is_empty());
        }
        assert!(out.db.total_tuples() <= 30 * schema.len());
    }

    #[test]
    fn injected_tuples_are_detected_as_violations() {
        let (schema, cfds, cinds, witness) = setup(3);
        let out = dirty_database(
            &schema,
            &cfds,
            &cinds,
            &witness,
            &DirtyDataConfig {
                tuples_per_relation: 20,
                violations_per_relation: 3,
            },
            &mut StdRng::seed_from_u64(4),
        );
        if out.injected.is_empty() {
            // No CIND with a non-empty X in this draw — nothing to check.
            return;
        }
        // Every injected tuple shows up in some CIND's violation list.
        let mut caught = 0;
        for (rel, t) in &out.injected {
            let found = cinds.iter().any(|c| {
                c.lhs_rel() == *rel
                    && condep_core::find_violations(&out.db, c)
                        .iter()
                        .any(|v| out.db.relation(*rel).get(v.tuple) == Some(t))
            });
            if found {
                caught += 1;
            }
        }
        assert_eq!(
            caught,
            out.injected.len(),
            "all injected dirt is detectable"
        );
    }

    #[test]
    fn generation_is_deterministic() {
        let (schema, cfds, cinds, witness) = setup(5);
        let cfg = DirtyDataConfig::default();
        let a = dirty_database(
            &schema,
            &cfds,
            &cinds,
            &witness,
            &cfg,
            &mut StdRng::seed_from_u64(6),
        );
        let b = dirty_database(
            &schema,
            &cfds,
            &cinds,
            &witness,
            &cfg,
            &mut StdRng::seed_from_u64(6),
        );
        assert_eq!(a.db.total_tuples(), b.db.total_tuples());
        assert_eq!(a.injected.len(), b.injected.len());
    }
}
