#![warn(missing_docs)]

//! # condep-gen
//!
//! Seeded workload generators reproducing the experimental setting of
//! Section 6:
//!
//! * schemas with up to 100 relations, at most 15 attributes each, a
//!   configurable ratio `F` of finite-domain attributes, and finite
//!   domains of 2–100 elements ([`schema`]);
//! * random sets Σ of 75% CFDs / 25% CINDs of any cardinality
//!   ([`constraints`]), in two flavours:
//!   - **consistent** sets, built around a hidden single-tuple-per-
//!     relation witness ("we took care to generate a consistent set Σ …
//!     by ensuring that there exists at least one possible value for
//!     each attribute so as to make a witness database");
//!   - **random** sets with no consistency guarantee;
//! * dirty databases for the data-cleaning example and benches
//!   ([`data`]): an instance satisfying Σ with a controlled fraction of
//!   injected violations — built from a hidden witness
//!   ([`data::dirty_database`]) or by corrupting an existing clean
//!   instance with typos, orphaned CIND sources and duplicate-key
//!   conflicts ([`data::dirtied_database`], the repair workload);
//! * clean databases around a **planted** Σ with genuine value
//!   diversity ([`data::clean_database_with_hidden_sigma`]): the
//!   discovery ground truth — a miner run on the instance should
//!   recover a Σ′ implying every planted dependency.
//!
//! All generators take an explicit [`rand::rngs::StdRng`], so every
//! experiment is reproducible from its seed.

pub mod constraints;
pub mod data;
pub mod schema;
pub mod sigma_families;
pub mod workload;

pub use constraints::{generate_sigma, HiddenWitness, SigmaGenConfig};
pub use data::{
    clean_database_with_hidden_sigma, dirtied_database, dirty_database, DirtiedDatabase,
    DirtyDataConfig, InjectedDirt, PlantedDatabase, PlantedSigmaConfig,
};
pub use schema::{random_schema, SchemaGenConfig};
pub use sigma_families::{sigma_families, ExpectedVerdict, FamilyExpectation, SigmaFamily};
pub use workload::{
    adversarial_majority_dirt, churn_plan, AdversarialDatabase, AdversarialDirtConfig, ChurnConfig,
    ChurnOp, ChurnPlan, PoisonedClass,
};
