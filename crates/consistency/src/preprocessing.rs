//! Algorithm `preProcessing` — Figure 7.
//!
//! Reduces `G[Σ]` by deleting relations whose `CFD(R)` is inconsistent
//! (after shielding their in-neighbours with *non-triggering CFDs*
//! `CIND(Rj, R)⊥`) and relations nothing points at. Returns:
//!
//! * `1` (consistent) as soon as some relation's instantiated template
//!   `τ(R)` satisfies `CFD(R)` and triggers no CIND — the single-tuple
//!   database `{τ(R)}` is then a witness;
//! * `0` (inconsistent) when the graph empties — no relation can anchor
//!   a nonempty instance;
//! * `−1` (undecided) otherwise, leaving the reduced graph (only
//!   strongly connected cores) for `RandomChecking`.

use crate::cfd_checking::CfdChecker;
use crate::graph::DepGraph;
use crate::sigma::ConstraintSet;
use condep_cfd::NormalCfd;
use condep_core::NormalCind;
use condep_model::{Database, PValue, PatternRow, RelId, Schema};
use std::collections::{BTreeSet, VecDeque};

/// Outcome of `preProcessing`.
#[derive(Clone, Debug)]
pub enum PreVerdict {
    /// Return value `1`: Σ is consistent, with the witness database.
    Consistent(Database),
    /// Return value `0`: Σ is (reported) inconsistent.
    Inconsistent,
    /// Return value `−1`: undecided; the reduced graph remains.
    Undecided,
}

impl PreVerdict {
    /// The paper's numeric return value.
    pub fn code(&self) -> i8 {
        match self {
            PreVerdict::Consistent(_) => 1,
            PreVerdict::Inconsistent => 0,
            PreVerdict::Undecided => -1,
        }
    }
}

/// Builds the non-triggering CFDs `CIND(Rj, R)⊥` for one CIND: two CFDs
/// `(Rj: Xp → A, (tp[Xp] ‖ c1))`, `(Rj: Xp → A, (tp[Xp] ‖ c2))` with
/// distinct `c1, c2 ∈ dom(A)` — together they deny every `Rj` tuple
/// matching `tp[Xp]`.
pub fn non_triggering_cfds(schema: &Schema, cind: &NormalCind) -> Vec<NormalCfd> {
    let rel = cind.lhs_rel();
    let Ok(rs) = schema.relation(rel) else {
        return Vec::new();
    };
    // Pick an attribute with at least two values.
    let target = rs.iter().find(|(_, a)| match a.domain().size() {
        None => true,
        Some(n) => n >= 2,
    });
    let Some((attr, a_meta)) = target else {
        // Degenerate relation where every domain is a singleton: no CFD
        // can deny a tuple. Such schemas cannot arise from our
        // generators; shield with an (ineffective) tautology and let the
        // downstream chase catch the conflict.
        return Vec::new();
    };
    let dom = a_meta.domain();
    let c1 = dom
        .fresh_value(std::iter::empty())
        .expect("domain has at least one value");
    let c2 = dom
        .fresh_value([&c1])
        .expect("domain has at least two values");
    let lhs: Vec<_> = cind.xp().iter().map(|(a, _)| *a).collect();
    let lhs_pat = PatternRow::new(
        cind.xp()
            .iter()
            .map(|(_, v)| PValue::Const(v.clone()))
            .collect::<Vec<_>>(),
    );
    vec![
        NormalCfd::new(rel, lhs.clone(), lhs_pat.clone(), attr, PValue::Const(c1)),
        NormalCfd::new(rel, lhs, lhs_pat, attr, PValue::Const(c2)),
    ]
}

/// Does `tau` (a tuple of `rel`) trigger any CIND of Σ?
fn triggers_any(sigma: &ConstraintSet, rel: RelId, tau: &condep_model::Tuple) -> bool {
    sigma
        .cinds()
        .iter()
        .any(|c| c.lhs_rel() == rel && c.triggers(tau))
}

/// Algorithm `preProcessing` (Figure 7). Mutates `graph` in place —
/// `Checking` reads the reduced graph on the `Undecided` path.
pub fn pre_processing(
    graph: &mut DepGraph,
    sigma: &ConstraintSet,
    checker: &mut dyn CfdChecker,
) -> PreVerdict {
    let schema = sigma.schema().clone();
    // Line 1: Q := topological order (targets first).
    let mut queue: VecDeque<RelId> = graph.topological_queue().into();
    let mut in_queue: BTreeSet<RelId> = queue.iter().copied().collect();

    // Lines 2–12.
    while let Some(rel) = queue.pop_front() {
        in_queue.remove(&rel);
        if !graph.is_alive(rel) {
            continue;
        }
        let cfds = graph.node(rel).cfds.clone();
        match checker.check(&schema, rel, &cfds) {
            Some(tau) => {
                // Lines 4–6.
                graph.node_mut(rel).tau = Some(tau.clone());
                if !triggers_any(sigma, rel, &tau) {
                    let mut db = Database::empty(schema.clone());
                    db.insert(rel, tau).expect("witness well-typed");
                    debug_assert!(sigma.satisfied_by(&db));
                    return PreVerdict::Consistent(db);
                }
            }
            None => {
                // Lines 7–12: shield the in-neighbours, delete R.
                for rj in graph.predecessors(rel) {
                    let mut shield = Vec::new();
                    for cind in graph.edge_cinds(rj, rel) {
                        shield.extend(non_triggering_cfds(&schema, cind));
                    }
                    graph.node_mut(rj).cfds.extend(shield);
                    if !in_queue.contains(&rj) {
                        queue.push_back(rj);
                        in_queue.insert(rj);
                    }
                }
                graph.delete_node(rel);
            }
        }
    }

    // Line 13: delete nodes with indegree 0, iterating so the remnant
    // "consists of strongly connected components".
    loop {
        let removable: Vec<RelId> = graph
            .live_rels()
            .into_iter()
            .filter(|r| graph.indegree(*r) == 0)
            .collect();
        if removable.is_empty() {
            break;
        }
        for r in removable {
            graph.delete_node(r);
        }
    }

    // Lines 14–16.
    if graph.is_empty() {
        PreVerdict::Inconsistent
    } else {
        PreVerdict::Undecided
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfd_checking::ChaseCfdChecker;
    use condep_core::fixtures::{example_5_4_cinds, example_5_4_schema, example_5_5_psi4_prime};
    use condep_model::{prow, Value};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::Arc;

    fn checker() -> ChaseCfdChecker<StdRng> {
        ChaseCfdChecker::new(64, StdRng::seed_from_u64(5))
    }

    /// The CFDs of Example 5.4: φ1, φ2 from Example 5.1 plus φ3–φ6.
    fn example_5_4_cfds(schema: &condep_model::Schema) -> Vec<NormalCfd> {
        vec![
            NormalCfd::parse(schema, "r1", &["e"], prow![_], "f", PValue::Any).unwrap(),
            NormalCfd::parse(schema, "r2", &["h"], prow![_], "g", PValue::constant("c")).unwrap(),
            // φ3 = (R3: A → B, (c || _))
            NormalCfd::parse(schema, "r3", &["a"], prow!["c"], "b", PValue::Any).unwrap(),
            // φ4, φ5 = (R4: C → D, (_ || a)), (_ || b): inconsistent pair.
            NormalCfd::parse(schema, "r4", &["c"], prow![_], "d", PValue::constant("a")).unwrap(),
            NormalCfd::parse(schema, "r4", &["c"], prow![_], "d", PValue::constant("b")).unwrap(),
            // φ6 = (R5: I → J, (_ || c))
            NormalCfd::parse(schema, "r5", &["i"], prow![_], "j", PValue::constant("c")).unwrap(),
        ]
    }

    #[test]
    fn example_5_5_first_variant_returns_consistent() {
        // With ψ4 = (R3[A; B=b] ⊆ R4[C; nil]): R4's CFDs are
        // inconsistent, R4 is deleted, non-triggering CFDs land on R3 —
        // which then has a witness triggering nothing: return 1.
        let schema = example_5_4_schema();
        let sigma = ConstraintSet::new(
            schema.clone(),
            example_5_4_cfds(&schema),
            example_5_4_cinds(&schema),
        );
        let mut graph = DepGraph::build(&sigma);
        let verdict = pre_processing(&mut graph, &sigma, &mut checker());
        match verdict {
            PreVerdict::Consistent(db) => {
                assert!(!db.is_empty());
                assert!(sigma.satisfied_by(&db));
            }
            other => panic!("expected Consistent, got {other:?}"),
        }
    }

    #[test]
    fn example_5_5_second_variant_reduces_to_r1_r2() {
        // With ψ4' = (R3[A; nil] ⊆ R4[C; nil]) the shield CFDs on R3 are
        // unconditional and inconsistent: R3 dies too; R5 is deleted at
        // line 13; the reduced graph is Figure 8 ({R1, R2}) and the
        // verdict −1.
        let schema = example_5_4_schema();
        let mut cinds = example_5_4_cinds(&schema);
        cinds[3] = example_5_5_psi4_prime(&schema); // replace ψ4
        let sigma = ConstraintSet::new(schema.clone(), example_5_4_cfds(&schema), cinds);
        let mut graph = DepGraph::build(&sigma);
        let verdict = pre_processing(&mut graph, &sigma, &mut checker());
        assert_eq!(verdict.code(), -1);
        let live: Vec<RelId> = graph.live_rels();
        let r1 = schema.rel_id("r1").unwrap();
        let r2 = schema.rel_id("r2").unwrap();
        assert_eq!(live, vec![r1, r2]);
        assert_eq!(graph.connected_components().len(), 1);
    }

    #[test]
    fn all_relations_inconsistent_returns_inconsistent() {
        // A single relation whose CFDs conflict unconditionally, plus a
        // self-loop CIND so the empty-trigger early exit cannot fire.
        let schema = Arc::new(
            condep_model::Schema::builder()
                .relation_str("r", &["a", "b"])
                .finish(),
        );
        let cfds = vec![
            NormalCfd::parse(&schema, "r", &[], prow![], "a", PValue::constant("x")).unwrap(),
            NormalCfd::parse(&schema, "r", &[], prow![], "a", PValue::constant("y")).unwrap(),
        ];
        let cind = NormalCind::parse(&schema, "r", &["a"], &[], "r", &["b"], &[]).unwrap();
        let sigma = ConstraintSet::new(schema.clone(), cfds, vec![cind]);
        let mut graph = DepGraph::build(&sigma);
        let verdict = pre_processing(&mut graph, &sigma, &mut checker());
        assert_eq!(verdict.code(), 0);
        assert!(graph.is_empty());
    }

    #[test]
    fn trigger_free_witness_short_circuits() {
        // One relation, satisfiable CFDs, no CINDs at all: immediate 1.
        let schema = Arc::new(
            condep_model::Schema::builder()
                .relation_str("r", &["a"])
                .finish(),
        );
        let cfds =
            vec![NormalCfd::parse(&schema, "r", &[], prow![], "a", PValue::constant("v")).unwrap()];
        let sigma = ConstraintSet::new(schema.clone(), cfds, vec![]);
        let mut graph = DepGraph::build(&sigma);
        match pre_processing(&mut graph, &sigma, &mut checker()) {
            PreVerdict::Consistent(db) => {
                let rel = schema.rel_id("r").unwrap();
                assert_eq!(db.relation(rel).len(), 1);
            }
            other => panic!("expected Consistent, got {other:?}"),
        }
    }

    #[test]
    fn non_triggering_cfds_deny_exactly_the_pattern() {
        let schema = example_5_4_schema();
        let cinds = example_5_4_cinds(&schema);
        // ψ4 = (R3[A; B=b] ⊆ R4[C; nil]).
        let shield = non_triggering_cfds(&schema, &cinds[3]);
        assert_eq!(shield.len(), 2);
        // Both shields share the premise B = b and force different
        // constants on the same attribute.
        assert_eq!(shield[0].lhs_pat(), shield[1].lhs_pat());
        assert_eq!(shield[0].rhs(), shield[1].rhs());
        assert_ne!(shield[0].rhs_pat(), shield[1].rhs_pat());
        // A tuple matching B = b violates the pair; one not matching is
        // free.
        use condep_model::{tuple, Database};
        let r3 = schema.rel_id("r3").unwrap();
        let mut db = Database::empty(schema.clone());
        db.insert(r3, tuple!["anything", "b"]).unwrap();
        assert!(!condep_cfd::satisfy::satisfies_all(&db, &shield));
        let mut db2 = Database::empty(schema.clone());
        db2.insert(r3, tuple!["anything", "not-b"]).unwrap();
        assert!(condep_cfd::satisfy::satisfies_all(&db2, &shield));
    }

    #[test]
    fn unconditional_cind_shield_is_inconsistent() {
        // ψ4' has empty Xp: the shields conflict on every tuple.
        let schema = example_5_4_schema();
        let psi4p = example_5_5_psi4_prime(&schema);
        let shield = non_triggering_cfds(&schema, &psi4p);
        let r3 = schema.rel_id("r3").unwrap();
        assert!(checker().check(&schema, r3, &shield).is_none());
    }

    #[test]
    fn empty_sigma_is_consistent() {
        let schema = example_5_4_schema();
        let sigma = ConstraintSet::new(schema.clone(), vec![], vec![]);
        let mut graph = DepGraph::build(&sigma);
        assert_eq!(pre_processing(&mut graph, &sigma, &mut checker()).code(), 1);
    }

    #[test]
    fn example_4_2_conflict_is_detected() {
        // φ = (R: A → B, (_ ‖ a)) and ψ = (R[nil; nil] ⊆ R[nil; B = b]):
        // individually fine, jointly inconsistent (Example 4.2).
        let (schema, cind) = condep_core::fixtures::example_4_2_cind();
        let phi =
            NormalCfd::parse(&schema, "r", &["a"], prow![_], "b", PValue::constant("a")).unwrap();
        let sigma = ConstraintSet::new(schema.clone(), vec![phi], vec![cind]);
        let mut graph = DepGraph::build(&sigma);
        let verdict = pre_processing(&mut graph, &sigma, &mut checker());
        // CFD(R) alone is consistent and τ(R) always triggers ψ (empty
        // Xp), so preProcessing cannot answer 1; the self-loop keeps R
        // alive: −1, passed on to RandomChecking.
        assert_eq!(verdict.code(), -1);
        let _ = Value::str("b");
    }
}
