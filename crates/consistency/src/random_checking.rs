//! Algorithm `RandomChecking` — Figure 5, with the Section 5.2
//! improvement.
//!
//! Each run seeds a single fresh-variable tuple in a randomly chosen
//! relation, chases the CFDs first (which may pin some variables to
//! pattern constants), applies a random valuation `ρ` to the *remaining*
//! finite-domain variables, and then runs the instantiated chase
//! `chaseI(ρ(D), Σ)` with interleaved CFD fixpoints. A defined chase
//! yields a concrete witness database (fresh values for leftover
//! infinite-domain variables), which is verified against Σ — making the
//! `true` answer sound by construction (Theorem 5.1). Up to `K` runs are
//! attempted.

use crate::sigma::ConstraintSet;
use condep_chase::ops::seed_tuple;
use condep_chase::{chase, ChaseConfig, ChaseOutcome, TemplateDb};
use condep_model::{Database, RelId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of `RandomChecking`.
#[derive(Clone, Debug)]
pub struct RandomCheckingConfig {
    /// `K` — the number of valuations/runs to attempt (20 in Section 6).
    pub k: usize,
    /// Chase parameters (`N`, `T`, `chaseI` instantiation).
    pub chase: ChaseConfig,
    /// RNG seed — runs are deterministic given the seed.
    pub seed: u64,
}

impl Default for RandomCheckingConfig {
    fn default() -> Self {
        RandomCheckingConfig {
            k: 20,
            chase: ChaseConfig::default(),
            seed: 0,
        }
    }
}

/// One chase run: seed `rel`, then run the improved `chaseI` (the engine
/// chases the CFDs first, instantiates the surviving finite-domain
/// variables constraint-aware — procedure `CFD_Checking` — and
/// interleaves the fixpoint after every IND step). Returns the witness
/// database if the chase is defined.
fn one_run(
    sigma: &ConstraintSet,
    rel: RelId,
    cfg: &ChaseConfig,
    rng: &mut StdRng,
) -> Option<Database> {
    let mut db = TemplateDb::empty(sigma.schema().clone());
    seed_tuple(&mut db, rel);
    match chase(db, sigma.cfds(), sigma.cinds(), cfg, rng) {
        ChaseOutcome::Defined(template) => {
            let witness = template.instantiate_fresh(&sigma.all_constants())?;
            // Theorem 5.1's certificate: a defined chase must produce a
            // satisfying instance; verify rather than trust.
            if !witness.is_empty() && sigma.satisfied_by(&witness) {
                Some(witness)
            } else {
                debug_assert!(false, "defined chase produced a non-witness — engine bug");
                None
            }
        }
        ChaseOutcome::Undefined(_) => None,
    }
}

/// Algorithm `RandomChecking`: returns a witness database if one of the
/// `K` runs produces a defined chase, `None` otherwise (which does *not*
/// prove inconsistency — the procedure is a sound heuristic).
///
/// `candidate_rels` restricts the randomly chosen seed relation —
/// `Checking` passes the relations of one connected component; `None`
/// means any relation of the schema.
pub fn random_checking(
    sigma: &ConstraintSet,
    config: &RandomCheckingConfig,
    candidate_rels: Option<&[RelId]>,
) -> Option<Database> {
    let all: Vec<RelId> = match candidate_rels {
        Some(rels) => rels.to_vec(),
        None => sigma.schema().iter().map(|(r, _)| r).collect(),
    };
    if all.is_empty() {
        return None;
    }
    let mut rng = StdRng::seed_from_u64(config.seed);
    for _ in 0..config.k {
        let rel = all[rng.gen_range(0..all.len())];
        if let Some(witness) = one_run(sigma, rel, &config.chase, &mut rng) {
            return Some(witness);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use condep_cfd::NormalCfd;
    use condep_core::fixtures::{example_5_1_cinds, example_5_1_schema};
    use condep_core::NormalCind;
    use condep_model::{prow, PValue};

    fn cfg(k: usize) -> RandomCheckingConfig {
        RandomCheckingConfig {
            k,
            seed: 99,
            ..RandomCheckingConfig::default()
        }
    }

    fn example_5_1_sigma(finite_h: bool) -> ConstraintSet {
        let schema = example_5_1_schema(finite_h);
        let cfds = vec![
            NormalCfd::parse(&schema, "r1", &["e"], prow![_], "f", PValue::Any).unwrap(),
            NormalCfd::parse(&schema, "r2", &["h"], prow![_], "g", PValue::constant("c")).unwrap(),
        ];
        let cinds = example_5_1_cinds(&schema);
        ConstraintSet::new(schema, cfds, cinds)
    }

    #[test]
    fn example_5_1_is_accepted() {
        // The paper's Example 5.1 Σ is consistent; the heuristic finds a
        // witness quickly.
        let sigma = example_5_1_sigma(false);
        let witness = random_checking(&sigma, &cfg(20), None).expect("consistent");
        assert!(!witness.is_empty());
        assert!(sigma.satisfied_by(&witness));
    }

    #[test]
    fn example_5_2_with_finite_h_is_accepted() {
        // With dom(H) = {0, 1} the valuations matter (Example 5.3 walks
        // ρ1); some run still succeeds.
        let sigma = example_5_1_sigma(true);
        let witness = random_checking(&sigma, &cfg(20), None).expect("consistent");
        assert!(sigma.satisfied_by(&witness));
    }

    #[test]
    fn example_4_2_conflict_is_rejected() {
        // φ = (R: A → B, (_ ‖ a)), ψ = (R ⊆ R[nil; B = b]): genuinely
        // inconsistent — every run's chase must be undefined.
        let (schema, cind) = condep_core::fixtures::example_4_2_cind();
        let phi =
            NormalCfd::parse(&schema, "r", &["a"], prow![_], "b", PValue::constant("a")).unwrap();
        let sigma = ConstraintSet::new(schema, vec![phi], vec![cind]);
        assert!(random_checking(&sigma, &cfg(30), None).is_none());
    }

    #[test]
    fn candidate_restriction_controls_the_seed() {
        // Seeding only r5-like isolated relations cannot trip over the
        // rest of Σ.
        let sigma = example_5_1_sigma(false);
        let r1 = sigma.schema().rel_id("r1").unwrap();
        let witness = random_checking(&sigma, &cfg(10), Some(&[r1])).expect("seeded at r1");
        assert!(!witness.relation(r1).is_empty());
    }

    #[test]
    fn empty_candidates_fail_fast() {
        let sigma = example_5_1_sigma(false);
        assert!(random_checking(&sigma, &cfg(10), Some(&[])).is_none());
    }

    #[test]
    fn k_zero_never_succeeds() {
        let sigma = example_5_1_sigma(false);
        assert!(random_checking(&sigma, &cfg(0), None).is_none());
    }

    #[test]
    fn tuple_cap_failure_is_survivable_across_runs() {
        // A cyclic CIND pair with a tiny cap: runs may fail on the cap
        // yet the set is consistent; a defined run must eventually
        // appear (the cycle closes within two tuples).
        let schema = example_5_1_schema(false);
        let forward = NormalCind::parse(&schema, "r1", &["e"], &[], "r2", &["g"], &[]).unwrap();
        let backward = NormalCind::parse(&schema, "r2", &["g"], &[], "r1", &["e"], &[]).unwrap();
        let sigma = ConstraintSet::new(schema, vec![], vec![forward, backward]);
        let config = RandomCheckingConfig {
            k: 10,
            seed: 3,
            chase: ChaseConfig {
                tuple_cap: 4,
                ..ChaseConfig::default()
            },
        };
        let witness = random_checking(&sigma, &config, None).expect("consistent");
        assert!(sigma.satisfied_by(&witness));
    }
}
