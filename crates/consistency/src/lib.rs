#![warn(missing_docs)]

//! # condep-consistency
//!
//! Heuristic consistency analysis for CFDs + CINDs — Section 5 of the
//! paper.
//!
//! The consistency problem for CFDs and CINDs *together* is undecidable
//! (Theorem 4.2), so any polynomial procedure is necessarily heuristic:
//! **sound** when it answers `true` (a witness database was actually
//! built — Theorem 5.1) but not necessarily complete. This crate
//! implements the paper's algorithm stack:
//!
//! * [`sigma::ConstraintSet`] — a set Σ of normal-form CFDs and CINDs
//!   over one schema;
//! * [`cfd_checking`] — procedure `CFD_Checking` in both variants of
//!   Section 5.2: chase-based (with the `K_CFD` valuation budget of
//!   Figure 10(b)) and SAT-based (via `condep-sat`, standing in for
//!   SAT4j);
//! * [`graph`] — the dependency graph `G[Σ]` of Section 5.3 (one vertex
//!   per relation with `CFD(R)` and a tuple template `τ(R)`, one edge
//!   per CIND direction) plus Tarjan SCCs and the targets-first
//!   topological order;
//! * [`preprocessing`] — algorithm `preProcessing` (Figure 7): local CFD
//!   consistency per relation, non-triggering CFDs `CIND(Rj, R)⊥`, node
//!   deletion, and the 1 / 0 / −1 verdict;
//! * [`random_checking`] — algorithm `RandomChecking` (Figure 5) with
//!   the Section 5.2 improvement (interleaved `CFD_Checking`);
//! * [`checking`] — algorithm `Checking` (Figure 9), the combination.
//!
//! ## Relationship to `condep-analyze`
//!
//! This crate keeps the *paper-faithful* algorithm stack used by the
//! figure benchmarks. For everyday Σ triage prefer
//! `condep_analyze::analyze` — the SAT-backed static-analysis pass with
//! verdicts, **minimal unsat cores**, and lints — which `Validator`,
//! `repair`, and discovery already call. The two share one SAT
//! encoding: [`SatCfdChecker`] is a thin adapter over
//! `condep_analyze::relation_consistency`, so there is a single
//! consistency entry point under the hood. The remaining modules here
//! (chase checker, `G[Σ]` graph, preprocessing, random checking) stay
//! because the paper's Figures 9–11 measure them; treat them as the
//! reproduction surface, not the API of record.

pub mod cfd_checking;
pub mod checking;
pub mod graph;
pub mod implication;
pub mod preprocessing;
pub mod random_checking;
pub mod sigma;

pub use cfd_checking::{CfdChecker, ChaseCfdChecker, SatCfdChecker};
pub use checking::{checking, CheckingConfig};
pub use implication::{refute_implication, RefuteConfig};
pub use preprocessing::{pre_processing, PreVerdict};
pub use random_checking::{random_checking, RandomCheckingConfig};
pub use sigma::ConstraintSet;
