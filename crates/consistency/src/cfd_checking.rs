//! Procedure `CFD_Checking` — Section 5.2.
//!
//! Given `CFD(R)` and the tuple template `τ(R)`, decide whether the CFDs
//! on `R` admit a single-tuple witness and, if so, instantiate `τ(R)`.
//! Two implementations, compared in Figure 10(a):
//!
//! * [`ChaseCfdChecker`] — chases `τ(R)` with the CFDs: constants forced
//!   by definitely-matched premises are propagated to a fixpoint; any
//!   remaining finite-domain fields are sampled (up to `K_CFD`
//!   valuations, the knob of Figure 10(b)). Sound; incomplete only when
//!   sampling misses every good valuation.
//! * [`SatCfdChecker`] — reduces the search to SAT ("we reduce it to
//!   SAT … and then check the consistency of the CFDs by using SAT4j");
//!   our DPLL solver plays SAT4j's role. Complete, but pays for the
//!   encoding (exactly-one constraints over whole finite domains), which
//!   is why it scales worse in Figure 10(a).

use condep_cfd::NormalCfd;
use condep_model::{AttrId, PValue, RelId, Schema, Tuple, Value};
use rand::Rng;
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// A `CFD_Checking` implementation: returns an instantiated witness
/// tuple `τ(R)` when `CFD(R)` is consistent (by its lights), `None`
/// otherwise.
pub trait CfdChecker {
    /// Checks `CFD(R)` and instantiates `τ(R)`.
    fn check(&mut self, schema: &Schema, rel: RelId, cfds: &[NormalCfd]) -> Option<Tuple>;
}

/// Shared propagation: the single-tuple chase fixpoint. `assignment`
/// holds every field already forced or chosen (finite or infinite).
/// Returns `false` on conflict.
fn propagate(cfds: &[NormalCfd], assignment: &mut BTreeMap<AttrId, Value>) -> bool {
    loop {
        let mut changed = false;
        for cfd in cfds {
            let PValue::Const(forced) = cfd.rhs_pat() else {
                continue; // wildcard RHS is vacuous on one tuple
            };
            let matched = cfd
                .lhs()
                .iter()
                .zip(cfd.lhs_pat().cells())
                .all(|(a, cell)| match cell {
                    PValue::Any => true,
                    PValue::Const(c) => assignment.get(a) == Some(c),
                });
            if !matched {
                continue;
            }
            match assignment.get(&cfd.rhs()) {
                Some(v) if v == forced => {}
                Some(_) => return false,
                None => {
                    assignment.insert(cfd.rhs(), forced.clone());
                    changed = true;
                }
            }
        }
        if !changed {
            return true;
        }
    }
}

/// Materializes the witness tuple from the final assignment: assigned
/// fields keep their values, free fields take fresh values that avoid
/// the constraint constants (so the witness triggers nothing avoidable).
fn materialize(
    schema: &Schema,
    rel: RelId,
    cfds: &[NormalCfd],
    assignment: &BTreeMap<AttrId, Value>,
) -> Option<Tuple> {
    let rs = schema.relation(rel).ok()?;
    let mut avoid_per_attr: HashMap<AttrId, Vec<Value>> = HashMap::new();
    for cfd in cfds {
        for (a, v) in cfd.pattern_constants() {
            avoid_per_attr.entry(a).or_default().push(v);
        }
    }
    let values: Option<Vec<Value>> = rs
        .iter()
        .map(|(a, attr)| {
            if let Some(v) = assignment.get(&a) {
                return Some(v.clone());
            }
            let avoid = avoid_per_attr.get(&a).map(Vec::as_slice).unwrap_or(&[]);
            attr.domain()
                .fresh_value(avoid)
                .or_else(|| attr.domain().values().map(|vs| vs[0].clone()))
        })
        .collect();
    values.map(Tuple::new)
}

/// Finite-domain attributes mentioned by the CFDs but not yet assigned.
fn open_finite_attrs(
    schema: &Schema,
    rel: RelId,
    cfds: &[NormalCfd],
    assignment: &BTreeMap<AttrId, Value>,
) -> Vec<(AttrId, Vec<Value>)> {
    let Ok(rs) = schema.relation(rel) else {
        return Vec::new();
    };
    let mut mentioned: BTreeSet<AttrId> = BTreeSet::new();
    for cfd in cfds {
        for a in cfd.lhs().iter().chain([&cfd.rhs()]) {
            mentioned.insert(*a);
        }
    }
    mentioned
        .into_iter()
        .filter(|a| !assignment.contains_key(a))
        .filter_map(|a| {
            let attr = rs.attribute(a).ok()?;
            attr.domain().values().map(|vs| (a, vs.to_vec()))
        })
        .collect()
}

/// The chase-based `CFD_Checking` with a `K_CFD` valuation budget.
pub struct ChaseCfdChecker<R: Rng> {
    /// `K_CFD`: how many valuations of the open finite-domain fields to
    /// try before giving up (Figure 10(b) sweeps this).
    pub k_cfd: u64,
    /// Randomness for valuation sampling.
    pub rng: R,
}

impl<R: Rng> ChaseCfdChecker<R> {
    /// Creates a checker with the given budget.
    pub fn new(k_cfd: u64, rng: R) -> Self {
        ChaseCfdChecker { k_cfd, rng }
    }
}

impl<R: Rng> CfdChecker for ChaseCfdChecker<R> {
    fn check(&mut self, schema: &Schema, rel: RelId, cfds: &[NormalCfd]) -> Option<Tuple> {
        // Stage 1: unavoidable forcings.
        let mut base: BTreeMap<AttrId, Value> = BTreeMap::new();
        if !propagate(cfds, &mut base) {
            return None;
        }
        // Stage 2: sample valuations of the open finite fields.
        let open = open_finite_attrs(schema, rel, cfds, &base);
        if open.is_empty() {
            return materialize(schema, rel, cfds, &base);
        }
        // Deterministic first try: for each open attribute prefer a value
        // that no LHS pattern mentions (it cannot fire new premises).
        let mut tries = 0u64;
        let mut first: BTreeMap<AttrId, Value> = base.clone();
        for (a, dom) in &open {
            let lhs_consts: BTreeSet<&Value> = cfds
                .iter()
                .flat_map(|c| {
                    c.lhs()
                        .iter()
                        .zip(c.lhs_pat().cells())
                        .filter(|(b, _)| *b == a)
                        .filter_map(|(_, cell)| cell.as_const())
                })
                .collect();
            let v = dom
                .iter()
                .find(|v| !lhs_consts.contains(v))
                .unwrap_or(&dom[0])
                .clone();
            first.insert(*a, v);
        }
        if tries < self.k_cfd {
            tries += 1;
            let mut attempt = first;
            if propagate(cfds, &mut attempt) {
                return materialize(schema, rel, cfds, &attempt);
            }
        }
        // Small valuation spaces are sampled *without replacement*
        // (a shuffled exhaustive sweep): the K_CFD budget then covers the
        // space completely once K reaches its size, and no budget is
        // wasted on repeats. Large spaces fall back to uniform sampling.
        let space: u64 = open
            .iter()
            .map(|(_, dom)| dom.len() as u64)
            .try_fold(1u64, |acc, n| acc.checked_mul(n))
            .unwrap_or(u64::MAX);
        const EXHAUSTIVE_LIMIT: u64 = 8_192;
        if space <= EXHAUSTIVE_LIMIT {
            let mut valuations: Vec<Vec<usize>> = Vec::with_capacity(space as usize);
            let mut counters = vec![0usize; open.len()];
            'outer: loop {
                valuations.push(counters.clone());
                let mut i = 0;
                loop {
                    if i == counters.len() {
                        break 'outer;
                    }
                    counters[i] += 1;
                    if counters[i] < open[i].1.len() {
                        break;
                    }
                    counters[i] = 0;
                    i += 1;
                }
            }
            use rand::seq::SliceRandom;
            valuations.shuffle(&mut self.rng);
            for valuation in valuations {
                if tries >= self.k_cfd {
                    return None;
                }
                tries += 1;
                let mut attempt = base.clone();
                for (k, (a, dom)) in open.iter().enumerate() {
                    attempt.insert(*a, dom[valuation[k]].clone());
                }
                if propagate(cfds, &mut attempt) {
                    return materialize(schema, rel, cfds, &attempt);
                }
            }
            return None; // space exhausted: provably inconsistent
        }
        while tries < self.k_cfd {
            tries += 1;
            let mut attempt = base.clone();
            for (a, dom) in &open {
                let k = self.rng.gen_range(0..dom.len());
                attempt.insert(*a, dom[k].clone());
            }
            if propagate(cfds, &mut attempt) {
                return materialize(schema, rel, cfds, &attempt);
            }
        }
        None
    }
}

/// The SAT-based `CFD_Checking`.
///
/// Encoding: for a finite attribute `A`, one variable per domain value
/// with an exactly-one constraint; for an infinite attribute, one
/// variable per pattern constant with an at-most-one constraint (the
/// tuple may equal none of them). Each constant-RHS CFD becomes the
/// clause `⋀ premise vars → conclusion var`. Complete, since single-tuple
/// satisfaction depends only on which pattern constants the tuple hits.
///
/// The encoding itself lives in `condep-analyze` — this checker is a
/// thin adapter over [`condep_analyze::relation_consistency`], so the
/// repo has exactly one SAT encoding of per-relation CFD consistency
/// (shared with the Σ lint pass, `Validator::analysis`, and discovery's
/// keep stage). Runs the solver without a conflict budget, preserving
/// this checker's completeness contract.
pub struct SatCfdChecker;

impl CfdChecker for SatCfdChecker {
    fn check(&mut self, schema: &Schema, rel: RelId, cfds: &[NormalCfd]) -> Option<Tuple> {
        let active: Vec<(usize, &NormalCfd)> = cfds.iter().enumerate().collect();
        let config = condep_analyze::AnalyzeConfig {
            max_conflicts: None,
            ..condep_analyze::AnalyzeConfig::default()
        };
        match condep_analyze::relation_consistency(schema, rel, &active, &config) {
            condep_analyze::RelationVerdict::Sat(t) => Some(t),
            condep_analyze::RelationVerdict::Unsat(_) => None,
            // Unreachable without a conflict budget; treat as "no
            // witness found" like the chase checker does.
            condep_analyze::RelationVerdict::Unknown => None,
        }
    }
}

/// Validates a witness: the single-tuple database `{t}` must satisfy
/// every CFD — used in tests and as a cheap internal certificate.
pub fn witness_is_valid(
    schema: &std::sync::Arc<Schema>,
    rel: RelId,
    cfds: &[NormalCfd],
    t: &Tuple,
) -> bool {
    let mut db = condep_model::Database::empty(schema.clone());
    if db.insert(rel, t.clone()).is_err() {
        return false;
    }
    condep_cfd::satisfy::satisfies_all(&db, cfds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use condep_cfd::fixtures::example_3_2;
    use condep_model::{prow, Domain, PatternRow, Schema};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::Arc;

    fn chase_checker() -> ChaseCfdChecker<StdRng> {
        ChaseCfdChecker::new(64, StdRng::seed_from_u64(11))
    }

    #[test]
    fn both_checkers_reject_example_3_2() {
        let (schema, cfds) = example_3_2();
        let rel = schema.rel_id("r").unwrap();
        assert!(chase_checker().check(&schema, rel, &cfds).is_none());
        assert!(SatCfdChecker.check(&schema, rel, &cfds).is_none());
    }

    #[test]
    fn both_checkers_accept_single_constraints_of_example_3_2() {
        let (schema, cfds) = example_3_2();
        let rel = schema.rel_id("r").unwrap();
        for cfd in &cfds {
            let set = std::slice::from_ref(cfd);
            let t1 = chase_checker().check(&schema, rel, set).expect("chase");
            assert!(witness_is_valid(&schema, rel, set, &t1));
            let t2 = SatCfdChecker.check(&schema, rel, set).expect("sat");
            assert!(witness_is_valid(&schema, rel, set, &t2));
        }
    }

    #[test]
    fn checkers_find_the_narrow_good_value() {
        // dom(a) = {0..4}; values 0..3 all force conflicts; only 4 works.
        let schema = Arc::new(
            Schema::builder()
                .relation(
                    "r",
                    &[("a", Domain::finite_ints(5)), ("b", Domain::string())],
                )
                .finish(),
        );
        let rel = schema.rel_id("r").unwrap();
        let mut cfds = Vec::new();
        for v in 0..4i64 {
            for target in ["x", "y"] {
                cfds.push(
                    NormalCfd::parse(
                        &schema,
                        "r",
                        &["a"],
                        PatternRow::new([PValue::constant(Value::int(v))]),
                        "b",
                        PValue::constant(target),
                    )
                    .unwrap(),
                );
            }
        }
        let t = chase_checker()
            .check(&schema, rel, &cfds)
            .expect("chase finds a=4");
        assert_eq!(t[AttrId(0)], Value::int(4));
        let t = SatCfdChecker
            .check(&schema, rel, &cfds)
            .expect("sat finds a=4");
        assert_eq!(t[AttrId(0)], Value::int(4));
    }

    #[test]
    fn tiny_k_cfd_can_miss_consistency() {
        // Large finite domain with a single good value: K_CFD = 1 after
        // the biased try will usually fail — this is the accuracy loss
        // Figure 10(b) measures. Craft the set so the biased first try
        // also fails: every domain value appears in some LHS pattern.
        let schema = Arc::new(
            Schema::builder()
                .relation(
                    "r",
                    &[("a", Domain::finite_ints(50)), ("b", Domain::string())],
                )
                .finish(),
        );
        let rel = schema.rel_id("r").unwrap();
        let mut cfds = Vec::new();
        for v in 0..50i64 {
            // (a=v → b=x) and, for v != 7, (a=v → b=y): only a=7 works.
            cfds.push(
                NormalCfd::parse(
                    &schema,
                    "r",
                    &["a"],
                    PatternRow::new([PValue::constant(Value::int(v))]),
                    "b",
                    PValue::constant("x"),
                )
                .unwrap(),
            );
            if v != 7 {
                cfds.push(
                    NormalCfd::parse(
                        &schema,
                        "r",
                        &["a"],
                        PatternRow::new([PValue::constant(Value::int(v))]),
                        "b",
                        PValue::constant("y"),
                    )
                    .unwrap(),
                );
            }
        }
        // SAT (complete) always finds a = 7.
        let t = SatCfdChecker.check(&schema, rel, &cfds).expect("sat");
        assert_eq!(t[AttrId(0)], Value::int(7));
        // A generous chase budget finds it too.
        let t = ChaseCfdChecker::new(5_000, StdRng::seed_from_u64(3))
            .check(&schema, rel, &cfds)
            .expect("generous chase");
        assert_eq!(t[AttrId(0)], Value::int(7));
        // A starved budget misses it (with this seed).
        assert!(ChaseCfdChecker::new(1, StdRng::seed_from_u64(3))
            .check(&schema, rel, &cfds)
            .is_none());
    }

    #[test]
    fn empty_cfd_set_yields_a_witness() {
        let (schema, _) = example_3_2();
        let rel = schema.rel_id("r").unwrap();
        assert!(chase_checker().check(&schema, rel, &[]).is_some());
        assert!(SatCfdChecker.check(&schema, rel, &[]).is_some());
    }

    #[test]
    fn forced_chain_on_infinite_attrs() {
        // (nil → b = v1) then (b=v1 → … conflict) — stage-1 propagation
        // alone must detect it, regardless of K_CFD.
        let schema = Arc::new(Schema::builder().relation_str("r", &["a", "b"]).finish());
        let rel = schema.rel_id("r").unwrap();
        let cfds = vec![
            NormalCfd::parse(&schema, "r", &[], prow![], "b", PValue::constant("v1")).unwrap(),
            NormalCfd::parse(
                &schema,
                "r",
                &["b"],
                prow!["v1"],
                "a",
                PValue::constant("p"),
            )
            .unwrap(),
            NormalCfd::parse(
                &schema,
                "r",
                &["b"],
                prow!["v1"],
                "a",
                PValue::constant("q"),
            )
            .unwrap(),
        ];
        assert!(ChaseCfdChecker::new(0, StdRng::seed_from_u64(0))
            .check(&schema, rel, &cfds)
            .is_none());
        assert!(SatCfdChecker.check(&schema, rel, &cfds).is_none());
    }

    #[test]
    fn witnesses_avoid_triggering_constants_when_possible() {
        // The materialized witness's free fields avoid pattern constants.
        let schema = Arc::new(Schema::builder().relation_str("r", &["a", "b"]).finish());
        let rel = schema.rel_id("r").unwrap();
        let cfds = vec![NormalCfd::parse(
            &schema,
            "r",
            &["a"],
            prow!["trigger"],
            "b",
            PValue::constant("forced"),
        )
        .unwrap()];
        let t = chase_checker().check(&schema, rel, &cfds).unwrap();
        assert_ne!(t[AttrId(0)], Value::str("trigger"));
    }

    #[test]
    fn sat_agrees_with_exact_oracle_on_example_sets() {
        use condep_cfd::consistency::{consistent_exact, Verdict};
        let (schema, cfds) = example_3_2();
        let rel = schema.rel_id("r").unwrap();
        // Drop one CFD at a time: each subset of three is consistent.
        for skip in 0..cfds.len() {
            let subset: Vec<NormalCfd> = cfds
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != skip)
                .map(|(_, c)| c.clone())
                .collect();
            let exact = consistent_exact(&schema, rel, &subset, None) == Verdict::Consistent;
            let sat = SatCfdChecker.check(&schema, rel, &subset).is_some();
            assert_eq!(exact, sat, "skip = {skip}");
        }
    }
}
