//! Constraint sets Σ of CFDs and CINDs.

use condep_cfd::NormalCfd;
use condep_core::NormalCind;
use condep_model::{Database, RelId, Schema, Value};
use condep_validate::Validator;
use std::collections::BTreeSet;
use std::sync::{Arc, OnceLock};

/// A set Σ of normal-form CFDs and CINDs over one schema — the input of
/// every Section 5 algorithm.
#[derive(Clone, Debug)]
pub struct ConstraintSet {
    schema: Arc<Schema>,
    cfds: Vec<NormalCfd>,
    cinds: Vec<NormalCind>,
    /// Lazily compiled batched validator; grouping Σ once pays off
    /// because `satisfied_by` is called per candidate witness in the
    /// checking loops.
    validator: OnceLock<Arc<Validator>>,
}

impl ConstraintSet {
    /// Creates a constraint set.
    pub fn new(schema: Arc<Schema>, cfds: Vec<NormalCfd>, cinds: Vec<NormalCind>) -> Self {
        ConstraintSet {
            schema,
            cfds,
            cinds,
            validator: OnceLock::new(),
        }
    }

    /// The schema.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// All CFDs.
    pub fn cfds(&self) -> &[NormalCfd] {
        &self.cfds
    }

    /// All CINDs.
    pub fn cinds(&self) -> &[NormalCind] {
        &self.cinds
    }

    /// Total number of constraints (`card(Σ)`).
    pub fn len(&self) -> usize {
        self.cfds.len() + self.cinds.len()
    }

    /// Is Σ empty?
    pub fn is_empty(&self) -> bool {
        self.cfds.is_empty() && self.cinds.is_empty()
    }

    /// The CFDs defined on relation `rel` (`CFD(R)` in Section 5.3).
    pub fn cfds_on(&self, rel: RelId) -> Vec<NormalCfd> {
        self.cfds
            .iter()
            .filter(|c| c.rel() == rel)
            .cloned()
            .collect()
    }

    /// The CINDs whose source is `rel`.
    pub fn cinds_from(&self, rel: RelId) -> Vec<NormalCind> {
        self.cinds
            .iter()
            .filter(|c| c.lhs_rel() == rel)
            .cloned()
            .collect()
    }

    /// The CINDs from `ri` to `rj` (`CIND(Ri, Rj)` in Section 5.3).
    pub fn cinds_between(&self, ri: RelId, rj: RelId) -> Vec<NormalCind> {
        self.cinds
            .iter()
            .filter(|c| c.lhs_rel() == ri && c.rhs_rel() == rj)
            .cloned()
            .collect()
    }

    /// Every constant appearing in Σ (used to pick fresh values).
    pub fn all_constants(&self) -> Vec<Value> {
        let mut out: BTreeSet<Value> = BTreeSet::new();
        for c in &self.cfds {
            for (_, v) in c.pattern_constants() {
                out.insert(v);
            }
        }
        for c in &self.cinds {
            for (_, _, v) in c.constants() {
                out.insert(v.clone());
            }
        }
        out.into_iter().collect()
    }

    /// Restriction of Σ to the given relations (used by `Checking` to
    /// process one connected component at a time).
    pub fn restrict_to(&self, rels: &BTreeSet<RelId>) -> ConstraintSet {
        ConstraintSet::new(
            self.schema.clone(),
            self.cfds
                .iter()
                .filter(|c| rels.contains(&c.rel()))
                .cloned()
                .collect(),
            self.cinds
                .iter()
                .filter(|c| rels.contains(&c.lhs_rel()) && rels.contains(&c.rhs_rel()))
                .cloned()
                .collect(),
        )
    }

    /// The batched validator compiled from Σ (built once, cached).
    pub fn validator(&self) -> &Validator {
        self.validator
            .get_or_init(|| Arc::new(Validator::new(self.cfds.clone(), self.cinds.clone())))
    }

    /// Does `db` satisfy every constraint of Σ? (The certificate check
    /// behind Theorem 5.1.) Routed through the batched [`Validator`]:
    /// one shared group-by index per `(relation, LHS)` group instead of
    /// one per constraint.
    pub fn satisfied_by(&self, db: &Database) -> bool {
        self.validator().satisfies(db)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use condep_core::fixtures::{example_5_4_cinds, example_5_4_schema};
    use condep_model::{prow, PValue};

    fn example_5_4_set() -> ConstraintSet {
        let schema = example_5_4_schema();
        let cinds = example_5_4_cinds(&schema);
        let cfds = vec![
            NormalCfd::parse(&schema, "r1", &["e"], prow![_], "f", PValue::Any).unwrap(),
            NormalCfd::parse(&schema, "r2", &["h"], prow![_], "g", PValue::constant("c")).unwrap(),
            NormalCfd::parse(&schema, "r3", &["a"], prow!["c"], "b", PValue::Any).unwrap(),
            NormalCfd::parse(&schema, "r4", &["c"], prow![_], "d", PValue::constant("a")).unwrap(),
            NormalCfd::parse(&schema, "r4", &["c"], prow![_], "d", PValue::constant("b")).unwrap(),
            NormalCfd::parse(&schema, "r5", &["i"], prow![_], "j", PValue::constant("c")).unwrap(),
        ];
        ConstraintSet::new(schema, cfds, cinds)
    }

    #[test]
    fn per_relation_lookups() {
        let sigma = example_5_4_set();
        let schema = sigma.schema().clone();
        let r4 = schema.rel_id("r4").unwrap();
        assert_eq!(sigma.cfds_on(r4).len(), 2);
        let r1 = schema.rel_id("r1").unwrap();
        let r2 = schema.rel_id("r2").unwrap();
        assert_eq!(sigma.cinds_from(r1).len(), 1);
        assert_eq!(sigma.cinds_between(r1, r2).len(), 1);
        assert_eq!(sigma.cinds_between(r2, r1).len(), 2);
        assert_eq!(sigma.len(), 11);
        assert!(!sigma.is_empty());
    }

    #[test]
    fn constants_are_collected_across_both_kinds() {
        let sigma = example_5_4_set();
        let consts = sigma.all_constants();
        // CFD constants: c, a, b; CIND constants: a, b, c, d, true, false.
        assert!(consts.contains(&Value::str("a")));
        assert!(consts.contains(&Value::str("d")));
        assert!(consts.contains(&Value::bool(true)));
    }

    #[test]
    fn restriction_drops_cross_component_cinds() {
        let sigma = example_5_4_set();
        let schema = sigma.schema().clone();
        let r1 = schema.rel_id("r1").unwrap();
        let r2 = schema.rel_id("r2").unwrap();
        let rels: BTreeSet<RelId> = [r1, r2].into_iter().collect();
        let restricted = sigma.restrict_to(&rels);
        // ψ1, ψ2, ψ3 stay (between r1 and r2); ψ4, ψ5 drop.
        assert_eq!(restricted.cinds().len(), 3);
        // CFDs on r1, r2 stay.
        assert_eq!(restricted.cfds().len(), 2);
    }

    #[test]
    fn satisfied_by_empty_database() {
        let sigma = example_5_4_set();
        let db = Database::empty(sigma.schema().clone());
        assert!(sigma.satisfied_by(&db));
    }
}
