//! The dependency graph `G[Σ]` — Section 5.3.
//!
//! One vertex per relation, carrying `CFD(R)` (mutable: `preProcessing`
//! adds non-triggering CFDs) and the instantiated template `τ(R)` once
//! known; one edge `Ri → Rj` when some CIND goes from `Ri` to `Rj`,
//! labelled with `CIND(Ri, Rj)`. Plus Tarjan SCCs, the targets-first
//! topological order the paper's queue `Q` uses, and (weakly) connected
//! components for `Checking`.

use crate::sigma::ConstraintSet;
use condep_cfd::NormalCfd;
use condep_core::NormalCind;
use condep_model::{RelId, Tuple};
use std::collections::{BTreeMap, BTreeSet};

/// A vertex of `G[Σ]`.
#[derive(Clone, Debug)]
pub struct Node {
    /// Deleted nodes stay in the vector but are skipped everywhere.
    pub alive: bool,
    /// `CFD(R)` — grows when non-triggering CFDs are added.
    pub cfds: Vec<NormalCfd>,
    /// The instantiated tuple template `τ(R)`, once `CFD_Checking`
    /// succeeds.
    pub tau: Option<Tuple>,
}

/// The dependency graph `G[Σ]`.
#[derive(Clone, Debug)]
pub struct DepGraph {
    nodes: Vec<Node>,
    /// `CIND(Ri, Rj)` per surviving edge.
    edges: BTreeMap<(RelId, RelId), Vec<NormalCind>>,
}

impl DepGraph {
    /// Builds `G[Σ]`.
    pub fn build(sigma: &ConstraintSet) -> Self {
        let n = sigma.schema().len();
        let nodes = (0..n)
            .map(|i| Node {
                alive: true,
                cfds: sigma.cfds_on(RelId(i as u32)),
                tau: None,
            })
            .collect();
        let mut edges: BTreeMap<(RelId, RelId), Vec<NormalCind>> = BTreeMap::new();
        for cind in sigma.cinds() {
            edges
                .entry((cind.lhs_rel(), cind.rhs_rel()))
                .or_default()
                .push(cind.clone());
        }
        DepGraph { nodes, edges }
    }

    /// Number of live nodes.
    pub fn live_count(&self) -> usize {
        self.nodes.iter().filter(|n| n.alive).count()
    }

    /// Is the (live) graph empty?
    pub fn is_empty(&self) -> bool {
        self.live_count() == 0
    }

    /// Is `rel` still in the graph?
    pub fn is_alive(&self, rel: RelId) -> bool {
        self.nodes
            .get(rel.index())
            .map(|n| n.alive)
            .unwrap_or(false)
    }

    /// Live relations.
    pub fn live_rels(&self) -> Vec<RelId> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.alive)
            .map(|(i, _)| RelId(i as u32))
            .collect()
    }

    /// Mutable access to a node.
    pub fn node_mut(&mut self, rel: RelId) -> &mut Node {
        &mut self.nodes[rel.index()]
    }

    /// Read access to a node.
    pub fn node(&self, rel: RelId) -> &Node {
        &self.nodes[rel.index()]
    }

    /// Deletes a node and its incident edges.
    pub fn delete_node(&mut self, rel: RelId) {
        self.nodes[rel.index()].alive = false;
        self.edges.retain(|(a, b), _| *a != rel && *b != rel);
    }

    /// Live out-neighbours of `rel`.
    pub fn successors(&self, rel: RelId) -> Vec<RelId> {
        self.edges
            .keys()
            .filter(|(a, b)| *a == rel && self.is_alive(*b))
            .map(|(_, b)| *b)
            .collect()
    }

    /// Live in-neighbours of `rel` (the `Rj` with `(Rj, R) ∈ E`).
    pub fn predecessors(&self, rel: RelId) -> Vec<RelId> {
        self.edges
            .keys()
            .filter(|(a, b)| *b == rel && self.is_alive(*a))
            .map(|(a, _)| *a)
            .collect()
    }

    /// The CINDs labelling the edge `ri → rj`.
    pub fn edge_cinds(&self, ri: RelId, rj: RelId) -> &[NormalCind] {
        self.edges.get(&(ri, rj)).map(Vec::as_slice).unwrap_or(&[])
    }

    /// In-degree of a live node (counting only live predecessors).
    pub fn indegree(&self, rel: RelId) -> usize {
        self.predecessors(rel).len()
    }

    /// Tarjan's strongly connected components over the live graph,
    /// emitted in reverse topological order — i.e. **targets before
    /// sources**, which is exactly the order the paper's queue `Q`
    /// requires ("if there is edge from Ri to Rj then Rj precedes Ri").
    pub fn sccs_targets_first(&self) -> Vec<Vec<RelId>> {
        struct Tarjan<'a> {
            graph: &'a DepGraph,
            index: BTreeMap<RelId, usize>,
            low: BTreeMap<RelId, usize>,
            on_stack: BTreeSet<RelId>,
            stack: Vec<RelId>,
            next: usize,
            out: Vec<Vec<RelId>>,
        }
        impl Tarjan<'_> {
            fn strongconnect(&mut self, v: RelId) {
                self.index.insert(v, self.next);
                self.low.insert(v, self.next);
                self.next += 1;
                self.stack.push(v);
                self.on_stack.insert(v);
                for w in self.graph.successors(v) {
                    if !self.index.contains_key(&w) {
                        self.strongconnect(w);
                        let lw = self.low[&w];
                        let lv = self.low.get_mut(&v).expect("v indexed");
                        *lv = (*lv).min(lw);
                    } else if self.on_stack.contains(&w) {
                        let iw = self.index[&w];
                        let lv = self.low.get_mut(&v).expect("v indexed");
                        *lv = (*lv).min(iw);
                    }
                }
                if self.low[&v] == self.index[&v] {
                    let mut component = Vec::new();
                    loop {
                        let w = self.stack.pop().expect("stack nonempty");
                        self.on_stack.remove(&w);
                        component.push(w);
                        if w == v {
                            break;
                        }
                    }
                    component.sort();
                    self.out.push(component);
                }
            }
        }
        let mut t = Tarjan {
            graph: self,
            index: BTreeMap::new(),
            low: BTreeMap::new(),
            on_stack: BTreeSet::new(),
            stack: Vec::new(),
            next: 0,
            out: Vec::new(),
        };
        for v in self.live_rels() {
            if !t.index.contains_key(&v) {
                t.strongconnect(v);
            }
        }
        t.out
    }

    /// The queue `Q`: relations in targets-first order (SCC-condensation
    /// reverse-topological; arbitrary order inside an SCC).
    pub fn topological_queue(&self) -> Vec<RelId> {
        self.sccs_targets_first().into_iter().flatten().collect()
    }

    /// Weakly connected components of the live graph — `Checking`
    /// processes each separately.
    pub fn connected_components(&self) -> Vec<BTreeSet<RelId>> {
        let mut seen: BTreeSet<RelId> = BTreeSet::new();
        let mut out = Vec::new();
        for start in self.live_rels() {
            if seen.contains(&start) {
                continue;
            }
            let mut comp = BTreeSet::new();
            let mut stack = vec![start];
            while let Some(v) = stack.pop() {
                if !comp.insert(v) {
                    continue;
                }
                seen.insert(v);
                for w in self.successors(v).into_iter().chain(self.predecessors(v)) {
                    if !comp.contains(&w) {
                        stack.push(w);
                    }
                }
            }
            out.push(comp);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use condep_core::fixtures::{example_5_4_cinds, example_5_4_schema};
    use std::sync::Arc;

    fn example_graph() -> (Arc<condep_model::Schema>, DepGraph) {
        let schema = example_5_4_schema();
        let cinds = example_5_4_cinds(&schema);
        let sigma = ConstraintSet::new(schema.clone(), vec![], cinds);
        (schema, DepGraph::build(&sigma))
    }

    #[test]
    fn figure_6_edges() {
        // G[Σ] of Example 5.4: R1 → R2 (ψ1), R2 → R1 (ψ2, ψ3),
        // R3 → R4 (ψ4), R5 → R2 (ψ5).
        let (schema, g) = example_graph();
        let r = |n: &str| schema.rel_id(n).unwrap();
        assert_eq!(g.successors(r("r1")), vec![r("r2")]);
        assert_eq!(g.successors(r("r2")), vec![r("r1")]);
        assert_eq!(g.successors(r("r3")), vec![r("r4")]);
        assert_eq!(g.successors(r("r5")), vec![r("r2")]);
        assert_eq!(g.edge_cinds(r("r2"), r("r1")).len(), 2);
        assert_eq!(g.indegree(r("r2")), 2);
        assert_eq!(g.indegree(r("r5")), 0);
    }

    #[test]
    fn queue_puts_targets_first() {
        // "One possible output is Q = [R4, R3, R1, R2, R5]" — any valid
        // order places R4 before R3, and {R1, R2} before R5.
        let (schema, g) = example_graph();
        let q = g.topological_queue();
        let pos = |n: &str| {
            let rel = schema.rel_id(n).unwrap();
            q.iter().position(|r| *r == rel).unwrap()
        };
        assert!(pos("r4") < pos("r3"));
        assert!(pos("r1") < pos("r5"));
        assert!(pos("r2") < pos("r5"));
        assert_eq!(q.len(), 5);
    }

    #[test]
    fn sccs_group_the_r1_r2_cycle() {
        let (schema, g) = example_graph();
        let sccs = g.sccs_targets_first();
        let r1 = schema.rel_id("r1").unwrap();
        let r2 = schema.rel_id("r2").unwrap();
        let cycle = sccs.iter().find(|c| c.contains(&r1)).expect("r1 somewhere");
        assert!(cycle.contains(&r2), "r1 and r2 form one SCC");
        assert_eq!(sccs.len(), 4); // {r1,r2}, {r3}, {r4}, {r5}
    }

    #[test]
    fn deletion_removes_incident_edges() {
        let (schema, mut g) = example_graph();
        let r4 = schema.rel_id("r4").unwrap();
        let r3 = schema.rel_id("r3").unwrap();
        g.delete_node(r4);
        assert!(!g.is_alive(r4));
        assert!(g.successors(r3).is_empty());
        assert_eq!(g.live_count(), 4);
    }

    #[test]
    fn connected_components_split_correctly() {
        let (schema, g) = example_graph();
        let comps = g.connected_components();
        // {r1, r2, r5} and {r3, r4}.
        assert_eq!(comps.len(), 2);
        let r5 = schema.rel_id("r5").unwrap();
        let with_r5 = comps.iter().find(|c| c.contains(&r5)).unwrap();
        assert_eq!(with_r5.len(), 3);
    }

    #[test]
    fn figure_8_shape_after_deletions() {
        // Example 5.5 (second variant) ends with R1, R2 and their edges.
        let (schema, mut g) = example_graph();
        for n in ["r3", "r4", "r5"] {
            g.delete_node(schema.rel_id(n).unwrap());
        }
        let live = g.live_rels();
        assert_eq!(live.len(), 2);
        let r1 = schema.rel_id("r1").unwrap();
        let r2 = schema.rel_id("r2").unwrap();
        assert_eq!(g.successors(r1), vec![r2]);
        assert_eq!(g.successors(r2), vec![r1]);
        assert_eq!(g.connected_components().len(), 1);
    }
}
