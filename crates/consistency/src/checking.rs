//! Algorithm `Checking` — Figure 9: `preProcessing` + per-component
//! `RandomChecking`.

use crate::cfd_checking::{CfdChecker, ChaseCfdChecker, SatCfdChecker};
use crate::graph::DepGraph;
use crate::preprocessing::{pre_processing, PreVerdict};
use crate::random_checking::{random_checking, RandomCheckingConfig};
use crate::sigma::ConstraintSet;
use condep_core::NormalCind;
use condep_model::{Database, RelId};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeSet;

/// Which `CFD_Checking` implementation to use inside `preProcessing`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CfdCheckerKind {
    /// Chase-based (the paper adopts this one after Figure 10(a)).
    Chase,
    /// SAT-based (stands in for SAT4j).
    Sat,
}

/// Parameters of `Checking`.
#[derive(Clone, Debug)]
pub struct CheckingConfig {
    /// Parameters forwarded to the per-component `RandomChecking`.
    pub random: RandomCheckingConfig,
    /// `K_CFD` for the chase-based `CFD_Checking`.
    pub k_cfd: u64,
    /// Which `CFD_Checking` to use.
    pub checker: CfdCheckerKind,
    /// Skip `preProcessing` entirely (the ablation knob: `Checking`
    /// degenerates to `RandomChecking` over the whole schema).
    pub use_preprocessing: bool,
}

impl Default for CheckingConfig {
    fn default() -> Self {
        CheckingConfig {
            random: RandomCheckingConfig::default(),
            k_cfd: 2_000_000,
            checker: CfdCheckerKind::Chase,
            use_preprocessing: true,
        }
    }
}

/// Algorithm `Checking`: returns a witness database when Σ is found
/// consistent (sound, Theorem 5.1), `None` when no witness could be
/// built (which does not prove inconsistency).
pub fn checking(sigma: &ConstraintSet, config: &CheckingConfig) -> Option<Database> {
    if !config.use_preprocessing {
        return random_checking(sigma, &config.random, None);
    }
    // Lines 1–5.
    let mut graph = DepGraph::build(sigma);
    let mut chase_checker;
    let mut sat_checker;
    let checker: &mut dyn CfdChecker = match config.checker {
        CfdCheckerKind::Chase => {
            chase_checker =
                ChaseCfdChecker::new(config.k_cfd, StdRng::seed_from_u64(config.random.seed));
            &mut chase_checker
        }
        CfdCheckerKind::Sat => {
            sat_checker = SatCfdChecker;
            &mut sat_checker
        }
    };
    match pre_processing(&mut graph, sigma, checker) {
        PreVerdict::Consistent(db) => return Some(db),
        PreVerdict::Inconsistent => return None,
        PreVerdict::Undecided => {}
    }
    // Lines 6–9: each connected component of the reduced graph, with the
    // *augmented* CFD sets (non-triggering CFDs included) and the
    // surviving CINDs.
    for component in graph.connected_components() {
        let sigma_prime = component_sigma(&graph, sigma, &component);
        let rels: Vec<RelId> = component.iter().copied().collect();
        if let Some(witness) = random_checking(&sigma_prime, &config.random, Some(&rels)) {
            // The witness satisfies Σ' by construction; it satisfies the
            // full Σ as well because every other relation is empty and
            // cross-component CINDs were severed only by deleting
            // relations that must be empty anyway.
            if sigma.satisfied_by(&witness) {
                return Some(witness);
            }
        }
    }
    None
}

/// Σ' for one component: the component relations' (augmented) CFDs plus
/// the CINDs among them.
fn component_sigma(
    graph: &DepGraph,
    sigma: &ConstraintSet,
    component: &BTreeSet<RelId>,
) -> ConstraintSet {
    let mut cfds = Vec::new();
    for rel in component {
        cfds.extend(graph.node(*rel).cfds.iter().cloned());
    }
    let mut cinds: Vec<NormalCind> = Vec::new();
    for ri in component {
        for rj in component {
            cinds.extend(graph.edge_cinds(*ri, *rj).iter().cloned());
        }
    }
    ConstraintSet::new(sigma.schema().clone(), cfds, cinds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use condep_cfd::NormalCfd;
    use condep_core::fixtures::{example_5_4_cinds, example_5_4_schema, example_5_5_psi4_prime};
    use condep_model::{prow, PValue};

    fn config() -> CheckingConfig {
        CheckingConfig {
            random: RandomCheckingConfig {
                k: 20,
                seed: 17,
                ..RandomCheckingConfig::default()
            },
            ..CheckingConfig::default()
        }
    }

    fn example_5_4_cfds(schema: &condep_model::Schema) -> Vec<NormalCfd> {
        vec![
            NormalCfd::parse(schema, "r1", &["e"], prow![_], "f", PValue::Any).unwrap(),
            NormalCfd::parse(schema, "r2", &["h"], prow![_], "g", PValue::constant("c")).unwrap(),
            NormalCfd::parse(schema, "r3", &["a"], prow!["c"], "b", PValue::Any).unwrap(),
            NormalCfd::parse(schema, "r4", &["c"], prow![_], "d", PValue::constant("a")).unwrap(),
            NormalCfd::parse(schema, "r4", &["c"], prow![_], "d", PValue::constant("b")).unwrap(),
            NormalCfd::parse(schema, "r5", &["i"], prow![_], "j", PValue::constant("c")).unwrap(),
        ]
    }

    #[test]
    fn example_5_6_checking_succeeds_via_random_checking() {
        // Σ of Example 5.4 with ψ4' (Example 5.5's variant):
        // preProcessing reduces to {R1, R2} and returns −1; Checking then
        // runs RandomChecking on the component (Example 5.6) and finds a
        // witness.
        let schema = example_5_4_schema();
        let mut cinds = example_5_4_cinds(&schema);
        cinds[3] = example_5_5_psi4_prime(&schema);
        let sigma = ConstraintSet::new(schema.clone(), example_5_4_cfds(&schema), cinds);
        let witness = checking(&sigma, &config()).expect("Example 5.6: consistent");
        assert!(sigma.satisfied_by(&witness));
        // The witness lives in the {r1, r2} component.
        let r1 = schema.rel_id("r1").unwrap();
        let r2 = schema.rel_id("r2").unwrap();
        assert!(!witness.relation(r1).is_empty() || !witness.relation(r2).is_empty());
    }

    #[test]
    fn example_5_4_checking_succeeds_via_preprocessing() {
        // With the original ψ4, preProcessing already returns 1
        // (Example 5.5 first variant).
        let schema = example_5_4_schema();
        let sigma = ConstraintSet::new(
            schema.clone(),
            example_5_4_cfds(&schema),
            example_5_4_cinds(&schema),
        );
        let witness = checking(&sigma, &config()).expect("consistent");
        assert!(sigma.satisfied_by(&witness));
    }

    #[test]
    fn example_4_2_is_rejected() {
        let (schema, cind) = condep_core::fixtures::example_4_2_cind();
        let phi =
            NormalCfd::parse(&schema, "r", &["a"], prow![_], "b", PValue::constant("a")).unwrap();
        let sigma = ConstraintSet::new(schema, vec![phi], vec![cind]);
        assert!(checking(&sigma, &config()).is_none());
    }

    #[test]
    fn sat_checker_variant_agrees_on_the_examples() {
        let schema = example_5_4_schema();
        let sigma = ConstraintSet::new(
            schema.clone(),
            example_5_4_cfds(&schema),
            example_5_4_cinds(&schema),
        );
        let cfg = CheckingConfig {
            checker: CfdCheckerKind::Sat,
            ..config()
        };
        assert!(checking(&sigma, &cfg).is_some());
    }

    #[test]
    fn preprocessing_ablation_still_sound() {
        // Without preProcessing, Checking = RandomChecking; answers stay
        // sound, possibly slower/less accurate.
        let schema = example_5_4_schema();
        let sigma = ConstraintSet::new(
            schema.clone(),
            example_5_4_cfds(&schema),
            example_5_4_cinds(&schema),
        );
        let cfg = CheckingConfig {
            use_preprocessing: false,
            random: RandomCheckingConfig {
                k: 50,
                seed: 23,
                ..RandomCheckingConfig::default()
            },
            ..config()
        };
        if let Some(witness) = checking(&sigma, &cfg) {
            assert!(sigma.satisfied_by(&witness));
        }
    }

    #[test]
    fn empty_sigma_is_consistent() {
        let schema = example_5_4_schema();
        let sigma = ConstraintSet::new(schema, vec![], vec![]);
        assert!(checking(&sigma, &config()).is_some());
    }
}
