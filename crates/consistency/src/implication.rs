//! Heuristic implication analysis for mixed CFD + CIND sets — the
//! Section 8 extension.
//!
//! "Thus it is practical to develop heuristic algorithms for checking
//! implication of CFDs and CINDs." The problem is undecidable
//! (Corollary 4.1), so no procedure can be both sound and complete in
//! both directions. This module provides a **sound refuter**: it hunts
//! for a counterexample database (one that satisfies Σ yet violates ψ)
//! with the same bounded chase `RandomChecking` uses. A returned
//! database *certifies* `Σ ̸|= ψ`; failure to find one is inconclusive.
//!
//! Together with the exact CIND-only procedures of `condep-core` (usable
//! whenever Σ contains no CFDs) this covers the practically useful
//! cases: pure-CIND implication exactly, mixed implication with
//! certified refutations.

use crate::sigma::ConstraintSet;
use condep_chase::ops::seed_tuple_with;
use condep_chase::{chase, ChaseConfig, ChaseOutcome, TemplateDb};
use condep_core::NormalCind;
use condep_model::Database;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Configuration for the refutation search.
#[derive(Clone, Debug)]
pub struct RefuteConfig {
    /// Number of chase runs to attempt.
    pub runs: usize,
    /// Chase parameters.
    pub chase: ChaseConfig,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RefuteConfig {
    fn default() -> Self {
        RefuteConfig {
            runs: 20,
            chase: ChaseConfig::default(),
            seed: 0,
        }
    }
}

/// Searches for a certified counterexample to `Σ |= ψ` (ψ a CIND; Σ may
/// mix CFDs and CINDs).
///
/// Strategy: seed the chase with a tuple that *triggers* ψ (its `Xp`
/// constants pinned, everything else drawn from the pools), close it
/// under Σ, and materialize. The result satisfies Σ by Theorem 5.1's
/// certificate; if it happens to violate ψ, it is a counterexample and
/// `Σ ̸|= ψ` is proved. `None` is inconclusive — ψ may be implied, or
/// the budgets may simply have been too tight.
pub fn refute_implication(
    sigma: &ConstraintSet,
    psi: &NormalCind,
    config: &RefuteConfig,
) -> Option<Database> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    for _ in 0..config.runs {
        let mut db = TemplateDb::empty(sigma.schema().clone());
        seed_tuple_with(&mut db, psi.lhs_rel(), psi.xp());
        match chase(db, sigma.cfds(), sigma.cinds(), &config.chase, &mut rng) {
            ChaseOutcome::Defined(template) => {
                let Some(witness) = template.instantiate_fresh(&sigma.all_constants()) else {
                    continue;
                };
                if sigma.satisfied_by(&witness)
                    && !condep_core::satisfy::satisfies_normal(&witness, psi)
                {
                    return Some(witness);
                }
            }
            ChaseOutcome::Undefined(_) => {}
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use condep_cfd::NormalCfd;
    use condep_core::fixtures;
    use condep_core::normalize::{normalize, normalize_all};
    use condep_model::{prow, PValue, Value};

    fn cfg() -> RefuteConfig {
        RefuteConfig {
            runs: 30,
            seed: 7,
            ..RefuteConfig::default()
        }
    }

    #[test]
    fn refutes_example_3_3_without_the_checking_branch() {
        // Σ' = {ψ1, ψ5} (saving side only) does not imply the
        // account→interest goal: a checking account is a counterexample.
        let schema = condep_model::fixtures::bank_schema();
        let sigma = ConstraintSet::new(
            schema.clone(),
            vec![],
            normalize_all(&[fixtures::psi1_edi(), fixtures::psi5()]),
        );
        let goal = normalize(&fixtures::example_3_3_goal()).remove(0);
        let counterexample = refute_implication(&sigma, &goal, &cfg()).expect("refutable");
        assert!(sigma.satisfied_by(&counterexample));
        assert!(!condep_core::satisfy::satisfies_normal(
            &counterexample,
            &goal
        ));
    }

    #[test]
    fn cannot_refute_the_full_example_3_3() {
        // With all four CINDs the goal *is* implied (Example 3.4): no
        // counterexample can exist, so the refuter must come up empty.
        let schema = condep_model::fixtures::bank_schema();
        let sigma = ConstraintSet::new(
            schema.clone(),
            vec![],
            normalize_all(&[
                fixtures::psi1_edi(),
                fixtures::psi2_edi(),
                fixtures::psi5(),
                fixtures::psi6(),
            ]),
        );
        let goal = normalize(&fixtures::example_3_3_goal()).remove(0);
        assert!(refute_implication(&sigma, &goal, &cfg()).is_none());
    }

    #[test]
    fn cfds_can_make_a_cind_implied_and_block_refutation() {
        // Σ: CFD (nil → b = v) on r, CIND r[nil] ⊆ s[nil; d = w].
        // ψ: (r[nil; b = v] ⊆ s[nil; d = w]) — implied: every r-tuple has
        // b = v anyway. The refuter cannot construct a counterexample.
        let schema = fixtures::example_5_1_schema(false);
        let force_b =
            NormalCfd::parse(&schema, "r1", &[], prow![], "f", PValue::constant("v")).unwrap();
        let base = NormalCind::parse(
            &schema,
            "r1",
            &[],
            &[],
            "r2",
            &[],
            &[("g", Value::str("w"))],
        )
        .unwrap();
        let psi = NormalCind::parse(
            &schema,
            "r1",
            &[],
            &[("f", Value::str("v"))],
            "r2",
            &[],
            &[("g", Value::str("w"))],
        )
        .unwrap();
        let sigma = ConstraintSet::new(schema.clone(), vec![force_b], vec![base]);
        assert!(refute_implication(&sigma, &psi, &cfg()).is_none());
        // Drop the CFD and the CIND: now ψ is refutable (an r-tuple with
        // f = v and an empty s).
        let empty_sigma = ConstraintSet::new(schema, vec![], vec![]);
        let counterexample = refute_implication(&empty_sigma, &psi, &cfg()).expect("refutable");
        assert!(!condep_core::satisfy::satisfies_normal(
            &counterexample,
            &psi
        ));
    }

    #[test]
    fn agrees_with_the_exact_cind_procedure_on_pure_cind_inputs() {
        use condep_core::implication::{implies, Implication, ImplicationConfig};
        // On CIND-only Σ the refuter must never contradict the exact
        // decision procedure.
        let schema = fixtures::example_5_4_schema();
        let cinds = fixtures::example_5_4_cinds(&schema);
        let sigma = ConstraintSet::new(schema.clone(), vec![], cinds.clone());
        for psi in &cinds {
            // Each member is trivially implied: refutation must fail.
            assert_eq!(
                implies(&schema, &cinds, psi, ImplicationConfig::default()),
                Implication::Implied
            );
            assert!(refute_implication(&sigma, psi, &cfg()).is_none());
        }
    }
}
