#![warn(missing_docs)]

//! # condep-cfd
//!
//! Conditional functional dependencies (CFDs), the companion formalism
//! the paper builds on (introduced by Bohannon, Fan, Geerts, Jia &
//! Kementsietsidis, ICDE 2007, and reviewed in Section 4 of our target
//! paper).
//!
//! A CFD `φ = (R: X → Y, Tp)` pairs a standard FD with a pattern tableau;
//! it constrains only the tuples matching a pattern row, and can force
//! constants (`t[Y] ≍ tp[Y]`). Unlike traditional FDs:
//!
//! * a *single* tuple can violate a CFD (Example 4.1);
//! * a set of CFDs can be **inconsistent** (Example 3.2) — deciding
//!   consistency is NP-complete in general and O(n²) without
//!   finite-domain attributes;
//! * implication is coNP-complete in general, O(n²) without finite
//!   domains.
//!
//! This crate provides the full substrate: syntax ([`syntax`]), normal
//! form ([`normalize`]), satisfaction & violation detection
//! ([`satisfy`], [`violations`]), exact consistency analysis
//! ([`consistency`]), exact implication analysis ([`implication`]), and
//! the paper's CFD fixtures ([`fixtures`]). The *heuristic* consistency
//! procedures of Section 5 (which interleave CFDs with CINDs) live in
//! `condep-consistency`.

pub mod consistency;
pub mod fixtures;
pub mod implication;
pub mod normalize;
pub mod satisfy;
pub mod syntax;
pub mod violations;

pub use normalize::normalize;
pub use syntax::{Cfd, NormalCfd};
pub use violations::{find_violations, find_violations_unordered, CfdDelta, CfdViolation};
