//! The paper's CFD fixtures.
//!
//! * Figure 4: `ϕ1`–`ϕ3` over the bank target schema, refining the
//!   traditional FDs `fd1`–`fd3` of Example 1.2;
//! * Example 3.2: the four CFDs over `dom(A) = bool` that are pairwise
//!   satisfiable yet jointly inconsistent.

use crate::normalize::normalize;
use crate::syntax::{Cfd, NormalCfd};
use condep_model::fixtures::bank_schema;
use condep_model::{prow, Domain, PValue, PatternRow, Schema, Value};
use std::sync::Arc;

/// `fd1: saving(an, ab → cn, ca, cp)` as a CFD.
pub fn fd1() -> Cfd {
    Cfd::parse(
        &bank_schema(),
        "saving",
        &["an", "ab"],
        &["cn", "ca", "cp"],
        vec![PatternRow::all_any(5)],
    )
    .expect("fixture well-formed")
}

/// `fd2: checking(an, ab → cn, ca, cp)` as a CFD.
pub fn fd2() -> Cfd {
    Cfd::parse(
        &bank_schema(),
        "checking",
        &["an", "ab"],
        &["cn", "ca", "cp"],
        vec![PatternRow::all_any(5)],
    )
    .expect("fixture well-formed")
}

/// `fd3: interest(ct, at → rt)` as a CFD.
pub fn fd3() -> Cfd {
    Cfd::parse(
        &bank_schema(),
        "interest",
        &["ct", "at"],
        &["rt"],
        vec![PatternRow::all_any(3)],
    )
    .expect("fixture well-formed")
}

/// `ϕ1` of Figure 4 — syntactically identical to [`fd1`].
pub fn phi1() -> Cfd {
    fd1()
}

/// `ϕ2` of Figure 4 — syntactically identical to [`fd2`].
pub fn phi2() -> Cfd {
    fd2()
}

/// `ϕ3` of Figure 4: `fd3` refined with the four constant rows
/// `(UK, saving ‖ 4.5%)`, `(UK, checking ‖ 1.5%)`, `(US, saving ‖ 4%)`,
/// `(US, checking ‖ 1%)`.
pub fn phi3() -> Cfd {
    Cfd::parse(
        &bank_schema(),
        "interest",
        &["ct", "at"],
        &["rt"],
        vec![
            prow![_, _, _],
            prow!["UK", "saving", "4.5%"],
            prow!["UK", "checking", "1.5%"],
            prow!["US", "saving", "4%"],
            prow!["US", "checking", "1%"],
        ],
    )
    .expect("fixture well-formed")
}

/// All Figure 4 CFDs, normalized.
pub fn figure_4_normalized() -> Vec<NormalCfd> {
    [phi1(), phi2(), phi3()]
        .iter()
        .flat_map(normalize)
        .collect()
}

/// Example 3.2: schema `R(A: bool, B: string)` and the CFDs
///
/// ```text
/// φ1: (A = true)  → (B = b1)      φ2: (A = false) → (B = b2)
/// φ3: (B = b1)    → (A = false)   φ4: (B = b2)    → (A = true)
/// ```
///
/// Each is individually satisfiable, but together no nonempty instance
/// exists: whatever boolean `t[A]` takes, the cycle forces the other
/// value.
pub fn example_3_2() -> (Arc<Schema>, Vec<NormalCfd>) {
    let schema = Arc::new(
        Schema::builder()
            .relation("r", &[("a", Domain::boolean()), ("b", Domain::string())])
            .finish(),
    );
    let tru = PValue::Const(Value::bool(true));
    let fls = PValue::Const(Value::bool(false));
    let cfds = vec![
        NormalCfd::parse(
            &schema,
            "r",
            &["a"],
            PatternRow::new([tru.clone()]),
            "b",
            PValue::constant("b1"),
        )
        .expect("fixture well-formed"),
        NormalCfd::parse(
            &schema,
            "r",
            &["a"],
            PatternRow::new([fls.clone()]),
            "b",
            PValue::constant("b2"),
        )
        .expect("fixture well-formed"),
        NormalCfd::parse(&schema, "r", &["b"], prow!["b1"], "a", fls).expect("fixture well-formed"),
        NormalCfd::parse(&schema, "r", &["b"], prow!["b2"], "a", tru).expect("fixture well-formed"),
    ];
    (schema, cfds)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_4_normalizes_to_eleven_cfds() {
        // ϕ1, ϕ2: 1 row × 3 RHS attrs each; ϕ3: 5 rows × 1 RHS attr.
        assert_eq!(figure_4_normalized().len(), 11);
    }

    #[test]
    fn phi3_rows_match_the_paper() {
        let phi3 = phi3();
        assert_eq!(phi3.tableau().len(), 5);
        assert!(phi3.tableau()[0].is_all_any());
        assert!(phi3.tableau()[2].all_const());
    }

    #[test]
    fn example_3_2_cfds_are_individually_satisfiable() {
        use crate::consistency::{consistent_exact, Verdict};
        let (schema, cfds) = example_3_2();
        let rel = schema.rel_id("r").unwrap();
        for cfd in &cfds {
            assert_eq!(
                consistent_exact(&schema, rel, std::slice::from_ref(cfd), None),
                Verdict::Consistent,
                "each Example 3.2 CFD alone must be consistent"
            );
        }
    }
}
