//! CFD syntax.

use condep_model::{AttrId, PValue, PatternRow, RelId, RelationSchema, Schema};
use std::fmt;

/// A conditional functional dependency `φ = (R: X → Y, Tp)`.
///
/// * `X` ([`Cfd::lhs`]) and `Y` ([`Cfd::rhs`]) are attribute lists of
///   relation `R`;
/// * every tableau row has one pattern cell per attribute of `X` followed
///   by one per attribute of `Y` (the paper's `tp[X] ‖ tp[Y]` layout).
///
/// A traditional FD is the special case whose tableau is a single
/// all-wildcard row (Example 4.1).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Cfd {
    rel: RelId,
    lhs: Vec<AttrId>,
    rhs: Vec<AttrId>,
    tableau: Vec<PatternRow>,
}

impl Cfd {
    /// Creates a CFD; each row must have `lhs.len() + rhs.len()` cells.
    pub fn new(rel: RelId, lhs: Vec<AttrId>, rhs: Vec<AttrId>, tableau: Vec<PatternRow>) -> Self {
        for row in &tableau {
            assert_eq!(
                row.len(),
                lhs.len() + rhs.len(),
                "tableau row width must equal |X| + |Y|"
            );
        }
        Cfd {
            rel,
            lhs,
            rhs,
            tableau,
        }
    }

    /// The traditional FD `R: X → Y` as a CFD (single all-wildcard row).
    pub fn traditional(rel: RelId, lhs: Vec<AttrId>, rhs: Vec<AttrId>) -> Self {
        let row = PatternRow::all_any(lhs.len() + rhs.len());
        Cfd::new(rel, lhs, rhs, vec![row])
    }

    /// Resolves attribute names against `schema` — the ergonomic
    /// constructor used by fixtures and examples.
    pub fn parse(
        schema: &Schema,
        rel_name: &str,
        lhs_names: &[&str],
        rhs_names: &[&str],
        tableau: Vec<PatternRow>,
    ) -> condep_model::Result<Self> {
        let rel = schema.rel_id(rel_name)?;
        let rs = schema.relation(rel)?;
        let lhs = rs.attr_ids(lhs_names)?;
        let rhs = rs.attr_ids(rhs_names)?;
        Ok(Cfd::new(rel, lhs, rhs, tableau))
    }

    /// The relation the CFD is defined on.
    pub fn rel(&self) -> RelId {
        self.rel
    }

    /// The LHS attribute list `X`.
    pub fn lhs(&self) -> &[AttrId] {
        &self.lhs
    }

    /// The RHS attribute list `Y`.
    pub fn rhs(&self) -> &[AttrId] {
        &self.rhs
    }

    /// The pattern tableau `Tp`.
    pub fn tableau(&self) -> &[PatternRow] {
        &self.tableau
    }

    /// Splits a tableau row into its `(tp[X], tp[Y])` parts.
    pub fn split_row<'a>(&self, row: &'a PatternRow) -> (&'a [PValue], &'a [PValue]) {
        row.cells().split_at(self.lhs.len())
    }

    /// Is this syntactically a traditional FD (single all-wildcard row)?
    pub fn is_traditional(&self) -> bool {
        self.tableau.len() == 1 && self.tableau[0].is_all_any()
    }

    /// Renders the CFD with attribute names from `schema`.
    pub fn display<'a>(&'a self, schema: &'a Schema) -> impl fmt::Display + 'a {
        CfdDisplay { cfd: self, schema }
    }
}

struct CfdDisplay<'a> {
    cfd: &'a Cfd,
    schema: &'a Schema,
}

fn names(rs: &RelationSchema, attrs: &[AttrId]) -> String {
    attrs
        .iter()
        .map(|a| {
            rs.attribute(*a)
                .map(|at| at.name().to_string())
                .unwrap_or_else(|_| a.to_string())
        })
        .collect::<Vec<_>>()
        .join(", ")
}

impl fmt::Display for CfdDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let rs = match self.schema.relation(self.cfd.rel) {
            Ok(rs) => rs,
            Err(_) => return write!(f, "<invalid relation {}>", self.cfd.rel),
        };
        write!(
            f,
            "({}: [{}] -> [{}], {{",
            rs.name(),
            names(rs, &self.cfd.lhs),
            names(rs, &self.cfd.rhs)
        )?;
        for (i, row) in self.cfd.tableau.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            let (x, y) = self.cfd.split_row(row);
            write!(f, "(")?;
            for (j, c) in x.iter().enumerate() {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{c}")?;
            }
            write!(f, " || ")?;
            for (j, c) in y.iter().enumerate() {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{c}")?;
            }
            write!(f, ")")?;
        }
        write!(f, "}})")
    }
}

/// A CFD in normal form: `(R: X → A, tp)` — one RHS attribute, one
/// pattern row (paper, Section 4).
///
/// All reasoning in the workspace operates on normal forms; use
/// [`crate::normalize`] to convert.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct NormalCfd {
    rel: RelId,
    lhs: Vec<AttrId>,
    lhs_pat: PatternRow,
    rhs: AttrId,
    rhs_pat: PValue,
}

impl NormalCfd {
    /// Creates a normal-form CFD; `lhs_pat` must align with `lhs`.
    pub fn new(
        rel: RelId,
        lhs: Vec<AttrId>,
        lhs_pat: PatternRow,
        rhs: AttrId,
        rhs_pat: PValue,
    ) -> Self {
        assert_eq!(lhs.len(), lhs_pat.len(), "LHS pattern must align with X");
        NormalCfd {
            rel,
            lhs,
            lhs_pat,
            rhs,
            rhs_pat,
        }
    }

    /// Name-resolving constructor.
    pub fn parse(
        schema: &Schema,
        rel_name: &str,
        lhs_names: &[&str],
        lhs_pat: PatternRow,
        rhs_name: &str,
        rhs_pat: PValue,
    ) -> condep_model::Result<Self> {
        let rel = schema.rel_id(rel_name)?;
        let rs = schema.relation(rel)?;
        Ok(NormalCfd::new(
            rel,
            rs.attr_ids(lhs_names)?,
            lhs_pat,
            rs.attr_id(rhs_name)?,
            rhs_pat,
        ))
    }

    /// The relation the CFD is defined on.
    pub fn rel(&self) -> RelId {
        self.rel
    }

    /// The LHS attribute list `X`.
    pub fn lhs(&self) -> &[AttrId] {
        &self.lhs
    }

    /// The LHS pattern `tp[X]`.
    pub fn lhs_pat(&self) -> &PatternRow {
        &self.lhs_pat
    }

    /// The single RHS attribute `A`.
    pub fn rhs(&self) -> AttrId {
        self.rhs
    }

    /// The RHS pattern cell `tp[A]`.
    pub fn rhs_pat(&self) -> &PValue {
        &self.rhs_pat
    }

    /// Is the RHS pattern a constant? Constant-RHS CFDs can be violated
    /// by a single tuple.
    pub fn is_constant_rhs(&self) -> bool {
        self.rhs_pat.is_const()
    }

    /// Is the CFD **trivially** satisfied by every instance?
    ///
    /// That is the case exactly when `A ∈ X` and the RHS pattern does
    /// not add information beyond the LHS cell for `A`: a wildcard RHS
    /// (two tuples agreeing on `X ∋ A` agree on `A` by definition), or a
    /// constant RHS equal to the LHS constant on `A` (every matching
    /// tuple already carries it). A constant RHS under a wildcard LHS
    /// cell is *not* trivial — it forces the constant. Discovery uses
    /// this to drop vacuous candidates before ranking.
    pub fn is_trivial(&self) -> bool {
        self.lhs.iter().zip(self.lhs_pat.cells()).any(|(a, cell)| {
            *a == self.rhs
                && match &self.rhs_pat {
                    PValue::Any => true,
                    PValue::Const(c) => cell.as_const() == Some(c),
                }
        })
    }

    /// The LHS canonicalized for set-level grouping: attributes sorted,
    /// pattern cells permuted in lock-step (`None` = wildcard). Two
    /// CFDs over permuted versions of the same LHS attribute set yield
    /// the same attribute list, so they share one group-by index. Both
    /// the in-crate batched [`crate::satisfy::satisfies_all`] and the
    /// `condep-validate` engine group through this one definition.
    pub fn canonical_lhs(&self) -> (Vec<AttrId>, Vec<Option<&condep_model::Value>>) {
        let mut cols: Vec<(AttrId, Option<&condep_model::Value>)> = self
            .lhs
            .iter()
            .zip(self.lhs_pat.cells())
            .map(|(a, c)| (*a, c.as_const()))
            .collect();
        cols.sort_by_key(|&(a, _)| a);
        let attrs = cols.iter().map(|&(a, _)| a).collect();
        let pattern = cols.into_iter().map(|(_, c)| c).collect();
        (attrs, pattern)
    }

    /// All constants appearing in the pattern, with their attributes.
    pub fn pattern_constants(&self) -> Vec<(AttrId, condep_model::Value)> {
        let mut out: Vec<(AttrId, condep_model::Value)> = self
            .lhs
            .iter()
            .zip(self.lhs_pat.cells())
            .filter_map(|(a, c)| c.as_const().map(|v| (*a, v.clone())))
            .collect();
        if let PValue::Const(v) = &self.rhs_pat {
            out.push((self.rhs, v.clone()));
        }
        out
    }

    /// Renders with attribute names from `schema`.
    pub fn display<'a>(&'a self, schema: &'a Schema) -> impl fmt::Display + 'a {
        NormalCfdDisplay { cfd: self, schema }
    }
}

struct NormalCfdDisplay<'a> {
    cfd: &'a NormalCfd,
    schema: &'a Schema,
}

impl fmt::Display for NormalCfdDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let rs = match self.schema.relation(self.cfd.rel) {
            Ok(rs) => rs,
            Err(_) => return write!(f, "<invalid relation {}>", self.cfd.rel),
        };
        let a_name = rs
            .attribute(self.cfd.rhs)
            .map(|a| a.name().to_string())
            .unwrap_or_else(|_| self.cfd.rhs.to_string());
        write!(
            f,
            "({}: [{}] -> {}, {} || {})",
            rs.name(),
            names(rs, &self.cfd.lhs),
            a_name,
            self.cfd.lhs_pat,
            self.cfd.rhs_pat
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use condep_model::{fixtures::bank_schema, prow};

    #[test]
    fn parse_resolves_names() {
        let schema = bank_schema();
        let cfd = Cfd::parse(
            &schema,
            "interest",
            &["ct", "at"],
            &["rt"],
            vec![prow![_, _, _], prow!["UK", "saving", "4.5%"]],
        )
        .unwrap();
        assert_eq!(cfd.lhs().len(), 2);
        assert_eq!(cfd.rhs().len(), 1);
        assert_eq!(cfd.tableau().len(), 2);
        assert!(!cfd.is_traditional());
    }

    #[test]
    fn traditional_constructor_is_all_wildcard() {
        let schema = bank_schema();
        let saving = schema.rel_id("saving").unwrap();
        let rs = schema.relation(saving).unwrap();
        let cfd = Cfd::traditional(
            saving,
            rs.attr_ids(&["an", "ab"]).unwrap(),
            rs.attr_ids(&["cn", "ca", "cp"]).unwrap(),
        );
        assert!(cfd.is_traditional());
        assert_eq!(cfd.tableau()[0].len(), 5);
    }

    #[test]
    #[should_panic(expected = "tableau row width")]
    fn misaligned_row_panics() {
        let schema = bank_schema();
        let saving = schema.rel_id("saving").unwrap();
        let rs = schema.relation(saving).unwrap();
        Cfd::new(
            saving,
            rs.attr_ids(&["an"]).unwrap(),
            rs.attr_ids(&["cn"]).unwrap(),
            vec![prow![_, _, _]],
        );
    }

    #[test]
    fn split_row_partitions_cells() {
        let schema = bank_schema();
        let cfd = Cfd::parse(
            &schema,
            "interest",
            &["ct", "at"],
            &["rt"],
            vec![prow!["UK", "checking", "1.5%"]],
        )
        .unwrap();
        let (x, y) = cfd.split_row(&cfd.tableau()[0]);
        assert_eq!(x.len(), 2);
        assert_eq!(y.len(), 1);
        assert_eq!(y[0], PValue::constant("1.5%"));
    }

    #[test]
    fn normal_cfd_accessors() {
        let schema = bank_schema();
        let n = NormalCfd::parse(
            &schema,
            "interest",
            &["ct", "at"],
            prow!["UK", "checking"],
            "rt",
            PValue::constant("1.5%"),
        )
        .unwrap();
        assert!(n.is_constant_rhs());
        assert_eq!(n.pattern_constants().len(), 3);
        let shown = n.display(&schema).to_string();
        assert!(shown.contains("interest"));
        assert!(shown.contains("1.5%"));
    }

    #[test]
    fn display_general_cfd() {
        let schema = bank_schema();
        let cfd = Cfd::parse(
            &schema,
            "interest",
            &["ct", "at"],
            &["rt"],
            vec![prow![_, _, _]],
        )
        .unwrap();
        let s = cfd.display(&schema).to_string();
        assert!(s.contains("interest"));
        assert!(s.contains("ct, at"));
        assert!(s.contains("||"));
    }
}
