//! Normalization of CFDs.
//!
//! Section 4 of the paper: "we say that a CFD `φ = (R: X → Y, Tp)` is in
//! the normal form if `Tp` consists of a single tuple `tp` and `Y`
//! contains a single attribute `A` … We can always rewrite a CFD into an
//! equivalent set of CFDs in the normal form." The rewrite splits the
//! tableau into one CFD per row and the RHS into one CFD per attribute —
//! the conjunction of the pieces is equivalent to the original, and the
//! output size is linear in the input size.

use crate::syntax::{Cfd, NormalCfd};
use condep_model::PatternRow;

/// Rewrites a CFD into the equivalent set of normal-form CFDs (one per
/// tableau row per RHS attribute).
pub fn normalize(cfd: &Cfd) -> Vec<NormalCfd> {
    let mut out = Vec::with_capacity(cfd.tableau().len() * cfd.rhs().len());
    for row in cfd.tableau() {
        let (x_cells, y_cells) = cfd.split_row(row);
        let lhs_pat: PatternRow = x_cells.iter().cloned().collect();
        for (j, a) in cfd.rhs().iter().enumerate() {
            out.push(NormalCfd::new(
                cfd.rel(),
                cfd.lhs().to_vec(),
                lhs_pat.clone(),
                *a,
                y_cells[j].clone(),
            ));
        }
    }
    out
}

/// Normalizes a whole set.
pub fn normalize_all<'a, I>(cfds: I) -> Vec<NormalCfd>
where
    I: IntoIterator<Item = &'a Cfd>,
{
    cfds.into_iter().flat_map(normalize).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use condep_model::fixtures::bank_schema;
    use condep_model::{prow, PValue};

    #[test]
    fn one_normal_cfd_per_row_per_rhs_attr() {
        let schema = bank_schema();
        let cfd = Cfd::parse(
            &schema,
            "saving",
            &["an", "ab"],
            &["cn", "ca", "cp"],
            vec![prow![_, _, _, _, _], prow!["01", _, _, _, _]],
        )
        .unwrap();
        let normal = normalize(&cfd);
        // 2 rows × 3 RHS attributes.
        assert_eq!(normal.len(), 6);
        // Size is linear: every normal CFD references the same X list.
        for n in &normal {
            assert_eq!(n.lhs(), cfd.lhs());
        }
    }

    #[test]
    fn patterns_are_split_correctly() {
        let schema = bank_schema();
        let cfd = Cfd::parse(
            &schema,
            "interest",
            &["ct", "at"],
            &["rt"],
            vec![prow!["UK", "checking", "1.5%"]],
        )
        .unwrap();
        let normal = normalize(&cfd);
        assert_eq!(normal.len(), 1);
        let n = &normal[0];
        assert_eq!(n.lhs_pat(), &prow!["UK", "checking"]);
        assert_eq!(n.rhs_pat(), &PValue::constant("1.5%"));
    }

    #[test]
    fn normalize_all_flattens() {
        let schema = bank_schema();
        let fd1 = Cfd::parse(
            &schema,
            "saving",
            &["an", "ab"],
            &["cn"],
            vec![prow![_, _, _]],
        )
        .unwrap();
        let fd3 = Cfd::parse(
            &schema,
            "interest",
            &["ct", "at"],
            &["rt"],
            vec![prow![_, _, _], prow!["UK", "saving", "4.5%"]],
        )
        .unwrap();
        let all = normalize_all([&fd1, &fd3]);
        assert_eq!(all.len(), 3);
    }

    #[test]
    fn empty_tableau_normalizes_to_nothing() {
        // A CFD with no pattern rows imposes no constraint.
        let schema = bank_schema();
        let cfd = Cfd::parse(&schema, "interest", &["ct"], &["rt"], vec![]).unwrap();
        assert!(normalize(&cfd).is_empty());
    }
}
