//! Exact implication analysis for CFDs.
//!
//! `Σ |= φ` iff every instance satisfying `Σ` also satisfies `φ`. For
//! CFDs this is coNP-complete in general and O(n²) without finite-domain
//! attributes (Section 4, citing the companion CFD paper). Both exact
//! procedures are provided:
//!
//! * [`implies_infinite`] — a two-tuple *template chase*: build the most
//!   general pair of tuples witnessing `φ`'s premise, close it under the
//!   CFDs of `Σ`, and read off whether the conclusion is forced. Sound
//!   and complete when no mentioned attribute has a finite domain
//!   (fresh values can then always avoid pattern constants).
//! * [`implies_exhaustive`] — complete counterexample enumeration over
//!   canonical small instances (violations of a CFD involve at most two
//!   tuples, and only constants from the constraints plus two fresh
//!   values per attribute — or the whole domain when finite — can
//!   matter). Worst-case exponential, with an explicit budget.
//!
//! A violation of `φ` involves tuples of `φ`'s relation only, and CFDs
//! are intra-relational, so both procedures restrict `Σ` to that
//! relation.

use crate::satisfy::satisfies_all;
use crate::syntax::NormalCfd;
use condep_model::{Database, PValue, Schema, Tuple, Value};
use std::collections::BTreeSet;
use std::sync::Arc;

pub use condep_model::implication::{Implication, ImplicationConfig};

/// A template cell: a known constant or a named placeholder.
#[derive(Clone, PartialEq, Eq, Debug)]
enum TVal {
    Const(Value),
    Var(u32),
}

/// The two-tuple template chase; complete when no mentioned attribute has
/// a finite domain.
pub fn implies_infinite(schema: &Schema, sigma: &[NormalCfd], phi: &NormalCfd) -> bool {
    let rel = phi.rel();
    let sigma_on_rel: Vec<&NormalCfd> = sigma.iter().filter(|c| c.rel() == rel).collect();
    let arity = schema.relation(rel).map(|rs| rs.arity()).unwrap_or(0);

    // Most general premise pair: constants where φ's LHS pattern has
    // them, a shared variable per wildcard LHS cell, distinct variables
    // elsewhere.
    let mut t1: Vec<TVal> = (0..arity as u32).map(TVal::Var).collect();
    let mut t2: Vec<TVal> = (arity as u32..2 * arity as u32).map(TVal::Var).collect();
    for (pos, a) in phi.lhs().iter().enumerate() {
        match phi.lhs_pat().cell(pos) {
            PValue::Const(c) => {
                t1[a.index()] = TVal::Const(c.clone());
                t2[a.index()] = TVal::Const(c.clone());
            }
            PValue::Any => {
                t2[a.index()] = t1[a.index()].clone();
            }
        }
    }

    // Substitute `Var(v) := to` across both tuples.
    fn subst(t1: &mut [TVal], t2: &mut [TVal], v: u32, to: &TVal) {
        for cell in t1.iter_mut().chain(t2.iter_mut()) {
            if *cell == TVal::Var(v) {
                *cell = to.clone();
            }
        }
    }

    /// Does the tuple definitely match the CFD's LHS pattern? Variables
    /// never match constants (they will take fresh values).
    fn matched(t: &[TVal], cfd: &NormalCfd) -> bool {
        cfd.lhs()
            .iter()
            .zip(cfd.lhs_pat().cells())
            .all(|(a, cell)| match cell {
                PValue::Any => true,
                PValue::Const(c) => t[a.index()] == TVal::Const(c.clone()),
            })
    }

    // Chase to fixpoint. Every productive step removes a variable, so
    // this terminates after at most 2·arity rounds.
    loop {
        let mut changed = false;
        for cfd in &sigma_on_rel {
            let a = cfd.rhs().index();
            // Single-tuple rule: a matching tuple must carry the RHS
            // constant.
            if let PValue::Const(c) = cfd.rhs_pat() {
                for which in 0..2 {
                    let t_matched = if which == 0 {
                        matched(&t1, cfd)
                    } else {
                        matched(&t2, cfd)
                    };
                    if !t_matched {
                        continue;
                    }
                    let cell = if which == 0 {
                        t1[a].clone()
                    } else {
                        t2[a].clone()
                    };
                    match cell {
                        TVal::Const(ref b) if b == c => {}
                        TVal::Const(_) => return true, // contradiction ⇒ no counterexample
                        TVal::Var(v) => {
                            subst(&mut t1, &mut t2, v, &TVal::Const(c.clone()));
                            changed = true;
                        }
                    }
                }
            }
            // Pair rule: if the tuples agree on X and match the pattern,
            // they must agree on A.
            let agree_on_x = cfd.lhs().iter().all(|x| t1[x.index()] == t2[x.index()]);
            if agree_on_x && matched(&t1, cfd) && t1[a] != t2[a] {
                match (t1[a].clone(), t2[a].clone()) {
                    (TVal::Const(_), TVal::Const(_)) => return true, // contradiction
                    (TVal::Var(v), other) => {
                        subst(&mut t1, &mut t2, v, &other);
                        changed = true;
                    }
                    (other, TVal::Var(v)) => {
                        subst(&mut t1, &mut t2, v, &other);
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Conclusion: t1[A] = t2[A] ≍ tp[A] must already be forced.
    let a = phi.rhs().index();
    if t1[a] != t2[a] {
        return false;
    }
    match phi.rhs_pat() {
        PValue::Any => true,
        PValue::Const(c) => t1[a] == TVal::Const(c.clone()),
    }
}

/// Candidate values for one attribute of the counterexample search:
/// the whole domain when finite, otherwise the mentioned constants plus
/// two fresh values.
fn candidate_values(
    schema: &Schema,
    rel: condep_model::RelId,
    attr: condep_model::AttrId,
    deps: &[&NormalCfd],
) -> Vec<Value> {
    let attr_meta = schema
        .relation(rel)
        .and_then(|rs| rs.attribute(attr).cloned())
        .expect("attribute in range");
    if let Some(values) = attr_meta.domain().values() {
        return values.to_vec();
    }
    let mut consts: BTreeSet<Value> = BTreeSet::new();
    for d in deps {
        for (a, v) in d.pattern_constants() {
            if a == attr {
                consts.insert(v);
            }
        }
    }
    let mut out: Vec<Value> = consts.into_iter().collect();
    let f1 = attr_meta
        .domain()
        .fresh_value(&out)
        .expect("infinite domain");
    out.push(f1);
    let f2 = attr_meta
        .domain()
        .fresh_value(&out)
        .expect("infinite domain");
    out.push(f2);
    out
}

/// Complete (budgeted) counterexample enumeration.
///
/// Enumerates every one- and two-tuple instance of `φ`'s relation over
/// canonical values; returns [`Implication::NotImplied`] on the first
/// instance satisfying `Σ` but violating `φ`, [`Implication::Implied`]
/// when the space is exhausted, and [`Implication::Unknown`] when more
/// than `config.max_instances` candidates would be needed.
pub fn implies_exhaustive(
    schema: &Arc<Schema>,
    sigma: &[NormalCfd],
    phi: &NormalCfd,
    config: ImplicationConfig,
) -> Implication {
    let max_instances = config.max_instances;
    let rel = phi.rel();
    let mut deps: Vec<&NormalCfd> = sigma.iter().filter(|c| c.rel() == rel).collect();
    deps.push(phi);
    let arity = schema.relation(rel).map(|rs| rs.arity()).unwrap_or(0);
    let cands: Vec<Vec<Value>> = (0..arity)
        .map(|i| candidate_values(schema, rel, condep_model::AttrId(i as u32), &deps))
        .collect();

    let sigma_on_rel: Vec<NormalCfd> = sigma.iter().filter(|c| c.rel() == rel).cloned().collect();

    let mut tried: u64 = 0;
    let mut counterexample_found = false;
    let mut budget_hit = false;
    enumerate_tuples(&cands, &mut |first: &Tuple| {
        // One-tuple instances, then all pairs with this first tuple.
        let mut check = |tuples: &[Tuple]| -> bool {
            if let Some(max) = max_instances {
                if tried >= max {
                    budget_hit = true;
                    return true; // stop
                }
            }
            tried += 1;
            let mut db = Database::empty(schema.clone());
            for t in tuples {
                db.insert(rel, t.clone()).expect("candidate well-typed");
            }
            if satisfies_all(&db, &sigma_on_rel) && !crate::satisfy::satisfies_normal(&db, phi) {
                counterexample_found = true;
                return true; // stop
            }
            false
        };
        if check(std::slice::from_ref(first)) {
            return true;
        }
        let mut stop = false;
        enumerate_tuples(&cands, &mut |second: &Tuple| {
            if check(&[first.clone(), second.clone()]) {
                stop = true;
                return true;
            }
            false
        });
        stop
    });

    if counterexample_found {
        Implication::NotImplied
    } else if budget_hit {
        Implication::Unknown
    } else {
        Implication::Implied
    }
}

/// Odometer enumeration of tuples over per-attribute candidate sets;
/// `visit` returns `true` to stop early.
fn enumerate_tuples(cands: &[Vec<Value>], visit: &mut dyn FnMut(&Tuple) -> bool) {
    let mut counters = vec![0usize; cands.len()];
    loop {
        let t = Tuple::new(
            counters
                .iter()
                .enumerate()
                .map(|(i, &c)| cands[i][c].clone()),
        );
        if visit(&t) {
            return;
        }
        let mut i = 0;
        loop {
            if i == counters.len() {
                return;
            }
            counters[i] += 1;
            if counters[i] < cands[i].len() {
                break;
            }
            counters[i] = 0;
            i += 1;
        }
    }
}

/// Do the dependencies mention any finite-domain attribute?
pub fn mentions_finite_attr(schema: &Schema, deps: &[&NormalCfd]) -> bool {
    deps.iter().any(|d| {
        let rs = match schema.relation(d.rel()) {
            Ok(rs) => rs,
            Err(_) => return false,
        };
        d.lhs()
            .iter()
            .chain([&d.rhs()])
            .any(|a| rs.attribute(*a).map(|at| at.is_finite()).unwrap_or(false))
    })
}

/// Dispatching implication check: the polynomial template chase when no
/// finite-domain attribute is mentioned, otherwise budgeted exhaustive
/// search.
pub fn implies(
    schema: &Arc<Schema>,
    sigma: &[NormalCfd],
    phi: &NormalCfd,
    config: ImplicationConfig,
) -> Implication {
    let mut deps: Vec<&NormalCfd> = sigma.iter().filter(|c| c.rel() == phi.rel()).collect();
    deps.push(phi);
    if !mentions_finite_attr(schema, &deps) {
        if implies_infinite(schema, sigma, phi) {
            Implication::Implied
        } else {
            Implication::NotImplied
        }
    } else {
        implies_exhaustive(schema, sigma, phi, config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use condep_model::{prow, Domain, PatternRow};

    fn abc_schema() -> Arc<Schema> {
        Arc::new(
            Schema::builder()
                .relation_str("r", &["a", "b", "c"])
                .finish(),
        )
    }

    fn fd(schema: &Schema, lhs: &[&str], rhs: &str) -> NormalCfd {
        NormalCfd::parse(
            schema,
            "r",
            lhs,
            PatternRow::all_any(lhs.len()),
            rhs,
            PValue::Any,
        )
        .unwrap()
    }

    #[test]
    fn fd_transitivity_is_implied() {
        // {A→B, B→C} |= A→C (classical Armstrong transitivity).
        let schema = abc_schema();
        let sigma = vec![fd(&schema, &["a"], "b"), fd(&schema, &["b"], "c")];
        let phi = fd(&schema, &["a"], "c");
        assert!(implies_infinite(&schema, &sigma, &phi));
        assert_eq!(
            implies(&schema, &sigma, &phi, ImplicationConfig::unbounded()),
            Implication::Implied
        );
    }

    #[test]
    fn reverse_direction_is_not_implied() {
        let schema = abc_schema();
        let sigma = vec![fd(&schema, &["a"], "b")];
        let phi = fd(&schema, &["b"], "a");
        assert!(!implies_infinite(&schema, &sigma, &phi));
        assert_eq!(
            implies_exhaustive(&schema, &sigma, &phi, ImplicationConfig::unbounded()),
            Implication::NotImplied
        );
    }

    #[test]
    fn reflexivity_is_implied_from_nothing() {
        // ∅ |= AB→A style: X→A with A ∈ X.
        let schema = abc_schema();
        let phi =
            NormalCfd::parse(&schema, "r", &["a", "b"], prow![_, _], "a", PValue::Any).unwrap();
        assert!(implies_infinite(&schema, &[], &phi));
    }

    #[test]
    fn constant_propagation_is_implied() {
        // {(A=x → B=y), (B=y → C=z)} |= (A=x → C=z).
        let schema = abc_schema();
        let c1 =
            NormalCfd::parse(&schema, "r", &["a"], prow!["x"], "b", PValue::constant("y")).unwrap();
        let c2 =
            NormalCfd::parse(&schema, "r", &["b"], prow!["y"], "c", PValue::constant("z")).unwrap();
        let phi =
            NormalCfd::parse(&schema, "r", &["a"], prow!["x"], "c", PValue::constant("z")).unwrap();
        assert!(implies_infinite(&schema, &[c1.clone(), c2.clone()], &phi));
        // A different target constant is not implied.
        let phi_bad =
            NormalCfd::parse(&schema, "r", &["a"], prow!["x"], "c", PValue::constant("w")).unwrap();
        assert!(!implies_infinite(&schema, &[c1, c2], &phi_bad));
    }

    #[test]
    fn pattern_refines_fd() {
        // A plain FD implies its constant-premise refinement with
        // wildcard RHS.
        let schema = abc_schema();
        let sigma = vec![fd(&schema, &["a"], "b")];
        let phi = NormalCfd::parse(&schema, "r", &["a"], prow!["x"], "b", PValue::Any).unwrap();
        assert!(implies_infinite(&schema, &sigma, &phi));
        // The converse fails: the refinement does not imply the full FD.
        let sigma2 = vec![phi];
        let phi2 = fd(&schema, &["a"], "b");
        assert!(!implies_infinite(&schema, &sigma2, &phi2));
    }

    #[test]
    fn exhaustive_agrees_with_chase_on_infinite_inputs() {
        let schema = abc_schema();
        let cases: Vec<(Vec<NormalCfd>, NormalCfd)> = vec![
            (
                vec![fd(&schema, &["a"], "b"), fd(&schema, &["b"], "c")],
                fd(&schema, &["a"], "c"),
            ),
            (vec![fd(&schema, &["a"], "b")], fd(&schema, &["b"], "a")),
            (
                vec![NormalCfd::parse(
                    &schema,
                    "r",
                    &["a"],
                    prow!["x"],
                    "b",
                    PValue::constant("y"),
                )
                .unwrap()],
                NormalCfd::parse(&schema, "r", &["a"], prow!["x"], "b", PValue::Any).unwrap(),
            ),
        ];
        for (sigma, phi) in cases {
            let chase = implies_infinite(&schema, &sigma, &phi);
            let brute = implies_exhaustive(&schema, &sigma, &phi, ImplicationConfig::unbounded());
            assert_eq!(
                chase,
                brute == Implication::Implied,
                "disagreement on {sigma:?} |= {phi:?}"
            );
        }
    }

    #[test]
    fn finite_domain_case_split_changes_the_answer() {
        // dom(A) = {0,1}. Σ = {(A=0 → B=x), (A=1 → B=x)}.
        // Σ |= (nil → B=x)?  Over an infinite A it would NOT be implied
        // (pick A outside {0,1}); over the finite domain it IS.
        let schema = Arc::new(
            Schema::builder()
                .relation(
                    "r",
                    &[("a", Domain::finite_ints(2)), ("b", Domain::string())],
                )
                .finish(),
        );
        let mk = |v: i64| {
            NormalCfd::parse(
                &schema,
                "r",
                &["a"],
                PatternRow::new([PValue::constant(Value::int(v))]),
                "b",
                PValue::constant("x"),
            )
            .unwrap()
        };
        let sigma = vec![mk(0), mk(1)];
        let phi = NormalCfd::parse(&schema, "r", &[], prow![], "b", PValue::constant("x")).unwrap();
        // The dispatcher must pick the exhaustive path and find implication.
        assert_eq!(
            implies(&schema, &sigma, &phi, ImplicationConfig::unbounded()),
            Implication::Implied
        );
        // The chase alone (wrongly, here) reports non-implication —
        // demonstrating why the finite-domain case needs the case split.
        assert!(!implies_infinite(&schema, &sigma, &phi));
    }

    #[test]
    fn budget_exhaustion_reports_unknown() {
        let schema = Arc::new(
            Schema::builder()
                .relation(
                    "r",
                    &[("a", Domain::finite_ints(2)), ("b", Domain::string())],
                )
                .finish(),
        );
        let phi = NormalCfd::parse(&schema, "r", &[], prow![], "b", PValue::constant("x")).unwrap();
        assert_eq!(
            implies_exhaustive(
                &schema,
                &[],
                &phi,
                ImplicationConfig::with_max_instances(10)
            ),
            Implication::NotImplied,
            "a small candidate instance refutes (nil → B=x) from ∅"
        );
        // An implied CFD with a tiny budget cannot be confirmed.
        let phi2 = NormalCfd::parse(&schema, "r", &["b"], prow![_], "b", PValue::Any).unwrap();
        assert_eq!(
            implies_exhaustive(
                &schema,
                &[],
                &phi2,
                ImplicationConfig::with_max_instances(1)
            ),
            Implication::Unknown
        );
    }

    #[test]
    fn sigma_on_other_relations_is_ignored() {
        let schema = Arc::new(
            Schema::builder()
                .relation_str("r", &["a", "b"])
                .relation_str("s", &["c", "d"])
                .finish(),
        );
        let on_s = NormalCfd::parse(&schema, "s", &["c"], prow![_], "d", PValue::Any).unwrap();
        let phi = NormalCfd::parse(&schema, "r", &["a"], prow![_], "b", PValue::Any).unwrap();
        assert!(!implies_infinite(&schema, &[on_s], &phi));
    }
}
