//! Exact consistency analysis for CFDs.
//!
//! A set of CFDs on a relation `R` is *consistent* iff some nonempty
//! instance of `R` satisfies it. Because CFD satisfaction is closed under
//! sub-instances, this holds iff a **single-tuple** witness exists — so
//! consistency reduces to finding one tuple `t` with
//! `t[X] ≍ tp[X] → t[A] ≍ tp[A]` for every normal CFD (only constant-RHS
//! CFDs constrain a single tuple; wildcard-RHS CFDs need a pair to
//! violate).
//!
//! The algorithms here are **exact** (unlike the heuristics of Section 5,
//! which live in `condep-consistency`):
//!
//! * [`consistent_infinite`] — the polynomial fixpoint for constraint
//!   sets not involving finite-domain attributes ("the consistency …
//!   problem is in O(n²) time … if the CFDs do not involve attributes
//!   with a finite domain", Section 4);
//! * [`consistent_exact`] — exhaustive enumeration of finite-domain
//!   assignments around the same fixpoint; worst-case exponential, which
//!   is unavoidable (the problem is NP-complete), with an explicit
//!   budget;
//! * [`witness_tuple`] — materializes the witness, used by the
//!   dependency-graph algorithm of Section 5.3 to instantiate `τ(R)`.

use crate::syntax::NormalCfd;
use condep_model::{AttrId, PValue, RelId, Schema, Tuple, Value};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Outcome of a budgeted exact check.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Verdict {
    /// A witness tuple exists.
    Consistent,
    /// Provably no witness exists.
    Inconsistent,
    /// Budget exhausted before a verdict.
    Unknown,
}

impl Verdict {
    /// `true` for [`Verdict::Consistent`].
    pub fn is_consistent(self) -> bool {
        self == Verdict::Consistent
    }
}

/// The propagation fixpoint for one assignment of finite attributes.
///
/// `finite` fixes values of finite-domain attributes; `forced` accumulates
/// values forced on infinite attributes. Returns the forced map on
/// success, or `None` when the assignment is infeasible.
fn propagate(
    cfds: &[&NormalCfd],
    finite: &BTreeMap<AttrId, Value>,
    schema: &Schema,
    rel: RelId,
) -> Option<HashMap<AttrId, Value>> {
    let rs = schema.relation(rel).ok()?;
    let mut forced: HashMap<AttrId, Value> = HashMap::new();
    let matched = |cfd: &NormalCfd, forced: &HashMap<AttrId, Value>| -> bool {
        cfd.lhs()
            .iter()
            .zip(cfd.lhs_pat().cells())
            .all(|(a, cell)| match cell {
                PValue::Any => true,
                PValue::Const(c) => {
                    if let Some(v) = finite.get(a) {
                        v == c
                    } else if let Some(v) = forced.get(a) {
                        v == c
                    } else {
                        // Unconstrained infinite attribute: the witness
                        // takes a fresh value, which never equals `c`.
                        false
                    }
                }
            })
    };
    loop {
        let mut changed = false;
        for cfd in cfds {
            let PValue::Const(a_val) = cfd.rhs_pat() else {
                continue; // wildcard RHS: vacuous on one tuple
            };
            if !matched(cfd, &forced) {
                continue;
            }
            let a = cfd.rhs();
            let is_finite = rs.attribute(a).map(|at| at.is_finite()).unwrap_or(false);
            if is_finite {
                match finite.get(&a) {
                    Some(v) if v == a_val => {}
                    // The enumeration fixed a different value, or the
                    // attribute was (incorrectly) not enumerated.
                    _ => return None,
                }
            } else {
                match forced.get(&a) {
                    Some(v) if v == a_val => {}
                    Some(_) => return None, // two distinct forced constants
                    None => {
                        forced.insert(a, a_val.clone());
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            return Some(forced);
        }
    }
}

/// Finite-domain attributes mentioned anywhere in the constraint set.
fn mentioned_finite_attrs(schema: &Schema, rel: RelId, cfds: &[&NormalCfd]) -> Vec<AttrId> {
    let rs = match schema.relation(rel) {
        Ok(rs) => rs,
        Err(_) => return Vec::new(),
    };
    let mut out: BTreeSet<AttrId> = BTreeSet::new();
    for cfd in cfds {
        for a in cfd.lhs().iter().chain([&cfd.rhs()]) {
            if rs.attribute(*a).map(|at| at.is_finite()).unwrap_or(false) {
                out.insert(*a);
            }
        }
    }
    out.into_iter().collect()
}

/// Exact consistency for CFD sets **not involving finite-domain
/// attributes** — the O(n²) fixpoint. Panics in debug builds if a finite
/// attribute is mentioned; use [`consistent_exact`] in the general case.
pub fn consistent_infinite(schema: &Schema, rel: RelId, cfds: &[NormalCfd]) -> bool {
    let refs: Vec<&NormalCfd> = cfds.iter().collect();
    debug_assert!(
        mentioned_finite_attrs(schema, rel, &refs).is_empty(),
        "consistent_infinite requires infinite-domain attributes only"
    );
    propagate(&refs, &BTreeMap::new(), schema, rel).is_some()
}

/// Exact consistency in the general setting, enumerating assignments of
/// the mentioned finite-domain attributes around the propagation
/// fixpoint. `max_assignments` bounds the enumeration; when exceeded the
/// verdict is [`Verdict::Unknown`].
pub fn consistent_exact(
    schema: &Schema,
    rel: RelId,
    cfds: &[NormalCfd],
    max_assignments: Option<u64>,
) -> Verdict {
    let refs: Vec<&NormalCfd> = cfds.iter().collect();
    match witness_search(schema, rel, &refs, max_assignments) {
        WitnessOutcome::Found(_) => Verdict::Consistent,
        WitnessOutcome::Exhausted => Verdict::Inconsistent,
        WitnessOutcome::BudgetSpent => Verdict::Unknown,
    }
}

enum WitnessOutcome {
    Found(Tuple),
    Exhausted,
    BudgetSpent,
}

/// Enumerates finite-attribute assignments (odometer order) and runs the
/// fixpoint for each; materializes the first witness found.
fn witness_search(
    schema: &Schema,
    rel: RelId,
    cfds: &[&NormalCfd],
    max_assignments: Option<u64>,
) -> WitnessOutcome {
    let Ok(rs) = schema.relation(rel) else {
        return WitnessOutcome::Exhausted;
    };
    let finite_attrs = mentioned_finite_attrs(schema, rel, cfds);
    let domains: Vec<&[Value]> = finite_attrs
        .iter()
        .map(|a| {
            rs.attribute(*a)
                .expect("attr in range")
                .domain()
                .values()
                .expect("finite attr has values")
        })
        .collect();

    let mut counters = vec![0usize; finite_attrs.len()];
    let mut tried: u64 = 0;
    loop {
        if let Some(max) = max_assignments {
            if tried >= max {
                return WitnessOutcome::BudgetSpent;
            }
        }
        tried += 1;
        let assignment: BTreeMap<AttrId, Value> = finite_attrs
            .iter()
            .enumerate()
            .map(|(i, a)| (*a, domains[i][counters[i]].clone()))
            .collect();
        if let Some(forced) = propagate(cfds, &assignment, schema, rel) {
            return WitnessOutcome::Found(build_witness(schema, rel, cfds, &assignment, &forced));
        }
        // Odometer increment; exhausting the space proves inconsistency.
        let mut i = 0;
        loop {
            if i == counters.len() {
                return WitnessOutcome::Exhausted;
            }
            counters[i] += 1;
            if counters[i] < domains[i].len() {
                break;
            }
            counters[i] = 0;
            i += 1;
        }
    }
}

/// Materializes the witness: assigned/forced values where determined,
/// fresh values (avoiding every constant of the constraint set) elsewhere.
fn build_witness(
    schema: &Schema,
    rel: RelId,
    cfds: &[&NormalCfd],
    finite: &BTreeMap<AttrId, Value>,
    forced: &HashMap<AttrId, Value>,
) -> Tuple {
    let rs = schema.relation(rel).expect("relation in range");
    // Constants per attribute, to steer fresh values away from premises.
    let mut constants: HashMap<AttrId, Vec<Value>> = HashMap::new();
    for cfd in cfds {
        for (a, v) in cfd.pattern_constants() {
            constants.entry(a).or_default().push(v);
        }
    }
    let values: Vec<Value> = rs
        .iter()
        .map(|(a, attr)| {
            if let Some(v) = finite.get(&a) {
                v.clone()
            } else if let Some(v) = forced.get(&a) {
                v.clone()
            } else {
                let avoid = constants.get(&a).map(Vec::as_slice).unwrap_or(&[]);
                attr.domain()
                    .fresh_value(avoid)
                    // A finite domain fully covered by constants: any
                    // member works only if nothing constrains this
                    // attribute; fall back to the first member.
                    .unwrap_or_else(|| attr.domain().values().expect("finite")[0].clone())
            }
        })
        .collect();
    Tuple::new(values)
}

/// Finds a single-tuple witness for `cfds` on relation `rel`, if one
/// exists within the budget.
pub fn witness_tuple(
    schema: &Schema,
    rel: RelId,
    cfds: &[NormalCfd],
    max_assignments: Option<u64>,
) -> Option<Tuple> {
    let refs: Vec<&NormalCfd> = cfds.iter().collect();
    match witness_search(schema, rel, &refs, max_assignments) {
        WitnessOutcome::Found(t) => Some(t),
        _ => None,
    }
}

/// Consistency of a multi-relation CFD set: `Σ` is consistent iff *some*
/// relation admits a nonempty instance (other relations may stay empty,
/// vacuously satisfying their CFDs).
pub fn set_consistent_exact(
    schema: &Schema,
    cfds: &[NormalCfd],
    max_assignments_per_relation: Option<u64>,
) -> Verdict {
    let mut saw_unknown = false;
    for (rel, _) in schema.iter() {
        let on_rel: Vec<NormalCfd> = cfds.iter().filter(|c| c.rel() == rel).cloned().collect();
        match consistent_exact(schema, rel, &on_rel, max_assignments_per_relation) {
            Verdict::Consistent => return Verdict::Consistent,
            Verdict::Unknown => saw_unknown = true,
            Verdict::Inconsistent => {}
        }
    }
    if saw_unknown {
        Verdict::Unknown
    } else {
        Verdict::Inconsistent
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;
    use crate::satisfy::satisfies_all;
    use condep_model::{prow, Database, Domain, PatternRow, Schema};
    use std::sync::Arc;

    fn ab_schema(a_dom: Domain, b_dom: Domain) -> Arc<Schema> {
        Arc::new(
            Schema::builder()
                .relation("r", &[("a", a_dom), ("b", b_dom)])
                .finish(),
        )
    }

    #[test]
    fn example_3_2_is_inconsistent() {
        // φ1: (A=true → B=b1), φ2: (A=false → B=b2),
        // φ3: (B=b1 → A=false), φ4: (B=b2 → A=true) over dom(A)=bool.
        let (schema, cfds) = fixtures::example_3_2();
        let rel = schema.rel_id("r").unwrap();
        assert_eq!(
            consistent_exact(&schema, rel, &cfds, None),
            Verdict::Inconsistent
        );
    }

    #[test]
    fn example_3_2_with_infinite_a_is_consistent() {
        // The paper: "if dom(A) and dom(B) were infinite, we could find a
        // tuple t …" — the same constraints become consistent.
        let schema = ab_schema(Domain::string(), Domain::string());
        let rel = schema.rel_id("r").unwrap();
        let mk = |lp: PatternRow, rhs: &str, rp: &str| {
            NormalCfd::parse(
                &schema,
                "r",
                &[if rhs == "b" { "a" } else { "b" }],
                lp,
                rhs,
                PValue::constant(rp),
            )
            .unwrap()
        };
        let cfds = vec![
            mk(prow!["true"], "b", "b1"),
            mk(prow!["false"], "b", "b2"),
            mk(prow!["b1"], "a", "false"),
            mk(prow!["b2"], "a", "true"),
        ];
        assert!(consistent_infinite(&schema, rel, &cfds));
        let w = witness_tuple(&schema, rel, &cfds, None).unwrap();
        // The witness satisfies the set as a singleton database.
        let mut db = Database::empty(schema.clone());
        db.insert(rel, w).unwrap();
        assert!(satisfies_all(&db, &cfds));
    }

    #[test]
    fn unconditional_conflict_is_caught_without_finite_domains() {
        // (nil → A, a) and (nil → A, b): both fire on every tuple.
        let schema = ab_schema(Domain::string(), Domain::string());
        let rel = schema.rel_id("r").unwrap();
        let c1 = NormalCfd::parse(&schema, "r", &[], prow![], "a", PValue::constant("x")).unwrap();
        let c2 = NormalCfd::parse(&schema, "r", &[], prow![], "a", PValue::constant("y")).unwrap();
        assert!(!consistent_infinite(
            &schema,
            rel,
            &[c1.clone(), c2.clone()]
        ));
        assert!(consistent_infinite(&schema, rel, &[c1]));
    }

    #[test]
    fn propagation_chains_through_forced_values() {
        // (nil → A, a) then (A=a → B, b1) and (A=a → B, b2): conflict.
        let schema = ab_schema(Domain::string(), Domain::string());
        let rel = schema.rel_id("r").unwrap();
        let force_a =
            NormalCfd::parse(&schema, "r", &[], prow![], "a", PValue::constant("a")).unwrap();
        let b1 = NormalCfd::parse(
            &schema,
            "r",
            &["a"],
            prow!["a"],
            "b",
            PValue::constant("b1"),
        )
        .unwrap();
        let b2 = NormalCfd::parse(
            &schema,
            "r",
            &["a"],
            prow!["a"],
            "b",
            PValue::constant("b2"),
        )
        .unwrap();
        assert!(!consistent_infinite(
            &schema,
            rel,
            &[force_a.clone(), b1.clone(), b2.clone()]
        ));
        // Without the forcing CFD the premises never fire: consistent.
        assert!(consistent_infinite(&schema, rel, &[b1, b2]));
    }

    #[test]
    fn wildcard_rhs_never_blocks_a_single_tuple() {
        let schema = ab_schema(Domain::string(), Domain::string());
        let rel = schema.rel_id("r").unwrap();
        let fd = NormalCfd::parse(&schema, "r", &["a"], prow![_], "b", PValue::Any).unwrap();
        assert!(consistent_infinite(&schema, rel, &[fd]));
    }

    #[test]
    fn finite_enumeration_finds_the_one_good_value() {
        // dom(A) = {0,1,2}; A=0 and A=1 both force conflicts; A=2 is free.
        let schema = ab_schema(Domain::finite_ints(3), Domain::string());
        let rel = schema.rel_id("r").unwrap();
        let mk = |av: i64, b: &str| {
            NormalCfd::parse(
                &schema,
                "r",
                &["a"],
                PatternRow::new([PValue::constant(Value::int(av))]),
                "b",
                PValue::constant(b),
            )
            .unwrap()
        };
        let cfds = vec![mk(0, "x"), mk(0, "y"), mk(1, "u"), mk(1, "v")];
        assert_eq!(
            consistent_exact(&schema, rel, &cfds, None),
            Verdict::Consistent
        );
        let w = witness_tuple(&schema, rel, &cfds, None).unwrap();
        assert_eq!(w[AttrId(0)], Value::int(2));
    }

    #[test]
    fn budget_exhaustion_reports_unknown() {
        let (schema, cfds) = fixtures::example_3_2();
        let rel = schema.rel_id("r").unwrap();
        // One assignment tried out of two: not enough to conclude.
        assert_eq!(
            consistent_exact(&schema, rel, &cfds, Some(1)),
            Verdict::Unknown
        );
    }

    #[test]
    fn empty_set_is_consistent_everywhere() {
        let (schema, _) = fixtures::example_3_2();
        let rel = schema.rel_id("r").unwrap();
        assert_eq!(
            consistent_exact(&schema, rel, &[], None),
            Verdict::Consistent
        );
        assert_eq!(
            set_consistent_exact(&schema, &[], None),
            Verdict::Consistent
        );
    }

    #[test]
    fn set_consistency_needs_only_one_relation() {
        // Two relations; CFDs inconsistent on r but absent on s → the set
        // is consistent (s can be nonempty, r empty).
        let schema = Arc::new(
            Schema::builder()
                .relation("r", &[("a", Domain::boolean()), ("b", Domain::string())])
                .relation("s", &[("c", Domain::string())])
                .finish(),
        );
        let (_, cfds32) = fixtures::example_3_2();
        // Re-target the Example 3.2 CFDs onto this schema's `r` (same
        // attribute layout).
        let cfds: Vec<NormalCfd> = cfds32
            .iter()
            .map(|c| {
                NormalCfd::new(
                    schema.rel_id("r").unwrap(),
                    c.lhs().to_vec(),
                    c.lhs_pat().clone(),
                    c.rhs(),
                    c.rhs_pat().clone(),
                )
            })
            .collect();
        let r = schema.rel_id("r").unwrap();
        assert_eq!(
            consistent_exact(&schema, r, &cfds, None),
            Verdict::Inconsistent
        );
        assert_eq!(
            set_consistent_exact(&schema, &cfds, None),
            Verdict::Consistent
        );
    }

    #[test]
    fn witness_satisfies_random_style_mix() {
        let schema = ab_schema(Domain::boolean(), Domain::string());
        let rel = schema.rel_id("r").unwrap();
        let cfds = vec![
            NormalCfd::parse(
                &schema,
                "r",
                &["a"],
                PatternRow::new([PValue::constant(Value::bool(true))]),
                "b",
                PValue::constant("yes"),
            )
            .unwrap(),
            NormalCfd::parse(
                &schema,
                "r",
                &["b"],
                prow!["yes"],
                "a",
                PValue::constant(Value::bool(true)),
            )
            .unwrap(),
        ];
        let w = witness_tuple(&schema, rel, &cfds, None).unwrap();
        let mut db = Database::empty(schema.clone());
        db.insert(rel, w).unwrap();
        assert!(satisfies_all(&db, &cfds));
    }
}
