//! Satisfaction checking for CFDs.
//!
//! `D |= φ` iff for each pair of tuples `t1, t2` (not necessarily
//! distinct) and each pattern row `tp`: if `t1[X] = t2[X] ≍ tp[X]` then
//! `t1[Y] = t2[Y] ≍ tp[Y]` (paper, Section 4). Taking `t1 = t2` yields
//! the single-tuple reading: any tuple matching `tp[X]` must also match
//! `tp[Y]` on constant RHS cells.

use crate::normalize::normalize;
use crate::syntax::{Cfd, NormalCfd};
use condep_model::{Database, PValue, Value};
use condep_query::HashIndex;

/// Does `db` satisfy the normal-form CFD?
///
/// Group-by implementation: tuples matching `tp[X]` are grouped on their
/// `X` projection; within a group, a wildcard RHS demands a single `A`
/// value, and a constant RHS demands that exact value — `O(|I|)` with
/// hashing.
pub fn satisfies_normal(db: &Database, cfd: &NormalCfd) -> bool {
    let rel = db.relation(cfd.rel());
    let idx = HashIndex::build_filtered(rel, cfd.lhs(), |t| {
        cfd.lhs_pat().matches_tuple(t, cfd.lhs())
    });
    for (_, group) in idx.groups() {
        let mut first: Option<&Value> = None;
        for &pos in group {
            let t = rel.get(pos).expect("indexed position valid");
            let a_val = &t[cfd.rhs()];
            match cfd.rhs_pat() {
                PValue::Const(c) => {
                    if a_val != c {
                        return false;
                    }
                }
                PValue::Any => match first {
                    None => first = Some(a_val),
                    Some(prev) => {
                        if prev != a_val {
                            return false;
                        }
                    }
                },
            }
        }
    }
    true
}

/// Does `db` satisfy the (general-form) CFD?
pub fn satisfies(db: &Database, cfd: &Cfd) -> bool {
    normalize(cfd).iter().all(|n| satisfies_normal(db, n))
}

/// Does `db` satisfy every CFD in `set`?
///
/// Batched: the set is grouped by `(relation, LHS attribute set)` and
/// every group shares **one** group-by index, against which all member
/// pattern rows are evaluated per key-group — `g` index builds for `g`
/// distinct LHS sets instead of one per CFD. (The full engine with
/// interned keys, parallel sweep and violation reporting lives in
/// `condep-validate`; this in-crate version keeps set-level checks fast
/// for every caller without a dependency cycle.)
pub fn satisfies_all<'a, I>(db: &Database, set: I) -> bool
where
    I: IntoIterator<Item = &'a NormalCfd>,
{
    use condep_model::AttrId;
    use std::collections::HashMap;

    // Canonicalize each CFD against its sorted LHS list so permuted
    // lists share a group; remember the permuted pattern cells.
    type Member<'a> = (&'a NormalCfd, Vec<Option<&'a Value>>, AttrId, &'a PValue);
    let mut groups: HashMap<
        (condep_model::RelId, Vec<AttrId>),
        Vec<Member<'a>>,
        condep_model::FxBuildHasher,
    > = HashMap::default();
    for cfd in set {
        let (attrs, pattern) = cfd.canonical_lhs();
        groups.entry((cfd.rel(), attrs)).or_default().push((
            cfd,
            pattern,
            cfd.rhs(),
            cfd.rhs_pat(),
        ));
    }

    for ((rel, attrs), members) in &groups {
        let inst = db.relation(*rel);
        if inst.is_empty() {
            continue;
        }
        // A lone constant-selective member doesn't amortize a full
        // index; the classic pattern-filtered single-CFD check indexes
        // only matching tuples.
        if members.len() == 1 && members[0].1.iter().any(Option::is_some) {
            if !satisfies_normal(db, members[0].0) {
                return false;
            }
            continue;
        }
        let idx = HashIndex::build(inst, attrs);
        for (key, group) in idx.groups() {
            for (_, pattern, rhs, rhs_pat) in members {
                let matches = pattern
                    .iter()
                    .zip(key.iter())
                    .all(|(p, k)| p.is_none_or(|p| p == k));
                if !matches {
                    continue;
                }
                let mut first: Option<&Value> = None;
                for &pos in group {
                    let t = inst.get(pos).expect("indexed position valid");
                    let a_val = &t[*rhs];
                    match rhs_pat {
                        PValue::Const(c) => {
                            if a_val != c {
                                return false;
                            }
                        }
                        PValue::Any => match first {
                            None => first = Some(a_val),
                            Some(prev) => {
                                if prev != a_val {
                                    return false;
                                }
                            }
                        },
                    }
                }
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;
    use condep_model::fixtures::{bank_database, clean_bank_database};
    use condep_model::{prow, tuple, Database, Domain, PValue, Schema};
    use std::sync::Arc;

    #[test]
    fn figure_1_satisfies_traditional_fds() {
        // "the instance of Fig. 1 satisfies standard FDs fd1-fd3" (Ex 4.1).
        let db = bank_database();
        for fd in [fixtures::fd1(), fixtures::fd2(), fixtures::fd3()] {
            assert!(satisfies(&db, &fd), "Fig 1 must satisfy {:?}", fd);
        }
    }

    #[test]
    fn figure_1_satisfies_phi1_phi2_but_not_phi3() {
        // "it satisfies ϕ1 and ϕ2, it does not satisfy ϕ3" (Ex 4.1).
        let db = bank_database();
        assert!(satisfies(&db, &fixtures::phi1()));
        assert!(satisfies(&db, &fixtures::phi2()));
        assert!(!satisfies(&db, &fixtures::phi3()));
    }

    #[test]
    fn clean_instance_satisfies_phi3() {
        let db = clean_bank_database();
        assert!(satisfies(&db, &fixtures::phi3()));
    }

    #[test]
    fn single_tuple_violation_of_constant_rhs() {
        // A single tuple violates a constant-RHS CFD (Ex 4.1's remark).
        let schema = Arc::new(
            Schema::builder()
                .relation("r", &[("a", Domain::string()), ("b", Domain::string())])
                .finish(),
        );
        let mut db = Database::empty(schema.clone());
        db.insert_into("r", tuple!["x", "wrong"]).unwrap();
        let cfd = NormalCfd::parse(
            &schema,
            "r",
            &["a"],
            prow!["x"],
            "b",
            PValue::constant("right"),
        )
        .unwrap();
        assert!(!satisfies_normal(&db, &cfd));
        // A non-matching tuple does not violate.
        let mut db2 = Database::empty(schema.clone());
        db2.insert_into("r", tuple!["y", "wrong"]).unwrap();
        assert!(satisfies_normal(&db2, &cfd));
    }

    #[test]
    fn pair_violation_of_wildcard_rhs() {
        let schema = Arc::new(
            Schema::builder()
                .relation("r", &[("a", Domain::string()), ("b", Domain::string())])
                .finish(),
        );
        let cfd = NormalCfd::parse(&schema, "r", &["a"], prow![_], "b", PValue::Any).unwrap();
        let mut db = Database::empty(schema.clone());
        db.insert_into("r", tuple!["k", "v1"]).unwrap();
        assert!(satisfies_normal(&db, &cfd));
        db.insert_into("r", tuple!["k", "v2"]).unwrap();
        assert!(!satisfies_normal(&db, &cfd));
        // Distinct keys are fine.
        let mut db2 = Database::empty(schema);
        db2.insert_into("r", tuple!["k1", "v1"]).unwrap();
        db2.insert_into("r", tuple!["k2", "v2"]).unwrap();
        assert!(satisfies_normal(&db2, &cfd));
    }

    #[test]
    fn empty_database_satisfies_everything() {
        let db = Database::empty(bank_database().schema().clone());
        for cfd in [fixtures::phi1(), fixtures::phi2(), fixtures::phi3()] {
            assert!(satisfies(&db, &cfd));
        }
    }

    #[test]
    fn batched_satisfies_all_agrees_with_per_cfd_checks() {
        use crate::normalize::normalize_all;
        let db = bank_database();
        let clean_set = normalize_all(&[fixtures::phi1(), fixtures::phi2()]);
        assert_eq!(
            satisfies_all(&db, &clean_set),
            clean_set.iter().all(|n| satisfies_normal(&db, n))
        );
        assert!(satisfies_all(&db, &clean_set));
        let full_set = normalize_all(&[fixtures::phi1(), fixtures::phi2(), fixtures::phi3()]);
        assert_eq!(
            satisfies_all(&db, &full_set),
            full_set.iter().all(|n| satisfies_normal(&db, n))
        );
        assert!(!satisfies_all(&db, &full_set));
        // Empty set and empty database are vacuously satisfied.
        assert!(satisfies_all(&db, &[]));
        let empty = Database::empty(db.schema().clone());
        assert!(satisfies_all(&empty, &full_set));
    }

    #[test]
    fn empty_lhs_cfd_forces_global_agreement() {
        // X = nil: every tuple is in one group; wildcard RHS forces a
        // single value for A relation-wide.
        let schema = Arc::new(
            Schema::builder()
                .relation("r", &[("a", Domain::string())])
                .finish(),
        );
        let cfd = NormalCfd::parse(&schema, "r", &[], prow![], "a", PValue::Any).unwrap();
        let mut db = Database::empty(schema);
        db.insert_into("r", tuple!["v"]).unwrap();
        assert!(satisfies_normal(&db, &cfd));
        db.insert_into("r", tuple!["w"]).unwrap();
        assert!(!satisfies_normal(&db, &cfd));
    }
}
