//! Violation detection for CFDs.
//!
//! Beyond the boolean check of [`crate::satisfy`], data cleaning needs
//! the offending tuples themselves (paper, Examples 1.2 and 4.1 — tuple
//! `t12` is the culprit). Two detector implementations are provided:
//!
//! * [`find_violations`] — direct group-by detection, returning every
//!   violation with its witnesses;
//! * [`violation_plans`] — compiles a normal CFD to two [`Plan`]s in the
//!   spirit of the SQL technique of the companion CFD paper: one
//!   selection query for single-tuple violations and one self-join query
//!   for pair violations.

use crate::syntax::NormalCfd;
use condep_model::{AttrId, Database, PValue, Value};
use condep_query::{Plan, Predicate};

/// A single CFD violation with its witnessing tuple positions.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum CfdViolation {
    /// One tuple matches `tp[X]` but its `A` value differs from the
    /// constant `tp[A]`.
    SingleTuple {
        /// Dense position of the offending tuple in its relation.
        tuple: usize,
        /// The value found.
        found: Value,
        /// The constant the pattern demands.
        expected: Value,
    },
    /// Two tuples agree on `X` (matching `tp[X]`) but disagree on `A`.
    Pair {
        /// Position of the first witness.
        left: usize,
        /// Position of the second witness.
        right: usize,
    },
}

impl CfdViolation {
    /// The canonical report-order key: single-tuple violations by
    /// position first, then pairs by witness positions. Every sorted
    /// surface (per-CFD detectors, `SigmaReport`, tests) orders through
    /// this one definition.
    pub fn sort_key(&self) -> (usize, usize, usize) {
        match self {
            CfdViolation::SingleTuple { tuple, .. } => (0, *tuple, 0),
            CfdViolation::Pair { left, right } => (1, *left, *right),
        }
    }

    /// The witnessing tuple positions.
    pub fn positions(&self) -> Vec<usize> {
        match self {
            CfdViolation::SingleTuple { tuple, .. } => vec![*tuple],
            CfdViolation::Pair { left, right } => vec![*left, *right],
        }
    }

    /// The **conflicting cells** of the violation, as `(position, attr)`
    /// pairs — the cells a repair tool may edit to resolve it. For a CFD
    /// the witnessing disagreement always lives in the RHS attribute
    /// `rhs` of the violating tuples; LHS cells are the class key, not
    /// the conflict.
    pub fn cells(&self, rhs: AttrId) -> Vec<(usize, AttrId)> {
        match self {
            CfdViolation::SingleTuple { tuple, .. } => vec![(*tuple, rhs)],
            CfdViolation::Pair { left, right } => vec![(*left, rhs), (*right, rhs)],
        }
    }
}

/// What one database mutation (insert / delete / update) did to the CFD
/// violations of a compiled suite, as `(constraint index, violation)`
/// pairs.
///
/// Produced by delta engines (`condep-validate`'s `ValidatorStream`) and
/// consumed by anything maintaining a materialized violation state — a
/// streamed quality monitor subtracts `resolved` and adds `introduced`
/// instead of re-validating the database.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CfdDelta {
    /// Violations the mutation created (post-mutation tuple positions).
    pub introduced: Vec<(usize, CfdViolation)>,
    /// Violations the mutation removed (pre-mutation tuple positions).
    pub resolved: Vec<(usize, CfdViolation)>,
}

impl CfdDelta {
    /// Did the mutation change the violation set at all?
    pub fn is_quiet(&self) -> bool {
        self.introduced.is_empty() && self.resolved.is_empty()
    }
}

/// Finds all violations of a normal-form CFD in `db`, sorted into the
/// deterministic report order (single-tuple violations by position, then
/// pairs by witness positions).
///
/// This is [`find_violations_unordered`] plus a sort — reports and tests
/// want the stable order; hot paths that only aggregate or count should
/// call the unordered variant and skip the `O(v log v)`.
pub fn find_violations(db: &Database, cfd: &NormalCfd) -> Vec<CfdViolation> {
    let mut out = find_violations_unordered(db, cfd);
    out.sort_by_key(CfdViolation::sort_key);
    out
}

/// Finds all violations of a normal-form CFD in `db`, in group-by
/// discovery order (deterministic, but not the report order).
///
/// For wildcard-RHS CFDs, pairs are reported per group against the first
/// tuple carrying each distinct conflicting value (reporting all `k·(k-1)/2`
/// pairs in a group would be quadratic noise; one witness per conflicting
/// tuple is what a repair tool needs).
pub fn find_violations_unordered(db: &Database, cfd: &NormalCfd) -> Vec<CfdViolation> {
    let rel = db.relation(cfd.rel());
    let idx = condep_query::HashIndex::build_filtered(rel, cfd.lhs(), |t| {
        cfd.lhs_pat().matches_tuple(t, cfd.lhs())
    });
    let mut out = Vec::new();
    for (_, group) in idx.groups() {
        match cfd.rhs_pat() {
            PValue::Const(expected) => {
                for &pos in group {
                    let t = rel.get(pos).expect("indexed position valid");
                    let found = &t[cfd.rhs()];
                    if found != expected {
                        out.push(CfdViolation::SingleTuple {
                            tuple: pos,
                            found: found.clone(),
                            expected: expected.clone(),
                        });
                    }
                }
            }
            PValue::Any => {
                let mut first_pos: Option<(usize, &Value)> = None;
                for &pos in group {
                    let t = rel.get(pos).expect("indexed position valid");
                    let v = &t[cfd.rhs()];
                    match first_pos {
                        None => first_pos = Some((pos, v)),
                        Some((fp, fv)) => {
                            if fv != v {
                                out.push(CfdViolation::Pair {
                                    left: fp,
                                    right: pos,
                                });
                            }
                        }
                    }
                }
            }
        }
    }
    out
}

/// Compiles a normal CFD into `(single_tuple_plan, pair_plan)` — the
/// SQL-style violation queries.
///
/// * `single_tuple_plan` (only for constant-RHS CFDs, otherwise a plan
///   returning nothing): `σ_{X ≍ tp[X] ∧ A ≠ a}(R)`.
/// * `pair_plan`: `σ_{A_left ≠ A_right}(σ_{X ≍ tp[X]}(R) ⋈_{X=X} σ_{X ≍ tp[X]}(R))`
///   (only meaningful for wildcard-RHS CFDs; constant-RHS pair conflicts
///   are subsumed by single-tuple violations).
pub fn violation_plans(cfd: &NormalCfd, rel_arity: usize) -> (Plan, Plan) {
    let match_x = Predicate::matches(cfd.lhs().to_vec(), cfd.lhs_pat().clone());
    let single = match cfd.rhs_pat() {
        PValue::Const(a) => Plan::scan(cfd.rel()).filter(Predicate::and([
            match_x.clone(),
            Predicate::AttrNe(cfd.rhs(), a.clone()),
        ])),
        PValue::Any => Plan::scan(cfd.rel()).filter(Predicate::False),
    };
    let pair = match cfd.rhs_pat() {
        PValue::Any => {
            let left = Plan::scan(cfd.rel()).filter(match_x.clone());
            let right = Plan::scan(cfd.rel()).filter(match_x);
            let rhs_right = AttrId((cfd.rhs().index() + rel_arity) as u32);
            left.join(right, cfd.lhs().to_vec(), cfd.lhs().to_vec())
                .filter(Predicate::Not(Box::new(Predicate::AttrsEq(
                    cfd.rhs(),
                    rhs_right,
                ))))
        }
        PValue::Const(_) => Plan::scan(cfd.rel()).filter(Predicate::False),
    };
    (single, pair)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;
    use crate::normalize::normalize;
    use condep_model::fixtures::bank_database;
    use condep_model::tuple;

    #[test]
    fn t12_is_the_only_phi3_violation() {
        // Example 4.1: tuple t12 violates the (UK, checking || 1.5%) row.
        let db = bank_database();
        let normal = normalize(&fixtures::phi3());
        let mut all = Vec::new();
        for n in &normal {
            all.extend(find_violations(&db, n));
        }
        assert_eq!(all.len(), 1);
        match &all[0] {
            CfdViolation::SingleTuple {
                tuple,
                found,
                expected,
            } => {
                let interest = db.schema().rel_id("interest").unwrap();
                let t = db.relation(interest).get(*tuple).unwrap();
                assert_eq!(t, &tuple!["EDI", "UK", "checking", "10.5%"]);
                assert_eq!(found, &Value::str("10.5%"));
                assert_eq!(expected, &Value::str("1.5%"));
            }
            other => panic!("expected single-tuple violation, got {other:?}"),
        }
    }

    #[test]
    fn plans_agree_with_direct_detector_on_singles() {
        let db = bank_database();
        let interest_arity = 4;
        let normal = normalize(&fixtures::phi3());
        for n in &normal {
            let (single, _) = violation_plans(n, interest_arity);
            let rows = single.execute(&db);
            let direct = find_violations(&db, n);
            let direct_singles = direct
                .iter()
                .filter(|v| matches!(v, CfdViolation::SingleTuple { .. }))
                .count();
            assert_eq!(rows.len(), direct_singles);
        }
    }

    #[test]
    fn pair_plan_finds_fd_conflicts() {
        use condep_model::{prow, Database, Domain, PValue, Schema};
        use std::sync::Arc;
        let schema = Arc::new(
            Schema::builder()
                .relation("r", &[("a", Domain::string()), ("b", Domain::string())])
                .finish(),
        );
        let n = NormalCfd::parse(&schema, "r", &["a"], prow![_], "b", PValue::Any).unwrap();
        let mut db = Database::empty(schema);
        db.insert_into("r", tuple!["k", "v1"]).unwrap();
        db.insert_into("r", tuple!["k", "v2"]).unwrap();
        db.insert_into("r", tuple!["j", "v1"]).unwrap();
        let (_, pair) = violation_plans(&n, 2);
        let rows = pair.execute(&db);
        // (t0,t1) and (t1,t0) both qualify in the symmetric self-join.
        assert_eq!(rows.len(), 2);
        let direct = find_violations(&db, &n);
        assert_eq!(direct, vec![CfdViolation::Pair { left: 0, right: 1 }]);
    }

    #[test]
    fn unordered_detector_finds_the_same_set() {
        let db = bank_database();
        for cfd in [fixtures::phi1(), fixtures::phi2(), fixtures::phi3()] {
            for n in normalize(&cfd) {
                let mut unordered = find_violations_unordered(&db, &n);
                unordered.sort_by_key(CfdViolation::sort_key);
                assert_eq!(unordered, find_violations(&db, &n));
            }
        }
    }

    #[test]
    fn cells_and_positions_name_the_rhs_witnesses() {
        let rhs = AttrId(3);
        let single = CfdViolation::SingleTuple {
            tuple: 7,
            found: Value::str("x"),
            expected: Value::str("y"),
        };
        assert_eq!(single.positions(), vec![7]);
        assert_eq!(single.cells(rhs), vec![(7, rhs)]);
        let pair = CfdViolation::Pair { left: 2, right: 9 };
        assert_eq!(pair.positions(), vec![2, 9]);
        assert_eq!(pair.cells(rhs), vec![(2, rhs), (9, rhs)]);
    }

    #[test]
    fn no_violations_on_satisfying_instance() {
        let db = condep_model::fixtures::clean_bank_database();
        for cfd in [fixtures::phi1(), fixtures::phi2(), fixtures::phi3()] {
            for n in normalize(&cfd) {
                assert!(find_violations(&db, &n).is_empty());
            }
        }
    }
}
