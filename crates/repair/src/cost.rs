//! The repair cost model.

use condep_model::fxhash::FxBuildHasher;
use condep_model::{AttrId, RelId};
use std::collections::HashMap;

/// Weights the repair engine minimizes (greedily — see the crate docs
/// for why not optimally): one weight per cell edit (overridable per
/// attribute), one per tuple deletion, one per tuple insertion.
///
/// The default instance is **uniform** (every weight `1.0`). Under
/// uniform weights the engine's deterministic tie-breaking prefers the
/// least destructive fix: a cell edit over a tuple deletion, and an
/// insertion over a deletion — repairs keep data unless the deltas prove
/// an edit cannot help.
///
/// The per-attribute override models the classic cost-based cleaning
/// setting where some columns are trusted (expensive to touch — raise
/// their weight) and others are known noisy (cheap to touch).
#[derive(Clone, Debug)]
pub struct RepairCost {
    /// Base weight of editing one cell.
    pub cell_edit: f64,
    /// Weight of deleting a whole tuple.
    pub tuple_delete: f64,
    /// Weight of inserting a new tuple.
    pub tuple_insert: f64,
    /// Per-attribute edit-weight overrides (replace `cell_edit`).
    pub attr_weights: HashMap<(RelId, AttrId), f64, FxBuildHasher>,
}

impl Default for RepairCost {
    fn default() -> Self {
        RepairCost::uniform()
    }
}

impl RepairCost {
    /// The uniform instance: every repair action costs `1.0`.
    pub fn uniform() -> Self {
        RepairCost {
            cell_edit: 1.0,
            tuple_delete: 1.0,
            tuple_insert: 1.0,
            attr_weights: HashMap::default(),
        }
    }

    /// Builder-style per-attribute edit-weight override.
    pub fn with_attr_weight(mut self, rel: RelId, attr: AttrId, weight: f64) -> Self {
        self.attr_weights.insert((rel, attr), weight);
        self
    }

    /// The cost of editing cell `(rel, attr)` of one tuple.
    pub fn edit_cost(&self, rel: RelId, attr: AttrId) -> f64 {
        self.attr_weights
            .get(&(rel, attr))
            .copied()
            .unwrap_or(self.cell_edit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_defaults_and_overrides() {
        let c = RepairCost::default();
        assert_eq!(c.edit_cost(RelId(0), AttrId(1)), 1.0);
        assert_eq!(c.tuple_delete, 1.0);
        assert_eq!(c.tuple_insert, 1.0);
        let c = c.with_attr_weight(RelId(0), AttrId(1), 7.5);
        assert_eq!(c.edit_cost(RelId(0), AttrId(1)), 7.5);
        assert_eq!(c.edit_cost(RelId(0), AttrId(2)), 1.0);
    }
}
