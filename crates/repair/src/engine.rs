//! The greedy, delta-verified repair loop.

use crate::cost::RepairCost;
use crate::log::{AppliedFix, Fix, Motive, RepairLog, RepairReport};
use condep_cfd::CfdViolation;
use condep_chase::ops::forced_target_template;
use condep_chase::TplValue;
use condep_model::fxhash::FxBuildHasher;
use condep_model::{AttrId, BaseType, Database, RelId, Tuple, Value};
use condep_telemetry::{Registry, SpanTimer};
use condep_validate::{
    Mutation, SigmaLint, SigmaReport, SigmaVerdict, UnsatSigma, Validator, ValidatorStream,
};
use std::collections::{BTreeMap, HashMap};

/// Termination bounds of the fixpoint loop.
///
/// Termination never actually rides on these: every *kept* fix is
/// strictly net-negative, so the outstanding violation count decreases
/// monotonically and the loop reaches a fixpoint in at most
/// `initial_violations` rounds. The budget bounds the tail — cascades of
/// plan/reject/replan rounds on pathological (e.g. inconsistent) Σ —
/// and caps the audit log's size.
#[derive(Clone, Copy, Debug)]
pub struct RepairBudget {
    /// Maximum fixpoint rounds (the cascade budget).
    pub max_rounds: usize,
    /// Maximum fixes kept across the whole run.
    pub max_fixes: usize,
}

impl Default for RepairBudget {
    fn default() -> Self {
        RepairBudget {
            max_rounds: 32,
            max_fixes: usize::MAX,
        }
    }
}

/// Union-find with path halving over dense cell ids.
struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new() -> Self {
        UnionFind { parent: Vec::new() }
    }

    fn make(&mut self) -> usize {
        self.parent.push(self.parent.len());
        self.parent.len() - 1
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            // Lower root wins: keeps component representatives (and with
            // them the plan order) deterministic.
            let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
            self.parent[hi] = lo;
        }
    }
}

/// One planned fix: the candidates for one conflict, cheapest first.
struct Planned {
    motive: Motive,
    /// `(cost, fix)` candidates in preference order.
    candidates: Vec<(f64, Fix)>,
}

impl Fix {
    /// The value-level mutation that applies this fix.
    fn mutation(&self) -> Mutation {
        match self {
            Fix::EditCells { rel, old, new, .. } => Mutation::Update {
                rel: *rel,
                old: old.clone(),
                new: new.clone(),
            },
            Fix::DeleteTuple { rel, tuple } => Mutation::Delete {
                rel: *rel,
                tuple: tuple.clone(),
            },
            Fix::InsertTuple { rel, tuple } => Mutation::Insert {
                rel: *rel,
                tuple: tuple.clone(),
            },
        }
    }
}

/// Repairs `db` against the compiled suite: greedy equivalence-class
/// resolution for CFD violations, insert-or-delete for CIND orphans,
/// every candidate verified through the delta engine (kept only when its
/// [`condep_validate::SigmaDelta`]s are strictly net-negative, rolled
/// back otherwise), iterated to fixpoint under `budget`.
///
/// `initial` is the violation report of `db` (as produced by
/// [`Validator::validate_sorted`] or a prior monitoring stream); it
/// seeds the engine's delta stream directly — no re-validation sweep —
/// and is cross-checked against the database in debug builds.
///
/// **Pre-flight gate:** Σ is statically analyzed first and a *proven*
/// unsatisfiable Σ is refused with [`UnsatSigma`] naming a minimal
/// conflicting core — repairing toward a Σ no nonempty database can
/// satisfy would only chase contradictory majorities around the budget.
/// `Unknown` verdicts (possible with CINDs) are admitted.
///
/// Returns the repaired database together with the auditable
/// [`RepairReport`].
pub fn repair(
    validator: Validator,
    db: Database,
    initial: SigmaReport,
    cost: &RepairCost,
    budget: &RepairBudget,
) -> Result<(Database, RepairReport), UnsatSigma> {
    if let SigmaVerdict::Unsat(core) = validator.analysis(db.schema()).verdict {
        return Err(UnsatSigma { core: core.cfds });
    }
    let mut initial = initial;
    initial.sort();
    let initial_violations = initial.len();
    // The caller already validated: seed the stream from the provided
    // report instead of paying a second batch sweep (`with_report`
    // cross-checks it against the database in debug builds).
    let mut stream = ValidatorStream::with_report(validator, db, initial);
    let mut log = RepairLog::default();
    let mut budget_exhausted = false;
    let mut fill_serial = 0u64;
    // Run-local instrumentation: the round-latency distribution plus
    // accept/reject/stale counters, returned on the report
    // (`RepairReport::metrics`) next to the stream's own telemetry.
    let registry = Registry::new();
    let round_us = registry.histogram("repair.round_us");
    let accepted_fixes = registry.counter("repair.fixes.accepted");
    let rejected_fixes = registry.counter("repair.fixes.rejected");
    let stale_fixes = registry.counter("repair.fixes.stale");

    'rounds: loop {
        let report = stream.current_report();
        if report.is_empty() {
            break;
        }
        if log.rounds >= budget.max_rounds {
            budget_exhausted = true;
            break;
        }
        log.rounds += 1;
        // Dropped at the end of the iteration (including the `break
        // 'rounds` path), recording the round's wall time.
        let _round_span = SpanTimer::start(&round_us);
        let plan = plan_round(&stream, &report, cost, &mut fill_serial);
        if plan.is_empty() {
            break;
        }
        let mut progressed = false;
        for planned in plan {
            if log.applied.len() >= budget.max_fixes {
                budget_exhausted = true;
                break 'rounds;
            }
            for (fix_cost, fix) in planned.candidates {
                let applied = match stream.apply(fix.mutation()) {
                    Ok(applied) => applied,
                    Err(_) => {
                        // Ill-typed candidate (e.g. a forced constant
                        // outside the attribute's domain): skip it.
                        log.rejected += 1;
                        rejected_fixes.incr();
                        continue;
                    }
                };
                if applied.is_noop() {
                    // An earlier fix already removed or rewrote the
                    // target tuple; the whole conflict is replanned next
                    // round.
                    log.stale += 1;
                    stale_fixes.incr();
                    break;
                }
                if applied.net_change() < 0 {
                    // The retired id is the pre-fix tuple an edit or
                    // delete acted on; an insert only has a born id.
                    let target = applied
                        .deltas
                        .first()
                        .and_then(|d| d.ids.retired.or(d.ids.born));
                    log.applied.push(AppliedFix {
                        resolved: applied.resolved_count(),
                        introduced: applied.introduced_count(),
                        cost: fix_cost,
                        motive: planned.motive,
                        fix,
                        target,
                    });
                    accepted_fixes.incr();
                    progressed = true;
                    break;
                }
                // The deltas prove the fix does not pay for itself:
                // retract it and try the next candidate.
                let revert = applied.revert.expect("non-noop mutation has a revert");
                stream
                    .revert(revert)
                    .expect("revert of a just-applied mutation cannot fail");
                log.rejected += 1;
                rejected_fixes.incr();
            }
        }
        if !progressed {
            break;
        }
    }

    let residual = stream.current_report();
    let lints = suspect_majority_lints(&stream, &log);
    let mut cells_edited = 0;
    let mut tuples_deleted = 0;
    let mut tuples_inserted = 0;
    let mut total_cost = 0.0;
    for a in &log.applied {
        total_cost += a.cost;
        match &a.fix {
            Fix::EditCells { attrs, .. } => cells_edited += attrs.len(),
            Fix::DeleteTuple { .. } => tuples_deleted += 1,
            Fix::InsertTuple { .. } => tuples_inserted += 1,
        }
    }
    // The summary values are re-set from the log so the key set (minus
    // the histograms) is identical whether the `telemetry` feature is
    // on or off; with it on they overwrite the registry's counters with
    // the same values.
    let mut metrics = registry.snapshot();
    metrics.counter("repair.rounds", log.rounds as u64);
    metrics.counter("repair.fixes.accepted", log.applied.len() as u64);
    metrics.counter("repair.fixes.rejected", log.rejected as u64);
    metrics.counter("repair.fixes.stale", log.stale as u64);
    metrics.counter("repair.violations.initial", initial_violations as u64);
    metrics.counter("repair.violations.residual", residual.len() as u64);
    metrics.counter("repair.cells_edited", cells_edited as u64);
    metrics.counter("repair.tuples_deleted", tuples_deleted as u64);
    metrics.counter("repair.tuples_inserted", tuples_inserted as u64);
    metrics.float("repair.total_cost", total_cost);
    metrics.counter("repair.lints.suspect_majority", lints.len() as u64);
    metrics.merge("", &stream.telemetry().snapshot());
    Ok((
        stream.into_db(),
        RepairReport {
            log,
            initial_violations,
            residual,
            cells_edited,
            tuples_deleted,
            tuples_inserted,
            total_cost,
            budget_exhausted,
            metrics,
            lints,
        },
    ))
}

/// Post-hoc blind-spot detection over the accepted audit log: group
/// every kept CFD-motivated single-cell edit by `(relation, attribute,
/// motive CFD's LHS key in the pre-edit tuple, new value)`. When a
/// whole class of cells (3+) was rewritten toward one value, the
/// "majority" that won may itself have been coordinated dirt outvoting
/// the clean data — exactly what the adversarial
/// `count_majority_flips` scoring measures against ground truth, but
/// detectable without it. Advisory only: repair behavior is unchanged.
fn suspect_majority_lints(stream: &ValidatorStream, log: &RepairLog) -> Vec<SigmaLint> {
    let cfds = stream.validator().cfds();
    let mut classes: BTreeMap<(RelId, AttrId, Vec<Value>, Value), usize> = BTreeMap::new();
    for a in &log.applied {
        let Motive::Cfd(ci) = a.motive else { continue };
        let Fix::EditCells {
            rel,
            old,
            new,
            attrs,
        } = &a.fix
        else {
            continue;
        };
        if attrs.len() != 1 {
            continue;
        }
        let attr = attrs[0];
        let key = old.project(cfds[ci].lhs());
        *classes
            .entry((*rel, attr, key, new[attr].clone()))
            .or_default() += 1;
    }
    classes
        .into_iter()
        .filter(|(_, rewritten)| *rewritten >= 3)
        .map(
            |((rel, attr, _, value), rewritten)| SigmaLint::SuspectMajority {
                rel,
                attr,
                value,
                rewritten,
            },
        )
        .collect()
}

/// Plans one round of fixes against a snapshot of the live state:
/// equivalence classes for the CFD violations (union-find over
/// conflicting cells), insert-or-delete pairs for the CIND orphans.
/// Read-only — application (and the keep-or-roll-back decision) happens
/// in the caller's loop.
fn plan_round(
    stream: &ValidatorStream,
    report: &SigmaReport,
    cost: &RepairCost,
    fill_serial: &mut u64,
) -> Vec<Planned> {
    let validator = stream.validator();
    let db = stream.db();
    let mut plan: Vec<Planned> = Vec::new();

    // ---- CFD phase: union conflicting cells into equivalence classes.
    //
    // A cell is a `(relation, position, attribute)` triple; every
    // violation names its conflicting cells (`CfdViolation::cells`). A
    // single-tuple violation pins its cell to the pattern constant; a
    // pair violation pulls in the whole violation class (all resident
    // tuples agreeing on the LHS key and matching the pattern), since
    // the class must agree as a whole. Classes sharing a cell merge —
    // the cell can only hold one value, so its classes must settle on a
    // common target.
    let mut cell_ids: HashMap<(RelId, usize, AttrId), usize, FxBuildHasher> = HashMap::default();
    let mut cells: Vec<(RelId, usize, AttrId)> = Vec::new();
    // Per cell: the constants forced on it by constant-RHS violations,
    // and the first CFD that named it (the motive).
    let mut forced: Vec<Vec<Value>> = Vec::new();
    let mut motives: Vec<usize> = Vec::new();
    let mut uf = UnionFind::new();
    #[allow(clippy::too_many_arguments)]
    fn intern(
        cell_ids: &mut HashMap<(RelId, usize, AttrId), usize, FxBuildHasher>,
        cells: &mut Vec<(RelId, usize, AttrId)>,
        forced: &mut Vec<Vec<Value>>,
        motives: &mut Vec<usize>,
        uf: &mut UnionFind,
        cell: (RelId, usize, AttrId),
        ci: usize,
    ) -> usize {
        *cell_ids.entry(cell).or_insert_with(|| {
            cells.push(cell);
            forced.push(Vec::new());
            motives.push(ci);
            uf.make()
        })
    }

    for (ci, v) in &report.cfd {
        let cfd = &validator.cfds()[*ci];
        let (rel, rhs) = (cfd.rel(), cfd.rhs());
        // The violation's own conflicting cells anchor the class …
        let mut prev: Option<usize> = None;
        for (pos, attr) in v.cells(rhs) {
            let id = intern(
                &mut cell_ids,
                &mut cells,
                &mut forced,
                &mut motives,
                &mut uf,
                (rel, pos, attr),
                *ci,
            );
            if let Some(p) = prev {
                uf.union(p, id);
            }
            prev = Some(id);
        }
        match v {
            // … a single-tuple violation additionally pins its cell to
            // the pattern constant …
            CfdViolation::SingleTuple { expected, .. } => {
                let id = prev.expect("a violation always names a cell");
                if !forced[id].contains(expected) {
                    forced[id].push(expected.clone());
                }
            }
            // … and a pair violation pulls in its whole violation
            // class, anchored at the witness (its lowest position).
            CfdViolation::Pair { .. } => {
                let witness = db
                    .relation(rel)
                    .get(v.positions()[0])
                    .expect("report positions are live");
                for pos in stream.cfd_violation_class(*ci, witness) {
                    let id = intern(
                        &mut cell_ids,
                        &mut cells,
                        &mut forced,
                        &mut motives,
                        &mut uf,
                        (rel, pos, rhs),
                        *ci,
                    );
                    uf.union(prev.expect("pair cells interned above"), id);
                }
            }
        }
    }

    // Components in deterministic (first-cell) order.
    let mut components: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for id in 0..cells.len() {
        components.entry(uf.find(id)).or_default().push(id);
    }

    for (_, member_ids) in components {
        let (rel, _, attr) = cells[member_ids[0]];
        let motive = Motive::Cfd(motives[member_ids[0]]);
        // The component's current values, in position order (so the
        // group witness — the lowest position — is fixed first; see the
        // engine docs for why that ordering converges fastest).
        let mut by_pos: Vec<(usize, usize)> =
            member_ids.iter().map(|&id| (cells[id].1, id)).collect();
        by_pos.sort_unstable();
        // Target value: a forced constant when any cell is pinned
        // (majority support, then value order, for determinism);
        // otherwise the majority of the current values — the cheapest
        // resolving assignment under per-cell costs.
        let mut tally: HashMap<&Value, usize, FxBuildHasher> = HashMap::default();
        let mut forced_tally: HashMap<&Value, usize, FxBuildHasher> = HashMap::default();
        for &(pos, id) in &by_pos {
            let t = db.relation(rel).get(pos).expect("component cell is live");
            *tally.entry(&t[attr]).or_default() += 1;
            for f in &forced[id] {
                *forced_tally.entry(f).or_default() += 1;
            }
        }
        let pick = |m: &HashMap<&Value, usize, FxBuildHasher>| -> Option<Value> {
            m.iter()
                .map(|(v, n)| (*n, *v))
                .max_by(|(na, va), (nb, vb)| na.cmp(nb).then_with(|| vb.cmp(va)))
                .map(|(_, v)| v.clone())
        };
        let Some(target) = pick(&forced_tally).or_else(|| pick(&tally)) else {
            continue;
        };
        for &(pos, _) in &by_pos {
            let old = db
                .relation(rel)
                .get(pos)
                .expect("component cell is live")
                .clone();
            if old[attr] == target {
                continue;
            }
            let edit = Fix::EditCells {
                rel,
                new: old.with(attr, target.clone()),
                old: old.clone(),
                attrs: vec![attr],
            };
            let delete = Fix::DeleteTuple { rel, tuple: old };
            let mut candidates = vec![
                (cost.edit_cost(rel, attr), edit),
                (cost.tuple_delete, delete),
            ];
            // Stable by cost: edits precede deletions on ties.
            candidates.sort_by(|(a, _), (b, _)| a.partial_cmp(b).expect("finite costs"));
            plan.push(Planned { motive, candidates });
        }
    }

    // ---- CIND phase: each orphan is either given its chased target
    // tuple (pattern instantiation through the chase machinery) or
    // deleted, whichever is cheaper — ties prefer the insertion.
    let schema = db.schema();
    for (ci, v) in &report.cind {
        let cind = &validator.cinds()[*ci];
        let src_rel = cind.lhs_rel();
        let Some(src) = db.relation(src_rel).get(v.tuple) else {
            continue;
        };
        let template = forced_target_template(schema, cind, src);
        let target_rel = cind.rhs_rel();
        let rs = schema
            .relation(target_rel)
            .expect("compiled suite is well-formed");
        let instantiated: Option<Tuple> = template
            .cells()
            .iter()
            .enumerate()
            .map(|(i, cell)| match cell {
                TplValue::Const(v) => Some(v.clone()),
                TplValue::Var(_) => {
                    let dom = rs.attribute(AttrId(i as u32)).ok()?.domain();
                    // Finite domains: any member serves (the delta check
                    // vetoes bad draws). Infinite ones: a serial value
                    // from the reserved `repair-fill` namespace — data
                    // avoiding the namespace cannot collide a filler
                    // into a CFD key group, and a collision anyway only
                    // downgrades this candidate (the delta check rejects
                    // it), never corrupts.
                    *fill_serial += 1;
                    let v = match dom.values() {
                        Some(vs) => vs[0].clone(),
                        None => match dom.base_type() {
                            BaseType::Str => Value::str(format!("repair-fill{fill_serial}")),
                            BaseType::Int => Value::int(0x2000_0000_0000 + *fill_serial as i64),
                            BaseType::Bool => Value::bool(true),
                        },
                    };
                    Some(v)
                }
            })
            .collect();
        let mut candidates: Vec<(f64, Fix)> = Vec::new();
        if let Some(tuple) = instantiated {
            candidates.push((
                cost.tuple_insert,
                Fix::InsertTuple {
                    rel: target_rel,
                    tuple,
                },
            ));
        }
        candidates.push((
            cost.tuple_delete,
            Fix::DeleteTuple {
                rel: src_rel,
                tuple: src.clone(),
            },
        ));
        candidates.sort_by(|(a, _), (b, _)| a.partial_cmp(b).expect("finite costs"));
        plan.push(Planned {
            motive: Motive::Cind(*ci),
            candidates,
        });
    }

    plan
}
