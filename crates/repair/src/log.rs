//! The auditable trail a repair run leaves behind.

use condep_model::{AttrId, RelId, Tuple, TupleId};
use condep_telemetry::MetricsSnapshot;
use condep_validate::{SigmaLint, SigmaReport};
use std::fmt;

/// Which constraint motivated a fix (index into the compiled suite's
/// `cfds()` / `cinds()`).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Motive {
    /// The fix settles an equivalence class of CFD violations.
    Cfd(usize),
    /// The fix resolves a CIND orphan.
    Cind(usize),
}

/// One candidate repair action, expressed at the **value level** (never
/// by dense position) so it stays meaningful across the swap renumbering
/// earlier fixes cause.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Fix {
    /// Replace `old` by `new` (they differ exactly on `attrs`).
    EditCells {
        /// The relation edited in.
        rel: RelId,
        /// The tuple before the edit.
        old: Tuple,
        /// The tuple after the edit.
        new: Tuple,
        /// The edited attributes.
        attrs: Vec<AttrId>,
    },
    /// Delete a tuple outright.
    DeleteTuple {
        /// The relation deleted from.
        rel: RelId,
        /// The deleted tuple.
        tuple: Tuple,
    },
    /// Insert a new tuple (a chased CIND target).
    InsertTuple {
        /// The relation inserted into.
        rel: RelId,
        /// The inserted tuple.
        tuple: Tuple,
    },
}

/// One fix the engine kept, with the delta evidence that justified it.
#[derive(Clone, Debug)]
pub struct AppliedFix {
    /// The action taken.
    pub fix: Fix,
    /// The constraint that motivated it.
    pub motive: Motive,
    /// Its cost under the run's [`crate::RepairCost`].
    pub cost: f64,
    /// Violations the fix's `SigmaDelta`s resolved.
    pub resolved: usize,
    /// Violations the fix's `SigmaDelta`s introduced.
    pub introduced: usize,
    /// The **stable id** of the tuple the fix acted on: the edited /
    /// deleted tuple's id (retired by the mutation), or the id born for
    /// an inserted tuple. Because the repair stream is seeded with the
    /// dense-seeding convention, this links the audit log to external
    /// ground truth (e.g. `condep-gen`'s `InjectedDirt::id`) even after
    /// earlier fixes have swap-renumbered every dense position.
    pub target: Option<TupleId>,
}

impl AppliedFix {
    /// `introduced − resolved`; the engine only keeps fixes where this
    /// is strictly negative, so over a whole log every entry is `< 0`.
    pub fn net_change(&self) -> isize {
        self.introduced as isize - self.resolved as isize
    }
}

/// Everything a repair run did, fix by fix.
#[derive(Clone, Debug, Default)]
pub struct RepairLog {
    /// The fixes kept, in application order.
    pub applied: Vec<AppliedFix>,
    /// Candidate fixes applied, found non-net-negative, and rolled back.
    pub rejected: usize,
    /// Planned fixes skipped because an earlier fix had already removed
    /// or rewritten their target tuple (replanned next round).
    pub stale: usize,
    /// Fixpoint rounds run.
    pub rounds: usize,
}

/// The summary a repair run returns next to the repaired database.
#[derive(Clone, Debug)]
pub struct RepairReport {
    /// The fix-by-fix audit trail.
    pub log: RepairLog,
    /// Violations in the database the run started from.
    pub initial_violations: usize,
    /// Violations that survived the run (empty on a full repair).
    pub residual: SigmaReport,
    /// Cells edited across all kept fixes.
    pub cells_edited: usize,
    /// Tuples deleted across all kept fixes.
    pub tuples_deleted: usize,
    /// Tuples inserted across all kept fixes.
    pub tuples_inserted: usize,
    /// Total cost of the kept fixes.
    pub total_cost: f64,
    /// Did the run stop on the cascade budget rather than at fixpoint?
    pub budget_exhausted: bool,
    /// The run's metrics under `repair.*` (rounds, accept/reject/stale
    /// counts, round-latency histogram, net cost) merged with the delta
    /// stream's own telemetry under `stream.*`. With the `telemetry`
    /// feature off only the summary counters remain.
    pub metrics: MetricsSnapshot,
    /// Advisory findings about the run itself — today
    /// [`SigmaLint::SuspectMajority`]: every accepted edit of one key
    /// class converged on a single value, the shape coordinated dirt
    /// takes when it outvotes the clean data. Detection only; the
    /// applied fixes are unchanged.
    pub lints: Vec<SigmaLint>,
}

impl RepairReport {
    /// Number of fixes kept.
    pub fn fixes_applied(&self) -> usize {
        self.log.applied.len()
    }

    /// Did the run end with zero outstanding violations?
    pub fn is_clean(&self) -> bool {
        self.residual.is_empty()
    }
}

impl fmt::Display for RepairReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "repair: {} -> {} violation(s) in {} round(s); {} fix(es) \
             ({} cell edit(s), {} deletion(s), {} insertion(s)), cost {:.1}, \
             {} rejected, {} stale{}",
            self.initial_violations,
            self.residual.len(),
            self.log.rounds,
            self.fixes_applied(),
            self.cells_edited,
            self.tuples_deleted,
            self.tuples_inserted,
            self.total_cost,
            self.log.rejected,
            self.log.stale,
            if self.budget_exhausted {
                " (budget exhausted)"
            } else {
                ""
            },
        )
    }
}
