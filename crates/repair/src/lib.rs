#![warn(missing_docs)]

//! # condep-repair
//!
//! A cost-based repair engine closing the paper's data-cleaning loop:
//! **detect** (the batched validator) → **explain** (violation reports
//! with witnesses) → **fix** (this crate). It takes a
//! [`condep_model::Database`], a compiled [`condep_validate::Validator`]
//! Σ and the database's initial [`condep_validate::SigmaReport`], and
//! produces a repaired database plus an auditable [`RepairReport`].
//!
//! ## How it works
//!
//! * **Cost model** ([`RepairCost`]) — per-cell edit weights (with
//!   per-attribute overrides), a tuple-deletion weight and an insertion
//!   weight; the default instance is uniform.
//! * **CFD violations** are settled per **equivalence class**: the
//!   conflicting cells (`(tuple, RHS attribute)` pairs sharing an LHS
//!   key group) are grouped with a union-find — classes sharing a cell
//!   merge, since one cell can only take one value. A constant-pattern
//!   RHS forces the constant; a variable RHS picks the majority value
//!   of the class (the cheapest resolving target under per-cell costs).
//!   Dissenting cells are edited toward the target, or their tuples
//!   deleted when that is cheaper (or when the edit provably cannot
//!   help).
//! * **CIND violations** are repaired by either **inserting the chased
//!   target tuple** — pattern instantiation reuses the chase machinery
//!   ([`condep_chase::ops::forced_target_template`]) — or **deleting
//!   the orphan source**, whichever is cheaper.
//! * **Every candidate fix is verified through the delta engine**: it
//!   is applied via [`condep_validate::ValidatorStream::apply`], its
//!   [`condep_validate::SigmaDelta`]s are inspected, and it is kept
//!   only when strictly net-negative (resolves more than it
//!   introduces); otherwise it is rolled back through
//!   [`condep_validate::ValidatorStream::revert`]. The violation count
//!   therefore decreases monotonically, and the fixpoint loop
//!   terminates within the cascade budget ([`RepairBudget`]).
//!
//! ## Non-optimality
//!
//! Finding a minimum-cost repair is NP-hard already for plain FDs
//! (Bohannon et al., "A cost-based model and effective heuristic for
//! repairing constraints by value modification", SIGMOD 2005) — this
//! crate ships a bounded greedy heuristic, not an optimum: per class it
//! commits to the locally cheapest resolving target, and the delta
//! check guarantees soundness (never a net-worse database), not
//! minimality.

mod cost;
mod engine;
mod log;

pub use condep_validate::{SigmaLint, UnsatSigma};
pub use cost::RepairCost;
pub use engine::{repair, RepairBudget};
pub use log::{AppliedFix, Fix, Motive, RepairLog, RepairReport};

#[cfg(test)]
mod tests {
    use super::*;
    use condep_cfd::fixtures as cfd_fx;
    use condep_cfd::normalize::normalize_all as normalize_cfds;
    use condep_core::fixtures as cind_fx;
    use condep_core::normalize::normalize_all as normalize_cinds;
    use condep_model::fixtures::bank_database;
    use condep_model::{prow, tuple, Database, Domain, PValue, Schema, Value};
    use condep_validate::Validator;
    use std::sync::Arc;

    fn bank_validator() -> Validator {
        Validator::new(
            normalize_cfds(&[cfd_fx::phi1(), cfd_fx::phi2(), cfd_fx::phi3()]),
            normalize_cinds(&cind_fx::figure_2()),
        )
    }

    fn run(validator: Validator, db: Database) -> (Database, RepairReport) {
        let initial = validator.validate_sorted(&db);
        repair(
            validator,
            db,
            initial,
            &RepairCost::uniform(),
            &RepairBudget::default(),
        )
        .expect("fixture sigmas are satisfiable")
    }

    #[test]
    fn bank_database_repairs_to_clean() {
        // Figure 1's dirty instance: t12 violates ϕ3 (10.5% where the
        // pattern forces 1.5%) and t10 violates ψ6 (no saving partner).
        let validator = bank_validator();
        let db = bank_database();
        assert_eq!(validator.validate(&db).len(), 2);
        let (repaired, report) = run(bank_validator(), db);
        assert!(report.is_clean(), "residual: {:?}", report.residual);
        assert!(bank_validator().validate(&repaired).is_empty());
        assert_eq!(report.initial_violations, 2);
        // The CFD fix is the paper's: t12's rate edited to the pattern
        // constant, not the tuple thrown away.
        let interest = repaired.schema().rel_id("interest").unwrap();
        assert!(repaired
            .relation(interest)
            .contains(&tuple!["EDI", "UK", "checking", "1.5%"]));
        assert!(!repaired
            .relation(interest)
            .contains(&tuple!["EDI", "UK", "checking", "10.5%"]));
        let edits = report
            .log
            .applied
            .iter()
            .filter(|a| matches!(a.fix, Fix::EditCells { .. }))
            .count();
        assert!(edits >= 1, "t12 must be repaired by a cell edit");
        // Every kept fix was proven net-negative by its deltas.
        for a in &report.log.applied {
            assert!(a.net_change() < 0, "non-net-negative fix kept: {a:?}");
        }
    }

    #[test]
    fn fix_targets_link_the_audit_log_to_ground_truth_ids() {
        // The dirt injector reports each injection's stable TupleId
        // (dense-seeding convention); the repair stream is seeded the
        // same way, so the audit log's `target` ids stay comparable to
        // the ground truth even after fixes swap-renumber positions.
        let clean = condep_model::fixtures::clean_bank_database();
        let cfds = normalize_cfds(&[cfd_fx::phi1(), cfd_fx::phi2(), cfd_fx::phi3()]);
        let cinds = normalize_cinds(&cind_fx::figure_2());
        let dirtied = condep_gen::dirtied_database(
            &clean,
            &cfds,
            &cinds,
            0.3,
            &mut <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(11),
        );
        assert!(!dirtied.injected.is_empty());
        let (_, report) = run(Validator::new(cfds, cinds), dirtied.db.clone());
        // Every kept fix names the stable id of the tuple it acted on...
        for a in &report.log.applied {
            assert!(a.target.is_some(), "fix without a target id: {a:?}");
        }
        // ...and at least one of them is an injected tuple (the engine
        // may also settle class members the injection dragged in, but it
        // cannot repair the dirt without ever touching it).
        let injected: std::collections::HashSet<_> =
            dirtied.injected.iter().map(|d| (d.rel(), d.id())).collect();
        let touched = report
            .log
            .applied
            .iter()
            .filter_map(|a| {
                let rel = match &a.fix {
                    Fix::EditCells { rel, .. }
                    | Fix::DeleteTuple { rel, .. }
                    | Fix::InsertTuple { rel, .. } => *rel,
                };
                a.target.map(|id| (rel, id))
            })
            .filter(|key| injected.contains(key))
            .count();
        assert!(
            touched >= 1,
            "no kept fix targeted an injected tuple: {:?}",
            report.log.applied
        );
    }

    #[test]
    fn majority_wins_in_a_variable_rhs_class() {
        let schema = Arc::new(
            Schema::builder()
                .relation("r", &[("k", Domain::string()), ("v", Domain::string())])
                .finish(),
        );
        let cfd =
            condep_cfd::NormalCfd::parse(&schema, "r", &["k"], prow![_], "v", PValue::Any).unwrap();
        let mut db = Database::empty(schema);
        db.insert_into("r", tuple!["a", "good"]).unwrap();
        db.insert_into("r", tuple!["a", "typo"]).unwrap();
        db.insert_into("r", tuple!["a", "good2"]).unwrap();
        let (repaired, report) = run(Validator::new(vec![cfd.clone()], vec![]), db);
        assert!(report.is_clean());
        let r = repaired.schema().rel_id("r").unwrap();
        // All tuples agree on v now; with set semantics they collapsed.
        let vals: std::collections::HashSet<&Value> = repaired
            .relation(r)
            .iter()
            .map(|t| &t[condep_model::AttrId(1)])
            .collect();
        assert_eq!(vals.len(), 1, "class must agree after repair");
    }

    #[test]
    fn constant_rhs_forces_the_pattern_constant() {
        let schema = Arc::new(
            Schema::builder()
                .relation("r", &[("k", Domain::string()), ("v", Domain::string())])
                .finish(),
        );
        let cfd = condep_cfd::NormalCfd::parse(
            &schema,
            "r",
            &["k"],
            prow!["uk"],
            "v",
            PValue::constant("44"),
        )
        .unwrap();
        let mut db = Database::empty(schema);
        db.insert_into("r", tuple!["uk", "99"]).unwrap();
        db.insert_into("r", tuple!["uk", "98"]).unwrap();
        db.insert_into("r", tuple!["us", "1"]).unwrap();
        let (repaired, report) = run(Validator::new(vec![cfd], vec![]), db);
        assert!(report.is_clean());
        let r = repaired.schema().rel_id("r").unwrap();
        // Both uk tuples were forced to 44 (and merged by set
        // semantics); the us tuple is untouched.
        assert!(repaired.relation(r).contains(&tuple!["uk", "44"]));
        assert!(repaired.relation(r).contains(&tuple!["us", "1"]));
        assert!(!repaired.relation(r).contains(&tuple!["uk", "99"]));
        assert_eq!(report.tuples_deleted, 0);
    }

    #[test]
    fn cind_orphan_prefers_insertion_over_deletion_on_ties() {
        let schema = Arc::new(
            Schema::builder()
                .relation("src", &[("x", Domain::string())])
                .relation(
                    "dst",
                    &[("y", Domain::string()), ("extra", Domain::string())],
                )
                .finish(),
        );
        let cind = condep_core::NormalCind::parse(&schema, "src", &["x"], &[], "dst", &["y"], &[])
            .unwrap();
        let mut db = Database::empty(schema);
        db.insert_into("src", tuple!["k1"]).unwrap();
        let (repaired, report) = run(Validator::new(vec![], vec![cind]), db);
        assert!(report.is_clean());
        assert_eq!(report.tuples_inserted, 1);
        assert_eq!(report.tuples_deleted, 0);
        let dst = repaired.schema().rel_id("dst").unwrap();
        let src = repaired.schema().rel_id("src").unwrap();
        assert!(
            repaired.relation(src).contains(&tuple!["k1"]),
            "orphan kept"
        );
        // The chased target copies the key; the free attribute got a
        // fresh filler.
        assert_eq!(repaired.relation(dst).len(), 1);
        let t = repaired.relation(dst).get(0).unwrap();
        assert_eq!(t[condep_model::AttrId(0)], Value::str("k1"));
    }

    #[test]
    fn cind_orphan_deletes_when_deletion_is_cheaper() {
        let schema = Arc::new(
            Schema::builder()
                .relation("src", &[("x", Domain::string())])
                .relation("dst", &[("y", Domain::string())])
                .finish(),
        );
        let cind = condep_core::NormalCind::parse(&schema, "src", &["x"], &[], "dst", &["y"], &[])
            .unwrap();
        let mut db = Database::empty(schema);
        db.insert_into("src", tuple!["k1"]).unwrap();
        let validator = Validator::new(vec![], vec![cind]);
        let initial = validator.validate_sorted(&db);
        let cost = RepairCost {
            tuple_insert: 5.0,
            ..RepairCost::uniform()
        };
        let (repaired, report) =
            repair(validator, db, initial, &cost, &RepairBudget::default()).unwrap();
        assert!(report.is_clean());
        assert_eq!(report.tuples_deleted, 1);
        assert_eq!(report.tuples_inserted, 0);
        let src = repaired.schema().rel_id("src").unwrap();
        assert!(repaired.relation(src).is_empty());
        assert_eq!(report.total_cost, 1.0);
    }

    #[test]
    fn cascade_budget_bounds_rounds() {
        let validator = bank_validator();
        let db = bank_database();
        let initial = validator.validate_sorted(&db);
        let budget = RepairBudget {
            max_rounds: 0,
            max_fixes: usize::MAX,
        };
        let (repaired, report) =
            repair(validator, db, initial, &RepairCost::uniform(), &budget).unwrap();
        assert!(report.budget_exhausted);
        assert_eq!(report.fixes_applied(), 0);
        assert_eq!(report.residual.len(), 2);
        // Nothing was touched.
        assert_eq!(repaired.total_tuples(), bank_database().total_tuples());
    }

    #[test]
    fn clean_database_is_a_no_op() {
        let validator = bank_validator();
        let db = condep_model::fixtures::clean_bank_database();
        let (repaired, report) = run(validator, db.clone());
        assert!(report.is_clean());
        assert_eq!(report.fixes_applied(), 0);
        assert_eq!(report.log.rounds, 0);
        assert_eq!(repaired.total_tuples(), db.total_tuples());
    }
}
