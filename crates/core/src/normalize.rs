//! Normalization of CINDs — Proposition 3.1.
//!
//! Every CIND rewrites to an equivalent set of normal-form CINDs, of
//! total size linear in the input, by three steps (paper, Section 3):
//!
//! 1. split the tableau into one CIND per pattern tuple;
//! 2. drop from `Xp`/`Yp` any attribute whose pattern cell is `_`
//!    (a wildcard pattern attribute poses no constraint);
//! 3. move every pair `(Ai, Bi)` with a constant pattern cell from
//!    `X`/`Y` into `Xp`/`Yp` (recall `tp[X] = tp[Y]`, so the constant is
//!    shared: `t1[Ai] = c` is an LHS condition and `t2[Bi] = c` an RHS
//!    obligation).

use crate::syntax::{Cind, NormalCind};
use condep_model::PValue;

/// Rewrites a general CIND into the equivalent set of normal-form CINDs
/// (one per pattern row).
pub fn normalize(cind: &Cind) -> Vec<NormalCind> {
    cind.tableau()
        .iter()
        .map(|row| {
            let (x_cells, xp_cells, _y_cells, yp_cells) = cind.split_row(row);
            let mut x = Vec::new();
            let mut y = Vec::new();
            let mut xp = Vec::new();
            let mut yp = Vec::new();
            // Step 3: constants on matched pairs move to the pattern
            // parts; wildcards stay matched.
            for (i, cell) in x_cells.iter().enumerate() {
                match cell {
                    PValue::Any => {
                        x.push(cind.x()[i]);
                        y.push(cind.y()[i]);
                    }
                    PValue::Const(c) => {
                        xp.push((cind.x()[i], c.clone()));
                        yp.push((cind.y()[i], c.clone()));
                    }
                }
            }
            // Step 2: wildcard pattern attributes are dropped.
            for (i, cell) in xp_cells.iter().enumerate() {
                if let PValue::Const(c) = cell {
                    xp.push((cind.xp()[i], c.clone()));
                }
            }
            for (i, cell) in yp_cells.iter().enumerate() {
                if let PValue::Const(c) = cell {
                    yp.push((cind.yp()[i], c.clone()));
                }
            }
            NormalCind::new(cind.lhs_rel(), cind.rhs_rel(), x, y, xp, yp)
        })
        .collect()
}

/// Normalizes a whole set of CINDs.
pub fn normalize_all<'a, I>(cinds: I) -> Vec<NormalCind>
where
    I: IntoIterator<Item = &'a Cind>,
{
    cinds.into_iter().flat_map(normalize).collect()
}

/// Total size of a set of normal CINDs (number of attribute/constant
/// slots) — used to check the "linear in the size of Σ" claim of
/// Proposition 3.1.
pub fn size_of_normal(cinds: &[NormalCind]) -> usize {
    cinds
        .iter()
        .map(|c| c.x().len() + c.y().len() + c.xp().len() + c.yp().len() + 2)
        .sum()
}

/// Total size of a set of general CINDs under the same measure.
pub fn size_of_general(cinds: &[Cind]) -> usize {
    cinds
        .iter()
        .map(|c| {
            let row_width = c.x().len() + c.xp().len() + c.y().len() + c.yp().len();
            2 + row_width * c.tableau().len().max(1)
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;
    use condep_model::fixtures::bank_schema;
    use condep_model::{prow, Value};

    #[test]
    fn psi5_splits_into_two_normal_cinds() {
        // Example 3.1: "We can transform ψ5 into the normal form by
        // separating it into two CINDs, each carrying only one pattern
        // tuple of ψ5."
        let psi5 = fixtures::psi5();
        let normal = normalize(&psi5);
        assert_eq!(normal.len(), 2);
        for n in &normal {
            // X and Y were nil already; Xp = [ab], Yp = [ab, at, ct, rt].
            assert!(n.x().is_empty());
            assert_eq!(n.xp().len(), 1);
            assert_eq!(n.yp().len(), 4);
        }
        assert_eq!(normal[0].xp()[0].1, Value::str("EDI"));
        assert_eq!(normal[1].xp()[0].1, Value::str("NYC"));
    }

    #[test]
    fn psi1_through_psi4_are_already_normal() {
        // Example 3.1: ψ1–ψ4 are in the normal form; normalization must
        // be the identity modulo representation.
        for (psi, expect_x, expect_xp, expect_yp) in [
            (fixtures::psi1_edi(), 4usize, 1usize, 1usize),
            (fixtures::psi2_edi(), 4, 1, 1),
            (fixtures::psi3(), 1, 0, 0),
            (fixtures::psi4(), 1, 0, 0),
        ] {
            let normal = normalize(&psi);
            assert_eq!(normal.len(), 1);
            assert_eq!(normal[0].x().len(), expect_x);
            assert_eq!(normal[0].xp().len(), expect_xp);
            assert_eq!(normal[0].yp().len(), expect_yp);
        }
    }

    #[test]
    fn example_3_1_constant_on_matched_pair_moves_to_pattern() {
        // (R[A,B; C,D] ⊆ S[E,F; G], ( _, h; i, _ || _, h; o )) rewrites to
        // (R[A; B,C] ⊆ S[E; F,G], ( _; h, i || _; h, o )).
        let schema = condep_model::Schema::builder()
            .relation_str("r", &["a", "b", "c", "d"])
            .relation_str("s", &["e", "f", "g"])
            .finish();
        let cind = Cind::parse(
            &schema,
            "r",
            &["a", "b"],
            &["c", "d"],
            "s",
            &["e", "f"],
            &["g"],
            // X = (_, h), Xp = (i, _), Y = (_, h), Yp = (o)
            vec![prow![_, "h", "i", _, _, "h", "o"]],
        )
        .unwrap();
        let normal = normalize(&cind);
        assert_eq!(normal.len(), 1);
        let n = &normal[0];
        // X shrinks to [a], Y to [e].
        assert_eq!(n.x().len(), 1);
        assert_eq!(n.y().len(), 1);
        // Xp = {B=h, C=i} (D dropped: wildcard), Yp = {F=h, G=o}.
        let xp: Vec<(String, String)> = n
            .xp()
            .iter()
            .map(|(a, v)| {
                let rs = schema.relation(n.lhs_rel()).unwrap();
                (rs.attribute(*a).unwrap().name().to_string(), v.to_string())
            })
            .collect();
        assert_eq!(
            xp,
            vec![
                ("b".to_string(), "h".to_string()),
                ("c".to_string(), "i".to_string())
            ]
        );
        let yp: Vec<(String, String)> = n
            .yp()
            .iter()
            .map(|(a, v)| {
                let rs = schema.relation(n.rhs_rel()).unwrap();
                (rs.attribute(*a).unwrap().name().to_string(), v.to_string())
            })
            .collect();
        assert_eq!(
            yp,
            vec![
                ("f".to_string(), "h".to_string()),
                ("g".to_string(), "o".to_string())
            ]
        );
    }

    #[test]
    fn output_size_is_linear() {
        // Proposition 3.1: |Σ'| is linear in |Σ|.
        let sigma = fixtures::figure_2();
        let normal = normalize_all(&sigma);
        let in_size = size_of_general(&sigma);
        let out_size = size_of_normal(&normal);
        assert!(
            out_size <= 2 * in_size,
            "normal form must stay linear: {out_size} vs input {in_size}"
        );
    }

    #[test]
    fn figure_2_normalizes_to_eight_cinds() {
        // ψ1–ψ4 are single-row; ψ5 and ψ6 carry two rows each: 4 + 4.
        let schema = bank_schema();
        let mut sigma = Vec::new();
        for b in ["edi", "nyc"] {
            sigma.push(if b == "edi" {
                fixtures::psi1_edi()
            } else {
                fixtures::psi1_nyc()
            });
        }
        sigma.extend([
            fixtures::psi3(),
            fixtures::psi4(),
            fixtures::psi5(),
            fixtures::psi6(),
        ]);
        let normal = normalize_all(&sigma);
        assert_eq!(normal.len(), 2 + 1 + 1 + 2 + 2);
        for n in &normal {
            // Normal form invariant: constants exactly on Xp ∪ Yp.
            assert!(n.constants().all(|(rel, a, _)| {
                let rs = schema.relation(rel).unwrap();
                a.index() < rs.arity()
            }));
        }
    }
}
