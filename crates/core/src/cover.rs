//! Minimal covers of CIND sets — the Section 8 extension.
//!
//! "In practice one often needs to find a minimal cover of a given set Σ
//! of constraints, namely, a set Σmc that is equivalent to Σ but contains
//! no redundancy. The computation of Σmc involves implication analysis."
//! For CINDs alone implication is decidable (Section 3), so a cover can
//! be computed exactly subject to the implication budget; whenever the
//! budget forces an `Unknown`, the candidate is conservatively kept, so
//! the result is always equivalent to the input.

use crate::implication::{implies, Implication, ImplicationConfig};
use crate::syntax::NormalCind;
use condep_model::Schema;

/// Outcome of a cover computation.
#[derive(Clone, Debug)]
pub struct Cover {
    /// The retained CINDs (equivalent to the input set).
    pub kept: Vec<NormalCind>,
    /// Indices (into the input) of CINDs removed as implied by the rest.
    pub removed: Vec<usize>,
    /// Indices whose implication check hit the budget (kept
    /// conservatively).
    pub undecided: Vec<usize>,
}

/// Greedily removes CINDs implied by the remaining ones.
///
/// Candidates are examined in input order; each removal re-examines
/// against the *current* (already reduced) set, so the result is a
/// non-redundant cover with respect to the implication procedure.
pub fn minimal_cover(schema: &Schema, sigma: &[NormalCind], config: ImplicationConfig) -> Cover {
    let mut kept: Vec<(usize, NormalCind)> = sigma.iter().cloned().enumerate().collect();
    let mut removed = Vec::new();
    let mut undecided = Vec::new();
    let mut i = 0;
    while i < kept.len() {
        let candidate = kept[i].1.clone();
        let rest: Vec<NormalCind> = kept
            .iter()
            .enumerate()
            .filter(|(j, _)| *j != i)
            .map(|(_, (_, c))| c.clone())
            .collect();
        match implies(schema, &rest, &candidate, config) {
            Implication::Implied => {
                removed.push(kept.remove(i).0);
                // Do not advance: the element now at `i` is unexamined.
            }
            Implication::NotImplied => {
                i += 1;
            }
            Implication::Unknown => {
                undecided.push(kept[i].0);
                i += 1;
            }
        }
    }
    Cover {
        kept: kept.into_iter().map(|(_, c)| c).collect(),
        removed,
        undecided,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;
    use crate::normalize::normalize_all;
    use crate::syntax::NormalCind;

    fn cfg() -> ImplicationConfig {
        ImplicationConfig::default()
    }

    #[test]
    fn duplicate_cinds_are_deduplicated() {
        let schema = fixtures::example_5_1_schema(false);
        let c = NormalCind::parse(&schema, "r1", &["e"], &[], "r2", &["g"], &[]).unwrap();
        let cover = minimal_cover(&schema, &[c.clone(), c.clone()], cfg());
        assert_eq!(cover.kept.len(), 1);
        assert_eq!(cover.removed, vec![0]);
    }

    #[test]
    fn projection_redundancy_is_removed() {
        let schema = fixtures::example_5_1_schema(false);
        let full =
            NormalCind::parse(&schema, "r1", &["e", "f"], &[], "r2", &["g", "h"], &[]).unwrap();
        let projected = NormalCind::parse(&schema, "r1", &["e"], &[], "r2", &["g"], &[]).unwrap();
        let cover = minimal_cover(&schema, &[full.clone(), projected], cfg());
        assert_eq!(cover.kept, vec![full]);
        assert_eq!(cover.removed, vec![1]);
    }

    #[test]
    fn independent_cinds_are_all_kept() {
        let schema = fixtures::example_5_4_schema();
        let sigma = fixtures::example_5_4_cinds(&schema);
        let n = sigma.len();
        let cover = minimal_cover(&schema, &sigma, cfg());
        assert_eq!(cover.kept.len(), n);
        assert!(cover.removed.is_empty());
    }

    #[test]
    fn transitive_closure_member_is_removed() {
        let schema = std::sync::Arc::new(
            condep_model::Schema::builder()
                .relation_str("r", &["a"])
                .relation_str("s", &["b"])
                .relation_str("t", &["c"])
                .finish(),
        );
        let rs = NormalCind::parse(&schema, "r", &["a"], &[], "s", &["b"], &[]).unwrap();
        let st = NormalCind::parse(&schema, "s", &["b"], &[], "t", &["c"], &[]).unwrap();
        let rt = NormalCind::parse(&schema, "r", &["a"], &[], "t", &["c"], &[]).unwrap();
        let cover = minimal_cover(&schema, &[rt.clone(), rs.clone(), st.clone()], cfg());
        // rt is implied by {rs, st} and examined first.
        assert_eq!(cover.removed, vec![0]);
        assert_eq!(cover.kept.len(), 2);
    }

    #[test]
    fn figure_2_cover_keeps_the_specific_cinds() {
        // ψ3 (saving[ab] ⊆ interest[ab]) is implied by ψ5 relaxed? No:
        // ψ5 only constrains EDI/NYC branches, ψ3 all branches — nothing
        // in Figure 2 is redundant except nothing; the cover keeps all.
        let schema = condep_model::fixtures::bank_schema();
        let sigma = normalize_all(&[fixtures::psi3(), fixtures::psi5(), fixtures::psi6()]);
        let cover = minimal_cover(&schema, &sigma, cfg());
        assert!(cover.removed.is_empty());
        assert_eq!(cover.kept.len(), sigma.len());
    }
}
