//! CIND syntax.
//!
//! Section 2 of the paper: a CIND is a pair
//! `ψ = (R1[X; Xp] ⊆ R2[Y; Yp], Tp)` where
//!
//! * `X, Xp` are disjoint attribute lists of `R1`, and `Y, Yp` disjoint
//!   attribute lists of `R2`, with `|X| = |Y|`;
//! * `R1[X] ⊆ R2[Y]` is the *embedded IND*;
//! * `Tp` is a pattern tableau over `X, Xp, Y, Yp` whose rows satisfy
//!   `tp[X] = tp[Y]` cell-for-cell.
//!
//! `LHS(ψ) = X ∪ Xp`, `RHS(ψ) = Y ∪ Yp`; the paper separates the two
//! parts of a pattern tuple with `‖`, which the `Display` impls mirror.

use condep_model::{AttrId, PValue, PatternRow, RelId, RelationSchema, Schema, Value};
use std::fmt;

/// A conditional inclusion dependency in general form (possibly many
/// pattern rows).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Cind {
    lhs_rel: RelId,
    rhs_rel: RelId,
    x: Vec<AttrId>,
    xp: Vec<AttrId>,
    y: Vec<AttrId>,
    yp: Vec<AttrId>,
    /// Rows over `X ++ Xp ++ Y ++ Yp`.
    tableau: Vec<PatternRow>,
}

impl Cind {
    /// Creates a CIND, checking the well-formedness conditions of
    /// Section 2 (disjointness, matched arity, row width, `tp[X] = tp[Y]`).
    pub fn new(
        lhs_rel: RelId,
        rhs_rel: RelId,
        x: Vec<AttrId>,
        xp: Vec<AttrId>,
        y: Vec<AttrId>,
        yp: Vec<AttrId>,
        tableau: Vec<PatternRow>,
    ) -> Self {
        assert_eq!(x.len(), y.len(), "|X| must equal |Y|");
        assert!(
            x.iter().all(|a| !xp.contains(a)),
            "X and Xp must be disjoint"
        );
        assert!(
            y.iter().all(|a| !yp.contains(a)),
            "Y and Yp must be disjoint"
        );
        let width = x.len() + xp.len() + y.len() + yp.len();
        for row in &tableau {
            assert_eq!(
                row.len(),
                width,
                "tableau row width must be |X|+|Xp|+|Y|+|Yp|"
            );
            for i in 0..x.len() {
                assert_eq!(
                    row.cell(i),
                    row.cell(x.len() + xp.len() + i),
                    "pattern rows must satisfy tp[X] = tp[Y]"
                );
            }
        }
        Cind {
            lhs_rel,
            rhs_rel,
            x,
            xp,
            y,
            yp,
            tableau,
        }
    }

    /// The traditional IND `R1[X] ⊆ R2[Y]` as a CIND: empty `Xp`/`Yp` and
    /// a single all-wildcard row (like ψ3/ψ4 in Figure 2).
    pub fn traditional(lhs_rel: RelId, rhs_rel: RelId, x: Vec<AttrId>, y: Vec<AttrId>) -> Self {
        let row = PatternRow::all_any(x.len() + y.len());
        Cind::new(lhs_rel, rhs_rel, x, Vec::new(), y, Vec::new(), vec![row])
    }

    /// Name-resolving constructor used by fixtures and examples.
    #[allow(clippy::too_many_arguments)]
    pub fn parse(
        schema: &Schema,
        lhs_rel: &str,
        x: &[&str],
        xp: &[&str],
        rhs_rel: &str,
        y: &[&str],
        yp: &[&str],
        tableau: Vec<PatternRow>,
    ) -> condep_model::Result<Self> {
        let l = schema.rel_id(lhs_rel)?;
        let r = schema.rel_id(rhs_rel)?;
        let ls = schema.relation(l)?;
        let rs = schema.relation(r)?;
        Ok(Cind::new(
            l,
            r,
            ls.attr_ids(x)?,
            ls.attr_ids(xp)?,
            rs.attr_ids(y)?,
            rs.attr_ids(yp)?,
            tableau,
        ))
    }

    /// The source relation `R1`.
    pub fn lhs_rel(&self) -> RelId {
        self.lhs_rel
    }

    /// The target relation `R2`.
    pub fn rhs_rel(&self) -> RelId {
        self.rhs_rel
    }

    /// The matched source attributes `X`.
    pub fn x(&self) -> &[AttrId] {
        &self.x
    }

    /// The source pattern attributes `Xp`.
    pub fn xp(&self) -> &[AttrId] {
        &self.xp
    }

    /// The matched target attributes `Y`.
    pub fn y(&self) -> &[AttrId] {
        &self.y
    }

    /// The target pattern attributes `Yp`.
    pub fn yp(&self) -> &[AttrId] {
        &self.yp
    }

    /// The pattern tableau `Tp`.
    pub fn tableau(&self) -> &[PatternRow] {
        &self.tableau
    }

    /// Splits a row into its `(tp[X], tp[Xp], tp[Y], tp[Yp])` parts.
    pub fn split_row<'a>(
        &self,
        row: &'a PatternRow,
    ) -> (&'a [PValue], &'a [PValue], &'a [PValue], &'a [PValue]) {
        let cells = row.cells();
        let (x, rest) = cells.split_at(self.x.len());
        let (xp, rest) = rest.split_at(self.xp.len());
        let (y, yp) = rest.split_at(self.y.len());
        (x, xp, y, yp)
    }

    /// Is this syntactically a traditional IND?
    pub fn is_traditional(&self) -> bool {
        self.xp.is_empty()
            && self.yp.is_empty()
            && self.tableau.len() == 1
            && self.tableau[0].is_all_any()
    }

    /// Renders the CIND with names resolved against `schema`.
    pub fn display<'a>(&'a self, schema: &'a Schema) -> impl fmt::Display + 'a {
        CindDisplay { cind: self, schema }
    }
}

fn names(rs: &RelationSchema, attrs: &[AttrId]) -> String {
    if attrs.is_empty() {
        return "nil".to_string();
    }
    attrs
        .iter()
        .map(|a| {
            rs.attribute(*a)
                .map(|at| at.name().to_string())
                .unwrap_or_else(|_| a.to_string())
        })
        .collect::<Vec<_>>()
        .join(", ")
}

struct CindDisplay<'a> {
    cind: &'a Cind,
    schema: &'a Schema,
}

impl fmt::Display for CindDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (Ok(ls), Ok(rs)) = (
            self.schema.relation(self.cind.lhs_rel),
            self.schema.relation(self.cind.rhs_rel),
        ) else {
            return write!(f, "<invalid CIND>");
        };
        write!(
            f,
            "({}[{}; {}] ⊆ {}[{}; {}], {{",
            ls.name(),
            names(ls, &self.cind.x),
            names(ls, &self.cind.xp),
            rs.name(),
            names(rs, &self.cind.y),
            names(rs, &self.cind.yp),
        )?;
        for (i, row) in self.cind.tableau.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            let (x, xp, y, yp) = self.cind.split_row(row);
            let part = |cells: &[PValue]| {
                cells
                    .iter()
                    .map(|c| c.to_string())
                    .collect::<Vec<_>>()
                    .join(", ")
            };
            write!(
                f,
                "({}; {} || {}; {})",
                part(x),
                part(xp),
                part(y),
                part(yp)
            )?;
        }
        write!(f, "}})")
    }
}

/// A CIND in **normal form** (Section 3): a single pattern tuple `tp`
/// where `tp[A]` is a constant *iff* `A ∈ Xp ∪ Yp`. Wildcards on `X`/`Y`
/// are implicit; the pattern parts carry their constants inline.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct NormalCind {
    lhs_rel: RelId,
    rhs_rel: RelId,
    x: Vec<AttrId>,
    y: Vec<AttrId>,
    xp: Vec<(AttrId, Value)>,
    yp: Vec<(AttrId, Value)>,
}

impl NormalCind {
    /// Creates a normal-form CIND.
    pub fn new(
        lhs_rel: RelId,
        rhs_rel: RelId,
        x: Vec<AttrId>,
        y: Vec<AttrId>,
        xp: Vec<(AttrId, Value)>,
        yp: Vec<(AttrId, Value)>,
    ) -> Self {
        assert_eq!(x.len(), y.len(), "|X| must equal |Y|");
        assert!(
            x.iter().all(|a| !xp.iter().any(|(b, _)| b == a)),
            "X and Xp must be disjoint"
        );
        assert!(
            y.iter().all(|a| !yp.iter().any(|(b, _)| b == a)),
            "Y and Yp must be disjoint"
        );
        NormalCind {
            lhs_rel,
            rhs_rel,
            x,
            y,
            xp,
            yp,
        }
    }

    /// Name-resolving constructor.
    pub fn parse(
        schema: &Schema,
        lhs_rel: &str,
        x: &[&str],
        xp: &[(&str, Value)],
        rhs_rel: &str,
        y: &[&str],
        yp: &[(&str, Value)],
    ) -> condep_model::Result<Self> {
        let l = schema.rel_id(lhs_rel)?;
        let r = schema.rel_id(rhs_rel)?;
        let ls = schema.relation(l)?;
        let rs = schema.relation(r)?;
        let xp = xp
            .iter()
            .map(|(n, v)| Ok((ls.attr_id(n)?, v.clone())))
            .collect::<condep_model::Result<Vec<_>>>()?;
        let yp = yp
            .iter()
            .map(|(n, v)| Ok((rs.attr_id(n)?, v.clone())))
            .collect::<condep_model::Result<Vec<_>>>()?;
        Ok(NormalCind::new(
            l,
            r,
            ls.attr_ids(x)?,
            rs.attr_ids(y)?,
            xp,
            yp,
        ))
    }

    /// The source relation `R1`.
    pub fn lhs_rel(&self) -> RelId {
        self.lhs_rel
    }

    /// The target relation `R2`.
    pub fn rhs_rel(&self) -> RelId {
        self.rhs_rel
    }

    /// The matched source attributes `X`.
    pub fn x(&self) -> &[AttrId] {
        &self.x
    }

    /// The matched target attributes `Y`.
    pub fn y(&self) -> &[AttrId] {
        &self.y
    }

    /// The LHS pattern constants `(A, tp[A])` for `A ∈ Xp`.
    pub fn xp(&self) -> &[(AttrId, Value)] {
        &self.xp
    }

    /// The RHS pattern constants `(B, tp[B])` for `B ∈ Yp`.
    pub fn yp(&self) -> &[(AttrId, Value)] {
        &self.yp
    }

    /// Does `t` (a tuple of `R1`) trigger this CIND, i.e. match `tp[Xp]`?
    pub fn triggers(&self, t: &condep_model::Tuple) -> bool {
        self.xp.iter().all(|(a, v)| &t[*a] == v)
    }

    /// Is the CIND **trivially** satisfied by every instance?
    ///
    /// That is the case when source and target are the same relation,
    /// the matched lists are attribute-for-attribute identical, and
    /// every RHS condition `(B, b) ∈ Yp` is also demanded by `Xp` — a
    /// triggered tuple then partners with itself. Discovery uses this to
    /// drop vacuous `R[X; Xp] ⊆ R[X; Yp ⊆ Xp]` candidates before
    /// ranking.
    pub fn is_trivial(&self) -> bool {
        self.lhs_rel == self.rhs_rel
            && self.x == self.y
            && self.yp.iter().all(|pair| self.xp.contains(pair))
    }

    /// Does `t` (a tuple of `R2`) match the RHS pattern `tp[Yp]`?
    pub fn rhs_matches(&self, t: &condep_model::Tuple) -> bool {
        self.yp.iter().all(|(a, v)| &t[*a] == v)
    }

    /// All constants of the pattern tuple, tagged with the relation they
    /// constrain.
    pub fn constants(&self) -> impl Iterator<Item = (RelId, AttrId, &Value)> {
        self.xp
            .iter()
            .map(move |(a, v)| (self.lhs_rel, *a, v))
            .chain(self.yp.iter().map(move |(a, v)| (self.rhs_rel, *a, v)))
    }

    /// Converts back to the general form (single-row tableau) — handy for
    /// display and for round-trip testing of normalization.
    pub fn to_general(&self) -> Cind {
        let mut cells: Vec<PValue> = Vec::new();
        cells.extend(self.x.iter().map(|_| PValue::Any));
        cells.extend(self.xp.iter().map(|(_, v)| PValue::Const(v.clone())));
        cells.extend(self.y.iter().map(|_| PValue::Any));
        cells.extend(self.yp.iter().map(|(_, v)| PValue::Const(v.clone())));
        Cind::new(
            self.lhs_rel,
            self.rhs_rel,
            self.x.clone(),
            self.xp.iter().map(|(a, _)| *a).collect(),
            self.y.clone(),
            self.yp.iter().map(|(a, _)| *a).collect(),
            vec![PatternRow::new(cells)],
        )
    }

    /// Renders with names resolved against `schema`.
    pub fn display<'a>(&'a self, schema: &'a Schema) -> impl fmt::Display + 'a {
        NormalCindDisplay { cind: self, schema }
    }
}

struct NormalCindDisplay<'a> {
    cind: &'a NormalCind,
    schema: &'a Schema,
}

impl fmt::Display for NormalCindDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (Ok(ls), Ok(rs)) = (
            self.schema.relation(self.cind.lhs_rel),
            self.schema.relation(self.cind.rhs_rel),
        ) else {
            return write!(f, "<invalid CIND>");
        };
        let consts = |rel: &RelationSchema, pairs: &[(AttrId, Value)]| {
            if pairs.is_empty() {
                return "nil".to_string();
            }
            pairs
                .iter()
                .map(|(a, v)| {
                    let n = rel
                        .attribute(*a)
                        .map(|at| at.name().to_string())
                        .unwrap_or_else(|_| a.to_string());
                    format!("{n}={v}")
                })
                .collect::<Vec<_>>()
                .join(", ")
        };
        write!(
            f,
            "({}[{}; {}] ⊆ {}[{}; {}])",
            ls.name(),
            names(ls, &self.cind.x),
            consts(ls, &self.cind.xp),
            rs.name(),
            names(rs, &self.cind.y),
            consts(rs, &self.cind.yp),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use condep_model::fixtures::bank_schema;
    use condep_model::prow;

    #[test]
    fn psi1_shape() {
        // ψ1 = (account_edi[an,cn,ca,cp; at] ⊆ saving[an,cn,ca,cp; ab], T1)
        let schema = bank_schema();
        let psi1 = Cind::parse(
            &schema,
            "account_edi",
            &["an", "cn", "ca", "cp"],
            &["at"],
            "saving",
            &["an", "cn", "ca", "cp"],
            &["ab"],
            vec![prow![_, _, _, _, "saving", _, _, _, _, "EDI"]],
        )
        .unwrap();
        assert_eq!(psi1.x().len(), 4);
        assert_eq!(psi1.xp().len(), 1);
        assert_eq!(psi1.yp().len(), 1);
        assert!(!psi1.is_traditional());
        let shown = psi1.display(&schema).to_string();
        assert!(shown.contains("account_edi"));
        assert!(shown.contains("⊆ saving"));
    }

    #[test]
    fn traditional_ind_constructor() {
        // ψ3 = (saving[ab; nil] ⊆ interest[ab; nil], { (_ || _) }).
        let schema = bank_schema();
        let saving = schema.rel_id("saving").unwrap();
        let interest = schema.rel_id("interest").unwrap();
        let ab_s = schema.relation(saving).unwrap().attr_id("ab").unwrap();
        let ab_i = schema.relation(interest).unwrap().attr_id("ab").unwrap();
        let psi3 = Cind::traditional(saving, interest, vec![ab_s], vec![ab_i]);
        assert!(psi3.is_traditional());
        let shown = psi3.display(&schema).to_string();
        assert!(shown.contains("nil"));
    }

    #[test]
    #[should_panic(expected = "tp[X] = tp[Y]")]
    fn mismatched_x_y_patterns_rejected() {
        let schema = bank_schema();
        Cind::parse(
            &schema,
            "saving",
            &["ab"],
            &[],
            "interest",
            &["ab"],
            &[],
            vec![prow!["EDI", "NYC"]],
        )
        .unwrap();
    }

    #[test]
    #[should_panic(expected = "disjoint")]
    fn overlapping_x_xp_rejected() {
        let schema = bank_schema();
        Cind::parse(
            &schema,
            "saving",
            &["ab"],
            &["ab"],
            "interest",
            &["ab"],
            &[],
            vec![prow![_, _, _]],
        )
        .unwrap();
    }

    #[test]
    fn normal_cind_trigger_and_rhs_match() {
        use condep_model::tuple;
        let schema = bank_schema();
        let n = NormalCind::parse(
            &schema,
            "checking",
            &[],
            &[("ab", Value::str("EDI"))],
            "interest",
            &[],
            &[
                ("ab", Value::str("EDI")),
                ("at", Value::str("checking")),
                ("ct", Value::str("UK")),
                ("rt", Value::str("1.5%")),
            ],
        )
        .unwrap();
        let t10 = tuple!["02", "I. Stark", "EDI, EH1 4FE", "131-6693423", "EDI"];
        assert!(n.triggers(&t10));
        let t_nyc = tuple!["02", "G. King", "NYC, 19022", "212-3963455", "NYC"];
        assert!(!n.triggers(&t_nyc));
        let good = tuple!["EDI", "UK", "checking", "1.5%"];
        let bad = tuple!["EDI", "UK", "checking", "10.5%"];
        assert!(n.rhs_matches(&good));
        assert!(!n.rhs_matches(&bad));
    }

    #[test]
    fn to_general_round_trip_shape() {
        let schema = bank_schema();
        let n = NormalCind::parse(
            &schema,
            "account_edi",
            &["an", "cn", "ca", "cp"],
            &[("at", Value::str("saving"))],
            "saving",
            &["an", "cn", "ca", "cp"],
            &[("ab", Value::str("EDI"))],
        )
        .unwrap();
        let g = n.to_general();
        assert_eq!(g.x(), n.x());
        assert_eq!(g.tableau().len(), 1);
        // The row is wildcards on X/Y, constants on Xp/Yp.
        let (x, xp, y, yp) = g.split_row(&g.tableau()[0]);
        assert!(x.iter().all(|c| matches!(c, PValue::Any)));
        assert!(y.iter().all(|c| matches!(c, PValue::Any)));
        assert!(xp.iter().all(PValue::is_const));
        assert!(yp.iter().all(PValue::is_const));
    }

    #[test]
    fn constants_iterator_tags_relations() {
        let schema = bank_schema();
        let n = NormalCind::parse(
            &schema,
            "saving",
            &[],
            &[("ab", Value::str("EDI"))],
            "interest",
            &[],
            &[("ab", Value::str("EDI")), ("ct", Value::str("UK"))],
        )
        .unwrap();
        let cs: Vec<_> = n.constants().collect();
        assert_eq!(cs.len(), 3);
        assert_eq!(cs[0].0, schema.rel_id("saving").unwrap());
        assert_eq!(cs[1].0, schema.rel_id("interest").unwrap());
    }

    #[test]
    fn display_normal_form() {
        let schema = bank_schema();
        let n =
            NormalCind::parse(&schema, "saving", &["ab"], &[], "interest", &["ab"], &[]).unwrap();
        let s = n.display(&schema).to_string();
        assert!(s.contains("saving[ab; nil]"));
        assert!(s.contains("interest[ab; nil]"));
    }
}
