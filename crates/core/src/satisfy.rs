//! Satisfaction checking for CINDs.
//!
//! Section 2: `(I1, I2) |= ψ` iff for each `t1 ∈ I1` and each pattern
//! tuple `tp ∈ Tp`, if `t1[X, Xp] ≍ tp[X, Xp]` then there exists
//! `t2 ∈ I2` with `t1[X] = t2[Y] ≍ tp[Y]` and `t2[Yp] ≍ tp[Yp]`.
//!
//! Two implementations are provided and cross-validated by property
//! tests: [`satisfies_normal`] (hash-index semi-join over the normal
//! form, `O(|I1| + |I2|)`) and [`satisfies_general_direct`] (a literal
//! transcription of the definition, used as the test oracle).

use crate::normalize::normalize;
use crate::syntax::{Cind, NormalCind};
use condep_model::Database;
use condep_query::HashIndex;

/// Does `db` satisfy the normal-form CIND? (Hash-index implementation.)
pub fn satisfies_normal(db: &Database, cind: &NormalCind) -> bool {
    let source = db.relation(cind.lhs_rel());
    if source.is_empty() {
        return true;
    }
    let target = db.relation(cind.rhs_rel());
    let idx = HashIndex::build_filtered(target, cind.y(), |t2| cind.rhs_matches(t2));
    source
        .iter()
        .filter(|t1| cind.triggers(t1))
        .all(|t1| idx.contains_tuple_key(t1, cind.x()))
}

/// Does `db` satisfy the (general-form) CIND?
pub fn satisfies(db: &Database, cind: &Cind) -> bool {
    normalize(cind).iter().all(|n| satisfies_normal(db, n))
}

/// Does `db` satisfy every CIND in `set`?
pub fn satisfies_all<'a, I>(db: &Database, set: I) -> bool
where
    I: IntoIterator<Item = &'a NormalCind>,
{
    set.into_iter().all(|n| satisfies_normal(db, n))
}

/// Literal transcription of the Section 2 semantics over the general
/// form — quadratic, independent of [`normalize`], used as an oracle to
/// validate both the normal form (Prop. 3.1) and the indexed checker.
pub fn satisfies_general_direct(db: &Database, cind: &Cind) -> bool {
    let source = db.relation(cind.lhs_rel());
    let target = db.relation(cind.rhs_rel());
    for t1 in source {
        for row in cind.tableau() {
            let (x_pat, xp_pat, y_pat, yp_pat) = cind.split_row(row);
            let lhs_match = cind.x().iter().zip(x_pat).all(|(a, p)| p.matches(&t1[*a]))
                && cind
                    .xp()
                    .iter()
                    .zip(xp_pat)
                    .all(|(a, p)| p.matches(&t1[*a]));
            if !lhs_match {
                continue;
            }
            let witness_exists = target.iter().any(|t2| {
                cind.x()
                    .iter()
                    .zip(cind.y())
                    .all(|(xa, ya)| t1[*xa] == t2[*ya])
                    && cind.y().iter().zip(y_pat).all(|(a, p)| p.matches(&t2[*a]))
                    && cind
                        .yp()
                        .iter()
                        .zip(yp_pat)
                        .all(|(a, p)| p.matches(&t2[*a]))
            });
            if !witness_exists {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;
    use condep_model::fixtures::{bank_database, clean_bank_database};
    use condep_model::tuple;

    #[test]
    fn figure_1_satisfies_psi1_to_psi5() {
        // Example 2.2: the database satisfies ψ1–ψ5 …
        let db = bank_database();
        for (name, psi) in [
            ("psi1_edi", fixtures::psi1_edi()),
            ("psi1_nyc", fixtures::psi1_nyc()),
            ("psi2_edi", fixtures::psi2_edi()),
            ("psi2_nyc", fixtures::psi2_nyc()),
            ("psi3", fixtures::psi3()),
            ("psi4", fixtures::psi4()),
            ("psi5", fixtures::psi5()),
        ] {
            assert!(satisfies(&db, &psi), "Fig 1 must satisfy {name}");
            assert!(
                satisfies_general_direct(&db, &psi),
                "direct semantics must agree on {name}"
            );
        }
    }

    #[test]
    fn figure_1_violates_psi6_via_t10() {
        // Example 2.2: "ψ6 is violated by the database. Indeed, for tuple
        // t10 … there is no tuple t in interest such that t[ab] = EDI,
        // t[at] = checking, t[ct] = UK and t[rt] = 1.5%."
        let db = bank_database();
        assert!(!satisfies(&db, &fixtures::psi6()));
        assert!(!satisfies_general_direct(&db, &fixtures::psi6()));
    }

    #[test]
    fn clean_instance_satisfies_all_of_figure_2() {
        let db = clean_bank_database();
        for psi in fixtures::figure_2() {
            assert!(satisfies(&db, &psi));
        }
    }

    #[test]
    fn embedded_ind_need_not_hold() {
        // Example 2.2: "while ψ1 is satisfied, the IND
        // account_edi[an,cn,ca,cp] ⊆ saving[an,cn,ca,cp] is not" —
        // checking accounts have no saving counterpart.
        let db = bank_database();
        let schema = db.schema();
        let embedded = Cind::parse(
            schema,
            "account_edi",
            &["an", "cn", "ca", "cp"],
            &[],
            "saving",
            &["an", "cn", "ca", "cp"],
            &[],
            vec![condep_model::PatternRow::all_any(8)],
        )
        .unwrap();
        assert!(!satisfies(&db, &embedded));
    }

    #[test]
    fn empty_source_satisfies_vacuously() {
        let db = condep_model::Database::empty(bank_database().schema().clone());
        for psi in fixtures::figure_2() {
            assert!(satisfies(&db, &psi));
        }
    }

    #[test]
    fn empty_target_with_triggered_source_violates() {
        let schema = bank_database().schema().clone();
        let mut db = condep_model::Database::empty(schema);
        db.insert_into("saving", tuple!["01", "x", "y", "z", "EDI"])
            .unwrap();
        // ψ3 requires the branch to appear in interest, which is empty.
        assert!(!satisfies(&db, &fixtures::psi3()));
    }

    #[test]
    fn normalized_agrees_with_direct_on_dirty_and_clean() {
        for db in [bank_database(), clean_bank_database()] {
            for psi in fixtures::figure_2() {
                assert_eq!(
                    satisfies(&db, &psi),
                    satisfies_general_direct(&db, &psi),
                    "normal form must preserve satisfaction (Prop 3.1)"
                );
            }
        }
    }

    #[test]
    fn self_inclusion_is_satisfied() {
        // R[X] ⊆ R[X] always holds (rule CIND1's soundness base case).
        let db = bank_database();
        let schema = db.schema();
        let saving = schema.rel_id("saving").unwrap();
        let rs = schema.relation(saving).unwrap();
        let refl = Cind::traditional(
            saving,
            saving,
            rs.attr_ids(&["an", "ab"]).unwrap(),
            rs.attr_ids(&["an", "ab"]).unwrap(),
        );
        assert!(satisfies(&db, &refl));
    }
}
