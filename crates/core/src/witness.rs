//! Consistency of CINDs — Theorem 3.2, constructively.
//!
//! "For any set Σ of CINDs defined on a schema R, there exists a nonempty
//! instance D of R such that D |= Σ." The proof builds D explicitly:
//! give every attribute an *active domain* (the constants appearing in Σ
//! plus at most one extra value) and take each relation to be the cross
//! product of its attributes' active domains.
//!
//! Two engineering details the proof sketch glosses over:
//!
//! * the extra value must be *shared* along the flows `Ai → Bi` of the
//!   embedded INDs, so we close the active domains under those flows
//!   (a fixpoint, finite because only finitely many values circulate);
//! * the paper assumes w.l.o.g. `dom(Ai) ⊆ dom(Bi)`; we *check* that
//!   compatibility ([`domains_compatible`]) and report an error instead
//!   of building an ill-typed instance.

use crate::syntax::NormalCind;
use condep_model::{AttrId, Database, Domain, RelId, Schema, Tuple, Value};
use std::collections::{BTreeSet, HashMap};
use std::fmt;
use std::sync::Arc;

/// Why a witness could not be built.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum WitnessError {
    /// `dom(Ai) ⊆ dom(Bi)` fails for a matched pair of some CIND, so the
    /// paper's w.l.o.g. assumption does not hold for this input.
    IncompatibleDomains {
        /// The source attribute.
        lhs: (RelId, AttrId),
        /// The target attribute.
        rhs: (RelId, AttrId),
    },
    /// A pattern constant lies outside its attribute's domain.
    ConstantOutsideDomain {
        /// The constrained attribute.
        attr: (RelId, AttrId),
        /// Rendered constant.
        value: String,
    },
    /// The cross product would exceed `max_tuples`.
    TooLarge {
        /// The relation whose product blew up.
        rel: RelId,
        /// The configured cap.
        max_tuples: usize,
    },
}

impl fmt::Display for WitnessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WitnessError::IncompatibleDomains { lhs, rhs } => write!(
                f,
                "dom({}.{}) ⊄ dom({}.{}): the w.l.o.g. assumption of Section 2 fails",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            WitnessError::ConstantOutsideDomain { attr, value } => {
                write!(
                    f,
                    "pattern constant {value} outside dom({}.{})",
                    attr.0, attr.1
                )
            }
            WitnessError::TooLarge { rel, max_tuples } => {
                write!(f, "witness for {rel} exceeds {max_tuples} tuples")
            }
        }
    }
}

impl std::error::Error for WitnessError {}

/// Is `sub ⊆ sup` as domains? (Same base type; finite ⊆ finite by value
/// inclusion; finite ⊆ infinite always; infinite ⊆ finite never.)
pub fn domain_contained(sub: &Domain, sup: &Domain) -> bool {
    if sub.base_type() != sup.base_type() {
        return false;
    }
    match (sub.values(), sup.values()) {
        (_, None) => true,
        (None, Some(_)) => false,
        (Some(vs), Some(_)) => vs.iter().all(|v| sup.contains(v)),
    }
}

/// Checks the w.l.o.g. domain-compatibility assumption
/// `dom(Ai) ⊆ dom(Bi)` for every matched pair of `cind`.
pub fn domains_compatible(schema: &Schema, cind: &NormalCind) -> bool {
    let (Ok(ls), Ok(rs)) = (
        schema.relation(cind.lhs_rel()),
        schema.relation(cind.rhs_rel()),
    ) else {
        return false;
    };
    cind.x()
        .iter()
        .zip(cind.y())
        .all(|(xa, ya)| match (ls.attribute(*xa), rs.attribute(*ya)) {
            (Ok(a), Ok(b)) => domain_contained(a.domain(), b.domain()),
            _ => false,
        })
}

/// Builds the Theorem 3.2 witness: a nonempty instance satisfying every
/// CIND in `sigma`, as the cross product of per-attribute active domains.
///
/// `max_tuples` caps each relation's size (the construction is
/// exponential in arity by design; the theorem is about existence, and
/// callers exercising it should use small schemas).
pub fn build_witness_bounded(
    schema: &Arc<Schema>,
    sigma: &[NormalCind],
    max_tuples: usize,
) -> Result<Database, WitnessError> {
    // Validate the w.l.o.g. assumptions first.
    for cind in sigma {
        let (Ok(ls), Ok(rs)) = (
            schema.relation(cind.lhs_rel()),
            schema.relation(cind.rhs_rel()),
        ) else {
            continue;
        };
        for (xa, ya) in cind.x().iter().zip(cind.y()) {
            let (a, b) = (
                ls.attribute(*xa).expect("attr in range"),
                rs.attribute(*ya).expect("attr in range"),
            );
            if !domain_contained(a.domain(), b.domain()) {
                return Err(WitnessError::IncompatibleDomains {
                    lhs: (cind.lhs_rel(), *xa),
                    rhs: (cind.rhs_rel(), *ya),
                });
            }
        }
        for (rel, attr, v) in cind.constants() {
            let rs = schema.relation(rel).expect("rel in range");
            let at = rs.attribute(attr).expect("attr in range");
            if !at.domain().contains(v) {
                return Err(WitnessError::ConstantOutsideDomain {
                    attr: (rel, attr),
                    value: v.to_string(),
                });
            }
        }
    }

    // Seed active domains: the constants of Σ, plus one extra value —
    // the whole domain when finite, a shared fresh value per base type
    // when infinite.
    let mut all_consts: BTreeSet<Value> = BTreeSet::new();
    for cind in sigma {
        for (_, _, v) in cind.constants() {
            all_consts.insert(v.clone());
        }
    }
    let fresh_str = Domain::string()
        .fresh_value(&all_consts)
        .expect("infinite domain");
    let fresh_int = Domain::integer()
        .fresh_value(&all_consts)
        .expect("infinite domain");

    let mut active: HashMap<(RelId, AttrId), BTreeSet<Value>> = HashMap::new();
    for (rel, rs) in schema.iter() {
        for (attr, a) in rs.iter() {
            let set: BTreeSet<Value> = match a.domain().values() {
                // Finite: take the whole (small) domain — trivially closed.
                Some(vs) => vs.iter().cloned().collect(),
                // Infinite: the constants of Σ that fit, plus the shared
                // fresh value of the base type.
                None => {
                    let mut s: BTreeSet<Value> = all_consts
                        .iter()
                        .filter(|v| a.domain().contains(v))
                        .cloned()
                        .collect();
                    s.insert(match a.domain().base_type() {
                        condep_model::BaseType::Str => fresh_str.clone(),
                        condep_model::BaseType::Int => fresh_int.clone(),
                        condep_model::BaseType::Bool => Value::bool(true),
                    });
                    s
                }
            };
            debug_assert!(!set.is_empty());
            active.insert((rel, attr), set);
        }
    }

    // Close under the IND flows Ai → Bi.
    loop {
        let mut changed = false;
        for cind in sigma {
            for (xa, ya) in cind.x().iter().zip(cind.y()) {
                let src = active[&(cind.lhs_rel(), *xa)].clone();
                let dst = active.get_mut(&(cind.rhs_rel(), *ya)).expect("attr seeded");
                for v in src {
                    if dst.insert(v) {
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Cross product per relation.
    let mut db = Database::empty(schema.clone());
    for (rel, rs) in schema.iter() {
        let doms: Vec<Vec<Value>> = rs
            .iter()
            .map(|(attr, _)| active[&(rel, attr)].iter().cloned().collect())
            .collect();
        let mut size: usize = 1;
        for d in &doms {
            size = size.saturating_mul(d.len());
            if size > max_tuples {
                return Err(WitnessError::TooLarge { rel, max_tuples });
            }
        }
        for t in cross_product(&doms) {
            db.insert(rel, t).expect("active domain values well-typed");
        }
    }
    Ok(db)
}

/// All tuples over the given per-attribute value lists (odometer order).
fn cross_product(doms: &[Vec<Value>]) -> Vec<Tuple> {
    let mut out = Vec::new();
    let mut counters = vec![0usize; doms.len()];
    'outer: loop {
        out.push(Tuple::new(
            counters
                .iter()
                .enumerate()
                .map(|(i, &c)| doms[i][c].clone()),
        ));
        let mut i = 0;
        loop {
            if i == counters.len() {
                break 'outer;
            }
            counters[i] += 1;
            if counters[i] < doms[i].len() {
                break;
            }
            counters[i] = 0;
            i += 1;
        }
    }
    out
}

/// [`build_witness_bounded`] with a default cap of 2^20 tuples per
/// relation.
pub fn build_witness(schema: &Arc<Schema>, sigma: &[NormalCind]) -> Result<Database, WitnessError> {
    build_witness_bounded(schema, sigma, 1 << 20)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;
    use crate::normalize::normalize_all;
    use crate::satisfy::satisfies_all;

    #[test]
    fn witness_for_figure_2_satisfies_sigma() {
        let schema = condep_model::fixtures::bank_schema();
        let sigma = normalize_all(&fixtures::figure_2());
        let db = build_witness(&schema, &sigma).expect("Theorem 3.2");
        assert!(!db.is_empty(), "the witness must be nonempty");
        assert!(satisfies_all(&db, &sigma), "the witness must satisfy Σ");
    }

    #[test]
    fn witness_for_empty_sigma_is_single_tuples() {
        let schema = fixtures::example_5_1_schema(false);
        let db = build_witness(&schema, &[]).unwrap();
        assert!(!db.is_empty());
        // One fresh value per infinite attribute ⇒ one tuple per relation.
        for (_, inst) in db.iter() {
            assert_eq!(inst.len(), 1);
        }
    }

    #[test]
    fn witness_for_example_5_1_and_5_4() {
        for (schema, cinds) in [
            {
                let s = fixtures::example_5_1_schema(true);
                let c = fixtures::example_5_1_cinds(&s);
                (s, c)
            },
            {
                let s = fixtures::example_5_4_schema();
                let c = fixtures::example_5_4_cinds(&s);
                (s, c)
            },
        ] {
            let db = build_witness(&schema, &cinds).expect("always consistent");
            assert!(!db.is_empty());
            assert!(satisfies_all(&db, &cinds));
        }
    }

    #[test]
    fn incompatible_domains_are_rejected() {
        // X attribute infinite, Y attribute finite: dom(A) ⊄ dom(B).
        let schema = std::sync::Arc::new(
            condep_model::Schema::builder()
                .relation("r", &[("a", Domain::string())])
                .relation("s", &[("b", Domain::finite_strs(&["x"]))])
                .finish(),
        );
        let cind = NormalCind::parse(&schema, "r", &["a"], &[], "s", &["b"], &[]).unwrap();
        assert!(!domains_compatible(&schema, &cind));
        assert!(matches!(
            build_witness(&schema, &[cind]),
            Err(WitnessError::IncompatibleDomains { .. })
        ));
    }

    #[test]
    fn constant_outside_domain_is_rejected() {
        let schema = std::sync::Arc::new(
            condep_model::Schema::builder()
                .relation("r", &[("a", Domain::finite_strs(&["x", "y"]))])
                .finish(),
        );
        // Pattern demands a = "z", which is not in the domain. Build the
        // CIND without `parse` validation on values.
        let rel = schema.rel_id("r").unwrap();
        let a = schema.relation(rel).unwrap().attr_id("a").unwrap();
        let cind = NormalCind::new(rel, rel, vec![], vec![], vec![(a, Value::str("z"))], vec![]);
        assert!(matches!(
            build_witness(&schema, &[cind]),
            Err(WitnessError::ConstantOutsideDomain { .. })
        ));
    }

    #[test]
    fn size_cap_is_enforced() {
        let schema = std::sync::Arc::new(
            condep_model::Schema::builder()
                .relation(
                    "r",
                    &[
                        ("a", Domain::finite_ints(10)),
                        ("b", Domain::finite_ints(10)),
                        ("c", Domain::finite_ints(10)),
                    ],
                )
                .finish(),
        );
        assert!(matches!(
            build_witness_bounded(&schema, &[], 100),
            Err(WitnessError::TooLarge { .. })
        ));
        assert!(build_witness_bounded(&schema, &[], 1000).is_ok());
    }

    #[test]
    fn flow_closure_shares_values_across_relations() {
        // r.a (infinite) flows into s.b (infinite): the fresh value of
        // r.a must appear in s.b's active domain, or the IND would fail.
        let schema = std::sync::Arc::new(
            condep_model::Schema::builder()
                .relation_str("r", &["a"])
                .relation_str("s", &["b"])
                .finish(),
        );
        let cind = NormalCind::parse(&schema, "r", &["a"], &[], "s", &["b"], &[]).unwrap();
        let db = build_witness(&schema, std::slice::from_ref(&cind)).unwrap();
        assert!(satisfies_all(&db, &[cind]));
    }

    #[test]
    fn domain_containment_cases() {
        use condep_model::BaseType;
        assert!(domain_contained(&Domain::string(), &Domain::string()));
        assert!(domain_contained(
            &Domain::finite_strs(&["a"]),
            &Domain::string()
        ));
        assert!(domain_contained(
            &Domain::finite_strs(&["a"]),
            &Domain::finite_strs(&["a", "b"])
        ));
        assert!(!domain_contained(
            &Domain::finite_strs(&["a", "c"]),
            &Domain::finite_strs(&["a", "b"])
        ));
        assert!(!domain_contained(
            &Domain::string(),
            &Domain::finite_strs(&["a"])
        ));
        assert!(!domain_contained(
            &Domain::integer(),
            &Domain::Infinite(BaseType::Str)
        ));
    }
}
