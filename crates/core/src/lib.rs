#![warn(missing_docs)]

//! # condep-core
//!
//! Conditional inclusion dependencies (CINDs) — the primary contribution
//! of *Bravo, Fan & Ma: Extending Dependencies with Conditions*
//! (VLDB 2007).
//!
//! A CIND `ψ = (R1[X; Xp] ⊆ R2[Y; Yp], Tp)` embeds a standard IND
//! `R1[X] ⊆ R2[Y]` in a pattern tableau: the inclusion applies only to
//! the `R1` tuples matching `tp[X, Xp]`, and the matching `R2` tuple must
//! additionally match `tp[Yp]`. Traditional INDs are the special case
//! with empty `Xp`/`Yp` and an all-wildcard tableau.
//!
//! This crate gives the full static analysis the paper develops:
//!
//! | Paper result | Module |
//! |---|---|
//! | Syntax & semantics (§2) | [`syntax`], [`satisfy`] |
//! | Normal form, Prop. 3.1 | [`normalize`] |
//! | Consistency, Thm. 3.2 (always consistent, constructive witness) | [`witness`] |
//! | Inference system `I` (CIND1–CIND8, Fig. 3), Thm. 3.3 | [`inference`] |
//! | Implication, Thms. 3.4/3.5 (EXPTIME / PSPACE) | [`implication`] |
//! | Violation detection (data cleaning; §8 "SQL-based techniques") | [`violations`] |
//! | Minimal cover (§8 future work) | [`cover`] |
//! | Fig. 2 fixtures ψ1–ψ6 and the running examples | [`fixtures`] |
//!
//! The interaction with CFDs (§§4–5: undecidability, heuristic
//! consistency checking) lives in `condep-chase` and
//! `condep-consistency`.

pub mod cover;
pub mod fixtures;
pub mod implication;
pub mod inference;
pub mod normalize;
pub mod satisfy;
pub mod syntax;
pub mod violations;
pub mod witness;

pub use normalize::normalize;
pub use syntax::{Cind, NormalCind};
pub use violations::{find_violations, CindDelta, CindViolation};
pub use witness::build_witness;
