//! The paper's CIND fixtures: Figure 2 (ψ1–ψ6) and the constraint sets
//! of Examples 4.2, 5.1 and 5.4.

use crate::syntax::{Cind, NormalCind};
use condep_model::fixtures::bank_schema;
use condep_model::{prow, Domain, Schema, Value};
use std::sync::Arc;

fn account_cind(branch: &str, target: &str, at: &str) -> Cind {
    let schema = bank_schema();
    let rel = format!("account_{branch}");
    let ab_owned = branch.to_uppercase();
    let ab = ab_owned.as_str();
    Cind::parse(
        &schema,
        &rel,
        &["an", "cn", "ca", "cp"],
        &["at"],
        target,
        &["an", "cn", "ca", "cp"],
        &["ab"],
        vec![prow![_, _, _, _, at, _, _, _, _, ab]],
    )
    .expect("fixture well-formed")
}

/// `ψ1` for the EDI branch: saving accounts migrate to `saving` with
/// `ab = EDI`.
pub fn psi1_edi() -> Cind {
    account_cind("edi", "saving", "saving")
}

/// `ψ1` for the NYC branch.
pub fn psi1_nyc() -> Cind {
    account_cind("nyc", "saving", "saving")
}

/// `ψ2` for the EDI branch: checking accounts migrate to `checking` with
/// `ab = EDI`.
pub fn psi2_edi() -> Cind {
    account_cind("edi", "checking", "checking")
}

/// `ψ2` for the NYC branch.
pub fn psi2_nyc() -> Cind {
    account_cind("nyc", "checking", "checking")
}

/// `ψ3 = (saving[ab; nil] ⊆ interest[ab; nil], {(_ || _)})` — a
/// traditional IND.
pub fn psi3() -> Cind {
    let schema = bank_schema();
    Cind::parse(
        &schema,
        "saving",
        &["ab"],
        &[],
        "interest",
        &["ab"],
        &[],
        vec![prow![_, _]],
    )
    .expect("fixture well-formed")
}

/// `ψ4 = (checking[ab; nil] ⊆ interest[ab; nil], {(_ || _)})`.
pub fn psi4() -> Cind {
    let schema = bank_schema();
    Cind::parse(
        &schema,
        "checking",
        &["ab"],
        &[],
        "interest",
        &["ab"],
        &[],
        vec![prow![_, _]],
    )
    .expect("fixture well-formed")
}

/// `ψ5 = (saving[nil; ab] ⊆ interest[nil; ab, at, ct, rt], T5)` with the
/// two rows `(EDI ‖ EDI, saving, UK, 4.5%)` and `(NYC ‖ NYC, saving, US, 4%)`.
pub fn psi5() -> Cind {
    let schema = bank_schema();
    Cind::parse(
        &schema,
        "saving",
        &[],
        &["ab"],
        "interest",
        &[],
        &["ab", "at", "ct", "rt"],
        vec![
            prow!["EDI", "EDI", "saving", "UK", "4.5%"],
            prow!["NYC", "NYC", "saving", "US", "4%"],
        ],
    )
    .expect("fixture well-formed")
}

/// `ψ6 = (checking[nil; ab] ⊆ interest[nil; ab, at, ct, rt], T6)` with
/// rows `(EDI ‖ EDI, checking, UK, 1.5%)` and `(NYC ‖ NYC, checking, US, 1%)`.
pub fn psi6() -> Cind {
    let schema = bank_schema();
    Cind::parse(
        &schema,
        "checking",
        &[],
        &["ab"],
        "interest",
        &[],
        &["ab", "at", "ct", "rt"],
        vec![
            prow!["EDI", "EDI", "checking", "UK", "1.5%"],
            prow!["NYC", "NYC", "checking", "US", "1%"],
        ],
    )
    .expect("fixture well-formed")
}

/// All of Figure 2 (with ψ1/ψ2 instantiated for both branches).
pub fn figure_2() -> Vec<Cind> {
    vec![
        psi1_edi(),
        psi1_nyc(),
        psi2_edi(),
        psi2_nyc(),
        psi3(),
        psi4(),
        psi5(),
        psi6(),
    ]
}

/// Example 3.3's goal CIND for the EDI branch:
/// `ψ = (account_edi[at; nil] ⊆ interest[at; nil], (_ || _))`.
pub fn example_3_3_goal() -> Cind {
    let schema = bank_schema();
    Cind::parse(
        &schema,
        "account_edi",
        &["at"],
        &[],
        "interest",
        &["at"],
        &[],
        vec![prow![_, _]],
    )
    .expect("fixture well-formed")
}

/// Example 4.2: schema `R(A, B)` with
/// `φ = (R: A → B, (_ ‖ a))` and `ψ = (R[nil; B] ⊆ R[nil; B], (_ ‖ b))`
/// — wait: the paper's ψ has pattern `(b ‖ b)`? Its statement reads
/// `ψ = (R[nil; B] ⊆ R[nil; B], (_ || b))`, i.e. *any* nonempty `R`
/// must contain a tuple with `B = b`, while φ forces `B = a` everywhere.
/// We encode ψ with an empty `Xp` (always triggered) and `Yp = {B = b}`.
///
/// Returns `(schema, cfd-as-(attr,const) forcing, cind)` where the CFD is
/// expressed in `condep-cfd` terms by the caller; here we only provide
/// schema and the CIND. See `condep-consistency` tests for the combined
/// conflict.
pub fn example_4_2_cind() -> (Arc<Schema>, NormalCind) {
    let schema = Arc::new(Schema::builder().relation_str("r", &["a", "b"]).finish());
    let cind = NormalCind::parse(&schema, "r", &[], &[], "r", &[], &[("b", Value::str("b"))])
        .expect("fixture well-formed");
    (schema, cind)
}

/// Example 5.1 / 5.2 schema: `R1(E, F)`, `R2(G, H)`; all attributes
/// infinite strings unless `finite_h` asks for `dom(H) = {0, 1}`.
pub fn example_5_1_schema(finite_h: bool) -> Arc<Schema> {
    let h_dom = if finite_h {
        Domain::finite_strs(&["0", "1"])
    } else {
        Domain::string()
    };
    Arc::new(
        Schema::builder()
            .relation_str("r1", &["e", "f"])
            .relation("r2", &[("g", Domain::string()), ("h", h_dom)])
            .finish(),
    )
}

/// Example 5.1 CINDs:
/// `ψ1 = (R1[E; nil] ⊆ R2[G; nil], (_ ‖ _))`,
/// `ψ2 = (R2[nil; H] ⊆ R1[nil; F], (0 ‖ a))`,
/// `ψ3 = (R2[nil; H] ⊆ R1[nil; F], (1 ‖ b))`.
pub fn example_5_1_cinds(schema: &Schema) -> Vec<NormalCind> {
    vec![
        NormalCind::parse(schema, "r1", &["e"], &[], "r2", &["g"], &[])
            .expect("fixture well-formed"),
        NormalCind::parse(
            schema,
            "r2",
            &[],
            &[("h", Value::str("0"))],
            "r1",
            &[],
            &[("f", Value::str("a"))],
        )
        .expect("fixture well-formed"),
        NormalCind::parse(
            schema,
            "r2",
            &[],
            &[("h", Value::str("1"))],
            "r1",
            &[],
            &[("f", Value::str("b"))],
        )
        .expect("fixture well-formed"),
    ]
}

/// Example 5.4 schema: `R1(E,F)`, `R2(G,H)`, `R3(A,B)`, `R4(C,D)`,
/// `R5(I,J)`, with `finattr = {H}` and `dom(H) = bool`.
pub fn example_5_4_schema() -> Arc<Schema> {
    Arc::new(
        Schema::builder()
            .relation_str("r1", &["e", "f"])
            .relation("r2", &[("g", Domain::string()), ("h", Domain::boolean())])
            .relation_str("r3", &["a", "b"])
            .relation_str("r4", &["c", "d"])
            .relation_str("r5", &["i", "j"])
            .finish(),
    )
}

/// Example 5.4 CINDs ψ1–ψ5 (with ψ2/ψ3 adapted to `dom(H) = bool`):
/// `ψ1 = (R1[E; nil] ⊆ R2[G; nil])`,
/// `ψ2 = (R2[nil; H] ⊆ R1[nil; F], (false ‖ a))`,
/// `ψ3 = (R2[nil; H] ⊆ R1[nil; F], (true ‖ b))`,
/// `ψ4 = (R3[A; B] ⊆ R4[C; nil], (_ ; b ‖ _))`,
/// `ψ5 = (R5[nil; J] ⊆ R2[nil; G], (c ‖ d))`.
pub fn example_5_4_cinds(schema: &Schema) -> Vec<NormalCind> {
    vec![
        NormalCind::parse(schema, "r1", &["e"], &[], "r2", &["g"], &[])
            .expect("fixture well-formed"),
        NormalCind::parse(
            schema,
            "r2",
            &[],
            &[("h", Value::bool(false))],
            "r1",
            &[],
            &[("f", Value::str("a"))],
        )
        .expect("fixture well-formed"),
        NormalCind::parse(
            schema,
            "r2",
            &[],
            &[("h", Value::bool(true))],
            "r1",
            &[],
            &[("f", Value::str("b"))],
        )
        .expect("fixture well-formed"),
        NormalCind::parse(
            schema,
            "r3",
            &["a"],
            &[("b", Value::str("b"))],
            "r4",
            &["c"],
            &[],
        )
        .expect("fixture well-formed"),
        NormalCind::parse(
            schema,
            "r5",
            &[],
            &[("j", Value::str("c"))],
            "r2",
            &[],
            &[("g", Value::str("d"))],
        )
        .expect("fixture well-formed"),
    ]
}

/// Example 5.5's variant `ψ4' = (R3[A; nil] ⊆ R4[C; nil], (_ ‖ _))` — an
/// unconditional IND that cannot be "switched off" by non-triggering
/// CFDs.
pub fn example_5_5_psi4_prime(schema: &Schema) -> NormalCind {
    NormalCind::parse(schema, "r3", &["a"], &[], "r4", &["c"], &[]).expect("fixture well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_2_has_eight_cinds() {
        assert_eq!(figure_2().len(), 8);
    }

    #[test]
    fn psi5_rows_match_paper() {
        let psi5 = psi5();
        assert_eq!(psi5.tableau().len(), 2);
        assert!(psi5.x().is_empty());
        assert_eq!(psi5.xp().len(), 1);
        assert_eq!(psi5.yp().len(), 4);
    }

    #[test]
    fn example_5_4_has_five_cinds_on_five_relations() {
        let schema = example_5_4_schema();
        let cinds = example_5_4_cinds(&schema);
        assert_eq!(cinds.len(), 5);
        assert_eq!(schema.len(), 5);
        // H is the only finite attribute.
        let r2 = schema.rel_id("r2").unwrap();
        assert_eq!(schema.relation(r2).unwrap().finite_attrs().len(), 1);
    }

    #[test]
    fn example_4_2_cind_triggers_on_everything() {
        use condep_model::tuple;
        let (_, cind) = example_4_2_cind();
        assert!(cind.triggers(&tuple!["anything", "whatever"]));
    }
}
