//! Violation detection for CINDs.
//!
//! Data cleaning needs the offending tuples, not just a boolean
//! (Example 1.2: `t10` is the dirty tuple ψ6 flags). Two detectors:
//!
//! * [`find_violations`] — hash anti-join over the normal form;
//! * [`violation_plan`] — compiles a normal CIND to a [`Plan`]
//!   (`AntiJoin(σ_{tp[Xp]}(R1), σ_{tp[Yp]}(R2), X = Y)`), realizing the
//!   "SQL-based techniques for detecting CIND violations" the paper
//!   leaves as future work (Section 8).

use crate::syntax::NormalCind;
use condep_model::{Database, Tuple};
use condep_query::{ops, Plan, Predicate};

/// A CIND violation: a triggered source tuple with no matching target.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct CindViolation {
    /// Dense position of the violating tuple in the source relation.
    pub tuple: usize,
    /// The values `t1[X]` that found no partner `t2[Y]`.
    pub key: Vec<condep_model::Value>,
}

impl CindViolation {
    /// The **conflicting cells** of the violation, as `(position, attr)`
    /// pairs over the source relation: the `X` cells of the orphaned
    /// tuple whose values found no partner `t2[Y]`. A repair tool that
    /// neither inserts the missing target nor deletes the orphan could
    /// edit these cells toward an existing target key.
    pub fn cells(&self, x: &[condep_model::AttrId]) -> Vec<(usize, condep_model::AttrId)> {
        x.iter().map(|a| (self.tuple, *a)).collect()
    }
}

/// What one database mutation (insert / delete / update) did to the CIND
/// violations of a compiled suite, as `(constraint index, violation)`
/// pairs — the CIND half of a streamed delta report. Unlike CFDs, an
/// **insert** can resolve CIND violations too: an arriving target tuple
/// supplies the partner every orphaned source tuple with its key was
/// missing.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CindDelta {
    /// Violations the mutation created (post-mutation tuple positions).
    pub introduced: Vec<(usize, CindViolation)>,
    /// Violations the mutation removed (pre-mutation tuple positions).
    pub resolved: Vec<(usize, CindViolation)>,
}

impl CindDelta {
    /// Did the mutation change the violation set at all?
    pub fn is_quiet(&self) -> bool {
        self.introduced.is_empty() && self.resolved.is_empty()
    }
}

/// Finds all violations of a normal-form CIND in `db`.
pub fn find_violations(db: &Database, cind: &NormalCind) -> Vec<CindViolation> {
    let source = db.relation(cind.lhs_rel());
    let target = db.relation(cind.rhs_rel());
    let idx = condep_query::HashIndex::build_filtered(target, cind.y(), |t2| cind.rhs_matches(t2));
    let mut out = Vec::new();
    for (pos, t1) in source.iter().enumerate() {
        if !cind.triggers(t1) {
            continue;
        }
        // Borrowed-key probe; only a confirmed violation clones the key.
        if !idx.contains_tuple_key(t1, cind.x()) {
            out.push(CindViolation {
                tuple: pos,
                key: t1.project(cind.x()),
            });
        }
    }
    out
}

/// Compiles the violation query of a normal CIND into a logical plan.
///
/// The returned plan yields exactly the violating source tuples:
/// `σ_{tp[Xp]}(R1) ⋉̸_{X=Y} σ_{tp[Yp]}(R2)` (anti-join).
pub fn violation_plan(cind: &NormalCind) -> Plan {
    let lhs_filter = Predicate::and(
        cind.xp()
            .iter()
            .map(|(a, v)| Predicate::AttrEq(*a, v.clone())),
    );
    let rhs_filter = Predicate::and(
        cind.yp()
            .iter()
            .map(|(a, v)| Predicate::AttrEq(*a, v.clone())),
    );
    Plan::scan(cind.lhs_rel()).filter(lhs_filter).anti_join(
        Plan::scan(cind.rhs_rel()).filter(rhs_filter),
        cind.x().to_vec(),
        cind.y().to_vec(),
    )
}

/// Executes [`violation_plan`] and returns the violating tuples — the
/// plan-based counterpart of [`find_violations`], used to cross-check
/// the two code paths.
pub fn find_violations_via_plan(db: &Database, cind: &NormalCind) -> Vec<Tuple> {
    ops::distinct(violation_plan(cind).execute(db))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;
    use crate::normalize::normalize;
    use condep_model::fixtures::{bank_database, clean_bank_database};
    use condep_model::tuple;

    #[test]
    fn t10_is_the_psi6_violation() {
        let db = bank_database();
        let normal = normalize(&fixtures::psi6());
        // Row 0 is the EDI row of T6.
        let violations = find_violations(&db, &normal[0]);
        assert_eq!(violations.len(), 1);
        let checking = db.schema().rel_id("checking").unwrap();
        let t = db.relation(checking).get(violations[0].tuple).unwrap();
        assert_eq!(
            t,
            &tuple!["02", "I. Stark", "EDI, EH1 4FE", "131-6693423", "EDI"],
            "the violating tuple must be t10"
        );
        // The NYC row is satisfied.
        assert!(find_violations(&db, &normal[1]).is_empty());
    }

    #[test]
    fn plan_detector_agrees_with_direct_detector() {
        let db = bank_database();
        for psi in fixtures::figure_2() {
            for n in normalize(&psi) {
                let direct = find_violations(&db, &n);
                let via_plan = find_violations_via_plan(&db, &n);
                assert_eq!(
                    direct.len(),
                    via_plan.len(),
                    "plan and direct detectors must agree on {psi:?}"
                );
                let source = db.relation(n.lhs_rel());
                for v in &direct {
                    let t = source.get(v.tuple).unwrap();
                    assert!(via_plan.contains(t));
                }
            }
        }
    }

    #[test]
    fn clean_database_has_no_violations() {
        let db = clean_bank_database();
        for psi in fixtures::figure_2() {
            for n in normalize(&psi) {
                assert!(find_violations(&db, &n).is_empty());
                assert!(find_violations_via_plan(&db, &n).is_empty());
            }
        }
    }

    #[test]
    fn cells_name_the_orphans_x_projection() {
        use condep_model::AttrId;
        let v = CindViolation {
            tuple: 4,
            key: vec![condep_model::Value::str("k")],
        };
        assert_eq!(
            v.cells(&[AttrId(1), AttrId(3)]),
            vec![(4, AttrId(1)), (4, AttrId(3))]
        );
    }

    #[test]
    fn violation_key_reports_the_missing_join_values() {
        let db = bank_database();
        let schema = db.schema();
        // An IND that cannot be satisfied: saving[an] ⊆ interest[ab].
        let n = crate::syntax::NormalCind::parse(
            schema,
            "saving",
            &["an"],
            &[],
            "interest",
            &["ab"],
            &[],
        )
        .unwrap();
        let vs = find_violations(&db, &n);
        assert_eq!(vs.len(), 2);
        assert_eq!(vs[0].key, vec![condep_model::Value::str("01")]);
    }
}
