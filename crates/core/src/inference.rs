//! The inference system `I` for CINDs — Figure 3 and Theorem 3.3.
//!
//! Eight rules, each implemented as a checked constructor from premises
//! to conclusion. CIND1–CIND3 lift the classical IND axioms (reflexivity,
//! projection-permutation, transitivity) to patterns; CIND4–CIND6
//! manipulate the pattern parts (instantiation, LHS weakening, RHS
//! relaxation); CIND7–CIND8 perform case analysis over finite domains —
//! they are what pushes implication from PSPACE to EXPTIME, and are only
//! sound because a finite domain can be *covered* by finitely many
//! pattern constants.
//!
//! A [`Proof`] records a derivation `Σ ⊢I ψ` step by step, replaying
//! Example 3.4 verbatim; soundness of every rule is exercised by unit
//! tests here and property tests in the workspace test suite.

use crate::syntax::NormalCind;
use condep_model::{AttrId, RelId, Schema, Value};
use std::collections::BTreeSet;
use std::fmt;

/// Why a rule application was rejected.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum InferenceError {
    /// Attribute list for CIND1 contains duplicates.
    DuplicateAttrs,
    /// An index is out of range for the premise.
    IndexOutOfRange(usize),
    /// CIND3's middle parts do not line up.
    TransitivityMismatch(String),
    /// A value lies outside the attribute's domain.
    ValueOutsideDomain(String),
    /// CIND5's new attribute already occurs in `X ∪ Xp`.
    AttrAlreadyConstrained,
    /// CIND7/CIND8 premises are not identical up to the case-split pair.
    PremisesNotParallel(String),
    /// CIND7/CIND8 premise values do not cover the finite domain.
    DomainNotCovered,
    /// CIND7/CIND8 require a finite-domain attribute.
    NotFiniteDomain,
    /// Unknown relation or attribute.
    BadReference(String),
}

impl fmt::Display for InferenceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InferenceError::DuplicateAttrs => write!(f, "CIND1 needs distinct attributes"),
            InferenceError::IndexOutOfRange(i) => write!(f, "index {i} out of range"),
            InferenceError::TransitivityMismatch(m) => write!(f, "CIND3 mismatch: {m}"),
            InferenceError::ValueOutsideDomain(v) => {
                write!(f, "value {v} outside the attribute domain")
            }
            InferenceError::AttrAlreadyConstrained => {
                write!(f, "attribute already occurs in X ∪ Xp")
            }
            InferenceError::PremisesNotParallel(m) => {
                write!(f, "premises differ beyond the case split: {m}")
            }
            InferenceError::DomainNotCovered => {
                write!(f, "premise values do not cover the finite domain")
            }
            InferenceError::NotFiniteDomain => {
                write!(f, "case-split attribute must have a finite domain")
            }
            InferenceError::BadReference(m) => write!(f, "bad reference: {m}"),
        }
    }
}

impl std::error::Error for InferenceError {}

type Result<T> = std::result::Result<T, InferenceError>;

/// **CIND1** (reflexivity): `(R[X; nil] ⊆ R[X; nil], (_, ..., _))` for any
/// sequence `X` of distinct attributes of `R`.
pub fn cind1(schema: &Schema, rel: RelId, x: Vec<AttrId>) -> Result<NormalCind> {
    let rs = schema
        .relation(rel)
        .map_err(|e| InferenceError::BadReference(e.to_string()))?;
    let mut seen = BTreeSet::new();
    for a in &x {
        if a.index() >= rs.arity() {
            return Err(InferenceError::IndexOutOfRange(a.index()));
        }
        if !seen.insert(*a) {
            return Err(InferenceError::DuplicateAttrs);
        }
    }
    Ok(NormalCind::new(rel, rel, x.clone(), x, vec![], vec![]))
}

/// **CIND2** (projection & permutation): keep the matched pairs at the
/// given positions, in the given order (repeats allowed, as the paper's
/// "sequence in {1..m}"). Pattern parts `Xp`/`Yp` may be permuted, which
/// is a representation no-op here (they are stored as sets of pairs).
pub fn cind2(psi: &NormalCind, keep: &[usize]) -> Result<NormalCind> {
    for &i in keep {
        if i >= psi.x().len() {
            return Err(InferenceError::IndexOutOfRange(i));
        }
    }
    let x = keep.iter().map(|&i| psi.x()[i]).collect();
    let y = keep.iter().map(|&i| psi.y()[i]).collect();
    Ok(NormalCind::new(
        psi.lhs_rel(),
        psi.rhs_rel(),
        x,
        y,
        psi.xp().to_vec(),
        psi.yp().to_vec(),
    ))
}

/// **CIND3** (transitivity): from `(Ra[X; Xp] ⊆ Rb[Y; Yp], t1)` and
/// `(Rb[Y; Yp] ⊆ Rc[Z; Zp], t2)` with `t1[Yp] = t2[Yp]`, conclude
/// `(Ra[X; Xp] ⊆ Rc[Z; Zp], t3)`.
pub fn cind3(psi1: &NormalCind, psi2: &NormalCind) -> Result<NormalCind> {
    if psi1.rhs_rel() != psi2.lhs_rel() {
        return Err(InferenceError::TransitivityMismatch(
            "middle relation differs".into(),
        ));
    }
    if psi1.y() != psi2.x() {
        return Err(InferenceError::TransitivityMismatch(
            "Y of the first premise must be the X of the second".into(),
        ));
    }
    // In normal form t1[Y] = t2[Y] is automatic (all wildcards); the
    // pattern condition is set equality of the Yp/Xp constants.
    let yp1: BTreeSet<(AttrId, Value)> = psi1.yp().iter().cloned().collect();
    let xp2: BTreeSet<(AttrId, Value)> = psi2.xp().iter().cloned().collect();
    if yp1 != xp2 {
        return Err(InferenceError::TransitivityMismatch(
            "t1[Yp] must equal t2[Yp] (as the second premise's LHS pattern)".into(),
        ));
    }
    Ok(NormalCind::new(
        psi1.lhs_rel(),
        psi2.rhs_rel(),
        psi1.x().to_vec(),
        psi2.y().to_vec(),
        psi1.xp().to_vec(),
        psi2.yp().to_vec(),
    ))
}

/// **CIND4** (instantiation): pick a matched pair `(Aj, Bj)` and a
/// constant `c ∈ dom(Aj)`; move the pair into the pattern parts with
/// value `c`.
pub fn cind4(schema: &Schema, psi: &NormalCind, j: usize, c: Value) -> Result<NormalCind> {
    if j >= psi.x().len() {
        return Err(InferenceError::IndexOutOfRange(j));
    }
    let aj = psi.x()[j];
    let bj = psi.y()[j];
    let rs = schema
        .relation(psi.lhs_rel())
        .map_err(|e| InferenceError::BadReference(e.to_string()))?;
    let dom = rs
        .attribute(aj)
        .map_err(|e| InferenceError::BadReference(e.to_string()))?
        .domain();
    if !dom.contains(&c) {
        return Err(InferenceError::ValueOutsideDomain(c.to_string()));
    }
    let mut x = psi.x().to_vec();
    let mut y = psi.y().to_vec();
    x.remove(j);
    y.remove(j);
    let mut xp = psi.xp().to_vec();
    let mut yp = psi.yp().to_vec();
    xp.push((aj, c.clone()));
    yp.push((bj, c));
    Ok(NormalCind::new(psi.lhs_rel(), psi.rhs_rel(), x, y, xp, yp))
}

/// **CIND5** (LHS weakening): add a fresh pattern condition `A = c` on
/// the source side, for `A ∈ attr(Ra) − (X ∪ Xp)` and `c ∈ dom(A)`.
pub fn cind5(schema: &Schema, psi: &NormalCind, a: AttrId, c: Value) -> Result<NormalCind> {
    if psi.x().contains(&a) || psi.xp().iter().any(|(b, _)| *b == a) {
        return Err(InferenceError::AttrAlreadyConstrained);
    }
    let rs = schema
        .relation(psi.lhs_rel())
        .map_err(|e| InferenceError::BadReference(e.to_string()))?;
    let dom = rs
        .attribute(a)
        .map_err(|e| InferenceError::BadReference(e.to_string()))?
        .domain();
    if !dom.contains(&c) {
        return Err(InferenceError::ValueOutsideDomain(c.to_string()));
    }
    let mut xp = psi.xp().to_vec();
    xp.push((a, c));
    Ok(NormalCind::new(
        psi.lhs_rel(),
        psi.rhs_rel(),
        psi.x().to_vec(),
        psi.y().to_vec(),
        xp,
        psi.yp().to_vec(),
    ))
}

/// **CIND6** (RHS relaxation): keep only the `Yp` conditions at the given
/// positions (`Y'p ⊆ Yp`).
pub fn cind6(psi: &NormalCind, keep_yp: &[usize]) -> Result<NormalCind> {
    let mut yp = Vec::with_capacity(keep_yp.len());
    let mut seen = BTreeSet::new();
    for &i in keep_yp {
        if i >= psi.yp().len() {
            return Err(InferenceError::IndexOutOfRange(i));
        }
        if seen.insert(i) {
            yp.push(psi.yp()[i].clone());
        }
    }
    Ok(NormalCind::new(
        psi.lhs_rel(),
        psi.rhs_rel(),
        psi.x().to_vec(),
        psi.y().to_vec(),
        psi.xp().to_vec(),
        yp,
    ))
}

/// Checks that two normal CINDs are identical except for the `Xp` entry
/// on `a` (and, when `b` is given, the `Yp` entry on `b`); returns the
/// case-split values `(tp[a], tp[b])`.
fn split_values(psi: &NormalCind, a: AttrId, b: Option<AttrId>) -> Result<(Value, Option<Value>)> {
    let va = psi
        .xp()
        .iter()
        .find(|(x, _)| *x == a)
        .map(|(_, v)| v.clone())
        .ok_or_else(|| InferenceError::PremisesNotParallel(format!("no Xp entry on {a}")))?;
    let vb = match b {
        None => None,
        Some(b) => Some(
            psi.yp()
                .iter()
                .find(|(y, _)| *y == b)
                .map(|(_, v)| v.clone())
                .ok_or_else(|| {
                    InferenceError::PremisesNotParallel(format!("no Yp entry on {b}"))
                })?,
        ),
    };
    Ok((va, vb))
}

/// The premise with its case-split entries removed, for parallelism
/// comparison.
fn strip(psi: &NormalCind, a: AttrId, b: Option<AttrId>) -> NormalCind {
    let xp = psi.xp().iter().filter(|(x, _)| *x != a).cloned().collect();
    let yp = psi
        .yp()
        .iter()
        .filter(|(y, _)| Some(*y) != b)
        .cloned()
        .collect();
    NormalCind::new(
        psi.lhs_rel(),
        psi.rhs_rel(),
        psi.x().to_vec(),
        psi.y().to_vec(),
        xp,
        yp,
    )
}

fn check_cover(schema: &Schema, rel: RelId, a: AttrId, values: &BTreeSet<Value>) -> Result<()> {
    let rs = schema
        .relation(rel)
        .map_err(|e| InferenceError::BadReference(e.to_string()))?;
    let dom = rs
        .attribute(a)
        .map_err(|e| InferenceError::BadReference(e.to_string()))?
        .domain();
    let Some(domain_values) = dom.values() else {
        return Err(InferenceError::NotFiniteDomain);
    };
    if domain_values.iter().all(|v| values.contains(v)) {
        Ok(())
    } else {
        Err(InferenceError::DomainNotCovered)
    }
}

/// **CIND7** (finite-domain LHS case elimination): if the premises agree
/// everywhere except the `Xp` value of the finite-domain attribute `A`,
/// and those values cover `dom(A)`, then the condition on `A` can be
/// dropped altogether.
pub fn cind7(schema: &Schema, premises: &[NormalCind], a: AttrId) -> Result<NormalCind> {
    let first = premises
        .first()
        .ok_or_else(|| InferenceError::PremisesNotParallel("no premises".into()))?;
    let base = strip(first, a, None);
    let mut values = BTreeSet::new();
    for p in premises {
        let (va, _) = split_values(p, a, None)?;
        values.insert(va);
        if strip(p, a, None) != base {
            return Err(InferenceError::PremisesNotParallel(
                "premises differ beyond tp[A]".into(),
            ));
        }
    }
    check_cover(schema, first.lhs_rel(), a, &values)?;
    Ok(base)
}

/// **CIND8** (finite-domain un-instantiation, the inverse of CIND4): if
/// the premises agree everywhere except matching `Xp`/`Yp` entries
/// `A = v_i` / `B = v_i` with `t_i[A] = t_i[B]`, and the `v_i` cover
/// `dom(A)`, then `(A, B)` can be restored as a matched pair:
/// `(Ra[X·A; Xp] ⊆ Rb[Y·B; Yp], tp)`.
pub fn cind8(schema: &Schema, premises: &[NormalCind], a: AttrId, b: AttrId) -> Result<NormalCind> {
    let first = premises
        .first()
        .ok_or_else(|| InferenceError::PremisesNotParallel("no premises".into()))?;
    let base = strip(first, a, Some(b));
    let mut values = BTreeSet::new();
    for p in premises {
        let (va, vb) = split_values(p, a, Some(b))?;
        if Some(&va) != vb.as_ref() {
            return Err(InferenceError::PremisesNotParallel(
                "t_i[A] must equal t_i[B]".into(),
            ));
        }
        values.insert(va);
        if strip(p, a, Some(b)) != base {
            return Err(InferenceError::PremisesNotParallel(
                "premises differ beyond the (A, B) pair".into(),
            ));
        }
    }
    check_cover(schema, first.lhs_rel(), a, &values)?;
    let mut x = base.x().to_vec();
    let mut y = base.y().to_vec();
    x.push(a);
    y.push(b);
    Ok(NormalCind::new(
        base.lhs_rel(),
        base.rhs_rel(),
        x,
        y,
        base.xp().to_vec(),
        base.yp().to_vec(),
    ))
}

/// The rule used at a proof step.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Justification {
    /// Member of Σ.
    Axiom,
    /// CIND1 with no premises.
    Cind1,
    /// CIND2 applied to a prior step.
    Cind2 {
        /// Premise step index.
        from: usize,
    },
    /// CIND3 applied to two prior steps.
    Cind3 {
        /// Premise step indices.
        from: (usize, usize),
    },
    /// CIND4 applied to a prior step.
    Cind4 {
        /// Premise step index.
        from: usize,
    },
    /// CIND5 applied to a prior step.
    Cind5 {
        /// Premise step index.
        from: usize,
    },
    /// CIND6 applied to a prior step.
    Cind6 {
        /// Premise step index.
        from: usize,
    },
    /// CIND7 applied to prior steps.
    Cind7 {
        /// Premise step indices.
        from: Vec<usize>,
    },
    /// CIND8 applied to prior steps.
    Cind8 {
        /// Premise step indices.
        from: Vec<usize>,
    },
}

impl fmt::Display for Justification {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Justification::Axiom => write!(f, "axiom"),
            Justification::Cind1 => write!(f, "CIND1"),
            Justification::Cind2 { from } => write!(f, "CIND2 on ({})", from + 1),
            Justification::Cind3 { from } => {
                write!(f, "CIND3 on ({}),({})", from.0 + 1, from.1 + 1)
            }
            Justification::Cind4 { from } => write!(f, "CIND4 on ({})", from + 1),
            Justification::Cind5 { from } => write!(f, "CIND5 on ({})", from + 1),
            Justification::Cind6 { from } => write!(f, "CIND6 on ({})", from + 1),
            Justification::Cind7 { from } => {
                write!(
                    f,
                    "CIND7 on {:?}",
                    from.iter().map(|i| i + 1).collect::<Vec<_>>()
                )
            }
            Justification::Cind8 { from } => {
                write!(
                    f,
                    "CIND8 on {:?}",
                    from.iter().map(|i| i + 1).collect::<Vec<_>>()
                )
            }
        }
    }
}

/// One step of a derivation: a CIND and how it was obtained.
#[derive(Clone, Debug)]
pub struct ProofStep {
    /// The derived (or assumed) CIND.
    pub cind: NormalCind,
    /// The justification.
    pub rule: Justification,
}

/// A derivation `Σ ⊢I ψ`: a checked sequence of rule applications.
///
/// Rules are applied through the builder methods, which re-verify every
/// precondition, so a constructed `Proof` is correct by construction.
#[derive(Clone, Debug, Default)]
pub struct Proof {
    steps: Vec<ProofStep>,
}

impl Proof {
    /// An empty proof.
    pub fn new() -> Self {
        Proof::default()
    }

    /// The steps so far.
    pub fn steps(&self) -> &[ProofStep] {
        &self.steps
    }

    /// The final conclusion, if any step exists.
    pub fn conclusion(&self) -> Option<&NormalCind> {
        self.steps.last().map(|s| &s.cind)
    }

    fn push(&mut self, cind: NormalCind, rule: Justification) -> usize {
        self.steps.push(ProofStep { cind, rule });
        self.steps.len() - 1
    }

    fn get(&self, i: usize) -> Result<&NormalCind> {
        self.steps
            .get(i)
            .map(|s| &s.cind)
            .ok_or(InferenceError::IndexOutOfRange(i))
    }

    /// Assumes a member of Σ.
    pub fn axiom(&mut self, psi: NormalCind) -> usize {
        self.push(psi, Justification::Axiom)
    }

    /// Applies CIND1.
    pub fn cind1(&mut self, schema: &Schema, rel: RelId, x: Vec<AttrId>) -> Result<usize> {
        let c = cind1(schema, rel, x)?;
        Ok(self.push(c, Justification::Cind1))
    }

    /// Applies CIND2 to step `i`.
    pub fn cind2(&mut self, i: usize, keep: &[usize]) -> Result<usize> {
        let c = cind2(self.get(i)?, keep)?;
        Ok(self.push(c, Justification::Cind2 { from: i }))
    }

    /// Applies CIND3 to steps `i` and `j`.
    pub fn cind3(&mut self, i: usize, j: usize) -> Result<usize> {
        let c = cind3(self.get(i)?, self.get(j)?)?;
        Ok(self.push(c, Justification::Cind3 { from: (i, j) }))
    }

    /// Applies CIND4 to step `i`.
    pub fn cind4(&mut self, schema: &Schema, i: usize, j: usize, c: Value) -> Result<usize> {
        let d = cind4(schema, self.get(i)?, j, c)?;
        Ok(self.push(d, Justification::Cind4 { from: i }))
    }

    /// Applies CIND5 to step `i`.
    pub fn cind5(&mut self, schema: &Schema, i: usize, a: AttrId, c: Value) -> Result<usize> {
        let d = cind5(schema, self.get(i)?, a, c)?;
        Ok(self.push(d, Justification::Cind5 { from: i }))
    }

    /// Applies CIND6 to step `i`.
    pub fn cind6(&mut self, i: usize, keep_yp: &[usize]) -> Result<usize> {
        let c = cind6(self.get(i)?, keep_yp)?;
        Ok(self.push(c, Justification::Cind6 { from: i }))
    }

    /// Applies CIND7 to the given steps.
    pub fn cind7(&mut self, schema: &Schema, from: &[usize], a: AttrId) -> Result<usize> {
        let premises: Vec<NormalCind> = from
            .iter()
            .map(|&i| self.get(i).cloned())
            .collect::<Result<_>>()?;
        let c = cind7(schema, &premises, a)?;
        Ok(self.push(
            c,
            Justification::Cind7 {
                from: from.to_vec(),
            },
        ))
    }

    /// Applies CIND8 to the given steps.
    pub fn cind8(
        &mut self,
        schema: &Schema,
        from: &[usize],
        a: AttrId,
        b: AttrId,
    ) -> Result<usize> {
        let premises: Vec<NormalCind> = from
            .iter()
            .map(|&i| self.get(i).cloned())
            .collect::<Result<_>>()?;
        let c = cind8(schema, &premises, a, b)?;
        Ok(self.push(
            c,
            Justification::Cind8 {
                from: from.to_vec(),
            },
        ))
    }

    /// Soundness spot-check (Theorem 3.3, soundness direction): on a
    /// database satisfying every axiom step, every derived step must hold
    /// as well. Returns the index of the first failing step, if any.
    pub fn check_soundness(&self, db: &condep_model::Database) -> Option<usize> {
        use crate::satisfy::satisfies_normal;
        let axioms_hold = self
            .steps
            .iter()
            .filter(|s| s.rule == Justification::Axiom)
            .all(|s| satisfies_normal(db, &s.cind));
        if !axioms_hold {
            return None; // premise of the soundness statement not met
        }
        self.steps
            .iter()
            .position(|s| !satisfies_normal(db, &s.cind))
    }

    /// Renders the proof with names resolved against `schema`.
    pub fn display<'a>(&'a self, schema: &'a Schema) -> impl fmt::Display + 'a {
        ProofDisplay {
            proof: self,
            schema,
        }
    }
}

struct ProofDisplay<'a> {
    proof: &'a Proof,
    schema: &'a Schema,
}

impl fmt::Display for ProofDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, step) in self.proof.steps.iter().enumerate() {
            writeln!(
                f,
                "({}) {}    [{}]",
                i + 1,
                step.cind.display(self.schema),
                step.rule
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;
    use crate::normalize::normalize;
    use condep_model::fixtures::bank_schema;

    fn attr(schema: &Schema, rel: &str, name: &str) -> AttrId {
        schema
            .relation(schema.rel_id(rel).unwrap())
            .unwrap()
            .attr_id(name)
            .unwrap()
    }

    /// Example 3.4: Σ ⊢I ψ with ψ = (account_edi[at; nil] ⊆
    /// interest[at; nil]) under dom(at) = {checking, saving}.
    fn example_3_4_proof() -> (std::sync::Arc<Schema>, Proof) {
        let schema = bank_schema();
        let mut p = Proof::new();
        let psi1 = p.axiom(normalize(&fixtures::psi1_edi()).remove(0));
        let psi2 = p.axiom(normalize(&fixtures::psi2_edi()).remove(0));
        let psi5_edi = p.axiom(normalize(&fixtures::psi5()).remove(0));
        let psi6_edi = p.axiom(normalize(&fixtures::psi6()).remove(0));
        // (1),(2): project away the matched an,cn,ca,cp pairs (CIND2).
        let s1 = p.cind2(psi1, &[]).unwrap();
        let s2 = p.cind2(psi2, &[]).unwrap();
        // (3),(4): relax the RHS pattern to keep only `at` (CIND6).
        // ψ5/ψ6 normal form Yp order: [ab, at, ct, rt] — keep index 1.
        let s3 = p.cind6(psi5_edi, &[1]).unwrap();
        let s4 = p.cind6(psi6_edi, &[1]).unwrap();
        // (5),(6): transitivity (CIND3).
        let s5 = p.cind3(s1, s3).unwrap();
        let s6 = p.cind3(s2, s4).unwrap();
        // (7): merge the finite-domain cases (CIND8).
        let at_l = attr(&schema, "account_edi", "at");
        let at_r = attr(&schema, "interest", "at");
        p.cind8(&schema, &[s5, s6], at_l, at_r).unwrap();
        (schema, p)
    }

    #[test]
    fn example_3_4_derives_the_goal() {
        let (schema, proof) = example_3_4_proof();
        let goal = normalize(&fixtures::example_3_3_goal()).remove(0);
        assert_eq!(proof.conclusion(), Some(&goal));
        let rendered = proof.display(&schema).to_string();
        assert!(rendered.contains("CIND8"));
        assert!(rendered.contains("CIND3"));
    }

    #[test]
    fn example_3_4_proof_is_sound_on_the_clean_instance() {
        let (_, proof) = example_3_4_proof();
        let db = condep_model::fixtures::clean_bank_database();
        assert_eq!(
            proof.check_soundness(&db),
            None,
            "every derived CIND must hold wherever the axioms hold"
        );
    }

    #[test]
    fn cind1_requires_distinct_attrs() {
        let schema = bank_schema();
        let rel = schema.rel_id("saving").unwrap();
        assert!(cind1(&schema, rel, vec![AttrId(0), AttrId(1)]).is_ok());
        assert_eq!(
            cind1(&schema, rel, vec![AttrId(0), AttrId(0)]),
            Err(InferenceError::DuplicateAttrs)
        );
        assert!(matches!(
            cind1(&schema, rel, vec![AttrId(99)]),
            Err(InferenceError::IndexOutOfRange(99))
        ));
    }

    #[test]
    fn cind2_projects_and_permutes() {
        let psi = normalize(&fixtures::psi1_edi()).remove(0);
        // Reverse the four matched pairs.
        let rev = cind2(&psi, &[3, 2, 1, 0]).unwrap();
        assert_eq!(rev.x()[0], psi.x()[3]);
        assert_eq!(rev.y()[0], psi.y()[3]);
        // Repeats are allowed (the paper's "sequence").
        let dup = cind2(&psi, &[0, 0]).unwrap();
        assert_eq!(dup.x().len(), 2);
        assert!(cind2(&psi, &[9]).is_err());
    }

    #[test]
    fn cind3_requires_matching_middle() {
        let schema = bank_schema();
        let s1 = normalize(&fixtures::psi1_edi()).remove(0);
        let s3 = normalize(&fixtures::psi3()).remove(0);
        // saving[an,cn,ca,cp] vs saving[ab]: Y ≠ X — rejected.
        assert!(cind3(&s1, &s3).is_err());
        // ψ3 ∘ ψ3 does not chain (interest ≠ saving).
        assert!(cind3(&s3, &s3).is_err());
        // A valid chain: project ψ1 to [ab]-free form first.
        let mut p = Proof::new();
        let a = p.axiom(s1);
        let pr = p.cind2(a, &[]).unwrap();
        let b = p.axiom(normalize(&fixtures::psi5()).remove(0));
        let rel = p.cind6(b, &[1]).unwrap();
        assert!(p.cind3(pr, rel).is_ok());
        let _ = schema;
    }

    #[test]
    fn cind4_moves_a_matched_pair_into_patterns() {
        let schema = bank_schema();
        let psi = normalize(&fixtures::psi3()).remove(0);
        let inst = cind4(&schema, &psi, 0, Value::str("EDI")).unwrap();
        assert!(inst.x().is_empty());
        assert_eq!(inst.xp().len(), 1);
        assert_eq!(inst.yp().len(), 1);
        assert_eq!(inst.xp()[0].1, Value::str("EDI"));
        // Value outside a finite domain is rejected.
        let psi1 = normalize(&fixtures::psi1_edi()).remove(0);
        let at_pos = 0; // an — infinite, any string fine
        assert!(cind4(&schema, &psi1, at_pos, Value::str("whatever")).is_ok());
    }

    #[test]
    fn cind4_rejects_out_of_domain_values() {
        // Build an IND on the finite `at` attribute and instantiate it
        // with a non-domain value.
        let schema = bank_schema();
        let account = schema.rel_id("account_edi").unwrap();
        let interest = schema.rel_id("interest").unwrap();
        let at_l = attr(&schema, "account_edi", "at");
        let at_r = attr(&schema, "interest", "at");
        let psi = NormalCind::new(account, interest, vec![at_l], vec![at_r], vec![], vec![]);
        assert!(matches!(
            cind4(&schema, &psi, 0, Value::str("mortgage")),
            Err(InferenceError::ValueOutsideDomain(_))
        ));
        assert!(cind4(&schema, &psi, 0, Value::str("saving")).is_ok());
    }

    #[test]
    fn cind5_adds_lhs_conditions_only_on_free_attrs() {
        let schema = bank_schema();
        let psi = normalize(&fixtures::psi3()).remove(0);
        let an = attr(&schema, "saving", "an");
        let widened = cind5(&schema, &psi, an, Value::str("01")).unwrap();
        assert_eq!(widened.xp().len(), 1);
        // The constrained attribute cannot be conditioned again.
        assert_eq!(
            cind5(&schema, &widened, an, Value::str("02")),
            Err(InferenceError::AttrAlreadyConstrained)
        );
        // Nor can a matched attribute.
        let ab = attr(&schema, "saving", "ab");
        assert_eq!(
            cind5(&schema, &psi, ab, Value::str("EDI")),
            Err(InferenceError::AttrAlreadyConstrained)
        );
    }

    #[test]
    fn cind6_drops_rhs_conditions() {
        let psi = normalize(&fixtures::psi5()).remove(0);
        assert_eq!(psi.yp().len(), 4);
        let relaxed = cind6(&psi, &[0]).unwrap();
        assert_eq!(relaxed.yp().len(), 1);
        let dropped_all = cind6(&psi, &[]).unwrap();
        assert!(dropped_all.yp().is_empty());
        assert!(cind6(&psi, &[7]).is_err());
    }

    #[test]
    fn cind7_eliminates_a_covered_finite_condition() {
        let schema = bank_schema();
        // Premises: (account_edi[nil; at=saving] ⊆ interest[nil; ct=UK])
        //       and (account_edi[nil; at=checking] ⊆ interest[nil; ct=UK]).
        let at_l = attr(&schema, "account_edi", "at");
        let ct = attr(&schema, "interest", "ct");
        let account = schema.rel_id("account_edi").unwrap();
        let interest = schema.rel_id("interest").unwrap();
        let mk = |v: &str| {
            NormalCind::new(
                account,
                interest,
                vec![],
                vec![],
                vec![(at_l, Value::str(v))],
                vec![(ct, Value::str("UK"))],
            )
        };
        let merged = cind7(&schema, &[mk("saving"), mk("checking")], at_l).unwrap();
        assert!(merged.xp().is_empty());
        assert_eq!(merged.yp().len(), 1);
        // Missing a domain value: rejected.
        assert_eq!(
            cind7(&schema, &[mk("saving")], at_l),
            Err(InferenceError::DomainNotCovered)
        );
        // Infinite-domain attribute: rejected.
        let an = attr(&schema, "account_edi", "an");
        let with_an = NormalCind::new(
            account,
            interest,
            vec![],
            vec![],
            vec![(an, Value::str("01"))],
            vec![],
        );
        assert_eq!(
            cind7(&schema, &[with_an], an),
            Err(InferenceError::NotFiniteDomain)
        );
    }

    #[test]
    fn cind8_restores_a_matched_pair() {
        let schema = bank_schema();
        let at_l = attr(&schema, "account_edi", "at");
        let at_r = attr(&schema, "interest", "at");
        let account = schema.rel_id("account_edi").unwrap();
        let interest = schema.rel_id("interest").unwrap();
        let mk = |v: &str| {
            NormalCind::new(
                account,
                interest,
                vec![],
                vec![],
                vec![(at_l, Value::str(v))],
                vec![(at_r, Value::str(v))],
            )
        };
        let merged = cind8(&schema, &[mk("saving"), mk("checking")], at_l, at_r).unwrap();
        assert_eq!(merged.x(), &[at_l]);
        assert_eq!(merged.y(), &[at_r]);
        assert!(merged.xp().is_empty());
        assert!(merged.yp().is_empty());
        // Values disagreeing between A and B: rejected.
        let skew = NormalCind::new(
            account,
            interest,
            vec![],
            vec![],
            vec![(at_l, Value::str("saving"))],
            vec![(at_r, Value::str("checking"))],
        );
        assert!(matches!(
            cind8(&schema, &[skew, mk("checking")], at_l, at_r),
            Err(InferenceError::PremisesNotParallel(_))
        ));
    }

    #[test]
    fn rules_are_sound_on_the_clean_instance() {
        // Apply each pattern-manipulation rule to a satisfied CIND and
        // check the conclusion still holds.
        use crate::satisfy::satisfies_normal;
        let schema = bank_schema();
        let db = condep_model::fixtures::clean_bank_database();
        let psi3 = normalize(&fixtures::psi3()).remove(0);
        assert!(satisfies_normal(&db, &psi3));
        // CIND2.
        assert!(satisfies_normal(&db, &cind2(&psi3, &[0, 0]).unwrap()));
        // CIND4.
        assert!(satisfies_normal(
            &db,
            &cind4(&schema, &psi3, 0, Value::str("EDI")).unwrap()
        ));
        // CIND5.
        let an = attr(&schema, "saving", "an");
        assert!(satisfies_normal(
            &db,
            &cind5(&schema, &psi3, an, Value::str("01")).unwrap()
        ));
        // CIND6 on ψ5.
        let psi5 = normalize(&fixtures::psi5()).remove(0);
        assert!(satisfies_normal(&db, &cind6(&psi5, &[0, 1]).unwrap()));
        // CIND1 reflexivity holds on any instance.
        let saving = schema.rel_id("saving").unwrap();
        assert!(satisfies_normal(
            &db,
            &cind1(&schema, saving, vec![AttrId(0), AttrId(4)]).unwrap()
        ));
    }
}
