//! Implication of CINDs — Theorems 3.4 and 3.5.
//!
//! `Σ |= ψ` iff every instance satisfying `Σ` satisfies `ψ`. The paper
//! proves this EXPTIME-complete in general and PSPACE-complete when no
//! finite-domain attribute occurs. We implement a decision procedure for
//! both regimes as a **chase game**:
//!
//! Consider the most general tuple `t0` of `R1` triggering `ψ`: pattern
//! constants on `Xp`, a fresh *marker* per infinite `X` attribute, and
//! generic *junk* elsewhere. Whoever wants to refute the implication —
//! the *adversary* — must build a database containing `t0`, closed under
//! Σ (every triggered CIND forces a target tuple to exist), yet with no
//! tuple witnessing `ψ`'s conclusion. The adversary's only freedom is
//! the value of unconstrained finite-domain fields of forced tuples
//! (infinite fields are generically fresh, which is adversary-optimal —
//! extra coincidences only trigger more obligations). This is a
//! reachability game over *abstract tuples* (cells are constants,
//! markers, or junk):
//!
//! > `bad(t) = goal(t) ∨ ∃σ triggered by t. ∀ adversary choices u: bad(u)`
//!
//! `Σ |= ψ` iff `bad(t0)` for **every** choice of `t0`'s own finite
//! fields (including finite `X` markers, which range over their domain).
//! With no finite attributes there are no choices and the game
//! degenerates to plain reachability — the PSPACE regime of Thm 3.5; the
//! alternation over finite-domain choices is exactly what CIND7/CIND8
//! axiomatize and what makes the general problem EXPTIME (Thm 3.4).
//!
//! [`implies_exhaustive_finite`] is an independent brute-force oracle
//! for all-finite tiny schemas, used to cross-validate the game solver.

use crate::satisfy::satisfies_all;
use crate::syntax::NormalCind;
use condep_model::{AttrId, Database, RelId, Schema, Tuple, Value};
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

pub use condep_model::implication::{Implication, ImplicationConfig};

/// A cell of an abstract tuple.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
enum Cell {
    /// A known constant.
    Const(Value),
    /// The `i`-th tracked value of `t0[X]` (infinite-domain attributes
    /// only; generic, distinct from every constant and from junk).
    Marker(usize),
    /// A generically fresh, unconstrained value of an infinite domain.
    Junk,
}

#[derive(Clone, PartialEq, Eq, Hash, Debug)]
struct AbsTuple {
    rel: RelId,
    cells: Vec<Cell>,
}

impl AbsTuple {
    fn matches_consts(&self, pairs: &[(AttrId, Value)]) -> bool {
        pairs
            .iter()
            .all(|(a, v)| self.cells[a.index()] == Cell::Const(v.clone()))
    }
}

/// Is attribute `a` of relation `rel` finite-domain?
fn is_finite(schema: &Schema, rel: RelId, a: AttrId) -> bool {
    schema
        .relation(rel)
        .ok()
        .and_then(|rs| rs.attribute(a).ok().map(|at| at.is_finite()))
        .unwrap_or(false)
}

fn domain_values(schema: &Schema, rel: RelId, a: AttrId) -> Vec<Value> {
    schema
        .relation(rel)
        .ok()
        .and_then(|rs| {
            rs.attribute(a).ok().map(|at| {
                at.domain()
                    .values()
                    .map(<[Value]>::to_vec)
                    .unwrap_or_default()
            })
        })
        .unwrap_or_default()
}

/// Builds the adversary's choices for the tuple forced by `sigma` when
/// triggered by `t`: one [`AbsTuple`] per assignment of the forced
/// tuple's free finite-domain fields. An empty vector means the
/// obligation is unsatisfiable (conflicting constants), which dooms the
/// adversary.
fn forced_tuples(schema: &Schema, sigma: &NormalCind, t: &AbsTuple) -> Vec<AbsTuple> {
    let rel = sigma.rhs_rel();
    let Ok(rs) = schema.relation(rel) else {
        return Vec::new();
    };
    let arity = rs.arity();
    // Determined cells first: Y-flows and Yp constants.
    let mut cells: Vec<Option<Cell>> = vec![None; arity];
    for (xi, yi) in sigma.x().iter().zip(sigma.y()) {
        let incoming = t.cells[xi.index()].clone();
        match &cells[yi.index()] {
            None => cells[yi.index()] = Some(incoming),
            Some(existing) if *existing == incoming => {}
            Some(_) => return Vec::new(), // duplicate target with conflicting flows
        }
    }
    for (a, v) in sigma.yp() {
        let c = Cell::Const(v.clone());
        match &cells[a.index()] {
            None => cells[a.index()] = Some(c),
            Some(existing) if *existing == c => {}
            Some(_) => return Vec::new(),
        }
    }
    // Domain check on determined constant cells.
    for (i, c) in cells.iter().enumerate() {
        if let Some(Cell::Const(v)) = c {
            let Ok(at) = rs.attribute(AttrId(i as u32)) else {
                return Vec::new();
            };
            if !at.domain().contains(v) {
                return Vec::new();
            }
        }
    }
    // Free fields: finite → adversary's choice, infinite → junk.
    let mut free_finite: Vec<(usize, Vec<Value>)> = Vec::new();
    for (i, c) in cells.iter_mut().enumerate() {
        if c.is_none() {
            if is_finite(schema, rel, AttrId(i as u32)) {
                free_finite.push((i, domain_values(schema, rel, AttrId(i as u32))));
            } else {
                *c = Some(Cell::Junk);
            }
        }
    }
    // Enumerate finite choices (odometer).
    let mut out = Vec::new();
    let mut counters = vec![0usize; free_finite.len()];
    'outer: loop {
        let mut concrete = cells.clone();
        for (k, (i, vals)) in free_finite.iter().enumerate() {
            concrete[*i] = Some(Cell::Const(vals[counters[k]].clone()));
        }
        out.push(AbsTuple {
            rel,
            cells: concrete
                .into_iter()
                .map(|c| c.expect("all cells set"))
                .collect(),
        });
        let mut k = 0;
        loop {
            if k == counters.len() {
                break 'outer;
            }
            counters[k] += 1;
            if counters[k] < free_finite[k].1.len() {
                break;
            }
            counters[k] = 0;
            k += 1;
        }
    }
    out
}

/// Solves one game instance: does every adversary strategy starting from
/// `t0` hit a goal tuple? `None` when the state cap is exceeded.
fn solve_game(
    schema: &Schema,
    sigma: &[NormalCind],
    psi: &NormalCind,
    t0: &AbsTuple,
    expected: &[Cell],
    max_states: usize,
) -> Option<bool> {
    let is_goal = |t: &AbsTuple| -> bool {
        t.rel == psi.rhs_rel()
            && psi
                .y()
                .iter()
                .zip(expected)
                .all(|(yi, e)| &t.cells[yi.index()] == e)
            && t.matches_consts(psi.yp())
    };

    // Explore the reachable abstract-tuple graph.
    let mut ids: HashMap<AbsTuple, usize> = HashMap::new();
    let mut tuples: Vec<AbsTuple> = Vec::new();
    // successors[t] = one entry per triggered CIND: the adversary's
    // choice set (indices).
    let mut successors: Vec<Vec<Vec<usize>>> = Vec::new();
    let mut queue: VecDeque<usize> = VecDeque::new();

    let intern = |t: AbsTuple,
                  ids: &mut HashMap<AbsTuple, usize>,
                  tuples: &mut Vec<AbsTuple>,
                  queue: &mut VecDeque<usize>| {
        if let Some(&i) = ids.get(&t) {
            return i;
        }
        let i = tuples.len();
        ids.insert(t.clone(), i);
        tuples.push(t);
        queue.push_back(i);
        i
    };

    intern(t0.clone(), &mut ids, &mut tuples, &mut queue);
    while let Some(i) = queue.pop_front() {
        if tuples.len() > max_states {
            return None;
        }
        let t = tuples[i].clone();
        let mut groups: Vec<Vec<usize>> = Vec::new();
        for s in sigma {
            if s.lhs_rel() != t.rel || !t.matches_consts(s.xp()) {
                continue;
            }
            let children = forced_tuples(schema, s, &t);
            let child_ids = children
                .into_iter()
                .map(|u| intern(u, &mut ids, &mut tuples, &mut queue))
                .collect();
            groups.push(child_ids);
        }
        if successors.len() <= i {
            successors.resize_with(tuples.len().max(i + 1), Vec::new);
        }
        successors[i] = groups;
    }
    successors.resize_with(tuples.len(), Vec::new);

    // Least fixpoint of `bad` (backward induction over the game graph).
    let n = tuples.len();
    let mut bad = vec![false; n];
    for (i, t) in tuples.iter().enumerate() {
        if is_goal(t) {
            bad[i] = true;
        }
    }
    loop {
        let mut changed = false;
        for i in 0..n {
            if bad[i] {
                continue;
            }
            let doomed = successors[i]
                .iter()
                .any(|choices| choices.iter().all(|&c| bad[c]));
            if doomed {
                bad[i] = true;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    Some(bad[0])
}

/// The general implication check (Thm 3.4 regime): alternates over the
/// finite-domain choices of the initial tuple and solves the chase game
/// for each.
pub fn implies(
    schema: &Schema,
    sigma: &[NormalCind],
    psi: &NormalCind,
    config: ImplicationConfig,
) -> Implication {
    // The abstraction (generic markers/junk on infinite attributes)
    // relies on the paper's standing assumption dom(Ai) ⊆ dom(Bi); an
    // infinite source flowing into a finite target violates it and the
    // game would no longer be sound, so refuse such inputs.
    for c in sigma.iter().chain([psi]) {
        for (xa, ya) in c.x().iter().zip(c.y()) {
            if !is_finite(schema, c.lhs_rel(), *xa) && is_finite(schema, c.rhs_rel(), *ya) {
                return Implication::Unknown;
            }
        }
    }
    let rel = psi.lhs_rel();
    let Ok(rs) = schema.relation(rel) else {
        return Implication::Unknown;
    };
    let arity = rs.arity();

    // Template for t0: Xp constants fixed; X attributes become markers
    // (infinite) or enumerated constants (finite); the rest junk
    // (infinite) or enumerated constants (finite).
    #[derive(Clone)]
    enum Slot {
        Fixed(Cell),
        /// Free or matched finite-domain field: enumerated over its
        /// domain (the adversary's choice for free fields; the universal
        /// quantification over `t0[X]` for matched ones).
        Finite(Vec<Value>),
    }
    let mut slots: Vec<Slot> = (0..arity)
        .map(|i| {
            let a = AttrId(i as u32);
            if is_finite(schema, rel, a) {
                Slot::Finite(domain_values(schema, rel, a))
            } else {
                Slot::Fixed(Cell::Junk)
            }
        })
        .collect();
    for (a, v) in psi.xp() {
        slots[a.index()] = Slot::Fixed(Cell::Const(v.clone()));
    }
    for (i, a) in psi.x().iter().enumerate() {
        if !is_finite(schema, rel, *a) {
            slots[a.index()] = Slot::Fixed(Cell::Marker(i));
        }
    }

    // Enumerate the finite assignments of t0.
    let finite_slots: Vec<(usize, Vec<Value>)> = slots
        .iter()
        .enumerate()
        .filter_map(|(i, s)| match s {
            Slot::Fixed(_) => None,
            Slot::Finite(vals) => Some((i, vals.clone())),
        })
        .collect();
    // A finite domain is never empty, but guard against a degenerate
    // schema lookup failure.
    if finite_slots.iter().any(|(_, vals)| vals.is_empty()) {
        return Implication::Unknown;
    }
    let mut counters = vec![0usize; finite_slots.len()];
    let mut assignments_tried: u64 = 0;
    loop {
        if assignments_tried >= config.max_initial_assignments {
            return Implication::Unknown;
        }
        assignments_tried += 1;

        let mut cells: Vec<Cell> = slots
            .iter()
            .map(|slot| match slot {
                Slot::Fixed(c) => c.clone(),
                _ => Cell::Junk, // placeholder, overwritten below
            })
            .collect();
        for (k, (i, vals)) in finite_slots.iter().enumerate() {
            cells[*i] = Cell::Const(vals[counters[k]].clone());
        }
        let expected: Vec<Cell> = psi.x().iter().map(|a| cells[a.index()].clone()).collect();
        let t0 = AbsTuple { rel, cells };
        match solve_game(schema, sigma, psi, &t0, &expected, config.max_states) {
            None => return Implication::Unknown,
            Some(false) => return Implication::NotImplied,
            Some(true) => {}
        }

        // Next assignment.
        let mut k = 0;
        loop {
            if k == counters.len() {
                return Implication::Implied;
            }
            counters[k] += 1;
            if counters[k] < finite_slots[k].1.len() {
                break;
            }
            counters[k] = 0;
            k += 1;
        }
    }
}

/// The no-finite-domain regime (Thm 3.5): plain reachability, complete
/// whenever neither Σ nor ψ mentions a finite-domain attribute *and* the
/// involved relations have none.
pub fn implies_infinite(schema: &Schema, sigma: &[NormalCind], psi: &NormalCind) -> bool {
    match implies(schema, sigma, psi, ImplicationConfig::unbounded()) {
        Implication::Implied => true,
        Implication::NotImplied => false,
        Implication::Unknown => panic!(
            "implies_infinite requires the domain-compatibility assumption \
             dom(Ai) ⊆ dom(Bi) of Section 2"
        ),
    }
}

/// Brute-force implication oracle for **all-finite** schemas: enumerates
/// every sub-database of the full cross-product instance. Only feasible
/// when the total number of possible tuples is ≤ `max_universe` (the
/// search is `2^universe`); returns `None` otherwise. Used to
/// cross-validate the game solver in tests.
pub fn implies_exhaustive_finite(
    schema: &Arc<Schema>,
    sigma: &[NormalCind],
    psi: &NormalCind,
    max_universe: usize,
) -> Option<bool> {
    // Build the universe of all possible tuples.
    let mut universe: Vec<(RelId, Tuple)> = Vec::new();
    for (rel, rs) in schema.iter() {
        let doms: Vec<Vec<Value>> = rs
            .iter()
            .map(|(_, a)| a.domain().values().map(<[Value]>::to_vec))
            .collect::<Option<Vec<_>>>()?;
        let mut counters = vec![0usize; doms.len()];
        'outer: loop {
            universe.push((
                rel,
                Tuple::new(
                    counters
                        .iter()
                        .enumerate()
                        .map(|(i, &c)| doms[i][c].clone()),
                ),
            ));
            if universe.len() > max_universe {
                return None;
            }
            let mut i = 0;
            loop {
                if i == counters.len() {
                    break 'outer;
                }
                counters[i] += 1;
                if counters[i] < doms[i].len() {
                    break;
                }
                counters[i] = 0;
                i += 1;
            }
        }
    }
    let n = universe.len();
    for mask in 0u64..(1 << n) {
        let mut db = Database::empty(schema.clone());
        for (bit, (rel, t)) in universe.iter().enumerate() {
            if mask >> bit & 1 == 1 {
                db.insert(*rel, t.clone()).expect("universe well-typed");
            }
        }
        if satisfies_all(&db, sigma) && !crate::satisfy::satisfies_normal(&db, psi) {
            return Some(false);
        }
    }
    Some(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;
    use crate::normalize::{normalize, normalize_all};
    use condep_model::fixtures::bank_schema;
    use condep_model::Domain;

    fn cfg() -> ImplicationConfig {
        ImplicationConfig::default()
    }

    #[test]
    fn example_3_3_sigma_implies_psi() {
        // Σ = Figure 2 (EDI instantiation), dom(at) = {checking, saving}:
        // Σ |= (account_edi[at; nil] ⊆ interest[at; nil]).
        let schema = bank_schema();
        let sigma = normalize_all(&[
            fixtures::psi1_edi(),
            fixtures::psi2_edi(),
            fixtures::psi5(),
            fixtures::psi6(),
        ]);
        let psi = normalize(&fixtures::example_3_3_goal()).remove(0);
        assert_eq!(implies(&schema, &sigma, &psi, cfg()), Implication::Implied);
    }

    #[test]
    fn example_3_3_needs_both_branches() {
        // Dropping ψ2/ψ6 breaks the checking case: not implied.
        let schema = bank_schema();
        let sigma = normalize_all(&[fixtures::psi1_edi(), fixtures::psi5()]);
        let psi = normalize(&fixtures::example_3_3_goal()).remove(0);
        assert_eq!(
            implies(&schema, &sigma, &psi, cfg()),
            Implication::NotImplied
        );
    }

    #[test]
    fn reflexivity_is_implied_from_nothing() {
        let schema = fixtures::example_5_1_schema(false);
        let psi =
            NormalCind::parse(&schema, "r1", &["e", "f"], &[], "r1", &["e", "f"], &[]).unwrap();
        assert!(implies_infinite(&schema, &[], &psi));
    }

    #[test]
    fn projection_of_an_axiom_is_implied() {
        let schema = fixtures::example_5_1_schema(false);
        let full =
            NormalCind::parse(&schema, "r1", &["e", "f"], &[], "r2", &["g", "h"], &[]).unwrap();
        let projected = NormalCind::parse(&schema, "r1", &["e"], &[], "r2", &["g"], &[]).unwrap();
        assert!(implies_infinite(
            &schema,
            std::slice::from_ref(&full),
            &projected
        ));
        // The reverse does not hold.
        assert!(!implies_infinite(&schema, &[projected], &full));
    }

    #[test]
    fn transitivity_is_implied() {
        let schema = std::sync::Arc::new(
            condep_model::Schema::builder()
                .relation_str("r", &["a"])
                .relation_str("s", &["b"])
                .relation_str("t", &["c"])
                .finish(),
        );
        let rs = NormalCind::parse(&schema, "r", &["a"], &[], "s", &["b"], &[]).unwrap();
        let st = NormalCind::parse(&schema, "s", &["b"], &[], "t", &["c"], &[]).unwrap();
        let rt = NormalCind::parse(&schema, "r", &["a"], &[], "t", &["c"], &[]).unwrap();
        assert!(implies_infinite(&schema, &[rs.clone(), st.clone()], &rt));
        assert!(!implies_infinite(&schema, &[rs], &rt));
    }

    #[test]
    fn patterns_block_naive_transitivity() {
        // r ⊆ s with Yp = {b2 = "x"} chains with (s; b2 = "x") ⊆ t, but
        // NOT with (s; b2 = "y") ⊆ t.
        let schema = std::sync::Arc::new(
            condep_model::Schema::builder()
                .relation_str("r", &["a1", "a2"])
                .relation_str("s", &["b1", "b2"])
                .relation_str("t", &["c1"])
                .finish(),
        );
        let r_s = NormalCind::parse(
            &schema,
            "r",
            &["a1"],
            &[],
            "s",
            &["b1"],
            &[("b2", Value::str("x"))],
        )
        .unwrap();
        let s_t_x = NormalCind::parse(
            &schema,
            "s",
            &["b1"],
            &[("b2", Value::str("x"))],
            "t",
            &["c1"],
            &[],
        )
        .unwrap();
        let s_t_y = NormalCind::parse(
            &schema,
            "s",
            &["b1"],
            &[("b2", Value::str("y"))],
            "t",
            &["c1"],
            &[],
        )
        .unwrap();
        let goal = NormalCind::parse(&schema, "r", &["a1"], &[], "t", &["c1"], &[]).unwrap();
        assert!(implies_infinite(&schema, &[r_s.clone(), s_t_x], &goal));
        assert!(!implies_infinite(&schema, &[r_s, s_t_y], &goal));
    }

    #[test]
    fn finite_domain_case_split_changes_the_answer() {
        // dom(h) = {0, 1} (as strings):
        // Σ = {(r2[g; h=0] ⊆ r1[e; nil]), (r2[g; h=1] ⊆ r1[e; nil])}.
        // Over a finite dom(h): Σ |= (r2[g; nil] ⊆ r1[e; nil]).
        // Over an infinite dom(h): not implied.
        for (finite_h, expect) in [
            (true, Implication::Implied),
            (false, Implication::NotImplied),
        ] {
            let schema = fixtures::example_5_1_schema(finite_h);
            let mk = |v: &str| {
                NormalCind::parse(
                    &schema,
                    "r2",
                    &["g"],
                    &[("h", Value::str(v))],
                    "r1",
                    &["e"],
                    &[],
                )
                .unwrap()
            };
            let sigma = vec![mk("0"), mk("1")];
            let psi = NormalCind::parse(&schema, "r2", &["g"], &[], "r1", &["e"], &[]).unwrap();
            assert_eq!(
                implies(&schema, &sigma, &psi, cfg()),
                expect,
                "finite_h = {finite_h}"
            );
        }
    }

    #[test]
    fn unsatisfiable_obligation_makes_implication_vacuous() {
        // dom(r.a) = {x, y} but dom(s.b) = {x}: the IND r[a] ⊆ s[b]
        // forbids any r-tuple with a = y, so a ψ triggering only on
        // a = y is vacuously implied.
        let schema = std::sync::Arc::new(
            condep_model::Schema::builder()
                .relation("r", &[("a", Domain::finite_strs(&["x", "y"]))])
                .relation("s", &[("b", Domain::finite_strs(&["x"]))])
                .finish(),
        );
        let ind = NormalCind::parse(&schema, "r", &["a"], &[], "s", &["b"], &[]).unwrap();
        let psi = NormalCind::parse(
            &schema,
            "r",
            &[],
            &[("a", Value::str("y"))],
            "s",
            &[],
            &[("b", Value::str("x"))],
        )
        .unwrap();
        // Without the IND, ψ is refutable (a tuple with a = y and an
        // empty s); with it, the trigger is impossible.
        assert_eq!(implies(&schema, &[], &psi, cfg()), Implication::NotImplied);
        assert_eq!(implies(&schema, &[ind], &psi, cfg()), Implication::Implied);
    }

    #[test]
    fn incompatible_infinite_to_finite_flow_is_refused() {
        let schema = std::sync::Arc::new(
            condep_model::Schema::builder()
                .relation("r", &[("a", Domain::string())])
                .relation("s", &[("b", Domain::finite_strs(&["x"]))])
                .finish(),
        );
        let bad = NormalCind::parse(&schema, "r", &["a"], &[], "s", &["b"], &[]).unwrap();
        assert_eq!(
            implies(&schema, std::slice::from_ref(&bad), &bad, cfg()),
            Implication::Unknown
        );
    }

    #[test]
    fn game_agrees_with_exhaustive_oracle_on_tiny_finite_schemas() {
        // dom sizes kept tiny so 2^universe stays manageable.
        let schema = std::sync::Arc::new(
            condep_model::Schema::builder()
                .relation("r", &[("a", Domain::finite_strs(&["0", "1"]))])
                .relation("s", &[("b", Domain::finite_strs(&["0", "1"]))])
                .finish(),
        );
        let r_s = NormalCind::parse(&schema, "r", &["a"], &[], "s", &["b"], &[]).unwrap();
        let r_s0 = NormalCind::parse(
            &schema,
            "r",
            &[],
            &[("a", Value::str("0"))],
            "s",
            &[],
            &[("b", Value::str("0"))],
        )
        .unwrap();
        let r_s1 = NormalCind::parse(
            &schema,
            "r",
            &[],
            &[("a", Value::str("1"))],
            "s",
            &[],
            &[("b", Value::str("1"))],
        )
        .unwrap();
        let cases: Vec<(Vec<NormalCind>, NormalCind)> = vec![
            (vec![r_s0.clone(), r_s1.clone()], r_s.clone()),
            (vec![r_s0.clone()], r_s.clone()),
            (vec![r_s.clone()], r_s0.clone()),
            (vec![], r_s.clone()),
            (vec![r_s.clone()], r_s.clone()),
        ];
        for (sigma, psi) in cases {
            let game = implies(&schema, &sigma, &psi, cfg());
            let oracle =
                implies_exhaustive_finite(&schema, &sigma, &psi, 4).expect("universe small enough");
            assert_eq!(
                game == Implication::Implied,
                oracle,
                "game vs oracle on {sigma:?} |= {psi:?}"
            );
        }
    }

    #[test]
    fn budget_exhaustion_reports_unknown() {
        // The full Example 3.3 Σ is implied, needing one game per value
        // of the finite dom(at); a budget of one assignment cannot
        // conclude.
        let schema = bank_schema();
        let sigma = normalize_all(&[
            fixtures::psi1_edi(),
            fixtures::psi2_edi(),
            fixtures::psi5(),
            fixtures::psi6(),
        ]);
        let psi = normalize(&fixtures::example_3_3_goal()).remove(0);
        let tiny = ImplicationConfig {
            max_initial_assignments: 1,
            ..ImplicationConfig::unbounded()
        };
        assert_eq!(implies(&schema, &sigma, &psi, tiny), Implication::Unknown);
        // A state cap of one blocks even the first game.
        let cramped = ImplicationConfig {
            max_states: 1,
            ..ImplicationConfig::unbounded()
        };
        assert_eq!(
            implies(&schema, &sigma, &psi, cramped),
            Implication::Unknown
        );
    }

    #[test]
    fn cyclic_inds_terminate() {
        // r[a] ⊆ s[b], s[b] ⊆ r[a]: the classic infinite chase loops in
        // the concrete world but the abstract state space is finite.
        let schema = std::sync::Arc::new(
            condep_model::Schema::builder()
                .relation_str("r", &["a", "a2"])
                .relation_str("s", &["b", "b2"])
                .finish(),
        );
        let rs = NormalCind::parse(&schema, "r", &["a"], &[], "s", &["b"], &[]).unwrap();
        let sr = NormalCind::parse(&schema, "s", &["b"], &[], "r", &["a"], &[]).unwrap();
        let goal = NormalCind::parse(&schema, "r", &["a"], &[], "r", &["a"], &[]).unwrap();
        // r[a] ⊆ r[a] is reflexively implied even through the cycle.
        assert!(implies_infinite(&schema, &[rs.clone(), sr.clone()], &goal));
        // r[a2] ⊆ s[b2] is not implied by the cycle on the other columns.
        let other = NormalCind::parse(&schema, "r", &["a2"], &[], "s", &["b2"], &[]).unwrap();
        assert!(!implies_infinite(&schema, &[rs, sr], &other));
    }
}
