#![warn(missing_docs)]

//! # condep-telemetry — the engine's instrument panel
//!
//! A dependency-free, deterministic metrics core shared by every layer
//! of the condep engine: validation streams, the batch validator,
//! repair, discovery, the quality monitor and the bench harness all
//! record into the same small vocabulary of instruments and export
//! through the same snapshot type.
//!
//! ## The pieces
//!
//! | Type | Role |
//! |---|---|
//! | [`Registry`] | named [`Counter`]/[`Gauge`]/[`Histogram`] instruments; get-or-create by dotted name, lock-free recording through clonable handles |
//! | [`Histogram`] | log2-bucket µs latency distribution; deterministic p50/p90/p99/max summaries |
//! | [`SpanTimer`] | RAII guard timing construction→drop into a histogram |
//! | [`SpanKey`]/[`CounterKey`] | `static` keys with a `OnceLock`-cached handle into the [`global()`] registry — the fast path for free functions |
//! | [`Journal`] | bounded ring buffer of [`StreamEvent`]s: per-window mutations, compactions, online promote/retire |
//! | [`MetricsSnapshot`] | sorted `dotted.name → value` map; the unit of exchange, rendered to JSON deterministically |
//! | [`Export`] | one trait every stats struct implements to render itself into a snapshot subtree |
//! | [`json`] | the hand-rolled JSON writer + syntax validator behind every report the engine emits |
//!
//! ## Feature gating
//!
//! The `telemetry` cargo feature (default-on) selects between real
//! instruments and zero-sized no-op mirrors with identical signatures.
//! Call sites never `cfg`; a `--no-default-features` build compiles
//! them to nothing. The export surface ([`MetricsSnapshot`],
//! [`Export`], [`json`]) is always available — snapshots from a
//! disabled build are simply empty.
//!
//! Enabled builds add a *runtime* kill switch on top:
//! [`Registry::disabled`] hands out storage-less handles whose record
//! calls cost one branch, which lets tests A/B the instrumented hot
//! path inside a single binary.

mod journal;
pub mod json;
mod key;
mod metrics;
mod snapshot;

pub use journal::{Journal, JournalEvent, StreamEvent};
pub use key::{global, CounterKey, SpanKey};
pub use metrics::{Counter, Gauge, Histogram, Registry, SpanTimer, Stopwatch};
pub use snapshot::{Export, HistogramSnapshot, MetricValue, MetricsSnapshot};

/// Joins a dotted `prefix` and a metric `name` (`""` prefix = verbatim).
pub fn key(prefix: &str, name: &str) -> String {
    if prefix.is_empty() {
        name.to_string()
    } else {
        format!("{prefix}.{name}")
    }
}
