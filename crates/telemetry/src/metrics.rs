//! Recording instruments: registry, counters, gauges, histograms,
//! span timers and static keys.
//!
//! Everything here comes in two builds selected by the `telemetry`
//! feature. With the feature on (default) the types wrap atomics and
//! clocks; with it off every type is a zero-sized mirror with the same
//! signatures whose methods are empty `#[inline(always)]` bodies, so
//! call sites compile to nothing and need no `cfg` of their own.
//!
//! Enabled instruments also support a *runtime* kill switch: handles
//! issued by [`Registry::disabled`] carry no storage, so recording
//! through them costs one branch. The overhead guard test uses this to
//! A/B the instrumented hot path inside a single binary.

use crate::snapshot::{HistogramSnapshot, MetricsSnapshot};

// ---------------------------------------------------------------------------
// Enabled build
// ---------------------------------------------------------------------------

#[cfg(feature = "telemetry")]
mod enabled {
    use super::*;
    use std::sync::atomic::{AtomicI64, AtomicU64, Ordering::Relaxed};
    use std::sync::{Arc, Mutex};
    use std::time::Instant;

    /// A monotonically increasing event counter handle.
    ///
    /// Cheap to clone (shared storage); a handle from a disabled
    /// registry records nothing.
    #[derive(Clone, Debug, Default)]
    pub struct Counter(Option<Arc<AtomicU64>>);

    impl Counter {
        /// Adds `n` events.
        #[inline(always)]
        pub fn add(&self, n: u64) {
            if let Some(cell) = &self.0 {
                cell.fetch_add(n, Relaxed);
            }
        }

        /// Adds one event.
        #[inline(always)]
        pub fn incr(&self) {
            self.add(1);
        }

        /// Current count (0 for a disabled handle).
        #[inline]
        pub fn get(&self) -> u64 {
            self.0.as_ref().map_or(0, |cell| cell.load(Relaxed))
        }
    }

    /// A signed level that can move both ways (resident bytes, live groups).
    #[derive(Clone, Debug, Default)]
    pub struct Gauge(Option<Arc<AtomicI64>>);

    impl Gauge {
        /// Sets the level.
        #[inline(always)]
        pub fn set(&self, v: i64) {
            if let Some(cell) = &self.0 {
                cell.store(v, Relaxed);
            }
        }

        /// Moves the level by `delta`.
        #[inline(always)]
        pub fn add(&self, delta: i64) {
            if let Some(cell) = &self.0 {
                cell.fetch_add(delta, Relaxed);
            }
        }

        /// Current level (0 for a disabled handle).
        #[inline]
        pub fn get(&self) -> i64 {
            self.0.as_ref().map_or(0, |cell| cell.load(Relaxed))
        }
    }

    /// Storage behind an enabled [`Histogram`] handle: one bucket per
    /// bit-length, so bucket `i` (i ≥ 1) covers `[2^(i-1), 2^i - 1]`
    /// and bucket 0 holds exact zeros.
    #[derive(Debug)]
    pub(super) struct HistogramCore {
        buckets: [AtomicU64; 64],
        count: AtomicU64,
        sum: AtomicU64,
        max: AtomicU64,
    }

    impl Default for HistogramCore {
        fn default() -> Self {
            HistogramCore {
                buckets: std::array::from_fn(|_| AtomicU64::new(0)),
                count: AtomicU64::new(0),
                sum: AtomicU64::new(0),
                max: AtomicU64::new(0),
            }
        }
    }

    impl HistogramCore {
        /// Zeroes every bucket and summary cell in place, so handles
        /// already pointing at this core observe a fresh histogram.
        fn reset(&self) {
            for b in &self.buckets {
                b.store(0, Relaxed);
            }
            self.count.store(0, Relaxed);
            self.sum.store(0, Relaxed);
            self.max.store(0, Relaxed);
        }
    }

    /// A log2-bucket microsecond latency histogram handle.
    #[derive(Clone, Debug, Default)]
    pub struct Histogram(Option<Arc<HistogramCore>>);

    impl Histogram {
        /// Records one sample, in microseconds.
        #[inline(always)]
        pub fn record_us(&self, us: u64) {
            if let Some(core) = &self.0 {
                core.buckets[bucket_of(us)].fetch_add(1, Relaxed);
                core.count.fetch_add(1, Relaxed);
                core.sum.fetch_add(us, Relaxed);
                core.max.fetch_max(us, Relaxed);
            }
        }

        /// Whether this handle has storage (false for disabled handles).
        #[inline]
        pub fn is_enabled(&self) -> bool {
            self.0.is_some()
        }

        /// Summarizes the recorded distribution.
        pub fn snapshot(&self) -> HistogramSnapshot {
            let Some(core) = &self.0 else {
                return HistogramSnapshot::default();
            };
            let counts: Vec<u64> = core.buckets.iter().map(|b| b.load(Relaxed)).collect();
            let count: u64 = counts.iter().sum();
            let mut snap = HistogramSnapshot {
                count,
                sum_us: core.sum.load(Relaxed),
                max_us: core.max.load(Relaxed),
                ..HistogramSnapshot::default()
            };
            if count == 0 {
                return snap;
            }
            snap.p50_us = quantile(&counts, count, 50);
            snap.p90_us = quantile(&counts, count, 90);
            snap.p99_us = quantile(&counts, count, 99);
            snap
        }
    }

    /// Bucket index for `us`: its bit length, capped to 63.
    #[inline(always)]
    pub(super) fn bucket_of(us: u64) -> usize {
        ((u64::BITS - us.leading_zeros()) as usize).min(63)
    }

    /// Largest value bucket `b` can contain.
    pub(super) fn bucket_upper(b: usize) -> u64 {
        match b {
            0 => 0,
            63 => u64::MAX,
            b => (1u64 << b) - 1,
        }
    }

    /// Upper bound of the bucket containing the `pct`-th percentile
    /// rank (`ceil(pct/100 · count)`, 1-based).
    fn quantile(counts: &[u64], count: u64, pct: u64) -> u64 {
        let rank = (count * pct).div_ceil(100).max(1);
        let mut seen = 0u64;
        for (b, &n) in counts.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_upper(b);
            }
        }
        bucket_upper(63)
    }

    /// RAII guard: measures from construction to drop (or [`stop`])
    /// and records the elapsed microseconds into a [`Histogram`].
    ///
    /// [`stop`]: SpanTimer::stop
    #[derive(Debug)]
    pub struct SpanTimer {
        inner: Option<(Instant, Histogram)>,
    }

    impl SpanTimer {
        /// Starts timing into `hist`. A disabled handle skips the
        /// clock read entirely.
        #[inline]
        pub fn start(hist: &Histogram) -> SpanTimer {
            SpanTimer {
                inner: hist.is_enabled().then(|| (Instant::now(), hist.clone())),
            }
        }

        /// Stops early and returns the recorded microseconds
        /// (0 when disabled).
        pub fn stop(mut self) -> u64 {
            self.finish()
        }

        fn finish(&mut self) -> u64 {
            match self.inner.take() {
                Some((t0, hist)) => {
                    let us = t0.elapsed().as_micros() as u64;
                    hist.record_us(us);
                    us
                }
                None => 0,
            }
        }
    }

    impl Drop for SpanTimer {
        fn drop(&mut self) {
            self.finish();
        }
    }

    /// A started wall clock for phase timing; reads do not record
    /// anywhere, callers store the result themselves.
    #[derive(Clone, Copy, Debug)]
    pub struct Stopwatch(Instant);

    impl Stopwatch {
        /// Starts the clock.
        #[inline]
        pub fn start() -> Stopwatch {
            Stopwatch(Instant::now())
        }

        /// Microseconds since start.
        #[inline]
        pub fn elapsed_us(&self) -> u64 {
            self.0.elapsed().as_micros() as u64
        }

        /// Milliseconds since start.
        #[inline]
        pub fn elapsed_ms(&self) -> f64 {
            self.0.elapsed().as_secs_f64() * 1e3
        }
    }

    /// What a registry slot stores.
    #[derive(Debug)]
    enum Slot {
        Counter(Arc<AtomicU64>),
        Gauge(Arc<AtomicI64>),
        Histogram(Arc<HistogramCore>),
    }

    /// The registry's storage: named slots behind one lock (`None` =
    /// the runtime kill switch).
    type Slots = Option<Arc<Mutex<Vec<(String, Slot)>>>>;

    /// A named collection of instruments.
    ///
    /// `counter`/`gauge`/`histogram` get-or-create by name and hand
    /// out clonable handles; registration takes a lock, recording
    /// through a handle is lock-free. Clones share storage. The whole
    /// registry can be born disabled ([`Registry::disabled`]): it then
    /// hands out storage-less handles and snapshots empty.
    #[derive(Clone, Debug)]
    pub struct Registry {
        inner: Slots,
    }

    impl Default for Registry {
        fn default() -> Self {
            Registry::new()
        }
    }

    impl Registry {
        /// An enabled, empty registry.
        pub fn new() -> Registry {
            Registry {
                inner: Some(Arc::new(Mutex::new(Vec::new()))),
            }
        }

        /// A registry whose handles all record nothing (runtime kill
        /// switch; the compile-time switch is the `telemetry` feature).
        pub fn disabled() -> Registry {
            Registry { inner: None }
        }

        /// Whether this registry stores anything.
        pub fn is_enabled(&self) -> bool {
            self.inner.is_some()
        }

        fn slot<T>(
            &self,
            name: &str,
            make: impl FnOnce() -> Slot,
            pick: impl Fn(&Slot) -> Option<T>,
        ) -> Option<T> {
            let inner = self.inner.as_ref()?;
            let mut slots = inner.lock().unwrap();
            if let Some((_, slot)) = slots.iter().find(|(n, _)| n == name) {
                let picked = pick(slot);
                assert!(
                    picked.is_some(),
                    "metric `{name}` already registered with a different kind"
                );
                return picked;
            }
            let slot = make();
            let picked = pick(&slot);
            slots.push((name.to_string(), slot));
            picked
        }

        /// The counter named `name`, created on first use.
        pub fn counter(&self, name: &str) -> Counter {
            Counter(self.slot(
                name,
                || Slot::Counter(Arc::default()),
                |s| match s {
                    Slot::Counter(c) => Some(Arc::clone(c)),
                    _ => None,
                },
            ))
        }

        /// The gauge named `name`, created on first use.
        pub fn gauge(&self, name: &str) -> Gauge {
            Gauge(self.slot(
                name,
                || Slot::Gauge(Arc::default()),
                |s| match s {
                    Slot::Gauge(g) => Some(Arc::clone(g)),
                    _ => None,
                },
            ))
        }

        /// The histogram named `name`, created on first use.
        pub fn histogram(&self, name: &str) -> Histogram {
            Histogram(self.slot(
                name,
                || Slot::Histogram(Arc::default()),
                |s| match s {
                    Slot::Histogram(h) => Some(Arc::clone(h)),
                    _ => None,
                },
            ))
        }

        /// Zeroes every registered instrument **in place**: names stay
        /// registered and every handle already handed out (including
        /// the `SpanKey`/`CounterKey` handles cached into the global
        /// registry) keeps recording — into freshly zeroed storage.
        ///
        /// This is the per-run isolation hook for harnesses that drive
        /// many workloads through one process: reset between runs and a
        /// run's snapshot matches what a fresh process would have
        /// recorded.
        pub fn reset(&self) {
            let Some(inner) = &self.inner else {
                return;
            };
            for (_, slot) in inner.lock().unwrap().iter() {
                match slot {
                    Slot::Counter(c) => c.store(0, Relaxed),
                    Slot::Gauge(g) => g.store(0, Relaxed),
                    Slot::Histogram(h) => h.reset(),
                }
            }
        }

        /// Snapshots every registered instrument, sorted by name.
        pub fn snapshot(&self) -> MetricsSnapshot {
            let mut out = MetricsSnapshot::new();
            let Some(inner) = &self.inner else {
                return out;
            };
            for (name, slot) in inner.lock().unwrap().iter() {
                match slot {
                    Slot::Counter(c) => out.counter(name.clone(), c.load(Relaxed)),
                    Slot::Gauge(g) => out.gauge(name.clone(), g.load(Relaxed)),
                    Slot::Histogram(h) => {
                        out.histogram(name.clone(), Histogram(Some(Arc::clone(h))).snapshot())
                    }
                }
            }
            out
        }
    }
}

#[cfg(feature = "telemetry")]
pub use enabled::{Counter, Gauge, Histogram, Registry, SpanTimer, Stopwatch};

// ---------------------------------------------------------------------------
// Disabled build: zero-sized mirrors, same signatures, empty bodies.
// ---------------------------------------------------------------------------

#[cfg(not(feature = "telemetry"))]
mod disabled {
    use super::*;

    /// No-op counter (the `telemetry` feature is off).
    #[derive(Clone, Copy, Debug, Default)]
    pub struct Counter;

    impl Counter {
        /// No-op.
        #[inline(always)]
        pub fn add(&self, _n: u64) {}
        /// No-op.
        #[inline(always)]
        pub fn incr(&self) {}
        /// Always 0.
        #[inline(always)]
        pub fn get(&self) -> u64 {
            0
        }
    }

    /// No-op gauge (the `telemetry` feature is off).
    #[derive(Clone, Copy, Debug, Default)]
    pub struct Gauge;

    impl Gauge {
        /// No-op.
        #[inline(always)]
        pub fn set(&self, _v: i64) {}
        /// No-op.
        #[inline(always)]
        pub fn add(&self, _delta: i64) {}
        /// Always 0.
        #[inline(always)]
        pub fn get(&self) -> i64 {
            0
        }
    }

    /// No-op histogram (the `telemetry` feature is off).
    #[derive(Clone, Copy, Debug, Default)]
    pub struct Histogram;

    impl Histogram {
        /// No-op.
        #[inline(always)]
        pub fn record_us(&self, _us: u64) {}
        /// Always false.
        #[inline(always)]
        pub fn is_enabled(&self) -> bool {
            false
        }
        /// Always empty.
        #[inline(always)]
        pub fn snapshot(&self) -> HistogramSnapshot {
            HistogramSnapshot::default()
        }
    }

    /// No-op span guard (the `telemetry` feature is off).
    #[derive(Debug)]
    pub struct SpanTimer;

    impl SpanTimer {
        /// No-op.
        #[inline(always)]
        pub fn start(_hist: &Histogram) -> SpanTimer {
            SpanTimer
        }
        /// Always 0.
        #[inline(always)]
        pub fn stop(self) -> u64 {
            0
        }
    }

    /// No-op stopwatch (the `telemetry` feature is off).
    #[derive(Clone, Copy, Debug)]
    pub struct Stopwatch;

    impl Stopwatch {
        /// No-op.
        #[inline(always)]
        pub fn start() -> Stopwatch {
            Stopwatch
        }
        /// Always 0.
        #[inline(always)]
        pub fn elapsed_us(&self) -> u64 {
            0
        }
        /// Always 0.
        #[inline(always)]
        pub fn elapsed_ms(&self) -> f64 {
            0.0
        }
    }

    /// No-op registry (the `telemetry` feature is off).
    #[derive(Clone, Copy, Debug, Default)]
    pub struct Registry;

    impl Registry {
        /// A no-op registry.
        #[inline(always)]
        pub fn new() -> Registry {
            Registry
        }
        /// A no-op registry.
        #[inline(always)]
        pub fn disabled() -> Registry {
            Registry
        }
        /// Always false.
        #[inline(always)]
        pub fn is_enabled(&self) -> bool {
            false
        }
        /// A no-op handle.
        #[inline(always)]
        pub fn counter(&self, _name: &str) -> Counter {
            Counter
        }
        /// A no-op handle.
        #[inline(always)]
        pub fn gauge(&self, _name: &str) -> Gauge {
            Gauge
        }
        /// A no-op handle.
        #[inline(always)]
        pub fn histogram(&self, _name: &str) -> Histogram {
            Histogram
        }
        /// No-op.
        #[inline(always)]
        pub fn reset(&self) {}
        /// Always empty.
        #[inline(always)]
        pub fn snapshot(&self) -> MetricsSnapshot {
            MetricsSnapshot::new()
        }
    }
}

#[cfg(not(feature = "telemetry"))]
pub use disabled::{Counter, Gauge, Histogram, Registry, SpanTimer, Stopwatch};

#[cfg(all(test, feature = "telemetry"))]
mod tests {
    use super::enabled::{bucket_of, bucket_upper};
    use super::*;

    #[test]
    fn bucket_boundaries_are_bit_lengths() {
        // Bucket 0 = {0}; bucket i covers [2^(i-1), 2^i - 1].
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(7), 3);
        assert_eq!(bucket_of(8), 4);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), 63);
        for b in 1..63 {
            // The boundary pair (2^b - 1, 2^b) straddles buckets b, b+1.
            assert_eq!(bucket_of(bucket_upper(b)), b);
            assert_eq!(bucket_of(bucket_upper(b) + 1), b + 1);
        }
        assert_eq!(bucket_upper(0), 0);
        assert_eq!(bucket_upper(63), u64::MAX);
    }

    #[test]
    fn histogram_quantiles_report_bucket_upper_bounds() {
        let reg = Registry::new();
        let h = reg.histogram("t");
        // 100 samples: 50× 3µs (bucket 2), 40× 10µs (bucket 4),
        // 9× 100µs (bucket 7), 1× 1000µs (bucket 10).
        for _ in 0..50 {
            h.record_us(3);
        }
        for _ in 0..40 {
            h.record_us(10);
        }
        for _ in 0..9 {
            h.record_us(100);
        }
        h.record_us(1000);
        let snap = h.snapshot();
        assert_eq!(snap.count, 100);
        assert_eq!(snap.sum_us, 50 * 3 + 40 * 10 + 9 * 100 + 1000);
        assert_eq!(snap.max_us, 1000);
        assert_eq!(snap.p50_us, 3); // rank 50 lands in bucket 2: [2, 3]
        assert_eq!(snap.p90_us, 15); // rank 90 lands in bucket 4: [8, 15]
        assert_eq!(snap.p99_us, 127); // rank 99 lands in bucket 7: [64, 127]
    }

    #[test]
    fn single_sample_histogram_pins_all_quantiles() {
        let reg = Registry::new();
        let h = reg.histogram("one");
        h.record_us(0);
        let snap = h.snapshot();
        assert_eq!(
            (snap.count, snap.p50_us, snap.p99_us, snap.max_us),
            (1, 0, 0, 0)
        );
    }

    #[test]
    fn registry_hands_out_shared_handles_and_snapshots_sorted() {
        let reg = Registry::new();
        let c1 = reg.counter("z.ops");
        let c2 = reg.counter("z.ops");
        c1.add(2);
        c2.incr();
        assert_eq!(c1.get(), 3);
        reg.gauge("a.level").set(-4);
        reg.histogram("m.lat_us").record_us(5);
        let snap = reg.snapshot();
        let names: Vec<&str> = snap.iter().map(|(n, _)| n).collect();
        assert_eq!(names, ["a.level", "m.lat_us", "z.ops"]);
    }

    #[test]
    fn disabled_registry_records_nothing() {
        let reg = Registry::disabled();
        assert!(!reg.is_enabled());
        let c = reg.counter("x");
        c.add(10);
        assert_eq!(c.get(), 0);
        let h = reg.histogram("y");
        h.record_us(10);
        assert_eq!(h.snapshot().count, 0);
        assert!(reg.snapshot().is_empty());
        assert_eq!(SpanTimer::start(&h).stop(), 0);
    }

    #[test]
    fn span_timer_records_once_on_stop_or_drop() {
        let reg = Registry::new();
        let h = reg.histogram("span_us");
        SpanTimer::start(&h).stop();
        {
            let _guard = SpanTimer::start(&h);
        }
        assert_eq!(h.snapshot().count, 2);
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn registering_the_same_name_with_another_kind_panics() {
        let reg = Registry::new();
        reg.counter("dual");
        reg.gauge("dual");
    }

    #[test]
    fn reset_run_reproduces_a_fresh_registry_snapshot() {
        // The deterministic "run" both registries replay.
        let run = |reg: &Registry| {
            reg.counter("run.ops").add(42);
            reg.gauge("run.level").set(-7);
            let h = reg.histogram("run.lat_us");
            for us in [3, 10, 10, 100, 1000] {
                h.record_us(us);
            }
        };
        // Pollute a registry with a first run — and hold handles issued
        // *before* the reset, as a long-lived caller (or a cached
        // SpanKey into the global registry) would.
        let reg = Registry::new();
        run(&reg);
        let stale_counter = reg.counter("run.ops");
        let stale_hist = reg.histogram("run.lat_us");
        reg.reset();
        assert_eq!(stale_counter.get(), 0, "reset zeroes in place");
        assert_eq!(stale_hist.snapshot().count, 0);
        // Replay the run on the reset registry — recording through the
        // pre-reset handles, which must still point at live storage.
        stale_counter.add(42);
        reg.gauge("run.level").set(-7);
        for us in [3, 10, 10, 100, 1000] {
            stale_hist.record_us(us);
        }
        // A fresh registry running the same ops snapshots identically.
        let fresh = Registry::new();
        run(&fresh);
        assert_eq!(
            reg.snapshot().to_json(),
            fresh.snapshot().to_json(),
            "a reset run must reproduce a fresh-process snapshot"
        );
    }

    #[test]
    fn reset_on_a_disabled_registry_is_a_no_op() {
        let reg = Registry::disabled();
        reg.reset();
        assert!(reg.snapshot().is_empty());
    }
}
