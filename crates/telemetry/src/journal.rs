//! The bounded event journal: a ring buffer of per-window stream
//! activity.
//!
//! Histograms answer "how slow", the journal answers "what happened
//! just now": each [`StreamEvent`] summarizes one unit of stream work
//! (a mutation window, a compaction, an online promote/retire). The
//! buffer is bounded — a monitor that runs for months keeps only the
//! newest `capacity` events — and sequence numbers stay monotone
//! across wraparound, so consumers can detect gaps.

use crate::json::JsonWriter;
use crate::snapshot::{Export, MetricsSnapshot};

/// One unit of stream activity.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StreamEvent {
    /// One `apply_deltas` window (or a single-mutation call: a window
    /// of one) finished.
    Window {
        /// Mutations applied (no-ops excluded).
        mutations: u32,
        /// Distinct dependency-group probes the window performed.
        groups_touched: u32,
        /// Violations the window introduced.
        introduced: u32,
        /// Violations the window resolved.
        resolved: u32,
    },
    /// A `compact()` pass reclaimed dead state.
    Compaction {
        /// Emptied key groups dropped from group indexes.
        key_groups_dropped: u32,
        /// Dead interned strings reclaimed.
        strings_dropped: u32,
        /// Interner bytes reclaimed.
        bytes_reclaimed: u64,
    },
    /// Dependencies were added live (e.g. an online-miner promotion).
    Promote {
        /// CFDs added.
        cfds: u32,
        /// CINDs added.
        cinds: u32,
        /// Violations the new dependencies introduced.
        introduced: u32,
    },
    /// Dependencies were retired live (e.g. decay retirement).
    Retire {
        /// CFDs retired.
        cfds: u32,
        /// CINDs retired.
        cinds: u32,
        /// Violations that retired with them.
        resolved: u32,
    },
}

impl StreamEvent {
    /// The event's kind label as it appears in JSON.
    pub fn kind(&self) -> &'static str {
        match self {
            StreamEvent::Window { .. } => "window",
            StreamEvent::Compaction { .. } => "compaction",
            StreamEvent::Promote { .. } => "promote",
            StreamEvent::Retire { .. } => "retire",
        }
    }
}

/// A [`StreamEvent`] plus its position in the journal's history.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct JournalEvent {
    /// 0-based monotone sequence number; never reused, survives
    /// wraparound.
    pub seq: u64,
    /// What happened.
    pub event: StreamEvent,
}

impl JournalEvent {
    /// Writes the event as one flat JSON object.
    pub fn write_json(&self, w: &mut JsonWriter) {
        w.begin_object();
        w.key("seq");
        w.value_u64(self.seq);
        w.key("kind");
        w.value_str(self.event.kind());
        match self.event {
            StreamEvent::Window {
                mutations,
                groups_touched,
                introduced,
                resolved,
            } => {
                w.key("mutations");
                w.value_u64(mutations as u64);
                w.key("groups_touched");
                w.value_u64(groups_touched as u64);
                w.key("introduced");
                w.value_u64(introduced as u64);
                w.key("resolved");
                w.value_u64(resolved as u64);
            }
            StreamEvent::Compaction {
                key_groups_dropped,
                strings_dropped,
                bytes_reclaimed,
            } => {
                w.key("key_groups_dropped");
                w.value_u64(key_groups_dropped as u64);
                w.key("strings_dropped");
                w.value_u64(strings_dropped as u64);
                w.key("bytes_reclaimed");
                w.value_u64(bytes_reclaimed);
            }
            StreamEvent::Promote {
                cfds,
                cinds,
                introduced,
            } => {
                w.key("cfds");
                w.value_u64(cfds as u64);
                w.key("cinds");
                w.value_u64(cinds as u64);
                w.key("introduced");
                w.value_u64(introduced as u64);
            }
            StreamEvent::Retire {
                cfds,
                cinds,
                resolved,
            } => {
                w.key("cfds");
                w.value_u64(cfds as u64);
                w.key("cinds");
                w.value_u64(cinds as u64);
                w.key("resolved");
                w.value_u64(resolved as u64);
            }
        }
        w.end_object();
    }
}

impl Export for JournalEvent {
    fn export(&self, prefix: &str, out: &mut MetricsSnapshot) {
        out.counter(crate::key(prefix, "seq"), self.seq);
        out.text(crate::key(prefix, "kind"), self.event.kind());
        let mut field = |name: &str, v: u64| out.counter(crate::key(prefix, name), v);
        match self.event {
            StreamEvent::Window {
                mutations,
                groups_touched,
                introduced,
                resolved,
            } => {
                field("mutations", mutations as u64);
                field("groups_touched", groups_touched as u64);
                field("introduced", introduced as u64);
                field("resolved", resolved as u64);
            }
            StreamEvent::Compaction {
                key_groups_dropped,
                strings_dropped,
                bytes_reclaimed,
            } => {
                field("key_groups_dropped", key_groups_dropped as u64);
                field("strings_dropped", strings_dropped as u64);
                field("bytes_reclaimed", bytes_reclaimed);
            }
            StreamEvent::Promote {
                cfds,
                cinds,
                introduced,
            } => {
                field("cfds", cfds as u64);
                field("cinds", cinds as u64);
                field("introduced", introduced as u64);
            }
            StreamEvent::Retire {
                cfds,
                cinds,
                resolved,
            } => {
                field("cfds", cfds as u64);
                field("cinds", cinds as u64);
                field("resolved", resolved as u64);
            }
        }
    }
}

#[cfg(feature = "telemetry")]
mod enabled {
    use super::*;
    use std::collections::VecDeque;

    /// A bounded ring buffer of [`JournalEvent`]s.
    ///
    /// `push` is O(1): once full, the oldest event is overwritten.
    /// All mutation goes through `&mut self` — the journal is owned by
    /// its stream, not shared, so no locking is involved.
    #[derive(Clone, Debug)]
    pub struct Journal {
        cap: usize,
        next_seq: u64,
        ring: VecDeque<JournalEvent>,
    }

    impl Journal {
        /// A journal keeping the newest `cap` events (min 1).
        pub fn with_capacity(cap: usize) -> Journal {
            let cap = cap.max(1);
            Journal {
                cap,
                next_seq: 0,
                ring: VecDeque::with_capacity(cap),
            }
        }

        /// Rebounds the ring to keep the newest `cap` events (min 1).
        ///
        /// Shrinking evicts the oldest retained events immediately;
        /// growing keeps everything and simply raises the bound.
        /// Sequence numbers and [`total`](Journal::total) are
        /// unaffected either way.
        pub fn set_capacity(&mut self, cap: usize) {
            self.cap = cap.max(1);
            while self.ring.len() > self.cap {
                self.ring.pop_front();
            }
        }

        /// Appends an event, evicting the oldest when full.
        pub fn push(&mut self, event: StreamEvent) {
            if self.ring.len() == self.cap {
                self.ring.pop_front();
            }
            self.ring.push_back(JournalEvent {
                seq: self.next_seq,
                event,
            });
            self.next_seq += 1;
        }

        /// Events currently retained.
        pub fn len(&self) -> usize {
            self.ring.len()
        }

        /// Whether nothing has been retained.
        pub fn is_empty(&self) -> bool {
            self.ring.is_empty()
        }

        /// Maximum events retained.
        pub fn capacity(&self) -> usize {
            self.cap
        }

        /// Events ever pushed (including evicted ones).
        pub fn total(&self) -> u64 {
            self.next_seq
        }

        /// The newest `n` events, oldest first.
        pub fn tail(&self, n: usize) -> Vec<JournalEvent> {
            let skip = self.ring.len().saturating_sub(n);
            self.ring.iter().skip(skip).copied().collect()
        }

        /// Iterates retained events, oldest first.
        pub fn iter(&self) -> impl Iterator<Item = &JournalEvent> {
            self.ring.iter()
        }
    }
}

#[cfg(feature = "telemetry")]
pub use enabled::Journal;

#[cfg(not(feature = "telemetry"))]
mod disabled {
    use super::*;

    /// No-op journal (the `telemetry` feature is off).
    #[derive(Clone, Copy, Debug)]
    pub struct Journal;

    impl Journal {
        /// A no-op journal.
        #[inline(always)]
        pub fn with_capacity(_cap: usize) -> Journal {
            Journal
        }
        /// No-op.
        #[inline(always)]
        pub fn set_capacity(&mut self, _cap: usize) {}
        /// No-op.
        #[inline(always)]
        pub fn push(&mut self, _event: StreamEvent) {}
        /// Always 0.
        #[inline(always)]
        pub fn len(&self) -> usize {
            0
        }
        /// Always true.
        #[inline(always)]
        pub fn is_empty(&self) -> bool {
            true
        }
        /// Always 0.
        #[inline(always)]
        pub fn capacity(&self) -> usize {
            0
        }
        /// Always 0.
        #[inline(always)]
        pub fn total(&self) -> u64 {
            0
        }
        /// Always empty.
        #[inline(always)]
        pub fn tail(&self, _n: usize) -> Vec<JournalEvent> {
            Vec::new()
        }
        /// Always empty.
        #[inline(always)]
        pub fn iter(&self) -> impl Iterator<Item = &JournalEvent> {
            std::iter::empty()
        }
    }
}

#[cfg(not(feature = "telemetry"))]
pub use disabled::Journal;

#[cfg(all(test, feature = "telemetry"))]
mod tests {
    use super::*;

    fn window(mutations: u32) -> StreamEvent {
        StreamEvent::Window {
            mutations,
            groups_touched: 0,
            introduced: 0,
            resolved: 0,
        }
    }

    #[test]
    fn wraparound_keeps_the_newest_events_and_monotone_seqs() {
        let mut j = Journal::with_capacity(4);
        for i in 0..10 {
            j.push(window(i));
        }
        assert_eq!(j.len(), 4);
        assert_eq!(j.total(), 10);
        let tail = j.tail(100);
        let seqs: Vec<u64> = tail.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, [6, 7, 8, 9]);
        assert_eq!(tail[0].event, window(6));
        assert_eq!(tail[3].event, window(9));
    }

    #[test]
    fn tail_returns_the_newest_n_oldest_first() {
        let mut j = Journal::with_capacity(8);
        for i in 0..5 {
            j.push(window(i));
        }
        let tail = j.tail(2);
        assert_eq!(tail.len(), 2);
        assert_eq!(tail[0].seq, 3);
        assert_eq!(tail[1].seq, 4);
        assert!(j.tail(0).is_empty());
    }

    #[test]
    fn set_capacity_shrinks_to_the_newest_and_grows_in_place() {
        let mut j = Journal::with_capacity(8);
        for i in 0..6 {
            j.push(window(i));
        }
        // Shrink: only the newest 2 survive; totals are untouched.
        j.set_capacity(2);
        assert_eq!(j.capacity(), 2);
        assert_eq!(j.len(), 2);
        assert_eq!(j.total(), 6);
        let seqs: Vec<u64> = j.tail(10).iter().map(|e| e.seq).collect();
        assert_eq!(seqs, [4, 5]);
        // Grow: retained events stay, the bound rises.
        j.set_capacity(5);
        for i in 6..10 {
            j.push(window(i));
        }
        assert_eq!(j.len(), 5);
        let seqs: Vec<u64> = j.tail(10).iter().map(|e| e.seq).collect();
        assert_eq!(seqs, [5, 6, 7, 8, 9]);
        // Zero is clamped like the constructor.
        j.set_capacity(0);
        assert_eq!((j.capacity(), j.len()), (1, 1));
        assert_eq!(j.tail(1)[0].seq, 9);
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let mut j = Journal::with_capacity(0);
        j.push(window(1));
        j.push(window(2));
        assert_eq!(j.len(), 1);
        assert_eq!(j.tail(5)[0].seq, 1);
    }

    #[test]
    fn events_render_as_valid_json() {
        let events = [
            StreamEvent::Window {
                mutations: 1,
                groups_touched: 2,
                introduced: 3,
                resolved: 4,
            },
            StreamEvent::Compaction {
                key_groups_dropped: 1,
                strings_dropped: 2,
                bytes_reclaimed: 3,
            },
            StreamEvent::Promote {
                cfds: 1,
                cinds: 0,
                introduced: 2,
            },
            StreamEvent::Retire {
                cfds: 0,
                cinds: 1,
                resolved: 2,
            },
        ];
        let mut j = Journal::with_capacity(8);
        for e in events {
            j.push(e);
        }
        let mut w = JsonWriter::new();
        w.begin_array();
        for e in j.iter() {
            e.write_json(&mut w);
        }
        w.end_array();
        let json = w.finish();
        assert!(crate::json::is_valid(&json), "invalid JSON:\n{json}");
        for kind in ["window", "compaction", "promote", "retire"] {
            assert!(json.contains(kind));
        }
    }
}
