//! Static keys: zero-lookup handles into the process-wide registry.
//!
//! A `static` key names its metric once at compile time; the first
//! record resolves it against [`global()`] and caches the handle in a
//! `OnceLock`, so every later record is just the atomic op (plus the
//! clock read for spans) — no name hashing, no registry lock. This is
//! the idiomatic way to instrument code that has no natural place to
//! store a handle (free functions like `discover`, constructors like
//! `Validator::new`):
//!
//! ```
//! use condep_telemetry::{SpanKey, CounterKey};
//!
//! static COMPILE_SPAN: SpanKey = SpanKey::new("validator.compile_us");
//! static GROUPS_BUILT: CounterKey = CounterKey::new("validator.groups_built");
//!
//! fn compile() {
//!     let _span = COMPILE_SPAN.enter(); // records on drop
//!     GROUPS_BUILT.add(1);
//! }
//! # compile();
//! ```
//!
//! Components with per-instance state (`ValidatorStream`) own their
//! own [`Registry`] instead, keeping instances independent and tests
//! deterministic under parallel execution.

use crate::metrics::{Counter, Histogram, Registry, SpanTimer};
use std::sync::OnceLock;

/// The process-wide registry that static keys resolve against.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// A `static`-friendly named histogram for span timing.
#[derive(Debug)]
pub struct SpanKey {
    name: &'static str,
    cell: OnceLock<Histogram>,
}

impl SpanKey {
    /// A key for the histogram named `name` in the global registry.
    pub const fn new(name: &'static str) -> SpanKey {
        SpanKey {
            name,
            cell: OnceLock::new(),
        }
    }

    /// The metric name this key resolves.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The cached histogram handle (resolved on first use).
    pub fn histogram(&'static self) -> &'static Histogram {
        self.cell.get_or_init(|| global().histogram(self.name))
    }

    /// Starts a span recording into this key's histogram on drop.
    #[inline]
    pub fn enter(&'static self) -> SpanTimer {
        SpanTimer::start(self.histogram())
    }

    /// Records an already-measured duration.
    #[inline]
    pub fn record_us(&'static self, us: u64) {
        self.histogram().record_us(us);
    }
}

/// A `static`-friendly named counter.
#[derive(Debug)]
pub struct CounterKey {
    name: &'static str,
    cell: OnceLock<Counter>,
}

impl CounterKey {
    /// A key for the counter named `name` in the global registry.
    pub const fn new(name: &'static str) -> CounterKey {
        CounterKey {
            name,
            cell: OnceLock::new(),
        }
    }

    /// The metric name this key resolves.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The cached counter handle (resolved on first use).
    pub fn counter(&'static self) -> &'static Counter {
        self.cell.get_or_init(|| global().counter(self.name))
    }

    /// Adds `n` events.
    #[inline]
    pub fn add(&'static self, n: u64) {
        self.counter().add(n);
    }

    /// Adds one event.
    #[inline]
    pub fn incr(&'static self) {
        self.counter().incr();
    }
}

#[cfg(all(test, feature = "telemetry"))]
mod tests {
    use super::*;

    static TEST_SPAN: SpanKey = SpanKey::new("telemetry.test.span_us");
    static TEST_COUNT: CounterKey = CounterKey::new("telemetry.test.count");

    #[test]
    fn static_keys_resolve_once_against_the_global_registry() {
        TEST_COUNT.add(2);
        TEST_COUNT.incr();
        assert!(TEST_COUNT.counter().get() >= 3);
        // The global registry sees the same storage.
        assert!(global().counter("telemetry.test.count").get() >= 3);

        TEST_SPAN.enter().stop();
        assert!(TEST_SPAN.histogram().snapshot().count >= 1);
        assert_eq!(TEST_SPAN.name(), "telemetry.test.span_us");
    }
}
