//! A tiny hand-rolled JSON surface: a pretty-printing writer and a
//! syntax validator.
//!
//! The repo takes no external dependencies, so every report that
//! leaves the engine as JSON (`BENCH_*.json`, `HealthSnapshot`) is
//! assembled by hand. This module centralizes that assembly — one
//! escaper, one float policy (non-finite → `null`), one indentation
//! style — replacing the per-bench `format!` chains, and provides
//! [`is_valid`] so tests can assert round-trippability without a
//! parser dependency.

/// Incremental writer producing pretty-printed (2-space indented) JSON.
///
/// The caller drives it with `begin_*`/`end_*`/`key`/`value_*` calls;
/// commas and newlines are inserted automatically. The writer does not
/// validate call order — mismatched begin/end pairs produce garbage —
/// but [`is_valid`] in tests catches that.
#[derive(Debug, Default)]
pub struct JsonWriter {
    out: String,
    /// One frame per open container: `true` once the container has at
    /// least one element (so the next element needs a comma).
    stack: Vec<bool>,
    /// Set after `key(…)`: the next value continues the current line.
    after_key: bool,
}

impl JsonWriter {
    /// A fresh writer with no output.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consumes the writer and returns the accumulated JSON text.
    pub fn finish(self) -> String {
        self.out
    }

    fn newline_indent(&mut self) {
        self.out.push('\n');
        for _ in 0..self.stack.len() {
            self.out.push_str("  ");
        }
    }

    /// Positions the cursor for the next element: after a key it stays
    /// on the line; inside a container it emits the comma/newline.
    fn pre_element(&mut self) {
        if self.after_key {
            self.after_key = false;
            return;
        }
        if let Some(has_elems) = self.stack.last_mut() {
            if *has_elems {
                self.out.push(',');
            }
            *has_elems = true;
            self.newline_indent();
        }
    }

    /// Opens a `{`.
    pub fn begin_object(&mut self) {
        self.pre_element();
        self.out.push('{');
        self.stack.push(false);
    }

    /// Closes the innermost `{`.
    pub fn end_object(&mut self) {
        let had_elems = self.stack.pop().unwrap_or(false);
        if had_elems {
            self.newline_indent();
        }
        self.out.push('}');
    }

    /// Opens a `[`.
    pub fn begin_array(&mut self) {
        self.pre_element();
        self.out.push('[');
        self.stack.push(false);
    }

    /// Closes the innermost `[`.
    pub fn end_array(&mut self) {
        let had_elems = self.stack.pop().unwrap_or(false);
        if had_elems {
            self.newline_indent();
        }
        self.out.push(']');
    }

    /// Emits an object key; the next `value_*`/`begin_*` call is its value.
    pub fn key(&mut self, name: &str) {
        self.pre_element();
        self.out.push('"');
        escape_into(name, &mut self.out);
        self.out.push_str("\": ");
        self.after_key = true;
    }

    /// Emits an unsigned integer value.
    pub fn value_u64(&mut self, v: u64) {
        self.pre_element();
        self.out.push_str(&v.to_string());
    }

    /// Emits a signed integer value.
    pub fn value_i64(&mut self, v: i64) {
        self.pre_element();
        self.out.push_str(&v.to_string());
    }

    /// Emits a float; NaN and ±∞ have no JSON spelling and become `null`.
    pub fn value_f64(&mut self, v: f64) {
        self.pre_element();
        if v.is_finite() {
            // `{}` on f64 is the shortest representation that parses
            // back exactly; it never produces exponent notation for
            // the magnitudes metrics reach.
            let repr = format!("{v}");
            self.out.push_str(&repr);
            // Keep integral floats visibly floats ("3.0", not "3").
            if !repr.contains(['.', 'e', 'E']) {
                self.out.push_str(".0");
            }
        } else {
            self.out.push_str("null");
        }
    }

    /// Emits a string value, escaped.
    pub fn value_str(&mut self, v: &str) {
        self.pre_element();
        self.out.push('"');
        escape_into(v, &mut self.out);
        self.out.push('"');
    }

    /// Emits a boolean value.
    pub fn value_bool(&mut self, v: bool) {
        self.pre_element();
        self.out.push_str(if v { "true" } else { "false" });
    }

    /// Emits a `null`.
    pub fn value_null(&mut self) {
        self.pre_element();
        self.out.push_str("null");
    }
}

/// Escapes `s` per RFC 8259 into `out` (quotes not included).
pub fn escape_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// Checks that `s` is one syntactically valid JSON value.
///
/// A strict recursive-descent pass over the RFC 8259 grammar —
/// no value materialization, no number range checks. Used by tests
/// and the smoke bench to assert that hand-assembled reports parse.
pub fn is_valid(s: &str) -> bool {
    let b = s.as_bytes();
    let mut at = skip_ws(b, 0);
    match value(b, at) {
        Some(end) => {
            at = skip_ws(b, end);
            at == b.len()
        }
        None => false,
    }
}

fn skip_ws(b: &[u8], mut at: usize) -> usize {
    while at < b.len() && matches!(b[at], b' ' | b'\t' | b'\n' | b'\r') {
        at += 1;
    }
    at
}

/// Parses one JSON value starting at `at`; returns the index just past it.
fn value(b: &[u8], at: usize) -> Option<usize> {
    match b.get(at)? {
        b'{' => object(b, at),
        b'[' => array(b, at),
        b'"' => string(b, at),
        b't' => literal(b, at, b"true"),
        b'f' => literal(b, at, b"false"),
        b'n' => literal(b, at, b"null"),
        b'-' | b'0'..=b'9' => number(b, at),
        _ => None,
    }
}

fn literal(b: &[u8], at: usize, lit: &[u8]) -> Option<usize> {
    if b.len() >= at + lit.len() && &b[at..at + lit.len()] == lit {
        Some(at + lit.len())
    } else {
        None
    }
}

fn object(b: &[u8], at: usize) -> Option<usize> {
    let mut at = skip_ws(b, at + 1);
    if b.get(at) == Some(&b'}') {
        return Some(at + 1);
    }
    loop {
        at = string(b, at)?;
        at = skip_ws(b, at);
        if b.get(at) != Some(&b':') {
            return None;
        }
        at = skip_ws(b, at + 1);
        at = value(b, at)?;
        at = skip_ws(b, at);
        match b.get(at)? {
            b',' => at = skip_ws(b, at + 1),
            b'}' => return Some(at + 1),
            _ => return None,
        }
    }
}

fn array(b: &[u8], at: usize) -> Option<usize> {
    let mut at = skip_ws(b, at + 1);
    if b.get(at) == Some(&b']') {
        return Some(at + 1);
    }
    loop {
        at = value(b, at)?;
        at = skip_ws(b, at);
        match b.get(at)? {
            b',' => at = skip_ws(b, at + 1),
            b']' => return Some(at + 1),
            _ => return None,
        }
    }
}

fn string(b: &[u8], at: usize) -> Option<usize> {
    if b.get(at) != Some(&b'"') {
        return None;
    }
    let mut at = at + 1;
    loop {
        match b.get(at)? {
            b'"' => return Some(at + 1),
            b'\\' => match b.get(at + 1)? {
                b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't' => at += 2,
                b'u' => {
                    if at + 6 > b.len() || !b[at + 2..at + 6].iter().all(u8::is_ascii_hexdigit) {
                        return None;
                    }
                    at += 6;
                }
                _ => return None,
            },
            c if *c < 0x20 => return None,
            _ => at += 1,
        }
    }
}

fn number(b: &[u8], at: usize) -> Option<usize> {
    let mut at = at;
    if b.get(at) == Some(&b'-') {
        at += 1;
    }
    // Integer part: "0" alone or a nonzero digit followed by digits.
    match b.get(at)? {
        b'0' => at += 1,
        b'1'..=b'9' => {
            while at < b.len() && b[at].is_ascii_digit() {
                at += 1;
            }
        }
        _ => return None,
    }
    if b.get(at) == Some(&b'.') {
        at += 1;
        if !b.get(at)?.is_ascii_digit() {
            return None;
        }
        while at < b.len() && b[at].is_ascii_digit() {
            at += 1;
        }
    }
    if matches!(b.get(at), Some(b'e') | Some(b'E')) {
        at += 1;
        if matches!(b.get(at), Some(b'+') | Some(b'-')) {
            at += 1;
        }
        if !b.get(at)?.is_ascii_digit() {
            return None;
        }
        while at < b.len() && b[at].is_ascii_digit() {
            at += 1;
        }
    }
    Some(at)
}

/// A parsed JSON document — the value tree [`parse`] produces.
///
/// Object member order is preserved (the writer emits deterministic
/// order, so round-trips stay comparable). Numbers are `f64`, which is
/// lossless for every count the metric surfaces emit (< 2^53).
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string, with escapes decoded.
    Str(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object, members in document order.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Object member lookup (`None` on non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Walks a `.`-separated member path from this value.
    pub fn at(&self, path: &str) -> Option<&JsonValue> {
        path.split('.').try_fold(self, |v, key| v.get(key))
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(vs) => Some(vs),
            _ => None,
        }
    }

    /// The members, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Object(members) => Some(members),
            _ => None,
        }
    }
}

/// Parses `s` into a [`JsonValue`] tree (`None` on any syntax error).
///
/// Accepts exactly the grammar [`is_valid`] accepts; the scoreboard
/// diff uses this to materialize two reports and walk them key by key.
pub fn parse(s: &str) -> Option<JsonValue> {
    let b = s.as_bytes();
    let at = skip_ws(b, 0);
    let (v, end) = parse_value(b, at)?;
    (skip_ws(b, end) == b.len()).then_some(v)
}

fn parse_value(b: &[u8], at: usize) -> Option<(JsonValue, usize)> {
    match b.get(at)? {
        b'{' => parse_object(b, at),
        b'[' => parse_array(b, at),
        b'"' => {
            let (s, end) = parse_string(b, at)?;
            Some((JsonValue::Str(s), end))
        }
        b't' => literal(b, at, b"true").map(|end| (JsonValue::Bool(true), end)),
        b'f' => literal(b, at, b"false").map(|end| (JsonValue::Bool(false), end)),
        b'n' => literal(b, at, b"null").map(|end| (JsonValue::Null, end)),
        b'-' | b'0'..=b'9' => {
            let end = number(b, at)?;
            let n = std::str::from_utf8(&b[at..end]).ok()?.parse().ok()?;
            Some((JsonValue::Num(n), end))
        }
        _ => None,
    }
}

fn parse_object(b: &[u8], at: usize) -> Option<(JsonValue, usize)> {
    let mut members = Vec::new();
    let mut at = skip_ws(b, at + 1);
    if b.get(at) == Some(&b'}') {
        return Some((JsonValue::Object(members), at + 1));
    }
    loop {
        let (key, end) = parse_string(b, at)?;
        at = skip_ws(b, end);
        if b.get(at) != Some(&b':') {
            return None;
        }
        let (v, end) = parse_value(b, skip_ws(b, at + 1))?;
        members.push((key, v));
        at = skip_ws(b, end);
        match b.get(at)? {
            b',' => at = skip_ws(b, at + 1),
            b'}' => return Some((JsonValue::Object(members), at + 1)),
            _ => return None,
        }
    }
}

fn parse_array(b: &[u8], at: usize) -> Option<(JsonValue, usize)> {
    let mut elems = Vec::new();
    let mut at = skip_ws(b, at + 1);
    if b.get(at) == Some(&b']') {
        return Some((JsonValue::Array(elems), at + 1));
    }
    loop {
        let (v, end) = parse_value(b, at)?;
        elems.push(v);
        at = skip_ws(b, end);
        match b.get(at)? {
            b',' => at = skip_ws(b, at + 1),
            b']' => return Some((JsonValue::Array(elems), at + 1)),
            _ => return None,
        }
    }
}

fn parse_string(b: &[u8], at: usize) -> Option<(String, usize)> {
    // Validate first (one pass, shared grammar), then decode over the
    // checked span so the decoder can assume well-formed escapes.
    let end = string(b, at)?;
    let body = std::str::from_utf8(&b[at + 1..end - 1]).ok()?;
    let mut out = String::with_capacity(body.len());
    let mut chars = body.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next()? {
            '"' => out.push('"'),
            '\\' => out.push('\\'),
            '/' => out.push('/'),
            'b' => out.push('\u{08}'),
            'f' => out.push('\u{0c}'),
            'n' => out.push('\n'),
            'r' => out.push('\r'),
            't' => out.push('\t'),
            'u' => {
                let hex4 = |cs: &mut std::str::Chars<'_>| -> Option<u32> {
                    let h: String = cs.by_ref().take(4).collect();
                    (h.len() == 4).then(|| u32::from_str_radix(&h, 16).ok())?
                };
                let mut code = hex4(&mut chars)?;
                if (0xD800..0xDC00).contains(&code) {
                    // A high surrogate must pair with `\uDCxx`.
                    if chars.next() != Some('\\') || chars.next() != Some('u') {
                        return None;
                    }
                    let low = hex4(&mut chars)?;
                    if !(0xDC00..0xE000).contains(&low) {
                        return None;
                    }
                    code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                }
                out.push(char::from_u32(code)?);
            }
            _ => return None,
        }
    }
    Some((out, end))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_produces_valid_nested_json() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("name");
        w.value_str("batch \"quoted\"\n");
        w.key("runs");
        w.begin_array();
        w.value_u64(1);
        w.value_f64(2.5);
        w.value_bool(true);
        w.value_null();
        w.end_array();
        w.key("empty_obj");
        w.begin_object();
        w.end_object();
        w.key("empty_arr");
        w.begin_array();
        w.end_array();
        w.end_object();
        let json = w.finish();
        assert!(is_valid(&json), "invalid JSON:\n{json}");
        assert!(json.contains("\\\"quoted\\\"\\n"));
    }

    #[test]
    fn validator_accepts_the_grammar() {
        for good in [
            "0",
            "-1.5e+10",
            "\"\"",
            "\"a\\u00e9b\"",
            "[]",
            "{}",
            "[1, 2, 3]",
            "{\"a\": {\"b\": [true, false, null]}}",
            "  {\"x\": 1}  ",
        ] {
            assert!(is_valid(good), "should be valid: {good}");
        }
    }

    #[test]
    fn validator_rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "}",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "{a: 1}",
            "01",
            "1.",
            "+1",
            "\"unterminated",
            "\"bad\\q\"",
            "nulll",
            "[1] trailing",
            "NaN",
        ] {
            assert!(!is_valid(bad), "should be invalid: {bad}");
        }
    }

    #[test]
    fn control_characters_escape_as_unicode() {
        let mut out = String::new();
        escape_into("a\u{01}b", &mut out);
        assert_eq!(out, "a\\u0001b");
    }

    #[test]
    fn parse_materializes_the_value_tree() {
        let v =
            parse("{\"a\": {\"b\": [1, 2.5, -3e2]}, \"s\": \"x\\ny\", \"t\": true, \"n\": null}")
                .expect("valid");
        assert_eq!(
            v.at("a.b").and_then(JsonValue::as_array).map(<[_]>::len),
            Some(3)
        );
        assert_eq!(
            v.at("a.b").unwrap().as_array().unwrap()[2].as_f64(),
            Some(-300.0)
        );
        assert_eq!(v.get("s").and_then(JsonValue::as_str), Some("x\ny"));
        assert_eq!(v.get("t"), Some(&JsonValue::Bool(true)));
        assert_eq!(v.get("n"), Some(&JsonValue::Null));
        assert_eq!(v.get("missing"), None);
        assert_eq!(v.at("a.b.c"), None);
    }

    #[test]
    fn parse_decodes_escapes_including_surrogate_pairs() {
        assert_eq!(
            parse("\"a\\u00e9\\t\\\\b\""),
            Some(JsonValue::Str("aé\t\\b".to_string()))
        );
        assert_eq!(
            parse("\"\\ud83d\\ude00\""),
            Some(JsonValue::Str("😀".to_string()))
        );
        assert_eq!(parse("\"\\ud83d\""), None, "lone high surrogate");
    }

    #[test]
    fn parse_round_trips_the_writer() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("name");
        w.value_str("batch \"quoted\"\n");
        w.key("runs");
        w.begin_array();
        w.value_u64(1);
        w.value_f64(2.5);
        w.value_null();
        w.end_array();
        w.end_object();
        let json = w.finish();
        let v = parse(&json).expect("writer output parses");
        assert_eq!(
            v.get("name").and_then(JsonValue::as_str),
            Some("batch \"quoted\"\n")
        );
        assert_eq!(
            v.get("runs"),
            Some(&JsonValue::Array(vec![
                JsonValue::Num(1.0),
                JsonValue::Num(2.5),
                JsonValue::Null
            ]))
        );
    }

    #[test]
    fn parse_rejects_what_is_valid_rejects() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "01", "[1] trailing", "nulll"] {
            assert_eq!(parse(bad), None, "should not parse: {bad}");
        }
    }
}
