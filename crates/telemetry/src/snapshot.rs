//! Point-in-time metric values: the always-compiled export surface.
//!
//! Everything in this module exists regardless of the `telemetry`
//! feature. Recording (the atomic counters and clocks in
//! [`crate::metrics`]) is what gets compiled away; a disabled build
//! still produces snapshots — they are simply empty or zeroed.

use crate::json::JsonWriter;

/// The value of one named metric at snapshot time.
#[derive(Clone, Debug, PartialEq)]
pub enum MetricValue {
    /// A monotonically increasing event count.
    Counter(u64),
    /// A signed level that can move both ways (resident bytes, live groups).
    Gauge(i64),
    /// A derived floating-point quantity (rates, milliseconds).
    Float(f64),
    /// A short label (config names, modes).
    Text(String),
    /// A latency distribution summary.
    Histogram(HistogramSnapshot),
}

/// Percentile summary of one log2-bucket microsecond histogram.
///
/// Quantiles are *bucket upper bounds*: the reported `p99_us` is the
/// largest value the bucket holding the p99 rank can contain
/// (`2^i - 1`), so the summary is deterministic given the bucket
/// counts and never interpolates.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of recorded samples.
    pub count: u64,
    /// Sum of all recorded samples, in microseconds.
    pub sum_us: u64,
    /// Largest recorded sample (exact, not bucketed).
    pub max_us: u64,
    /// Median, rounded up to its bucket upper bound.
    pub p50_us: u64,
    /// 90th percentile, rounded up to its bucket upper bound.
    pub p90_us: u64,
    /// 99th percentile, rounded up to its bucket upper bound.
    pub p99_us: u64,
}

impl HistogramSnapshot {
    /// Arithmetic mean in microseconds, `0.0` when empty.
    pub fn mean_us(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_us as f64 / self.count as f64
        }
    }
}

/// A sorted `dotted.name → value` map: the unit of metric exchange.
///
/// Names are dotted paths (`stream.apply.window_us`); the JSON writer
/// nests on the dots. Entries are kept sorted by name, so two
/// snapshots built from the same values in any insertion order render
/// byte-identically — the determinism contract every consumer
/// (benches, tests, scoreboard diffs) relies on.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsSnapshot {
    entries: Vec<(String, MetricValue)>,
}

impl MetricsSnapshot {
    /// An empty snapshot.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts or replaces `name`, keeping the entries sorted.
    pub fn set(&mut self, name: impl Into<String>, value: MetricValue) {
        let name = name.into();
        match self
            .entries
            .binary_search_by(|(n, _)| n.as_str().cmp(&name))
        {
            Ok(at) => self.entries[at].1 = value,
            Err(at) => self.entries.insert(at, (name, value)),
        }
    }

    /// Sets a [`MetricValue::Counter`] entry.
    pub fn counter(&mut self, name: impl Into<String>, value: u64) {
        self.set(name, MetricValue::Counter(value));
    }

    /// Sets a [`MetricValue::Gauge`] entry.
    pub fn gauge(&mut self, name: impl Into<String>, value: i64) {
        self.set(name, MetricValue::Gauge(value));
    }

    /// Sets a [`MetricValue::Float`] entry.
    pub fn float(&mut self, name: impl Into<String>, value: f64) {
        self.set(name, MetricValue::Float(value));
    }

    /// Sets a [`MetricValue::Text`] entry.
    pub fn text(&mut self, name: impl Into<String>, value: impl Into<String>) {
        self.set(name, MetricValue::Text(value.into()));
    }

    /// Sets a [`MetricValue::Histogram`] entry.
    pub fn histogram(&mut self, name: impl Into<String>, value: HistogramSnapshot) {
        self.set(name, MetricValue::Histogram(value));
    }

    /// Looks up one entry by exact name.
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.entries
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .ok()
            .map(|at| &self.entries[at].1)
    }

    /// Copies every entry of `other` into `self` under `prefix.`
    /// (or verbatim when `prefix` is empty).
    pub fn merge(&mut self, prefix: &str, other: &MetricsSnapshot) {
        for (name, value) in &other.entries {
            self.set(crate::key(prefix, name), value.clone());
        }
    }

    /// Iterates entries in sorted name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &MetricValue)> {
        self.entries.iter().map(|(n, v)| (n.as_str(), v))
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the snapshot holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Keeps only entries for which `keep` returns true.
    pub fn retain(&mut self, mut keep: impl FnMut(&str, &MetricValue) -> bool) {
        self.entries.retain(|(n, v)| keep(n, v));
    }

    /// Renders the snapshot as a pretty-printed JSON object, nesting
    /// on the dots in metric names (`a.b` becomes `{"a": {"b": …}}`).
    ///
    /// A name that is both a leaf and a prefix of deeper names
    /// (`a = 1` next to `a.b = 2`) keeps its leaf value under the
    /// reserved `_value` key inside the object. Keys come out sorted,
    /// so the rendering is deterministic.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        self.write_json(&mut w);
        w.finish()
    }

    /// Writes the snapshot as one JSON object into an in-progress
    /// [`JsonWriter`] (for embedding as a section of a larger report).
    pub fn write_json(&self, w: &mut JsonWriter) {
        w.begin_object();
        self.write_range(w, 0, self.entries.len(), 0);
        w.end_object();
    }

    /// Emits entries `[lo, hi)` whose names share a common (dot-complete)
    /// prefix of `depth` bytes, grouping on the next dot level.
    fn write_range(&self, w: &mut JsonWriter, lo: usize, hi: usize, depth: usize) {
        let mut at = lo;
        while at < hi {
            let (name, value) = &self.entries[at];
            let rest = &name[depth..];
            match rest.find('.') {
                None => {
                    // A leaf at this level. If deeper names extend it
                    // (`rest` followed by '.'), the leaf moves into the
                    // group under `_value` when that group is emitted.
                    let group_end = self.group_end(at + 1, hi, depth, rest);
                    if group_end > at + 1 {
                        w.key(rest);
                        w.begin_object();
                        w.key("_value");
                        value.write_json(w);
                        self.write_range(w, at + 1, group_end, depth + rest.len() + 1);
                        w.end_object();
                    } else {
                        w.key(rest);
                        value.write_json(w);
                    }
                    at = group_end;
                }
                Some(dot) => {
                    let head = &rest[..dot];
                    let group_end = self.group_end(at, hi, depth, head);
                    w.key(head);
                    w.begin_object();
                    self.write_range(w, at, group_end, depth + head.len() + 1);
                    w.end_object();
                    at = group_end;
                }
            }
        }
    }

    /// First index in `[from, hi)` whose name does not continue the
    /// group `prefix[..depth] + head + "."`.
    fn group_end(&self, from: usize, hi: usize, depth: usize, head: &str) -> usize {
        let mut end = from;
        while end < hi {
            let name = &self.entries[end].0[depth..];
            if name.len() > head.len()
                && name.starts_with(head)
                && name.as_bytes()[head.len()] == b'.'
            {
                end += 1;
            } else {
                break;
            }
        }
        end
    }
}

impl MetricValue {
    /// Writes this value into an in-progress [`JsonWriter`].
    pub fn write_json(&self, w: &mut JsonWriter) {
        match self {
            MetricValue::Counter(v) => w.value_u64(*v),
            MetricValue::Gauge(v) => w.value_i64(*v),
            MetricValue::Float(v) => w.value_f64(*v),
            MetricValue::Text(v) => w.value_str(v),
            MetricValue::Histogram(h) => h.write_json(w),
        }
    }
}

impl HistogramSnapshot {
    /// Writes the summary as a JSON object.
    pub fn write_json(&self, w: &mut JsonWriter) {
        w.begin_object();
        w.key("count");
        w.value_u64(self.count);
        w.key("sum_us");
        w.value_u64(self.sum_us);
        w.key("max_us");
        w.value_u64(self.max_us);
        w.key("p50_us");
        w.value_u64(self.p50_us);
        w.key("p90_us");
        w.value_u64(self.p90_us);
        w.key("p99_us");
        w.value_u64(self.p99_us);
        w.end_object();
    }
}

/// Renders a value into a [`MetricsSnapshot`] subtree.
///
/// The unifying interface over the engine's per-layer stats structs
/// (`CompactionStats`, `CoverStats`, `SamplingStats`, `PhaseTimings`,
/// `OnlineActivity`, …): each writes its fields under `prefix` and the
/// caller composes subtrees with [`MetricsSnapshot::merge`] or nested
/// prefixes. Implementations must be pure — same struct, same subtree.
pub trait Export {
    /// Writes this value's metrics under `prefix` (dotted; may be empty).
    fn export(&self, prefix: &str, out: &mut MetricsSnapshot);

    /// Convenience: a fresh snapshot holding just this value's subtree.
    fn to_snapshot(&self) -> MetricsSnapshot {
        let mut out = MetricsSnapshot::new();
        self.export("", &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entries_stay_sorted_regardless_of_insertion_order() {
        let mut a = MetricsSnapshot::new();
        a.counter("z.last", 1);
        a.counter("a.first", 2);
        a.counter("m.mid", 3);
        let mut b = MetricsSnapshot::new();
        b.counter("m.mid", 3);
        b.counter("z.last", 1);
        b.counter("a.first", 2);
        assert_eq!(a, b);
        assert_eq!(a.to_json(), b.to_json());
        let names: Vec<&str> = a.iter().map(|(n, _)| n).collect();
        assert_eq!(names, ["a.first", "m.mid", "z.last"]);
    }

    #[test]
    fn set_replaces_existing_entries() {
        let mut s = MetricsSnapshot::new();
        s.counter("hits", 1);
        s.counter("hits", 7);
        assert_eq!(s.len(), 1);
        assert_eq!(s.get("hits"), Some(&MetricValue::Counter(7)));
    }

    #[test]
    fn json_nests_on_dots_with_sorted_keys() {
        let mut s = MetricsSnapshot::new();
        s.counter("stream.apply.mutations", 4);
        s.gauge("stream.groups", -2);
        s.float("repair.net_cost", 1.5);
        let json = s.to_json();
        assert!(crate::json::is_valid(&json), "invalid JSON:\n{json}");
        assert!(json.contains("\"repair\""));
        assert!(json.contains("\"net_cost\": 1.5"));
        assert!(json.contains("\"mutations\": 4"));
        assert!(json.contains("\"groups\": -2"));
        // "repair" sorts before "stream".
        assert!(json.find("\"repair\"").unwrap() < json.find("\"stream\"").unwrap());
    }

    #[test]
    fn leaf_and_prefix_conflict_uses_the_reserved_value_key() {
        let mut s = MetricsSnapshot::new();
        s.counter("a", 1);
        s.counter("a.b", 2);
        let json = s.to_json();
        assert!(crate::json::is_valid(&json), "invalid JSON:\n{json}");
        assert!(json.contains("\"_value\": 1"));
        assert!(json.contains("\"b\": 2"));
    }

    #[test]
    fn merge_prefixes_every_entry() {
        let mut inner = MetricsSnapshot::new();
        inner.counter("polls", 9);
        let mut outer = MetricsSnapshot::new();
        outer.merge("online", &inner);
        assert_eq!(outer.get("online.polls"), Some(&MetricValue::Counter(9)));
        outer.merge("", &inner);
        assert_eq!(outer.get("polls"), Some(&MetricValue::Counter(9)));
    }

    #[test]
    fn non_finite_floats_render_as_null() {
        let mut s = MetricsSnapshot::new();
        s.float("bad", f64::NAN);
        s.float("worse", f64::INFINITY);
        let json = s.to_json();
        assert!(crate::json::is_valid(&json), "invalid JSON:\n{json}");
        assert!(json.contains("\"bad\": null"));
        assert!(json.contains("\"worse\": null"));
    }
}
