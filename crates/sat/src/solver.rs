//! The DPLL engine.
//!
//! Iterative DPLL with two-literal watching for unit propagation and
//! chronological backtracking, plus a static activity heuristic (branch
//! on the most frequently occurring unassigned variable). Complete: it
//! always answers SAT (with a model) or UNSAT within the configured
//! conflict budget, or `Unknown` when the budget runs out.

use crate::cnf::Cnf;
use crate::lit::{Lit, Var};

/// Tunables for the solver.
#[derive(Clone, Copy, Debug, Default)]
pub struct SolverConfig {
    /// Give up (returning [`SolveResult::Unknown`]) after this many
    /// conflicts; `None` means run to completion.
    pub max_conflicts: Option<u64>,
}

/// Outcome of [`Solver::solve`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SolveResult {
    /// Satisfiable, with a witnessing total assignment indexed by
    /// variable.
    Sat(Vec<bool>),
    /// Unsatisfiable.
    Unsat,
    /// Conflict budget exhausted before a verdict.
    Unknown,
}

impl SolveResult {
    /// Is this a SAT verdict?
    pub fn is_sat(&self) -> bool {
        matches!(self, SolveResult::Sat(_))
    }
}

/// Basic search statistics, useful in benchmarks.
#[derive(Clone, Copy, Debug, Default)]
pub struct SolverStats {
    /// Number of branching decisions made.
    pub decisions: u64,
    /// Number of literals propagated.
    pub propagations: u64,
    /// Number of conflicts hit.
    pub conflicts: u64,
}

/// A DPLL solver instance over one CNF formula.
pub struct Solver {
    clauses: Vec<Vec<Lit>>,
    /// `watches[lit.code()]` = indices of clauses currently watching `lit`.
    watches: Vec<Vec<usize>>,
    /// Partial assignment, indexed by variable.
    assign: Vec<Option<bool>>,
    /// Assigned literals in assignment order.
    trail: Vec<Lit>,
    /// `trail_lim[d]` = trail length when decision level `d+1` started.
    trail_lim: Vec<usize>,
    /// Decisions made so far: `(literal, tried_both_polarities)`.
    decisions: Vec<(Lit, bool)>,
    /// Next trail position to propagate.
    qhead: usize,
    /// Static branching scores (occurrence counts).
    scores: Vec<u64>,
    /// Preferred polarity per variable (majority of occurrences).
    polarity: Vec<bool>,
    /// Units from the original formula (propagated at level 0).
    initial_units: Vec<Lit>,
    trivially_unsat: bool,
    config: SolverConfig,
    stats: SolverStats,
}

impl Solver {
    /// Prepares a solver for `cnf`.
    pub fn new(cnf: &Cnf) -> Self {
        Self::with_config(cnf, SolverConfig::default())
    }

    /// Prepares a solver with an explicit configuration.
    pub fn with_config(cnf: &Cnf, config: SolverConfig) -> Self {
        let n = cnf.num_vars() as usize;
        let mut solver = Solver {
            clauses: Vec::with_capacity(cnf.num_clauses()),
            watches: vec![Vec::new(); 2 * n],
            assign: vec![None; n],
            trail: Vec::with_capacity(n),
            trail_lim: Vec::new(),
            decisions: Vec::new(),
            qhead: 0,
            scores: vec![0; n],
            polarity: vec![true; n],
            initial_units: Vec::new(),
            trivially_unsat: cnf.is_trivially_unsat(),
            config,
            stats: SolverStats::default(),
        };
        let mut pos_count = vec![0i64; n];
        for clause in cnf.clauses() {
            for &l in clause {
                solver.scores[l.var().index()] += 1;
                pos_count[l.var().index()] += if l.is_positive() { 1 } else { -1 };
            }
            match clause.len() {
                1 => solver.initial_units.push(clause[0]),
                _ => {
                    let idx = solver.clauses.len();
                    solver.watches[clause[0].code()].push(idx);
                    solver.watches[clause[1].code()].push(idx);
                    solver.clauses.push(clause.clone());
                }
            }
        }
        for (v, c) in pos_count.iter().enumerate() {
            solver.polarity[v] = *c >= 0;
        }
        solver
    }

    /// Search statistics so far.
    pub fn stats(&self) -> SolverStats {
        self.stats
    }

    /// Runs the search.
    pub fn solve(&mut self) -> SolveResult {
        if self.trivially_unsat {
            return SolveResult::Unsat;
        }
        // Level-0 units.
        for unit in std::mem::take(&mut self.initial_units) {
            if !self.enqueue(unit) {
                return SolveResult::Unsat;
            }
        }
        loop {
            if self.propagate_all() {
                // Conflict.
                self.stats.conflicts += 1;
                if let Some(max) = self.config.max_conflicts {
                    if self.stats.conflicts > max {
                        return SolveResult::Unknown;
                    }
                }
                if !self.backtrack() {
                    return SolveResult::Unsat;
                }
            } else {
                match self.pick_branch_var() {
                    None => {
                        let model = self.assign.iter().map(|a| a.unwrap_or(true)).collect();
                        return SolveResult::Sat(model);
                    }
                    Some(v) => {
                        self.stats.decisions += 1;
                        let lit = Lit::new(v, self.polarity[v.index()]);
                        self.new_decision_level();
                        self.decisions.push((lit, false));
                        let ok = self.enqueue(lit);
                        debug_assert!(ok, "decision literal was unassigned");
                    }
                }
            }
        }
    }

    /// Value of a literal under the current partial assignment.
    fn lit_value(&self, l: Lit) -> Option<bool> {
        self.assign[l.var().index()].map(|v| l.eval(v))
    }

    /// Assigns `l` true; returns `false` on immediate contradiction.
    fn enqueue(&mut self, l: Lit) -> bool {
        match self.lit_value(l) {
            Some(true) => true,
            Some(false) => false,
            None => {
                self.assign[l.var().index()] = Some(l.is_positive());
                self.trail.push(l);
                self.stats.propagations += 1;
                true
            }
        }
    }

    /// Propagates until fixpoint. Returns `true` iff a conflict arose.
    fn propagate_all(&mut self) -> bool {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            // Clauses watching ¬p just lost that watch; visit them.
            let false_lit = !p;
            let watching = std::mem::take(&mut self.watches[false_lit.code()]);
            let mut keep = Vec::with_capacity(watching.len());
            let mut conflict = false;
            for &ci in &watching {
                if conflict {
                    keep.push(ci);
                    continue;
                }
                let clause = &mut self.clauses[ci];
                // Normalize: the false literal sits at position 1.
                if clause[0] == false_lit {
                    clause.swap(0, 1);
                }
                debug_assert_eq!(clause[1], false_lit);
                // Satisfied through the other watch: keep as-is.
                if self.assign[clause[0].var().index()].map(|v| clause[0].eval(v)) == Some(true) {
                    keep.push(ci);
                    continue;
                }
                // Look for a replacement watch.
                let mut moved = false;
                for k in 2..clause.len() {
                    let cand = clause[k];
                    let val = self.assign[cand.var().index()].map(|v| cand.eval(v));
                    if val != Some(false) {
                        clause.swap(1, k);
                        self.watches[cand.code()].push(ci);
                        moved = true;
                        break;
                    }
                }
                if moved {
                    continue;
                }
                // Clause is unit (or conflicting) on clause[0].
                keep.push(ci);
                let unit = clause[0];
                if !self.enqueue(unit) {
                    conflict = true;
                }
            }
            self.watches[false_lit.code()] = keep;
            if conflict {
                return true;
            }
        }
        false
    }

    fn new_decision_level(&mut self) {
        self.trail_lim.push(self.trail.len());
    }

    /// Undoes assignments above decision level `level`.
    fn cancel_until(&mut self, level: usize) {
        if self.trail_lim.len() <= level {
            return;
        }
        let bound = self.trail_lim[level];
        for l in self.trail.drain(bound..) {
            self.assign[l.var().index()] = None;
        }
        self.trail_lim.truncate(level);
        self.qhead = self.trail.len();
    }

    /// Chronological backtracking: flip the deepest un-flipped decision.
    /// Returns `false` when the search space is exhausted (UNSAT).
    fn backtrack(&mut self) -> bool {
        loop {
            match self.decisions.pop() {
                None => return false,
                Some((lit, tried_both)) => {
                    self.cancel_until(self.decisions.len());
                    if !tried_both {
                        self.new_decision_level();
                        self.decisions.push((!lit, true));
                        if self.enqueue(!lit) {
                            return true;
                        }
                        // Contradiction on the flipped literal: keep
                        // unwinding.
                        let popped = self.decisions.pop();
                        debug_assert!(popped.is_some());
                        self.cancel_until(self.decisions.len());
                    }
                }
            }
        }
    }

    /// Highest-score unassigned variable.
    fn pick_branch_var(&self) -> Option<Var> {
        self.assign
            .iter()
            .enumerate()
            .filter(|(_, a)| a.is_none())
            .max_by_key(|(i, _)| (self.scores[*i], std::cmp::Reverse(*i)))
            .map(|(i, _)| Var(i as u32))
    }
}

/// Convenience: solve a formula with default configuration.
pub fn solve(cnf: &Cnf) -> SolveResult {
    Solver::new(cnf).solve()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn brute_force_sat(cnf: &Cnf) -> bool {
        let n = cnf.num_vars() as usize;
        assert!(n <= 20, "brute force limited to 20 vars");
        (0u64..(1 << n)).any(|bits| {
            let assignment: Vec<bool> = (0..n).map(|i| bits >> i & 1 == 1).collect();
            cnf.eval(&assignment)
        })
    }

    fn check_against_brute_force(cnf: &Cnf) {
        let expected = brute_force_sat(cnf);
        match solve(cnf) {
            SolveResult::Sat(model) => {
                assert!(expected, "solver said SAT, brute force says UNSAT");
                assert!(cnf.eval(&model), "returned model does not satisfy");
            }
            SolveResult::Unsat => assert!(!expected, "solver said UNSAT, brute force says SAT"),
            SolveResult::Unknown => panic!("no budget configured"),
        }
    }

    #[test]
    fn empty_formula_is_sat() {
        assert!(solve(&Cnf::new()).is_sat());
    }

    #[test]
    fn empty_clause_is_unsat() {
        let mut cnf = Cnf::new();
        cnf.add_clause([]);
        assert_eq!(solve(&cnf), SolveResult::Unsat);
    }

    #[test]
    fn single_unit() {
        let mut cnf = Cnf::new();
        let v = cnf.fresh_var();
        cnf.add_unit(v.neg());
        match solve(&cnf) {
            SolveResult::Sat(m) => assert!(!m[0]),
            other => panic!("expected SAT, got {other:?}"),
        }
    }

    #[test]
    fn conflicting_units_unsat() {
        let mut cnf = Cnf::new();
        let v = cnf.fresh_var();
        cnf.add_unit(v.pos());
        cnf.add_unit(v.neg());
        assert_eq!(solve(&cnf), SolveResult::Unsat);
    }

    #[test]
    fn implication_chain_propagates() {
        // x0 ∧ (x0→x1) ∧ (x1→x2) ∧ ... ∧ (x9→¬x0) is UNSAT.
        let mut cnf = Cnf::new();
        let vs = cnf.fresh_vars(10);
        cnf.add_unit(vs[0].pos());
        for w in vs.windows(2) {
            cnf.add_implies(w[0].pos(), w[1].pos());
        }
        cnf.add_implies(vs[9].pos(), vs[0].neg());
        assert_eq!(solve(&cnf), SolveResult::Unsat);
    }

    #[test]
    fn pigeonhole_3_into_2_is_unsat() {
        // p_{i,j}: pigeon i in hole j; 3 pigeons, 2 holes.
        let mut cnf = Cnf::new();
        let p: Vec<Vec<Lit>> = (0..3)
            .map(|_| cnf.fresh_vars(2).into_iter().map(Var::pos).collect())
            .collect();
        for row in &p {
            cnf.add_at_least_one(row);
        }
        #[allow(clippy::needless_range_loop)]
        for j in 0..2 {
            for i1 in 0..3 {
                for i2 in (i1 + 1)..3 {
                    cnf.add_clause([!p[i1][j], !p[i2][j]]);
                }
            }
        }
        assert_eq!(solve(&cnf), SolveResult::Unsat);
    }

    #[test]
    fn exactly_one_has_model() {
        let mut cnf = Cnf::new();
        let vs: Vec<Lit> = cnf.fresh_vars(5).into_iter().map(Var::pos).collect();
        cnf.add_exactly_one(&vs);
        match solve(&cnf) {
            SolveResult::Sat(m) => {
                assert_eq!(m.iter().filter(|b| **b).count(), 1);
            }
            other => panic!("expected SAT, got {other:?}"),
        }
    }

    #[test]
    fn agrees_with_brute_force_on_seeded_random_3sat() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        for seed in 0..40u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let n = rng.gen_range(3..10usize);
            // Clause/var ratio around the hard region sometimes.
            let m = rng.gen_range(2..(5 * n));
            let mut cnf = Cnf::new();
            let vars = cnf.fresh_vars(n);
            for _ in 0..m {
                let k = rng.gen_range(1..=3usize);
                let lits: Vec<Lit> = (0..k)
                    .map(|_| {
                        let v = vars[rng.gen_range(0..n)];
                        if rng.gen_bool(0.5) {
                            v.pos()
                        } else {
                            v.neg()
                        }
                    })
                    .collect();
                cnf.add_clause(lits);
            }
            check_against_brute_force(&cnf);
        }
    }

    #[test]
    fn conflict_budget_yields_unknown() {
        // Pigeonhole 6→5 forces many conflicts for a DPLL solver.
        let mut cnf = Cnf::new();
        let p: Vec<Vec<Lit>> = (0..6)
            .map(|_| cnf.fresh_vars(5).into_iter().map(Var::pos).collect())
            .collect();
        for row in &p {
            cnf.add_at_least_one(row);
        }
        #[allow(clippy::needless_range_loop)]
        for j in 0..5 {
            for i1 in 0..6 {
                for i2 in (i1 + 1)..6 {
                    cnf.add_clause([!p[i1][j], !p[i2][j]]);
                }
            }
        }
        let mut solver = Solver::with_config(
            &cnf,
            SolverConfig {
                max_conflicts: Some(3),
            },
        );
        assert_eq!(solver.solve(), SolveResult::Unknown);
        // With no budget it proves UNSAT.
        assert_eq!(solve(&cnf), SolveResult::Unsat);
    }

    #[test]
    fn stats_are_recorded() {
        let mut cnf = Cnf::new();
        let vs = cnf.fresh_vars(4);
        cnf.add_clause([vs[0].pos(), vs[1].pos()]);
        cnf.add_clause([vs[2].pos(), vs[3].pos()]);
        let mut solver = Solver::new(&cnf);
        assert!(solver.solve().is_sat());
        assert!(solver.stats().propagations > 0);
    }
}
