//! Variables and literals.

use std::fmt;
use std::ops::Not;

/// A propositional variable, numbered from 0.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Var(pub u32);

impl Var {
    /// The variable's dense index.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The positive literal of this variable.
    pub fn pos(self) -> Lit {
        Lit::new(self, true)
    }

    /// The negative literal of this variable.
    #[allow(clippy::should_implement_trait)]
    pub fn neg(self) -> Lit {
        Lit::new(self, false)
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// A literal: a variable together with a polarity, packed into one `u32`
/// (`2·var + sign`, MiniSat-style) so watch lists index by literal code.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Lit(u32);

impl Lit {
    /// Builds a literal.
    pub fn new(var: Var, positive: bool) -> Lit {
        Lit(var.0 << 1 | u32::from(positive))
    }

    /// The underlying variable.
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// Is the literal positive?
    pub fn is_positive(self) -> bool {
        self.0 & 1 == 1
    }

    /// Dense code in `[0, 2·num_vars)` for watch-list indexing.
    pub fn code(self) -> usize {
        self.0 as usize
    }

    /// Inverse of [`Lit::code`].
    pub fn from_code(code: usize) -> Lit {
        Lit(code as u32)
    }

    /// The value this literal takes under an assignment of its variable.
    pub fn eval(self, var_value: bool) -> bool {
        var_value == self.is_positive()
    }
}

impl Not for Lit {
    type Output = Lit;
    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_positive() {
            write!(f, "{}", self.var())
        } else {
            write!(f, "¬{}", self.var())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn polarity_round_trip() {
        let v = Var(7);
        assert!(v.pos().is_positive());
        assert!(!v.neg().is_positive());
        assert_eq!(v.pos().var(), v);
        assert_eq!(v.neg().var(), v);
    }

    #[test]
    fn negation_is_involutive() {
        let l = Var(3).pos();
        assert_eq!(!!l, l);
        assert_ne!(!l, l);
        assert_eq!((!l).var(), l.var());
    }

    #[test]
    fn codes_are_dense_and_invertible() {
        for v in 0..10u32 {
            for pos in [false, true] {
                let l = Lit::new(Var(v), pos);
                assert!(l.code() < 20);
                assert_eq!(Lit::from_code(l.code()), l);
            }
        }
        // Codes of a literal and its negation differ only in the low bit.
        assert_eq!(Var(4).pos().code() ^ 1, Var(4).neg().code());
    }

    #[test]
    fn eval_under_assignment() {
        let l = Var(0).pos();
        assert!(l.eval(true));
        assert!(!l.eval(false));
        assert!((!l).eval(false));
    }

    #[test]
    fn display() {
        assert_eq!(Var(2).pos().to_string(), "x2");
        assert_eq!(Var(2).neg().to_string(), "¬x2");
    }
}
