//! CNF formulas and encoding helpers.

use crate::lit::{Lit, Var};
use std::fmt;

/// A formula in conjunctive normal form.
///
/// Clauses are normalized on insertion: duplicate literals are removed
/// and tautological clauses (containing `x` and `¬x`) are dropped. The
/// builder also tracks the variable count, growing it as literals are
/// mentioned, and offers the cardinality encodings used by the CFD
/// consistency reduction (exactly-one over domain values).
#[derive(Clone, Debug, Default)]
pub struct Cnf {
    num_vars: u32,
    clauses: Vec<Vec<Lit>>,
    /// Set when an empty clause was added; the formula is trivially UNSAT.
    has_empty_clause: bool,
}

impl Cnf {
    /// An empty (trivially satisfiable) formula.
    pub fn new() -> Self {
        Cnf::default()
    }

    /// Allocates a fresh variable.
    pub fn fresh_var(&mut self) -> Var {
        let v = Var(self.num_vars);
        self.num_vars += 1;
        v
    }

    /// Allocates `n` fresh variables.
    pub fn fresh_vars(&mut self, n: usize) -> Vec<Var> {
        (0..n).map(|_| self.fresh_var()).collect()
    }

    /// Number of variables mentioned or allocated so far.
    pub fn num_vars(&self) -> u32 {
        self.num_vars
    }

    /// The clauses (normalized).
    pub fn clauses(&self) -> &[Vec<Lit>] {
        &self.clauses
    }

    /// Number of clauses (the empty clause, if present, is counted via
    /// [`Cnf::is_trivially_unsat`] instead).
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// Whether an empty clause was added.
    pub fn is_trivially_unsat(&self) -> bool {
        self.has_empty_clause
    }

    /// Adds a clause (a disjunction of literals).
    pub fn add_clause<I>(&mut self, lits: I)
    where
        I: IntoIterator<Item = Lit>,
    {
        let mut c: Vec<Lit> = lits.into_iter().collect();
        c.sort();
        c.dedup();
        // Tautology: sorted order places x_i¬ and x_i+ adjacently.
        if c.windows(2).any(|w| w[0] == !w[1]) {
            return;
        }
        if c.is_empty() {
            self.has_empty_clause = true;
            return;
        }
        for l in &c {
            self.num_vars = self.num_vars.max(l.var().0 + 1);
        }
        self.clauses.push(c);
    }

    /// Adds the unit clause `{lit}`.
    pub fn add_unit(&mut self, lit: Lit) {
        self.add_clause([lit]);
    }

    /// Adds `a → b` (i.e. `¬a ∨ b`).
    pub fn add_implies(&mut self, a: Lit, b: Lit) {
        self.add_clause([!a, b]);
    }

    /// Adds `(a1 ∧ ... ∧ ak) → b`.
    pub fn add_implies_all(&mut self, antecedent: &[Lit], b: Lit) {
        self.add_clause(antecedent.iter().map(|l| !*l).chain([b]));
    }

    /// Adds `a ↔ b`.
    pub fn add_iff(&mut self, a: Lit, b: Lit) {
        self.add_implies(a, b);
        self.add_implies(b, a);
    }

    /// Adds "at least one of `lits`".
    pub fn add_at_least_one(&mut self, lits: &[Lit]) {
        self.add_clause(lits.iter().copied());
    }

    /// Adds "at most one of `lits`" (pairwise encoding — fine for the
    /// small domains of CFD patterns; the paper's finite domains hold 2
    /// to 100 elements).
    pub fn add_at_most_one(&mut self, lits: &[Lit]) {
        for i in 0..lits.len() {
            for j in (i + 1)..lits.len() {
                self.add_clause([!lits[i], !lits[j]]);
            }
        }
    }

    /// Adds "exactly one of `lits`".
    pub fn add_exactly_one(&mut self, lits: &[Lit]) {
        self.add_at_least_one(lits);
        self.add_at_most_one(lits);
    }

    /// Evaluates the formula under a total assignment (for testing and
    /// model verification).
    pub fn eval(&self, assignment: &[bool]) -> bool {
        !self.has_empty_clause
            && self
                .clauses
                .iter()
                .all(|c| c.iter().any(|l| l.eval(assignment[l.var().index()])))
    }
}

impl fmt::Display for Cnf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "p cnf {} {}", self.num_vars, self.clauses.len())?;
        for c in &self.clauses {
            for l in c {
                let v = l.var().0 as i64 + 1;
                write!(f, "{} ", if l.is_positive() { v } else { -v })?;
            }
            writeln!(f, "0")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clause_normalization() {
        let mut cnf = Cnf::new();
        let a = Var(0).pos();
        // Duplicates collapse.
        cnf.add_clause([a, a]);
        assert_eq!(cnf.clauses()[0], vec![a]);
        // Tautologies vanish.
        cnf.add_clause([a, !a]);
        assert_eq!(cnf.num_clauses(), 1);
    }

    #[test]
    fn empty_clause_marks_unsat() {
        let mut cnf = Cnf::new();
        cnf.add_clause([]);
        assert!(cnf.is_trivially_unsat());
        assert!(!cnf.eval(&[]));
    }

    #[test]
    fn var_count_tracks_mentions_and_allocations() {
        let mut cnf = Cnf::new();
        let v = cnf.fresh_var();
        assert_eq!(v, Var(0));
        cnf.add_unit(Var(9).pos());
        assert_eq!(cnf.num_vars(), 10);
        let more = cnf.fresh_vars(2);
        assert_eq!(more, vec![Var(10), Var(11)]);
    }

    #[test]
    fn exactly_one_encoding_semantics() {
        let mut cnf = Cnf::new();
        let vs: Vec<Lit> = cnf.fresh_vars(3).into_iter().map(Var::pos).collect();
        cnf.add_exactly_one(&vs);
        // Exactly one true satisfies; zero or two do not.
        assert!(cnf.eval(&[true, false, false]));
        assert!(cnf.eval(&[false, true, false]));
        assert!(!cnf.eval(&[false, false, false]));
        assert!(!cnf.eval(&[true, true, false]));
    }

    #[test]
    fn implication_encodings() {
        let mut cnf = Cnf::new();
        let a = cnf.fresh_var().pos();
        let b = cnf.fresh_var().pos();
        let c = cnf.fresh_var().pos();
        cnf.add_implies_all(&[a, b], c);
        assert!(cnf.eval(&[true, true, true]));
        assert!(!cnf.eval(&[true, true, false]));
        assert!(cnf.eval(&[true, false, false]));

        let mut cnf2 = Cnf::new();
        let x = cnf2.fresh_var().pos();
        let y = cnf2.fresh_var().pos();
        cnf2.add_iff(x, y);
        assert!(cnf2.eval(&[true, true]));
        assert!(cnf2.eval(&[false, false]));
        assert!(!cnf2.eval(&[true, false]));
    }

    #[test]
    fn dimacs_display() {
        let mut cnf = Cnf::new();
        cnf.add_clause([Var(0).pos(), Var(1).neg()]);
        let s = cnf.to_string();
        assert!(s.starts_with("p cnf 2 1"));
        assert!(s.contains("1 -2 0"));
    }
}
