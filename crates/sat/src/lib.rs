#![warn(missing_docs)]

//! # condep-sat
//!
//! A self-contained boolean satisfiability solver.
//!
//! Section 5.2 of the paper implements the `CFD_Checking` procedure two
//! ways: with the chase, and "by reduction to SAT … using SAT4j, a
//! well-developed tool". SAT4j is JVM software; this crate is its
//! stand-in — a DPLL solver with two-literal watching, unit propagation,
//! and chronological backtracking. Any complete solver yields identical
//! answers for the reduction, so the substitution preserves the paper's
//! accuracy results; the runtime *shape* of Figure 10(a) (SAT slower than
//! the chase, scaling worse with the number of CFDs) is driven by the
//! encoding size, which the `condep-consistency` crate reproduces.
//!
//! Modules:
//! * [`lit`] — variables and literals with compact integer encoding;
//! * [`cnf`] — CNF formulas with normalization (dedup, tautology
//!   elimination) and cardinality-encoding helpers;
//! * [`solver`] — the DPLL engine.

pub mod cnf;
pub mod lit;
pub mod solver;

pub use cnf::Cnf;
pub use lit::{Lit, Var};
pub use solver::{SolveResult, Solver, SolverConfig};
