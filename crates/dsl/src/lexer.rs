//! Tokenizer for the dependency-definition language.

use std::fmt;

/// A source position (1-based line and column), carried on every token
/// and every parse error.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Pos {
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Token kinds.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Tok {
    /// Bare identifier / keyword (`relation`, `cfd`, attribute names, …).
    Ident(String),
    /// Quoted string literal (supports `\"` and `\\` escapes).
    Str(String),
    /// Integer literal.
    Int(i64),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `:`
    Colon,
    /// `_`
    Underscore,
    /// `->`
    Arrow,
    /// `||`
    Bars,
    /// End of input.
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "`{s}`"),
            Tok::Str(s) => write!(f, "{s:?}"),
            Tok::Int(i) => write!(f, "{i}"),
            Tok::LParen => write!(f, "`(`"),
            Tok::RParen => write!(f, "`)`"),
            Tok::LBrace => write!(f, "`{{`"),
            Tok::RBrace => write!(f, "`}}`"),
            Tok::LBracket => write!(f, "`[`"),
            Tok::RBracket => write!(f, "`]`"),
            Tok::Comma => write!(f, "`,`"),
            Tok::Semi => write!(f, "`;`"),
            Tok::Colon => write!(f, "`:`"),
            Tok::Underscore => write!(f, "`_`"),
            Tok::Arrow => write!(f, "`->`"),
            Tok::Bars => write!(f, "`||`"),
            Tok::Eof => write!(f, "end of input"),
        }
    }
}

/// A positioned token.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Token {
    /// The token itself.
    pub tok: Tok,
    /// Where it starts.
    pub pos: Pos,
}

/// A lexical error with its position.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LexError {
    /// Human-readable description.
    pub message: String,
    /// Where the problem is.
    pub pos: Pos,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.pos, self.message)
    }
}

/// Tokenizes `src`. `//` comments run to end of line.
pub fn lex(src: &str) -> Result<Vec<Token>, LexError> {
    let mut out = Vec::new();
    let mut chars = src.chars().peekable();
    let mut line: u32 = 1;
    let mut col: u32 = 1;

    macro_rules! bump {
        () => {{
            let c = chars.next();
            if c == Some('\n') {
                line += 1;
                col = 1;
            } else if c.is_some() {
                col += 1;
            }
            c
        }};
    }

    loop {
        let pos = Pos { line, col };
        let Some(&c) = chars.peek() else {
            out.push(Token { tok: Tok::Eof, pos });
            return Ok(out);
        };
        match c {
            ' ' | '\t' | '\r' | '\n' => {
                bump!();
            }
            '/' => {
                bump!();
                if chars.peek() == Some(&'/') {
                    while let Some(&n) = chars.peek() {
                        if n == '\n' {
                            break;
                        }
                        bump!();
                    }
                } else {
                    return Err(LexError {
                        message: "expected `//` comment".into(),
                        pos,
                    });
                }
            }
            '(' => {
                bump!();
                out.push(Token {
                    tok: Tok::LParen,
                    pos,
                });
            }
            ')' => {
                bump!();
                out.push(Token {
                    tok: Tok::RParen,
                    pos,
                });
            }
            '{' => {
                bump!();
                out.push(Token {
                    tok: Tok::LBrace,
                    pos,
                });
            }
            '}' => {
                bump!();
                out.push(Token {
                    tok: Tok::RBrace,
                    pos,
                });
            }
            '[' => {
                bump!();
                out.push(Token {
                    tok: Tok::LBracket,
                    pos,
                });
            }
            ']' => {
                bump!();
                out.push(Token {
                    tok: Tok::RBracket,
                    pos,
                });
            }
            ',' => {
                bump!();
                out.push(Token {
                    tok: Tok::Comma,
                    pos,
                });
            }
            ';' => {
                bump!();
                out.push(Token {
                    tok: Tok::Semi,
                    pos,
                });
            }
            ':' => {
                bump!();
                out.push(Token {
                    tok: Tok::Colon,
                    pos,
                });
            }
            '|' => {
                bump!();
                if chars.peek() == Some(&'|') {
                    bump!();
                    out.push(Token {
                        tok: Tok::Bars,
                        pos,
                    });
                } else {
                    return Err(LexError {
                        message: "expected `||`".into(),
                        pos,
                    });
                }
            }
            '-' => {
                bump!();
                match chars.peek() {
                    Some(&'>') => {
                        bump!();
                        out.push(Token {
                            tok: Tok::Arrow,
                            pos,
                        });
                    }
                    Some(&d) if d.is_ascii_digit() => {
                        let mut n = String::from("-");
                        while let Some(&d) = chars.peek() {
                            if d.is_ascii_digit() {
                                n.push(d);
                                bump!();
                            } else {
                                break;
                            }
                        }
                        let value = n.parse().map_err(|_| LexError {
                            message: format!("integer literal `{n}` out of range"),
                            pos,
                        })?;
                        out.push(Token {
                            tok: Tok::Int(value),
                            pos,
                        });
                    }
                    _ => {
                        return Err(LexError {
                            message: "expected `->` or a negative integer".into(),
                            pos,
                        })
                    }
                }
            }
            '"' => {
                bump!();
                let mut s = String::new();
                loop {
                    match bump!() {
                        None => {
                            return Err(LexError {
                                message: "unterminated string literal".into(),
                                pos,
                            })
                        }
                        Some('"') => break,
                        Some('\\') => match bump!() {
                            Some('"') => s.push('"'),
                            Some('\\') => s.push('\\'),
                            Some(other) => {
                                return Err(LexError {
                                    message: format!("unknown escape `\\{other}`"),
                                    pos,
                                })
                            }
                            None => {
                                return Err(LexError {
                                    message: "unterminated string literal".into(),
                                    pos,
                                })
                            }
                        },
                        Some(other) => s.push(other),
                    }
                }
                out.push(Token {
                    tok: Tok::Str(s),
                    pos,
                });
            }
            d if d.is_ascii_digit() => {
                let mut n = String::new();
                while let Some(&d) = chars.peek() {
                    if d.is_ascii_digit() {
                        n.push(d);
                        bump!();
                    } else {
                        break;
                    }
                }
                let value = n.parse().map_err(|_| LexError {
                    message: format!("integer literal `{n}` out of range"),
                    pos,
                })?;
                out.push(Token {
                    tok: Tok::Int(value),
                    pos,
                });
            }
            '_' => {
                // `_` alone is the wildcard; `_foo` is an identifier.
                let mut s = String::new();
                while let Some(&a) = chars.peek() {
                    if a.is_ascii_alphanumeric() || a == '_' {
                        s.push(a);
                        bump!();
                    } else {
                        break;
                    }
                }
                if s == "_" {
                    out.push(Token {
                        tok: Tok::Underscore,
                        pos,
                    });
                } else {
                    out.push(Token {
                        tok: Tok::Ident(s),
                        pos,
                    });
                }
            }
            a if a.is_ascii_alphabetic() => {
                let mut s = String::new();
                while let Some(&a) = chars.peek() {
                    if a.is_ascii_alphanumeric() || a == '_' {
                        s.push(a);
                        bump!();
                    } else {
                        break;
                    }
                }
                out.push(Token {
                    tok: Tok::Ident(s),
                    pos,
                });
            }
            other => {
                return Err(LexError {
                    message: format!("unexpected character `{other}`"),
                    pos,
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn punctuation_and_idents() {
        assert_eq!(
            toks("relation r(a: string);"),
            vec![
                Tok::Ident("relation".into()),
                Tok::Ident("r".into()),
                Tok::LParen,
                Tok::Ident("a".into()),
                Tok::Colon,
                Tok::Ident("string".into()),
                Tok::RParen,
                Tok::Semi,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn strings_ints_wildcards_and_bars() {
        assert_eq!(
            toks(r#"(_, "4.5%" || -3, x_1)"#),
            vec![
                Tok::LParen,
                Tok::Underscore,
                Tok::Comma,
                Tok::Str("4.5%".into()),
                Tok::Bars,
                Tok::Int(-3),
                Tok::Comma,
                Tok::Ident("x_1".into()),
                Tok::RParen,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn arrow_and_comments() {
        assert_eq!(
            toks("a -> b // trailing comment\nc"),
            vec![
                Tok::Ident("a".into()),
                Tok::Arrow,
                Tok::Ident("b".into()),
                Tok::Ident("c".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn escapes_in_strings() {
        assert_eq!(
            toks(r#""he said \"hi\" \\once""#),
            vec![Tok::Str(r#"he said "hi" \once"#.into()), Tok::Eof]
        );
    }

    #[test]
    fn positions_track_lines() {
        let tokens = lex("a\n  b").unwrap();
        assert_eq!(tokens[0].pos, Pos { line: 1, col: 1 });
        assert_eq!(tokens[1].pos, Pos { line: 2, col: 3 });
    }

    #[test]
    fn errors_are_positioned() {
        let err = lex("abc $").unwrap_err();
        assert_eq!(err.pos, Pos { line: 1, col: 5 });
        assert!(err.message.contains('$'));
        assert!(lex("\"unterminated").is_err());
        assert!(lex("| alone").is_err());
    }
}
