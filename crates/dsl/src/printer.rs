//! Canonical printing of documents — the inverse of the parser.

use crate::parser::Document;
use condep_model::{Domain, PValue, Value};
use std::fmt::Write;

fn value(v: &Value) -> String {
    match v {
        Value::Bool(b) => b.to_string(),
        Value::Int(i) => i.to_string(),
        // Bare identifiers stay bare; anything else is quoted.
        Value::Str(s) => {
            let s: &str = s;
            let bare = !s.is_empty()
                && s.chars().next().is_some_and(|c| c.is_ascii_alphabetic())
                && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
                && s != "true"
                && s != "false";
            if bare {
                s.to_string()
            } else {
                format!("{s:?}")
            }
        }
    }
}

fn cell(c: &PValue) -> String {
    match c {
        PValue::Any => "_".to_string(),
        PValue::Const(v) => value(v),
    }
}

fn domain(d: &Domain) -> String {
    match d.values() {
        None => match d.base_type() {
            condep_model::BaseType::Str => "string".to_string(),
            condep_model::BaseType::Int => "int".to_string(),
            condep_model::BaseType::Bool => "bool".to_string(),
        },
        Some(vs) => {
            // The two-element boolean domain prints as `bool`.
            if vs == [Value::bool(false), Value::bool(true)] {
                return "bool".to_string();
            }
            let items: Vec<String> = vs.iter().map(value).collect();
            format!("{{{}}}", items.join(", "))
        }
    }
}

/// Renders a document in the canonical form accepted by
/// [`crate::parse_document`]; `parse ∘ print` is the identity on the
/// data (round-trip tested).
pub fn print_document(doc: &Document) -> String {
    let mut out = String::new();
    for (_, rs) in doc.schema.iter() {
        let attrs: Vec<String> = rs
            .attributes()
            .iter()
            .map(|a| format!("{}: {}", a.name(), domain(a.domain())))
            .collect();
        let _ = writeln!(out, "relation {}({});", rs.name(), attrs.join(", "));
    }
    for (name, cfd) in &doc.cfds {
        let rs = doc
            .schema
            .relation(cfd.rel())
            .expect("document schemas are closed");
        let names = |attrs: &[condep_model::AttrId]| {
            attrs
                .iter()
                .map(|a| rs.attribute(*a).expect("attr in range").name().to_string())
                .collect::<Vec<_>>()
                .join(", ")
        };
        let _ = writeln!(
            out,
            "cfd {name}: {}({} -> {}) {{",
            rs.name(),
            names(cfd.lhs()),
            names(cfd.rhs())
        );
        for row in cfd.tableau() {
            let (l, r) = cfd.split_row(row);
            let fmt_cells = |cs: &[PValue]| cs.iter().map(cell).collect::<Vec<_>>().join(", ");
            let _ = writeln!(out, "    ({} || {});", fmt_cells(l), fmt_cells(r));
        }
        let _ = writeln!(out, "}}");
    }
    for (name, cind) in &doc.cinds {
        let (Ok(ls), Ok(rs)) = (
            doc.schema.relation(cind.lhs_rel()),
            doc.schema.relation(cind.rhs_rel()),
        ) else {
            continue;
        };
        let names = |rel: &condep_model::RelationSchema, attrs: &[condep_model::AttrId]| {
            attrs
                .iter()
                .map(|a| rel.attribute(*a).expect("attr in range").name().to_string())
                .collect::<Vec<_>>()
                .join(", ")
        };
        let _ = writeln!(
            out,
            "cind {name}: {}[{}; {}] subset {}[{}; {}] {{",
            ls.name(),
            names(ls, cind.x()),
            names(ls, cind.xp()),
            rs.name(),
            names(rs, cind.y()),
            names(rs, cind.yp())
        );
        for row in cind.tableau() {
            let (x, xp, y, yp) = cind.split_row(row);
            let fmt_cells = |cs: &[PValue]| cs.iter().map(cell).collect::<Vec<_>>().join(", ");
            let lhs = [fmt_cells(x), fmt_cells(xp)]
                .into_iter()
                .filter(|s| !s.is_empty())
                .collect::<Vec<_>>()
                .join(", ");
            let rhs = [fmt_cells(y), fmt_cells(yp)]
                .into_iter()
                .filter(|s| !s.is_empty())
                .collect::<Vec<_>>()
                .join(", ");
            let _ = writeln!(out, "    ({lhs} || {rhs});");
        }
        let _ = writeln!(out, "}}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_document;

    const SRC: &str = r#"
        relation checking(an: string, cn: string, ca: string,
                          cp: string, ab: string);
        relation interest(ab: string, ct: string,
                          at: {checking, saving}, rt: string);
        cfd phi: interest(ct, at -> rt) {
            (_, _ || _);
            (UK, checking || "1.5%");
        }
        cind psi: checking[; ab] subset interest[; ab, at, ct, rt] {
            (EDI || EDI, checking, UK, "1.5%");
        }
    "#;

    #[test]
    fn round_trip_is_stable() {
        let doc1 = parse_document(SRC).unwrap();
        let text1 = print_document(&doc1);
        let doc2 = parse_document(&text1).unwrap();
        let text2 = print_document(&doc2);
        assert_eq!(text1, text2, "print ∘ parse must be idempotent");
        // And the parsed artifacts are identical.
        assert_eq!(doc1.schema.len(), doc2.schema.len());
        assert_eq!(doc1.cfds.len(), doc2.cfds.len());
        assert_eq!(doc1.cinds.len(), doc2.cinds.len());
        assert_eq!(doc1.cfd("phi"), doc2.cfd("phi"));
        assert_eq!(doc1.cind("psi"), doc2.cind("psi"));
    }

    #[test]
    fn strings_needing_quotes_are_quoted() {
        let doc = parse_document(
            "relation r(a: string, b: string);\n\
             cfd r(a -> b) { (\"with space\" || \"4.5%\"); }",
        )
        .unwrap();
        let text = print_document(&doc);
        assert!(text.contains("\"with space\""));
        assert!(text.contains("\"4.5%\""));
        // Round trip preserves them.
        let doc2 = parse_document(&text).unwrap();
        assert_eq!(doc.cfd("cfd0"), doc2.cfd("cfd0"));
    }

    #[test]
    fn bool_and_int_domains_print_canonically() {
        let doc = parse_document("relation r(a: bool, b: int, c: {1, 2});").unwrap();
        let text = print_document(&doc);
        assert!(text.contains("a: bool"));
        assert!(text.contains("b: int"));
        assert!(text.contains("c: {1, 2}"));
    }
}
