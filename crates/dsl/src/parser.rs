//! Recursive-descent parser: tokens → schema + dependencies.

use crate::lexer::{lex, Pos, Tok, Token};
use condep_cfd::Cfd;
use condep_core::Cind;
use condep_model::{Attribute, Domain, PValue, PatternRow, RelationSchema, Schema, Value};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// A parsed document: one schema plus named dependencies.
#[derive(Clone, Debug)]
pub struct Document {
    /// The schema assembled from the `relation` declarations.
    pub schema: Arc<Schema>,
    /// CFDs in declaration order, with their (possibly auto-generated)
    /// names.
    pub cfds: Vec<(String, Cfd)>,
    /// CINDs in declaration order, with their names.
    pub cinds: Vec<(String, Cind)>,
}

impl Document {
    /// Looks up a CFD by name.
    pub fn cfd(&self, name: &str) -> Option<&Cfd> {
        self.cfds.iter().find(|(n, _)| n == name).map(|(_, c)| c)
    }

    /// Looks up a CIND by name.
    pub fn cind(&self, name: &str) -> Option<&Cind> {
        self.cinds.iter().find(|(n, _)| n == name).map(|(_, c)| c)
    }
}

/// A parse error with its position.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParseError {
    /// Human-readable description.
    pub message: String,
    /// Where the problem is.
    pub pos: Pos,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.pos, self.message)
    }
}

impl std::error::Error for ParseError {}

struct Parser {
    tokens: Vec<Token>,
    at: usize,
}

type PResult<T> = Result<T, ParseError>;

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.at]
    }

    fn next(&mut self) -> Token {
        let t = self.tokens[self.at].clone();
        if self.at + 1 < self.tokens.len() {
            self.at += 1;
        }
        t
    }

    fn err<T>(&self, message: impl Into<String>) -> PResult<T> {
        Err(ParseError {
            message: message.into(),
            pos: self.peek().pos,
        })
    }

    fn expect(&mut self, tok: Tok) -> PResult<()> {
        if self.peek().tok == tok {
            self.next();
            Ok(())
        } else {
            self.err(format!("expected {tok}, found {}", self.peek().tok))
        }
    }

    fn ident(&mut self, what: &str) -> PResult<String> {
        match self.peek().tok.clone() {
            Tok::Ident(s) => {
                self.next();
                Ok(s)
            }
            other => self.err(format!("expected {what}, found {other}")),
        }
    }

    fn keyword(&mut self, kw: &str) -> PResult<()> {
        match self.peek().tok.clone() {
            Tok::Ident(s) if s == kw => {
                self.next();
                Ok(())
            }
            other => self.err(format!("expected `{kw}`, found {other}")),
        }
    }

    /// `literal := STRING | INT | true | false | IDENT(as string)`
    fn literal(&mut self) -> PResult<Value> {
        match self.peek().tok.clone() {
            Tok::Str(s) => {
                self.next();
                Ok(Value::str(s))
            }
            Tok::Int(i) => {
                self.next();
                Ok(Value::int(i))
            }
            Tok::Ident(s) if s == "true" => {
                self.next();
                Ok(Value::bool(true))
            }
            Tok::Ident(s) if s == "false" => {
                self.next();
                Ok(Value::bool(false))
            }
            Tok::Ident(s) => {
                self.next();
                Ok(Value::str(s))
            }
            other => self.err(format!("expected a literal, found {other}")),
        }
    }

    /// `domain := string | int | bool | '{' literal (',' literal)* '}'`
    fn domain(&mut self) -> PResult<Domain> {
        match self.peek().tok.clone() {
            Tok::Ident(s) if s == "string" => {
                self.next();
                Ok(Domain::string())
            }
            Tok::Ident(s) if s == "int" => {
                self.next();
                Ok(Domain::integer())
            }
            Tok::Ident(s) if s == "bool" => {
                self.next();
                Ok(Domain::boolean())
            }
            Tok::LBrace => {
                let pos = self.peek().pos;
                self.next();
                let mut values = vec![self.literal()?];
                while self.peek().tok == Tok::Comma {
                    self.next();
                    values.push(self.literal()?);
                }
                self.expect(Tok::RBrace)?;
                Domain::finite(values).map_err(|e| ParseError {
                    message: format!("invalid finite domain: {e}"),
                    pos,
                })
            }
            other => self.err(format!("expected a domain, found {other}")),
        }
    }

    /// `relation IDENT '(' attr (',' attr)* ')' ';'`
    fn relation(&mut self) -> PResult<RelationSchema> {
        self.keyword("relation")?;
        let pos = self.peek().pos;
        let name = self.ident("relation name")?;
        self.expect(Tok::LParen)?;
        let mut attrs = Vec::new();
        loop {
            let attr_name = self.ident("attribute name")?;
            self.expect(Tok::Colon)?;
            let dom = self.domain()?;
            attrs.push(Attribute::new(attr_name, dom));
            if self.peek().tok == Tok::Comma {
                self.next();
            } else {
                break;
            }
        }
        self.expect(Tok::RParen)?;
        self.expect(Tok::Semi)?;
        RelationSchema::new(name, attrs).map_err(|e| ParseError {
            message: e.to_string(),
            pos,
        })
    }

    /// Comma-separated attribute-name list; empty allowed.
    fn attr_names(&mut self) -> PResult<Vec<String>> {
        let mut out = Vec::new();
        while let Tok::Ident(s) = self.peek().tok.clone() {
            self.next();
            out.push(s);
            if self.peek().tok == Tok::Comma {
                self.next();
            } else {
                break;
            }
        }
        Ok(out)
    }

    /// `cell := '_' | literal`
    fn cell(&mut self) -> PResult<PValue> {
        if self.peek().tok == Tok::Underscore {
            self.next();
            Ok(PValue::Any)
        } else {
            Ok(PValue::Const(self.literal()?))
        }
    }

    /// `row := '(' cells '||' cells ')' ';'` — returns (lhs, rhs) cells.
    fn row(&mut self) -> PResult<(Vec<PValue>, Vec<PValue>)> {
        self.expect(Tok::LParen)?;
        let mut lhs = Vec::new();
        if self.peek().tok != Tok::Bars {
            lhs.push(self.cell()?);
            while self.peek().tok == Tok::Comma {
                self.next();
                lhs.push(self.cell()?);
            }
        }
        self.expect(Tok::Bars)?;
        let mut rhs = Vec::new();
        if self.peek().tok != Tok::RParen {
            rhs.push(self.cell()?);
            while self.peek().tok == Tok::Comma {
                self.next();
                rhs.push(self.cell()?);
            }
        }
        self.expect(Tok::RParen)?;
        self.expect(Tok::Semi)?;
        Ok((lhs, rhs))
    }

    /// `cfd [IDENT ':'] IDENT '(' names '->' names ')' '{' row* '}'`
    fn cfd(&mut self, schema: &Schema, auto: usize) -> PResult<(String, Cfd)> {
        self.keyword("cfd")?;
        let mut name = format!("cfd{auto}");
        if let Tok::Ident(s) = self.peek().tok.clone() {
            // Lookahead: `IDENT :` is a name; `IDENT (` is the relation.
            if self.tokens[self.at + 1].tok == Tok::Colon {
                self.next();
                self.next();
                name = s;
            }
        }
        let pos = self.peek().pos;
        let rel_name = self.ident("relation name")?;
        self.expect(Tok::LParen)?;
        let lhs = self.attr_names()?;
        self.expect(Tok::Arrow)?;
        let rhs = self.attr_names()?;
        self.expect(Tok::RParen)?;
        self.expect(Tok::LBrace)?;
        let mut tableau = Vec::new();
        while self.peek().tok != Tok::RBrace {
            let row_pos = self.peek().pos;
            let (l, r) = self.row()?;
            if l.len() != lhs.len() || r.len() != rhs.len() {
                return Err(ParseError {
                    message: format!(
                        "row has {} || {} cells; the CFD needs {} || {}",
                        l.len(),
                        r.len(),
                        lhs.len(),
                        rhs.len()
                    ),
                    pos: row_pos,
                });
            }
            tableau.push(PatternRow::new(l.into_iter().chain(r)));
        }
        self.expect(Tok::RBrace)?;
        let lhs_refs: Vec<&str> = lhs.iter().map(String::as_str).collect();
        let rhs_refs: Vec<&str> = rhs.iter().map(String::as_str).collect();
        let cfd = Cfd::parse(schema, &rel_name, &lhs_refs, &rhs_refs, tableau).map_err(|e| {
            ParseError {
                message: e.to_string(),
                pos,
            }
        })?;
        Ok((name, cfd))
    }

    /// `cind [IDENT ':'] IDENT '[' names ';' names ']' subset
    ///       IDENT '[' names ';' names ']' '{' row* '}'`
    fn cind(&mut self, schema: &Schema, auto: usize) -> PResult<(String, Cind)> {
        self.keyword("cind")?;
        let mut name = format!("cind{auto}");
        if let Tok::Ident(s) = self.peek().tok.clone() {
            if self.tokens[self.at + 1].tok == Tok::Colon {
                self.next();
                self.next();
                name = s;
            }
        }
        let pos = self.peek().pos;
        let lhs_rel = self.ident("source relation")?;
        self.expect(Tok::LBracket)?;
        let x = self.attr_names()?;
        self.expect(Tok::Semi)?;
        let xp = self.attr_names()?;
        self.expect(Tok::RBracket)?;
        self.keyword("subset")?;
        let rhs_rel = self.ident("target relation")?;
        self.expect(Tok::LBracket)?;
        let y = self.attr_names()?;
        self.expect(Tok::Semi)?;
        let yp = self.attr_names()?;
        self.expect(Tok::RBracket)?;
        self.expect(Tok::LBrace)?;
        let lhs_width = x.len() + xp.len();
        let rhs_width = y.len() + yp.len();
        let mut tableau = Vec::new();
        while self.peek().tok != Tok::RBrace {
            let row_pos = self.peek().pos;
            let (l, r) = self.row()?;
            if l.len() != lhs_width || r.len() != rhs_width {
                return Err(ParseError {
                    message: format!(
                        "row has {} || {} cells; the CIND needs {} || {}",
                        l.len(),
                        r.len(),
                        lhs_width,
                        rhs_width
                    ),
                    pos: row_pos,
                });
            }
            // Section 2's well-formedness condition, checked here for a
            // positioned diagnostic instead of a downstream panic.
            for i in 0..x.len() {
                if l[i] != r[i] {
                    return Err(ParseError {
                        message: format!(
                            "pattern rows must satisfy tp[X] = tp[Y]: \
                             cell {} is {:?} on the left but {:?} on the right",
                            i + 1,
                            l[i],
                            r[i]
                        ),
                        pos: row_pos,
                    });
                }
            }
            tableau.push(PatternRow::new(l.into_iter().chain(r)));
        }
        self.expect(Tok::RBrace)?;
        fn as_refs(v: &[String]) -> Vec<&str> {
            v.iter().map(String::as_str).collect()
        }
        // Cind::parse panics on malformed lists (duplicate attributes in
        // X ∪ Xp etc.); catch that as a positioned error.
        let built = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            Cind::parse(
                schema,
                &lhs_rel,
                &as_refs(&x),
                &as_refs(&xp),
                &rhs_rel,
                &as_refs(&y),
                &as_refs(&yp),
                tableau,
            )
        }));
        match built {
            Ok(Ok(cind)) => Ok((name, cind)),
            Ok(Err(e)) => Err(ParseError {
                message: e.to_string(),
                pos,
            }),
            Err(panic) => {
                let message = panic
                    .downcast_ref::<String>()
                    .cloned()
                    .or_else(|| panic.downcast_ref::<&str>().map(|s| s.to_string()))
                    .unwrap_or_else(|| "malformed CIND".to_string());
                Err(ParseError { message, pos })
            }
        }
    }
}

/// Parses a whole document: `relation` declarations first (in any
/// order), then `cfd`/`cind` declarations referencing them.
pub fn parse_document(src: &str) -> Result<Document, ParseError> {
    let tokens = lex(src).map_err(|e| ParseError {
        message: e.message,
        pos: e.pos,
    })?;
    let mut p = Parser { tokens, at: 0 };

    // Pass 1: collect items, building the schema from the relations.
    let mut relations = Vec::new();
    let mut pending: Vec<(usize, &'static str)> = Vec::new(); // (token idx, kind)
    loop {
        match p.peek().tok.clone() {
            Tok::Eof => break,
            Tok::Ident(s) if s == "relation" => {
                relations.push(p.relation()?);
            }
            Tok::Ident(s) if s == "cfd" || s == "cind" => {
                // Remember the position; skip to the closing brace.
                pending.push((p.at, if s == "cfd" { "cfd" } else { "cind" }));
                // Skip tokens until the matching `}` (single level —
                // dependency bodies contain no nested braces).
                while !matches!(p.peek().tok, Tok::RBrace | Tok::Eof) {
                    p.next();
                }
                p.expect(Tok::RBrace)?;
            }
            other => {
                return p.err(format!(
                    "expected `relation`, `cfd` or `cind`, found {other}"
                ))
            }
        }
    }
    let schema = Arc::new(Schema::new(relations).map_err(|e| ParseError {
        message: e.to_string(),
        pos: Pos { line: 1, col: 1 },
    })?);

    // Pass 2: parse the dependencies against the completed schema.
    let mut cfds = Vec::new();
    let mut cinds = Vec::new();
    let mut names: BTreeMap<String, Pos> = BTreeMap::new();
    for (at, kind) in pending {
        p.at = at;
        let pos = p.peek().pos;
        let name = if kind == "cfd" {
            let (name, cfd) = p.cfd(&schema, cfds.len())?;
            cfds.push((name.clone(), cfd));
            name
        } else {
            let (name, cind) = p.cind(&schema, cinds.len())?;
            cinds.push((name.clone(), cind));
            name
        };
        if names.insert(name.clone(), pos).is_some() {
            return Err(ParseError {
                message: format!("duplicate dependency name `{name}`"),
                pos,
            });
        }
    }
    Ok(Document {
        schema,
        cfds,
        cinds,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use condep_model::fixtures::{bank_database, clean_bank_database};

    const BANK: &str = r#"
        // Figure 1 target schema.
        relation checking(an: string, cn: string, ca: string,
                          cp: string, ab: string);
        relation interest(ab: string, ct: string,
                          at: {checking, saving}, rt: string);

        // ϕ3's refined rows (Figure 4, interest part only).
        cfd phi3: interest(ct, at -> rt) {
            (_, _ || _);
            (UK, checking || "1.5%");
        }

        // ψ6 of Figure 2.
        cind psi6: checking[; ab] subset interest[; ab, at, ct, rt] {
            (EDI || EDI, checking, UK, "1.5%");
            (NYC || NYC, checking, US, "1%");
        }
    "#;

    #[test]
    fn parses_the_bank_fragment() {
        let doc = parse_document(BANK).unwrap();
        assert_eq!(doc.schema.len(), 2);
        assert_eq!(doc.cfds.len(), 1);
        assert_eq!(doc.cinds.len(), 1);
        let phi3 = doc.cfd("phi3").unwrap();
        assert_eq!(phi3.tableau().len(), 2);
        let psi6 = doc.cind("psi6").unwrap();
        assert_eq!(psi6.tableau().len(), 2);
        assert!(psi6.x().is_empty());
        assert_eq!(psi6.yp().len(), 4);
    }

    #[test]
    fn parsed_psi6_agrees_with_the_fixture_semantics() {
        // The parsed ψ6 must behave exactly like the hand-built fixture:
        // violated by Fig 1's dirty instance, satisfied by the clean one.
        let doc = parse_document(BANK).unwrap();
        let psi6 = doc.cind("psi6").unwrap();
        // Re-target onto the bank fixture schema via names.
        let fix_schema = condep_model::fixtures::bank_schema();
        let rebuilt = Cind::parse(
            &fix_schema,
            "checking",
            &[],
            &["ab"],
            "interest",
            &[],
            &["ab", "at", "ct", "rt"],
            psi6.tableau().to_vec(),
        )
        .unwrap();
        assert!(!condep_core::satisfy::satisfies(&bank_database(), &rebuilt));
        assert!(condep_core::satisfy::satisfies(
            &clean_bank_database(),
            &rebuilt
        ));
    }

    #[test]
    fn finite_domains_parse() {
        let doc = parse_document("relation r(a: {1, 2, 3}, b: bool, c: {x, y}, d: int);").unwrap();
        let rel = doc.schema.rel_id("r").unwrap();
        let rs = doc.schema.relation(rel).unwrap();
        assert_eq!(
            rs.attribute(condep_model::AttrId(0))
                .unwrap()
                .domain()
                .size(),
            Some(3)
        );
        assert!(rs.attribute(condep_model::AttrId(1)).unwrap().is_finite());
        assert_eq!(
            rs.attribute(condep_model::AttrId(2))
                .unwrap()
                .domain()
                .size(),
            Some(2)
        );
        assert!(!rs.attribute(condep_model::AttrId(3)).unwrap().is_finite());
    }

    #[test]
    fn anonymous_dependencies_get_numbered_names() {
        let doc = parse_document(
            "relation r(a: string, b: string);\n\
             cfd r(a -> b) { (_ || _); }\n\
             cind r[a;] subset r[b;] { (_ || _); }",
        )
        .unwrap();
        assert!(doc.cfd("cfd0").is_some());
        assert!(doc.cind("cind0").is_some());
    }

    #[test]
    fn errors_carry_positions() {
        // Unknown relation.
        let err = parse_document("cfd nope(a -> b) { (_ || _); }").unwrap_err();
        assert!(err.message.contains("nope"));
        // Wrong row width.
        let err = parse_document(
            "relation r(a: string, b: string);\n\
             cfd r(a -> b) { (_, _ || _); }",
        )
        .unwrap_err();
        assert_eq!(err.pos.line, 2);
        assert!(err.message.contains("cells"));
        // Duplicate names.
        let err = parse_document(
            "relation r(a: string, b: string);\n\
             cfd n: r(a -> b) { (_ || _); }\n\
             cfd n: r(a -> b) { (_ || _); }",
        )
        .unwrap_err();
        assert!(err.message.contains("duplicate"));
        // tp[X] != tp[Y] in a CIND is caught, not a crash.
        let err = parse_document(
            "relation r(a: string, b: string);\n\
             cind r[a;] subset r[b;] { (x || y); }",
        )
        .unwrap_err();
        assert!(err.message.contains("tp[X]"));
    }

    #[test]
    fn unknown_attribute_is_positioned() {
        let err = parse_document(
            "relation r(a: string);\n\
             cfd r(zzz -> a) { (_ || _); }",
        )
        .unwrap_err();
        assert!(err.message.contains("zzz"));
        assert_eq!(err.pos.line, 2);
    }
}
