#![warn(missing_docs)]

//! # condep-dsl
//!
//! A small textual language for defining schemas and conditional
//! dependencies — the configuration-file front end a deployed
//! data-quality tool needs (the paper's tableaux are exactly this kind
//! of notation, typeset).
//!
//! ```text
//! relation interest(ab: string, ct: string,
//!                   at: {checking, saving}, rt: string);
//! relation saving(an: string, cn: string, ca: string,
//!                 cp: string, ab: string);
//!
//! // fd3 refined by constants — ϕ3 of Figure 4:
//! cfd phi3: interest(ct, at -> rt) {
//!     (_, _ || _);
//!     (UK, saving || "4.5%");
//! }
//!
//! // ψ5 of Figure 2:
//! cind psi5: saving[; ab] subset interest[; ab, at, ct, rt] {
//!     (EDI || EDI, saving, UK, "4.5%");
//! }
//! ```
//!
//! * [`parse_document`] turns source text into a [`Document`] (schema +
//!   named dependencies), with line/column-positioned errors;
//! * [`print_document`] renders a document back to canonical text; the
//!   round trip is identity on the canonical form (tested).

mod lexer;
mod parser;
mod printer;

pub use parser::{parse_document, Document, ParseError};
pub use printer::print_document;
