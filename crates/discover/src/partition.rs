//! Stripped partitions — the TANE-family workhorse.
//!
//! The partition `π_X` of a relation under an attribute set `X` groups
//! tuple positions by their `X`-projection; an FD `X → A` holds iff
//! every group is constant on `A`. A **stripped** partition drops the
//! singleton groups (they can never witness a violation and typically
//! dominate the tail of the distribution), so `‖π_X‖` — the number of
//! positions kept — is exactly the number of tuples that share their
//! `X`-value with at least one other tuple: the *support* a dependency
//! over `X` can claim.
//!
//! Level-1 partitions come straight out of a [`SymIndex`] counting-sort
//! CSR bulk build over one pre-symbolized [`condep_model::SymTables`]
//! column — no string is hashed anywhere in the mining hot path. Deeper
//! lattice levels are produced by [`StrippedPartition::refine`], which
//! splits each class on one more interned column.

use condep_model::SymValue;
use condep_query::SymIndex;

/// A stripped partition in CSR form: class `c` is
/// `elems[starts[c] .. starts[c + 1]]`, each class position-ascending
/// and of size ≥ 2.
#[derive(Clone, Debug, Default)]
pub struct StrippedPartition {
    elems: Vec<u32>,
    /// Class boundaries; `starts.len() == class_count() + 1`.
    starts: Vec<u32>,
}

impl StrippedPartition {
    /// The partition of one symbolized column, built through the
    /// [`SymIndex`] counting-sort CSR bulk path (groups come back
    /// contiguous and position-ascending).
    pub fn from_column(col: &[SymValue]) -> StrippedPartition {
        let idx = SymIndex::build_from_columns(col.len(), &[col], |_| true);
        let mut p = StrippedPartition {
            elems: Vec::with_capacity(col.len()),
            starts: vec![0],
        };
        for (_, positions) in idx.groups() {
            p.push_class(positions);
        }
        p
    }

    /// Appends the positions as one class if it survives stripping.
    fn push_class(&mut self, positions: impl Iterator<Item = u32>) {
        let start = self.elems.len();
        self.elems.extend(positions);
        if self.elems.len() - start < 2 {
            self.elems.truncate(start);
        } else {
            self.starts.push(self.elems.len() as u32);
        }
    }

    /// The partition `π_{X ∪ {B}}` from `π_X` and `B`'s column: each
    /// class is split on the column's symbols (sort-based, so the result
    /// is deterministic and position-ascending), singleton shards are
    /// stripped.
    pub fn refine(&self, col: &[SymValue]) -> StrippedPartition {
        let mut out = StrippedPartition {
            elems: Vec::with_capacity(self.elems.len()),
            starts: vec![0],
        };
        let mut buf: Vec<(SymValue, u32)> = Vec::new();
        for class in self.classes() {
            buf.clear();
            buf.extend(class.iter().map(|&p| (col[p as usize], p)));
            buf.sort_unstable();
            let mut i = 0;
            while i < buf.len() {
                let mut j = i + 1;
                while j < buf.len() && buf[j].0 == buf[i].0 {
                    j += 1;
                }
                out.push_class(buf[i..j].iter().map(|&(_, p)| p));
                i = j;
            }
        }
        out
    }

    /// Iterator over the classes (position-ascending slices of size ≥ 2).
    pub fn classes(&self) -> impl Iterator<Item = &[u32]> {
        self.starts
            .windows(2)
            .map(|w| &self.elems[w[0] as usize..w[1] as usize])
    }

    /// Number of (stripped) classes.
    pub fn class_count(&self) -> usize {
        self.starts.len() - 1
    }

    /// `‖π‖`: total positions across all stripped classes — the support
    /// an FD over this attribute set can claim.
    pub fn support(&self) -> usize {
        self.elems.len()
    }

    /// No class survived stripping: the attribute set is a (super)key.
    pub fn is_key(&self) -> bool {
        self.elems.is_empty()
    }
}

/// Per-class RHS tally: how one class of `π_X` distributes over an `A`
/// column. `max_count == len` means the class is pure — `X → A` holds on
/// it exactly.
#[derive(Clone, Copy, Debug)]
pub struct ClassTally {
    /// Class size.
    pub len: usize,
    /// Frequency of the most common `A` symbol in the class.
    pub max_count: usize,
    /// The most common `A` symbol (smallest symbol on ties, for
    /// determinism).
    pub majority: SymValue,
}

/// Tallies one class against an RHS column. `class` is never empty.
pub fn tally_class(class: &[u32], rhs_col: &[SymValue], buf: &mut Vec<SymValue>) -> ClassTally {
    buf.clear();
    buf.extend(class.iter().map(|&p| rhs_col[p as usize]));
    buf.sort_unstable();
    let mut majority = buf[0];
    let mut max_count = 0usize;
    let mut i = 0;
    while i < buf.len() {
        let mut j = i + 1;
        while j < buf.len() && buf[j] == buf[i] {
            j += 1;
        }
        if j - i > max_count {
            max_count = j - i;
            majority = buf[i];
        }
        i = j;
    }
    ClassTally {
        len: class.len(),
        max_count,
        majority,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use condep_model::{tuple, AttrId, RelId};
    use condep_model::{Database, Domain, Schema, SymTables};
    use std::sync::Arc;

    fn db() -> Database {
        let schema = Arc::new(
            Schema::builder()
                .relation(
                    "r",
                    &[
                        ("a", Domain::string()),
                        ("b", Domain::string()),
                        ("c", Domain::string()),
                    ],
                )
                .finish(),
        );
        let mut db = Database::empty(schema);
        for (a, b, c) in [
            ("x", "1", "p"), // 0
            ("x", "1", "q"), // 1
            ("y", "2", "p"), // 2
            ("x", "2", "r"), // 3
            ("z", "3", "s"), // 4
            ("y", "2", "t"), // 5
        ] {
            db.insert_into("r", tuple![a, b, c]).unwrap();
        }
        db
    }

    #[test]
    fn from_column_strips_singletons_and_sorts_positions() {
        let db = db();
        let (_, tables) = SymTables::build(&db);
        let p = StrippedPartition::from_column(tables.column(RelId(0), AttrId(0)));
        // x → {0,1,3}, y → {2,5}; z is a singleton and is stripped.
        let classes: Vec<&[u32]> = p.classes().collect();
        assert_eq!(classes, vec![&[0u32, 1, 3][..], &[2, 5]]);
        assert_eq!(p.support(), 5);
        assert_eq!(p.class_count(), 2);
        assert!(!p.is_key());
    }

    #[test]
    fn refine_splits_classes_on_the_new_column() {
        let db = db();
        let (_, tables) = SymTables::build(&db);
        let rel = RelId(0);
        let pa = StrippedPartition::from_column(tables.column(rel, AttrId(0)));
        let pab = pa.refine(tables.column(rel, AttrId(1)));
        // {0,1,3} splits into {0,1} (b=1) and singleton {3} (stripped);
        // {2,5} stays together (both b=2).
        let classes: Vec<&[u32]> = pab.classes().collect();
        assert_eq!(classes, vec![&[0u32, 1][..], &[2, 5]]);
        // Refining by c (all distinct within classes) yields a key.
        let pabc = pab.refine(tables.column(rel, AttrId(2)));
        assert!(pabc.is_key());
        assert_eq!(pabc.support(), 0);
    }

    #[test]
    fn tally_reports_majority_and_purity() {
        let db = db();
        let (interner, tables) = SymTables::build(&db);
        let rel = RelId(0);
        let pa = StrippedPartition::from_column(tables.column(rel, AttrId(0)));
        let b_col = tables.column(rel, AttrId(1));
        let mut buf = Vec::new();
        let tallies: Vec<ClassTally> = pa
            .classes()
            .map(|c| tally_class(c, b_col, &mut buf))
            .collect();
        // x-class {0,1,3}: b values {1,1,2} → majority "1" with count 2.
        assert_eq!(tallies[0].len, 3);
        assert_eq!(tallies[0].max_count, 2);
        assert_eq!(
            tallies[0].majority,
            interner.sym_value(&condep_model::Value::str("1")).unwrap()
        );
        // y-class {2,5}: pure on b.
        assert_eq!(tallies[1].max_count, tallies[1].len);
    }
}
