//! Inclusion mining: exact INDs and conditioned near-INDs.
//!
//! Candidates are single-column pairs `(R1.A, R2.B)` of matching base
//! type (the unary base case every inclusion miner starts from; wider
//! embedded INDs are a non-goal, see the crate docs). Because the whole
//! database is symbolized through **one** interner, a source cell probes
//! the target column's [`condep_query::SymIndex`] directly — no value
//! ever re-hashes its string bytes.
//!
//! * **exact** — every source value appears in the target: emit the
//!   traditional IND `R1[A] ⊆ R2[B]` (empty `Xp`/`Yp`).
//! * **near** — coverage is below 1 but at least the confidence floor:
//!   optionally emit the approximate IND itself (when the floor is
//!   `< 1`), then hunt for the constant conditions that make it exact:
//!   a source attribute/value pair `(C, c)` qualifies when **no**
//!   uncovered tuple carries `C = c` while at least `min_support`
//!   covered tuples do. The highest-support conditions become
//!   `R1[A; C = c] ⊆ R2[B]` rows — conditioned CINDs that hold exactly.

use crate::cfd_miner::value_of;
use crate::config::DiscoveryConfig;
use crate::{DiscoveredCind, DiscoveryStats};
use condep_core::NormalCind;
use condep_model::fxhash::FxBuildHasher;
use condep_model::{AttrId, Database, Interner, RelId, SymTables, SymValue};
use condep_query::SymIndex;
use std::collections::HashMap;

/// Mines every CIND candidate of the database. Candidates arrive
/// unranked; the caller ranks, prunes against implication and caps.
pub(crate) fn mine(
    db: &Database,
    interner: &Interner,
    tables: &SymTables,
    config: &DiscoveryConfig,
    stats: &mut DiscoveryStats,
    out: &mut Vec<DiscoveredCind>,
) {
    let schema = db.schema();
    let min_confidence = config.confidence_floor();
    let min_support = config.support_floor();

    // One distinct-value index per column, built lazily (a column that
    // is never a viable target costs nothing); likewise one per-value
    // frequency map per condition column, shared across every target
    // its relation probes.
    let mut target_indexes: HashMap<(RelId, AttrId), SymIndex, FxBuildHasher> = HashMap::default();
    type Totals = HashMap<SymValue, usize, FxBuildHasher>;
    let mut totals_cache: HashMap<(RelId, AttrId), Totals, FxBuildHasher> = HashMap::default();

    let columns: Vec<(RelId, AttrId)> = schema
        .iter()
        .flat_map(|(rel, rs)| (0..rs.arity()).map(move |a| (rel, AttrId(a as u32))))
        .collect();

    for &(src_rel, src_attr) in &columns {
        let src_col = tables.column(src_rel, src_attr);
        if src_col.is_empty() {
            continue;
        }
        let src_type = base_type(schema, src_rel, src_attr);
        for &(dst_rel, dst_attr) in &columns {
            if (src_rel, src_attr) == (dst_rel, dst_attr)
                || base_type(schema, dst_rel, dst_attr) != src_type
                || tables.rows(dst_rel) == 0
            {
                continue;
            }
            stats.cind_candidates += 1;
            let idx = target_indexes
                .entry((dst_rel, dst_attr))
                .or_insert_with(|| {
                    let col = tables.column(dst_rel, dst_attr);
                    SymIndex::build_from_columns(col.len(), &[col], |_| true)
                });

            // Coverage pass, bailing out once the pair is hopeless for
            // BOTH uses of the misses: the approximate IND (floor
            // `(1 - min_confidence) × n`) and the condition hunt, which
            // tolerates up to half the column missing regardless of the
            // confidence floor — relaxing the floor must never lose a
            // conditioned CIND strict mode would find.
            let approx_misses = ((1.0 - min_confidence) * src_col.len() as f64).floor() as usize;
            let allowed_misses = approx_misses.max(src_col.len() / 2);
            let mut misses: Vec<u32> = Vec::new();
            let mut hopeless = false;
            for (pos, sym) in src_col.iter().enumerate() {
                if !idx.contains_key(std::slice::from_ref(sym)) {
                    misses.push(pos as u32);
                    if misses.len() > allowed_misses {
                        hopeless = true;
                        break;
                    }
                }
            }
            if hopeless {
                continue;
            }

            if misses.is_empty() {
                if src_col.len() >= min_support {
                    out.push(DiscoveredCind {
                        cind: NormalCind::new(
                            src_rel,
                            dst_rel,
                            vec![src_attr],
                            vec![dst_attr],
                            Vec::new(),
                            Vec::new(),
                        ),
                        support: src_col.len(),
                        confidence: 1.0,
                        interval: None,
                    });
                }
                continue;
            }

            // Approximate IND: only meaningful below a 1.0 floor.
            let coverage = (src_col.len() - misses.len()) as f64 / src_col.len() as f64;
            if min_confidence < 1.0 && coverage >= min_confidence && src_col.len() >= min_support {
                out.push(DiscoveredCind {
                    cind: NormalCind::new(
                        src_rel,
                        dst_rel,
                        vec![src_attr],
                        vec![dst_attr],
                        Vec::new(),
                        Vec::new(),
                    ),
                    support: src_col.len(),
                    confidence: coverage,
                    interval: None,
                });
            }

            // Condition hunt: for each other source attribute, a value
            // with zero dirty (miss-side) occurrences and enough total
            // support conditions the IND into an exact one. The
            // per-value totals depend only on the source column, so
            // they are computed once per column and reused across every
            // target this source probes; only the dirty counts are
            // per-pair.
            let src_cols = tables.rel_columns(src_rel);
            let mut conditions: Vec<(usize, AttrId, SymValue)> = Vec::new();
            let mut dirty: HashMap<SymValue, usize, FxBuildHasher> = HashMap::default();
            for (c, cond_col) in src_cols.iter().enumerate() {
                let cond_attr = AttrId(c as u32);
                if cond_attr == src_attr {
                    continue;
                }
                let totals = totals_cache.entry((src_rel, cond_attr)).or_insert_with(|| {
                    let mut t: HashMap<SymValue, usize, FxBuildHasher> = HashMap::default();
                    for sym in cond_col.iter() {
                        *t.entry(*sym).or_insert(0) += 1;
                    }
                    t
                });
                dirty.clear();
                for &pos in &misses {
                    *dirty.entry(cond_col[pos as usize]).or_insert(0) += 1;
                }
                // Deterministic harvest: sort candidates by (support
                // desc, symbol) rather than trusting map order.
                let mut clean: Vec<(usize, SymValue)> = totals
                    .iter()
                    .filter(|&(sym, &total)| total >= min_support && !dirty.contains_key(sym))
                    .map(|(&sym, &total)| (total, sym))
                    .collect();
                clean.sort_unstable_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
                stats.cind_candidates += clean.len();
                conditions.extend(
                    clean
                        .into_iter()
                        .map(|(total, sym)| (total, cond_attr, sym)),
                );
            }
            conditions.sort_unstable_by(|a, b| b.0.cmp(&a.0).then((a.1, a.2).cmp(&(b.1, b.2))));
            if conditions.len() > config.max_conditions_per_ind {
                stats.pruned_capped += conditions.len() - config.max_conditions_per_ind;
                conditions.truncate(config.max_conditions_per_ind);
            }
            for (support, cond_attr, sym) in conditions {
                out.push(DiscoveredCind {
                    cind: NormalCind::new(
                        src_rel,
                        dst_rel,
                        vec![src_attr],
                        vec![dst_attr],
                        vec![(cond_attr, value_of(interner, sym))],
                        Vec::new(),
                    ),
                    support,
                    confidence: 1.0,
                    interval: None,
                });
            }
        }
    }
}

fn base_type(schema: &condep_model::Schema, rel: RelId, attr: AttrId) -> condep_model::BaseType {
    schema
        .relation(rel)
        .expect("relation in range")
        .attribute(attr)
        .expect("attribute in range")
        .domain()
        .base_type()
}
